package tashkent

import (
	"context"
	"testing"
)

// TestCrashResetsInFlightCounters is the end-to-end regression test
// for the crashed-replica routing-counter leak: transactions open on a
// replica when cluster.CrashReplica kills it must not keep charging
// the shared in-flight counter — leastinflight would otherwise shun
// the replica after rejoin — and their late releases must not drive
// the rejoined replica's counter negative, which would bias routing
// the other way.
func TestCrashResetsInFlightCounters(t *testing.T) {
	db, err := Start(Config{Mode: ModeTashkentMW, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()
	sess := db.Session(WithPolicy(LeastInFlight()))

	// Hold transactions open on replica 0 only.
	only0 := []bool{false, true}
	var open []*Tx
	for len(open) < 3 {
		i, release := sess.bal.Acquire(false, only0)
		if i != 0 {
			t.Fatalf("forced acquire picked replica %d, want 0", i)
		}
		inner, err := db.c.Begin(0)
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, &Tx{inner: inner, sess: sess, replica: 0, release: release})
	}
	if got := db.counters.Get(0); got != 3 {
		t.Fatalf("in-flight(0) = %d with 3 open transactions, want 3", got)
	}

	// Crash replica 0 with the transactions still open: the counter
	// must reset with it.
	db.Cluster().CrashReplica(0)
	if got := db.counters.Get(0); got != 0 {
		t.Fatalf("in-flight(0) = %d right after crash, want 0 (stale charges leaked)", got)
	}

	// The abandoned handles resolve later; their releases are stale
	// and must not push the fresh counter below zero.
	for _, tx := range open {
		tx.Abort()
	}
	if got := db.counters.Get(0); got != 0 {
		t.Fatalf("in-flight(0) = %d after stale releases, want 0", got)
	}

	if _, err := db.Cluster().RecoverReplica(0); err != nil {
		t.Fatal(err)
	}

	// leastinflight must now treat the rejoined replica as idle: with
	// a transaction pinned on replica 1, the next pick is replica 0.
	pin, err := sess.Begin(ctx)
	for err == nil && pin.Replica() != 1 {
		pin.Abort()
		pin, err = sess.Begin(ctx)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Abort()
	tx, err := sess.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if tx.Replica() != 0 {
		t.Fatalf("leastinflight picked replica %d after rejoin, want 0 (idle)", tx.Replica())
	}
}
