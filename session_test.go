package tashkent_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"tashkent"
)

// TestSessionReadYourWritesAcrossReplicas commits through a session
// and immediately reads back on the next (round-robin) replica, under
// a nonzero disk profile so replicas genuinely lag: the causal token
// must make Begin wait until the chosen replica has the write.
func TestSessionReadYourWritesAcrossReplicas(t *testing.T) {
	db, err := tashkent.Start(tashkent.Config{
		Mode:        tashkent.ModeTashkentMW,
		Replicas:    3,
		DiskProfile: tashkent.PaperDisks(16), // 500 µs fsyncs: real propagation delay
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()
	sess := db.Session() // round-robin: consecutive Begins rotate replicas
	var lastToken uint64
	crossReplica := 0
	for round := 0; round < 6; round++ {
		want := fmt.Sprintf("v%d", round)
		wtx, err := sess.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := wtx.Update("t", "k", map[string][]byte{"v": []byte(want)}); err != nil {
			t.Fatal(err)
		}
		if err := wtx.Commit(ctx); err != nil {
			t.Fatal(err)
		}

		rtx, err := sess.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rtx.Replica() != wtx.Replica() {
			crossReplica++
		}
		got, ok, err := rtx.ReadCol("t", "k", "v")
		if err != nil || !ok || string(got) != want {
			t.Fatalf("round %d: read on replica %d after write on replica %d: got %q ok=%v err=%v, want %q",
				round, rtx.Replica(), wtx.Replica(), got, ok, err, want)
		}
		rtx.Abort()

		// Monotonic reads: the causal token never moves backwards.
		if tok := sess.Token(); tok < lastToken {
			t.Fatalf("round %d: token went backwards: %d -> %d", round, lastToken, tok)
		} else {
			lastToken = tok
		}
	}
	if crossReplica == 0 {
		t.Fatal("round-robin never placed read and write on different replicas")
	}
}

// TestRunTxRetriesCertificationAborts injects certification aborts and
// checks RunTx retries exactly maxRetries+1 times before giving up,
// then succeeds in one attempt once the fault is cleared.
func TestRunTxRetriesCertificationAborts(t *testing.T) {
	db, err := tashkent.Start(tashkent.Config{Mode: tashkent.ModeTashkentMW, Replicas: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()
	db.Cluster().SetAbortRate(1.0)
	sess := db.Session(
		tashkent.WithMaxRetries(3),
		tashkent.WithBackoff(time.Millisecond, 4*time.Millisecond),
	)
	attempts := 0
	err = sess.RunTx(ctx, func(tx *tashkent.Tx) error {
		attempts++
		return tx.Update("t", "k", map[string][]byte{"v": []byte("x")})
	})
	if !errors.Is(err, tashkent.ErrAborted) {
		t.Fatalf("want ErrAborted after exhausting retries, got %v", err)
	}
	if attempts != 4 {
		t.Fatalf("want maxRetries+1 = 4 attempts, got %d", attempts)
	}

	db.Cluster().SetAbortRate(0)
	attempts = 0
	err = sess.RunTx(ctx, func(tx *tashkent.Tx) error {
		attempts++
		return tx.Update("t", "k", map[string][]byte{"v": []byte("y")})
	})
	if err != nil || attempts != 1 {
		t.Fatalf("after clearing aborts: err=%v attempts=%d", err, attempts)
	}
}

// TestRunTxHonorsContextCancellation: with every commit aborting and a
// long backoff, RunTx must give up with the context's error as soon as
// the deadline fires rather than burning through the retry budget.
func TestRunTxHonorsContextCancellation(t *testing.T) {
	db, err := tashkent.Start(tashkent.Config{Mode: tashkent.ModeTashkentMW, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	db.Cluster().SetAbortRate(1.0)
	sess := db.Session(
		tashkent.WithMaxRetries(1000),
		tashkent.WithBackoff(50*time.Millisecond, 50*time.Millisecond),
	)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	err = sess.RunTx(ctx, func(tx *tashkent.Tx) error {
		return tx.Update("t", "k", map[string][]byte{"v": []byte("x")})
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// TestCommitHonorsCancelledContextAllModes: a commit handed an
// already-cancelled context must return ctx.Err() in every commit
// strategy, and the session must remain usable afterwards.
func TestCommitHonorsCancelledContextAllModes(t *testing.T) {
	for _, mode := range []tashkent.Mode{tashkent.ModeBase, tashkent.ModeTashkentMW, tashkent.ModeTashkentAPI} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			db, err := tashkent.Start(tashkent.Config{Mode: mode, Replicas: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()

			sess := db.Session()
			tx, err := sess.Begin(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Update("t", "k", map[string][]byte{"v": []byte("x")}); err != nil {
				t.Fatal(err)
			}
			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if err := tx.Commit(cancelled); !errors.Is(err, context.Canceled) {
				t.Fatalf("Commit with cancelled ctx: want context.Canceled, got %v", err)
			}

			// The abort released the balancer slot; the session still works.
			err = sess.RunTx(context.Background(), func(tx *tashkent.Tx) error {
				return tx.Update("t", "k2", map[string][]byte{"v": []byte("y")})
			})
			if err != nil {
				t.Fatalf("session unusable after cancelled commit: %v", err)
			}
		})
	}
}

// TestRunTxPanicReleasesResources: a panic in fn must settle the
// transaction on its way out — no leaked in-flight charge skewing
// load-sensitive routing, no row locks held until the lock timeout.
func TestRunTxPanicReleasesResources(t *testing.T) {
	db, err := tashkent.Start(tashkent.Config{Mode: tashkent.ModeTashkentMW, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()
	sess := db.Session()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of RunTx")
			}
		}()
		_ = sess.RunTx(ctx, func(tx *tashkent.Tx) error {
			if err := tx.Update("t", "k", map[string][]byte{"v": []byte("x")}); err != nil {
				return err
			}
			panic("application bug")
		})
	}()

	// The write lock on "k" was released: another session's update on
	// the same key commits immediately instead of hitting the lock
	// timeout or a deadlock kill.
	err = db.Session().RunTx(ctx, func(tx *tashkent.Tx) error {
		return tx.Update("t", "k", map[string][]byte{"v": []byte("y")})
	})
	if err != nil {
		t.Fatalf("update after panicked RunTx: %v", err)
	}
}

// TestCommitAsyncPipelinesCommits opens several transactions on
// disjoint keys in one session and commits them concurrently —
// ModeTashkentAPI's ordered-concurrent commit path must land them all.
func TestCommitAsyncPipelinesCommits(t *testing.T) {
	db, err := tashkent.Start(tashkent.Config{Mode: tashkent.ModeTashkentAPI, Replicas: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()
	sess := db.Session()
	const n = 8
	txs := make([]*tashkent.Tx, n)
	for i := range txs {
		tx, err := sess.Begin(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Update("t", fmt.Sprintf("k%d", i), map[string][]byte{"v": {byte(i)}}); err != nil {
			t.Fatal(err)
		}
		txs[i] = tx
	}
	chans := make([]<-chan error, n)
	for i, tx := range txs {
		chans[i] = tx.CommitAsync(ctx)
	}
	for i, ch := range chans {
		if err := <-ch; err != nil {
			t.Fatalf("pipelined commit %d: %v", i, err)
		}
	}

	// Every write is visible through the same session.
	err = sess.RunTx(ctx, func(tx *tashkent.Tx) error {
		for i := 0; i < n; i++ {
			v, ok, err := tx.ReadCol("t", fmt.Sprintf("k%d", i), "v")
			if err != nil || !ok || v[0] != byte(i) {
				return fmt.Errorf("k%d: got %v ok=%v err=%v", i, v, ok, err)
			}
		}
		return nil
	}, tashkent.ReadOnly())
	if err != nil {
		t.Fatal(err)
	}
}
