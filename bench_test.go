package tashkent_test

// One testing.B benchmark per table/figure of the paper's evaluation
// (§9), plus ablation benches for the design decisions called out in
// DESIGN.md. Each figure bench runs its harness experiment once per
// b.N at a reduced sweep and reports the headline metrics; use
// cmd/tashbench for full-resolution sweeps and table output.

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"tashkent"
	"tashkent/internal/harness"
	"tashkent/internal/mvstore"
	"tashkent/internal/simdisk"
	"tashkent/internal/wal"
	"tashkent/internal/workload"
)

// benchOptions is the reduced sweep used inside benchmarks.
func benchOptions() harness.Options {
	return harness.Options{
		Scale:             20,
		ReplicaCounts:     []int{1, 4, 8},
		ClientsPerReplica: 8,
		Warmup:            50 * time.Millisecond,
		Measure:           500 * time.Millisecond,
		Seed:              1,
		Out:               io.Discard,
	}
}

// reportSeries emits the last sweep point of each system as bench
// metrics: who wins and by what factor is visible at a glance.
func reportSeries(b *testing.B, series []harness.Series) {
	b.Helper()
	var base float64
	for _, s := range series {
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.Result.Throughput, s.Name+"_tps")
		if s.Name == "base" {
			base = last.Result.Throughput
		} else if base > 0 {
			b.ReportMetric(last.Result.Throughput/base, s.Name+"_vs_base")
		}
	}
}

func BenchmarkFig4AllUpdatesSharedIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := harness.Fig4and5(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

func BenchmarkFig6AllUpdatesDedicatedIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := harness.Fig6and7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

func BenchmarkFig8TPCBSharedIO(b *testing.B) {
	o := benchOptions()
	o.ReplicaCounts = []int{1, 4}
	for i := 0; i < b.N; i++ {
		series, err := harness.Fig8and9(o)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

func BenchmarkFig10TPCBDedicatedIO(b *testing.B) {
	o := benchOptions()
	o.ReplicaCounts = []int{1, 4}
	for i := 0; i < b.N; i++ {
		series, err := harness.Fig10and11(o)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

func BenchmarkFig12TPCWSharedIO(b *testing.B) {
	o := benchOptions()
	o.ReplicaCounts = []int{1, 4}
	for i := 0; i < b.N; i++ {
		series, err := harness.Fig12and13(o)
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, series)
	}
}

func BenchmarkFig14AbortRates(b *testing.B) {
	o := benchOptions()
	o.ReplicaCounts = []int{4}
	for i := 0; i < b.N; i++ {
		series, err := harness.Fig14(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, key := range []string{"tashMW@0%", "tashMW@40%", "base@0%", "base@40%"} {
			b.ReportMetric(series[key].Points[0].Result.Throughput, key)
		}
	}
}

func BenchmarkStandaloneVsOneReplicaMW(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		cmp, err := harness.RunStandaloneComparison(true, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.StandaloneThroughput, "standalone_tps")
		b.ReportMetric(cmp.OneReplicaThroughput, "mw1_tps")
		b.ReportMetric(cmp.Overhead()*100, "overhead_%")
	}
}

func BenchmarkRecoveryTashkentMW(b *testing.B) {
	o := benchOptions()
	o.ClientsPerReplica = 4
	for i := 0; i < b.N; i++ {
		rep, err := harness.RunRecoveryExperiment(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.DumpBytes), "dump_bytes")
		b.ReportMetric(rep.DumpDegradation()*100, "dump_degradation_%")
		b.ReportMetric(float64(rep.MWRestoreDuration.Milliseconds()), "mw_restore_ms")
		b.ReportMetric(float64(rep.WALRecoverDuration.Milliseconds()), "wal_recover_ms")
		b.ReportMetric(rep.ApplyRate, "ws_apply_per_s")
		b.ReportMetric(float64(rep.CertTransferDuration.Microseconds())/1000, "cert_transfer_ms")
	}
}

func BenchmarkWritesetApplyRate(b *testing.B) {
	// §9.6: "the proxy batches the remote writesets and applies them
	// to the database at a rate of 900 writesets per second" — here,
	// raw engine apply rate without simulated disk latency.
	st := mvstore.Open(mvstore.Config{})
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := st.Begin()
		if err != nil {
			b.Fatal(err)
		}
		key := fmt.Sprintf("k%06d", i%4096)
		if err := tx.Update("bulk", key, map[string][]byte{"v": []byte("payload")}); err != nil {
			b.Fatal(err)
		}
		if err := tx.CommitLabeled(uint64(i), uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCertifierRecovery(b *testing.B) {
	o := benchOptions()
	o.ClientsPerReplica = 4
	for i := 0; i < b.N; i++ {
		rep, err := harness.RunRecoveryExperiment(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.CertTransferEntries), "entries")
		b.ReportMetric(float64(rep.CertTransferBytes), "bytes")
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationNoGroupCommit quantifies design decision 1: group
// commit is the whole game. The same concurrent commit stream is run
// through a WAL with group commit (concurrent appends share fsyncs)
// and serialized (one fsync each).
func BenchmarkAblationNoGroupCommit(b *testing.B) {
	const writers = 16
	prof := simdisk.Profile{FsyncLatency: 400 * time.Microsecond}
	run := func(b *testing.B, serialize bool) {
		disk := simdisk.New(prof, 1)
		w := wal.New(disk, wal.SyncCommits)
		defer w.Close()
		var serial sync.Mutex
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N/writers + 1
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				payload := make([]byte, 64)
				for i := 0; i < per; i++ {
					if serialize {
						serial.Lock()
						w.Append(payload)
						serial.Unlock()
					} else {
						w.Append(payload)
					}
				}
			}()
		}
		wg.Wait()
		b.ReportMetric(disk.Stats().GroupRatio(), "records/fsync")
	}
	b.Run("grouped", func(b *testing.B) { run(b, false) })
	b.Run("serialized", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationLocalCertification quantifies design decision 3:
// local certification aborts doomed transactions at the replica
// without a certifier round trip.
func BenchmarkAblationLocalCertification(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		o := benchOptions()
		o.ReplicaCounts = []int{4}
		series, err := harness.ThroughputExperiment("ablation", func() workload.Generator {
			return &workload.TPCB{Branches: 2} // high conflict rate
		}, true, []harness.System{harness.SysMW}, o)
		if err != nil {
			b.Fatal(err)
		}
		_ = enabled // both arms currently run with the optimization; see note
		b.ReportMetric(series[0].Points[0].Result.Throughput, "tps")
		b.ReportMetric(series[0].Points[0].Result.AbortRate()*100, "abort_%")
	}
	// The harness enables local certification by default; the
	// comparison arm is exercised at the proxy unit level
	// (TestLocalCertificationAvoidsRoundTrip). This bench tracks the
	// optimized configuration's throughput under a conflict-heavy
	// load.
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, true)
		}
	})
}

// BenchmarkCertifierThroughput measures raw certification capacity —
// the paper notes the certifier stays lightly loaded (<20 % CPU,
// <50 % disk) while certifying 3657 req/s.
func BenchmarkCertifierThroughput(b *testing.B) {
	db, err := tashkent.Start(tashkent.Config{
		Mode:     tashkent.ModeTashkentMW,
		Replicas: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tx, err := db.Begin(0)
			if err != nil {
				b.Error(err)
				return
			}
			key := fmt.Sprintf("c%06d", i)
			i++
			if err := tx.Update("t", key, map[string][]byte{"v": []byte("x")}); err != nil {
				b.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
