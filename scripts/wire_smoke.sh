#!/usr/bin/env bash
# wire_smoke.sh — multi-process deployment smoke test.
#
# Builds the real binaries, launches a 3-node certd group and three
# tashd replicas as separate OS processes on localhost TCP, drives a
# write workload across every replica through tashbench, and asserts
# that all replicas converge to identical state fingerprints. This is
# the check that the in-memory simulations cannot give us: the framed
# transport, the binary codec and the daemons' flag plumbing all
# crossing real sockets between real processes.
#
# Usage: scripts/wire_smoke.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d)}"
mkdir -p "$WORK/bin"
echo "workdir: $WORK"

go build -o "$WORK/bin/certd" ./cmd/certd
go build -o "$WORK/bin/tashd" ./cmd/tashd
go build -o "$WORK/bin/tashkv" ./cmd/tashkv
go build -o "$WORK/bin/tashbench" ./cmd/tashbench

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
}
trap cleanup EXIT

PEERS="0=localhost:7100,1=localhost:7101,2=localhost:7102"
CERTS="localhost:7100,localhost:7101,localhost:7102"
DAEMONS="localhost:7200,localhost:7201,localhost:7202"

for i in 0 1 2; do
    "$WORK/bin/certd" -id "$i" -listen "localhost:710$i" -peers "$PEERS" \
        -fsync-us 100 >"$WORK/certd$i.log" 2>&1 &
    PIDS+=($!)
done
sleep 1
for i in 1 2 3; do
    "$WORK/bin/tashd" -id "$i" -listen "localhost:720$((i - 1))" -mode mw \
        -certifiers "$CERTS" -fsync-us 100 >"$WORK/tashd$i.log" 2>&1 &
    PIDS+=($!)
done

# Wait for every daemon to answer before driving load.
for i in 0 1 2; do
    for _ in $(seq 1 50); do
        if "$WORK/bin/tashkv" -addr "localhost:720$i" stat >/dev/null 2>&1; then
            break
        fi
        sleep 0.2
    done
done

# One end-to-end write visible through another replica via the CLI.
"$WORK/bin/tashkv" -addr localhost:7200 put smoke cli v hello
"$WORK/bin/tashkv" -addr localhost:7201 pull >/dev/null
OUT="$("$WORK/bin/tashkv" -addr localhost:7201 get smoke cli v)"
echo "cross-replica read: $OUT"
case "$OUT" in
*"value=hello"*) ;;
*)
    echo "FAIL: cross-replica read did not see the committed value" >&2
    exit 1
    ;;
esac

# The convergence smoke: commits across every daemon, pull to a common
# version, identical fingerprints required.
"$WORK/bin/tashbench" -exp smoke -daemons "$DAEMONS"

echo "wire smoke: PASS"
