package tashkent_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tashkent"
)

func TestPublicAPIQuickstart(t *testing.T) {
	db, err := tashkent.Start(tashkent.Config{
		Mode:     tashkent.ModeTashkentMW,
		Replicas: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	tx, err := db.Begin(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("accounts", "alice", map[string][]byte{"balance": []byte("100")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Converge(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Visible on every replica.
	for i := 0; i < db.Replicas(); i++ {
		tx, err := db.Begin(i)
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := tx.ReadCol("accounts", "alice", "balance")
		if err != nil || !ok || string(v) != "100" {
			t.Errorf("replica %d: %q %v %v", i, v, ok, err)
		}
		tx.Abort()
	}
}

func TestPublicAPIConflictSurfacesErrAborted(t *testing.T) {
	db, err := tashkent.Start(tashkent.Config{Mode: tashkent.ModeTashkentAPI, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seed, _ := db.Begin(0)
	seed.Update("t", "k", map[string][]byte{"v": []byte("0")})
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Converge(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	a, _ := db.Begin(0)
	b, _ := db.Begin(1)
	a.Update("t", "k", map[string][]byte{"v": []byte("a")})
	b.Update("t", "k", map[string][]byte{"v": []byte("b")})
	errA, errB := a.Commit(), b.Commit()
	aborts := 0
	for _, e := range []error{errA, errB} {
		if errors.Is(e, tashkent.ErrAborted) {
			aborts++
		}
	}
	if aborts != 1 {
		t.Errorf("want exactly one ErrAborted, got errA=%v errB=%v", errA, errB)
	}
}

func TestPublicAPIAllModes(t *testing.T) {
	for _, mode := range []tashkent.Mode{tashkent.ModeBase, tashkent.ModeTashkentMW, tashkent.ModeTashkentAPI} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			db, err := tashkent.Start(tashkent.Config{Mode: mode, Replicas: 2, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < 5; i++ {
				tx, err := db.Begin(i % 2)
				if err != nil {
					t.Fatal(err)
				}
				if err := tx.Update("t", fmt.Sprintf("k%d", i), map[string][]byte{"v": {byte(i)}}); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Converge(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			if db.Replica(0).Store().Fingerprint() != db.Replica(1).Store().Fingerprint() {
				t.Error("replicas diverged")
			}
		})
	}
}

func TestPaperDisksScaling(t *testing.T) {
	full := tashkent.PaperDisks(1)
	scaled := tashkent.PaperDisks(10)
	if scaled.FsyncLatency != full.FsyncLatency/10 {
		t.Errorf("scaled fsync = %v", scaled.FsyncLatency)
	}
}
