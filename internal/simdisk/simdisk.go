// Package simdisk models the disk IO channel whose economics drive
// every experiment in the Tashkent paper: a single service queue in
// which synchronous log flushes (fsync) and data-page reads/writes
// compete.
//
// The paper's testbed used one 7200 rpm disk per machine where an
// fsync took about 8 ms (6–12 ms depending on disk position). The
// headline results all reduce to "how many commit records can be
// grouped into one fsync", so the model captures exactly that: each
// operation occupies the channel for a sampled service time; callers
// queue on the channel mutex just as requests queue at a real disk;
// statistics record fsync counts and group sizes so experiments can
// report figures like the certifier's 29-writesets-per-fsync.
//
// A Disk is a pure timing/accounting model. Durable *contents* are
// modeled by the layers above (internal/wal, internal/mvstore), which
// decide what survives a crash; the disk only decides how long
// persistence takes and who waits behind whom.
package simdisk

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Profile describes the service-time distribution of one IO channel.
type Profile struct {
	// FsyncLatency is the mean time for a synchronous flush of the
	// device write cache to media.
	FsyncLatency time.Duration
	// FsyncJitter is the half-width of the uniform jitter applied to
	// each fsync (the paper measured 6–12 ms around an 8 ms mean).
	FsyncJitter time.Duration
	// PageLatency is the service time for one data-page read or write
	// that shares the channel (0 for a dedicated log channel backed by
	// ramdisk data).
	PageLatency time.Duration
	// WriteBandwidth, if nonzero, adds bytes/WriteBandwidth of service
	// time per byte flushed, modelling large sequential log writes
	// (bytes per second).
	WriteBandwidth int64
}

// Paper returns the latency profile of the paper's testbed disk.
func Paper() Profile {
	return Profile{
		FsyncLatency:   8 * time.Millisecond,
		FsyncJitter:    2 * time.Millisecond,
		PageLatency:    2 * time.Millisecond,
		WriteBandwidth: 50 << 20, // 50 MB/s sequential, 2006-era disk
	}
}

// Scaled returns the profile with every latency divided by div and
// bandwidth multiplied by div, preserving all ratios while letting a
// full replica sweep finish quickly. div must be positive.
func (p Profile) Scaled(div int) Profile {
	if div <= 0 {
		panic(fmt.Sprintf("simdisk: non-positive scale divisor %d", div))
	}
	return Profile{
		FsyncLatency:   p.FsyncLatency / time.Duration(div),
		FsyncJitter:    p.FsyncJitter / time.Duration(div),
		PageLatency:    p.PageLatency / time.Duration(div),
		WriteBandwidth: p.WriteBandwidth * int64(div),
	}
}

// Instant returns a zero-latency profile, used by unit tests of the
// layers above so they run at full speed.
func Instant() Profile { return Profile{} }

// Stats is a snapshot of channel activity.
type Stats struct {
	Fsyncs        int64         // synchronous flushes issued
	RecordsSynced int64         // commit/log records covered by those flushes
	BytesSynced   int64         // bytes covered by those flushes
	PageOps       int64         // data page reads/writes serviced
	Busy          time.Duration // cumulative channel service time
	MaxGroup      int           // largest number of records in one fsync
}

// GroupRatio returns the mean number of records per fsync — the
// quantity the paper reports as e.g. "an average of 29 writesets per
// fsync" for the Tashkent-MW certifier at 15 replicas.
func (s Stats) GroupRatio() float64 {
	if s.Fsyncs == 0 {
		return 0
	}
	return float64(s.RecordsSynced) / float64(s.Fsyncs)
}

// Op identifies the kind of operation a Hook observes.
type Op uint8

// Operation kinds.
const (
	// OpFsync is a synchronous flush of the write cache to media.
	OpFsync Op = iota + 1
	// OpPage is a data-page read/write batch.
	OpPage
)

// Hook observes every disk operation at its start, before the
// operation enters the service queue — the exact boundary between "in
// the volatile cache" and "being made durable". The chaos harness uses
// it to crash a node between a WAL append and its fsync: a hook may
// block (holding the operation back) while an orchestrator captures
// the pre-fsync crash image, but it runs on the calling goroutine and
// must never call back into the same Disk.
type Hook func(op Op, records, bytes int)

// Disk is one simulated IO channel. The zero value is not usable; use
// New.
type Disk struct {
	mu      sync.Mutex
	prof    Profile
	rng     *rand.Rand
	stats   Stats
	created time.Time

	hookMu sync.Mutex
	hook   Hook
}

// SetHook installs (or, with nil, removes) the operation hook.
func (d *Disk) SetHook(h Hook) {
	d.hookMu.Lock()
	d.hook = h
	d.hookMu.Unlock()
}

// fireHook invokes the installed hook, if any, outside the service
// lock.
func (d *Disk) fireHook(op Op, records, bytes int) {
	d.hookMu.Lock()
	h := d.hook
	d.hookMu.Unlock()
	if h != nil {
		h(op, records, bytes)
	}
}

// New returns a disk with the given profile. seed fixes the jitter
// stream so experiments are repeatable.
func New(prof Profile, seed int64) *Disk {
	return &Disk{
		prof:    prof,
		rng:     rand.New(rand.NewSource(seed)),
		created: time.Now(),
	}
}

// Profile returns the disk's latency profile.
func (d *Disk) Profile() Profile {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.prof
}

// Fsync flushes records commit/log records totalling bytes to media
// and blocks for the channel service time. Concurrent callers
// serialize, modelling the single disk arm. records counts the logical
// commit records covered by this single flush (the group size).
func (d *Disk) Fsync(records int, bytes int) {
	if records < 0 || bytes < 0 {
		panic("simdisk: negative fsync accounting")
	}
	d.fireHook(OpFsync, records, bytes)
	d.mu.Lock()
	dur := d.prof.FsyncLatency
	if j := d.prof.FsyncJitter; j > 0 {
		dur += time.Duration(d.rng.Int63n(int64(2*j+1))) - j
	}
	if bw := d.prof.WriteBandwidth; bw > 0 && bytes > 0 {
		dur += time.Duration(int64(time.Second) * int64(bytes) / bw)
	}
	d.stats.Fsyncs++
	d.stats.RecordsSynced += int64(records)
	d.stats.BytesSynced += int64(bytes)
	if records > d.stats.MaxGroup {
		d.stats.MaxGroup = records
	}
	d.stats.Busy += dur
	d.serviceLocked(dur)
}

// PageOps services n data-page reads or writes on the channel (e.g.
// checkpoint write-back, buffer-pool misses). With PageLatency zero
// (dedicated log channel / ramdisk data) it returns immediately.
func (d *Disk) PageOps(n int) {
	if n <= 0 {
		return
	}
	d.fireHook(OpPage, n, 0)
	d.mu.Lock()
	if d.prof.PageLatency == 0 {
		d.stats.PageOps += int64(n)
		d.mu.Unlock()
		return
	}
	dur := time.Duration(n) * d.prof.PageLatency
	d.stats.PageOps += int64(n)
	d.stats.Busy += dur
	d.serviceLocked(dur)
}

// serviceLocked holds the channel for dur then releases it. The lock
// is held across the sleep deliberately: the disk arm services one
// request at a time and queueing delay emerges from mutex waiters.
func (d *Disk) serviceLocked(dur time.Duration) {
	defer d.mu.Unlock()
	if dur > 0 {
		time.Sleep(dur)
	}
}

// Stats returns a snapshot of the accumulated statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the statistics, typically called after warm-up.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
	d.created = time.Now()
}

// Utilization returns the fraction of wall time the channel has been
// busy since creation or the last ResetStats. The paper notes the
// Tashkent-MW certifier disk stays under 50 % utilized at 15 replicas.
func (d *Disk) Utilization() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	elapsed := time.Since(d.created)
	if elapsed <= 0 {
		return 0
	}
	u := float64(d.stats.Busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}
