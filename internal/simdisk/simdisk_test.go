package simdisk

import (
	"sync"
	"testing"
	"time"
)

func TestFsyncAccounting(t *testing.T) {
	d := New(Instant(), 1)
	d.Fsync(3, 300)
	d.Fsync(5, 500)
	s := d.Stats()
	if s.Fsyncs != 2 {
		t.Errorf("Fsyncs = %d, want 2", s.Fsyncs)
	}
	if s.RecordsSynced != 8 {
		t.Errorf("RecordsSynced = %d, want 8", s.RecordsSynced)
	}
	if s.BytesSynced != 800 {
		t.Errorf("BytesSynced = %d, want 800", s.BytesSynced)
	}
	if s.MaxGroup != 5 {
		t.Errorf("MaxGroup = %d, want 5", s.MaxGroup)
	}
	if got := s.GroupRatio(); got != 4 {
		t.Errorf("GroupRatio = %v, want 4", got)
	}
}

func TestGroupRatioZeroFsyncs(t *testing.T) {
	if (Stats{}).GroupRatio() != 0 {
		t.Error("GroupRatio with no fsyncs should be 0")
	}
}

func TestFsyncLatencyWithinJitterBounds(t *testing.T) {
	prof := Profile{FsyncLatency: 4 * time.Millisecond, FsyncJitter: 1 * time.Millisecond}
	d := New(prof, 42)
	for i := 0; i < 20; i++ {
		start := time.Now()
		d.Fsync(1, 64)
		got := time.Since(start)
		if got < 3*time.Millisecond {
			t.Fatalf("fsync %d took %v, below jitter floor 3ms", i, got)
		}
		if got > 20*time.Millisecond { // generous ceiling for scheduler noise
			t.Fatalf("fsync %d took %v, far above jitter ceiling", i, got)
		}
	}
}

func TestBandwidthComponent(t *testing.T) {
	// 1 MiB at 16 MiB/s = 62.5 ms; latency terms zero.
	prof := Profile{WriteBandwidth: 16 << 20}
	d := New(prof, 1)
	start := time.Now()
	d.Fsync(1, 1<<20)
	if got := time.Since(start); got < 50*time.Millisecond {
		t.Errorf("1 MiB fsync took %v, want >= ~62ms of bandwidth time", got)
	}
}

func TestPageOpsSharedVsDedicated(t *testing.T) {
	shared := New(Profile{PageLatency: 2 * time.Millisecond}, 1)
	start := time.Now()
	shared.PageOps(5)
	if got := time.Since(start); got < 10*time.Millisecond {
		t.Errorf("5 shared page ops took %v, want >= 10ms", got)
	}
	dedicated := New(Profile{PageLatency: 0}, 1)
	start = time.Now()
	dedicated.PageOps(1000)
	if got := time.Since(start); got > 50*time.Millisecond {
		t.Errorf("ramdisk page ops took %v, want ~instant", got)
	}
	if dedicated.Stats().PageOps != 1000 {
		t.Error("dedicated channel must still count page ops")
	}
	shared.PageOps(0)
	shared.PageOps(-3)
	if shared.Stats().PageOps != 5 {
		t.Error("non-positive PageOps must be ignored")
	}
}

func TestChannelSerializesConcurrentFsyncs(t *testing.T) {
	prof := Profile{FsyncLatency: 5 * time.Millisecond}
	d := New(prof, 1)
	const n = 8
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Fsync(1, 10)
		}()
	}
	wg.Wait()
	if got := time.Since(start); got < n*5*time.Millisecond {
		t.Errorf("%d serialized fsyncs took %v, want >= %v", n, got, n*5*time.Millisecond)
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	p := Paper()
	s := p.Scaled(10)
	if s.FsyncLatency != p.FsyncLatency/10 || s.PageLatency != p.PageLatency/10 {
		t.Error("Scaled did not divide latencies")
	}
	if s.WriteBandwidth != p.WriteBandwidth*10 {
		t.Error("Scaled did not multiply bandwidth")
	}
	// Ratio fsync:page preserved.
	if p.FsyncLatency/p.PageLatency != s.FsyncLatency/s.PageLatency {
		t.Error("Scaled changed the fsync:page ratio")
	}
}

func TestScaledPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Scaled(0) should panic")
		}
	}()
	Paper().Scaled(0)
}

func TestNegativeFsyncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative fsync accounting should panic")
		}
	}()
	New(Instant(), 1).Fsync(-1, 0)
}

func TestUtilizationAndReset(t *testing.T) {
	d := New(Profile{FsyncLatency: 10 * time.Millisecond}, 1)
	d.Fsync(1, 10)
	if u := d.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %v out of (0,1]", u)
	}
	d.ResetStats()
	if s := d.Stats(); s.Fsyncs != 0 || s.Busy != 0 {
		t.Error("ResetStats did not clear stats")
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	prof := Profile{FsyncLatency: time.Millisecond, FsyncJitter: time.Millisecond}
	a, b := New(prof, 7), New(prof, 7)
	// Same seed must produce identical busy-time accumulation.
	for i := 0; i < 5; i++ {
		a.Fsync(1, 1)
		b.Fsync(1, 1)
	}
	if a.Stats().Busy != b.Stats().Busy {
		t.Error("same seed should give identical jitter sequence")
	}
}
