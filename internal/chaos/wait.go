package chaos

import "time"

// WaitUntil polls cond every millisecond until it returns true or
// timeout elapses, reporting whether the condition was met. It is the
// condition-wait primitive convergence-sensitive tests use instead of
// fixed wall-clock sleeps: the wait ends the moment the condition
// holds, and a slow machine (or the race detector's scheduling
// overhead) only lengthens the wait instead of breaking the test.
func WaitUntil(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond() // one last look after the deadline
		}
		time.Sleep(time.Millisecond)
	}
}

// WaitStable polls value every millisecond and returns once it has
// reported the same result for quiet consecutive polls (or timeout
// elapses, returning the latest value and false). Tests use it to
// quiesce asynchronous appliers: "fingerprints stopped changing" is a
// condition, "sleep 50ms and hope" is not.
func WaitStable[T comparable](timeout, quiet time.Duration, value func() T) (T, bool) {
	deadline := time.Now().Add(timeout)
	last := value()
	stableSince := time.Now()
	for {
		time.Sleep(time.Millisecond)
		cur := value()
		if cur != last {
			last = cur
			stableSince = time.Now()
		} else if time.Since(stableSince) >= quiet {
			return last, true
		}
		if time.Now().After(deadline) {
			return last, false
		}
	}
}
