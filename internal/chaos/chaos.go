// Package chaos is the deterministic fault-injection layer behind the
// `tashbench -exp chaos` experiment and the crash-drill tests: a
// transport interposer that drops, delays, duplicates and reorders
// messages and cuts links (asymmetric partitions), an invariant
// checker that verifies the paper's safety claims — durability of
// acked commits, snapshot-isolation consistency of every read,
// per-origin response sequencing, cross-replica convergence — against
// the certifier's committed log, and condition-wait helpers that
// replace wall-clock sleeps in convergence-sensitive tests.
//
// Every random decision derives from a seed: each link (from → to)
// owns a PRNG seeded by (seed, link name), so the i-th message on a
// link always draws the i-th decision tuple of that link's stream, and
// the planned fault schedule is a pure function of the seed — a
// failing run replays from its seed alone.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tashkent/internal/transport"
)

// Rules are the per-message fault probabilities a link applies while
// the injector is enabled. Probabilities are independent; MaxDelay
// bounds the injected delay (delays reorder messages relative to
// concurrent traffic on other goroutines).
type Rules struct {
	// DropProb loses the request before delivery (the callee never
	// sees it).
	DropProb float64
	// DropRespProb delivers the request but loses the response (the
	// callee's side effects happened; the caller sees a node failure).
	DropRespProb float64
	// DupProb delivers the request twice; the duplicate's response is
	// discarded (at-least-once delivery).
	DupProb float64
	// DelayProb holds the message for a uniform [0, MaxDelay) pause,
	// reordering it against concurrent messages.
	DelayProb float64
	// MaxDelay bounds injected delays (0 disables delay injection).
	MaxDelay time.Duration
}

// decision is one message's sampled fault tuple. Exactly four draws
// are consumed per message regardless of which rules fire, so a link's
// decision stream depends only on the seed and the message index.
type decision struct {
	dropReq  bool
	dropResp bool
	dup      bool
	delay    time.Duration
}

// sample draws the next decision from the stream.
func sample(rng *rand.Rand, r Rules) decision {
	var d decision
	d.dropReq = rng.Float64() < r.DropProb
	d.dropResp = rng.Float64() < r.DropRespProb
	d.dup = rng.Float64() < r.DupProb
	delayed := rng.Float64() < r.DelayProb
	amount := rng.Int63n(int64(maxDelayOrOne(r)))
	if delayed && r.MaxDelay > 0 {
		d.delay = time.Duration(amount)
	}
	return d
}

func maxDelayOrOne(r Rules) time.Duration {
	if r.MaxDelay <= 0 {
		return 1
	}
	return r.MaxDelay
}

// Stats counts the faults an injector actually inflicted.
type Stats struct {
	Messages     int64
	DroppedReqs  int64
	DroppedResps int64
	Duplicated   int64
	Delayed      int64
	CutDrops     int64
}

// link is one directed (from → to) channel's deterministic decision
// stream.
type link struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// Injector implements transport.Interposer with seeded, per-link
// deterministic fault decisions plus dynamically cut links. The zero
// value is not usable; use NewInjector.
type Injector struct {
	seed    int64
	rules   Rules
	enabled atomic.Bool

	mu        sync.Mutex
	links     map[string]*link
	cuts      map[string]struct{}
	linkRules map[string]Rules

	messages     atomic.Int64
	droppedReqs  atomic.Int64
	droppedResps atomic.Int64
	duplicated   atomic.Int64
	delayed      atomic.Int64
	cutDrops     atomic.Int64
}

// NewInjector builds an injector. It starts disabled; Enable arms it.
func NewInjector(seed int64, rules Rules) *Injector {
	return &Injector{
		seed:      seed,
		rules:     rules,
		links:     make(map[string]*link),
		cuts:      make(map[string]struct{}),
		linkRules: make(map[string]Rules),
	}
}

// Enable arms probabilistic fault injection (cut links apply even
// while disabled only if set after Enable—HealAll clears them).
func (in *Injector) Enable() { in.enabled.Store(true) }

// Disable stops probabilistic fault injection; cut links keep
// applying until healed.
func (in *Injector) Disable() { in.enabled.Store(false) }

// Stats snapshots the inflicted-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Messages:     in.messages.Load(),
		DroppedReqs:  in.droppedReqs.Load(),
		DroppedResps: in.droppedResps.Load(),
		Duplicated:   in.duplicated.Load(),
		Delayed:      in.delayed.Load(),
		CutDrops:     in.cutDrops.Load(),
	}
}

func linkKey(from, to string) string { return from + "→" + to }

// linkSeed derives a link's PRNG seed from the injector seed and the
// link name — stable across runs and independent of traffic on other
// links.
func linkSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return seed ^ int64(h.Sum64())
}

func (in *Injector) link(key string) *link {
	in.mu.Lock()
	defer in.mu.Unlock()
	l := in.links[key]
	if l == nil {
		l = &link{rng: rand.New(rand.NewSource(linkSeed(in.seed, key)))}
		in.links[key] = l
	}
	return l
}

// CutLink severs the directed channel from → to: requests travelling
// it are lost. Cutting (to, from) as well makes the partition
// symmetric; cutting only one direction models the paper-motivating
// asymmetric partition.
func (in *Injector) CutLink(from, to string) {
	in.mu.Lock()
	in.cuts[linkKey(from, to)] = struct{}{}
	in.mu.Unlock()
}

// HealLink restores the directed channel from → to.
func (in *Injector) HealLink(from, to string) {
	in.mu.Lock()
	delete(in.cuts, linkKey(from, to))
	in.mu.Unlock()
}

// Isolate cuts both directions between name and every peer —
// a full partition of one node.
func (in *Injector) Isolate(name string, peers ...string) {
	for _, p := range peers {
		in.CutLink(name, p)
		in.CutLink(p, name)
	}
}

// HealAll restores every cut link.
func (in *Injector) HealAll() {
	in.mu.Lock()
	in.cuts = make(map[string]struct{})
	in.mu.Unlock()
}

// SetLinkRules overrides the fault rules for the directed link
// from → to, modelling a gray failure: one slow or lossy channel
// while the rest of the mesh stays healthy (the global rules). The
// override changes only how draws are interpreted — every message
// still consumes exactly four PRNG draws — so each link's decision
// stream remains a pure function of (seed, link name) and a gray run
// replays from its seed exactly like a uniform one.
func (in *Injector) SetLinkRules(from, to string, r Rules) {
	in.mu.Lock()
	in.linkRules[linkKey(from, to)] = r
	in.mu.Unlock()
}

// SlowLink is a SetLinkRules convenience: every message on from → to
// is delayed by a uniform [0, maxDelay) pause, nothing is lost.
func (in *Injector) SlowLink(from, to string, maxDelay time.Duration) {
	in.SetLinkRules(from, to, Rules{DelayProb: 1, MaxDelay: maxDelay})
}

// ClearLinkRules removes a per-link override; the link reverts to the
// injector's global rules.
func (in *Injector) ClearLinkRules(from, to string) {
	in.mu.Lock()
	delete(in.linkRules, linkKey(from, to))
	in.mu.Unlock()
}

// rulesFor resolves the rules governing a link: its override if one
// is set, the global rules otherwise.
func (in *Injector) rulesFor(key string) Rules {
	in.mu.Lock()
	defer in.mu.Unlock()
	if r, ok := in.linkRules[key]; ok {
		return r
	}
	return in.rules
}

func (in *Injector) isCut(from, to string) bool {
	in.mu.Lock()
	_, cut := in.cuts[linkKey(from, to)]
	in.mu.Unlock()
	return cut
}

// errDropped wraps transport.ErrUnavailable so victims retry exactly
// as they would for a dead node.
func errDropped(kind, from, to string) error {
	return fmt.Errorf("%w: chaos %s on %s→%s", transport.ErrUnavailable, kind, from, to)
}

// Call implements transport.Interposer.
func (in *Injector) Call(from, to, method string, req []byte, deliver func() ([]byte, error)) ([]byte, error) {
	if in.isCut(from, to) {
		in.cutDrops.Add(1)
		return nil, errDropped("cut", from, to)
	}
	if !in.enabled.Load() {
		resp, err := deliver()
		if err == nil && in.isCut(to, from) {
			// Reverse direction severed while we were in flight: the
			// response is lost even though the request landed.
			in.cutDrops.Add(1)
			return nil, errDropped("cut (response)", to, from)
		}
		return resp, err
	}

	in.messages.Add(1)
	key := linkKey(from, to)
	l := in.link(key)
	rules := in.rulesFor(key)
	l.mu.Lock()
	d := sample(l.rng, rules)
	l.mu.Unlock()

	if d.delay > 0 {
		in.delayed.Add(1)
		time.Sleep(d.delay)
	}
	if d.dropReq {
		in.droppedReqs.Add(1)
		return nil, errDropped("drop", from, to)
	}
	resp, err := deliver()
	if d.dup {
		in.duplicated.Add(1)
		deliver() // duplicate delivery; its response is discarded
	}
	if err == nil && (d.dropResp || in.isCut(to, from)) {
		if d.dropResp {
			in.droppedResps.Add(1)
		} else {
			in.cutDrops.Add(1)
		}
		return nil, errDropped("response drop", to, from)
	}
	return resp, err
}

// PlanDigest returns a fingerprint of the fault schedule the injector
// would inflict: for every given link, the first perLink decision
// tuples of its stream. It is a pure function of (seed, rules, links)
// — two injectors with the same seed plan the same schedule, which is
// what makes a failing chaos run replayable from its seed alone.
func (in *Injector) PlanDigest(links []string, perLink int) uint64 {
	h := fnv.New64a()
	sorted := append([]string{}, links...)
	sort.Strings(sorted)
	for _, key := range sorted {
		h.Write([]byte(key))
		rng := rand.New(rand.NewSource(linkSeed(in.seed, key)))
		rules := in.rulesFor(key)
		for i := 0; i < perLink; i++ {
			d := sample(rng, rules)
			var b [4]byte
			if d.dropReq {
				b[0] = 1
			}
			if d.dropResp {
				b[1] = 1
			}
			if d.dup {
				b[2] = 1
			}
			b[3] = byte(d.delay / time.Millisecond)
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

var _ transport.Interposer = (*Injector)(nil)
