package chaos

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/transport"
)

// TestPlanDigestDeterministic: the planned fault schedule is a pure
// function of the seed — two injectors with the same seed plan the
// identical schedule, and different seeds plan different ones.
func TestPlanDigestDeterministic(t *testing.T) {
	links := []string{"replica-1→certifier-0", "certifier-0→certifier-1", "certifier-1→certifier-0"}
	rules := Rules{DropProb: 0.05, DropRespProb: 0.02, DupProb: 0.02, DelayProb: 0.1, MaxDelay: 5 * time.Millisecond}
	a := NewInjector(42, rules).PlanDigest(links, 256)
	b := NewInjector(42, rules).PlanDigest(links, 256)
	if a != b {
		t.Fatalf("same seed planned different schedules: %x vs %x", a, b)
	}
	c := NewInjector(43, rules).PlanDigest(links, 256)
	if a == c {
		t.Fatalf("different seeds planned the same schedule %x", a)
	}
}

// TestDecisionStreamPerLink: the i-th message on a link draws the i-th
// decision of that link's stream, independent of traffic on other
// links — the property that makes per-seed replays meaningful.
func TestDecisionStreamPerLink(t *testing.T) {
	rules := Rules{DropProb: 0.5, DelayProb: 0.3, MaxDelay: time.Millisecond}
	draw := func(in *Injector, link string, n int) []decision {
		l := in.link(link)
		out := make([]decision, n)
		for i := range out {
			l.mu.Lock()
			out[i] = sample(l.rng, in.rules)
			l.mu.Unlock()
		}
		return out
	}
	a := NewInjector(7, rules)
	b := NewInjector(7, rules)
	// Interleave traffic on another link in b only; link "x→y" must
	// still see the identical stream.
	draw(b, "noise→y", 100)
	sa := draw(a, "x→y", 50)
	sb := draw(b, "x→y", 50)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// echoFabric builds a fabric with one echo server and a from-tagged
// client.
func echoFabric(t *testing.T, in *Injector) transport.Client {
	t.Helper()
	f := transport.NewLocalFabric(0)
	f.Serve("server", func(method string, req []byte) ([]byte, error) {
		return append([]byte("ok:"), req...), nil
	})
	f.SetInterposer(in)
	return f.DialFrom("client", "server")
}

func TestInjectorCutLink(t *testing.T) {
	in := NewInjector(1, Rules{})
	c := echoFabric(t, in)
	if _, err := c.Call("m", []byte("x")); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}
	in.CutLink("client", "server")
	if _, err := c.Call("m", []byte("x")); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("cut link: want ErrUnavailable, got %v", err)
	}
	in.HealLink("client", "server")
	if _, err := c.Call("m", []byte("x")); err != nil {
		t.Fatalf("healed link failed: %v", err)
	}
	// Asymmetric: cutting the reverse direction loses responses but
	// the request still lands.
	in.CutLink("server", "client")
	if _, err := c.Call("m", []byte("x")); !errors.Is(err, transport.ErrUnavailable) {
		t.Fatalf("reverse cut: want ErrUnavailable (lost response), got %v", err)
	}
	in.HealAll()
	if _, err := c.Call("m", []byte("x")); err != nil {
		t.Fatalf("after HealAll: %v", err)
	}
}

func TestInjectorDropsAndHeals(t *testing.T) {
	in := NewInjector(3, Rules{DropProb: 0.5})
	c := echoFabric(t, in)
	in.Enable()
	drops := 0
	for i := 0; i < 200; i++ {
		if _, err := c.Call("m", nil); err != nil {
			if !errors.Is(err, transport.ErrUnavailable) {
				t.Fatalf("unexpected error kind: %v", err)
			}
			drops++
		}
	}
	if drops == 0 || drops == 200 {
		t.Fatalf("50%% drop rate produced %d/200 drops", drops)
	}
	if got := in.Stats().DroppedReqs; got != int64(drops) {
		t.Fatalf("stats counted %d dropped requests, observed %d", got, drops)
	}
	in.Disable()
	for i := 0; i < 50; i++ {
		if _, err := c.Call("m", nil); err != nil {
			t.Fatalf("disabled injector still dropping: %v", err)
		}
	}
}

// --- checker unit tests ---

func wsOf(table, key, col, value string) *core.Writeset {
	ws := &core.Writeset{}
	ws.Add(core.WriteOp{
		Kind: core.OpUpdate, Table: table, Key: key,
		Cols: []core.ColUpdate{{Col: col, Value: []byte(value)}},
	})
	return ws
}

func testLog(n int) []LogEntry {
	log := make([]LogEntry, n)
	for i := range log {
		v := uint64(i + 1)
		log[i] = LogEntry{Version: v, Origin: 1, WS: wsOf("t", "k", "v", fmt.Sprintf("val%d", v))}
	}
	return log
}

func TestCheckerPassesCleanRun(t *testing.T) {
	c := NewChecker()
	log := testLog(3)
	c.RecordAck(Ack{Worker: 0, Origin: 1, Version: 2, Table: "t", Key: "k", Col: "v", Value: "val2"})
	c.RecordAck(Ack{Worker: 0, Origin: 1, Version: 3, Table: "t", Key: "k", Col: "v", Value: "val3"})
	c.RecordRead(Read{Start: 2, Observed: 2, Table: "t", Key: "k", Col: "v", Value: "val2", Found: true})
	// Conservative bounds: a read of val3 with start 2 is legal when
	// observed covers version 3.
	c.RecordRead(Read{Start: 2, Observed: 3, Table: "t", Key: "k", Col: "v", Value: "val3", Found: true})
	c.SeqObserver(0, 1, 1, "apply")
	c.SeqObserver(0, 1, 2, "apply")
	if vs := c.Verify(VerifyInput{Log: log, Fingerprints: []uint32{7, 7}}); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}
}

func TestCheckerDetectsLostAck(t *testing.T) {
	c := NewChecker()
	c.RecordAck(Ack{Worker: 0, Origin: 1, Version: 9, Table: "t", Key: "k", Col: "v", Value: "ghost"})
	if vs := c.Verify(VerifyInput{Log: testLog(3)}); len(vs) == 0 {
		t.Fatal("acked commit missing from log not flagged")
	}
}

func TestCheckerDetectsWrongAckedValue(t *testing.T) {
	c := NewChecker()
	c.RecordAck(Ack{Worker: 0, Origin: 1, Version: 2, Table: "t", Key: "k", Col: "v", Value: "not-val2"})
	if vs := c.Verify(VerifyInput{Log: testLog(3)}); len(vs) == 0 {
		t.Fatal("acked value absent from log entry not flagged")
	}
}

func TestCheckerDetectsSIViolation(t *testing.T) {
	c := NewChecker()
	// Snapshot bounded by version 1 must not see version 3's write.
	c.RecordRead(Read{Start: 1, Observed: 1, Table: "t", Key: "k", Col: "v", Value: "val3", Found: true})
	if vs := c.Verify(VerifyInput{Log: testLog(3)}); len(vs) == 0 {
		t.Fatal("future read not flagged")
	}
	// A value that no committed transaction ever wrote (dirty read).
	c2 := NewChecker()
	c2.RecordRead(Read{Start: 3, Observed: 3, Table: "t", Key: "k", Col: "v", Value: "uncommitted", Found: true})
	if vs := c2.Verify(VerifyInput{Log: testLog(3)}); len(vs) == 0 {
		t.Fatal("dirty read not flagged")
	}
}

func TestCheckerDetectsStaleAbsentRead(t *testing.T) {
	c := NewChecker()
	// Key written at v1; a snapshot at [1,1] must find it.
	c.RecordRead(Read{Start: 1, Observed: 1, Table: "t", Key: "k", Col: "v", Found: false})
	if vs := c.Verify(VerifyInput{Log: testLog(1)}); len(vs) == 0 {
		t.Fatal("vanished row not flagged")
	}
	// But a snapshot at [0,0] legitimately misses it.
	c2 := NewChecker()
	c2.RecordRead(Read{Start: 0, Observed: 0, Table: "t", Key: "k", Col: "v", Found: false})
	if vs := c2.Verify(VerifyInput{Log: testLog(1)}); len(vs) != 0 {
		t.Fatalf("legal absent read flagged: %v", vs)
	}
}

func TestCheckerDetectsSessionOrderViolation(t *testing.T) {
	c := NewChecker()
	c.RecordAck(Ack{Worker: 4, Origin: 1, Version: 3, Table: "t", Key: "k", Col: "v", Value: "val3"})
	c.RecordAck(Ack{Worker: 4, Origin: 1, Version: 2, Table: "t", Key: "k", Col: "v", Value: "val2"})
	if vs := c.Verify(VerifyInput{Log: testLog(3)}); len(vs) == 0 {
		t.Fatal("non-monotonic per-worker versions not flagged")
	}
}

func TestCheckerDetectsDoubleAppliedSeq(t *testing.T) {
	c := NewChecker()
	c.SeqObserver(1, 5, 7, "apply")
	c.SeqObserver(1, 5, 7, "apply")
	if vs := c.Verify(VerifyInput{}); len(vs) == 0 {
		t.Fatal("double-applied sequence slot not flagged")
	}
	// The same seq in a new epoch is a fresh numbering — legal.
	c2 := NewChecker()
	c2.SeqObserver(1, 5, 7, "apply")
	c2.SeqObserver(1, 6, 7, "apply")
	if vs := c2.Verify(VerifyInput{}); len(vs) != 0 {
		t.Fatalf("same seq across epochs flagged: %v", vs)
	}
}

func TestCheckerDetectsDivergentFingerprints(t *testing.T) {
	c := NewChecker()
	if vs := c.Verify(VerifyInput{Fingerprints: []uint32{1, 2}}); len(vs) == 0 {
		t.Fatal("divergent fingerprints not flagged")
	}
	if vs := c.Verify(VerifyInput{Fingerprints: []uint32{5, 5}, ReplayFingerprint: 6}); len(vs) == 0 {
		t.Fatal("replay-witness mismatch not flagged")
	}
}

func TestWaitUntil(t *testing.T) {
	n := 0
	if !WaitUntil(time.Second, func() bool { n++; return n >= 3 }) {
		t.Fatal("condition never observed")
	}
	if WaitUntil(10*time.Millisecond, func() bool { return false }) {
		t.Fatal("impossible condition reported met")
	}
}

func TestWaitStable(t *testing.T) {
	start := time.Now()
	v, ok := WaitStable(time.Second, 10*time.Millisecond, func() int {
		if time.Since(start) < 20*time.Millisecond {
			return int(time.Since(start) / time.Millisecond) // still changing
		}
		return -1
	})
	if !ok || v != -1 {
		t.Fatalf("WaitStable = (%d, %v), want (-1, true)", v, ok)
	}
}
