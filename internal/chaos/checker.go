// The invariant checker: records every client-visible outcome during
// a chaos run and verifies, against the certifier's committed log as
// ground truth, the safety properties the paper claims survive
// crashes, partitions and reordering.
package chaos

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"tashkent/internal/core"
)

// Ack is one client-visible committed update: the client was told the
// transaction committed at Version after writing Value under
// (Table, Key, Col).
type Ack struct {
	Worker  int
	Origin  int // proxy origin id (replica index + 1); -1 skips the check
	Version uint64
	Table   string
	Key     string
	Col     string
	Value   string
}

// Read is one client-visible snapshot read. Start is the snapshot's
// conservative version label, Observed the announced version sampled
// just after the snapshot — together they bound which committed prefix
// the snapshot may expose (§6.2 conservative version assignment).
type Read struct {
	Worker          int
	Start, Observed uint64
	Table, Key, Col string
	Value           string
	Found           bool
}

// SeqEvent is one proxy sequencer admission (see
// proxy.Config.SeqObserver).
type SeqEvent struct {
	Replica int
	Epoch   uint64
	Seq     uint64
	Outcome string
}

// LogEntry is one committed certifier log entry — the ground truth.
type LogEntry struct {
	Version uint64
	Origin  int
	WS      *core.Writeset
}

// Checker accumulates events from concurrent client workers and proxy
// hooks. All record methods are safe for concurrent use.
type Checker struct {
	mu   sync.Mutex
	acks []Ack
	rds  []Read
	seqs []SeqEvent
}

// NewChecker returns an empty checker.
func NewChecker() *Checker { return &Checker{} }

// RecordAck records a client-visible commit acknowledgement.
func (c *Checker) RecordAck(a Ack) {
	c.mu.Lock()
	c.acks = append(c.acks, a)
	c.mu.Unlock()
}

// RecordRead records a snapshot read and its version bounds.
func (c *Checker) RecordRead(r Read) {
	c.mu.Lock()
	c.rds = append(c.rds, r)
	c.mu.Unlock()
}

// SeqObserver adapts the checker to cluster.Config.SeqObserver.
func (c *Checker) SeqObserver(replica int, epoch, seq uint64, outcome string) {
	c.mu.Lock()
	c.seqs = append(c.seqs, SeqEvent{Replica: replica, Epoch: epoch, Seq: seq, Outcome: outcome})
	c.mu.Unlock()
}

// Acks returns the number of recorded commit acks.
func (c *Checker) Acks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.acks)
}

// Reads returns the number of recorded snapshot reads.
func (c *Checker) Reads() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.rds)
}

// SeqEvents returns a copy of the recorded sequencer admissions, in
// record order. Drill tests use it for assertions beyond Verify's —
// e.g. that a certifier failover's epoch re-anchor left the new
// epoch's per-origin sequence gap-free.
func (c *Checker) SeqEvents() []SeqEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SeqEvent{}, c.seqs...)
}

// VerifyInput is everything Verify needs after the run has healed and
// converged.
type VerifyInput struct {
	// Log is the certifier's committed log in version order (ground
	// truth for what the system decided).
	Log []LogEntry
	// Fingerprints are the converged replicas' state fingerprints.
	Fingerprints []uint32
	// ReplayFingerprint, if nonzero, is the fingerprint of a fresh
	// store that replayed Log from scratch — a never-crashed witness
	// the converged replicas must match.
	ReplayFingerprint uint32
}

// colWrite is one committed write of a tracked column.
type colWrite struct {
	version uint64
	value   string
	deleted bool
}

// Verify checks every recorded invariant and returns the violations
// (empty = pass):
//
//  1. Durability — every acked commit is present in the committed log
//     at its acked version, with the acked write in that entry's
//     writeset (no acked commit is ever lost, across any number of
//     crashes and recoveries).
//  2. Session order — each worker's acked commit versions strictly
//     increase (the worker commits sequentially).
//  3. Snapshot isolation — every read equals the committed prefix
//     state at some version within the snapshot's [Start, Observed]
//     bounds: reads map to a prefix of the committed version order,
//     never to aborted or torn state.
//  4. Per-origin sequencing — within one (replica, epoch), no response
//     sequence number is admitted for application twice (the proxy
//     applies the certifier's per-origin stream at most once per
//     slot).
//  5. Convergence — all replica fingerprints agree, and match the
//     never-crashed replay witness when provided.
func (c *Checker) Verify(in VerifyInput) []error {
	c.mu.Lock()
	acks := append([]Ack{}, c.acks...)
	rds := append([]Read{}, c.rds...)
	seqs := append([]SeqEvent{}, c.seqs...)
	c.mu.Unlock()

	var violations []error
	fail := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Errorf(format, args...))
	}

	byVersion := make(map[uint64]LogEntry, len(in.Log))
	for _, e := range in.Log {
		byVersion[e.Version] = e
	}

	// (1) Durability of acked commits.
	for _, a := range acks {
		e, ok := byVersion[a.Version]
		if !ok {
			fail("durability: acked commit v%d (worker %d, %s/%s=%q) missing from committed log",
				a.Version, a.Worker, a.Table, a.Key, a.Value)
			continue
		}
		if a.Origin >= 0 && e.Origin != a.Origin {
			fail("durability: acked commit v%d has origin %d in the log, client committed via origin %d",
				a.Version, e.Origin, a.Origin)
		}
		if !writesetHasValue(e.WS, a.Table, a.Key, a.Col, a.Value) {
			fail("durability: log entry v%d does not contain the acked write %s/%s.%s=%q",
				a.Version, a.Table, a.Key, a.Col, a.Value)
		}
	}

	// (2) Per-worker monotonic commit versions.
	lastByWorker := make(map[int]uint64)
	for _, a := range acks {
		if prev, ok := lastByWorker[a.Worker]; ok && a.Version <= prev {
			fail("session order: worker %d acked v%d after v%d", a.Worker, a.Version, prev)
		}
		lastByWorker[a.Worker] = a.Version
	}

	// (3) Snapshot-isolation read mapping.
	hist := columnHistories(in.Log)
	for _, r := range rds {
		if !readExplainable(hist, r) {
			fail("snapshot isolation: read %s/%s.%s=%q (found=%v) in snapshot [%d,%d] matches no committed prefix",
				r.Table, r.Key, r.Col, r.Value, r.Found, r.Start, r.Observed)
		}
	}

	// (4) Per-origin sequence slots applied at most once.
	type slot struct {
		replica int
		epoch   uint64
		seq     uint64
	}
	applied := make(map[slot]int)
	for _, s := range seqs {
		if s.Outcome != "apply" {
			continue
		}
		k := slot{s.Replica, s.Epoch, s.Seq}
		applied[k]++
		if applied[k] == 2 {
			fail("sequencing: replica %d applied response seq %d of epoch %d more than once",
				s.Replica, s.Seq, s.Epoch)
		}
	}

	// (5) Convergence.
	for i := 1; i < len(in.Fingerprints); i++ {
		if in.Fingerprints[i] != in.Fingerprints[0] {
			fail("convergence: replica %d fingerprint %08x != replica 0 fingerprint %08x",
				i, in.Fingerprints[i], in.Fingerprints[0])
		}
	}
	if in.ReplayFingerprint != 0 && len(in.Fingerprints) > 0 && in.Fingerprints[0] != in.ReplayFingerprint {
		fail("convergence: replica fingerprints %08x != never-crashed log replay %08x",
			in.Fingerprints[0], in.ReplayFingerprint)
	}

	return violations
}

// writesetHasValue reports whether ws writes value into (table, key,
// col).
func writesetHasValue(ws *core.Writeset, table, key, col, value string) bool {
	if ws == nil {
		return false
	}
	for i := range ws.Ops {
		op := &ws.Ops[i]
		if op.Table != table || op.Key != key {
			continue
		}
		for _, cu := range op.Cols {
			if cu.Col == col && bytes.Equal(cu.Value, []byte(value)) {
				return true
			}
		}
	}
	return false
}

// columnHistories builds, per (table, key, col), the version-ordered
// committed write history from the log.
func columnHistories(log []LogEntry) map[string][]colWrite {
	hist := make(map[string][]colWrite)
	for _, e := range log {
		if e.WS == nil {
			continue
		}
		for i := range e.WS.Ops {
			op := &e.WS.Ops[i]
			if op.Kind == core.OpDelete {
				// A delete ends every column of the row.
				prefix := op.Table + "\x00" + op.Key + "\x00"
				for k := range hist {
					if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
						hist[k] = append(hist[k], colWrite{version: e.Version, deleted: true})
					}
				}
				continue
			}
			for _, cu := range op.Cols {
				k := op.Table + "\x00" + op.Key + "\x00" + cu.Col
				hist[k] = append(hist[k], colWrite{version: e.Version, value: string(cu.Value)})
			}
		}
	}
	for k := range hist {
		sort.Slice(hist[k], func(i, j int) bool { return hist[k][i].version < hist[k][j].version })
	}
	return hist
}

// readExplainable reports whether the read's outcome equals the
// column state at some version v in [r.Start, r.Observed]: the state
// at v is the latest committed write ≤ v (absent if none). The
// admissible outcomes are therefore the state at Start plus every
// write landing in (Start, Observed].
func readExplainable(hist map[string][]colWrite, r Read) bool {
	writes := hist[r.Table+"\x00"+r.Key+"\x00"+r.Col]

	// State at Start.
	var atStart *colWrite
	for i := range writes {
		if writes[i].version <= r.Start {
			atStart = &writes[i]
		} else {
			break
		}
	}
	matches := func(w *colWrite) bool {
		if w == nil || w.deleted {
			return !r.Found
		}
		return r.Found && w.value == r.Value
	}
	if matches(atStart) {
		return true
	}
	// Writes inside the (Start, Observed] window.
	for i := range writes {
		if writes[i].version > r.Start && writes[i].version <= r.Observed && matches(&writes[i]) {
			return true
		}
	}
	return false
}
