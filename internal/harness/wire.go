package harness

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/cluster"
	"tashkent/internal/proxy"
	"tashkent/internal/transport"
	"tashkent/internal/workload"
)

// WirePoint is one (transport, workload) measurement of the wire
// experiment.
type WirePoint struct {
	Transport  string // "local" or "tcp"
	Throughput float64
	MeanRT     time.Duration
	Wire       transport.WireStats // zero for the in-memory transport
}

// WireReport aggregates the wire experiment: the same update-heavy and
// read-mostly sweeps run over the in-memory fabric and over real
// localhost TCP sockets, plus the codec economics of the hot certify
// path.
type WireReport struct {
	UpdateLocal WirePoint
	UpdateTCP   WirePoint
	ReadLocal   WirePoint
	ReadTCP     WirePoint

	// Codec sizes for a representative certify request carrying a
	// typical small writeset (same value through both encoders).
	BinaryRequestBytes int
	GobRequestBytes    int

	// Mean wire bytes per RPC observed during the TCP update run.
	BytesPerCall float64

	Clients  int
	Replicas int
}

// UpdateRatio returns in-memory/TCP update throughput (1.0 = parity;
// the acceptance bar is <= 2.0).
func (r WireReport) UpdateRatio() float64 {
	if r.UpdateTCP.Throughput == 0 {
		return 0
	}
	return r.UpdateLocal.Throughput / r.UpdateTCP.Throughput
}

// RunWireExperiment measures what the real wire costs: the update-heavy
// AllUpdates mix on a 3-replica Tashkent-MW cluster and the engine-bound
// TPC-W read mix on one replica, each run twice — once over the
// in-memory fabric the simulations use and once with every
// replica↔certifier and certifier↔certifier link on localhost TCP
// sockets through the framed transport. It also records the size of a
// representative certify request under the pooled binary codec versus
// gob, and the observed bytes per RPC. This is the experiment behind
// BENCH_wire.json.
func RunWireExperiment(o Options) (*WireReport, error) {
	o = o.withDefaults()
	const replicas, clients = 3, 8

	rep := &WireReport{Clients: clients, Replicas: replicas}
	fmt.Fprintf(o.Out, "\n=== wire: in-memory fabric vs localhost TCP ===\n")
	fmt.Fprintf(o.Out, "update=AllUpdates@%d replicas  read=TPC-W(engine-bound)@1 replica  clients=%d  scale=1/%d\n",
		replicas, clients, o.Scale)

	for _, tr := range []string{"local", "tcp"} {
		up, err := runWireUpdate(tr, replicas, clients, o)
		if err != nil {
			return rep, fmt.Errorf("wire update/%s: %w", tr, err)
		}
		rd, err := runWireRead(tr, clients, o)
		if err != nil {
			return rep, fmt.Errorf("wire read/%s: %w", tr, err)
		}
		if tr == "local" {
			rep.UpdateLocal, rep.ReadLocal = up, rd
		} else {
			rep.UpdateTCP, rep.ReadTCP = up, rd
		}
	}

	// Codec economics: one certify request with a typical small
	// writeset, through the tagged binary fast path and through gob.
	req := &certifier.Request{
		Origin: 3, StartVersion: 1000, ReplicaVersion: 990,
		WSBytes: bytes.Repeat([]byte{0xAB}, 120), NeedSafeBack: true,
	}
	binB, err := transport.EncodeMessage(req)
	if err != nil {
		return rep, err
	}
	gobB, err := transport.GobEncode(req)
	if err != nil {
		return rep, err
	}
	rep.BinaryRequestBytes, rep.GobRequestBytes = len(binB), len(gobB)
	if w := rep.UpdateTCP.Wire; w.Calls > 0 {
		rep.BytesPerCall = float64(w.BytesOut+w.BytesIn) / float64(w.Calls)
	}

	fmt.Fprintf(o.Out, "\ntransport\tupdate txn/s\tupdate RT(ms)\tread txn/s\tread RT(ms)\n")
	for _, row := range []struct {
		up, rd WirePoint
	}{{rep.UpdateLocal, rep.ReadLocal}, {rep.UpdateTCP, rep.ReadTCP}} {
		fmt.Fprintf(o.Out, "%s\t%.0f\t%.2f\t%.0f\t%.2f\n",
			row.up.Transport, row.up.Throughput,
			float64(row.up.MeanRT.Microseconds())/1000,
			row.rd.Throughput, float64(row.rd.MeanRT.Microseconds())/1000)
	}
	fmt.Fprintf(o.Out, "\nupdate in-memory/TCP ratio: %.2fx (bar: <=2x)\n", rep.UpdateRatio())
	fmt.Fprintf(o.Out, "certify request: binary %dB vs gob %dB (%.0f%% of gob)\n",
		rep.BinaryRequestBytes, rep.GobRequestBytes,
		100*float64(rep.BinaryRequestBytes)/float64(rep.GobRequestBytes))
	if rep.BytesPerCall > 0 {
		w := rep.UpdateTCP.Wire
		fmt.Fprintf(o.Out, "TCP update run: %d calls, %.0f B/call mean, %d redials\n",
			w.Calls, rep.BytesPerCall, w.Redials)
	}
	return rep, nil
}

// runWireUpdate measures the AllUpdates mix over one transport backend.
func runWireUpdate(tr string, replicas, clients int, o Options) (WirePoint, error) {
	c, err := cluster.New(cluster.Config{
		Mode:               proxy.TashkentMW,
		Replicas:           replicas,
		Certifiers:         3,
		Transport:          tr,
		IOProfile:          o.profile(),
		DedicatedIO:        true,
		CertMaxBatch:       o.CertMaxBatch,
		CertMaxWait:        o.CertMaxWait,
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        5 * time.Second,
		OrderTimeout:       10 * time.Second,
		Seed:               o.Seed,
	})
	if err != nil {
		return WirePoint{}, err
	}
	defer c.Close()
	return runWirePoint(c, tr, &workload.AllUpdates{}, replicas, clients, o)
}

// runWireRead measures the engine-bound TPC-W read mix on one replica
// over one transport backend.
func runWireRead(tr string, clients int, o Options) (WirePoint, error) {
	c, err := cluster.New(cluster.Config{
		Mode:               proxy.TashkentMW,
		Replicas:           1,
		Certifiers:         3,
		Transport:          tr,
		IOProfile:          o.profile(),
		DedicatedIO:        true,
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        5 * time.Second,
		OrderTimeout:       10 * time.Second,
		Seed:               o.Seed,
	})
	if err != nil {
		return WirePoint{}, err
	}
	defer c.Close()
	return runWirePoint(c, tr, readScaleWorkload(), 1, clients, o)
}

func runWirePoint(c *cluster.Cluster, tr string, wl workload.Generator, replicas, clients int, o Options) (WirePoint, error) {
	ctx := context.Background()
	begin0 := workload.Plain(func() (workload.PlainTx, error) { return c.Begin(0) })
	if err := wl.Populate(ctx, begin0); err != nil {
		return WirePoint{}, fmt.Errorf("populate: %w", err)
	}
	if err := c.ConvergeAll(30 * time.Second); err != nil {
		return WirePoint{}, err
	}
	begins := make([]workload.BeginFunc, replicas)
	for i := 0; i < replicas; i++ {
		i := i
		begins[i] = workload.Plain(func() (workload.PlainTx, error) { return c.Begin(i) })
	}
	res := workload.Run(ctx, wl, begins, workload.RunConfig{
		ClientsPerReplica: clients,
		Warmup:            o.Warmup,
		Measure:           o.Measure,
		ExecTime:          o.ExecTime,
		Seed:              o.Seed,
	})
	return WirePoint{
		Transport:  tr,
		Throughput: res.Throughput,
		MeanRT:     res.RT.Mean,
		Wire:       c.WireStats(),
	}, nil
}

// WriteJSON records the report as BENCH_wire.json-style output.
func (r *WireReport) WriteJSON(path, command string) error {
	type tp struct {
		UpdateTxnPerS float64 `json:"update_txn_per_s"`
		UpdateRTMS    float64 `json:"update_rt_ms"`
		ReadTxnPerS   float64 `json:"read_txn_per_s"`
		ReadRTMS      float64 `json:"read_rt_ms"`
	}
	doc := struct {
		Benchmark string  `json:"benchmark"`
		Command   string  `json:"command"`
		Workload  string  `json:"workload"`
		Date      string  `json:"date"`
		Host      string  `json:"host"`
		InMemory  tp      `json:"in_memory"`
		TCP       tp      `json:"tcp"`
		Ratio     float64 `json:"update_inmemory_over_tcp_ratio"`
		Codec     struct {
			BinaryRequestBytes int     `json:"binary_request_bytes"`
			GobRequestBytes    int     `json:"gob_request_bytes"`
			BytesPerCall       float64 `json:"tcp_mean_bytes_per_call"`
		} `json:"codec"`
		Wire  transport.WireStats `json:"tcp_update_wire_stats"`
		Notes []string            `json:"notes"`
	}{
		Benchmark: "in-memory fabric vs localhost TCP transport",
		Command:   command,
		Workload: fmt.Sprintf("AllUpdates on %d replicas and engine-bound TPC-W on 1 replica, %d closed-loop clients per replica, dedicated IO; identical runs over the in-memory fabric and over framed localhost TCP with the pooled binary codec",
			r.Replicas, r.Clients),
		Date: time.Now().Format("2006-01-02"),
		Host: fmt.Sprintf("%s/%s, %d CPU, GOMAXPROCS=%d", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.GOMAXPROCS(0)),
		InMemory: tp{
			UpdateTxnPerS: r.UpdateLocal.Throughput,
			UpdateRTMS:    float64(r.UpdateLocal.MeanRT.Microseconds()) / 1000,
			ReadTxnPerS:   r.ReadLocal.Throughput,
			ReadRTMS:      float64(r.ReadLocal.MeanRT.Microseconds()) / 1000,
		},
		TCP: tp{
			UpdateTxnPerS: r.UpdateTCP.Throughput,
			UpdateRTMS:    float64(r.UpdateTCP.MeanRT.Microseconds()) / 1000,
			ReadTxnPerS:   r.ReadTCP.Throughput,
			ReadRTMS:      float64(r.ReadTCP.MeanRT.Microseconds()) / 1000,
		},
		Ratio: r.UpdateRatio(),
		Wire:  r.UpdateTCP.Wire,
		Notes: []string{
			"Reads never cross the wire (snapshot reads are replica-local); the read sweep bounds the incidental cost of running the certification control plane over sockets.",
			"The update ratio is the acceptance metric: TCP update-heavy throughput must stay within 2x of in-memory at 8 clients.",
			"binary_request_bytes vs gob_request_bytes is one certify request carrying a 120-byte writeset through the tagged binary fast path vs gob.",
		},
	}
	doc.Codec.BinaryRequestBytes = r.BinaryRequestBytes
	doc.Codec.GobRequestBytes = r.GobRequestBytes
	doc.Codec.BytesPerCall = r.BytesPerCall
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Wire shapes of the tashd kv/admin API (gob matches by field name).
type wirePutReq struct {
	Table, Key, Col string
	Value           []byte
}
type wirePutResp struct{ Aborted bool }
type wireGetReq struct{ Table, Key, Col string }
type wireGetResp struct {
	Value []byte
	Found bool
}
type wireStatResp struct {
	Replica     int
	Version     uint64
	Fingerprint uint32
}
type wirePullResp struct{ Version uint64 }

// RunWireSmoke drives an externally launched multi-process cluster: it
// commits update transactions round-robin across the given tashd
// daemon addresses, reads one back from every daemon, then pulls every
// replica until all report the same version and asserts the
// fingerprints are identical. It is the convergence check behind
// scripts/wire_smoke.sh and the CI wire job.
func RunWireSmoke(daemons []string, o Options) error {
	o = o.withDefaults()
	if len(daemons) == 0 {
		return fmt.Errorf("wire smoke: no daemon addresses")
	}
	clients := make([]transport.Client, len(daemons))
	for i, addr := range daemons {
		clients[i] = transport.DialTCP(addr)
		defer clients[i].Close()
	}

	const commits = 60
	fmt.Fprintf(o.Out, "wire smoke: %d commits across %d daemons\n", commits, len(daemons))
	for i := 0; i < commits; i++ {
		c := clients[i%len(clients)]
		var resp wirePutResp
		req := wirePutReq{Table: "smoke", Key: fmt.Sprintf("k%d", i), Col: "v", Value: []byte(fmt.Sprintf("v%d", i))}
		if err := wireCall(c, "kv.put", req, &resp); err != nil {
			return fmt.Errorf("wire smoke: put k%d via %s: %w", i, daemons[i%len(clients)], err)
		}
		if resp.Aborted {
			return fmt.Errorf("wire smoke: put k%d aborted", i)
		}
	}

	// Every daemon must serve a committed key (possibly after pulling).
	for i, c := range clients {
		var get wireGetResp
		if err := wireCall(c, "kv.get", wireGetReq{Table: "smoke", Key: fmt.Sprintf("k%d", i%commits), Col: "v"}, &get); err != nil {
			return fmt.Errorf("wire smoke: get via %s: %w", daemons[i], err)
		}
	}

	// Converge: pull every replica until versions agree, then compare
	// fingerprints at that common version.
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats := make([]wireStatResp, len(clients))
		same := true
		for i, c := range clients {
			var pull wirePullResp
			if err := wireAdmin(c, "admin.pull", &pull); err != nil {
				return fmt.Errorf("wire smoke: pull via %s: %w", daemons[i], err)
			}
			if err := wireAdmin(c, "admin.stat", &stats[i]); err != nil {
				return fmt.Errorf("wire smoke: stat via %s: %w", daemons[i], err)
			}
			if stats[i].Version != stats[0].Version {
				same = false
			}
		}
		if same {
			for i := 1; i < len(stats); i++ {
				if stats[i].Fingerprint != stats[0].Fingerprint {
					return fmt.Errorf("wire smoke: divergence at version %d: replica %d fingerprint %08x != replica %d fingerprint %08x",
						stats[0].Version, stats[i].Replica, stats[i].Fingerprint, stats[0].Replica, stats[0].Fingerprint)
				}
			}
			fmt.Fprintf(o.Out, "wire smoke: %d daemons converged at version %d, fingerprint %08x\n",
				len(stats), stats[0].Version, stats[0].Fingerprint)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wire smoke: daemons did not converge: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func wireCall(c transport.Client, method string, req, resp interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return err
	}
	b, err := c.Call(method, buf.Bytes())
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(resp)
}

func wireAdmin(c transport.Client, method string, resp interface{}) error {
	b, err := c.Call(method, nil)
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(resp)
}
