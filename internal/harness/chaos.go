package harness

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/chaos"
	"tashkent/internal/cluster"
	"tashkent/internal/mvstore"
	"tashkent/internal/partition"
	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
	"tashkent/internal/workload"
)

// This file implements `tashbench -exp chaos`: seeded, deterministic
// fault-schedule runs against a full cluster, with every client-visible
// outcome recorded and verified by the chaos invariant checker.
//
// One seed fully determines the plan: the system mode, the injector's
// per-link fault probabilities and decision streams, and the fault
// event timeline (partitions, link cuts, crash-restarts of a replica
// and a certifier, a concurrent dump). The plan digest printed per
// seed is a pure function of the seed, so a failing run is replayed
// with `tashbench -exp chaos -seed S`.

// chaosReplicas and chaosCertifiers size every chaos cluster.
const (
	chaosReplicas   = 3
	chaosCertifiers = 3
)

// faultEvent is one planned fault. Kind selects the action; Node and
// From/To target it; Dur is how long until the heal/restart.
type faultEvent struct {
	At   time.Duration
	Dur  time.Duration
	Kind string // "cut" | "partition-cert" | "crash-replica" | "crash-certifier" | "crash-group-leader" | "dump"
	Node int
	From string
	To   string
}

// chaosPlan is everything a seed determines up front.
type chaosPlan struct {
	seed       int64
	mode       proxy.Mode
	partitions int // certifier groups (1 = classic single-group system)
	rules      chaos.Rules
	window     time.Duration
	events     []faultEvent
	links      []string

	// Gray-failure extensions (see gray.go): per-link rule overrides —
	// slow or lossy victim links in an otherwise healthy mesh — and
	// the per-op stall a "slow-disk" event injects through the
	// victim replica's simdisk hooks.
	gray      []grayOverride
	diskDelay time.Duration
}

// grayOverride is one victim link's degraded rules.
type grayOverride struct {
	From, To string
	Rules    chaos.Rules
}

// applyGray installs the plan's per-link overrides on an injector.
func (p chaosPlan) applyGray(inj *chaos.Injector) {
	for _, g := range p.gray {
		inj.SetLinkRules(g.From, g.To, g.Rules)
	}
}

// certNodeName names flat certifier node i under the plan's topology.
func certNodeName(partitions, i int) string {
	if partitions <= 1 {
		return cluster.CertifierName(i)
	}
	return cluster.GroupCertifierName(i/chaosCertifiers, i%chaosCertifiers)
}

// chaosLinks enumerates every fabric link of the cluster topology.
// Partitioned topologies have no certifier links across groups — the
// groups are independent paxos clusters.
func chaosLinks(partitions int) []string {
	if partitions < 1 {
		partitions = 1
	}
	nodes := partitions * chaosCertifiers
	var out []string
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i != j && i/chaosCertifiers == j/chaosCertifiers {
				out = append(out, certNodeName(partitions, i)+"→"+certNodeName(partitions, j))
			}
		}
	}
	for r := 0; r < chaosReplicas; r++ {
		for i := 0; i < nodes; i++ {
			out = append(out, cluster.ReplicaName(r)+"→"+certNodeName(partitions, i))
		}
	}
	return out
}

// buildChaosPlan derives the full fault plan from the seed — a pure
// function, so two runs of the same seed execute the identical
// schedule.
func buildChaosPlan(seed int64, window time.Duration) chaosPlan {
	rng := rand.New(rand.NewSource(seed ^ 0xC4A05))
	modes := []proxy.Mode{proxy.TashkentMW, proxy.TashkentAPI, proxy.Base}
	// Half the seeds run partitioned certification (2 or 4 groups); the
	// rest keep the classic single-group system under fire.
	partitions := 1
	if rng.Intn(2) == 1 {
		partitions = []int{2, 4}[rng.Intn(2)]
	}
	p := chaosPlan{
		seed:       seed,
		mode:       modes[rng.Intn(len(modes))],
		partitions: partitions,
		window:     window,
		links:      chaosLinks(partitions),
		rules: chaos.Rules{
			DropProb:     0.01 + 0.03*rng.Float64(),
			DropRespProb: 0.01 + 0.02*rng.Float64(),
			DupProb:      0.01 + 0.02*rng.Float64(),
			DelayProb:    0.05 + 0.10*rng.Float64(),
			MaxDelay:     time.Duration(1+rng.Intn(4)) * time.Millisecond,
		},
	}
	nodes := partitions * chaosCertifiers
	at := func(loFrac, hiFrac float64) time.Duration {
		lo, hi := float64(window)*loFrac, float64(window)*hiFrac
		return time.Duration(lo + rng.Float64()*(hi-lo))
	}
	dur := func() time.Duration {
		return time.Duration(20+rng.Intn(40)) * time.Millisecond
	}

	// Mandatory coverage per seed: one replica crash-restart, one
	// certifier crash-restart, one certifier partition, one asymmetric
	// replica→certifier cut. Crash windows are placed apart so at most
	// one certifier is ever down (a group needs its majority).
	// Partitioned plans crash a *group leader* picked at run time — the
	// schedule fixes which group loses its leader, the cluster decides
	// who that is.
	if partitions > 1 {
		p.events = append(p.events,
			faultEvent{At: at(0.10, 0.30), Dur: dur(), Kind: "crash-group-leader", Node: rng.Intn(partitions)})
	} else {
		p.events = append(p.events,
			faultEvent{At: at(0.10, 0.30), Dur: dur(), Kind: "crash-certifier", Node: rng.Intn(nodes)})
	}
	p.events = append(p.events,
		faultEvent{At: at(0.55, 0.75), Dur: dur(), Kind: "crash-replica", Node: rng.Intn(chaosReplicas)},
		faultEvent{At: at(0.20, 0.60), Dur: dur(), Kind: "partition-cert", Node: rng.Intn(nodes)},
		faultEvent{
			At: at(0.20, 0.60), Dur: dur(), Kind: "cut",
			From: cluster.ReplicaName(rng.Intn(chaosReplicas)),
			To:   certNodeName(partitions, rng.Intn(nodes)),
		},
		faultEvent{At: at(0.30, 0.50), Kind: "dump", Node: rng.Intn(chaosReplicas)},
	)
	// A few extra random cuts for asymmetry variety (within a group —
	// cross-group certifier links do not exist).
	for n := rng.Intn(3); n > 0; n-- {
		g := rng.Intn(partitions)
		from := g*chaosCertifiers + rng.Intn(chaosCertifiers)
		to := g*chaosCertifiers + rng.Intn(chaosCertifiers)
		if from == to {
			continue
		}
		p.events = append(p.events, faultEvent{
			At: at(0.10, 0.70), Dur: dur(), Kind: "cut",
			From: certNodeName(partitions, from), To: certNodeName(partitions, to),
		})
	}
	sort.Slice(p.events, func(i, j int) bool { return p.events[i].At < p.events[j].At })
	return p
}

// Digest fingerprints the planned fault schedule: the event timeline
// plus the injector's per-link decision streams. Identical for two
// runs of the same seed.
func (p chaosPlan) Digest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "mode=%d parts=%d window=%d rules=%+v\n", p.mode, p.partitions, p.window, p.rules)
	for _, e := range p.events {
		fmt.Fprintf(h, "%d %s n%d %s->%s %d\n", e.At, e.Kind, e.Node, e.From, e.To, e.Dur)
	}
	for _, g := range p.gray {
		fmt.Fprintf(h, "gray %s->%s %+v\n", g.From, g.To, g.Rules)
	}
	if p.diskDelay > 0 {
		fmt.Fprintf(h, "diskDelay=%d\n", p.diskDelay)
	}
	inj := chaos.NewInjector(p.seed, p.rules)
	p.applyGray(inj)
	fmt.Fprintf(h, "plan=%x\n", inj.PlanDigest(p.links, 512))
	return h.Sum64()
}

// ChaosResult is one seed's outcome.
type ChaosResult struct {
	Seed       int64
	Mode       proxy.Mode
	Partitions int
	Digest     uint64
	Acked      int
	Aborted    int
	Unknown    int
	Reads      int
	LogEntries int
	Faults     chaos.Stats
	Violations []error
}

// Passed reports whether every invariant held.
func (r ChaosResult) Passed() bool { return len(r.Violations) == 0 }

// chaosTable and chaosCol are the workload schema of the chaos
// drivers.
const (
	chaosTable = "chaos"
	chaosCol   = "v"
	chaosKeys  = 48
)

// RunChaosSeed executes one seeded chaos run and verifies the
// invariants. The returned error reports infrastructure failures
// (cluster refused to start, never converged); invariant violations
// are in the result.
func RunChaosSeed(seed int64, o Options) (ChaosResult, error) {
	return runChaosPlan(buildChaosPlan(seed, 300*time.Millisecond), o)
}

// runChaosPlan executes one fault plan against a fresh cluster.
func runChaosPlan(plan chaosPlan, o Options) (ChaosResult, error) {
	o = o.withDefaults()
	seed := plan.seed
	window := plan.window
	res := ChaosResult{Seed: seed, Mode: plan.mode, Partitions: plan.partitions, Digest: plan.Digest()}

	checker := chaos.NewChecker()
	c, err := cluster.New(cluster.Config{
		Mode:       plan.mode,
		Replicas:   chaosReplicas,
		Certifiers: chaosCertifiers,
		Partitions: plan.partitions,
		IOProfile: simdisk.Profile{
			FsyncLatency: 200 * time.Microsecond,
			FsyncJitter:  100 * time.Microsecond,
		},
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        time.Second,
		OrderTimeout:       2 * time.Second,
		CertTimeout:        2 * time.Second,
		SeqTimeout:         300 * time.Millisecond,
		StalenessBound:     100 * time.Millisecond,
		SeqObserver:        checker.SeqObserver,
		// Parallel dependency-tracked apply, active in API/partitioned
		// plans — the chaos suite doubles as its crash/resync soak.
		ApplyWorkers: 8,
		Seed:         seed,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()

	inj := chaos.NewInjector(seed, plan.rules)
	plan.applyGray(inj)
	c.Fabric().SetInterposer(inj)

	ctx, cancel := context.WithCancel(context.Background())
	var workers sync.WaitGroup
	var mu sync.Mutex // guards the tallies below
	acked, aborted, unknown := 0, 0, 0

	inj.Enable()
	for w := 0; w < 2*chaosReplicas; w++ {
		w := w
		workers.Add(1)
		go func() {
			defer workers.Done()
			rng := rand.New(rand.NewSource(seed*1_000_003 + int64(w)))
			rep := w % chaosReplicas
			n := 0
			for ctx.Err() == nil {
				origin := rep + 1 // proxy origin id of the chosen replica
				tx, err := c.Begin(rep)
				if err != nil {
					rep = (rep + 1) % chaosReplicas // replica down: roam
					continue
				}
				key := fmt.Sprintf("k%02d", rng.Intn(chaosKeys))
				if rng.Float64() < 0.25 {
					val, found, rerr := tx.ReadCol(chaosTable, key, chaosCol)
					if rerr == nil {
						checker.RecordRead(chaos.Read{
							Worker: w,
							Start:  tx.SnapshotVersion(), Observed: tx.ObservedVersion(),
							Table: chaosTable, Key: key, Col: chaosCol,
							Value: string(val), Found: found,
						})
					}
					tx.Abort()
					continue
				}
				n++
				val := fmt.Sprintf("w%d-%d", w, n)
				keys := []string{key}
				if plan.partitions > 1 && rng.Float64() < 0.25 {
					// Multi-key update: with multiple keys the writeset
					// usually spans partitions, exercising the prepare/
					// resolve path under fire.
					k2 := fmt.Sprintf("k%02d", rng.Intn(chaosKeys))
					if k2 != key {
						keys = append(keys, k2)
					}
				}
				abortedWrite := false
				for _, k := range keys {
					if err := tx.Update(chaosTable, k, map[string][]byte{chaosCol: []byte(val)}); err != nil {
						tx.Abort()
						abortedWrite = true
						break
					}
				}
				if abortedWrite {
					continue
				}
				switch err := tx.Commit(); {
				case err == nil:
					for ki, k := range keys {
						// Every key of a multi-key commit is durably in the
						// log at the same merged version; give extra keys a
						// synthetic worker id so the per-worker version-
						// monotonicity check isn't tripped by duplicates.
						checker.RecordAck(chaos.Ack{
							Worker: w + ki*1000, Origin: origin, Version: tx.CommitVersion(),
							Table: chaosTable, Key: k, Col: chaosCol, Value: val,
						})
					}
					mu.Lock()
					acked++
					mu.Unlock()
				case workload.IsAbort(err):
					mu.Lock()
					aborted++
					mu.Unlock()
				default:
					// Outcome unknown: the commit may have landed (lost
					// response) or not (lost request) — either is legal,
					// the log is the arbiter.
					mu.Lock()
					unknown++
					mu.Unlock()
				}
			}
		}()
	}

	// Execute the fault timeline.
	var drills sync.WaitGroup
	start := time.Now()
	certDown := make(chan struct{}, 1) // at most one certifier down at a time
	for _, ev := range plan.events {
		ev := ev
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		switch ev.Kind {
		case "cut":
			inj.CutLink(ev.From, ev.To)
			drills.Add(1)
			time.AfterFunc(ev.Dur, func() {
				defer drills.Done()
				inj.HealLink(ev.From, ev.To)
			})
		case "partition-cert":
			// Isolate the node from its own group's peers (the only
			// certifier links that exist).
			base := (ev.Node / chaosCertifiers) * chaosCertifiers
			var peers []string
			for k := 0; k < chaosCertifiers; k++ {
				if i := base + k; i != ev.Node {
					peers = append(peers, certNodeName(plan.partitions, i))
				}
			}
			me := certNodeName(plan.partitions, ev.Node)
			inj.Isolate(me, peers...)
			drills.Add(1)
			time.AfterFunc(ev.Dur, func() {
				defer drills.Done()
				for _, p := range peers {
					inj.HealLink(me, p)
					inj.HealLink(p, me)
				}
			})
		case "crash-replica":
			c.CrashReplica(ev.Node)
			drills.Add(1)
			time.AfterFunc(ev.Dur, func() {
				defer drills.Done()
				chaos.WaitUntil(10*time.Second, func() bool {
					_, err := c.RecoverReplica(ev.Node)
					return err == nil
				})
			})
		case "crash-certifier", "crash-group-leader":
			node := ev.Node
			if ev.Kind == "crash-group-leader" {
				// The plan fixes which group loses its leader; the
				// cluster's current election decides who that is.
				if node = c.GroupLeaderIndex(ev.Node); node < 0 {
					continue // mid-election; skip rather than stall the plan
				}
			}
			select {
			case certDown <- struct{}{}:
			default:
				continue // another certifier is still down; keep the majority
			}
			img := c.CrashCertifier(node)
			drills.Add(1)
			time.AfterFunc(ev.Dur, func() {
				defer drills.Done()
				defer func() { <-certDown }()
				chaos.WaitUntil(10*time.Second, func() bool {
					return c.RecoverCertifier(node, img) == nil
				})
			})
		case "dump":
			if r := c.Replica(ev.Node); r != nil {
				r.DumpNow() // best effort; a concurrent crash may refuse it
			}
		case "slow-disk":
			// Gray failure: the replica stays up and keeps answering,
			// but every disk op stalls — the node is slow, not dead.
			r := c.Replica(ev.Node)
			if r == nil {
				continue
			}
			delay := plan.diskDelay
			hook := func(simdisk.Op, int, int) { time.Sleep(delay) }
			r.DataDisk().SetHook(hook)
			r.LogDisk().SetHook(hook)
			drills.Add(1)
			time.AfterFunc(ev.Dur, func() {
				defer drills.Done()
				if r := c.Replica(ev.Node); r != nil {
					r.DataDisk().SetHook(nil)
					r.LogDisk().SetHook(nil)
				}
			})
		}
	}
	if d := time.Until(start.Add(window)); d > 0 {
		time.Sleep(d)
	}

	// Heal, drain, converge.
	cancel()
	workers.Wait()
	drills.Wait()
	inj.Disable()
	inj.HealAll()
	res.Faults = inj.Stats()
	mu.Lock()
	res.Acked, res.Aborted, res.Unknown = acked, aborted, unknown
	mu.Unlock()
	res.Reads = checker.Reads()

	if !chaos.WaitUntil(10*time.Second, func() bool {
		for g := 0; g < c.Groups(); g++ {
			if c.GroupLeader(g) == nil {
				return false
			}
		}
		return true
	}) {
		return res, fmt.Errorf("chaos seed %d: not every certifier group elected a leader after healing", seed)
	}
	// Finalize the tail: a post-failover leader cannot commit the
	// previous term's entries until one of its own commits, so a quiet
	// healed group would under-report its committed prefix and the
	// ground-truth log would exclude acked transactions.
	if _, err := c.Barrier(10 * time.Second); err != nil {
		return res, fmt.Errorf("chaos seed %d: %w", seed, err)
	}
	if !chaos.WaitUntil(20*time.Second, func() bool { return c.ConvergeAll(2*time.Second) == nil }) {
		return res, fmt.Errorf("chaos seed %d: cluster never converged after healing", seed)
	}
	// Wait for async appliers to publish; if the replicas still
	// disagree afterwards, Verify reports the divergence with the
	// fingerprints attached.
	agreed := chaos.WaitUntil(10*time.Second, func() bool {
		fps := c.Fingerprints()
		for i := 1; i < len(fps); i++ {
			if fps[i] != fps[0] {
				return false
			}
		}
		return true
	})
	if !agreed && os.Getenv("CHAOS_DIFF") != "" {
		if log, err := groundTruthLog(c); err == nil {
			for r := 0; r < c.Replicas(); r++ {
				fmt.Printf("STATE r%d announced=%d rv=%d stats=%+v\n",
					r, c.Replica(r).Store().AnnouncedVersion(), c.Replica(r).Proxy().ReplicaVersion(),
					c.Replica(r).Store().Stats())
			}
			dumpChaosDiff(c, log)
		}
	}

	log, err := groundTruthLog(c)
	if err != nil {
		return res, fmt.Errorf("chaos seed %d: reading committed log: %w", seed, err)
	}
	res.LogEntries = len(log)
	replayFP, err := replayFingerprint(log)
	if err != nil {
		return res, fmt.Errorf("chaos seed %d: replaying log: %w", seed, err)
	}
	res.Violations = checker.Verify(chaos.VerifyInput{
		Log:               log,
		Fingerprints:      c.Fingerprints(),
		ReplayFingerprint: replayFP,
	})
	if res.Acked == 0 {
		res.Violations = append(res.Violations,
			fmt.Errorf("liveness: no commit was ever acknowledged under seed %d", seed))
	}
	if len(res.Violations) > 0 && os.Getenv("CHAOS_DIFF") != "" {
		dumpChaosDiff(c, log)
	}
	return res, nil
}

// dumpChaosDiff prints, for every chaos key, each replica's value vs
// the log-derived expectation (debug aid, CHAOS_DIFF=1).
func dumpChaosDiff(c *cluster.Cluster, log []chaos.LogEntry) {
	expect := map[string]string{}
	valVer := map[string][]uint64{}
	for _, e := range log {
		for i := range e.WS.Ops {
			op := &e.WS.Ops[i]
			for _, cu := range op.Cols {
				if op.Table == chaosTable && cu.Col == chaosCol {
					expect[op.Key] = string(cu.Value)
				}
				valVer[string(cu.Value)] = append(valVer[string(cu.Value)], e.Version)
			}
		}
	}
	for k := 0; k < chaosKeys; k++ {
		key := fmt.Sprintf("k%02d", k)
		want := expect[key]
		line := ""
		bad := false
		for r := 0; r < c.Replicas(); r++ {
			tx, err := c.Begin(r)
			if err != nil {
				line += fmt.Sprintf(" r%d=ERR", r)
				continue
			}
			v, ok, _ := tx.ReadCol(chaosTable, key, chaosCol)
			tx.Abort()
			got := string(v)
			if !ok {
				got = "<absent>"
			}
			if got != want {
				bad = true
			}
			line += fmt.Sprintf(" r%d=%q(v%v)", r, got, valVer[got])
		}
		if bad {
			fmt.Printf("DIFF %s want %q(v%v):%s\n", key, want, valVer[want], line)
		}
	}
}

// groundTruthLog builds the checker's ground truth: the single
// certifier log in classic mode, or the deterministic merge of every
// group's log in partitioned mode.
func groundTruthLog(c *cluster.Cluster) ([]chaos.LogEntry, error) {
	if c.Groups() <= 1 {
		return committedLog(c.CertLeader())
	}
	return mergedCommittedLogs(c)
}

// mergedCommittedLogs rebuilds the merged apply order from the N group
// leaders' committed logs, exactly as a replica's assembler would —
// the ground truth of a partitioned run. Versions are merged versions;
// entries that install nothing (fills, prepares, markers past the
// first) are omitted, so the version sequence has gaps the checker
// tolerates.
func mergedCommittedLogs(c *cluster.Cluster) ([]chaos.LogEntry, error) {
	asm := partition.NewAssembler(c.Groups())
	total := 0
	for g := 0; g < c.Groups(); g++ {
		leader := c.GroupLeader(g)
		if leader == nil {
			return nil, fmt.Errorf("group %d has no leader", g)
		}
		commit := leader.Node().CommitIndex()
		_, _, entries := leader.Node().SnapshotLog()
		if uint64(len(entries)) < commit {
			return nil, fmt.Errorf("group %d log %d shorter than commit index %d", g, len(entries), commit)
		}
		for _, e := range entries[:commit] {
			if err := asm.Offer(g, e.Index, e.Data); err != nil {
				return nil, fmt.Errorf("group %d entry %d: %w", g, e.Index, err)
			}
		}
		total += int(commit)
	}
	out := make([]chaos.LogEntry, 0, total)
	emitted := 0
	for {
		act, ok := asm.Next()
		if !ok {
			break
		}
		emitted++
		if act.WS != nil {
			out = append(out, chaos.LogEntry{Version: act.MV, Origin: act.Origin, WS: act.WS})
		}
	}
	if emitted < total {
		g, idx := asm.Blocking()
		return nil, fmt.Errorf("merge stalled at %d of %d entries, waiting for group %d index %d (group heads unequal?)",
			emitted, total, g, idx)
	}
	return out, nil
}

// committedLog decodes the leader's committed log prefix into checker
// ground truth.
func committedLog(leader *certifier.Server) ([]chaos.LogEntry, error) {
	if leader == nil {
		return nil, fmt.Errorf("no leader")
	}
	commit := leader.Node().CommitIndex()
	_, _, entries := leader.Node().SnapshotLog()
	if uint64(len(entries)) < commit {
		return nil, fmt.Errorf("leader log %d shorter than commit index %d", len(entries), commit)
	}
	out := make([]chaos.LogEntry, 0, commit)
	for _, e := range entries[:commit] {
		ent, err := certifier.DecodeLogEntry(e.Data)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", e.Index, err)
		}
		out = append(out, chaos.LogEntry{Version: e.Index, Origin: ent.Origin, WS: ent.WS})
	}
	return out, nil
}

// replayFingerprint applies the committed log to a fresh store — a
// witness that never crashed, never saw a partition, and never applied
// anything out of order — and fingerprints the result.
func replayFingerprint(log []chaos.LogEntry) (uint32, error) {
	s := mvstore.Open(mvstore.Config{})
	defer s.Close()
	prev := uint64(0)
	for _, e := range log {
		tx, err := s.Begin()
		if err != nil {
			return 0, err
		}
		if err := tx.ApplyWriteset(e.WS); err != nil {
			tx.Abort()
			return 0, err
		}
		if err := tx.CommitLabeled(prev, e.Version); err != nil {
			return 0, err
		}
		prev = e.Version
	}
	return s.Fingerprint(), nil
}

// RunChaosExperiment runs every seed and prints a per-seed table. The
// returned error lists the failing seeds (infrastructure failures and
// invariant violations alike) — the replay handle for debugging.
func RunChaosExperiment(seeds []int64, o Options) ([]ChaosResult, error) {
	o = o.withDefaults()
	fmt.Fprintf(o.Out, "\n=== chaos: seeded fault-injection + invariant check ===\n")
	fmt.Fprintf(o.Out, "seed\tmode\tparts\tdigest\tacked\taborted\tunknown\treads\tlog\tdrops\tdups\tdelays\tcuts\tverdict\n")
	var results []ChaosResult
	var failing []int64
	for _, seed := range seeds {
		res, err := RunChaosSeed(seed, o)
		if err != nil {
			res.Violations = append(res.Violations, err)
		}
		results = append(results, res)
		verdict := "PASS"
		if !res.Passed() {
			verdict = "FAIL"
			failing = append(failing, seed)
		}
		fmt.Fprintf(o.Out, "%d\t%s\t%d\t%016x\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			res.Seed, res.Mode, res.Partitions, res.Digest, res.Acked, res.Aborted, res.Unknown, res.Reads,
			res.LogEntries, res.Faults.DroppedReqs+res.Faults.DroppedResps,
			res.Faults.Duplicated, res.Faults.Delayed, res.Faults.CutDrops, verdict)
		for _, v := range res.Violations {
			fmt.Fprintf(o.Out, "  seed %d: %v\n", res.Seed, v)
		}
	}
	if len(failing) > 0 {
		return results, fmt.Errorf("chaos: %d/%d seeds failed invariants: %v (replay with -exp chaos -seed S)",
			len(failing), len(seeds), failing)
	}
	return results, nil
}
