package harness

import (
	"context"
	"fmt"
	"time"

	"tashkent/internal/cluster"
	"tashkent/internal/metrics"
	"tashkent/internal/proxy"
	"tashkent/internal/workload"
)

// PartitionPoint is one measured partition-count sample of the
// certification-scaling sweep.
type PartitionPoint struct {
	Partitions int
	Result     workload.Result
	// GroupBatch and GroupRatio are the per-group leader's pipeline
	// batch sizes and writesets per fsync (index = partition id; one
	// entry for the classic single-group system).
	GroupBatch []metrics.DistSummary
	GroupRatio []float64
	// Batch and Util roll the per-group numbers up: total certified
	// writesets, merged batch-size digest, and how evenly the log-disk
	// load spread across the groups.
	Batch metrics.DistSummary
	Util  metrics.UtilSummary
	// Cross counts cross-partition (2PC) commits; zero on this
	// workload, whose transactions each touch a single row.
	Cross int64
}

// DefaultPartitionCounts is the partition sweep used when none is
// given.
var DefaultPartitionCounts = []int{1, 2, 4, 8}

// partitionsDefaultMaxBatch caps the certification pipeline for this
// experiment when the caller did not choose a cap. The default cap
// (256) lets one group's batching absorb any load the closed-loop
// clients can offer, so the certifier never becomes the bottleneck
// and partitioning has nothing to scale; a small cap models a
// certifier with bounded per-round absorption (CPU and RPC cost per
// writeset grow with batch size on real hardware), which is the
// regime partitioned certification is for.
const partitionsDefaultMaxBatch = 4

// RunPartitionsExperiment measures how certification throughput
// scales with the number of certifier groups (see internal/partition)
// under a uniform update-heavy load of single-partition transactions:
// AllUpdates in Tashkent-MW mode at a fixed replica count, dedicated
// IO, no execution think time, so the certification channel — not
// replica-side execution — saturates first. One partition is the
// classic single-group system; each added group brings its own paxos
// log, its own batching pipeline and its own log disk. The table
// reports throughput, speedup over one partition, per-group writesets
// per fsync, and how evenly load spread across the group disks.
// replicas <= 0 selects 4.
func RunPartitionsExperiment(partCounts []int, replicas int, o Options) ([]PartitionPoint, error) {
	o = o.withDefaults()
	if len(partCounts) == 0 {
		partCounts = DefaultPartitionCounts
	}
	if replicas <= 0 {
		replicas = 4
	}
	if o.CertMaxBatch <= 0 {
		o.CertMaxBatch = partitionsDefaultMaxBatch
	}

	fmt.Fprintf(o.Out, "\n=== partitions: certification scaling vs certifier-group count (AllUpdates, tashMW) ===\n")
	fmt.Fprintf(o.Out, "replicas=%d  clients/replica=%d  scale=1/%d  maxbatch=%d  dedicated IO, no think time\n",
		replicas, o.ClientsPerReplica, o.Scale, o.CertMaxBatch)
	fmt.Fprintf(o.Out, "parts\ttxn/s\tspeedup\tmeanRT(ms)\tws/fsync(per group)\tbatch(mean p99)\tutil(mean max)\tcross\n")

	var out []PartitionPoint
	var baseTPS float64
	for _, parts := range partCounts {
		pt, err := runPartitionPoint(parts, replicas, o)
		if err != nil {
			return out, fmt.Errorf("partitions @%d: %w", parts, err)
		}
		out = append(out, pt)
		if parts == 1 {
			baseTPS = pt.Result.Throughput
		}
		speedup := "-"
		if baseTPS > 0 {
			speedup = fmt.Sprintf("%.2fx", pt.Result.Throughput/baseTPS)
		}
		ratios := ""
		for i, r := range pt.GroupRatio {
			if i > 0 {
				ratios += " "
			}
			ratios += fmt.Sprintf("%.1f", r)
		}
		fmt.Fprintf(o.Out, "%d\t%.0f\t%s\t%.1f\t%s\t%.1f %d\t%.0f%% %.0f%%\t%d\n",
			parts, pt.Result.Throughput, speedup,
			float64(pt.Result.RT.Mean.Microseconds())/1000,
			ratios, pt.Batch.Mean, pt.Batch.P99,
			pt.Util.Mean*100, pt.Util.Max*100, pt.Cross)
	}
	return out, nil
}

// runPartitionPoint measures one partition count.
func runPartitionPoint(parts, replicas int, o Options) (PartitionPoint, error) {
	c, err := cluster.New(cluster.Config{
		Mode:               proxy.TashkentMW,
		Replicas:           replicas,
		Certifiers:         3,
		Partitions:         parts,
		IOProfile:          o.profile(),
		DedicatedIO:        true,
		CertMaxBatch:       o.CertMaxBatch,
		CertMaxWait:        o.CertMaxWait,
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        5 * time.Second,
		OrderTimeout:       10 * time.Second,
		Seed:               o.Seed,
	})
	if err != nil {
		return PartitionPoint{}, err
	}
	defer c.Close()

	ctx := context.Background()
	wl := &workload.AllUpdates{}
	begin0 := workload.Plain(func() (workload.PlainTx, error) { return c.Begin(0) })
	if err := wl.Populate(ctx, begin0); err != nil {
		return PartitionPoint{}, fmt.Errorf("populate: %w", err)
	}
	if err := c.ConvergeAll(30 * time.Second); err != nil {
		return PartitionPoint{}, err
	}

	begins := make([]workload.BeginFunc, replicas)
	for i := 0; i < replicas; i++ {
		i := i
		begins[i] = workload.Plain(func() (workload.PlainTx, error) { return c.Begin(i) })
	}
	for g := 0; g < c.Groups(); g++ {
		if leader := c.GroupLeader(g); leader != nil {
			leader.ResetActivityStats()
		}
	}
	res := workload.Run(ctx, wl, begins, workload.RunConfig{
		ClientsPerReplica: o.ClientsPerReplica,
		Warmup:            o.Warmup,
		Measure:           o.Measure,
		ExecTime:          0, // certification-bound: no simulated think time
		Seed:              o.Seed,
	})

	pt := PartitionPoint{Partitions: parts, Result: res}
	var utils []float64
	for g := 0; g < c.Groups(); g++ {
		leader := c.GroupLeader(g)
		if leader == nil {
			continue
		}
		pt.GroupBatch = append(pt.GroupBatch, leader.BatchStats())
		pt.GroupRatio = append(pt.GroupRatio, leader.DiskStats().GroupRatio())
		utils = append(utils, leader.DiskUtilization())
	}
	pt.Batch = metrics.MergeDist(pt.GroupBatch...)
	pt.Util = metrics.SummarizeUtil(utils)
	for i := 0; i < replicas; i++ {
		pt.Cross += c.Replica(i).Proxy().Stats().CrossPartCommits
	}
	return pt, nil
}
