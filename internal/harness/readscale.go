package harness

import (
	"context"
	"fmt"
	"time"

	"tashkent/internal/cluster"
	"tashkent/internal/proxy"
	"tashkent/internal/replica"
	"tashkent/internal/workload"
)

// ReadScalePoint is one measured client-count sample of the
// read-scaling sweep.
type ReadScalePoint struct {
	Clients int
	Result  workload.Result
}

// ReadScaleSeries is one endpoint's client sweep.
type ReadScaleSeries struct {
	Name   string
	Points []ReadScalePoint
}

// DefaultReadScaleClients is the client sweep used when none is given.
var DefaultReadScaleClients = []int{1, 2, 4, 8, 16, 32}

// RunReadScaleExperiment measures how one database replica's
// throughput scales with concurrent closed-loop clients under a
// read-mostly TPC-W mix. Two endpoints are swept:
//
//   - standalone: clients commit directly against one storage engine
//     (the paper's §9.2 standalone database). Updates pay only the
//     WAL, so the sweep isolates the engine's snapshot-read path.
//   - tashMW@1: a 1-replica Tashkent-MW cluster running the full
//     certification protocol, showing how much of the engine-level
//     gain survives the replication stack.
//
// Unlike the paper-figure experiments the workload is configured so
// the storage engine — not simulated disks, think time or per-read
// CPU burn — dominates each browse transaction: dedicated IO, no
// buffer-miss/checkpoint page traffic, minimal per-read CPU spin, no
// execution think time, and a browse-heavy read mix (TPC-W browsing
// interactions such as best-sellers read tens of items). This is the
// experiment behind BENCH_read.json: under the historical single-mutex
// engine every row read serialized on one global store lock, so added
// clients added contention instead of throughput; the lock-striped
// engine keeps snapshot reads off any global lock.
func RunReadScaleExperiment(clientCounts []int, o Options) ([]ReadScaleSeries, error) {
	o = o.withDefaults()
	if len(clientCounts) == 0 {
		clientCounts = DefaultReadScaleClients
	}

	fmt.Fprintf(o.Out, "\n=== readscale: TPC-W read-mostly mix, single replica, client sweep ===\n")
	fmt.Fprintf(o.Out, "workload=TPC-W(engine-bound, 20 reads/browse)  dedicated IO  scale=1/%d\n", o.Scale)

	endpoints := []struct {
		name string
		run  func(clients int) (workload.Result, error)
	}{
		{"standalone", func(clients int) (workload.Result, error) { return runReadScaleStandalone(clients, o) }},
		{"tashMW@1", func(clients int) (workload.Result, error) { return runReadScaleCluster(clients, o) }},
	}

	var out []ReadScaleSeries
	for _, ep := range endpoints {
		s := ReadScaleSeries{Name: ep.name}
		fmt.Fprintf(o.Out, "\n[%s]\nclients\ttxn/s\tmeanRT(ms)\treadRT(ms)\tupdateRT(ms)\tabort%%\n", ep.name)
		for _, clients := range clientCounts {
			res, err := ep.run(clients)
			if err != nil {
				return out, fmt.Errorf("readscale %s @%d clients: %w", ep.name, clients, err)
			}
			s.Points = append(s.Points, ReadScalePoint{Clients: clients, Result: res})
			fmt.Fprintf(o.Out, "%d\t%.0f\t%.2f\t%.2f\t%.2f\t%.1f\n",
				clients,
				res.Throughput,
				float64(res.RT.Mean.Microseconds())/1000,
				float64(res.ReadRT.Mean.Microseconds())/1000,
				float64(res.UpdateRT.Mean.Microseconds())/1000,
				res.AbortRate()*100)
		}
		out = append(out, s)
	}
	return out, nil
}

// readScaleWorkload is the engine-bound TPC-W variant: the shopping
// schema and 80/20 read/update split, with browse transactions sized
// like the heavier browsing interactions (20 item lookups) and the
// per-read CPU spin reduced to a token amount so row reads hit the
// storage engine back to back.
func readScaleWorkload() workload.Generator {
	return &workload.TPCW{CPUWork: 1, ReadsPerBrowse: 20}
}

// runReadScaleStandalone measures one client count against a
// standalone engine endpoint.
func runReadScaleStandalone(clients int, o Options) (workload.Result, error) {
	sa := replica.OpenStandalone(replica.IOConfig{
		Profile: o.profile(), Dedicated: true, Seed: o.Seed,
	}, 0, 0)
	defer sa.Close()

	wl := readScaleWorkload()
	ctx := context.Background()
	begin := workload.Plain(func() (workload.PlainTx, error) { return sa.Begin() })
	if err := wl.Populate(ctx, begin); err != nil {
		return workload.Result{}, fmt.Errorf("populate: %w", err)
	}
	return workload.Run(ctx, wl, []workload.BeginFunc{begin}, workload.RunConfig{
		ClientsPerReplica: clients,
		Warmup:            o.Warmup,
		Measure:           o.Measure,
		ExecTime:          0, // engine-bound: no simulated think time
		Seed:              o.Seed,
	}), nil
}

// runReadScaleCluster measures one client count against a fresh
// 1-replica Tashkent-MW cluster.
func runReadScaleCluster(clients int, o Options) (workload.Result, error) {
	c, err := cluster.New(cluster.Config{
		Mode:               proxy.TashkentMW,
		Replicas:           1,
		Certifiers:         3,
		IOProfile:          o.profile(),
		DedicatedIO:        true,
		CertMaxBatch:       o.CertMaxBatch,
		CertMaxWait:        o.CertMaxWait,
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        5 * time.Second,
		OrderTimeout:       10 * time.Second,
		Seed:               o.Seed,
	})
	if err != nil {
		return workload.Result{}, err
	}
	defer c.Close()

	wl := readScaleWorkload()
	ctx := context.Background()
	begin := workload.Plain(func() (workload.PlainTx, error) { return c.Begin(0) })
	if err := wl.Populate(ctx, begin); err != nil {
		return workload.Result{}, fmt.Errorf("populate: %w", err)
	}
	if err := c.ConvergeAll(30 * time.Second); err != nil {
		return workload.Result{}, err
	}
	return workload.Run(ctx, wl, []workload.BeginFunc{begin}, workload.RunConfig{
		ClientsPerReplica: clients,
		Warmup:            o.Warmup,
		Measure:           o.Measure,
		ExecTime:          0, // engine-bound: no simulated think time
		Seed:              o.Seed,
	}), nil
}
