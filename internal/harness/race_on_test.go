//go:build race

package harness

// raceEnabled reports that the race detector is active. Its scheduling
// overhead slows the simulated systems unevenly, so the figure-shape
// tests (which assert throughput ratios between systems) skip
// themselves; the plain CI job still runs them.
const raceEnabled = true
