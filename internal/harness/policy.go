package harness

import (
	"context"
	"fmt"
	"time"

	"tashkent"
	"tashkent/internal/router"
	"tashkent/internal/workload"
)

// PolicyPoint is one routing policy's measurement under the session
// API.
type PolicyPoint struct {
	Policy  string
	Writers int // rwsplit writer-set size (0 for other policies)
	Result  workload.Result
}

// RunPolicyComparison drives the TPC-W shopping mix through the public
// session API once per routing policy, so the balancing strategies are
// directly comparable: every client owns a Session whose Begin routes
// by policy and carries the causal token. Commits go through the
// driver without RunTx retries on purpose — the aborts column reports
// raw certification conflicts, which retrying would hide. It uses
// Tashkent-API mode (concurrent ordered commits) on the largest
// configured replica count.
func RunPolicyComparison(policyNames []string, o Options) ([]PolicyPoint, error) {
	o = o.withDefaults()
	replicas := 1
	for _, n := range o.ReplicaCounts {
		if n > replicas {
			replicas = n
		}
	}
	writers := (replicas + 1) / 2
	fmt.Fprintf(o.Out, "\n=== routing policies: TPC-W via session API (tashAPI, %d replicas, rwsplit writers=%d) ===\n",
		replicas, writers)

	var out []PolicyPoint
	for _, name := range policyNames {
		policy, err := router.Parse(name, writers)
		if err != nil {
			return out, err
		}
		pt, err := runPolicyPoint(policy, replicas, writers, o)
		if err != nil {
			return out, fmt.Errorf("policy %s: %w", name, err)
		}
		out = append(out, pt)
	}

	fmt.Fprintf(o.Out, "\npolicy\ttxn/s\tmean RT(ms)\tread RT(ms)\tupdate RT(ms)\taborts%%\n")
	for _, pt := range out {
		r := pt.Result
		fmt.Fprintf(o.Out, "%s\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			pt.Policy, r.Throughput,
			float64(r.RT.Mean.Microseconds())/1000,
			float64(r.ReadRT.Mean.Microseconds())/1000,
			float64(r.UpdateRT.Mean.Microseconds())/1000,
			r.AbortRate()*100)
	}
	return out, nil
}

func runPolicyPoint(policy tashkent.Policy, replicas, writers int, o Options) (PolicyPoint, error) {
	db, err := tashkent.Start(tashkent.Config{
		Mode:        tashkent.ModeTashkentAPI,
		Replicas:    replicas,
		DiskProfile: o.profile(),
		Seed:        o.Seed,
	})
	if err != nil {
		return PolicyPoint{}, err
	}
	defer db.Close()

	ctx := context.Background()
	wl := &workload.TPCW{Items: 500, CPUWork: 500}
	seed := db.Session()
	if err := wl.Populate(ctx, seed.WorkloadBegin()); err != nil {
		return PolicyPoint{}, fmt.Errorf("populate: %w", err)
	}
	if err := db.Converge(30 * time.Second); err != nil {
		return PolicyPoint{}, err
	}

	// One session per client group: sessions are the unit of causal
	// ordering, so each simulated user gets their own.
	begins := make([]workload.BeginFunc, replicas)
	for i := range begins {
		sess := db.Session(tashkent.WithPolicy(policy))
		begins[i] = sess.WorkloadBegin()
	}
	res := workload.Run(ctx, wl, begins, workload.RunConfig{
		ClientsPerReplica: o.ClientsPerReplica,
		Warmup:            o.Warmup,
		Measure:           o.Measure,
		ExecTime:          o.ExecTime,
		Seed:              o.Seed,
	})
	pt := PolicyPoint{Policy: policy.Name(), Result: res}
	if policy.Name() == "rwsplit" {
		pt.Writers = writers
	}
	return pt, nil
}
