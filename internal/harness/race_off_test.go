//go:build !race

package harness

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
