package harness

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/chaos"
	"tashkent/internal/cluster"
	"tashkent/internal/mvstore"
	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
	"tashkent/internal/workload"
)

// TestChaosScheduleDeterminism: the fault schedule is a pure function
// of the seed — two runs of the same seed execute the identical plan
// (the acceptance criterion behind `-exp chaos -seed S` replays).
func TestChaosScheduleDeterminism(t *testing.T) {
	a := buildChaosPlan(42, 300*time.Millisecond)
	b := buildChaosPlan(42, 300*time.Millisecond)
	if a.Digest() != b.Digest() {
		t.Fatalf("same seed planned different schedules: %x vs %x", a.Digest(), b.Digest())
	}
	if len(a.events) != len(b.events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.events[i], b.events[i])
		}
	}
	if buildChaosPlan(43, 300*time.Millisecond).Digest() == a.Digest() {
		t.Fatal("different seeds planned identical schedules")
	}

	// Two full runs of one seed report the identical schedule digest.
	r1, err := RunChaosSeed(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunChaosSeed(4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Digest != r2.Digest {
		t.Fatalf("seed 4 reported digests %x and %x across runs", r1.Digest, r2.Digest)
	}
	for _, r := range []ChaosResult{r1, r2} {
		if !r.Passed() {
			t.Fatalf("seed 4 violations: %v", r.Violations)
		}
	}
}

// chaosSeedSet is the fixed seed set: every seed covers partitions,
// asymmetric cuts, message drop/duplicate/reorder windows, one replica
// crash-restart and one certifier crash-restart, across all three
// system modes. The dedicated CI chaos job sets CHAOS_FULL=1 to run
// the full 20-seed suite; everywhere else (plain `go test ./...`, the
// generic race job) a small smoke subset keeps the suite fast instead
// of running the full minute twice per CI pass.
func chaosSeedSet() []int64 {
	n := 4
	if os.Getenv("CHAOS_FULL") != "" {
		n = 20
	}
	if testing.Short() {
		n = 2
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestChaosSeeds runs the seed set and fails with the exact failing
// seeds so a run can be replayed with `tashbench -exp chaos -seed S`.
func TestChaosSeeds(t *testing.T) {
	seeds := chaosSeedSet()
	results, err := RunChaosExperiment(seeds, Options{})
	for _, r := range results {
		t.Logf("seed %d mode %s digest %016x: acked=%d aborted=%d unknown=%d reads=%d log=%d violations=%d",
			r.Seed, r.Mode, r.Digest, r.Acked, r.Aborted, r.Unknown, r.Reads, r.LogEntries, len(r.Violations))
		for _, v := range r.Violations {
			t.Errorf("seed %d: %v", r.Seed, v)
		}
	}
	if err != nil {
		t.Errorf("%v", err)
	}
}

// chaosDrillCluster builds a small cluster for the crash drills with a
// checker wired into every proxy sequencer.
func chaosDrillCluster(t *testing.T, mode proxy.Mode, replicas int, checker *chaos.Checker) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{
		Mode:       mode,
		Replicas:   replicas,
		Certifiers: 3,
		IOProfile: simdisk.Profile{
			FsyncLatency: 500 * time.Microsecond,
			FsyncJitter:  200 * time.Microsecond,
		},
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        time.Second,
		OrderTimeout:       2 * time.Second,
		CertTimeout:        3 * time.Second,
		SeqTimeout:         300 * time.Millisecond,
		StalenessBound:     100 * time.Millisecond,
		SeqObserver:        checker.SeqObserver,
		Seed:               7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// drillWorkers runs committing workers until stop is closed, recording
// acks into the checker and classifying errors. Unexpected
// (non-retryable) errors are reported through onErr.
func drillWorkers(c *cluster.Cluster, checker *chaos.Checker, stop chan struct{},
	onErr func(error)) *sync.WaitGroup {
	var wg sync.WaitGroup
	for w := 0; w < 2*c.Replicas(); w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep := w % c.Replicas()
			for n := 1; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				origin := rep + 1
				tx, err := c.Begin(rep)
				if err != nil {
					rep = (rep + 1) % c.Replicas()
					continue
				}
				key := fmt.Sprintf("k%02d", (w*31+n)%24)
				val := fmt.Sprintf("w%d-%d", w, n)
				if err := tx.Update(chaosTable, key, map[string][]byte{chaosCol: []byte(val)}); err != nil {
					tx.Abort()
					continue
				}
				switch err := tx.Commit(); {
				case err == nil:
					checker.RecordAck(chaos.Ack{
						Worker: w, Origin: origin, Version: tx.CommitVersion(),
						Table: chaosTable, Key: key, Col: chaosCol, Value: val,
					})
				case workload.IsAbort(err):
					// benign snapshot-isolation abort; retry next round
				case errors.Is(err, certifier.ErrNoCertifier),
					errors.Is(err, transport.ErrUnavailable),
					errors.Is(err, mvstore.ErrCrashed):
					// retryable outage (certifier unavailable, link down,
					// or the replica died under the commit — outcome
					// unknown); a client session would retry elsewhere
				default:
					onErr(err)
				}
			}
		}()
	}
	return &wg
}

// verifyDrill heals nothing (the drills manage their own faults) but
// runs the common settle-and-verify tail: barrier, converge,
// fingerprint agreement, and the invariant checker against the
// committed log plus a never-crashed replay witness.
func verifyDrill(t *testing.T, c *cluster.Cluster, checker *chaos.Checker) []chaos.LogEntry {
	t.Helper()
	if _, err := c.Barrier(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !chaos.WaitUntil(20*time.Second, func() bool { return c.ConvergeAll(2*time.Second) == nil }) {
		t.Fatal("cluster never converged")
	}
	chaos.WaitUntil(10*time.Second, func() bool {
		fps := c.Fingerprints()
		for i := 1; i < len(fps); i++ {
			if fps[i] != fps[0] {
				return false
			}
		}
		return true
	})
	log, err := committedLog(c.CertLeader())
	if err != nil {
		t.Fatal(err)
	}
	replayFP, err := replayFingerprint(log)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range checker.Verify(chaos.VerifyInput{
		Log:               log,
		Fingerprints:      c.Fingerprints(),
		ReplayFingerprint: replayFP,
	}) {
		t.Errorf("invariant: %v", v)
	}
	return log
}

// TestChaosCertifierLeaderCrashMidBatch kills the certifier leader
// between a batch's WAL append and its fsync — the exact boundary the
// paper's durability argument hinges on. A simdisk hook blocks the
// leader's next fsync; the crash image is captured while the node
// provably cannot acknowledge the in-flight batch, so the batch is
// "proposed but not fsynced" on the crashed node. Clients must see
// only retryable errors, no acked commit may be lost, and the new
// leader's epoch re-anchor must keep per-origin response sequences
// gap-free.
func TestChaosCertifierLeaderCrashMidBatch(t *testing.T) {
	checker := chaos.NewChecker()
	c := chaosDrillCluster(t, proxy.TashkentMW, 2, checker)

	stop := make(chan struct{})
	var unexpected atomic.Value
	wg := drillWorkers(c, checker, stop, func(err error) {
		// Mid-crash certification failures surface as remote/paxos
		// errors after the client's failover budget; anything else is a
		// non-retryable error the drill must flag.
		unexpected.Store(err.Error())
	})

	// Let the system commit for a while under a live leader.
	if !chaos.WaitUntil(10*time.Second, func() bool { return checker.Acks() >= 20 }) {
		t.Fatal("no commit progress before the crash")
	}

	leaderIdx := c.CertLeaderIndex()
	if leaderIdx < 0 {
		t.Fatal("no leader")
	}
	leader := c.Certifier(leaderIdx)

	// Arm the fsync hook: on the next leader-log fsync, capture the
	// pre-fsync image and hold the flush until the node has stopped —
	// the batch occupying that fsync is lost with the crash, exactly a
	// power failure between append and flush.
	armed := atomic.Bool{}
	armed.Store(true)
	captured := make(chan []byte, 1)
	release := make(chan struct{})
	leader.Disk().SetHook(func(op simdisk.Op, records, bytes int) {
		if op != simdisk.OpFsync || !armed.CompareAndSwap(true, false) {
			return
		}
		captured <- leader.Node().WALImage()
		<-release
	})

	var img []byte
	select {
	case img = <-captured:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached another fsync under load")
	}
	preCrashLog := leader.Node().LogLength()

	// Crash the leader while the fsync is blocked. Stop drains the WAL
	// writer, so the release must come only after the node can no
	// longer acknowledge (Stopped), then the crash completes.
	crashDone := make(chan struct{})
	go func() {
		c.CrashCertifier(leaderIdx)
		close(crashDone)
	}()
	if !chaos.WaitUntil(5*time.Second, func() bool { return leader.Node().Stopped() }) {
		t.Fatal("leader never began stopping")
	}
	close(release)
	<-crashDone
	leader.Disk().SetHook(nil)

	// The captured image must miss the in-flight tail: writesets were
	// proposed but not fsynced at crash time.
	if rec, err := restoredLogLength(img); err != nil {
		t.Fatal(err)
	} else if rec >= int(preCrashLog) {
		t.Logf("note: crash image holds %d records vs log length %d (batch may have raced)", rec, preCrashLog)
	}

	// The system must fail over and make progress again.
	var resumed atomic.Bool
	if !chaos.WaitUntil(15*time.Second, func() bool {
		if c.CertLeader() == nil {
			return false
		}
		resumed.Store(true)
		return checker.Acks() >= 30
	}) {
		t.Fatalf("no commit progress after leader crash (resumed=%v, acks=%d)", resumed.Load(), checker.Acks())
	}

	// Recover the crashed node from its mid-batch image and let it
	// rejoin and catch up.
	if err := c.RecoverCertifier(leaderIdx, img); err != nil {
		t.Fatal(err)
	}
	if !chaos.WaitUntil(10*time.Second, func() bool { return checker.Acks() >= 40 }) {
		t.Fatal("no commit progress after recovery")
	}

	close(stop)
	wg.Wait()
	if msg := unexpected.Load(); msg != nil {
		t.Fatalf("worker saw a non-retryable error: %s", msg)
	}

	// Never a lost ack; converged; replay-consistent.
	verifyDrill(t, c, checker)

	// Epoch re-anchor: the failover started a fresh per-origin
	// numbering. With no transport faults in this drill, the final
	// epoch's applied sequence must be dense — the re-anchor left no
	// gaps behind.
	events := checker.SeqEvents()
	epochs := map[int]uint64{}
	for _, e := range events {
		if e.Outcome == "apply" && e.Epoch > epochs[e.Replica] {
			epochs[e.Replica] = e.Epoch
		}
	}
	distinct := map[uint64]bool{}
	for _, e := range events {
		if e.Outcome == "apply" {
			distinct[e.Epoch] = true
		}
	}
	if len(distinct) < 2 {
		t.Errorf("expected at least two sequencing epochs across the failover, saw %d", len(distinct))
	}
	for replica, epoch := range epochs {
		var seqs []uint64
		for _, e := range events {
			if e.Replica == replica && e.Epoch == epoch && e.Outcome == "apply" {
				seqs = append(seqs, e.Seq)
			}
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for i := 1; i < len(seqs); i++ {
			if seqs[i] != seqs[i-1]+1 {
				t.Errorf("replica %d epoch %d: sequence gap %d -> %d after re-anchor",
					replica, epoch, seqs[i-1], seqs[i])
			}
		}
	}
}

// restoredLogLength counts the entry records a crash image holds.
func restoredLogLength(img []byte) (int, error) {
	srv := certifier.New(certifier.Config{ID: 99})
	defer srv.Stop()
	if err := srv.RestoreFromImage(img); err != nil {
		return 0, err
	}
	return int(srv.Node().LogLength()), nil
}

// TestChaosReplicaCrashRestartDrills crashes a replica under load and
// rejoins it: Tashkent-MW recovers from its dump plus certifier-log
// replay, Tashkent-API from its WAL plus resync. In both modes the
// rejoined replica's fingerprint must match a replica that never
// crashed and the never-crashed replay witness.
func TestChaosReplicaCrashRestartDrills(t *testing.T) {
	for _, mode := range []proxy.Mode{proxy.TashkentMW, proxy.TashkentAPI} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			checker := chaos.NewChecker()
			c := chaosDrillCluster(t, mode, 3, checker)

			stop := make(chan struct{})
			var unexpected atomic.Value
			wg := drillWorkers(c, checker, stop, func(err error) { unexpected.Store(err.Error()) })

			if !chaos.WaitUntil(10*time.Second, func() bool { return checker.Acks() >= 15 }) {
				t.Fatal("no progress before crash")
			}
			// MW keeps periodic dumps; take one mid-load so recovery
			// exercises the dump-restore path.
			if mode == proxy.TashkentMW {
				if _, err := c.Replica(0).DumpNow(); err != nil {
					t.Fatal(err)
				}
			}
			if !chaos.WaitUntil(10*time.Second, func() bool { return checker.Acks() >= 25 }) {
				t.Fatal("no progress before crash")
			}

			c.CrashReplica(0)
			// Survivors keep the system available through the outage.
			if !chaos.WaitUntil(10*time.Second, func() bool { return checker.Acks() >= 35 }) {
				t.Fatal("no progress during replica outage")
			}

			rep, err := c.RecoverReplica(0)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case proxy.TashkentMW:
				if !rep.UsedDump {
					t.Error("MW recovery did not restore from the dump")
				}
			case proxy.TashkentAPI:
				if rep.UsedDump {
					t.Error("API recovery used a dump instead of its WAL")
				}
				if rep.WALRecords == 0 {
					t.Error("API recovery replayed no WAL records")
				}
			}
			if rep.WritesetsApplied == 0 {
				t.Error("recovery replayed no missed writesets from the certifier")
			}

			// The rejoined replica serves commits again.
			if !chaos.WaitUntil(10*time.Second, func() bool {
				tx, err := c.Begin(0)
				if err != nil {
					return false
				}
				if err := tx.Update(chaosTable, "rejoin", map[string][]byte{chaosCol: []byte("ok")}); err != nil {
					tx.Abort()
					return false
				}
				return tx.Commit() == nil
			}) {
				t.Fatal("rejoined replica never committed again")
			}

			close(stop)
			wg.Wait()
			if msg := unexpected.Load(); msg != nil {
				t.Fatalf("worker saw a non-retryable error: %s", msg)
			}

			verifyDrill(t, c, checker)
			fps := c.Fingerprints()
			if fps[0] != fps[1] || fps[0] != fps[2] {
				t.Errorf("rejoined replica diverged from never-crashed replicas: %08x vs %08x/%08x",
					fps[0], fps[1], fps[2])
			}
		})
	}
}
