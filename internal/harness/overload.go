package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/cluster"
	"tashkent/internal/metrics"
	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
	"tashkent/internal/workload"
)

// This file implements `tashbench -exp overload`: an open-loop load
// ladder that measures goodput past the saturation knee. A closed-loop
// benchmark can never overload the system — clients wait for their own
// responses — so this experiment first measures the closed-loop peak,
// then replays open-loop arrival streams at fractions and multiples of
// it. Without admission control, offered load past the knee makes
// queues (and latency) grow without bound and goodput collapses as
// clients give up on requests the server is still working on. With the
// certifier's admission budget, excess requests are shed at the door
// with an OVERLOADED retry-after hint, and goodput holds near the peak
// while shed requests fail in ~one admission budget instead of one
// client deadline.

// Overload experiment tuning. The admission budget is deliberately
// much smaller than the request deadline: shedding is only useful if
// it answers faster than the client would have given up.
const (
	ovlAdmitBudget = 50 * time.Millisecond
	ovlDeadline    = 150 * time.Millisecond
	ovlClients     = 32
	ovlMaxInFlight = 4096
)

// ovlFactors is the offered-load ladder, in multiples of the measured
// closed-loop peak. 2.0 is the acceptance point: goodput there must
// hold near the peak.
var ovlFactors = []float64{0.5, 1.0, 1.5, 2.0}

// OverloadPoint is one offered-load level's outcome.
type OverloadPoint struct {
	Factor        float64 // offered load as a multiple of the closed-loop peak
	Offered       int     // requests issued
	Rate          float64 // offered req/s
	Acked         int
	Shed          int     // server shed at admission (ErrOverloaded)
	Expired       int     // request deadline exceeded
	Aborted       int     // certification conflicts
	Errors        int     // everything else (including generator backpressure drops)
	Goodput       float64 // acked commits/s
	P50, P99      time.Duration
	QueueShed     int64
	QueueExpired  int64
	QueueWaitP99  time.Duration
	QueueDepthP99 int64
}

// OverloadResult is the whole ladder.
type OverloadResult struct {
	Peak        float64 // closed-loop peak, txn/s
	AdmitBudget time.Duration
	Deadline    time.Duration
	Points      []OverloadPoint
}

// GoodputAt returns the measured goodput at the given factor (0 if the
// ladder did not include it).
func (r OverloadResult) GoodputAt(factor float64) float64 {
	for _, p := range r.Points {
		if p.Factor == factor {
			return p.Goodput
		}
	}
	return 0
}

// RunOverloadExperiment measures the closed-loop peak and then drives
// the open-loop ladder. Window durations derive from o.Measure (split
// across the ladder) so `-measure` scales the experiment.
func RunOverloadExperiment(o Options) (OverloadResult, error) {
	o = o.withDefaults()
	res := OverloadResult{AdmitBudget: ovlAdmitBudget, Deadline: ovlDeadline}
	// The gob-heavy RPC path allocates hard enough that default GOGC
	// runs a ~40ms concurrent mark every ~70ms on a small box, and the
	// certification loop's GC-assist stalls dwarf the queueing effects
	// this experiment measures. Trade heap headroom for measurement
	// fidelity while the ladder runs.
	prevGC := debug.SetGCPercent(800)
	defer func() {
		// Hand the next experiment a compacted heap: the inflated GC
		// goal would otherwise defer collection far past their normal
		// working set and skew their timings.
		debug.SetGCPercent(prevGC)
		runtime.GC()
	}()
	window := o.Measure / 2
	if window < 400*time.Millisecond {
		window = 400 * time.Millisecond
	}

	c, err := cluster.New(cluster.Config{
		Mode:       proxy.TashkentAPI,
		Replicas:   1,
		Certifiers: 3,
		// The fsync cost pins the saturation point in simulated I/O
		// (~8/5ms = 1600 certifications/s) rather than raw CPU: an
		// in-process load generator competes with the server for
		// cores, and a CPU-bound peak would make the high end of the
		// ladder measure generator steal instead of queueing.
		IOProfile: simdisk.Profile{
			FsyncLatency: 5 * time.Millisecond,
			FsyncJitter:  time.Millisecond,
		},
		CertMaxBatch: 8,
		CertMaxWait:  200 * time.Microsecond,
		// A full queue must drain comfortably inside the admission
		// budget (32 slots / ~950 certifications/s ≈ 34ms < 50ms), or
		// every admitted request out-waits the budget and is shed at
		// stage 2 after wasting its slot. The depth also covers the
		// closed-loop client count so the peak phase never queues at
		// the door.
		CertAdmitTimeout:   ovlAdmitBudget,
		CertQueueDepth:     32,
		LocalCertification: true,
		EagerPreCert:       true,
		Seed:               o.Seed,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()

	fmt.Fprintf(o.Out, "\n=== overload: open-loop goodput vs offered load (admit budget %v, request deadline %v) ===\n",
		ovlAdmitBudget, ovlDeadline)

	res.Peak = closedLoopPeak(c, window)
	fmt.Fprintf(o.Out, "closed-loop peak: %.0f txn/s (%d clients)\n", res.Peak, ovlClients)
	if res.Peak <= 0 {
		return res, fmt.Errorf("overload: closed-loop peak measured zero")
	}

	fmt.Fprintf(o.Out, "factor\toffered/s\tacked\tshed\texpired\taborted\terrs\tgoodput/s\tvs peak\tp50\tp99\tqwait p99\tqdepth p99\n")
	for _, f := range ovlFactors {
		pt := openLoopPoint(c, f, res.Peak*f, window)
		res.Points = append(res.Points, pt)
		fmt.Fprintf(o.Out, "%.1fx\t%.0f\t%d\t%d\t%d\t%d\t%d\t%.0f\t%.0f%%\t%s\t%s\t%s\t%d\n",
			pt.Factor, pt.Rate, pt.Acked, pt.Shed, pt.Expired, pt.Aborted, pt.Errors,
			pt.Goodput, 100*pt.Goodput/res.Peak,
			pt.P50.Round(100*time.Microsecond), pt.P99.Round(100*time.Microsecond),
			pt.QueueWaitP99.Round(100*time.Microsecond), pt.QueueDepthP99)
	}
	return res, nil
}

// closedLoopPeak saturates the system with ovlClients closed-loop
// workers and measures committed throughput — the reference the
// open-loop ladder is scaled against.
func closedLoopPeak(c *cluster.Cluster, window time.Duration) float64 {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var commits atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < ovlClients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("c%03d", w)
			n := 0
			for ctx.Err() == nil {
				n++
				tx, err := c.Begin(0)
				if err != nil {
					continue
				}
				if err := tx.Update(grayTable, key, map[string][]byte{grayCol: []byte(fmt.Sprintf("%d", n))}); err != nil {
					tx.Abort()
					continue
				}
				if tx.Commit() == nil {
					commits.Add(1)
				}
			}
		}()
	}
	time.Sleep(150 * time.Millisecond) // warm
	before := commits.Load()
	time.Sleep(window)
	measured := commits.Load() - before
	cancel()
	wg.Wait()
	return float64(measured) / window.Seconds()
}

// openLoopPoint offers rate req/s for the window regardless of
// responses — the arrival process of clients that do not wait for each
// other — and classifies every outcome.
func openLoopPoint(c *cluster.Cluster, factor, rate float64, window time.Duration) OverloadPoint {
	pt := OverloadPoint{Factor: factor, Rate: rate}
	leader := c.CertLeader()
	if leader != nil {
		leader.ResetActivityStats()
	}

	lat := metrics.NewLatency(0)
	var acked, shed, expired, aborted, errs atomic.Int64
	sem := make(chan struct{}, ovlMaxInFlight)
	var wg sync.WaitGroup
	const step = 2 * time.Millisecond
	carry := 0.0
	id := 0
	start := time.Now()
	end := start.Add(window)
	last := start
	for now := time.Now(); now.Before(end); now = time.Now() {
		// Pace off wall-clock elapsed, not nominal step count: on a
		// loaded box Sleep overshoots, and an open-loop generator that
		// silently under-offers would fake a good knee.
		carry += rate * now.Sub(last).Seconds()
		last = now
		n := int(carry)
		carry -= float64(n)
		for i := 0; i < n; i++ {
			pt.Offered++
			id++
			select {
			case sem <- struct{}{}:
			default:
				// Generator backpressure: the in-flight cap is sized so
				// this only fires if the server stops answering at all.
				errs.Add(1)
				continue
			}
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				defer func() { <-sem }()
				rctx, rcancel := context.WithTimeout(context.Background(), ovlDeadline)
				defer rcancel()
				t0 := time.Now()
				tx, err := c.Begin(0)
				if err != nil {
					errs.Add(1)
					return
				}
				// Unique key per request: the ladder measures overload
				// behaviour, and first-committer-wins aborts from a hot
				// key set would burn server capacity on work that is
				// neither goodput nor shedding.
				key := fmt.Sprintf("o%06d", id)
				if err := tx.Update(grayTable, key, map[string][]byte{grayCol: []byte("x")}); err != nil {
					tx.Abort()
					errs.Add(1)
					return
				}
				err = tx.CommitCtx(rctx)
				el := time.Since(t0)
				switch {
				case err == nil:
					acked.Add(1)
					lat.Observe(el)
				case errors.Is(err, certifier.ErrOverloaded):
					shed.Add(1)
				case workload.IsAbort(err):
					aborted.Add(1)
				case rctx.Err() != nil:
					expired.Add(1)
				default:
					errs.Add(1)
				}
			}(id)
		}
		time.Sleep(step)
	}
	wg.Wait()

	pt.Acked = int(acked.Load())
	pt.Shed = int(shed.Load())
	pt.Expired = int(expired.Load())
	pt.Aborted = int(aborted.Load())
	pt.Errors = int(errs.Load())
	pt.Goodput = float64(pt.Acked) / window.Seconds()
	s := lat.Summarize()
	pt.P50, pt.P99 = s.P50, s.P99
	if leader != nil {
		qs := leader.QueueStats()
		pt.QueueShed = qs.Shed
		pt.QueueExpired = qs.Expired
		pt.QueueWaitP99 = qs.Wait.P99
		pt.QueueDepthP99 = qs.Depth.P99
	}
	return pt
}
