// Package harness defines one runnable experiment per table and figure
// in the paper's evaluation (§9) and the machinery to execute them and
// print the resulting series. See DESIGN.md for the experiment index
// and EXPERIMENTS.md for recorded results.
package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"tashkent/internal/cluster"
	"tashkent/internal/metrics"
	"tashkent/internal/proxy"
	"tashkent/internal/replica"
	"tashkent/internal/simdisk"
	"tashkent/internal/workload"
)

// System identifies one curve in the paper's figures.
type System int

// The systems compared across the evaluation.
const (
	SysBase System = iota
	SysMW
	SysAPI
	SysAPINoCert // Tashkent-API with certifier durability disabled (§9.2)
)

// String names the system as the paper's figure legends do.
func (s System) String() string {
	switch s {
	case SysBase:
		return "base"
	case SysMW:
		return "tashMW"
	case SysAPI:
		return "tashAPI"
	case SysAPINoCert:
		return "tashAPInoCERT"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Options tunes experiment execution. The zero value gives a fast,
// scaled run suitable for `go test -bench`; cmd/tashbench exposes
// flags for full-fidelity sweeps.
type Options struct {
	// Scale divides the paper's disk latencies (default 10: an 8 ms
	// fsync becomes 0.8 ms). All ratios — and therefore all curve
	// shapes — are preserved.
	Scale int
	// ReplicaCounts to sweep (default 1, 2, 4, 8, 12, 15).
	ReplicaCounts []int
	// ClientsPerReplica closed-loop clients per replica (default 10,
	// matching the paper's response-time discussion).
	ClientsPerReplica int
	// Warmup and Measure per point (defaults 300 ms / 1.5 s —
	// multiplied by Scale these correspond to 3 s / 15 s of
	// paper-time).
	Warmup  time.Duration
	Measure time.Duration
	// Seed fixes all randomness.
	Seed int64
	// ExecTime models replica-side transaction execution cost (see
	// workload.RunConfig.ExecTime). Zero selects 5× the scaled fsync
	// latency — with paper disks (scale 1) that is 40 ms, which
	// reproduces the paper's per-replica offered load (a Base replica
	// commits ~50 txn/s, a standalone/MW replica ~250-500). Negative
	// disables it.
	ExecTime time.Duration
	// CertMaxBatch/CertMaxWait tune the certifier's batched
	// certification pipeline (zero keeps the certifier defaults).
	CertMaxBatch int
	CertMaxWait  time.Duration
	// Out receives the formatted tables (nil discards).
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 10
	}
	if len(o.ReplicaCounts) == 0 {
		o.ReplicaCounts = []int{1, 2, 4, 8, 12, 15}
	}
	if o.ClientsPerReplica <= 0 {
		o.ClientsPerReplica = 10
	}
	if o.Warmup <= 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 1500 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ExecTime == 0 {
		o.ExecTime = 5 * o.profile().FsyncLatency
	} else if o.ExecTime < 0 {
		o.ExecTime = 0
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// profile returns the scaled disk model.
func (o Options) profile() simdisk.Profile { return simdisk.Paper().Scaled(o.Scale) }

// Point is one measured (system, replica-count) sample.
type Point struct {
	System     System
	Replicas   int
	Result     workload.Result
	GroupRatio float64 // certifier-leader writesets per fsync (MW durability point)
	CertUtil   float64
	// Batch summarizes the certification pipeline's batch sizes at the
	// leader (commits per replication round / durability barrier).
	Batch metrics.DistSummary
}

// Series is one experiment's measurements.
type Series struct {
	Name   string
	Points []Point
}

// clusterFor builds the cluster for one system variant.
func clusterFor(sys System, replicas int, dedicated bool, o Options, wl workload.Generator) (*cluster.Cluster, error) {
	cfg := cluster.Config{
		Replicas:           replicas,
		Certifiers:         3,
		IOProfile:          o.profile(),
		DedicatedIO:        dedicated,
		CertMaxBatch:       o.CertMaxBatch,
		CertMaxWait:        o.CertMaxWait,
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        5 * time.Second,
		OrderTimeout:       10 * time.Second,
		Seed:               o.Seed,
	}
	switch sys {
	case SysBase:
		cfg.Mode = proxy.Base
	case SysMW:
		cfg.Mode = proxy.TashkentMW
	case SysAPI:
		cfg.Mode = proxy.TashkentAPI
	case SysAPINoCert:
		cfg.Mode = proxy.TashkentAPI
		cfg.DisableCertDurability = true
	}
	// TPC-W's larger database generates data-page traffic on a shared
	// channel (buffer misses + checkpoint write-back).
	if _, isTPCW := wl.(*workload.TPCW); isTPCW {
		cfg.PageMissEvery = 20
		cfg.CheckpointEvery = 8
	}
	return cluster.New(cfg)
}

// runPoint measures one (system, replicas) sample.
func runPoint(sys System, replicas int, dedicated bool, wl workload.Generator, o Options) (Point, error) {
	c, err := clusterFor(sys, replicas, dedicated, o, wl)
	if err != nil {
		return Point{}, err
	}
	defer c.Close()

	ctx := context.Background()
	begin0 := workload.Plain(func() (workload.PlainTx, error) { return c.Begin(0) })
	if err := wl.Populate(ctx, begin0); err != nil {
		return Point{}, fmt.Errorf("populate: %w", err)
	}
	if err := c.ConvergeAll(30 * time.Second); err != nil {
		return Point{}, err
	}

	begins := make([]workload.BeginFunc, replicas)
	for i := 0; i < replicas; i++ {
		i := i
		begins[i] = workload.Plain(func() (workload.PlainTx, error) { return c.Begin(i) })
	}
	// Reset disk and batch stats after populate so group ratios and
	// batch sizes reflect steady state, not the serial load phase.
	if leader := c.CertLeader(); leader != nil {
		leader.ResetActivityStats()
	}
	res := workload.Run(ctx, wl, begins, workload.RunConfig{
		ClientsPerReplica: o.ClientsPerReplica,
		Warmup:            o.Warmup,
		Measure:           o.Measure,
		ExecTime:          o.ExecTime,
		Seed:              o.Seed,
	})
	pt := Point{System: sys, Replicas: replicas, Result: res}
	if leader := c.CertLeader(); leader != nil {
		pt.GroupRatio = leader.DiskStats().GroupRatio()
		pt.CertUtil = leader.DiskUtilization()
		pt.Batch = leader.BatchStats()
	}
	return pt, nil
}

// ThroughputExperiment sweeps replica counts for several systems under
// one workload, printing the paper-style throughput and response-time
// tables.
func ThroughputExperiment(name string, wl func() workload.Generator, dedicated bool, systems []System, o Options) ([]Series, error) {
	o = o.withDefaults()
	fmt.Fprintf(o.Out, "\n=== %s ===\n", name)
	io := "shared IO"
	if dedicated {
		io = "dedicated IO"
	}
	fmt.Fprintf(o.Out, "workload=%s  %s  scale=1/%d  clients/replica=%d\n",
		wl().Name(), io, o.Scale, o.ClientsPerReplica)

	var out []Series
	for _, sys := range systems {
		s := Series{Name: sys.String()}
		for _, n := range o.ReplicaCounts {
			pt, err := runPoint(sys, n, dedicated, wl(), o)
			if err != nil {
				return out, fmt.Errorf("%s @%d replicas: %w", sys, n, err)
			}
			s.Points = append(s.Points, pt)
		}
		out = append(out, s)
	}
	printThroughputTable(o.Out, o.ReplicaCounts, out)
	printResponseTable(o.Out, o.ReplicaCounts, out)
	printGroupRatioTable(o.Out, o.ReplicaCounts, out)
	return out, nil
}

func printThroughputTable(w io.Writer, counts []int, series []Series) {
	fmt.Fprintf(w, "\nThroughput (committed txn/s):\nreplicas")
	for _, s := range series {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w)
	for i, n := range counts {
		fmt.Fprintf(w, "%d", n)
		for _, s := range series {
			fmt.Fprintf(w, "\t%.0f", s.Points[i].Result.Throughput)
		}
		fmt.Fprintln(w)
	}
}

func printResponseTable(w io.Writer, counts []int, series []Series) {
	fmt.Fprintf(w, "\nMean response time (ms):\nreplicas")
	for _, s := range series {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w)
	for i, n := range counts {
		fmt.Fprintf(w, "%d", n)
		for _, s := range series {
			fmt.Fprintf(w, "\t%.1f", float64(s.Points[i].Result.RT.Mean.Microseconds())/1000)
		}
		fmt.Fprintln(w)
	}
}

// printGroupRatioTable reports the certifier-leader writesets per
// fsync — the paper's headline batching figure — for every series that
// exercised the certifier disk.
func printGroupRatioTable(w io.Writer, counts []int, series []Series) {
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			if p.GroupRatio > 0 {
				any = true
			}
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "\nCertifier writesets per fsync:\nreplicas")
	for _, s := range series {
		fmt.Fprintf(w, "\t%s", s.Name)
	}
	fmt.Fprintln(w)
	for i, n := range counts {
		fmt.Fprintf(w, "%d", n)
		for _, s := range series {
			fmt.Fprintf(w, "\t%.1f", s.Points[i].GroupRatio)
		}
		fmt.Fprintln(w)
	}
}

// Fig4and5 reproduces Figures 4 and 5: AllUpdates with a shared IO
// channel, all four systems.
func Fig4and5(o Options) ([]Series, error) {
	return ThroughputExperiment("Fig 4/5: AllUpdates (shared IO)",
		func() workload.Generator { return &workload.AllUpdates{} },
		false, []System{SysBase, SysMW, SysAPI, SysAPINoCert}, o)
}

// Fig6and7 reproduces Figures 6 and 7: AllUpdates, dedicated IO.
func Fig6and7(o Options) ([]Series, error) {
	return ThroughputExperiment("Fig 6/7: AllUpdates (dedicated IO)",
		func() workload.Generator { return &workload.AllUpdates{} },
		true, []System{SysBase, SysMW, SysAPI, SysAPINoCert}, o)
}

// tpcbFor sizes the TPC-B schema to the system, as the TPC-B scaling
// rules do (branch count grows with configured throughput); a fixed
// tiny branch table would make data contention, not the disk, the
// bottleneck at high replica counts.
func tpcbFor(o Options) func() workload.Generator {
	max := 1
	for _, n := range o.ReplicaCounts {
		if n > max {
			max = n
		}
	}
	branches := 4 * max
	// Keep the per-store footprint modest: the conflict structure is
	// set by the branch count; account rows only need to be numerous
	// enough that account collisions stay rare.
	return func() workload.Generator {
		return &workload.TPCB{Branches: branches, AccountsPerBranch: 200}
	}
}

// Fig8and9 reproduces Figures 8 and 9: TPC-B, shared IO.
func Fig8and9(o Options) ([]Series, error) {
	o = o.withDefaults()
	return ThroughputExperiment("Fig 8/9: TPC-B (shared IO)",
		tpcbFor(o), false, []System{SysBase, SysMW, SysAPI, SysAPINoCert}, o)
}

// Fig10and11 reproduces Figures 10 and 11: TPC-B, dedicated IO.
func Fig10and11(o Options) ([]Series, error) {
	o = o.withDefaults()
	return ThroughputExperiment("Fig 10/11: TPC-B (dedicated IO)",
		tpcbFor(o), true, []System{SysBase, SysMW, SysAPI, SysAPINoCert}, o)
}

// Fig12and13 reproduces Figures 12 and 13: TPC-W shopping mix, shared
// IO, with read-only vs update response times.
func Fig12and13(o Options) ([]Series, error) {
	o = o.withDefaults()
	series, err := ThroughputExperiment("Fig 12/13: TPC-W shopping mix (shared IO)",
		func() workload.Generator { return &workload.TPCW{} },
		false, []System{SysBase, SysMW, SysAPI}, o)
	if err != nil {
		return series, err
	}
	fmt.Fprintf(o.Out, "\nRead-only vs update mean RT (ms):\nreplicas")
	for _, s := range series {
		fmt.Fprintf(o.Out, "\t%s(ro)\t%s(up)", s.Name, s.Name)
	}
	fmt.Fprintln(o.Out)
	for i, n := range o.ReplicaCounts {
		fmt.Fprintf(o.Out, "%d", n)
		for _, s := range series {
			p := s.Points[i].Result
			fmt.Fprintf(o.Out, "\t%.1f\t%.1f",
				float64(p.ReadRT.Mean.Microseconds())/1000,
				float64(p.UpdateRT.Mean.Microseconds())/1000)
		}
		fmt.Fprintln(o.Out)
	}
	return series, nil
}

// Fig14 reproduces Figure 14: AllUpdates goodput under injected abort
// rates of 0 %, 20 % and 40 % (dedicated IO), nine curves.
func Fig14(o Options) (map[string]Series, error) {
	o = o.withDefaults()
	fmt.Fprintf(o.Out, "\n=== Fig 14: goodput under forced abort rates (dedicated IO) ===\n")
	out := make(map[string]Series)
	systems := []System{SysBase, SysMW, SysAPI}
	rates := []float64{0, 0.2, 0.4}
	for _, sys := range systems {
		for _, rate := range rates {
			key := fmt.Sprintf("%s@%.0f%%", sys, rate*100)
			s := Series{Name: key}
			for _, n := range o.ReplicaCounts {
				wl := &workload.AllUpdates{}
				c, err := clusterForWithAbort(sys, n, rate, o)
				if err != nil {
					return out, err
				}
				begins := make([]workload.BeginFunc, n)
				for i := 0; i < n; i++ {
					i := i
					begins[i] = workload.Plain(func() (workload.PlainTx, error) { return c.Begin(i) })
				}
				res := workload.Run(context.Background(), wl, begins, workload.RunConfig{
					ClientsPerReplica: o.ClientsPerReplica,
					Warmup:            o.Warmup,
					Measure:           o.Measure,
					ExecTime:          o.ExecTime,
					Seed:              o.Seed,
				})
				c.Close()
				s.Points = append(s.Points, Point{System: sys, Replicas: n, Result: res})
			}
			out[key] = s
		}
	}
	fmt.Fprintf(o.Out, "goodput (committed txn/s):\nreplicas")
	keys := make([]string, 0, len(out))
	for _, sys := range systems {
		for _, rate := range rates {
			keys = append(keys, fmt.Sprintf("%s@%.0f%%", sys, rate*100))
		}
	}
	for _, k := range keys {
		fmt.Fprintf(o.Out, "\t%s", k)
	}
	fmt.Fprintln(o.Out)
	for i, n := range o.ReplicaCounts {
		fmt.Fprintf(o.Out, "%d", n)
		for _, k := range keys {
			fmt.Fprintf(o.Out, "\t%.0f", out[k].Points[i].Result.Throughput)
		}
		fmt.Fprintln(o.Out)
	}
	return out, nil
}

func clusterForWithAbort(sys System, replicas int, rate float64, o Options) (*cluster.Cluster, error) {
	cfg := cluster.Config{
		Replicas:           replicas,
		Certifiers:         3,
		IOProfile:          o.profile(),
		DedicatedIO:        true,
		AbortRate:          rate,
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        5 * time.Second,
		OrderTimeout:       10 * time.Second,
		Seed:               o.Seed,
	}
	switch sys {
	case SysBase:
		cfg.Mode = proxy.Base
	case SysMW:
		cfg.Mode = proxy.TashkentMW
	case SysAPI:
		cfg.Mode = proxy.TashkentAPI
	}
	return cluster.New(cfg)
}

// StandaloneComparison reproduces the §9.2 text numbers: a standalone
// database versus a 1-replica Tashkent-MW system running the full
// replication protocol (the paper reports the latter within 5 % of the
// former).
type StandaloneComparison struct {
	StandaloneThroughput float64
	OneReplicaThroughput float64
	StandaloneRT         time.Duration
	OneReplicaRT         time.Duration
}

// Overhead returns the relative throughput cost of the replication
// protocol at one replica.
func (c StandaloneComparison) Overhead() float64 {
	if c.StandaloneThroughput == 0 {
		return 0
	}
	return 1 - c.OneReplicaThroughput/c.StandaloneThroughput
}

// RunStandaloneComparison measures both configurations under
// AllUpdates.
func RunStandaloneComparison(dedicated bool, o Options) (StandaloneComparison, error) {
	o = o.withDefaults()
	var out StandaloneComparison

	sa := replica.OpenStandalone(replica.IOConfig{
		Profile: o.profile(), Dedicated: dedicated, Seed: o.Seed,
	}, 0, 0)
	res := workload.Run(context.Background(), &workload.AllUpdates{}, []workload.BeginFunc{
		workload.Plain(func() (workload.PlainTx, error) { return sa.Begin() }),
	}, workload.RunConfig{ClientsPerReplica: o.ClientsPerReplica, Warmup: o.Warmup, Measure: o.Measure, ExecTime: o.ExecTime, Seed: o.Seed})
	sa.Close()
	out.StandaloneThroughput = res.Throughput
	out.StandaloneRT = res.RT.Mean

	pt, err := runPoint(SysMW, 1, dedicated, &workload.AllUpdates{}, o)
	if err != nil {
		return out, err
	}
	out.OneReplicaThroughput = pt.Result.Throughput
	out.OneReplicaRT = pt.Result.RT.Mean
	fmt.Fprintf(o.Out, "\n=== §9.2 standalone vs 1-replica Tashkent-MW (dedicated=%v) ===\n", dedicated)
	fmt.Fprintf(o.Out, "standalone: %.0f txn/s @ %v\n1-replica MW: %.0f txn/s @ %v\noverhead: %.1f%%\n",
		out.StandaloneThroughput, out.StandaloneRT.Round(100*time.Microsecond),
		out.OneReplicaThroughput, out.OneReplicaRT.Round(100*time.Microsecond),
		out.Overhead()*100)
	return out, nil
}

// newAllUpdates is a Generator factory used by tests.
func newAllUpdates() workload.Generator { return &workload.AllUpdates{} }
