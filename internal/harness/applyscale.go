package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"tashkent/internal/cluster"
	"tashkent/internal/core"
	"tashkent/internal/mvstore"
	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
	"tashkent/internal/wal"
	"tashkent/internal/workload"
)

// ApplyScalePoint is one measured worker-count sample of the
// parallel-apply sweep.
type ApplyScalePoint struct {
	Workers  int // 0 = the serial-gate baseline path
	Entries  int
	Duration time.Duration
	PerSec   float64
	Stats    proxy.ApplyStats
	Fsyncs   int64 // log-channel fsyncs consumed by the stream
}

// ApplyLagPoint is one replica's apply-lag profile under the
// partitioned merged stream.
type ApplyLagPoint struct {
	Replica    int
	MaxLag     uint64 // peak scheduled-vs-announced version gap observed
	MaxPending int    // peak installed-but-unpublished commits observed
	Stats      proxy.ApplyStats
}

// ApplyScaleResult collects the applyscale experiment's measurements.
type ApplyScaleResult struct {
	// Disjoint sweeps worker counts over a conflict-free labeled
	// stream; Speedup8 is workers=8 throughput over the serial gate.
	Disjoint []ApplyScalePoint
	Speedup8 float64
	// Zipf is the conflicted stream (hot keys force dependency chains)
	// at the full worker pool.
	Zipf ApplyScalePoint
	// Partitioned profiles apply lag on a 4-group cluster under an
	// update-heavy workload with the parallel applier enabled.
	Partitioned    []ApplyLagPoint
	PartThroughput float64
}

// applyScaleFsync is the simulated log-disk fsync latency of the
// phase-A stream. The serial baseline commits one labeled writeset per
// fsync, so its throughput is fsync-bound (~1/250 µs); the parallel
// applier's concurrent installers share group-committed fsyncs. That
// makes the speedup a property of the apply architecture, not of how
// many host cores the test machine happens to have.
const applyScaleFsync = 200 * time.Microsecond

// applyScaleEntries is the phase-A stream length.
const applyScaleEntries = 2000

// DefaultApplyWorkerSweep is the worker sweep of phase A; 0 is the
// serial-gate baseline.
var DefaultApplyWorkerSweep = []int{0, 2, 4, 8}

// applyScaleStream builds a labeled remote stream of single-row
// updates, versions 1..n. Disjoint streams touch a fresh key per
// version; zipf streams draw hot keys from a zipfian over a small
// shared keyspace, forcing same-key dependency chains through the
// scheduler.
func applyScaleStream(n int, zipf bool, seed int64) []proxy.RemoteEntry {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.3, 1, 63)
	entries := make([]proxy.RemoteEntry, 0, n)
	for v := uint64(1); v <= uint64(n); v++ {
		key := fmt.Sprintf("k%06d", v)
		if zipf {
			key = fmt.Sprintf("zk%03d", z.Uint64())
		}
		val := make([]byte, 24) // AllUpdates-sized writeset (~54 B)
		r.Read(val)
		entries = append(entries, proxy.RemoteEntry{
			Version: v,
			WS: &core.Writeset{Ops: []core.WriteOp{{
				Kind: core.OpUpdate, Table: "au", Key: key,
				Cols: []core.ColUpdate{{Col: "v", Value: val}},
			}}},
		})
	}
	return entries
}

// runApplyStream drives one labeled stream through a fresh replica
// apply path and times it end to end (submission through the last
// version becoming visible).
func runApplyStream(workers int, entries []proxy.RemoteEntry, seed int64) (ApplyScalePoint, error) {
	logDisk := simdisk.New(simdisk.Profile{
		FsyncLatency: applyScaleFsync,
		FsyncJitter:  applyScaleFsync / 4,
	}, seed)
	store := mvstore.Open(mvstore.Config{
		LogDisk:      logDisk,
		WALMode:      wal.SyncCommits,
		LockTimeout:  2 * time.Second,
		OrderTimeout: 30 * time.Second,
	})
	defer store.Close()
	p := proxy.New(proxy.Config{
		Mode:             proxy.TashkentAPI,
		ReplicaID:        1,
		Store:            store,
		ChunkWaitTimeout: 10 * time.Second,
		ApplyWorkers:     workers,
	})
	defer p.Close()

	top := entries[len(entries)-1].Version
	start := time.Now()
	if err := p.ApplyRemoteEntries(entries); err != nil {
		return ApplyScalePoint{}, err
	}
	if err := store.WaitAnnounced(top, 60*time.Second); err != nil {
		return ApplyScalePoint{}, fmt.Errorf("stream never fully announced: %w", err)
	}
	d := time.Since(start)
	pt := ApplyScalePoint{
		Workers:  workers,
		Entries:  len(entries),
		Duration: d,
		Stats:    p.ApplyStats(),
		Fsyncs:   logDisk.Stats().Fsyncs,
	}
	if s := d.Seconds(); s > 0 {
		pt.PerSec = float64(len(entries)) / s
	}
	return pt, nil
}

// RunApplyScaleExperiment measures the dependency-tracked parallel
// applier (see internal/proxy/schedule.go) against the serial-gate
// baseline it replaced. Phase A drives a pre-labeled remote stream —
// no certification round trip, apply path only — through one replica
// with synchronous WAL commits on a 200 µs-fsync log disk: the serial
// path pays one unsharable fsync per writeset, while the worker pool's
// concurrent installers group-commit, so throughput scales with
// install parallelism until the log channel saturates. A zipfian
// hot-key stream then shows the conflicted case, where same-key
// dependency chains bound the achievable parallelism. Phase B runs an
// update-heavy workload against a 4-group partitioned cluster with the
// parallel applier enabled and profiles each replica's apply lag (the
// gap between the merged stream's planning cursor and the announced
// version) — the freshness metric the applier exists to bound.
func RunApplyScaleExperiment(o Options) (ApplyScaleResult, error) {
	o = o.withDefaults()
	var res ApplyScaleResult

	fmt.Fprintf(o.Out, "\n=== applyscale: parallel dependency-tracked writeset apply, single replica ===\n")
	fmt.Fprintf(o.Out, "stream=%d labeled single-row updates  fsync=%v  sync WAL commits\n",
		applyScaleEntries, applyScaleFsync)
	fmt.Fprintf(o.Out, "workers\tapplies/s\tspeedup\tfsyncs\tpar(max)\tlag p99(ms)\n")

	var serial, eight ApplyScalePoint
	for _, w := range DefaultApplyWorkerSweep {
		entries := applyScaleStream(applyScaleEntries, false, o.Seed)
		pt, err := runApplyStream(w, entries, o.Seed+int64(w))
		if err != nil {
			return res, fmt.Errorf("applyscale disjoint @%d workers: %w", w, err)
		}
		res.Disjoint = append(res.Disjoint, pt)
		if w == 0 {
			serial = pt
		}
		if w == 8 {
			eight = pt
		}
		speedup := "-"
		if serial.PerSec > 0 && w != 0 {
			speedup = fmt.Sprintf("%.2fx", pt.PerSec/serial.PerSec)
		}
		fmt.Fprintf(o.Out, "%d\t%.0f\t%s\t%d\t%d\t%.2f\n",
			w, pt.PerSec, speedup, pt.Fsyncs, pt.Stats.Parallelism.Max,
			float64(pt.Stats.Lag.P99.Microseconds())/1000)
	}
	if serial.PerSec > 0 && eight.PerSec > 0 {
		res.Speedup8 = eight.PerSec / serial.PerSec
	}

	zipfEntries := applyScaleStream(applyScaleEntries, true, o.Seed)
	zpt, err := runApplyStream(8, zipfEntries, o.Seed+100)
	if err != nil {
		return res, fmt.Errorf("applyscale zipf: %w", err)
	}
	res.Zipf = zpt
	fmt.Fprintf(o.Out, "zipf@8\t%.0f\t%.2fx\t%d\t%d\t%.2f\t(hot-key chains, theta=1.3)\n",
		zpt.PerSec, zpt.PerSec/serial.PerSec, zpt.Fsyncs, zpt.Stats.Parallelism.Max,
		float64(zpt.Stats.Lag.P99.Microseconds())/1000)

	if err := runApplyLagPhase(&res, o); err != nil {
		return res, err
	}
	return res, nil
}

// runApplyLagPhase is phase B: apply lag under a 4-group partitioned
// merged stream with the parallel applier on every replica.
func runApplyLagPhase(res *ApplyScaleResult, o Options) error {
	const replicas = 2
	c, err := cluster.New(cluster.Config{
		Mode:               proxy.TashkentMW,
		Replicas:           replicas,
		Certifiers:         3,
		Partitions:         4,
		IOProfile:          o.profile(),
		DedicatedIO:        true,
		CertMaxBatch:       o.CertMaxBatch,
		CertMaxWait:        o.CertMaxWait,
		LocalCertification: true,
		EagerPreCert:       true,
		ApplyWorkers:       8,
		LockTimeout:        5 * time.Second,
		OrderTimeout:       10 * time.Second,
		Seed:               o.Seed,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	ctx := context.Background()
	wl := &workload.AllUpdates{}
	begins := make([]workload.BeginFunc, replicas)
	for i := 0; i < replicas; i++ {
		i := i
		begins[i] = workload.Plain(func() (workload.PlainTx, error) { return c.Begin(i) })
	}

	// Sample each replica's lag while the workload runs.
	maxLag := make([]uint64, replicas)
	maxPend := make([]int, replicas)
	var stop atomic.Bool
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			for i := 0; i < replicas; i++ {
				st := c.Replica(i).Proxy().ApplyStats()
				if st.LagVersions > maxLag[i] {
					maxLag[i] = st.LagVersions
				}
				if st.Pending > maxPend[i] {
					maxPend[i] = st.Pending
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	r := workload.Run(ctx, wl, begins, workload.RunConfig{
		ClientsPerReplica: o.ClientsPerReplica,
		Warmup:            o.Warmup,
		Measure:           o.Measure,
		ExecTime:          0, // apply-bound: no simulated think time
		Seed:              o.Seed,
	})
	stop.Store(true)
	<-samplerDone
	res.PartThroughput = r.Throughput

	// Convergence proves the lag is bounded: every pending drains and
	// every replica reaches the merged head.
	if err := c.ConvergeAll(30 * time.Second); err != nil {
		return fmt.Errorf("applyscale partitioned stream never converged: %w", err)
	}

	fmt.Fprintf(o.Out, "\n[partitioned apply lag: 4 groups, %d replicas, AllUpdates, workers=8]\n", replicas)
	fmt.Fprintf(o.Out, "throughput=%.0f txn/s\n", r.Throughput)
	fmt.Fprintf(o.Out, "replica\tmaxLag(vers)\tmaxPending\tpublished\tsuperseded\tpar(max)\n")
	for i := 0; i < replicas; i++ {
		st := c.Replica(i).Proxy().ApplyStats()
		res.Partitioned = append(res.Partitioned, ApplyLagPoint{
			Replica: i, MaxLag: maxLag[i], MaxPending: maxPend[i], Stats: st,
		})
		fmt.Fprintf(o.Out, "%d\t%d\t%d\t%d\t%d\t%d\n",
			i, maxLag[i], maxPend[i], st.Published, st.Superseded, st.Parallelism.Max)
	}
	return nil
}
