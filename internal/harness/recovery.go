package harness

import (
	"context"
	"fmt"
	"time"

	"tashkent/internal/cluster"
	"tashkent/internal/paxos"
	"tashkent/internal/proxy"
	"tashkent/internal/workload"
)

// RecoveryReport reproduces the §9.6 measurements: dump cost and
// throughput degradation while dumping (Tashkent-MW), restore time,
// WAL-based recovery (Base/Tashkent-API), the writeset re-application
// rate, and certifier state-transfer size/time.
type RecoveryReport struct {
	// Tashkent-MW dump/restore.
	DumpBytes              int
	DumpDuration           time.Duration
	ThroughputWhileDumping float64
	ThroughputBaseline     float64
	MWRestoreDuration      time.Duration
	MWResyncWritesets      int64

	// Base/Tashkent-API WAL recovery.
	WALRecords         int
	WALRecoverDuration time.Duration

	// Writeset re-application rate (all systems).
	ApplyRate float64 // writesets per second

	// Certifier recovery.
	CertTransferEntries  int
	CertTransferBytes    int
	CertTransferDuration time.Duration
}

// DumpDegradation returns the fractional throughput loss while
// dumping (the paper measures 13 %).
func (r RecoveryReport) DumpDegradation() float64 {
	if r.ThroughputBaseline == 0 {
		return 0
	}
	d := 1 - r.ThroughputWhileDumping/r.ThroughputBaseline
	if d < 0 {
		return 0
	}
	return d
}

// RunRecoveryExperiment exercises every §9.6 recovery path at a small
// scale and reports the measured costs.
func RunRecoveryExperiment(o Options) (RecoveryReport, error) {
	o = o.withDefaults()
	var rep RecoveryReport
	fmt.Fprintf(o.Out, "\n=== §9.6 recovery costs ===\n")

	// --- Tashkent-MW: dump while processing, crash, restore, resync.
	mw, err := clusterFor(SysMW, 2, false, o, &workload.TPCW{})
	if err != nil {
		return rep, err
	}
	wl := &workload.TPCW{Items: 2000, CPUWork: 200}
	ctx := context.Background()
	begin0 := workload.Plain(func() (workload.PlainTx, error) { return mw.Begin(0) })
	if err := wl.Populate(ctx, begin0); err != nil {
		mw.Close()
		return rep, err
	}
	mw.ConvergeAll(30 * time.Second)

	begins := []workload.BeginFunc{begin0}
	baseline := workload.Run(ctx, wl, begins, workload.RunConfig{
		ClientsPerReplica: o.ClientsPerReplica, Warmup: o.Warmup / 2, Measure: o.Measure / 2, Seed: o.Seed,
	})
	rep.ThroughputBaseline = baseline.Throughput

	// Dump concurrently with load and measure the degradation.
	dumpDone := make(chan error, 1)
	dumpStart := time.Now()
	go func() {
		n, err := mw.Replica(0).DumpNow()
		rep.DumpBytes = n
		rep.DumpDuration = time.Since(dumpStart)
		dumpDone <- err
	}()
	during := workload.Run(ctx, wl, begins, workload.RunConfig{
		ClientsPerReplica: o.ClientsPerReplica, Warmup: o.Warmup / 2, Measure: o.Measure / 2, Seed: o.Seed + 1,
	})
	rep.ThroughputWhileDumping = during.Throughput
	if err := <-dumpDone; err != nil {
		mw.Close()
		return rep, err
	}

	// Crash and recover replica 0 from the dump.
	mw.CrashReplica(0)
	recStart := time.Now()
	mwRep, err := mw.RecoverReplica(0)
	if err != nil {
		mw.Close()
		return rep, err
	}
	rep.MWRestoreDuration = time.Since(recStart)
	rep.MWResyncWritesets = mwRep.WritesetsApplied
	mw.Close()

	// --- Base: WAL recovery.
	base, err := clusterFor(SysBase, 1, false, o, &workload.AllUpdates{})
	if err != nil {
		return rep, err
	}
	au := &workload.AllUpdates{}
	baseBegins := []workload.BeginFunc{workload.Plain(func() (workload.PlainTx, error) { return base.Begin(0) })}
	workload.Run(ctx, au, baseBegins, workload.RunConfig{
		ClientsPerReplica: o.ClientsPerReplica, Warmup: 0, Measure: o.Measure / 2, Seed: o.Seed,
	})
	base.CrashReplica(0)
	walStart := time.Now()
	baseRep, err := base.RecoverReplica(0)
	if err != nil {
		base.Close()
		return rep, err
	}
	rep.WALRecords = baseRep.WALRecords
	rep.WALRecoverDuration = time.Since(walStart)
	base.Close()

	// --- Writeset apply rate: time a bulk resync.
	rate, err := measureApplyRate(o)
	if err != nil {
		return rep, err
	}
	rep.ApplyRate = rate

	// --- Certifier state transfer.
	if err := measureCertTransfer(o, &rep); err != nil {
		return rep, err
	}

	fmt.Fprintf(o.Out, "MW dump: %d bytes in %v (throughput %.0f -> %.0f, %.0f%% degradation)\n",
		rep.DumpBytes, rep.DumpDuration.Round(time.Millisecond),
		rep.ThroughputBaseline, rep.ThroughputWhileDumping, rep.DumpDegradation()*100)
	fmt.Fprintf(o.Out, "MW restore+resync: %v (%d writesets re-applied)\n",
		rep.MWRestoreDuration.Round(time.Millisecond), rep.MWResyncWritesets)
	fmt.Fprintf(o.Out, "Base WAL recovery: %d records in %v\n",
		rep.WALRecords, rep.WALRecoverDuration.Round(time.Millisecond))
	fmt.Fprintf(o.Out, "writeset apply rate: %.0f ws/s\n", rep.ApplyRate)
	fmt.Fprintf(o.Out, "certifier state transfer: %d entries (%d bytes) in %v\n",
		rep.CertTransferEntries, rep.CertTransferBytes, rep.CertTransferDuration.Round(time.Millisecond))
	return rep, nil
}

// measureApplyRate commits a batch of updates on replica 0 and times
// how fast a lagging replica 1 re-applies them during resync.
func measureApplyRate(o Options) (float64, error) {
	c, err := clusterFor(SysMW, 2, true, o, &workload.AllUpdates{})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	const n = 300
	for i := 0; i < n; i++ {
		tx, err := c.Begin(0)
		if err != nil {
			return 0, err
		}
		if err := tx.Update("bulk", fmt.Sprintf("k%04d", i), map[string][]byte{"v": []byte("x")}); err != nil {
			tx.Abort()
			return 0, err
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	if err := c.Replica(1).Proxy().Resync(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, nil
	}
	return n / elapsed.Seconds(), nil
}

// measureCertTransfer crashes a certifier follower after a batch of
// certifications and times the log fetch a recovering node performs.
func measureCertTransfer(o Options, rep *RecoveryReport) error {
	c, err := cluster.New(cluster.Config{
		Mode: proxy.TashkentMW, Replicas: 1, Certifiers: 3,
		IOProfile: o.profile(), DedicatedIO: true,
		LocalCertification: true, EagerPreCert: true, Seed: o.Seed,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; i < 200; i++ {
		tx, err := c.Begin(0)
		if err != nil {
			return err
		}
		if err := tx.Update("t", fmt.Sprintf("k%04d", i), map[string][]byte{"v": []byte("y")}); err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	leader := c.CertLeader()
	if leader == nil {
		return fmt.Errorf("no certifier leader")
	}
	start := time.Now()
	entries, _, err := paxos.Fetch(leaderClient{leader}, 1)
	if err != nil {
		return err
	}
	rep.CertTransferDuration = time.Since(start)
	rep.CertTransferEntries = len(entries)
	for _, e := range entries {
		rep.CertTransferBytes += len(e.Data)
	}
	return nil
}

// leaderClient adapts a certifier server to the paxos.Fetch peer
// interface by calling its handler directly (the in-process
// equivalent of the file transfer).
type leaderClient struct {
	s interface {
		Handle(string, []byte) ([]byte, error)
	}
}

// Call implements the fetch peer interface.
func (l leaderClient) Call(method string, req []byte) ([]byte, error) {
	return l.s.Handle(method, req)
}
