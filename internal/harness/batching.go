package harness

import (
	"fmt"

	"tashkent/internal/workload"
)

// RunBatchingExperiment reproduces the paper's headline batching
// figure — writesets per fsync versus offered load — on an update-only
// workload with dedicated IO. Each replica step adds closed-loop
// update clients, and the table reports how the certification pipeline
// amortizes its replication rounds and disk flushes: throughput, the
// leader's writesets-per-fsync (GroupRatio), the pipeline batch-size
// distribution, and certifier disk utilization. Both Tashkent systems
// run; Base is omitted because its durability point is the replica
// disk, not the certifier.
func RunBatchingExperiment(o Options) ([]Series, error) {
	o = o.withDefaults()
	fmt.Fprintf(o.Out, "\n=== batching: writesets per fsync vs load (AllUpdates, dedicated IO) ===\n")
	maxBatch := "default"
	if o.CertMaxBatch > 0 {
		maxBatch = fmt.Sprintf("%d", o.CertMaxBatch)
	}
	fmt.Fprintf(o.Out, "scale=1/%d  clients/replica=%d  maxbatch=%s  maxwait=%s\n",
		o.Scale, o.ClientsPerReplica, maxBatch, o.CertMaxWait)

	systems := []System{SysMW, SysAPI}
	var out []Series
	for _, sys := range systems {
		s := Series{Name: sys.String()}
		for _, n := range o.ReplicaCounts {
			pt, err := runPoint(sys, n, true, &workload.AllUpdates{}, o)
			if err != nil {
				return out, fmt.Errorf("%s @%d replicas: %w", sys, n, err)
			}
			s.Points = append(s.Points, pt)
			fmt.Fprintf(o.Out, "%s\t%d replicas\t%.0f txn/s\tws/fsync=%.1f\tbatch(mean=%.1f p99=%d max=%d)\tutil=%.0f%%\n",
				sys, n, pt.Result.Throughput, pt.GroupRatio,
				pt.Batch.Mean, pt.Batch.P99, pt.Batch.Max, pt.CertUtil*100)
		}
		out = append(out, s)
	}
	printGroupRatioTable(o.Out, o.ReplicaCounts, out)
	return out, nil
}
