package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tashkent"
	"tashkent/internal/chaos"
	"tashkent/internal/cluster"
	"tashkent/internal/metrics"
	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
)

// This file implements `tashbench -exp gray`: gray-failure drills.
// Unlike the chaos experiment — uniform fault probabilities and
// crash-restarts, i.e. nodes that die honestly — gray failures are
// nodes and links that stay up and keep answering but answer *slowly
// or lossily*: a degraded disk, one bad NIC, a certifier group that
// lost its quorum while the replicas stayed healthy. The drills
// validate the overload/degradation machinery this repo adds on top of
// the paper's design: router circuit breakers that eject a slow
// replica, the session-level degradation breaker that turns certifier
// quorum loss into fast typed write failures while snapshot reads keep
// flowing, and the same five safety invariants the chaos checker
// enforces — under gray fire instead of crash fire.

// buildGrayPlan derives a seeded gray-failure plan: a healthy mesh
// (no uniform fault probabilities) with localized victims — one slow
// replica→certifier link, one lossy intra-group certifier link, a
// mid-window slow-disk episode on one replica, and one asymmetric cut.
// A pure function of the seed, like buildChaosPlan.
func buildGrayPlan(seed int64, window time.Duration) chaosPlan {
	rng := rand.New(rand.NewSource(seed ^ 0x62A7F))
	modes := []proxy.Mode{proxy.TashkentMW, proxy.TashkentAPI, proxy.Base}
	partitions := 1
	if rng.Intn(2) == 1 {
		partitions = 2
	}
	p := chaosPlan{
		seed:       seed,
		mode:       modes[rng.Intn(len(modes))],
		partitions: partitions,
		window:     window,
		links:      chaosLinks(partitions),
		// The mesh itself stays healthy; gray failures are the
		// localized victims selected below, not uniform noise.
		rules:     chaos.Rules{},
		diskDelay: time.Duration(1+rng.Intn(3)) * time.Millisecond,
	}
	nodes := partitions * chaosCertifiers
	at := func(loFrac, hiFrac float64) time.Duration {
		lo, hi := float64(window)*loFrac, float64(window)*hiFrac
		return time.Duration(lo + rng.Float64()*(hi-lo))
	}

	// Victim 1: a slow replica→certifier link — every message arrives,
	// late.
	p.gray = append(p.gray, grayOverride{
		From:  cluster.ReplicaName(rng.Intn(chaosReplicas)),
		To:    certNodeName(partitions, rng.Intn(nodes)),
		Rules: chaos.Rules{DelayProb: 1, MaxDelay: time.Duration(2+rng.Intn(5)) * time.Millisecond},
	})
	// Victim 2: a lossy intra-group certifier link — most messages
	// arrive, some vanish, none are refused: the gray middle ground
	// between healthy and cut.
	g := rng.Intn(partitions)
	from := rng.Intn(chaosCertifiers)
	to := rng.Intn(chaosCertifiers)
	if to == from {
		to = (to + 1) % chaosCertifiers
	}
	p.gray = append(p.gray, grayOverride{
		From: certNodeName(partitions, g*chaosCertifiers+from),
		To:   certNodeName(partitions, g*chaosCertifiers+to),
		Rules: chaos.Rules{
			DropProb:     0.20 + 0.20*rng.Float64(),
			DropRespProb: 0.10 + 0.10*rng.Float64(),
			DelayProb:    0.5,
			MaxDelay:     2 * time.Millisecond,
		},
	})

	// Timeline: a slow-disk episode on one replica plus one asymmetric
	// replica→certifier cut — gray while they last, healthy before and
	// after.
	p.events = append(p.events,
		faultEvent{At: at(0.15, 0.35), Dur: time.Duration(40+rng.Intn(40)) * time.Millisecond,
			Kind: "slow-disk", Node: rng.Intn(chaosReplicas)},
		faultEvent{At: at(0.40, 0.60), Dur: time.Duration(20+rng.Intn(40)) * time.Millisecond, Kind: "cut",
			From: cluster.ReplicaName(rng.Intn(chaosReplicas)),
			To:   certNodeName(partitions, rng.Intn(nodes))},
		faultEvent{At: at(0.30, 0.50), Kind: "dump", Node: rng.Intn(chaosReplicas)},
	)
	sort.Slice(p.events, func(i, j int) bool { return p.events[i].At < p.events[j].At })
	return p
}

// RunGraySeed executes one seeded gray-failure run — slow and lossy
// victims under client fire — and verifies the full chaos invariant
// set (durability of acked commits, SI consistency of every read,
// response sequencing, convergence) against the certifier log.
func RunGraySeed(seed int64, o Options) (ChaosResult, error) {
	return runChaosPlan(buildGrayPlan(seed, 300*time.Millisecond), o)
}

// RunGrayExperiment runs every seed and prints a per-seed table, like
// RunChaosExperiment but over gray plans. The returned error lists the
// failing seeds.
func RunGrayExperiment(seeds []int64, o Options) ([]ChaosResult, error) {
	o = o.withDefaults()
	fmt.Fprintf(o.Out, "\n=== gray: seeded gray-failure drills + invariant check ===\n")
	fmt.Fprintf(o.Out, "seed\tmode\tparts\tdigest\tacked\taborted\tunknown\treads\tlog\tdrops\tdelays\tcuts\tverdict\n")
	var results []ChaosResult
	var failing []int64
	for _, seed := range seeds {
		res, err := RunGraySeed(seed, o)
		if err != nil {
			res.Violations = append(res.Violations, err)
		}
		results = append(results, res)
		verdict := "PASS"
		if !res.Passed() {
			verdict = "FAIL"
			failing = append(failing, seed)
		}
		fmt.Fprintf(o.Out, "%d\t%s\t%d\t%016x\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			res.Seed, res.Mode, res.Partitions, res.Digest, res.Acked, res.Aborted, res.Unknown, res.Reads,
			res.LogEntries, res.Faults.DroppedReqs+res.Faults.DroppedResps,
			res.Faults.Delayed, res.Faults.CutDrops, verdict)
		for _, v := range res.Violations {
			fmt.Fprintf(o.Out, "  seed %d: %v\n", res.Seed, v)
		}
	}
	if len(failing) > 0 {
		return results, fmt.Errorf("gray: %d/%d seeds failed invariants: %v (replay with -exp gray -seed S)",
			len(failing), len(seeds), failing)
	}
	return results, nil
}

// --- Slow-disk drill: router breaker ejection ---

// SlowDiskDrillResult reports the router circuit breaker's reaction to
// one replica going gray (alive but with stalling disks).
type SlowDiskDrillResult struct {
	Seed          int64
	EjectAfter    time.Duration // hook install → breaker open
	PostP99       time.Duration // commit p99 while the victim is ejected
	PostSlowShare float64       // fraction of post-ejection commits still on the victim (probes)
	PostCommits   int64
	Recovered     bool // breaker closed again after the disk healed
}

const (
	grayTable     = "gray"
	grayCol       = "v"
	grayDiskStall = 20 * time.Millisecond
)

// RunSlowDiskDrill makes one replica's disks stall on every operation
// — the node keeps answering, slowly — and verifies the session
// router's latency breaker ejects it: commit traffic shifts to the
// healthy replicas, post-ejection p99 stays below one disk stall, and
// once the disk heals a half-open probe folds the replica back in.
func RunSlowDiskDrill(seed int64, o Options) (SlowDiskDrillResult, error) {
	o = o.withDefaults()
	res := SlowDiskDrillResult{Seed: seed}
	const (
		slowReplica = 1
		workers     = 6
	)
	db, err := tashkent.Start(tashkent.Config{
		Mode:     tashkent.ModeTashkentAPI,
		Replicas: 3,
		Seed:     seed,
	})
	if err != nil {
		return res, err
	}
	defer db.Close()

	// Worker fire: pure updates, one key per worker (no cert
	// conflicts), round-robin routing so every replica — including the
	// victim — keeps sampling.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var phase atomic.Int32 // 0 warm, 1 measuring post-ejection, 2 done measuring
	postLat := metrics.NewLatency(0)
	var postAll, postSlow atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := db.Session(tashkent.WithPolicy(tashkent.RoundRobin()))
			key := fmt.Sprintf("sd%d", w)
			n := 0
			for ctx.Err() == nil {
				n++
				tctx, tcancel := context.WithTimeout(ctx, time.Second)
				tx, err := sess.Begin(tctx)
				if err != nil {
					tcancel()
					continue
				}
				rep := tx.Replica()
				t0 := time.Now()
				if err := tx.Update(grayTable, key, map[string][]byte{grayCol: []byte(fmt.Sprintf("%d", n))}); err != nil {
					tx.Abort()
					tcancel()
					continue
				}
				err = tx.Commit(tctx)
				el := time.Since(t0)
				tcancel()
				if err != nil {
					continue
				}
				if phase.Load() == 1 {
					postAll.Add(1)
					if rep == slowReplica {
						postSlow.Add(1)
					}
					postLat.Observe(el)
				}
			}
		}()
	}

	// Warm every replica's latency EWMA past the breaker's minimum
	// sample count, then go gray.
	time.Sleep(300 * time.Millisecond)
	r := db.Replica(slowReplica)
	hook := func(simdisk.Op, int, int) { time.Sleep(grayDiskStall) }
	r.DataDisk().SetHook(hook)
	r.LogDisk().SetHook(hook)
	t0 := time.Now()
	ejected := chaos.WaitUntil(10*time.Second, func() bool {
		state, _, _ := db.RouterCounters().Health(slowReplica)
		return state == "open"
	})
	res.EjectAfter = time.Since(t0)
	if !ejected {
		return res, fmt.Errorf("slow-disk drill: replica %d was never ejected", slowReplica)
	}

	// Measure a post-ejection window: traffic should avoid the victim
	// (half-open probes excepted) and commit p99 should sit below a
	// single disk stall.
	phase.Store(1)
	time.Sleep(400 * time.Millisecond)
	phase.Store(2)
	res.PostCommits = postAll.Load()
	res.PostP99 = postLat.Summarize().P99
	if res.PostCommits > 0 {
		res.PostSlowShare = float64(postSlow.Load()) / float64(res.PostCommits)
	}

	// Heal the disk; a half-open probe should fold the replica back.
	r.DataDisk().SetHook(nil)
	r.LogDisk().SetHook(nil)
	res.Recovered = chaos.WaitUntil(10*time.Second, func() bool {
		state, _, _ := db.RouterCounters().Health(slowReplica)
		return state == "closed"
	})
	cancel()
	wg.Wait()
	return res, nil
}

// --- Degraded-mode drill: certifier quorum loss ---

// DegradedDrillResult reports the read-only degradation drill.
type DegradedDrillResult struct {
	FailsBeforeDegraded int           // slow failures before the breaker opened
	DegradedFailFast    time.Duration // latency of the first breaker-fast write failure
	ReadsOKDuring       bool          // snapshot reads kept working while degraded
	WriteRecovered      bool          // writes resumed after the certifiers healed
}

// RunDegradedDrill kills the certifier group's quorum (two of three
// nodes) and verifies graceful read-only degradation: after a bounded
// number of slow failover attempts, writes fail *fast* with the typed
// degraded error; snapshot reads keep serving the last merged version
// throughout; and once the certifiers recover, a half-open probe
// restores write service without a restart.
func RunDegradedDrill(o Options) (DegradedDrillResult, error) {
	o = o.withDefaults()
	var res DegradedDrillResult
	db, err := tashkent.Start(tashkent.Config{
		Mode:        tashkent.ModeTashkentMW,
		Replicas:    2,
		Certifiers:  3,
		CertTimeout: 150 * time.Millisecond,
		Seed:        o.Seed,
	})
	if err != nil {
		return res, err
	}
	defer db.Close()
	ctx := context.Background()
	sess := db.Session()

	commitOnce := func(cctx context.Context, val string) error {
		tx, err := sess.Begin(cctx)
		if err != nil {
			return err
		}
		if err := tx.Update(grayTable, "k", map[string][]byte{grayCol: []byte(val)}); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit(cctx)
	}

	// Prime: one committed value every replica has merged.
	if err := commitOnce(ctx, "v1"); err != nil {
		return res, fmt.Errorf("degraded drill: prime write: %w", err)
	}
	if err := db.Converge(10 * time.Second); err != nil {
		return res, err
	}

	// Kill the quorum: the leader and one follower. The surviving node
	// answers — it is gray, not dead — but can never win an election.
	cl := db.Cluster()
	li := cl.CertLeaderIndex()
	if li < 0 {
		li = 0
	}
	a, b := li, (li+1)%cl.Certifiers()
	imgA := cl.CrashCertifier(a)
	imgB := cl.CrashCertifier(b)

	// Writes: a bounded number of slow failover failures, then the
	// degradation breaker opens and failures become fast and typed.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		wctx, wcancel := context.WithTimeout(ctx, 2*time.Second)
		t0 := time.Now()
		err := commitOnce(wctx, "v2")
		el := time.Since(t0)
		wcancel()
		if err == nil {
			continue // a straggler batch may still drain; keep pushing
		}
		if tashkent.IsDegraded(err) {
			res.DegradedFailFast = el
			break
		}
		res.FailsBeforeDegraded++
	}
	if res.DegradedFailFast == 0 {
		return res, fmt.Errorf("degraded drill: the typed degraded error never surfaced")
	}

	// Reads: still served, at the last merged version.
	rtx, err := sess.Begin(ctx, tashkent.ReadOnly())
	if err == nil {
		v, ok, rerr := rtx.ReadCol(grayTable, "k", grayCol)
		rtx.Abort()
		res.ReadsOKDuring = rerr == nil && ok && string(v) == "v1"
	}

	// Heal: recover both certifiers and wait for a half-open probe to
	// restore write service.
	if err := cl.RecoverCertifier(a, imgA); err != nil {
		return res, err
	}
	if err := cl.RecoverCertifier(b, imgB); err != nil {
		return res, err
	}
	res.WriteRecovered = chaos.WaitUntil(15*time.Second, func() bool {
		wctx, wcancel := context.WithTimeout(ctx, time.Second)
		defer wcancel()
		return commitOnce(wctx, "v3") == nil
	})
	return res, nil
}
