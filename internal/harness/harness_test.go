package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fastOptions keeps harness tests quick: tiny latencies, small sweeps.
func fastOptions(out *bytes.Buffer) Options {
	return Options{
		// Scale 20 keeps the 400 µs fsync comfortably above scheduler
		// noise so the figure shapes remain visible in a quick run.
		Scale:             20,
		ReplicaCounts:     []int{1, 3},
		ClientsPerReplica: 4,
		Warmup:            50 * time.Millisecond,
		Measure:           400 * time.Millisecond,
		Seed:              1,
		Out:               out,
	}
}

func TestFig4ShapeTashkentBeatsBase(t *testing.T) {
	if raceEnabled {
		t.Skip("figure-shape timing ratios are not meaningful under the race detector")
	}
	var buf bytes.Buffer
	o := fastOptions(&buf)
	// This test asserts throughput *ratios* between the modes, and the
	// paper derives those ratios from fsync cost (its testbed is
	// disk-bound at 8ms). At scale 20 the 400µs fsync leaves the modes
	// CPU-bound on a small shared box, where scheduler noise — not the
	// commit strategy — sets the ratio; 4ms fsyncs pin Base to its
	// serial-fsync ceiling so the shape survives noisy-neighbor CPU
	// steal, and the deeper closed loop gives the certifier enough
	// concurrent commits to form the shared-fsync batches the Tashkent
	// advantage comes from.
	o.Scale = 2
	o.ClientsPerReplica = 8
	series, err := Fig4and5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	// The paper's headline shape at the largest replica count: both
	// Tashkent systems beat Base by a wide margin, and Tashkent-MW
	// beats Tashkent-API.
	last := len(byName["base"].Points) - 1
	base := byName["base"].Points[last].Result.Throughput
	mw := byName["tashMW"].Points[last].Result.Throughput
	api := byName["tashAPI"].Points[last].Result.Throughput
	noCert := byName["tashAPInoCERT"].Points[last].Result.Throughput
	if base <= 0 {
		t.Fatal("base throughput is zero")
	}
	if mw < 1.5*base {
		t.Errorf("tashMW %.0f not >> base %.0f", mw, base)
	}
	if api < 1.2*base {
		t.Errorf("tashAPI %.0f not >> base %.0f", api, base)
	}
	if mw < 0.9*api {
		t.Errorf("tashMW %.0f well below tashAPI %.0f; paper has MW on top", mw, api)
	}
	if noCert < base {
		t.Errorf("tashAPInoCERT %.0f below base %.0f", noCert, base)
	}
	// Response time: Base worst.
	baseRT := byName["base"].Points[last].Result.RT.Mean
	mwRT := byName["tashMW"].Points[last].Result.RT.Mean
	if mwRT >= baseRT {
		t.Errorf("tashMW RT %v not below base RT %v", mwRT, baseRT)
	}
	if !strings.Contains(buf.String(), "Throughput") {
		t.Error("missing throughput table in output")
	}
}

func TestBaseScalesLinearlyWithReplicas(t *testing.T) {
	if raceEnabled {
		t.Skip("figure-shape timing ratios are not meaningful under the race detector")
	}
	var buf bytes.Buffer
	o := fastOptions(&buf)
	o.ReplicaCounts = []int{1, 2, 4}
	series, err := ThroughputExperiment("base scaling", newAllUpdates, false, []System{SysBase}, o)
	if err != nil {
		t.Fatal(err)
	}
	pts := series[0].Points
	// From 2 replicas on, every Base commit pays two serial fsyncs
	// (remote batch + local), so capacity grows linearly with replica
	// count within that regime: 4 replicas ≈ 2× the 2-replica rate.
	if got, want := pts[2].Result.Throughput, 1.5*pts[1].Result.Throughput; got < want {
		t.Errorf("base at 4 replicas %.0f, at 2 replicas %.0f: expected near-linear growth",
			pts[2].Result.Throughput, pts[1].Result.Throughput)
	}
	// The paper's 1→2 replica response-time jump: the second fsync.
	if pts[1].Result.RT.Mean < pts[0].Result.RT.Mean {
		t.Errorf("base RT at 2 replicas (%v) below 1 replica (%v); expected a jump",
			pts[1].Result.RT.Mean, pts[0].Result.RT.Mean)
	}
}

func TestStandaloneComparisonWithin(t *testing.T) {
	if raceEnabled {
		t.Skip("figure-shape timing ratios are not meaningful under the race detector")
	}
	var buf bytes.Buffer
	o := fastOptions(&buf)
	cmp, err := RunStandaloneComparison(true, o)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.StandaloneThroughput <= 0 || cmp.OneReplicaThroughput <= 0 {
		t.Fatalf("zero throughput: %+v", cmp)
	}
	// Paper: within 5 %. Allow slack at this tiny scale, but the
	// 1-replica system must be in the same ballpark (< 35 % off).
	if ov := cmp.Overhead(); ov > 0.35 {
		t.Errorf("1-replica MW overhead %.0f%%, want small", ov*100)
	}
}

func TestFig14GoodputDropsWithAbortRate(t *testing.T) {
	if raceEnabled {
		t.Skip("figure-shape timing ratios are not meaningful under the race detector")
	}
	var buf bytes.Buffer
	o := fastOptions(&buf)
	o.ReplicaCounts = []int{2}
	series, err := Fig14(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 9 {
		t.Fatalf("got %d curves, want 9", len(series))
	}
	mw0 := series["tashMW@0%"].Points[0].Result
	mw40 := series["tashMW@40%"].Points[0].Result
	if mw40.Throughput >= mw0.Throughput {
		t.Errorf("goodput at 40%% aborts (%.0f) not below 0%% (%.0f)",
			mw40.Throughput, mw0.Throughput)
	}
	if mw40.AbortRate() < 0.25 {
		t.Errorf("measured abort rate %.2f, want ~0.4", mw40.AbortRate())
	}
	// Tashkent systems still beat Base even under heavy aborts.
	base40 := series["base@40%"].Points[0].Result
	if mw40.Throughput < base40.Throughput {
		t.Errorf("tashMW@40%% (%.0f) below base@40%% (%.0f)",
			mw40.Throughput, base40.Throughput)
	}
}

func TestRecoveryExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	o := fastOptions(&buf)
	o.ClientsPerReplica = 3
	rep, err := RunRecoveryExperiment(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DumpBytes == 0 {
		t.Error("dump produced no bytes")
	}
	if rep.WALRecords == 0 {
		t.Error("WAL recovery replayed no records")
	}
	if rep.ApplyRate <= 0 {
		t.Error("apply rate not measured")
	}
	if rep.CertTransferEntries == 0 {
		t.Error("certifier transfer empty")
	}
	if !strings.Contains(buf.String(), "writeset apply rate") {
		t.Error("report output missing")
	}
}

func TestSystemString(t *testing.T) {
	names := map[System]string{SysBase: "base", SysMW: "tashMW", SysAPI: "tashAPI", SysAPINoCert: "tashAPInoCERT"}
	for sys, want := range names {
		if sys.String() != want {
			t.Errorf("%d.String() = %q, want %q", sys, sys.String(), want)
		}
	}
}
