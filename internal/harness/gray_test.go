package harness

import (
	"os"
	"testing"
	"time"
)

// TestGrayScheduleDeterminism: gray plans — per-link overrides and the
// slow-disk episode included — are a pure function of the seed, so a
// failing drill replays with `tashbench -exp gray -seed S`.
func TestGrayScheduleDeterminism(t *testing.T) {
	a := buildGrayPlan(42, 300*time.Millisecond)
	b := buildGrayPlan(42, 300*time.Millisecond)
	if a.Digest() != b.Digest() {
		t.Fatalf("same seed planned different gray schedules: %x vs %x", a.Digest(), b.Digest())
	}
	if len(a.gray) != len(b.gray) || len(a.gray) == 0 {
		t.Fatalf("gray override counts differ or empty: %d vs %d", len(a.gray), len(b.gray))
	}
	for i := range a.gray {
		if a.gray[i] != b.gray[i] {
			t.Fatalf("gray override %d differs: %+v vs %+v", i, a.gray[i], b.gray[i])
		}
	}
	if buildGrayPlan(43, 300*time.Millisecond).Digest() == a.Digest() {
		t.Fatal("different seeds planned identical gray schedules")
	}
}

// graySeedSet mirrors chaosSeedSet: the dedicated CI gray job sets
// CHAOS_FULL=1 to run the 10-seed suite; elsewhere a smoke subset
// keeps `go test ./...` fast.
func graySeedSet() []int64 {
	n := 4
	if os.Getenv("CHAOS_FULL") != "" {
		n = 10
	}
	if testing.Short() {
		n = 2
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestGraySeeds runs the seeded gray-failure drills — slow/lossy
// victim links plus a slow-disk episode — through the full chaos
// invariant checker.
func TestGraySeeds(t *testing.T) {
	seeds := graySeedSet()
	results, err := RunGrayExperiment(seeds, Options{})
	for _, r := range results {
		t.Logf("seed %d mode %s digest %016x: acked=%d aborted=%d unknown=%d reads=%d log=%d violations=%d",
			r.Seed, r.Mode, r.Digest, r.Acked, r.Aborted, r.Unknown, r.Reads, r.LogEntries, len(r.Violations))
		for _, v := range r.Violations {
			t.Errorf("seed %d: %v", r.Seed, v)
		}
	}
	if err != nil {
		t.Errorf("%v", err)
	}
}

// TestGraySlowDiskRouterEjection: a replica whose disks stall on every
// op is ejected by the router's latency breaker, post-ejection commit
// p99 stays below one disk stall, and the replica folds back in after
// the disk heals.
func TestGraySlowDiskRouterEjection(t *testing.T) {
	res, err := RunSlowDiskDrill(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ejected after %v; post: commits=%d p99=%v slowShare=%.1f%%; recovered=%v",
		res.EjectAfter, res.PostCommits, res.PostP99, 100*res.PostSlowShare, res.Recovered)
	if res.PostCommits == 0 {
		t.Fatal("no commits landed in the post-ejection window")
	}
	if res.PostSlowShare > 0.2 {
		t.Errorf("ejected replica still served %.0f%% of post-ejection commits", 100*res.PostSlowShare)
	}
	// The race detector's scheduling overhead makes tail latencies
	// unrepresentative; the routing-share assertion above still holds.
	// The 3x margin absorbs scheduler noise (shared-box runs measure
	// ~2x even with the victim fully ejected) — without ejection a
	// third of commits land on the victim and eat multiple stalls
	// each, so p99 sits at many times grayDiskStall and the share
	// assertion above fails outright.
	if !raceEnabled && res.PostP99 >= 3*grayDiskStall {
		t.Errorf("post-ejection p99 %v not bounded by the disk stall (%v)", res.PostP99, grayDiskStall)
	}
	if !res.Recovered {
		t.Error("breaker never closed again after the disk healed")
	}
}

// TestGrayDegradedReadOnly: losing the certifier quorum degrades the
// system to read-only — writes fail fast with the typed error after a
// bounded number of slow failovers, snapshot reads keep serving the
// last merged version, and write service resumes on recovery without
// a restart.
func TestGrayDegradedReadOnly(t *testing.T) {
	res, err := RunDegradedDrill(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("failsBeforeDegraded=%d failFast=%v readsOK=%v recovered=%v",
		res.FailsBeforeDegraded, res.DegradedFailFast, res.ReadsOKDuring, res.WriteRecovered)
	// A handful when run alone; scheduler contention from parallel
	// suites stretches the leader's step-down window, so the bound
	// only asserts the breaker opens in bounded failures, not never.
	if res.FailsBeforeDegraded > 30 {
		t.Errorf("breaker took %d slow failures to open (want a bounded handful)", res.FailsBeforeDegraded)
	}
	if res.DegradedFailFast > 50*time.Millisecond {
		t.Errorf("degraded write failed in %v; want fail-fast well under the failover timeout", res.DegradedFailFast)
	}
	if !res.ReadsOKDuring {
		t.Error("snapshot reads did not keep serving the last merged version while degraded")
	}
	if !res.WriteRecovered {
		t.Error("writes never resumed after the certifiers recovered")
	}
}

// TestOverloadKnee: with admission control, goodput at 2x the
// saturation offered load holds near the closed-loop peak instead of
// collapsing, and the excess is answered by explicit shedding.
func TestOverloadKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("overload ladder is load-bearing wall-clock; skipped in -short")
	}
	// Longer windows than the tashbench default: each ladder point
	// needs enough committed transactions for a stable rate estimate.
	res, err := RunOverloadExperiment(Options{Measure: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		t.Logf("%.1fx offered=%.0f/s acked=%d shed=%d expired=%d aborted=%d errs=%d goodput=%.0f/s (%.0f%% of peak %.0f)",
			p.Factor, p.Rate, p.Acked, p.Shed, p.Expired, p.Aborted, p.Errors, p.Goodput, 100*p.Goodput/res.Peak, res.Peak)
	}
	g2 := res.GoodputAt(2.0)
	if g2 == 0 {
		t.Fatal("ladder did not include the 2.0x point")
	}
	// Collapse past the knee looks like goodput at 2x falling far below
	// the ladder's own apex (without admission control it halves or
	// worse as queues absorb doomed work). The apex is the robust
	// reference: the separately-measured closed-loop peak wobbles with
	// box noise. Under the race detector the generator itself slows
	// down, so the ratio is asserted loosely there.
	apex := 0.0
	for _, p := range res.Points {
		if p.Goodput > apex {
			apex = p.Goodput
		}
	}
	// 0.7 discriminates: without admission control the 2x point halves
	// or worse (0.3-0.5x apex), while a healthy run sits at 0.95-1.0
	// and even a run under heavy noisy-neighbor CPU steal measured
	// ~0.8. Under the race detector the generator itself slows down,
	// so the ratio is asserted more loosely still.
	floor := 0.7
	if raceEnabled {
		floor = 0.5
	}
	if g2 < floor*apex {
		t.Errorf("goodput at 2x offered load = %.0f/s, below %.0f%% of ladder apex %.0f/s (closed-loop peak %.0f/s)",
			g2, 100*floor, apex, res.Peak)
	}
	var shedAt2 int
	for _, p := range res.Points {
		if p.Factor == 2.0 {
			shedAt2 = p.Shed + int(p.QueueShed)
		}
	}
	if shedAt2 == 0 {
		t.Error("no requests were shed at 2x offered load — admission control never engaged")
	}
}
