package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// --- TCP fabric ---
//
// Wire format (big-endian, both directions length-prefixed):
//
//	request:  uint32 frameLen | uint64 callID | int64 deadlineUnixNano (0 = none)
//	          | uint16 methodLen | method | payload
//	response: uint32 frameLen | uint64 callID | uint8 status | payload/error
//
// Connections are multiplexed: a connection carries any number of
// calls in flight, responses are matched to waiters by call id, so a
// slow request (a certification waiting out a batch fsync) never
// blocks the pulls and appends sharing its connection. The client
// keeps a small fixed pool of connections, reconnects lazily with
// exponential backoff, and a propagated deadline both travels to the
// server (which sheds requests already past it instead of running
// them) and bounds the local wait.

const maxFrame = 64 << 20

// Response statuses.
const (
	statusOK      byte = 0 // payload is the handler response
	statusErr     byte = 1 // payload is the handler error string
	statusExpired byte = 2 // request's propagated deadline had passed; not run
)

// reqHeaderLen is the fixed-size part of a request frame after the
// length prefix: call id + deadline + method length.
const reqHeaderLen = 8 + 8 + 2

// tcpPoolSize is how many multiplexed connections one client keeps.
const tcpPoolSize = 4

// Reconnect backoff bounds: after a failed dial the affected pool slot
// fails fast until the backoff elapses, then redials.
const (
	redialBackoffMin = 5 * time.Millisecond
	redialBackoffMax = 250 * time.Millisecond
)

// WireStats counts a client's traffic.
type WireStats struct {
	Calls    int64
	BytesOut int64 // request frames, length prefix included
	BytesIn  int64 // response frames, length prefix included
	Redials  int64 // successful re-establishments after a drop/failure
}

type tcpServer struct {
	ln     net.Listener
	h      Handler
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	delay  time.Duration
}

// ServeTCP starts a TCP server on addr (e.g. ":7001"); delay models
// one-way LAN latency per message.
func ServeTCP(addr string, h Handler, delay time.Duration) (Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &tcpServer{ln: ln, h: h, delay: delay, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *tcpServer) Addr() string { return s.ln.Addr().String() }

func (s *tcpServer) Close() error {
	s.mu.Lock()
	s.closed = true
	// Unblock connection goroutines parked reading: clients keep idle
	// pooled connections open indefinitely.
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn demultiplexes one connection: each request runs in its own
// goroutine (handlers block — a certification waits out a batch fsync
// — and must not head-of-line-block the connection), responses are
// serialized onto the shared writer.
func (s *tcpServer) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		id, deadline, method, payload, err := readRequest(r)
		if err != nil {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if deadline != 0 && time.Now().UnixNano() > deadline {
				// The caller has already stopped waiting: shed the
				// request instead of spending handler work on it.
				wmu.Lock()
				writeResponse(w, id, statusExpired, nil)
				wmu.Unlock()
				return
			}
			if s.delay > 0 {
				time.Sleep(s.delay)
			}
			resp, herr := s.h(method, payload)
			if s.delay > 0 {
				time.Sleep(s.delay)
			}
			status, body := statusOK, resp
			if herr != nil {
				status, body = statusErr, []byte(herr.Error())
			}
			wmu.Lock()
			writeResponse(w, id, status, body)
			wmu.Unlock()
		}()
	}
}

func readRequest(r *bufio.Reader) (id uint64, deadline int64, method string, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	frameLen := binary.BigEndian.Uint32(lenBuf[:])
	if frameLen < reqHeaderLen || frameLen > maxFrame {
		err = fmt.Errorf("transport: bad frame length %d", frameLen)
		return
	}
	frame := make([]byte, frameLen)
	if _, err = io.ReadFull(r, frame); err != nil {
		return
	}
	id = binary.BigEndian.Uint64(frame[:8])
	deadline = int64(binary.BigEndian.Uint64(frame[8:16]))
	mlen := int(binary.BigEndian.Uint16(frame[16:18]))
	if reqHeaderLen+mlen > len(frame) {
		err = errors.New("transport: bad method length")
		return
	}
	method = string(frame[reqHeaderLen : reqHeaderLen+mlen])
	payload = frame[reqHeaderLen+mlen:]
	return
}

func writeResponse(w *bufio.Writer, id uint64, status byte, payload []byte) error {
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(8+1+len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = status
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

type tcpClient struct {
	addr   string
	nextID atomic.Uint64 // call ids and round-robin slot selection

	mu     sync.Mutex
	conns  [tcpPoolSize]*muxConn
	closed bool
	// Reconnect backoff, shared across slots: a down server fails every
	// slot, and one cooldown clock for all of them keeps a burst of
	// callers from stampeding the dial path.
	backoff   time.Duration
	downUntil time.Time

	calls    atomic.Int64
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
	redials  atomic.Int64
}

// DialTCP returns a pooled multiplexing client for the server at addr.
// Connections are established lazily and re-established with backoff
// after failures.
func DialTCP(addr string) Client {
	return &tcpClient{addr: addr}
}

// Stats reports the client's cumulative wire traffic.
func (c *tcpClient) Stats() WireStats {
	return WireStats{
		Calls:    c.calls.Load(),
		BytesOut: c.bytesOut.Load(),
		BytesIn:  c.bytesIn.Load(),
		Redials:  c.redials.Load(),
	}
}

// muxResp is one matched response.
type muxResp struct {
	status  byte
	payload []byte
}

// muxConn is one multiplexed connection: concurrent writers share the
// socket under wmu; a single reader loop matches responses to pending
// calls by id.
type muxConn struct {
	owner *tcpClient
	slot  int
	conn  net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	pmu     sync.Mutex
	pending map[uint64]chan muxResp
	dead    bool
}

func (c *tcpClient) Call(method string, req []byte) ([]byte, error) {
	return c.CallDeadline(method, req, time.Time{})
}

// CallDeadline sends the request with a propagated deadline (zero =
// none): the server sheds it if it arrives late, and the local wait is
// abandoned with ErrDeadlineExceeded when the deadline passes.
func (c *tcpClient) CallDeadline(method string, req []byte, deadline time.Time) ([]byte, error) {
	mc, err := c.conn()
	if err != nil {
		return nil, err
	}
	c.calls.Add(1)
	resp, err := mc.roundTrip(c.nextID.Add(1), method, req, deadline)
	if err != nil && !errors.Is(err, ErrDeadlineExceeded) {
		var rerr *RemoteError
		if errors.As(err, &rerr) {
			return nil, err
		}
		// Transport-level failure: retire the connection; the next call
		// on this slot redials (with backoff if the dial also fails).
		mc.fail(err)
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return resp, err
}

// conn returns a live pooled connection, dialing one if the chosen
// slot is empty. While the reconnect backoff is cooling down, calls
// fail fast with ErrUnavailable so the caller's failover logic can try
// another node instead of queueing on a dead link.
func (c *tcpClient) conn() (*muxConn, error) {
	slot := int(c.nextID.Add(1) % tcpPoolSize)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrUnavailable
	}
	if mc := c.conns[slot]; mc != nil {
		c.mu.Unlock()
		return mc, nil
	}
	// Any live connection beats dialing a new one while another slot
	// still works.
	for _, mc := range c.conns {
		if mc != nil {
			c.mu.Unlock()
			return mc, nil
		}
	}
	if !c.downUntil.IsZero() && time.Now().Before(c.downUntil) {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (reconnect backoff)", ErrUnavailable, c.addr)
	}
	wasDown := !c.downUntil.IsZero()
	c.mu.Unlock()

	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)

	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if c.backoff == 0 {
			c.backoff = redialBackoffMin
		} else if c.backoff *= 2; c.backoff > redialBackoffMax {
			c.backoff = redialBackoffMax
		}
		c.downUntil = time.Now().Add(c.backoff)
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	if c.closed {
		conn.Close()
		return nil, ErrUnavailable
	}
	c.backoff = 0
	c.downUntil = time.Time{}
	if wasDown {
		c.redials.Add(1)
	}
	if mc := c.conns[slot]; mc != nil {
		// A concurrent caller filled the slot first; use theirs.
		conn.Close()
		return mc, nil
	}
	mc := &muxConn{owner: c, slot: slot, conn: conn,
		w: bufio.NewWriter(conn), pending: make(map[uint64]chan muxResp)}
	c.conns[slot] = mc
	go mc.readLoop()
	return mc, nil
}

// dropConn detaches a dead connection from its slot.
func (c *tcpClient) dropConn(mc *muxConn) {
	c.mu.Lock()
	if c.conns[mc.slot] == mc {
		c.conns[mc.slot] = nil
	}
	c.mu.Unlock()
}

// roundTrip issues one call on the connection and waits for its
// matched response or the deadline.
func (mc *muxConn) roundTrip(id uint64, method string, req []byte, deadline time.Time) ([]byte, error) {
	frameLen := reqHeaderLen + len(method) + len(req)
	if frameLen > maxFrame {
		return nil, errors.New("transport: request too large")
	}
	ch := make(chan muxResp, 1)
	mc.pmu.Lock()
	if mc.dead {
		mc.pmu.Unlock()
		return nil, ErrUnavailable
	}
	mc.pending[id] = ch
	mc.pmu.Unlock()

	var dl int64
	if !deadline.IsZero() {
		dl = deadline.UnixNano()
	}
	var hdr [4 + reqHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(frameLen))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	binary.BigEndian.PutUint64(hdr[12:20], uint64(dl))
	binary.BigEndian.PutUint16(hdr[20:22], uint16(len(method)))
	mc.wmu.Lock()
	_, err := mc.w.Write(hdr[:])
	if err == nil {
		_, err = mc.w.WriteString(method)
	}
	if err == nil {
		_, err = mc.w.Write(req)
	}
	if err == nil {
		err = mc.w.Flush()
	}
	mc.wmu.Unlock()
	if err != nil {
		mc.unregister(id)
		return nil, err
	}
	mc.owner.bytesOut.Add(int64(4 + frameLen))

	var resp muxResp
	var ok bool
	if deadline.IsZero() {
		resp, ok = <-ch
	} else {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		select {
		case resp, ok = <-ch:
		case <-timer.C:
			// Abandon the wait; a late response finds no pending entry
			// and is discarded by the read loop.
			mc.unregister(id)
			return nil, ErrDeadlineExceeded
		}
	}
	if !ok {
		return nil, ErrUnavailable // connection died under us
	}
	switch resp.status {
	case statusOK:
		return resp.payload, nil
	case statusExpired:
		return nil, ErrDeadlineExceeded
	default:
		return nil, &RemoteError{Msg: string(resp.payload)}
	}
}

func (mc *muxConn) unregister(id uint64) {
	mc.pmu.Lock()
	delete(mc.pending, id)
	mc.pmu.Unlock()
}

// readLoop matches response frames to pending calls until the
// connection dies, then fails every outstanding call.
func (mc *muxConn) readLoop() {
	r := bufio.NewReader(mc.conn)
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			mc.fail(err)
			return
		}
		frameLen := binary.BigEndian.Uint32(lenBuf[:])
		if frameLen < 9 || frameLen > maxFrame {
			mc.fail(fmt.Errorf("transport: bad response length %d", frameLen))
			return
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(r, frame); err != nil {
			mc.fail(err)
			return
		}
		mc.owner.bytesIn.Add(int64(4 + frameLen))
		id := binary.BigEndian.Uint64(frame[:8])
		mc.pmu.Lock()
		ch := mc.pending[id]
		delete(mc.pending, id)
		mc.pmu.Unlock()
		if ch != nil {
			ch <- muxResp{status: frame[8], payload: frame[9:]}
		}
	}
}

// fail marks the connection dead, wakes every pending call with a
// closed channel (read as ErrUnavailable), and detaches it from the
// pool so the next call redials.
func (mc *muxConn) fail(error) {
	mc.pmu.Lock()
	if mc.dead {
		mc.pmu.Unlock()
		return
	}
	mc.dead = true
	pending := mc.pending
	mc.pending = nil
	mc.pmu.Unlock()
	mc.conn.Close()
	mc.owner.dropConn(mc)
	for _, ch := range pending {
		close(ch)
	}
}

func (c *tcpClient) Close() error {
	c.mu.Lock()
	c.closed = true
	var live []*muxConn
	for i, mc := range c.conns {
		if mc != nil {
			live = append(live, mc)
			c.conns[i] = nil
		}
	}
	c.mu.Unlock()
	for _, mc := range live {
		mc.fail(ErrUnavailable)
	}
	return nil
}

// --- TCP fabric ---

// TCPFabric mirrors LocalFabric's name-based API over real localhost
// sockets: Serve listens on an ephemeral 127.0.0.1 port and registers
// the name→address binding; DialFrom resolves the name on every call,
// so dialing before the server exists (paxos peers are dialed before
// the group is up) and server restarts both work. One pooled
// multiplexing client is shared per address.
//
// The TCP fabric does not support interposers: deterministic fault
// injection stays on the in-process fabric (see internal/chaos), where
// drops, duplicates and partitions are reproducible.
type TCPFabric struct {
	delay   time.Duration
	mu      sync.Mutex
	addrs   map[string]string
	servers map[string]Server
	clients map[string]*tcpClient // keyed by address
	closed  bool
}

// NewTCPFabric returns an empty TCP fabric; delay models one-way LAN
// latency per message, applied server-side.
func NewTCPFabric(delay time.Duration) *TCPFabric {
	return &TCPFabric{
		delay:   delay,
		addrs:   make(map[string]string),
		servers: make(map[string]Server),
		clients: make(map[string]*tcpClient),
	}
}

// Serve starts a TCP server for name on an ephemeral localhost port.
// Re-serving a name (a restarted node) closes the previous listener
// and rebinds the name to the new port.
func (f *TCPFabric) Serve(name string, h Handler) Server {
	srv, err := ServeTCP("127.0.0.1:0", h, f.delay)
	if err != nil {
		// Ephemeral localhost listens only fail when the host is out of
		// ports/fds; surface it as an always-unavailable endpoint.
		return &deadServer{name: name}
	}
	f.mu.Lock()
	if old := f.servers[name]; old != nil {
		defer old.Close()
	}
	f.servers[name] = srv
	f.addrs[name] = srv.Addr()
	f.mu.Unlock()
	return srv
}

// deadServer stands in for a listener that could not be created.
type deadServer struct{ name string }

func (s *deadServer) Addr() string { return s.name }

func (s *deadServer) Close() error { return nil }

// DialFrom returns a client for the named endpoint. Resolution happens
// per call (the from identity is unused: interposers are local-only).
func (f *TCPFabric) DialFrom(from, name string) Client {
	return &fabricClient{fabric: f, name: name}
}

// lookup returns the shared pooled client for name's current address.
func (f *TCPFabric) lookup(name string) (*tcpClient, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrUnavailable
	}
	addr, ok := f.addrs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, name)
	}
	c := f.clients[addr]
	if c == nil {
		c = &tcpClient{addr: addr}
		f.clients[addr] = c
	}
	return c, nil
}

// Stats sums wire traffic across every client the fabric has handed
// out — the bytes-on-the-wire side of the codec comparison.
func (f *TCPFabric) Stats() WireStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out WireStats
	for _, c := range f.clients {
		s := c.Stats()
		out.Calls += s.Calls
		out.BytesOut += s.BytesOut
		out.BytesIn += s.BytesIn
		out.Redials += s.Redials
	}
	return out
}

// Close shuts down every server and client the fabric created.
func (f *TCPFabric) Close() {
	f.mu.Lock()
	f.closed = true
	servers := f.servers
	clients := f.clients
	f.servers = map[string]Server{}
	f.clients = map[string]*tcpClient{}
	f.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
	for _, c := range clients {
		c.Close()
	}
}

// fabricClient is a name-addressed client over a TCPFabric.
type fabricClient struct {
	fabric *TCPFabric
	name   string
}

func (c *fabricClient) Call(method string, req []byte) ([]byte, error) {
	return c.CallDeadline(method, req, time.Time{})
}

func (c *fabricClient) CallDeadline(method string, req []byte, deadline time.Time) ([]byte, error) {
	tc, err := c.fabric.lookup(c.name)
	if err != nil {
		return nil, err
	}
	return tc.CallDeadline(method, req, deadline)
}

func (c *fabricClient) Close() error { return nil }
