package transport

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// gobBufPool recycles encode buffers on the RPC hot paths (certify and
// pull rounds, AppendEntries traffic): a fresh bytes.Buffer per
// message re-grows its backing array from scratch each time.
var gobBufPool = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}

// GobEncode gob-encodes v using a pooled scratch buffer and returns an
// exactly-sized copy (the result escapes to the fabric, so it cannot
// alias the pooled buffer).
func GobEncode(v interface{}) ([]byte, error) {
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		gobBufPool.Put(buf)
		return nil, err
	}
	out := append([]byte(nil), buf.Bytes()...)
	gobBufPool.Put(buf)
	return out, nil
}

// GobDecode decodes a GobEncode payload into v.
func GobDecode(b []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
