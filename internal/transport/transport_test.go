package transport

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoHandler(method string, req []byte) ([]byte, error) {
	if method == "fail" {
		return nil, fmt.Errorf("boom: %s", req)
	}
	return append([]byte(method+":"), req...), nil
}

func TestLocalFabricRoundTrip(t *testing.T) {
	f := NewLocalFabric(0)
	srv := f.Serve("node1", echoHandler)
	defer srv.Close()
	c := f.Dial("node1")
	defer c.Close()
	resp, err := c.Call("ping", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping:hello" {
		t.Errorf("resp = %q", resp)
	}
}

func TestLocalFabricRemoteError(t *testing.T) {
	f := NewLocalFabric(0)
	defer f.Serve("n", echoHandler).Close()
	c := f.Dial("n")
	_, err := c.Call("fail", []byte("x"))
	var rerr *RemoteError
	if !errors.As(err, &rerr) || !strings.Contains(rerr.Msg, "boom: x") {
		t.Errorf("err = %v, want RemoteError with boom", err)
	}
}

func TestLocalFabricUnavailable(t *testing.T) {
	f := NewLocalFabric(0)
	c := f.Dial("ghost")
	if _, err := c.Call("m", nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("err = %v, want ErrUnavailable", err)
	}
	srv := f.Serve("ghost", echoHandler)
	if _, err := c.Call("m", nil); err != nil {
		t.Errorf("call after late registration: %v", err)
	}
	srv.Close()
	if _, err := c.Call("m", nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("call after close: %v, want ErrUnavailable", err)
	}
}

func TestLocalFabricRestartReplacesHandler(t *testing.T) {
	f := NewLocalFabric(0)
	f.Serve("n", func(string, []byte) ([]byte, error) { return []byte("v1"), nil })
	c := f.Dial("n")
	f.Serve("n", func(string, []byte) ([]byte, error) { return []byte("v2"), nil })
	resp, err := c.Call("m", nil)
	if err != nil || string(resp) != "v2" {
		t.Errorf("resp = %q, %v; want v2 (client follows restart)", resp, err)
	}
}

func TestLocalFabricDelay(t *testing.T) {
	f := NewLocalFabric(5 * time.Millisecond)
	defer f.Serve("n", echoHandler).Close()
	c := f.Dial("n")
	start := time.Now()
	if _, err := c.Call("m", nil); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 10*time.Millisecond {
		t.Errorf("round trip %v, want >= 10ms (two one-way delays)", got)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := DialTCP(srv.Addr())
	defer c.Close()
	for i := 0; i < 5; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, i*100)
		resp, err := c.Call("m", payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, append([]byte("m:"), payload...)) {
			t.Fatalf("call %d response mismatch", i)
		}
	}
}

func TestTCPRemoteError(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := DialTCP(srv.Addr())
	defer c.Close()
	_, err = c.Call("fail", []byte("y"))
	var rerr *RemoteError
	if !errors.As(err, &rerr) || !strings.Contains(rerr.Msg, "boom: y") {
		t.Errorf("err = %v", err)
	}
	// Connection remains usable semantics: a fresh call succeeds.
	if _, err := c.Call("ok", nil); err != nil {
		t.Errorf("call after remote error: %v", err)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(m string, req []byte) ([]byte, error) {
		time.Sleep(10 * time.Millisecond)
		return req, nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := DialTCP(srv.Addr())
	defer c.Close()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Call("m", []byte{byte(i)})
			if err != nil || len(resp) != 1 || resp[0] != byte(i) {
				t.Errorf("call %d: %v %v", i, resp, err)
			}
		}()
	}
	wg.Wait()
	// Multiplexed connections should give real concurrency: 16 calls of
	// 10ms each must take far less than the serialized 160ms. The bound
	// leaves room for coarse sleep granularity on slow CI machines.
	if got := time.Since(start); got > 80*time.Millisecond {
		t.Errorf("16 concurrent calls took %v; pool not concurrent", got)
	}
}

func TestTCPServerClose(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c := DialTCP(addr)
	if _, err := c.Call("m", nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	c2 := DialTCP(addr)
	if _, err := c2.Call("m", nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("call to closed server: %v, want ErrUnavailable", err)
	}
	c.Close()
	c2.Close()
}

func TestTCPClientCloseRejectsCalls(t *testing.T) {
	srv, _ := ServeTCP("127.0.0.1:0", echoHandler, 0)
	defer srv.Close()
	c := DialTCP(srv.Addr())
	c.Close()
	if _, err := c.Call("m", nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("call on closed client: %v", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	srv, _ := ServeTCP("127.0.0.1:0", echoHandler, 0)
	defer srv.Close()
	c := DialTCP(srv.Addr())
	defer c.Close()
	big := bytes.Repeat([]byte("x"), 1<<20)
	resp, err := c.Call("m", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != len(big)+2 {
		t.Errorf("response length %d", len(resp))
	}
}
