package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestTCPMidMessageDrop kills the server-side connection while calls
// are in flight: every outstanding call must fail with ErrUnavailable,
// none may hang.
func TestTCPMidMessageDrop(t *testing.T) {
	started := make(chan struct{}, 64)
	block := make(chan struct{})
	srv, err := ServeTCP("127.0.0.1:0", func(m string, req []byte) ([]byte, error) {
		started <- struct{}{}
		<-block
		return req, nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := DialTCP(srv.Addr())
	defer c.Close()

	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Call("m", []byte("x"))
			errs <- err
		}()
	}
	// Wait until all calls are executing server-side, then drop every
	// connection out from under them.
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("handlers did not start")
		}
	}
	// Close kills the connections immediately but waits for in-flight
	// handlers, which are parked on block — run it concurrently.
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrUnavailable) {
				t.Errorf("call %d: err = %v, want ErrUnavailable", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("call hung after connection drop")
		}
	}
	close(block)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close hung after handlers released")
	}
}

// TestTCPReconnectAfterDrop drops the transport mid-stream via a
// byte-mangling proxy (simulating a partial write), then verifies the
// same client reconnects and resumes.
func TestTCPReconnectAfterDrop(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Proxy that forwards bytes until told to cut, then kills both
	// directions mid-stream.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var pmu sync.Mutex
	var proxied []net.Conn
	cut := func() {
		pmu.Lock()
		for _, c := range proxied {
			c.Close()
		}
		proxied = nil
		pmu.Unlock()
	}
	go func() {
		for {
			in, err := ln.Accept()
			if err != nil {
				return
			}
			out, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				in.Close()
				return
			}
			pmu.Lock()
			proxied = append(proxied, in, out)
			pmu.Unlock()
			go io.Copy(out, in)
			go io.Copy(in, out)
		}
	}()

	c := DialTCP(ln.Addr().String())
	defer c.Close()
	if _, err := c.Call("m", []byte("before")); err != nil {
		t.Fatalf("call before cut: %v", err)
	}
	cut()
	// The next call(s) may observe the dead connection; the client must
	// recover by redialing within the backoff budget.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Call("m", []byte("after"))
		if err == nil {
			if string(resp) != "m:after" {
				t.Fatalf("resp = %q after reconnect", resp)
			}
			break
		}
		if !errors.Is(err, ErrUnavailable) {
			t.Fatalf("unexpected error during reconnect: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected")
		}
		time.Sleep(time.Millisecond)
	}
	if s := c.(*tcpClient).Stats(); s.Redials == 0 && s.Calls == 0 {
		t.Errorf("stats not tracked: %+v", s)
	}
}

// TestTCPDeadlineExpiryMidRPC starts a call whose handler outlives the
// propagated deadline: the caller must get ErrDeadlineExceeded
// promptly, and the connection must remain usable for later calls.
func TestTCPDeadlineExpiryMidRPC(t *testing.T) {
	release := make(chan struct{})
	srv, err := ServeTCP("127.0.0.1:0", func(m string, req []byte) ([]byte, error) {
		if m == "slow" {
			<-release
		}
		return req, nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := DialTCP(srv.Addr()).(*tcpClient)
	defer c.Close()

	start := time.Now()
	_, err = c.CallDeadline("slow", []byte("x"), time.Now().Add(20*time.Millisecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("deadline expiry took %v; should return promptly", took)
	}
	close(release)
	// The abandoned call's late response must not poison the stream: a
	// fresh call on the same pooled connection succeeds.
	if _, err := c.Call("fast", []byte("y")); err != nil {
		t.Errorf("call after abandoned RPC: %v", err)
	}
}

// TestTCPServerShedsExpiredRequests verifies the server answers a
// request whose propagated deadline already passed with
// status=expired instead of running the handler.
func TestTCPServerShedsExpiredRequests(t *testing.T) {
	var ran sync.Map
	srv, err := ServeTCP("127.0.0.1:0", func(m string, req []byte) ([]byte, error) {
		ran.Store(m, true)
		return req, nil
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := DialTCP(srv.Addr()).(*tcpClient)
	defer c.Close()
	// Warm the connection, then hand-roll a frame carrying a deadline
	// in the past (CallDeadline would refuse to wait at all).
	if _, err := c.Call("warm", nil); err != nil {
		t.Fatal(err)
	}
	mc, err := c.conn()
	if err != nil {
		t.Fatal(err)
	}
	_, err = mc.roundTrip(999999, "expired-method", []byte("p"), time.Now().Add(-time.Second))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	// Give a shed-vs-run race a moment to settle, then check the
	// handler never saw the expired method.
	time.Sleep(50 * time.Millisecond)
	if _, ok := ran.Load("expired-method"); ok {
		t.Error("server ran a handler for an already-expired request")
	}
}

// TestTCPRedialBackoffFailsFast verifies that while the server is
// down, calls fail fast (no dial timeout per call) and that the client
// recovers once the address listens again.
func TestTCPRedialBackoffFailsFast(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c := DialTCP(addr).(*tcpClient)
	defer c.Close()
	if _, err := c.Call("m", nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	// Burn through the dead connection, then the first failed dial.
	for i := 0; i < 4; i++ {
		c.Call("m", nil)
	}
	// In the backoff window, calls must return quickly.
	start := time.Now()
	_, err = c.Call("m", nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Errorf("call during backoff took %v, want fail-fast", took)
	}

	// Restart on the same port and verify recovery within the backoff cap.
	srv2, err := ServeTCP(addr, echoHandler, 0)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	defer srv2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Call("m", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after server restart")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPGarbageFrame feeds the server a malformed frame and verifies
// it drops the connection rather than crashing or hanging, and that a
// well-formed client still works afterwards.
func TestTCPGarbageFrame(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// frameLen beyond maxFrame: server must hang up.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	raw.Write(hdr[:])
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Error("server kept a connection with an oversized frame open")
	}
	raw.Close()

	c := DialTCP(srv.Addr())
	defer c.Close()
	if resp, err := c.Call("ok", []byte("z")); err != nil || !bytes.Equal(resp, []byte("ok:z")) {
		t.Errorf("well-formed call after garbage: %q, %v", resp, err)
	}
}

// TestTCPFabricServeDialRestart exercises the name-addressed fabric:
// dial-before-serve, restart rebinding to a new port, Close teardown.
func TestTCPFabricServeDialRestart(t *testing.T) {
	f := NewTCPFabric(0)
	defer f.Close()

	c := f.DialFrom("r0", "cert0")
	if _, err := c.Call("m", nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dial-before-serve: err = %v, want ErrUnavailable", err)
	}
	f.Serve("cert0", func(string, []byte) ([]byte, error) { return []byte("v1"), nil })
	if resp, err := c.Call("m", nil); err != nil || string(resp) != "v1" {
		t.Fatalf("after serve: %q, %v", resp, err)
	}
	// Restart under the same name: the old listener closes, the client
	// follows the name to the new port.
	f.Serve("cert0", func(string, []byte) ([]byte, error) { return []byte("v2"), nil })
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := c.Call("m", nil)
		if err == nil && string(resp) == "v2" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never reached restarted server: %q, %v", resp, err)
		}
		time.Sleep(time.Millisecond)
	}
	if s := f.Stats(); s.Calls == 0 || s.BytesOut == 0 || s.BytesIn == 0 {
		t.Errorf("fabric stats empty: %+v", s)
	}
	f.Close()
	if _, err := c.Call("m", nil); !errors.Is(err, ErrUnavailable) {
		t.Errorf("call after fabric close: %v, want ErrUnavailable", err)
	}
}

// TestTCPDeadlinePropagation checks CallWithDeadline reaches the TCP
// client's deadline path and that LocalFabric clients (no
// DeadlineCaller) still work through the shim.
func TestTCPDeadlinePropagation(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoHandler, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := DialTCP(srv.Addr())
	defer c.Close()
	if resp, err := CallWithDeadline(c, "m", []byte("a"), time.Now().Add(time.Second)); err != nil || string(resp) != "m:a" {
		t.Errorf("CallWithDeadline over TCP: %q, %v", resp, err)
	}

	lf := NewLocalFabric(0)
	defer lf.Serve("n", echoHandler).Close()
	lc := lf.Dial("n")
	if resp, err := CallWithDeadline(lc, "m", []byte("b"), time.Now().Add(time.Second)); err != nil || string(resp) != "m:b" {
		t.Errorf("CallWithDeadline over local fabric: %q, %v", resp, err)
	}
}
