package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
)

// Message codec: every RPC payload starts with a one-byte codec tag.
// Hot message types (certify/pull requests and responses, paxos
// append/fetch) implement BinaryMessage and take a hand-written
// length-prefixed binary fast path; everything else (votes, the 2PC
// prepare/resolve/fill control messages) falls back to gob. Gob starts
// every message with a full type descriptor — tens of bytes of field
// names per message — which the wire sweep showed dominating
// bytes/writeset on the certify path.

// Codec tags.
const (
	codecGob    byte = 0x00
	codecBinary byte = 0x01
)

// BinaryMessage is implemented by message types with a hand-written
// binary wire form. AppendBinary appends the encoding to buf (which
// may be pooled scratch — implementations must only append).
// DecodeBinary parses data; it may retain subslices of data, so
// callers must not reuse the buffer afterwards.
type BinaryMessage interface {
	AppendBinary(buf []byte) []byte
	DecodeBinary(data []byte) error
}

// binBufPool recycles binary-encode scratch. Encoded messages are
// copied out exactly sized before release: the result escapes into the
// fabric, where a handler may retain it past the call.
var binBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 4096)
	return &b
}}

// EncodeMessage encodes v for the wire: the binary fast path when v
// implements BinaryMessage, tagged gob otherwise. The result is a
// fresh allocation, safe to retain.
func EncodeMessage(v interface{}) ([]byte, error) {
	if bm, ok := v.(BinaryMessage); ok {
		bp := binBufPool.Get().(*[]byte)
		scratch := append((*bp)[:0], codecBinary)
		scratch = bm.AppendBinary(scratch)
		out := make([]byte, len(scratch))
		copy(out, scratch)
		if cap(scratch) <= 1<<20 { // don't let one huge message pin pool memory
			*bp = scratch[:0]
			binBufPool.Put(bp)
		}
		return out, nil
	}
	buf := gobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteByte(codecGob)
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		gobBufPool.Put(buf)
		return nil, err
	}
	out := append([]byte(nil), buf.Bytes()...)
	gobBufPool.Put(buf)
	return out, nil
}

// DecodeMessage decodes an EncodeMessage payload into v. The binary
// path may retain subslices of b.
func DecodeMessage(b []byte, v interface{}) error {
	if len(b) == 0 {
		return errors.New("transport: empty message")
	}
	switch b[0] {
	case codecBinary:
		bm, ok := v.(BinaryMessage)
		if !ok {
			return fmt.Errorf("transport: binary payload for non-binary type %T", v)
		}
		return bm.DecodeBinary(b[1:])
	case codecGob:
		return GobDecode(b[1:], v)
	default:
		return fmt.Errorf("transport: unknown codec tag 0x%02x", b[0])
	}
}
