// Package transport provides the message transport connecting replica
// proxies to the certifier group: a minimal request/response RPC with
// two interchangeable fabrics — an in-process fabric for single-binary
// experiments (the benchmark harness runs 15 replicas plus 3
// certifiers in one process) and a TCP fabric for running components
// as separate daemons (cmd/tashd, cmd/certd).
//
// The fabric can inject a per-message latency to model the paper's
// switched 1 Gbps LAN.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Handler processes one request addressed to a method and returns the
// response payload. Handlers must be safe for concurrent use.
type Handler func(method string, req []byte) ([]byte, error)

// Client issues requests to one server.
type Client interface {
	// Call sends req to the named method and returns the response.
	Call(method string, req []byte) ([]byte, error)
	// Close releases the client's connections.
	Close() error
}

// Server accepts requests until closed.
type Server interface {
	// Addr returns the listen address (the registered name for the
	// in-process fabric).
	Addr() string
	// Close stops the server.
	Close() error
}

// ErrUnavailable reports that the remote endpoint cannot be reached or
// has shut down. Callers treat it as a node failure.
var ErrUnavailable = errors.New("transport: endpoint unavailable")

// Interposer intercepts every in-process call for fault injection
// (internal/chaos). deliver performs the real round trip; an
// interposer may call it zero times (dropped request / cut link), once
// (normal, possibly after a delay), or several times (duplicated
// message — the extra responses are discarded by the interposer).
// Implementations must be safe for concurrent use.
type Interposer interface {
	Call(from, to, method string, req []byte, deliver func() ([]byte, error)) ([]byte, error)
}

// RemoteError carries an application-level error string returned by a
// handler across the wire.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "transport: remote error: " + e.Msg }

// --- In-process fabric ---

// LocalFabric is an in-process name-to-handler switchboard with
// optional injected latency per message direction.
type LocalFabric struct {
	mu      sync.RWMutex
	servers map[string]*localServer
	interp  Interposer
	// Delay is applied once per request and once per response,
	// modelling one-way LAN latency.
	Delay time.Duration
}

// NewLocalFabric returns an empty fabric.
func NewLocalFabric(delay time.Duration) *LocalFabric {
	return &LocalFabric{servers: make(map[string]*localServer), Delay: delay}
}

type localServer struct {
	fabric *LocalFabric
	name   string
	h      Handler
	mu     sync.Mutex
	closed bool
}

func (s *localServer) Addr() string { return s.name }

func (s *localServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.fabric.mu.Lock()
	if s.fabric.servers[s.name] == s {
		delete(s.fabric.servers, s.name)
	}
	s.fabric.mu.Unlock()
	return nil
}

// Serve registers a handler under name. Registering a name twice
// replaces the previous registration (a restarted node).
func (f *LocalFabric) Serve(name string, h Handler) Server {
	s := &localServer{fabric: f, name: name, h: h}
	f.mu.Lock()
	f.servers[name] = s
	f.mu.Unlock()
	return s
}

type localClient struct {
	fabric *LocalFabric
	from   string
	name   string
}

// Dial returns a client for the named endpoint. Resolution happens per
// call, so a client survives server restarts.
func (f *LocalFabric) Dial(name string) Client {
	return &localClient{fabric: f, name: name}
}

// DialFrom is Dial with a caller identity attached, so an installed
// Interposer sees which link (from → to) each message travels —
// required for asymmetric partitions.
func (f *LocalFabric) DialFrom(from, name string) Client {
	return &localClient{fabric: f, from: from, name: name}
}

// SetInterposer installs (or, with nil, removes) the fault-injection
// interposer consulted on every call.
func (f *LocalFabric) SetInterposer(ip Interposer) {
	f.mu.Lock()
	f.interp = ip
	f.mu.Unlock()
}

func (c *localClient) Call(method string, req []byte) ([]byte, error) {
	c.fabric.mu.RLock()
	interp := c.fabric.interp
	c.fabric.mu.RUnlock()
	if interp == nil {
		return c.deliver(method, req)
	}
	return interp.Call(c.from, c.name, method, req, func() ([]byte, error) {
		return c.deliver(method, req)
	})
}

// deliver performs the real round trip. Server resolution happens per
// invocation, so a duplicated delivery after a restart reaches the new
// registration.
func (c *localClient) deliver(method string, req []byte) ([]byte, error) {
	c.fabric.mu.RLock()
	s := c.fabric.servers[c.name]
	delay := c.fabric.Delay
	c.fabric.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, c.name)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, c.name)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	resp, err := s.h(method, req)
	if err != nil {
		return nil, &RemoteError{Msg: err.Error()}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return resp, nil
}

func (c *localClient) Close() error { return nil }

// --- TCP fabric ---
//
// Wire format, both directions length-prefixed:
//
//	request:  uint32 frameLen | uint16 methodLen | method | payload
//	response: uint32 frameLen | uint8 status (0 ok, 1 err) | payload/error
//
// Each connection carries one request at a time; the client keeps a
// small pool so concurrent callers get concurrent connections.

const maxFrame = 64 << 20

type tcpServer struct {
	ln     net.Listener
	h      Handler
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	delay  time.Duration
}

// ServeTCP starts a TCP server on addr (e.g. ":7001"); delay models
// one-way LAN latency per message.
func ServeTCP(addr string, h Handler, delay time.Duration) (Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &tcpServer{ln: ln, h: h, delay: delay, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *tcpServer) Addr() string { return s.ln.Addr().String() }

func (s *tcpServer) Close() error {
	s.mu.Lock()
	s.closed = true
	// Unblock connection goroutines parked in readRequest: clients
	// keep idle pooled connections open indefinitely.
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *tcpServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *tcpServer) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		method, payload, err := readRequest(r)
		if err != nil {
			return
		}
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		resp, herr := s.h(method, payload)
		if s.delay > 0 {
			time.Sleep(s.delay)
		}
		if err := writeResponse(w, resp, herr); err != nil {
			return
		}
	}
}

func readRequest(r *bufio.Reader) (string, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	frameLen := binary.BigEndian.Uint32(lenBuf[:])
	if frameLen < 2 || frameLen > maxFrame {
		return "", nil, fmt.Errorf("transport: bad frame length %d", frameLen)
	}
	frame := make([]byte, frameLen)
	if _, err := io.ReadFull(r, frame); err != nil {
		return "", nil, err
	}
	mlen := int(binary.BigEndian.Uint16(frame[:2]))
	if 2+mlen > len(frame) {
		return "", nil, errors.New("transport: bad method length")
	}
	return string(frame[2 : 2+mlen]), frame[2+mlen:], nil
}

func writeResponse(w *bufio.Writer, resp []byte, herr error) error {
	var status byte
	payload := resp
	if herr != nil {
		status = 1
		payload = []byte(herr.Error())
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(1+len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if err := w.WriteByte(status); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

type tcpClient struct {
	addr   string
	mu     sync.Mutex
	idle   []*tcpConn
	closed bool
}

type tcpConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialTCP returns a pooled client for the server at addr.
func DialTCP(addr string) Client {
	return &tcpClient{addr: addr}
}

func (c *tcpClient) get() (*tcpConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrUnavailable
	}
	if n := len(c.idle); n > 0 {
		tc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return tc, nil
	}
	c.mu.Unlock()
	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return &tcpConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

func (c *tcpClient) put(tc *tcpConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= 32 {
		tc.conn.Close()
		return
	}
	c.idle = append(c.idle, tc)
}

func (c *tcpClient) Call(method string, req []byte) ([]byte, error) {
	tc, err := c.get()
	if err != nil {
		return nil, err
	}
	resp, err := tc.roundTrip(method, req)
	if err != nil {
		tc.conn.Close()
		var rerr *RemoteError
		if errors.As(err, &rerr) {
			// Remote errors are application-level; the conn is fine,
			// but simpler to drop it than to track half-states.
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	c.put(tc)
	return resp, nil
}

func (tc *tcpConn) roundTrip(method string, req []byte) ([]byte, error) {
	frameLen := 2 + len(method) + len(req)
	if frameLen > maxFrame {
		return nil, errors.New("transport: request too large")
	}
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(frameLen))
	binary.BigEndian.PutUint16(hdr[4:6], uint16(len(method)))
	if _, err := tc.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := tc.w.WriteString(method); err != nil {
		return nil, err
	}
	if _, err := tc.w.Write(req); err != nil {
		return nil, err
	}
	if err := tc.w.Flush(); err != nil {
		return nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(tc.r, lenBuf[:]); err != nil {
		return nil, err
	}
	respLen := binary.BigEndian.Uint32(lenBuf[:])
	if respLen < 1 || respLen > maxFrame {
		return nil, fmt.Errorf("transport: bad response length %d", respLen)
	}
	frame := make([]byte, respLen)
	if _, err := io.ReadFull(tc.r, frame); err != nil {
		return nil, err
	}
	if frame[0] == 1 {
		return nil, &RemoteError{Msg: string(frame[1:])}
	}
	return frame[1:], nil
}

func (c *tcpClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, tc := range c.idle {
		tc.conn.Close()
	}
	c.idle = nil
	return nil
}
