// Package transport provides the message transport connecting replica
// proxies to the certifier group: a minimal request/response RPC with
// two interchangeable fabrics — an in-process fabric for single-binary
// experiments (the benchmark harness runs 15 replicas plus 3
// certifiers in one process) and a TCP fabric for running components
// as separate daemons (cmd/tashd, cmd/certd).
//
// The fabric can inject a per-message latency to model the paper's
// switched 1 Gbps LAN.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Handler processes one request addressed to a method and returns the
// response payload. Handlers must be safe for concurrent use.
type Handler func(method string, req []byte) ([]byte, error)

// Client issues requests to one server.
type Client interface {
	// Call sends req to the named method and returns the response.
	Call(method string, req []byte) ([]byte, error)
	// Close releases the client's connections.
	Close() error
}

// DeadlineCaller is implemented by clients that can propagate a caller
// deadline to the remote end and abandon the wait locally once it
// passes. Callers holding a context deadline should prefer it over
// Call so a dead client's request does not occupy a server slot.
type DeadlineCaller interface {
	CallDeadline(method string, req []byte, deadline time.Time) ([]byte, error)
}

// CallWithDeadline issues a call through c, propagating deadline when
// the client supports it (zero deadline means none).
func CallWithDeadline(c Client, method string, req []byte, deadline time.Time) ([]byte, error) {
	if dc, ok := c.(DeadlineCaller); ok {
		return dc.CallDeadline(method, req, deadline)
	}
	return c.Call(method, req)
}

// Server accepts requests until closed.
type Server interface {
	// Addr returns the listen address (the registered name for the
	// in-process fabric).
	Addr() string
	// Close stops the server.
	Close() error
}

// ErrUnavailable reports that the remote endpoint cannot be reached or
// has shut down. Callers treat it as a node failure.
var ErrUnavailable = errors.New("transport: endpoint unavailable")

// ErrDeadlineExceeded reports that a call's propagated deadline passed
// before the response arrived. The request may still execute on the
// server; the client has stopped waiting.
var ErrDeadlineExceeded = errors.New("transport: call deadline exceeded")

// Interposer intercepts every in-process call for fault injection
// (internal/chaos). deliver performs the real round trip; an
// interposer may call it zero times (dropped request / cut link), once
// (normal, possibly after a delay), or several times (duplicated
// message — the extra responses are discarded by the interposer).
// Implementations must be safe for concurrent use.
type Interposer interface {
	Call(from, to, method string, req []byte, deliver func() ([]byte, error)) ([]byte, error)
}

// RemoteError carries an application-level error string returned by a
// handler across the wire.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "transport: remote error: " + e.Msg }

// Fabric is the backend-neutral view of a message fabric: named
// endpoints serving handlers, clients addressing them by name. The
// in-process LocalFabric and the TCPFabric both implement it, which is
// how cluster.Config selects the wire.
type Fabric interface {
	Serve(name string, h Handler) Server
	DialFrom(from, name string) Client
}

// --- In-process fabric ---

// LocalFabric is an in-process name-to-handler switchboard with
// optional injected latency per message direction.
type LocalFabric struct {
	mu      sync.RWMutex
	servers map[string]*localServer
	interp  Interposer
	// Delay is applied once per request and once per response,
	// modelling one-way LAN latency.
	Delay time.Duration
}

// NewLocalFabric returns an empty fabric.
func NewLocalFabric(delay time.Duration) *LocalFabric {
	return &LocalFabric{servers: make(map[string]*localServer), Delay: delay}
}

type localServer struct {
	fabric *LocalFabric
	name   string
	h      Handler
	mu     sync.Mutex
	closed bool
}

func (s *localServer) Addr() string { return s.name }

func (s *localServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.fabric.mu.Lock()
	if s.fabric.servers[s.name] == s {
		delete(s.fabric.servers, s.name)
	}
	s.fabric.mu.Unlock()
	return nil
}

// Serve registers a handler under name. Registering a name twice
// replaces the previous registration (a restarted node).
func (f *LocalFabric) Serve(name string, h Handler) Server {
	s := &localServer{fabric: f, name: name, h: h}
	f.mu.Lock()
	f.servers[name] = s
	f.mu.Unlock()
	return s
}

type localClient struct {
	fabric *LocalFabric
	from   string
	name   string
}

// Dial returns a client for the named endpoint. Resolution happens per
// call, so a client survives server restarts.
func (f *LocalFabric) Dial(name string) Client {
	return &localClient{fabric: f, name: name}
}

// DialFrom is Dial with a caller identity attached, so an installed
// Interposer sees which link (from → to) each message travels —
// required for asymmetric partitions.
func (f *LocalFabric) DialFrom(from, name string) Client {
	return &localClient{fabric: f, from: from, name: name}
}

// SetInterposer installs (or, with nil, removes) the fault-injection
// interposer consulted on every call.
func (f *LocalFabric) SetInterposer(ip Interposer) {
	f.mu.Lock()
	f.interp = ip
	f.mu.Unlock()
}

func (c *localClient) Call(method string, req []byte) ([]byte, error) {
	c.fabric.mu.RLock()
	interp := c.fabric.interp
	c.fabric.mu.RUnlock()
	if interp == nil {
		return c.deliver(method, req)
	}
	return interp.Call(c.from, c.name, method, req, func() ([]byte, error) {
		return c.deliver(method, req)
	})
}

// deliver performs the real round trip. Server resolution happens per
// invocation, so a duplicated delivery after a restart reaches the new
// registration.
func (c *localClient) deliver(method string, req []byte) ([]byte, error) {
	c.fabric.mu.RLock()
	s := c.fabric.servers[c.name]
	delay := c.fabric.Delay
	c.fabric.mu.RUnlock()
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, c.name)
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, c.name)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	resp, err := s.h(method, req)
	if err != nil {
		return nil, &RemoteError{Msg: err.Error()}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return resp, nil
}

func (c *localClient) Close() error { return nil }
