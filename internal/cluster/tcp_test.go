package cluster

import (
	"fmt"
	"testing"
	"time"

	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
)

// TestClusterTCPTransport runs the full replicated system with every
// replica↔certifier and certifier↔certifier link over real localhost
// sockets: update-heavy traffic from every replica, convergence to
// identical fingerprints, wire stats accounted.
func TestClusterTCPTransport(t *testing.T) {
	c := newTestCluster(t, proxy.TashkentMW, 3, func(cfg *Config) {
		cfg.Transport = "tcp"
	})
	if c.Fabric() != nil {
		t.Fatal("TCP cluster exposes a local fabric; chaos would silently no-op")
	}
	for i := 0; i < 30; i++ {
		rep := i % 3
		if err := clusterCommit(t, c, rep, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("commit %d on replica %d over TCP: %v", i, rep, err)
		}
	}
	if err := c.ConvergeAll(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Fatalf("replica %d diverged over TCP: fingerprints %v", i, fps)
		}
	}
	for rep := 0; rep < 3; rep++ {
		tx, _ := c.Begin(rep)
		for i := 0; i < 30; i++ {
			v, ok, err := tx.ReadCol("t", fmt.Sprintf("k%d", i), "v")
			if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Errorf("replica %d k%d = %q %v %v", rep, i, v, ok, err)
			}
		}
		tx.Abort()
	}
	s := c.WireStats()
	if s.Calls == 0 || s.BytesOut == 0 || s.BytesIn == 0 {
		t.Errorf("no wire traffic accounted: %+v", s)
	}
	t.Logf("wire: %d calls, %d B out, %d B in, %d redials", s.Calls, s.BytesOut, s.BytesIn, s.Redials)
}

// TestClusterTCPPartitioned runs the partitioned (multi-group) system
// over sockets — the consistent-hash routing, cross-partition 2PC and
// the deterministic merge all crossing a real wire.
func TestClusterTCPPartitioned(t *testing.T) {
	c := newTestCluster(t, proxy.TashkentMW, 2, func(cfg *Config) {
		cfg.Transport = "tcp"
		cfg.Partitions = 2
	})
	for i := 0; i < 20; i++ {
		rep := i % 2
		if err := clusterCommit(t, c, rep, fmt.Sprintf("pk%d", i), fmt.Sprintf("pv%d", i)); err != nil {
			t.Fatalf("commit %d on replica %d: %v", i, rep, err)
		}
	}
	if err := c.ConvergeAll(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Fatalf("replica %d diverged: fingerprints %v", i, fps)
		}
	}
}

// TestClusterTCPCertifierCrashFailover crashes the TCP cluster's
// leader certifier and verifies commits keep flowing after failover —
// the reconnect/redial path exercised end to end.
func TestClusterTCPCertifierCrashFailover(t *testing.T) {
	c := newTestCluster(t, proxy.TashkentMW, 2, func(cfg *Config) {
		cfg.Transport = "tcp"
		cfg.CertTimeout = 5 * time.Second
	})
	if err := clusterCommit(t, c, 0, "before", "x"); err != nil {
		t.Fatal(err)
	}
	leader := c.CertLeaderIndex()
	if leader < 0 {
		t.Fatal("no leader")
	}
	img := c.CrashCertifier(leader)
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := clusterCommit(t, c, 1, "after", "y")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no commit after leader crash: %v", err)
		}
	}
	if err := c.RecoverCertifier(leader, img); err != nil {
		t.Fatal(err)
	}
	if err := clusterCommit(t, c, 0, "recovered", "z"); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
	if err := c.ConvergeAll(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	if fps[0] != fps[1] {
		t.Fatalf("divergence after crash/recover over TCP: %v", fps)
	}
}

// TestClusterUnknownTransport rejects a bad backend name.
func TestClusterUnknownTransport(t *testing.T) {
	_, err := New(Config{Mode: proxy.TashkentMW, Replicas: 1,
		IOProfile: simdisk.Instant(), Transport: "carrier-pigeon"})
	if err == nil {
		t.Fatal("unknown transport accepted")
	}
}
