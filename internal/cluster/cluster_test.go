package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tashkent/internal/chaos"
	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
)

func newTestCluster(t *testing.T, mode proxy.Mode, replicas int, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Mode:               mode,
		Replicas:           replicas,
		Certifiers:         3,
		IOProfile:          simdisk.Instant(),
		LocalCertification: true,
		EagerPreCert:       true,
		LockTimeout:        time.Second,
		OrderTimeout:       2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func clusterCommit(t *testing.T, c *Cluster, rep int, key, val string) error {
	t.Helper()
	tx, err := c.Begin(rep)
	if err != nil {
		return err
	}
	if err := tx.Update("t", key, map[string][]byte{"v": []byte(val)}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func TestClusterEndToEnd(t *testing.T) {
	for _, mode := range []proxy.Mode{proxy.Base, proxy.TashkentMW, proxy.TashkentAPI} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCluster(t, mode, 3, nil)
			for i := 0; i < 6; i++ {
				rep := i % 3
				if err := clusterCommit(t, c, rep, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
					t.Fatalf("commit %d on replica %d: %v", i, rep, err)
				}
			}
			if err := c.ConvergeAll(5 * time.Second); err != nil {
				t.Fatal(err)
			}
			fps := c.Fingerprints()
			for i := 1; i < len(fps); i++ {
				if fps[i] != fps[0] {
					t.Fatalf("replica %d diverged: fingerprints %v", i, fps)
				}
			}
			// All six values visible everywhere.
			for rep := 0; rep < 3; rep++ {
				tx, _ := c.Begin(rep)
				for i := 0; i < 6; i++ {
					v, ok, err := tx.ReadCol("t", fmt.Sprintf("k%d", i), "v")
					if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
						t.Errorf("replica %d k%d = %q %v %v", rep, i, v, ok, err)
					}
				}
				tx.Abort()
			}
		})
	}
}

func TestClusterInvalidMode(t *testing.T) {
	if _, err := New(Config{Mode: 0, Replicas: 1, IOProfile: simdisk.Instant()}); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestReplicaCrashRecoveryBase(t *testing.T) {
	c := newTestCluster(t, proxy.Base, 2, nil)
	for i := 0; i < 5; i++ {
		if err := clusterCommit(t, c, 0, fmt.Sprintf("k%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashReplica(0)
	if _, err := c.Begin(0); !errors.Is(err, ErrReplicaCrashed(err)) && err == nil {
		t.Error("Begin on crashed replica succeeded")
	}
	// The survivor keeps the system available.
	if err := clusterCommit(t, c, 1, "during-outage", "y"); err != nil {
		t.Fatalf("commit during outage: %v", err)
	}
	rep, err := c.RecoverReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedDump {
		t.Error("Base recovery used a dump")
	}
	if rep.WALRecords == 0 {
		t.Error("Base recovery replayed no WAL records")
	}
	if err := c.ConvergeAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	if fps[0] != fps[1] {
		t.Error("recovered replica diverged")
	}
	// And it can process new transactions.
	if err := clusterCommit(t, c, 0, "post-recovery", "z"); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
}

// ErrReplicaCrashed adapts the error check above (Begin returns the
// replica package's error; we only need non-nil).
func ErrReplicaCrashed(err error) error { return err }

func TestReplicaCrashRecoveryMWUsesDump(t *testing.T) {
	c := newTestCluster(t, proxy.TashkentMW, 2, nil)
	for i := 0; i < 5; i++ {
		if err := clusterCommit(t, c, 0, fmt.Sprintf("k%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	// Take the periodic dump, then more commits after it.
	if _, err := c.Replica(0).DumpNow(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if err := clusterCommit(t, c, 0, fmt.Sprintf("k%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashReplica(0)
	rep, err := c.RecoverReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedDump || rep.DumpBytes == 0 {
		t.Errorf("MW recovery did not use the dump: %+v", rep)
	}
	if rep.RecoveredVersion != 5 {
		t.Errorf("recovered version %d, want 5 (the dump point)", rep.RecoveredVersion)
	}
	if rep.WritesetsApplied < 3 {
		t.Errorf("resync applied %d writesets, want >= 3 (post-dump commits)", rep.WritesetsApplied)
	}
	if err := c.ConvergeAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	if fps[0] != fps[1] {
		t.Error("MW-recovered replica diverged")
	}
}

func TestReplicaCrashRecoveryMWNoDump(t *testing.T) {
	// Without any dump, MW recovery rebuilds entirely from the
	// certifier log.
	c := newTestCluster(t, proxy.TashkentMW, 2, nil)
	for i := 0; i < 4; i++ {
		if err := clusterCommit(t, c, 0, fmt.Sprintf("k%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashReplica(0)
	rep, err := c.RecoverReplica(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WritesetsApplied < 4 {
		t.Errorf("resync applied %d writesets, want >= 4", rep.WritesetsApplied)
	}
	if err := c.ConvergeAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fps := c.Fingerprints(); fps[0] != fps[1] {
		t.Error("diverged after dump-less MW recovery")
	}
}

func TestCertifierCrashRecovery(t *testing.T) {
	c := newTestCluster(t, proxy.TashkentMW, 1, nil)
	for i := 0; i < 4; i++ {
		if err := clusterCommit(t, c, 0, fmt.Sprintf("k%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	// Crash a certifier follower, keep committing, then recover it.
	leader := c.CertLeader()
	victim := -1
	for i := range c.certs {
		if c.certs[i] != leader {
			victim = i
			break
		}
	}
	img := c.CrashCertifier(victim)
	for i := 4; i < 8; i++ {
		if err := clusterCommit(t, c, 0, fmt.Sprintf("k%d", i), "x"); err != nil {
			t.Fatalf("commit with certifier down: %v", err)
		}
	}
	if err := c.RecoverCertifier(victim, img); err != nil {
		t.Fatal(err)
	}
	if !chaos.WaitUntil(3*time.Second, func() bool {
		return c.Certifier(victim).Node().CommitIndex() >= 8
	}) {
		t.Errorf("recovered certifier at commit %d, want >= 8", c.Certifier(victim).Node().CommitIndex())
	}
}

func TestCertifierLeaderKillSystemSurvives(t *testing.T) {
	c := newTestCluster(t, proxy.TashkentMW, 1, nil)
	if err := clusterCommit(t, c, 0, "before", "x"); err != nil {
		t.Fatal(err)
	}
	leader := c.CertLeader()
	for i := range c.certs {
		if c.certs[i] == leader {
			c.CrashCertifier(i)
			break
		}
	}
	// A new leader is elected and commits continue (client retries
	// internally via the failover client).
	var lastErr error
	if !chaos.WaitUntil(10*time.Second, func() bool {
		lastErr = clusterCommit(t, c, 0, "after", "y")
		return lastErr == nil
	}) {
		t.Fatalf("system never recovered from leader kill: %v", lastErr)
	}
}

func TestReplicaIndexBounds(t *testing.T) {
	c := newTestCluster(t, proxy.TashkentMW, 2, nil)
	for _, i := range []int{-1, 2, 99} {
		if tx, err := c.Begin(i); err == nil {
			tx.Abort()
			t.Errorf("Begin(%d) on a 2-replica cluster: want error, got nil", i)
		}
		if rep := c.Replica(i); rep != nil {
			t.Errorf("Replica(%d): want nil, got %v", i, rep)
		}
		if err := c.WaitVersion(context.Background(), i, 0); err == nil {
			t.Errorf("WaitVersion(%d): want error, got nil", i)
		}
	}
	for i := 0; i < 2; i++ {
		if c.Replica(i) == nil {
			t.Errorf("Replica(%d): want non-nil for in-range index", i)
		}
	}
}

func TestAbortRateInjection(t *testing.T) {
	c := newTestCluster(t, proxy.TashkentMW, 1, func(cfg *Config) { cfg.AbortRate = 1.0 })
	err := clusterCommit(t, c, 0, "k", "v")
	if err == nil {
		t.Fatal("100% abort rate let a commit through")
	}
	c.SetAbortRate(0)
	if err := clusterCommit(t, c, 0, "k", "v"); err != nil {
		t.Fatalf("after clearing abort rate: %v", err)
	}
}

func TestConcurrentMultiReplicaLoad(t *testing.T) {
	for _, mode := range []proxy.Mode{proxy.Base, proxy.TashkentMW, proxy.TashkentAPI} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			c := newTestCluster(t, mode, 4, nil)
			var wg sync.WaitGroup
			for rep := 0; rep < 4; rep++ {
				rep := rep
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						key := fmt.Sprintf("r%d-%d", rep, i)
						if err := clusterCommit(t, c, rep, key, "v"); err != nil {
							t.Errorf("replica %d commit %d: %v", rep, i, err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err := c.ConvergeAll(10 * time.Second); err != nil {
				t.Fatal(err)
			}
			// Async chunk appliers may still be publishing: wait for
			// the fingerprints to agree instead of sleeping and hoping.
			if !chaos.WaitUntil(5*time.Second, func() bool {
				fps := c.Fingerprints()
				for i := 1; i < len(fps); i++ {
					if fps[i] != fps[0] {
						return false
					}
				}
				return true
			}) {
				t.Fatalf("replicas diverged under %v: fingerprints %v", mode, c.Fingerprints())
			}
			leader := c.CertLeader()
			if got := leader.Node().CommitIndex(); got != 100 {
				t.Errorf("certifier committed %d versions, want 100", got)
			}
		})
	}
}
