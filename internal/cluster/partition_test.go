package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/partition"
	"tashkent/internal/proxy"
)

// keyInPartition finds a key that the n-way map assigns to pid.
func keyInPartition(n, pid, salt int) string {
	m := partition.Map{N: n}
	for i := 0; ; i++ {
		k := fmt.Sprintf("p%d-s%d-%d", pid, salt, i)
		if m.Of(core.ItemID{Table: "t", Key: k}) == pid {
			return k
		}
	}
}

// crossCommit writes one key in each of the given partitions in a
// single transaction.
func crossCommit(t *testing.T, c *Cluster, rep int, n int, pids []int, salt int, val string) error {
	t.Helper()
	tx, err := c.Begin(rep)
	if err != nil {
		return err
	}
	for _, pid := range pids {
		if err := tx.Update("t", keyInPartition(n, pid, salt), map[string][]byte{"v": []byte(val)}); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

func TestPartitionedEndToEnd(t *testing.T) {
	const parts = 4
	c := newTestCluster(t, proxy.TashkentMW, 3, func(cfg *Config) {
		cfg.Partitions = parts
	})
	if c.Groups() != parts {
		t.Fatalf("Groups() = %d, want %d", c.Groups(), parts)
	}
	// Single-partition commits spread across partitions and replicas.
	for i := 0; i < 12; i++ {
		key := keyInPartition(parts, i%parts, 100+i)
		if err := clusterCommit(t, c, i%3, key, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("single-partition commit %d: %v", i, err)
		}
	}
	// Cross-partition commits, including one spanning all groups.
	if err := crossCommit(t, c, 0, parts, []int{0, 1}, 7, "cross-a"); err != nil {
		t.Fatalf("cross-partition commit {0,1}: %v", err)
	}
	if err := crossCommit(t, c, 1, parts, []int{1, 2, 3}, 8, "cross-b"); err != nil {
		t.Fatalf("cross-partition commit {1,2,3}: %v", err)
	}
	if err := crossCommit(t, c, 2, parts, []int{0, 1, 2, 3}, 9, "cross-c"); err != nil {
		t.Fatalf("cross-partition commit {0,1,2,3}: %v", err)
	}
	if err := c.ConvergeAll(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Fatalf("replica %d diverged: fingerprints %v", i, fps)
		}
	}
	// Every write visible on every replica.
	for rep := 0; rep < 3; rep++ {
		tx, err := c.Begin(rep)
		if err != nil {
			t.Fatal(err)
		}
		for _, pid := range []int{1, 2, 3} {
			v, ok, err := tx.ReadCol("t", keyInPartition(parts, pid, 8), "v")
			if err != nil || !ok || string(v) != "cross-b" {
				t.Errorf("replica %d cross-b part %d = %q %v %v", rep, pid, v, ok, err)
			}
		}
		tx.Abort()
	}
	// The cross-partition rounds were counted.
	var crossCommits int64
	for rep := 0; rep < 3; rep++ {
		crossCommits += c.Replica(rep).Proxy().Stats().CrossPartCommits
	}
	if crossCommits != 3 {
		t.Errorf("CrossPartCommits total = %d, want 3", crossCommits)
	}
}

// TestPartitionedOrderingUnderConcurrency drives concurrent mixed
// single- and cross-partition traffic from every replica and verifies
// all replicas converge to the same fingerprint — the merged apply
// order is deterministic even though each replica receives the group
// streams in different interleavings.
func TestPartitionedOrderingUnderConcurrency(t *testing.T) {
	const parts = 2
	c := newTestCluster(t, proxy.TashkentMW, 3, func(cfg *Config) {
		cfg.Partitions = parts
	})
	var wg sync.WaitGroup
	for rep := 0; rep < 3; rep++ {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if i%4 == 3 {
					// Cross-partition: both groups, per-worker keys.
					crossCommit(t, c, rep, parts, []int{0, 1}, 1000+rep, fmt.Sprintf("x%d-%d", rep, i))
					continue
				}
				key := keyInPartition(parts, i%parts, 2000+rep*100+i)
				clusterCommit(t, c, rep, key, fmt.Sprintf("v%d-%d", rep, i))
			}
		}()
	}
	wg.Wait()
	if err := c.ConvergeAll(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	for i := 1; i < len(fps); i++ {
		if fps[i] != fps[0] {
			t.Fatalf("replica %d diverged after concurrent load: %v", i, fps)
		}
	}
}

// TestPartitionedGroupLeaderFailover kills one group's leader under
// load: acked commits must survive the failover (present on every
// replica afterward) and the merged order must stay identical.
func TestPartitionedGroupLeaderFailover(t *testing.T) {
	const parts = 2
	c := newTestCluster(t, proxy.TashkentMW, 2, func(cfg *Config) {
		cfg.Partitions = parts
		cfg.CertTimeout = 5 * time.Second
	})
	type acked struct{ key, val string }
	var oks []acked
	commit := func(pid, salt int, val string) {
		key := keyInPartition(parts, pid, salt)
		if err := clusterCommit(t, c, 0, key, val); err == nil {
			oks = append(oks, acked{key, val})
		}
	}
	for i := 0; i < 6; i++ {
		commit(i%parts, 3000+i, fmt.Sprintf("pre%d", i))
	}

	// Kill group 1's leader. Group 0 stays intact.
	victim := c.GroupLeaderIndex(1)
	if victim < 0 {
		t.Fatal("group 1 has no leader")
	}
	img := c.CrashCertifier(victim)

	// Commits to both groups continue; group 1's clients fail over to
	// the new leader (2-of-3 majority survives).
	for i := 0; i < 6; i++ {
		commit(i%parts, 4000+i, fmt.Sprintf("mid%d", i))
	}
	if err := crossCommit(t, c, 1, parts, []int{0, 1}, 5000, "cross-during-failover"); err != nil {
		t.Fatalf("cross-partition commit during failover: %v", err)
	}

	if err := c.RecoverCertifier(victim, img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		commit(i%parts, 6000+i, fmt.Sprintf("post%d", i))
	}

	if err := c.ConvergeAll(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	if fps[0] != fps[1] {
		t.Fatalf("replicas diverged after group failover: %v", fps)
	}
	// No acked commit lost, on either replica.
	for rep := 0; rep < 2; rep++ {
		tx, err := c.Begin(rep)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range oks {
			v, ok, err := tx.ReadCol("t", a.key, "v")
			if err != nil || !ok || string(v) != a.val {
				t.Errorf("replica %d lost acked commit %s=%s (got %q %v %v)", rep, a.key, a.val, v, ok, err)
			}
		}
		tx.Abort()
	}
}

// TestPartitionedReplicaCrashRecovery crashes and recovers a replica
// of a partitioned cluster: recovery replays all group streams through
// the deterministic merge and must land on the survivor's state.
func TestPartitionedReplicaCrashRecovery(t *testing.T) {
	const parts = 2
	c := newTestCluster(t, proxy.TashkentMW, 2, func(cfg *Config) {
		cfg.Partitions = parts
	})
	for i := 0; i < 6; i++ {
		if err := clusterCommit(t, c, i%2, keyInPartition(parts, i%parts, 7000+i), "pre"); err != nil {
			t.Fatal(err)
		}
	}
	if err := crossCommit(t, c, 0, parts, []int{0, 1}, 7100, "cross-pre"); err != nil {
		t.Fatal(err)
	}
	c.CrashReplica(0)
	for i := 0; i < 4; i++ {
		if err := clusterCommit(t, c, 1, keyInPartition(parts, i%parts, 7200+i), "during"); err != nil {
			t.Fatalf("commit during outage: %v", err)
		}
	}
	if _, err := c.RecoverReplica(0); err != nil {
		t.Fatal(err)
	}
	if err := c.ConvergeAll(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	fps := c.Fingerprints()
	if fps[0] != fps[1] {
		t.Fatalf("recovered replica diverged: %v", fps)
	}
	if err := clusterCommit(t, c, 0, keyInPartition(parts, 0, 7300), "post"); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
}
