// Package cluster assembles the full replicated system of the paper's
// Figure 2: N database replicas (each with its transparent proxy) and
// a certifier group (leader + backups) connected by a message fabric —
// all in one process, which is how the benchmark harness runs 1–15
// replica sweeps, or over TCP daemons via cmd/tashd and cmd/certd.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/chaos"
	"tashkent/internal/mvstore"
	"tashkent/internal/partition"
	"tashkent/internal/proxy"
	"tashkent/internal/replica"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
)

// Config parameterizes a cluster.
type Config struct {
	// Mode selects the system under test: Base, TashkentMW or
	// TashkentAPI.
	Mode proxy.Mode
	// Replicas is the number of database replicas (1..N).
	Replicas int
	// Certifiers is the certifier group size (default 3: a leader and
	// two backups, as in the paper).
	Certifiers int
	// Partitions shards the keyspace across this many independent
	// certifier groups (see internal/partition); 0 or 1 keeps the
	// classic single-group system. Each group is its own paxos cluster
	// of Certifiers nodes with its own log disk.
	Partitions int
	// DisableCertDurability turns off certifier disk writes — the
	// tashAPInoCERT configuration of §9.2.
	DisableCertDurability bool
	// CertMaxBatch/CertMaxWait tune the certifier's batched
	// certification pipeline (see certifier.Config.MaxBatch/MaxWait).
	CertMaxBatch int
	CertMaxWait  time.Duration
	// CertAdmitTimeout/CertQueueDepth tune the certifier's admission
	// control (see certifier.Config.AdmitTimeout/QueueDepth): requests
	// that would wait longer than the budget are shed with an
	// OVERLOADED retry-after hint instead of queueing unboundedly.
	CertAdmitTimeout time.Duration
	CertQueueDepth   int
	// IOProfile is the physical disk model shared by all nodes.
	IOProfile simdisk.Profile
	// DedicatedIO puts database files on ramdisk so the disk serves
	// only logging (the paper's dedicated-IO experiments).
	DedicatedIO bool
	// NetDelay is the one-way LAN latency injected per message.
	NetDelay time.Duration
	// Transport selects the message fabric backend: "local" (default)
	// keeps every link an in-process call — the deterministic fabric
	// chaos interposers require — while "tcp" runs every
	// replica↔certifier and certifier↔certifier link over real
	// localhost sockets with the pooled multiplexing client. Replicas
	// themselves stay in-process either way; multi-process deployments
	// compose cmd/tashd and cmd/certd instead.
	Transport string
	// AbortRate injects certification aborts (Fig 14).
	AbortRate float64
	// CertTimeout bounds how long a replica's certifier client keeps
	// failing over before reporting the group unavailable (0 = 10 s).
	// Chaos runs shrink it so partitioned commits fail fast.
	CertTimeout time.Duration
	// SeqTimeout bounds how long a proxy waits for a lost response-
	// sequence predecessor before resyncing (0 = proxy default 5 s).
	SeqTimeout time.Duration
	// SeqObserver, if set, receives every proxy sequencer admission
	// (replica index, epoch, seq, outcome) — the chaos invariant
	// checker's view of per-origin response sequencing.
	SeqObserver func(replica int, epoch, seq uint64, outcome string)
	// PaxosCallHook, if set, filters certifier replication RPCs
	// (from/to certifier ids); returning an error suppresses the send.
	// Chaos drills use it to isolate certifiers from their peers.
	PaxosCallHook func(from, to int, method string) error
	// Storage and middleware tuning, applied to every replica.
	PageMissEvery      int
	CheckpointEvery    int
	LockTimeout        time.Duration
	OrderTimeout       time.Duration
	LocalCertification bool
	EagerPreCert       bool
	StalenessBound     time.Duration
	// ApplyWorkers enables the parallel dependency-tracked remote
	// applier on every replica (see proxy.Config.ApplyWorkers).
	ApplyWorkers int
	// Seed makes disk jitter and elections deterministic.
	Seed int64
}

// withDefaults fills unset fields.
func (cfg Config) withDefaults() Config {
	if cfg.Certifiers == 0 {
		cfg.Certifiers = 3
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return cfg
}

// Cluster is a running replicated system.
type Cluster struct {
	cfg Config
	// fabric is the backend in use; localFab/tcpFab hold the concrete
	// fabric (exactly one is non-nil) for backend-specific access.
	fabric   transport.Fabric
	localFab *transport.LocalFabric
	tcpFab   *transport.TCPFabric
	// certs holds every certifier node, flat across groups: group g
	// owns indices [g*Certifiers, (g+1)*Certifiers). The classic
	// single-group system is simply groups == 1.
	certs    []*certifier.Server
	certUp   []bool
	groups   int
	replicas []*replica.Replica
	// pullGates coalesces concurrent WaitVersion catch-up pulls, one
	// gate per replica: N sessions waiting on the same lagging replica
	// produce one Pull RPC, not N.
	pullGates []pullGate

	hookMu            sync.Mutex
	replicaCrashHooks []func(i int)
}

// pullGate is a single-flight latch around one replica's PullOnce.
// The result travels with the flight so a waiter always reads the
// outcome of the pull it joined, never a later flight's.
type pullGate struct {
	mu       sync.Mutex
	inflight *pullFlight // non-nil while a pull is running
}

// pullFlight is one in-progress pull and its result.
type pullFlight struct {
	done chan struct{}
	err  error // written before done closes
}

// New builds and starts a cluster, waiting for a certifier leader.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Mode < proxy.Base || cfg.Mode > proxy.TashkentAPI {
		return nil, fmt.Errorf("cluster: invalid mode %d", cfg.Mode)
	}
	groups := cfg.Partitions
	if groups < 1 {
		groups = 1
	}
	c := &Cluster{cfg: cfg, groups: groups}
	switch cfg.Transport {
	case "", "local":
		c.localFab = transport.NewLocalFabric(cfg.NetDelay)
		c.fabric = c.localFab
	case "tcp":
		c.tcpFab = transport.NewTCPFabric(cfg.NetDelay)
		c.fabric = c.tcpFab
	default:
		return nil, fmt.Errorf("cluster: unknown transport %q (want local or tcp)", cfg.Transport)
	}

	// Certifier tier: one paxos group per partition (one group total in
	// the classic system). Peer links stay within a group — the groups
	// are fully independent.
	for i := 0; i < groups*cfg.Certifiers; i++ {
		g, k := i/cfg.Certifiers, i%cfg.Certifiers
		peers := make(map[int]transport.Client)
		for kk := 0; kk < cfg.Certifiers; kk++ {
			if kk != k {
				peers[kk] = c.fabric.DialFrom(c.certName(i), c.certName(g*cfg.Certifiers+kk))
			}
		}
		srv := certifier.New(certifier.Config{
			ID:                k,
			Peers:             peers,
			Disk:              simdisk.New(cfg.IOProfile, cfg.Seed+int64(i)*7919),
			DisableDurability: cfg.DisableCertDurability,
			AbortRate:         cfg.AbortRate,
			MaxBatch:          cfg.CertMaxBatch,
			MaxWait:           cfg.CertMaxWait,
			AdmitTimeout:      cfg.CertAdmitTimeout,
			QueueDepth:        cfg.CertQueueDepth,
			PaxosCallHook:     c.paxosHookFor(i),
			ElectionTimeout:   200 * time.Millisecond,
			Seed:              cfg.Seed + int64(i),
			Partitioned:       groups > 1,
			Group:             g,
		})
		c.fabric.Serve(c.certName(i), srv.Handle)
		c.certs = append(c.certs, srv)
		c.certUp = append(c.certUp, true)
	}
	for _, srv := range c.certs {
		srv.Start()
	}
	if err := c.waitCertLeader(5 * time.Second); err != nil {
		c.Close()
		return nil, err
	}

	// Replicas.
	for i := 0; i < cfg.Replicas; i++ {
		i := i
		var observer func(epoch, seq uint64, outcome string)
		if cfg.SeqObserver != nil {
			observer = func(epoch, seq uint64, outcome string) {
				cfg.SeqObserver(i, epoch, seq, outcome)
			}
		}
		var topo *partition.Topology
		if groups > 1 {
			topo = c.newTopology(i)
		}
		r := replica.Open(replica.Config{
			ID:   i + 1,
			Mode: cfg.Mode,
			IO: replica.IOConfig{
				Profile:   cfg.IOProfile,
				Dedicated: cfg.DedicatedIO,
				Seed:      cfg.Seed + int64(i)*104729,
			},
			Cert:               c.newCertClient(i, 0),
			Parts:              topo,
			PageMissEvery:      cfg.PageMissEvery,
			CheckpointEvery:    cfg.CheckpointEvery,
			LockTimeout:        cfg.LockTimeout,
			OrderTimeout:       cfg.OrderTimeout,
			LocalCertification: cfg.LocalCertification,
			EagerPreCert:       cfg.EagerPreCert,
			StalenessBound:     cfg.StalenessBound,
			SeqTimeout:         cfg.SeqTimeout,
			SeqObserver:        observer,
			ApplyWorkers:       cfg.ApplyWorkers,
		})
		c.replicas = append(c.replicas, r)
	}
	c.pullGates = make([]pullGate, len(c.replicas))
	return c, nil
}

// pullShared runs replica i's PullOnce with single-flight semantics:
// a caller arriving while a pull is already running waits for that
// pull's result instead of issuing a duplicate RPC at the certifier.
func (c *Cluster) pullShared(ctx context.Context, i int) error {
	g := &c.pullGates[i]
	g.mu.Lock()
	f := g.inflight
	if f == nil {
		f = &pullFlight{done: make(chan struct{})}
		g.inflight = f
		// The pull runs detached so an early ctx return of the caller
		// that started it cannot strand later waiters on the gate.
		go func() {
			f.err = c.replicas[i].Proxy().PullOnce()
			g.mu.Lock()
			g.inflight = nil
			g.mu.Unlock()
			close(f.done)
		}()
	}
	g.mu.Unlock()
	select {
	case <-f.done:
		return f.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

func certName(i int) string { return fmt.Sprintf("certifier-%d", i) }

func replicaName(i int) string { return fmt.Sprintf("replica-%d", i) }

// certName returns node i's fabric identity; partitioned clusters name
// nodes by (group, member) so fault rules can target one group.
func (c *Cluster) certName(i int) string {
	if c.groups <= 1 {
		return certName(i)
	}
	return GroupCertifierName(i/c.cfg.Certifiers, i%c.cfg.Certifiers)
}

// GroupCertifierName returns the fabric identity of member k of
// certifier group g in a partitioned cluster (Partitions >= 2).
func GroupCertifierName(g, k int) string { return fmt.Sprintf("cert-g%d-%d", g, k) }

// paxosHookFor curries the configured certifier-link filter for one
// node (nil when unconfigured). Paxos peer ids are group-local; the
// hook surfaces flat node indices so one rule vocabulary covers both
// classic and partitioned clusters.
func (c *Cluster) paxosHookFor(global int) func(peer int, method string) error {
	if c.cfg.PaxosCallHook == nil {
		return nil
	}
	base := (global / c.cfg.Certifiers) * c.cfg.Certifiers
	return func(peer int, method string) error {
		return c.cfg.PaxosCallHook(global, base+peer, method)
	}
}

// newCertClient builds a failover client over one certifier group for
// replica i, identified on the fabric so link-level fault injection
// can cut individual replica→certifier paths.
func (c *Cluster) newCertClient(i, group int) *certifier.Client {
	clients := make([]transport.Client, c.cfg.Certifiers)
	for k := 0; k < c.cfg.Certifiers; k++ {
		clients[k] = c.fabric.DialFrom(replicaName(i), c.certName(group*c.cfg.Certifiers+k))
	}
	timeout := c.cfg.CertTimeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return certifier.NewClient(clients, timeout)
}

// newTopology builds replica i's partitioned-certification view: the
// hash map plus one failover client per group.
func (c *Cluster) newTopology(i int) *partition.Topology {
	t := &partition.Topology{Map: partition.Map{N: c.groups}}
	for g := 0; g < c.groups; g++ {
		t.Groups = append(t.Groups, c.newCertClient(i, g))
	}
	return t
}

func (c *Cluster) waitCertLeader(timeout time.Duration) error {
	ok := chaos.WaitUntil(timeout, func() bool {
		for g := 0; g < c.groups; g++ {
			if c.GroupLeaderIndex(g) < 0 {
				return false
			}
		}
		return true
	})
	if !ok {
		return errors.New("cluster: certifier leader election incomplete")
	}
	return nil
}

// Mode returns the configured system variant.
func (c *Cluster) Mode() proxy.Mode { return c.cfg.Mode }

// Replicas returns the replica count.
func (c *Cluster) Replicas() int { return len(c.replicas) }

// Certifiers returns the certifier group size.
func (c *Cluster) Certifiers() int { return len(c.certs) }

// Fabric exposes the in-process message fabric so a chaos harness can
// install a fault-injecting interposer over every link. It is nil for
// a TCP-transport cluster: fault injection stays on the deterministic
// in-process fabric.
func (c *Cluster) Fabric() *transport.LocalFabric { return c.localFab }

// WireStats reports cumulative TCP wire traffic (zero value for the
// in-process fabric, which has no wire).
func (c *Cluster) WireStats() transport.WireStats {
	if c.tcpFab == nil {
		return transport.WireStats{}
	}
	return c.tcpFab.Stats()
}

// CertifierName and ReplicaName return the fabric endpoint names used
// by the cluster's links — the vocabulary for link-level fault rules.
func CertifierName(i int) string { return certName(i) }

// ReplicaName returns the fabric-side identity of replica i (0-based).
func ReplicaName(i int) string { return replicaName(i) }

// OnReplicaCrash registers f to run after CrashReplica kills a
// replica. The session layer uses it to drop the crashed replica's
// in-flight routing charges, which would otherwise bias load-sensitive
// policies against it after rejoin.
func (c *Cluster) OnReplicaCrash(f func(i int)) {
	c.hookMu.Lock()
	c.replicaCrashHooks = append(c.replicaCrashHooks, f)
	c.hookMu.Unlock()
}

// ErrNoSuchReplica reports a replica index outside [0, Replicas()).
var ErrNoSuchReplica = errors.New("cluster: no such replica")

// checkReplica validates a replica index.
func (c *Cluster) checkReplica(i int) error {
	if i < 0 || i >= len(c.replicas) {
		return fmt.Errorf("%w: index %d outside [0,%d)", ErrNoSuchReplica, i, len(c.replicas))
	}
	return nil
}

// Replica returns replica i (0-based), or nil if i is out of range.
func (c *Cluster) Replica(i int) *replica.Replica {
	if c.checkReplica(i) != nil {
		return nil
	}
	return c.replicas[i]
}

// Begin opens a client transaction on replica i.
func (c *Cluster) Begin(i int) (*proxy.Tx, error) {
	if err := c.checkReplica(i); err != nil {
		return nil, err
	}
	return c.replicas[i].Begin()
}

// WaitVersion blocks until replica i's announced version reaches v or
// ctx expires — the causal wait behind a session's monotonic-read /
// read-your-writes guarantee. A lagging replica is nudged with an
// immediate writeset pull instead of waiting out the staleness bound.
func (c *Cluster) WaitVersion(ctx context.Context, i int, v uint64) error {
	if err := c.checkReplica(i); err != nil {
		return err
	}
	r := c.replicas[i]
	if v == 0 || r.Store().AnnouncedVersion() >= v {
		return nil
	}
	// Wait in growing slices, pulling only when a slice times out: in
	// steady state the missing writeset is already in flight on the
	// normal response path and lands within the first few milliseconds,
	// so most causal waits cost no certifier Pull at all. The slice
	// only bounds how often we re-pull and re-check ctx —
	// WaitAnnounced returns the moment the version lands — and backing
	// off keeps a long catch-up (recovery replay) from hammering the
	// certifier with a pull every few milliseconds per waiter.
	slice := 5 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := r.Store().WaitAnnounced(v, slice)
		if err == nil {
			return nil
		}
		if errors.Is(err, mvstore.ErrCrashed) {
			return fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		// Timed out: normal propagation did not deliver our versions;
		// pull them rather than wait out the staleness bound.
		if err := c.pullShared(ctx, i); err != nil {
			return fmt.Errorf("cluster: catching replica %d up to version %d: %w", i, v, err)
		}
		if slice *= 2; slice > 50*time.Millisecond {
			slice = 50 * time.Millisecond
		}
	}
}

// CertLeader returns group 0's current leader (nil if none) — the
// whole tier's leader in a classic single-group cluster.
func (c *Cluster) CertLeader() *certifier.Server {
	return c.GroupLeader(0)
}

// CertLeaderIndex returns group 0's leader as a flat node index, or -1
// if that group has no (live) leader.
func (c *Cluster) CertLeaderIndex() int {
	return c.GroupLeaderIndex(0)
}

// Groups returns the certifier group (partition) count.
func (c *Cluster) Groups() int { return c.groups }

// GroupLeader returns group g's current leader (nil if none).
func (c *Cluster) GroupLeader(g int) *certifier.Server {
	if i := c.GroupLeaderIndex(g); i >= 0 {
		return c.certs[i]
	}
	return nil
}

// GroupLeaderIndex returns group g's leader as a flat node index
// (usable with CrashCertifier/RecoverCertifier), or -1 if the group
// has no live leader.
func (c *Cluster) GroupLeaderIndex(g int) int {
	if g < 0 || g >= c.groups {
		return -1
	}
	for k := 0; k < c.cfg.Certifiers; k++ {
		i := g*c.cfg.Certifiers + k
		if c.certUp[i] && c.certs[i].IsLeader() {
			return i
		}
	}
	return -1
}

// Certifier returns certifier node i.
func (c *Cluster) Certifier(i int) *certifier.Server { return c.certs[i] }

// CrashReplica kills replica i (recoverable with RecoverReplica); out
// of range indices are ignored.
func (c *Cluster) CrashReplica(i int) {
	if c.checkReplica(i) != nil {
		return
	}
	c.replicas[i].Crash()
	c.hookMu.Lock()
	hooks := append([]func(int){}, c.replicaCrashHooks...)
	c.hookMu.Unlock()
	for _, f := range hooks {
		f(i)
	}
}

// RecoverReplica runs the mode's recovery procedure on replica i.
func (c *Cluster) RecoverReplica(i int) (replica.RecoveryReport, error) {
	if err := c.checkReplica(i); err != nil {
		return replica.RecoveryReport{}, err
	}
	return c.replicas[i].Recover()
}

// CrashCertifier stops certifier node i and detaches it from the
// fabric, returning its surviving log image for later recovery.
//
// The image is captured *after* Stop: between an early capture and the
// actual halt the node would keep fsyncing and acknowledging appends —
// acks that vouch durability — and restoring from the older image
// would retroactively un-persist them. That amnesia crash is
// impossible on real hardware and breaks the replication group's
// majority arithmetic (an acked commit can vanish from every live
// log). Drills that want a crash at an exact pre-fsync boundary block
// the fsync via a simdisk hook and capture the image while the node
// provably cannot ack (see the chaos mid-batch drill).
func (c *Cluster) CrashCertifier(i int) []byte {
	c.certs[i].Stop()
	img := c.certs[i].WALImage()
	c.certUp[i] = false
	return img
}

// RecoverCertifier restarts certifier node i from a crash image; it
// rejoins its group and catches up from that group's leader.
func (c *Cluster) RecoverCertifier(i int, img []byte) error {
	g, k := i/c.cfg.Certifiers, i%c.cfg.Certifiers
	peers := make(map[int]transport.Client)
	for kk := 0; kk < c.cfg.Certifiers; kk++ {
		if kk != k {
			peers[kk] = c.fabric.DialFrom(c.certName(i), c.certName(g*c.cfg.Certifiers+kk))
		}
	}
	srv := certifier.New(certifier.Config{
		ID:                k,
		Peers:             peers,
		Disk:              simdisk.New(c.cfg.IOProfile, c.cfg.Seed+int64(i)*7919+1),
		DisableDurability: c.cfg.DisableCertDurability,
		AbortRate:         c.cfg.AbortRate,
		MaxBatch:          c.cfg.CertMaxBatch,
		MaxWait:           c.cfg.CertMaxWait,
		AdmitTimeout:      c.cfg.CertAdmitTimeout,
		QueueDepth:        c.cfg.CertQueueDepth,
		PaxosCallHook:     c.paxosHookFor(i),
		ElectionTimeout:   200 * time.Millisecond,
		Seed:              c.cfg.Seed + int64(i) + 1000,
		Partitioned:       c.groups > 1,
		Group:             g,
	})
	if err := srv.RestoreFromImage(img); err != nil {
		return err
	}
	c.fabric.Serve(c.certName(i), srv.Handle)
	srv.Start()
	c.certs[i] = srv
	c.certUp[i] = true
	return nil
}

// Barrier commits a no-op certifier entry in every group and returns
// the highest resulting committed index, retrying across leader
// changes until timeout. After a failover it forces the new leader to
// finalize the previous term's tail — without it, a quiet group
// under-reports its committed prefix (acked transactions stay
// invisible to pulls until the next commit).
func (c *Cluster) Barrier(timeout time.Duration) (uint64, error) {
	var max uint64
	for g := 0; g < c.groups; g++ {
		idx, err := c.BarrierGroup(g, timeout)
		if err != nil {
			return 0, err
		}
		if idx > max {
			max = idx
		}
	}
	return max, nil
}

// BarrierGroup commits a no-op entry in group g and returns the
// resulting committed index.
func (c *Cluster) BarrierGroup(g int, timeout time.Duration) (uint64, error) {
	// Barrier() itself condition-waits on the commit; the retry loop
	// only rides out election churn, so the cheap WaitUntil poll is the
	// whole wait.
	var idx uint64
	ok := chaos.WaitUntil(timeout, func() bool {
		leader := c.GroupLeader(g)
		if leader == nil {
			return false
		}
		i, err := leader.Barrier()
		if err != nil {
			return false
		}
		idx = i
		return true
	})
	if !ok {
		return 0, fmt.Errorf("cluster: certifier barrier never committed in group %d", g)
	}
	return idx, nil
}

// SetAbortRate updates the injected abort rate on every certifier.
func (c *Cluster) SetAbortRate(r float64) {
	for i, s := range c.certs {
		if c.certUp[i] {
			s.SetAbortRate(r)
		}
	}
}

// ConvergeAll pulls every replica up to the certifier's committed
// version and waits for the stores to announce it — used between a
// measurement and a state comparison.
func (c *Cluster) ConvergeAll(timeout time.Duration) error {
	if c.groups > 1 {
		return c.convergeAllPartitioned(timeout)
	}
	leader := c.CertLeader()
	if leader == nil {
		return errors.New("cluster: no leader")
	}
	target := leader.Node().CommitIndex()
	for _, r := range c.replicas {
		if err := r.Proxy().PullOnce(); err != nil {
			return err
		}
	}
	// Condition-wait on each store's commit-order announcement instead
	// of polling AnnouncedVersion: the wait ends the instant the version
	// lands. A slice timeout re-pulls as a nudge in case the in-flight
	// stream stalled.
	deadline := time.Now().Add(timeout)
	for _, r := range c.replicas {
		for r.Store().AnnouncedVersion() < target {
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: convergence to version %d timed out", target)
			}
			if err := r.Store().WaitAnnounced(target, 20*time.Millisecond); err != nil {
				if perr := r.Proxy().PullOnce(); perr != nil {
					return perr
				}
			}
		}
	}
	return nil
}

// convergeAllPartitioned drives a quiesced partitioned cluster to one
// common state: every group's log is padded to the same head H (the
// deterministic merge can only emit up to the shortest group), each
// group commits a barrier so failover tails are finalized, and then
// every replica is pulled until it has announced all groups*H merged
// versions.
func (c *Cluster) convergeAllPartitioned(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	// Equalize the group heads; quiesced, so this settles immediately,
	// but re-check in case a straggling commit landed mid-fill.
	var target uint64
	for {
		var high uint64
		heads := make([]uint64, c.groups)
		for g := 0; g < c.groups; g++ {
			if _, err := c.BarrierGroup(g, timeout); err != nil {
				return err
			}
			leader := c.GroupLeader(g)
			if leader == nil {
				return fmt.Errorf("cluster: group %d lost its leader during convergence", g)
			}
			heads[g] = leader.Node().CommitIndex()
			if heads[g] > high {
				high = heads[g]
			}
		}
		equal := true
		for g := 0; g < c.groups; g++ {
			if heads[g] < high {
				equal = false
				leader := c.GroupLeader(g)
				if leader == nil {
					return fmt.Errorf("cluster: group %d lost its leader during convergence", g)
				}
				if _, err := leader.FillTo(high); err != nil {
					return fmt.Errorf("cluster: filling group %d to %d: %w", g, high, err)
				}
			}
		}
		if equal {
			target = uint64(c.groups) * high
			break
		}
		if time.Now().After(deadline) {
			return errors.New("cluster: group heads never equalized")
		}
	}

	// Each lagging replica alternates a pull (the merge emits only what
	// every group stream holds, so progress needs repeated pulls) with a
	// condition-wait slice on its store's announcement — no fixed-period
	// poll between pulls.
	for _, r := range c.replicas {
		for r.Store().AnnouncedVersion() < target {
			if time.Now().After(deadline) {
				return fmt.Errorf("cluster: convergence to merged version %d timed out", target)
			}
			if err := r.Proxy().PullOnce(); err != nil {
				return err
			}
			_ = r.Store().WaitAnnounced(target, 5*time.Millisecond)
		}
	}
	return nil
}

// Fingerprints returns each replica's state fingerprint.
func (c *Cluster) Fingerprints() []uint32 {
	out := make([]uint32, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = r.Store().Fingerprint()
	}
	return out
}

// Close shuts everything down.
func (c *Cluster) Close() {
	for _, r := range c.replicas {
		r.Close()
	}
	for i, s := range c.certs {
		if c.certUp[i] {
			s.Stop()
		}
	}
	if c.tcpFab != nil {
		c.tcpFab.Close()
	}
}
