// Package workload implements the paper's three benchmarks (§9.1) as
// transaction-level models plus the closed-loop client driver:
//
//   - AllUpdates: back-to-back short non-conflicting update
//     transactions, average writeset 54 bytes — the worst case for a
//     replicated system.
//   - TPC-B: small read+write transactions over the branch / teller /
//     account / history schema, average writeset 158 bytes, with
//     genuine write-write conflicts on the hot branch rows (the source
//     of the ~35 % artificial-conflict rate the paper measures for
//     Tashkent-API).
//   - TPC-W (shopping mix): 80 % read-only / 20 % update transactions
//     over an online bookstore, average writeset 275 bytes, with
//     CPU-heavy reads so processing, not the disk, is the bottleneck.
package workload

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"time"

	"tashkent/internal/metrics"
	"tashkent/internal/mvstore"
	"tashkent/internal/proxy"
)

// Tx is the client-visible transaction interface, matching the public
// session API's transactions (context-aware commit). Storage-layer
// handles with context-free commits adapt through Plain.
type Tx interface {
	Read(table, key string) (map[string][]byte, bool, error)
	ReadCol(table, key, col string) ([]byte, bool, error)
	Insert(table, key string, cols map[string][]byte) error
	Update(table, key string, cols map[string][]byte) error
	Delete(table, key string) error
	Commit(ctx context.Context) error
	Abort() error
}

// BeginFunc opens one transaction at some endpoint. readOnly passes
// the workload's classification of the upcoming transaction so
// session routing policies can split reads from updates.
type BeginFunc func(ctx context.Context, readOnly bool) (Tx, error)

// PlainTx is the context-free transaction shape of the storage and
// proxy layers (*mvstore.Tx, *proxy.Tx).
type PlainTx interface {
	Read(table, key string) (map[string][]byte, bool, error)
	ReadCol(table, key, col string) ([]byte, bool, error)
	Insert(table, key string, cols map[string][]byte) error
	Update(table, key string, cols map[string][]byte) error
	Delete(table, key string) error
	Commit() error
	Abort() error
}

// plainTx adapts a PlainTx to the context-aware Tx interface.
type plainTx struct{ PlainTx }

// Commit honors already-expired contexts, then delegates.
func (t plainTx) Commit(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		t.PlainTx.Abort()
		return err
	}
	return t.PlainTx.Commit()
}

// Plain adapts a context-free begin (standalone store, pinned replica)
// to a BeginFunc, ignoring the routing hint.
func Plain(begin func() (PlainTx, error)) BeginFunc {
	return func(ctx context.Context, _ bool) (Tx, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		inner, err := begin()
		if err != nil {
			return nil, err
		}
		return plainTx{inner}, nil
	}
}

// Generator produces the transactions of one benchmark.
type Generator interface {
	// Name identifies the benchmark.
	Name() string
	// Populate loads the initial database through the given endpoint.
	Populate(ctx context.Context, begin BeginFunc) error
	// Next returns the body of the next transaction for a client.
	// readOnly classifies the transaction for response-time splits.
	Next(r *rand.Rand, replicaID, clientID int) (run func(Tx) error, readOnly bool)
}

// IsAbort classifies errors that count as benign transaction aborts
// (snapshot-isolation conflicts, certification aborts, middleware
// kills); a closed-loop client counts them and moves on.
func IsAbort(err error) bool {
	return errors.Is(err, proxy.ErrCertificationAbort) ||
		errors.Is(err, mvstore.ErrWriteConflict) ||
		errors.Is(err, mvstore.ErrTxKilled) ||
		errors.Is(err, mvstore.ErrDeadlock) ||
		errors.Is(err, mvstore.ErrLockTimeout)
}

// --- AllUpdates ---

// AllUpdates is the paper's synthetic worst case: every transaction is
// one update; keys are partitioned per client so there are no
// conflicts.
type AllUpdates struct {
	// RowsPerClient bounds each client's key range (default 64).
	RowsPerClient int
	// ZipfTheta switches key selection from per-client disjoint ranges
	// to a zipfian draw over one shared keyspace of SharedKeys rows, so
	// concurrent clients collide on hot keys — the adversarial input
	// for dependency-tracked parallel apply. Must be > 1 to take effect
	// (the stdlib zipf generator's constraint); 0 keeps the paper's
	// conflict-free workload.
	ZipfTheta float64
	// SharedKeys sizes the shared zipfian keyspace (default 1024).
	SharedKeys int
}

// allUpdatesValueLen pads the single updated value so the encoded
// writeset is 54 bytes, matching the paper's reported average.
const allUpdatesValueLen = 24

// Name implements Generator.
func (*AllUpdates) Name() string { return "AllUpdates" }

func (g *AllUpdates) rows() int {
	if g.RowsPerClient <= 0 {
		return 64
	}
	return g.RowsPerClient
}

func (g *AllUpdates) sharedKeys() uint64 {
	if g.SharedKeys <= 0 {
		return 1024
	}
	return uint64(g.SharedKeys)
}

// Populate implements Generator. AllUpdates needs no preloaded rows:
// updates create rows on first touch.
func (*AllUpdates) Populate(context.Context, BeginFunc) error { return nil }

// Next implements Generator.
func (g *AllUpdates) Next(r *rand.Rand, replicaID, clientID int) (func(Tx) error, bool) {
	var key string
	if g.ZipfTheta > 1 {
		z := rand.NewZipf(r, g.ZipfTheta, 1, g.sharedKeys()-1)
		key = fmt.Sprintf("zk%06d", z.Uint64())
	} else {
		key = fmt.Sprintf("r%02dc%02dk%03d", replicaID, clientID, r.Intn(g.rows()))
	}
	val := make([]byte, allUpdatesValueLen)
	r.Read(val)
	return func(tx Tx) error {
		return tx.Update("au", key, map[string][]byte{"v": val})
	}, false
}

// --- TPC-B ---

// TPCB models the TPC-B transaction profile: read an account balance,
// then update the account, its teller and its branch, and insert a
// history row. Branch rows are hot and conflict.
type TPCB struct {
	// Branches is the number of branch rows (default 8). Fewer
	// branches raise the conflict rate.
	Branches int
	// TellersPerBranch and AccountsPerBranch size the schema
	// (defaults 10 and 1000).
	TellersPerBranch  int
	AccountsPerBranch int
}

func (g *TPCB) dims() (b, t, a int) {
	b, t, a = g.Branches, g.TellersPerBranch, g.AccountsPerBranch
	if b <= 0 {
		b = 8
	}
	if t <= 0 {
		t = 10
	}
	if a <= 0 {
		a = 1000
	}
	return b, t, a
}

// Name implements Generator.
func (*TPCB) Name() string { return "TPC-B" }

// Populate implements Generator.
func (g *TPCB) Populate(ctx context.Context, begin BeginFunc) error {
	b, tl, acc := g.dims()
	zero := []byte("00000000")
	// Load in moderate batches to keep writesets bounded.
	batch := func(load func(tx Tx) error) error {
		tx, err := begin(ctx, false)
		if err != nil {
			return err
		}
		if err := load(tx); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit(ctx)
	}
	for i := 0; i < b; i++ {
		i := i
		if err := batch(func(tx Tx) error {
			if err := tx.Insert("branches", fmt.Sprintf("b%03d", i),
				map[string][]byte{"balance": zero}); err != nil {
				return err
			}
			for j := 0; j < tl; j++ {
				if err := tx.Insert("tellers", fmt.Sprintf("b%03dt%03d", i, j),
					map[string][]byte{"balance": zero}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
		for lo := 0; lo < acc; lo += 250 {
			lo := lo
			hi := lo + 250
			if hi > acc {
				hi = acc
			}
			if err := batch(func(tx Tx) error {
				for k := lo; k < hi; k++ {
					if err := tx.Insert("accounts", fmt.Sprintf("b%03da%06d", i, k),
						map[string][]byte{"balance": zero}); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Next implements Generator.
func (g *TPCB) Next(r *rand.Rand, replicaID, clientID int) (func(Tx) error, bool) {
	b, tl, acc := g.dims()
	branch := r.Intn(b)
	teller := r.Intn(tl)
	account := r.Intn(acc)
	delta := r.Intn(10000)
	histKey := fmt.Sprintf("h%08x", r.Uint32())
	pad := make([]byte, 4) // history filler sizes the writeset to ~158 B
	r.Read(pad)
	return func(tx Tx) error {
		aKey := fmt.Sprintf("b%03da%06d", branch, account)
		bal, _, err := tx.ReadCol("accounts", aKey, "balance")
		if err != nil {
			return err
		}
		_ = bal
		v := []byte(fmt.Sprintf("%04d", delta))
		if err := tx.Update("accounts", aKey, map[string][]byte{"balance": v}); err != nil {
			return err
		}
		if err := tx.Update("tellers", fmt.Sprintf("b%03dt%03d", branch, teller),
			map[string][]byte{"balance": v}); err != nil {
			return err
		}
		if err := tx.Update("branches", fmt.Sprintf("b%03d", branch),
			map[string][]byte{"balance": v}); err != nil {
			return err
		}
		return tx.Insert("history", histKey, map[string][]byte{"rec": pad})
	}, false
}

// --- TPC-W (shopping mix) ---

// TPCW models the TPC-W shopping mix: 80 % read-only browsing
// transactions with CPU-heavy processing, 20 % order-placement
// updates.
type TPCW struct {
	// Items sizes the catalog (default 1000).
	Items int
	// ReadsPerBrowse is the number of item lookups per browsing
	// transaction (default 6).
	ReadsPerBrowse int
	// CPUWork is the per-read CPU spin amount (default 2000 CRC
	// rounds) making processing the bottleneck, as in the paper.
	CPUWork int
	// UpdateFraction is the update-transaction share (default 0.2,
	// the shopping mix).
	UpdateFraction float64
}

func (g *TPCW) items() int {
	if g.Items <= 0 {
		return 1000
	}
	return g.Items
}

func (g *TPCW) updateFraction() float64 {
	if g.UpdateFraction <= 0 {
		return 0.2
	}
	return g.UpdateFraction
}

func (g *TPCW) reads() int {
	if g.ReadsPerBrowse <= 0 {
		return 6
	}
	return g.ReadsPerBrowse
}

func (g *TPCW) cpu() int {
	if g.CPUWork <= 0 {
		return 2000
	}
	return g.CPUWork
}

// Name implements Generator.
func (*TPCW) Name() string { return "TPC-W" }

// Populate implements Generator.
func (g *TPCW) Populate(ctx context.Context, begin BeginFunc) error {
	n := g.items()
	desc := make([]byte, 160) // bookstore rows are comparatively fat
	for lo := 0; lo < n; lo += 200 {
		hi := lo + 200
		if hi > n {
			hi = n
		}
		tx, err := begin(ctx, false)
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			if err := tx.Insert("items", fmt.Sprintf("i%06d", i), map[string][]byte{
				"stock": []byte("00010000"),
				"desc":  desc,
			}); err != nil {
				tx.Abort()
				return err
			}
		}
		if err := tx.Commit(ctx); err != nil {
			return err
		}
	}
	return nil
}

// spin burns CPU deterministically, modelling the paper's
// "heavy-weight transactions [that] make CPU processing the
// bottleneck".
func spin(rounds int) uint32 {
	var buf [64]byte
	var acc uint32
	for i := 0; i < rounds; i++ {
		buf[i%64]++
		acc ^= crc32.ChecksumIEEE(buf[:])
	}
	return acc
}

// Next implements Generator.
func (g *TPCW) Next(r *rand.Rand, replicaID, clientID int) (func(Tx) error, bool) {
	n := g.items()
	if r.Float64() >= g.updateFraction() {
		// Browsing: several item reads, each with CPU processing.
		keys := make([]string, g.reads())
		for i := range keys {
			keys[i] = fmt.Sprintf("i%06d", r.Intn(n))
		}
		cpu := g.cpu()
		return func(tx Tx) error {
			for _, k := range keys {
				if _, _, err := tx.Read("items", k); err != nil {
					return err
				}
				spin(cpu)
			}
			return nil
		}, true
	}
	// Order placement: read the cart items, update stock, insert the
	// order (~275 B writeset).
	item1 := fmt.Sprintf("i%06d", r.Intn(n))
	item2 := fmt.Sprintf("i%06d", r.Intn(n))
	orderKey := fmt.Sprintf("o%02d%02d%08x", replicaID, clientID, r.Uint32())
	payload := make([]byte, 150)
	r.Read(payload)
	stock := []byte(fmt.Sprintf("%08d", r.Intn(10000)))
	cpu := g.cpu()
	return func(tx Tx) error {
		for _, k := range []string{item1, item2} {
			if _, _, err := tx.Read("items", k); err != nil {
				return err
			}
			spin(cpu / 2)
		}
		if err := tx.Update("items", item1, map[string][]byte{"stock": stock}); err != nil {
			return err
		}
		if err := tx.Update("items", item2, map[string][]byte{"stock": stock}); err != nil {
			return err
		}
		return tx.Insert("orders", orderKey, map[string][]byte{"detail": payload})
	}, false
}

// --- Closed-loop runner ---

// RunConfig parameterizes a measurement run.
type RunConfig struct {
	// ClientsPerReplica closed-loop clients drive each replica.
	ClientsPerReplica int
	// Warmup runs before measurement starts; Measure is the window.
	Warmup  time.Duration
	Measure time.Duration
	// ExecTime models the replica-side execution cost of one
	// transaction (parsing, reads, writes — the work a real database
	// does before COMMIT). The paper's replicas spend most of each
	// transaction here; it is what bounds a replica's offered load
	// ("each replica is driven at 85% of the standalone peak"). It is
	// simulated as latency, not CPU burn, so a single test machine can
	// host many replicas.
	ExecTime time.Duration
	// Seed fixes the client random streams.
	Seed int64
}

// Result summarizes a run.
type Result struct {
	Workload   string
	Duration   time.Duration
	Committed  int64
	Aborted    int64
	Throughput float64 // committed transactions per second (goodput)
	RT         metrics.Summary
	ReadRT     metrics.Summary
	UpdateRT   metrics.Summary
}

// AbortRate returns aborted / attempted.
func (r Result) AbortRate() float64 {
	total := r.Committed + r.Aborted
	if total == 0 {
		return 0
	}
	return float64(r.Aborted) / float64(total)
}

// Run drives the generator against one endpoint per replica (or per
// session, when routing is delegated) with the configured closed-loop
// clients and returns measured goodput and response times. begins[i]
// opens transactions for client group i; ctx cancellation stops all
// clients early.
func Run(ctx context.Context, gen Generator, begins []BeginFunc, cfg RunConfig) Result {
	if cfg.ClientsPerReplica <= 0 {
		cfg.ClientsPerReplica = 10
	}
	var (
		wg        sync.WaitGroup
		committed metrics.Counter
		aborted   metrics.Counter
		allRT     = metrics.NewLatency(0)
		readRT    = metrics.NewLatency(0)
		updateRT  = metrics.NewLatency(0)
	)
	warmupEnd := time.Now().Add(cfg.Warmup)
	deadline := warmupEnd.Add(cfg.Measure)
	var measured metrics.Interval

	for rep := range begins {
		for cl := 0; cl < cfg.ClientsPerReplica; cl++ {
			rep, cl := rep, cl
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewSource(cfg.Seed ^ int64(rep)<<20 ^ int64(cl)<<8))
				begin := begins[rep]
				for {
					now := time.Now()
					if now.After(deadline) || ctx.Err() != nil {
						return
					}
					run, readOnly := gen.Next(r, rep, cl)
					start := time.Now()
					tx, err := begin(ctx, readOnly)
					if err != nil {
						if ctx.Err() != nil {
							return
						}
						time.Sleep(time.Millisecond)
						continue
					}
					if cfg.ExecTime > 0 {
						time.Sleep(cfg.ExecTime)
					}
					if err = run(tx); err == nil {
						err = tx.Commit(ctx)
					} else {
						tx.Abort()
					}
					elapsed := time.Since(start)
					inWindow := start.After(warmupEnd) && time.Now().Before(deadline)
					switch {
					case err == nil:
						if inWindow {
							committed.Add(1)
							allRT.Observe(elapsed)
							if readOnly {
								readRT.Observe(elapsed)
							} else {
								updateRT.Observe(elapsed)
							}
						}
					case IsAbort(err):
						if inWindow {
							aborted.Add(1)
						}
					default:
						// Unexpected error (e.g. mid-crash experiment):
						// back off briefly and continue.
						time.Sleep(time.Millisecond)
					}
				}
			}()
		}
	}
	// Open the measurement window precisely.
	time.Sleep(time.Until(warmupEnd))
	measured.Start()
	wg.Wait()
	measured.Stop()

	res := Result{
		Workload:  gen.Name(),
		Duration:  measured.Elapsed(),
		Committed: committed.Value(),
		Aborted:   aborted.Value(),
		RT:        allRT.Summarize(),
		ReadRT:    readRT.Summarize(),
		UpdateRT:  updateRT.Summarize(),
	}
	if d := res.Duration.Seconds(); d > 0 {
		res.Throughput = float64(res.Committed) / d
	}
	return res
}

// WritesetSize reports the encoded writeset size one transaction of
// the generator produces, measured against a scratch standalone store
// — used by tests to pin the paper's 54/158/275-byte averages.
func WritesetSize(gen Generator, samples int) (float64, error) {
	ctx := context.Background()
	st := mvstore.Open(mvstore.Config{})
	defer st.Close()
	begin := Plain(func() (PlainTx, error) { return st.Begin() })
	if err := gen.Populate(ctx, begin); err != nil {
		return 0, err
	}
	r := rand.New(rand.NewSource(7))
	var total, n int
	for i := 0; i < samples; i++ {
		run, readOnly := gen.Next(r, 1, 1)
		tx, err := st.Begin()
		if err != nil {
			return 0, err
		}
		if err := run(plainTx{tx}); err != nil {
			tx.Abort()
			if IsAbort(err) {
				continue
			}
			return 0, err
		}
		if !readOnly {
			total += tx.Writeset().Size()
			n++
		}
		if err := tx.Commit(); err != nil && !IsAbort(err) {
			return 0, err
		}
	}
	if n == 0 {
		return 0, nil
	}
	return float64(total) / float64(n), nil
}
