package workload

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tashkent/internal/mvstore"
)

func standaloneBegin(s *mvstore.Store) BeginFunc {
	return Plain(func() (PlainTx, error) { return s.Begin() })
}

func TestAllUpdatesWritesetSize(t *testing.T) {
	size, err := WritesetSize(&AllUpdates{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: average 54 bytes.
	if size < 50 || size > 58 {
		t.Errorf("AllUpdates writeset = %.1f bytes, want ~54", size)
	}
}

func TestTPCBWritesetSize(t *testing.T) {
	size, err := WritesetSize(&TPCB{Branches: 2, AccountsPerBranch: 50}, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: average 158 bytes.
	if size < 140 || size > 175 {
		t.Errorf("TPC-B writeset = %.1f bytes, want ~158", size)
	}
}

func TestTPCWWritesetSize(t *testing.T) {
	size, err := WritesetSize(&TPCW{Items: 100, UpdateFraction: 1.0, CPUWork: 1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: average 275 bytes.
	if size < 250 || size > 300 {
		t.Errorf("TPC-W writeset = %.1f bytes, want ~275", size)
	}
}

func TestAllUpdatesNoConflictsAcrossClients(t *testing.T) {
	g := &AllUpdates{}
	r := rand.New(rand.NewSource(1))
	s := mvstore.Open(mvstore.Config{})
	defer s.Close()
	seen := map[string]struct{}{}
	// Different (replica, client) pairs touch disjoint key ranges.
	for rep := 0; rep < 3; rep++ {
		for cl := 0; cl < 3; cl++ {
			run, ro := g.Next(r, rep, cl)
			if ro {
				t.Fatal("AllUpdates produced a read-only txn")
			}
			tx, _ := s.Begin()
			if err := run(plainTx{tx}); err != nil {
				t.Fatal(err)
			}
			for _, op := range tx.Writeset().Ops {
				prefix := op.Key[:6] // rXXcYY
				if want := fmt.Sprintf("r%02dc%02d", rep, cl); prefix != want {
					t.Errorf("key %q not in client range %q", op.Key, want)
				}
				seen[prefix] = struct{}{}
			}
			tx.Abort()
		}
	}
	if len(seen) != 9 {
		t.Errorf("saw %d distinct client ranges, want 9", len(seen))
	}
}

func TestTPCBPopulateAndConflicts(t *testing.T) {
	s := mvstore.Open(mvstore.Config{})
	defer s.Close()
	g := &TPCB{Branches: 2, TellersPerBranch: 2, AccountsPerBranch: 20}
	if err := g.Populate(context.Background(), standaloneBegin(s)); err != nil {
		t.Fatal(err)
	}
	if got := s.RowCount("branches"); got != 2 {
		t.Errorf("branches = %d", got)
	}
	if got := s.RowCount("tellers"); got != 4 {
		t.Errorf("tellers = %d", got)
	}
	if got := s.RowCount("accounts"); got != 40 {
		t.Errorf("accounts = %d", got)
	}
	// With 2 branches, two random transactions conflict on the branch
	// row often; verify the generator actually touches branches.
	r := rand.New(rand.NewSource(2))
	run, _ := g.Next(r, 0, 0)
	tx, _ := s.Begin()
	if err := run(plainTx{tx}); err != nil {
		t.Fatal(err)
	}
	touchedBranch := false
	for _, op := range tx.Writeset().Ops {
		if op.Table == "branches" {
			touchedBranch = true
		}
	}
	tx.Abort()
	if !touchedBranch {
		t.Error("TPC-B transaction did not update a branch row")
	}
}

func TestTPCWMixFractions(t *testing.T) {
	g := &TPCW{Items: 50, CPUWork: 1}
	r := rand.New(rand.NewSource(3))
	reads := 0
	const n = 1000
	for i := 0; i < n; i++ {
		_, ro := g.Next(r, 0, 0)
		if ro {
			reads++
		}
	}
	frac := float64(reads) / n
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("read-only fraction = %.2f, want ~0.80 (shopping mix)", frac)
	}
}

func TestRunClosedLoopStandalone(t *testing.T) {
	s := mvstore.Open(mvstore.Config{})
	defer s.Close()
	g := &AllUpdates{}
	res := Run(context.Background(), g, []BeginFunc{standaloneBegin(s)}, RunConfig{
		ClientsPerReplica: 4,
		Warmup:            20 * time.Millisecond,
		Measure:           150 * time.Millisecond,
		Seed:              1,
	})
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	if res.RT.Count != res.Committed {
		t.Errorf("RT samples %d != commits %d", res.RT.Count, res.Committed)
	}
	if res.AbortRate() != 0 {
		t.Errorf("AllUpdates abort rate = %v, want 0 (disjoint keys)", res.AbortRate())
	}
}

func TestRunMeasuresOnlyWindow(t *testing.T) {
	s := mvstore.Open(mvstore.Config{})
	defer s.Close()
	res := Run(context.Background(), &AllUpdates{}, []BeginFunc{standaloneBegin(s)}, RunConfig{
		ClientsPerReplica: 1,
		Warmup:            50 * time.Millisecond,
		Measure:           100 * time.Millisecond,
	})
	if res.Duration < 90*time.Millisecond || res.Duration > 500*time.Millisecond {
		t.Errorf("measured window = %v", res.Duration)
	}
}

func TestTPCWRunSplitsReadAndUpdateRT(t *testing.T) {
	s := mvstore.Open(mvstore.Config{})
	g := &TPCW{Items: 100, CPUWork: 10}
	if err := g.Populate(context.Background(), standaloneBegin(s)); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res := Run(context.Background(), g, []BeginFunc{standaloneBegin(s)}, RunConfig{
		ClientsPerReplica: 4,
		Warmup:            10 * time.Millisecond,
		Measure:           200 * time.Millisecond,
		Seed:              2,
	})
	if res.ReadRT.Count == 0 || res.UpdateRT.Count == 0 {
		t.Fatalf("RT split: reads=%d updates=%d", res.ReadRT.Count, res.UpdateRT.Count)
	}
	if res.ReadRT.Count < res.UpdateRT.Count {
		t.Error("shopping mix should be read-dominated")
	}
}

func TestAbortRateMath(t *testing.T) {
	r := Result{Committed: 80, Aborted: 20}
	if got := r.AbortRate(); got != 0.2 {
		t.Errorf("AbortRate = %v", got)
	}
	if (Result{}).AbortRate() != 0 {
		t.Error("empty result abort rate should be 0")
	}
}

func TestSpinIsDeterministicWork(t *testing.T) {
	a, b := spin(100), spin(100)
	if a != b {
		t.Error("spin not deterministic")
	}
}
