package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/core"
	"tashkent/internal/mvstore"
	"tashkent/internal/partition"
)

// Partitioned certification (see internal/partition): the proxy talks
// to N certifier groups instead of one. Commits route by partition —
// a single-partition writeset certifies in one round against its
// group; a cross-partition writeset runs the prepare/resolve protocol
// across its groups. All application goes through one merger
// goroutine that interleaves the per-group committed streams into the
// deterministic merged order and is the replica's only announcer, so
// every replica installs the same state at the same merged version.
//
// The per-replica response sequencer, local certification and the
// safe-back machinery are not used in partitioned mode: entries are
// addressed by (group, index), the assembler deduplicates and orders
// them, and application is serial in merged order.

// waitKey addresses a single-partition own commit: the entry's group
// and log index.
type waitKey struct {
	g   int
	idx uint64
}

// ownDone is the merger's notification to a waiting own commit.
type ownDone struct {
	mv        uint64
	viaHandle bool // committed through the waiting tx handle
}

// ownWait is a committing client transaction waiting for its entry's
// merged apply position.
type ownWait struct {
	tx *mvstore.Tx
	ws *core.Writeset
	ch chan ownDone
}

// partState is the proxy's partitioned-mode machinery.
type partState struct {
	topo *partition.Topology

	mu            sync.Mutex
	asm           *partition.Assembler
	vector        []uint64 // per-group applied counts, updated after announce
	mergedApplied uint64
	waiters       map[waitKey]*ownWait
	gidWaiters    map[uint64]*ownWait
	// doneIdx/doneGid record own entries the merger applied before the
	// commit path could register a waiter (response raced the stream).
	doneIdx map[waitKey]uint64
	doneGid map[uint64]uint64

	wake chan struct{} // nudges the merger after new offers
}

// gidCounter is process-wide so simulated crash/recovery cycles never
// reuse a global transaction id (a reused gid would collide with its
// predecessor's decision markers in the certifier groups).
var gidCounter atomic.Uint64

// mergeStallNudge is how long the merger waits on a blocked stream
// before pulling it. Whether a short group is padded with fill no-ops
// is decided by the group itself: its pull response says whether
// certifications are in flight (entries imminent — never pad) or the
// group is idle (pad immediately; an idle partition must not stall
// the merge). mergeFillPatience is the fallback for a group that
// reports busy without committing anything for that long — under
// fault injection an in-flight request can linger for seconds on
// retries, and the merge must not wait it out.
const (
	mergeStallNudge   = 2 * time.Millisecond
	mergeFillPatience = 25 * time.Millisecond
)

func newPartState(topo *partition.Topology) *partState {
	n := len(topo.Groups)
	return &partState{
		topo:       topo,
		asm:        partition.NewAssembler(n),
		vector:     make([]uint64, n),
		waiters:    make(map[waitKey]*ownWait),
		gidWaiters: make(map[uint64]*ownWait),
		doneIdx:    make(map[waitKey]uint64),
		doneGid:    make(map[uint64]uint64),
		wake:       make(chan struct{}, 1),
	}
}

// startVec samples the per-group start versions for a new snapshot.
// The vector is updated only after a merged version is announced, so
// the sample taken before Store.Begin is conservative in every
// group's version space — lower starts cause at worst false aborts,
// never missed conflicts (§6.2's conservative labeling, per group).
func (p *Proxy) startVecLocked() []uint64 {
	ps := p.part
	ps.mu.Lock()
	v := append([]uint64(nil), ps.vector...)
	ps.mu.Unlock()
	return v
}

// ingest feeds raw committed entries of group g to the assembler and
// wakes the merger.
func (p *Proxy) ingest(g int, remote []certifier.RemoteWS) {
	if len(remote) == 0 {
		return
	}
	ps := p.part
	ps.mu.Lock()
	for _, r := range remote {
		ps.asm.Offer(g, r.Version, r.WSBytes)
	}
	ps.mu.Unlock()
	p.mu.Lock()
	p.lastRemote = time.Now()
	p.mu.Unlock()
	select {
	case ps.wake <- struct{}{}:
	default:
	}
}

// mergerLoop is the replica's single applier in partitioned mode: it
// drains ready actions from the assembler and installs them in merged
// order. When the merge stalls it pulls every group at or behind the
// blocked position — and if the blocking group's log is genuinely
// shorter than the needed index, asks its leader to fill (idle
// partitions must not stall the merge).
//
// Two pacing rules keep the merge from becoming the system
// bottleneck. First, the nudge deadline is tracked across wake-ups:
// under steady traffic, wake-ups from other groups' offers arrive
// more often than the nudge interval, and a timer that re-armed on
// every wake would never fire — the merge would then advance only at
// the blocking group's natural commit cadence, which is exactly the
// stall the nudge exists to break. Second, a nudge round that
// ingested new entries re-runs immediately once the merge blocks
// again (paced by the pull RPC itself, not the timer): the merge
// horizon needs entries from every group, and waiting out the nudge
// interval per group would cap the whole replica's apply rate at
// groups-per-interval.
func (p *Proxy) mergerLoop() {
	defer p.wg.Done()
	ps := p.part
	stallG := -2 // no stall being tracked
	var stallIdx uint64
	var stallFirst, stallSince time.Time
	hot := false // last nudge round made progress; keep streaming
	for {
		select {
		case <-p.stopCh:
			return
		default:
		}
		ps.mu.Lock()
		var acts []partition.Action
		for len(acts) < 256 {
			act, ok := ps.asm.Next()
			if !ok {
				break
			}
			acts = append(acts, act)
		}
		var blockG int
		var blockIdx uint64
		if len(acts) == 0 {
			blockG, blockIdx = ps.asm.Blocking()
		}
		ps.mu.Unlock()

		if len(acts) == 0 {
			// Progress gate: nudges and fills are warranted only while
			// this replica has something to gain — a received entry
			// waiting to merge, or a local client waiting for its own
			// commit's merge position. Without the gate a quiescent
			// cluster would fill forever: the merge is always "blocked"
			// on the index after the last entry, and padding it just
			// moves the block one index up.
			ps.mu.Lock()
			motive := ps.asm.Pending() || len(ps.waiters) > 0 || len(ps.gidWaiters) > 0
			ps.mu.Unlock()
			if !motive {
				stallG, hot = -2, false
				select {
				case <-p.stopCh:
					return
				case <-ps.wake:
				}
				continue
			}
			now := time.Now()
			if blockG != stallG || blockIdx != stallIdx {
				stallG, stallIdx = blockG, blockIdx
				stallFirst = now
				if !hot {
					stallSince = now
				}
			}
			if wait := mergeStallNudge - now.Sub(stallSince); wait > 0 && !hot {
				select {
				case <-p.stopCh:
					return
				case <-ps.wake:
				case <-time.After(wait):
				}
				continue
			}
			hot = p.nudgeLagging(blockG, blockIdx, now.Sub(stallFirst) >= mergeFillPatience)
			stallSince = time.Now() // re-arm: give the pulled data time to land
			continue
		}
		stallG = -2
		if !p.applyActions(acts) {
			return // store crashed; the recovery path builds a fresh proxy
		}
	}
}

// nudgeLagging unblocks a stalled merge: every group whose received
// prefix is at or behind the blocked position is pulled forward, in
// parallel — after the blocking group is resolved the merge would
// immediately block on the next-laggiest group at the same position,
// so pulling them one stall interval at a time would serialize the
// whole merge on the nudge timer. A pulled group whose committed log
// is genuinely shorter than the index the merge needs is asked to pad
// itself with fill no-ops — but only if its pull response says it is
// idle (no certifications in flight), or the force flag is set
// because the same position has been blocked past the patience
// window. Filling a busy group would be poison: the no-ops
// group's index, which in turn makes every other group look short, so
// an eager fill cascades into groups padding each other forever.
// Returns whether any pull ingested new entries.
func (p *Proxy) nudgeLagging(blockG int, blockIdx uint64, fill bool) bool {
	ps := p.part
	if blockG < 0 {
		return false
	}
	var wg sync.WaitGroup
	progressed := make([]bool, len(ps.topo.Groups))
	ps.mu.Lock()
	frontiers := make([]uint64, len(ps.topo.Groups))
	for g := range frontiers {
		frontiers[g] = ps.asm.Frontier(g)
	}
	ps.mu.Unlock()
	// An idle group is padded level with the most advanced group, not
	// just to the blocked row: every group must eventually supply an
	// entry at each index up to the leader's frontier anyway, so one
	// fill round (one fsync) covers the whole idle episode instead of
	// one fsync per merged row.
	fillTo := blockIdx
	for _, f := range frontiers {
		if f > fillTo {
			fillTo = f
		}
	}
	for g := range ps.topo.Groups {
		if frontiers[g] > blockIdx {
			continue // already past the merge horizon
		}
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			progressed[g] = p.pullGroup(g, blockIdx, fillTo, fill && g == blockG)
		}()
	}
	wg.Wait()
	for _, ok := range progressed {
		if ok {
			return true
		}
	}
	return false
}

// pullGroup pulls one group up toward needIdx, padding a genuinely
// short group with fill no-ops when its pull response reports it idle
// (or unconditionally when force is set — the patience fallback for a
// group stuck busy under fault injection). Returns whether new
// entries were ingested.
func (p *Proxy) pullGroup(g int, needIdx, fillTo uint64, force bool) bool {
	ps := p.part
	pullFrom := func() uint64 {
		ps.mu.Lock()
		f := ps.asm.Frontier(g)
		ps.mu.Unlock()
		return f
	}
	frontier := pullFrom()
	if needIdx < frontier {
		return false // already received; the merger just has not run yet
	}
	client := ps.topo.Groups[g]
	resp, err := client.Pull(certifier.PullRequest{
		Origin: p.cfg.ReplicaID, ReplicaVersion: frontier, IncludeOwn: true,
	})
	if err != nil {
		return false
	}
	p.ingest(g, resp.Remote)
	after := pullFrom()
	if needIdx < after {
		return after > frontier
	}
	if resp.SystemVersion < needIdx && (!resp.Busy || force) {
		// The group is genuinely short: it has no entry at needIdx and
		// nothing in flight to produce one. Pad it so the merge can
		// pass this position.
		if fillTo < needIdx {
			fillTo = needIdx
		}
		if _, err := client.Fill(fillTo); err != nil {
			return after > frontier
		}
		resp, err = client.Pull(certifier.PullRequest{
			Origin: p.cfg.ReplicaID, ReplicaVersion: pullFrom(), IncludeOwn: true,
		})
		if err == nil {
			p.ingest(g, resp.Remote)
			after = pullFrom()
		}
	}
	return after > frontier
}

// takeWaiter consumes the own-commit waiter addressed by act, if one
// is registered.
func (p *Proxy) takeWaiter(act partition.Action) *ownWait {
	ps := p.part
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if act.GID != 0 {
		if w, ok := ps.gidWaiters[act.GID]; ok {
			delete(ps.gidWaiters, act.GID)
			return w
		}
		return nil
	}
	if w, ok := ps.waiters[waitKey{act.Group, act.Index}]; ok {
		delete(ps.waiters, waitKey{act.Group, act.Index})
		return w
	}
	return nil
}

// afterApply publishes a merged version: vector and cursor updates
// (strictly after the store announce — Begin samples the vector
// before the snapshot, and updating first would make starts too
// high), plus the done-records for own entries that had no waiter
// yet. Returns a waiter that registered during the apply, which must
// now be notified that the merger installed its writeset.
func (p *Proxy) afterApply(act partition.Action, viaHandle bool) *ownWait {
	ps := p.part
	ps.mu.Lock()
	if act.Index > ps.vector[act.Group] {
		ps.vector[act.Group] = act.Index
	}
	if act.MV > ps.mergedApplied {
		ps.mergedApplied = act.MV
	}
	var late *ownWait
	own := act.WS != nil && act.Origin == p.cfg.ReplicaID
	if own && !viaHandle {
		if act.GID != 0 {
			if w, ok := ps.gidWaiters[act.GID]; ok {
				delete(ps.gidWaiters, act.GID)
				late = w
			} else {
				ps.doneGid[act.GID] = act.MV
			}
		} else {
			key := waitKey{act.Group, act.Index}
			if w, ok := ps.waiters[key]; ok {
				delete(ps.waiters, key)
				late = w
			} else {
				ps.doneIdx[key] = act.MV
			}
		}
		// Unconsumed done-records (commit responses lost in crashes)
		// would otherwise accumulate forever.
		if len(ps.doneIdx) > 8192 {
			ps.doneIdx = make(map[waitKey]uint64)
		}
		if len(ps.doneGid) > 8192 {
			ps.doneGid = make(map[uint64]uint64)
		}
	}
	ps.mu.Unlock()
	p.advanceRV(act.MV)
	return late
}

// applyActions installs a drained run of merged actions. Runs of
// remote entries coalesce into one labeled commit (one store
// transaction, one announce jump) — per-entry commits would pay one
// fsync each in Base mode and one lock round trip each everywhere.
// Own commits with a registered waiter commit through the waiting
// handle. Returns false when the store crashed.
func (p *Proxy) applyActions(acts []partition.Action) bool {
	if p.sched != nil {
		return p.applyActionsAsync(acts)
	}
	i := 0
	for i < len(acts) {
		act := acts[i]
		if w := p.takeWaiter(act); w != nil {
			if !p.applyOwn(act, w) {
				return false
			}
			i++
			continue
		}
		// Coalesce forward: everything until the next own-waiter entry.
		j := i
		merged := &core.Writeset{}
		applied := 0
		for j < len(acts) {
			a := acts[j]
			if p.hasWaiter(a) {
				break
			}
			if a.WS != nil {
				merged.Merge(a.WS)
				applied++
			}
			j++
		}
		if j == i {
			// A waiter registered between takeWaiter and hasWaiter;
			// retry this action through the waiter path.
			continue
		}
		from, to := acts[i].MV-1, acts[j-1].MV
		if !p.applyMergedRange(merged, from, to) {
			return false
		}
		for k := i; k < j; k++ {
			a := acts[k]
			if late := p.afterApply(a, false); late != nil {
				late.ch <- ownDone{mv: a.MV, viaHandle: false}
			}
			if a.WS != nil && a.Origin != p.cfg.ReplicaID {
				p.addStat(func(st *Stats) { st.RemoteApplied++ })
			}
		}
		i = j
	}
	return true
}

// applyActionsAsync hands the drained run to the parallel applier:
// each non-empty action becomes one scheduler entry (so disjoint
// merged commits install concurrently instead of single-file), runs
// of empty actions coalesce into hollow announce entries, and own
// commits with a registered waiter still commit through the waiting
// handle — after every previously submitted entry has published, so
// the handle's synchronous labeled commit cannot announce past
// installed-but-unpublished predecessors and discard them. The
// per-entry completion callback performs the merger's vector/waiter
// bookkeeping at publication time.
func (p *Proxy) applyActionsAsync(acts []partition.Action) bool {
	var batch []*applyEntry
	mkDone := func(run []partition.Action) func(bool) {
		return func(applied bool) {
			if !applied {
				return // abandoned; resync re-drives the merged stream
			}
			for _, a := range run {
				if late := p.afterApply(a, false); late != nil {
					late.ch <- ownDone{mv: a.MV, viaHandle: false}
				}
				if a.WS != nil && a.Origin != p.cfg.ReplicaID {
					p.addStat(func(st *Stats) { st.RemoteApplied++ })
				}
			}
		}
	}
	var hollowRun []partition.Action // actions of the trailing hollow entry
	for _, act := range acts {
		if w := p.takeWaiter(act); w != nil {
			p.sched.submit(batch)
			batch, hollowRun = nil, nil
			if !p.applyOwnAsync(act, w) {
				return false
			}
			continue
		}
		if act.WS == nil {
			// Coalesce consecutive hollow actions (fill no-ops) into one
			// announce entry; the merged versions are dense, so the run
			// is contiguous.
			if n := len(batch); n > 0 && batch[n-1].ws == nil && batch[n-1].to == act.MV-1 {
				hollowRun = append(hollowRun, act)
				batch[n-1].to = act.MV
				batch[n-1].done = mkDone(hollowRun)
				continue
			}
			hollowRun = []partition.Action{act}
			batch = append(batch, &applyEntry{from: act.MV - 1, to: act.MV, done: mkDone(hollowRun)})
			continue
		}
		hollowRun = nil
		batch = append(batch, &applyEntry{
			from: act.MV - 1, to: act.MV, ws: act.WS, done: mkDone([]partition.Action{act}),
		})
	}
	p.sched.submit(batch)
	return !p.sched.dead()
}

// applyOwnAsync waits for every submitted predecessor entry to publish
// before committing a waiting client transaction through its handle
// (see applyActionsAsync). The merger submits in merged order, so once
// act.MV-1 is announced no unpublished pending can exist below the
// commit's range.
func (p *Proxy) applyOwnAsync(act partition.Action, w *ownWait) bool {
	for {
		err := p.cfg.Store.WaitAnnounced(act.MV-1, p.cfg.ChunkWaitTimeout)
		if err == nil {
			return p.applyOwn(act, w)
		}
		if errors.Is(err, mvstore.ErrCrashed) {
			w.ch <- ownDone{mv: act.MV, viaHandle: false}
			return false
		}
		select {
		case <-p.stopCh:
			w.ch <- ownDone{mv: act.MV, viaHandle: false}
			return false
		default:
			// Like applyMergedRange, the merged stream is ground truth:
			// keep waiting (a resync or superseded drain will move the
			// cursor) until the store crashes or the proxy stops.
		}
	}
}

// applyMergedRange installs one coalesced writeset covering merged
// versions (from, to], retrying until it lands: the merged stream is
// the replica's ground truth and cannot be skipped. Only a store
// crash stops it.
func (p *Proxy) applyMergedRange(ws *core.Writeset, from, to uint64) bool {
	for {
		err := p.applyBatchWithRecovery(ws, from, to, false)
		if err == nil {
			return true
		}
		if errors.Is(err, mvstore.ErrCrashed) {
			return false
		}
		select {
		case <-p.stopCh:
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

// hasWaiter reports whether an own-commit waiter is registered for
// act (used while composing coalesced runs).
func (p *Proxy) hasWaiter(act partition.Action) bool {
	ps := p.part
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if act.GID != 0 {
		_, ok := ps.gidWaiters[act.GID]
		return ok
	}
	_, ok := ps.waiters[waitKey{act.Group, act.Index}]
	return ok
}

// applyOwn commits a waiting client transaction at its merged
// position, through its own handle when possible (no re-execution),
// falling back to apply-by-writeset when the handle was killed.
func (p *Proxy) applyOwn(act partition.Action, w *ownWait) bool {
	from, to := act.MV-1, act.MV
	viaHandle := true
	if err := w.tx.CommitLabeled(from, to); err != nil {
		viaHandle = false
		if !p.applyMergedRange(w.ws, from, to) {
			// Store crashed mid-commit; release the waiter so the
			// client unblocks (outcome resolves at recovery).
			w.ch <- ownDone{mv: act.MV, viaHandle: false}
			return false
		}
		p.addStat(func(st *Stats) { st.SoftRecoveries++ })
	}
	p.afterApply(act, true)
	w.ch <- ownDone{mv: act.MV, viaHandle: viaHandle}
	return true
}

// waitOwn blocks a committing client until the merger reaches its
// entry. Returns the merged commit version.
func (p *Proxy) waitOwn(t *Tx, register func() (uint64, bool, *ownWait)) (uint64, error) {
	mv, done, w := register()
	if done {
		t.inner.Abort() // the merger already installed the writeset
		return mv, nil
	}
	select {
	case d := <-w.ch:
		if !d.viaHandle {
			t.inner.Abort()
		}
		return d.mv, nil
	case <-p.stopCh:
		return 0, fmt.Errorf("%w: commit outcome unresolved at shutdown", ErrProxyClosed)
	case <-time.After(30 * time.Second):
		return 0, fmt.Errorf("proxy: merged apply of own commit timed out")
	}
}

// commitPartitioned is the partitioned-mode commit strategy.
func (p *Proxy) commitPartitioned(ctx context.Context, t *Tx, ws *core.Writeset) error {
	parts := p.part.topo.Map.Split(ws)
	if len(parts) == 1 {
		return p.commitSinglePartition(ctx, t, ws, parts[0].PID)
	}
	return p.commitCrossPartition(ctx, t, ws, parts)
}

// commitSinglePartition is the fast path: one certification round
// against the owning group, then wait for the entry's merged apply.
// ctx bounds the certification round trip; a cancellation mid-certify
// leaves the outcome unknown to the caller, and the merger installs
// the writeset from the group's stream if it did commit (the entry is
// addressed by (group, index), so no sequence hole results).
func (p *Proxy) commitSinglePartition(ctx context.Context, t *Tx, ws *core.Writeset, g int) error {
	ps := p.part
	ps.mu.Lock()
	frontier := ps.asm.Frontier(g)
	ps.mu.Unlock()
	resp, err := ps.topo.Groups[g].CertifyCtx(ctx, certifier.Request{
		Origin:         p.cfg.ReplicaID,
		StartVersion:   t.startVec[g],
		ReplicaVersion: frontier,
		WSBytes:        ws.Encode(nil),
		Deadline:       deadlineNano(ctx),
	})
	if err != nil {
		t.inner.Abort()
		return certError(err)
	}
	p.ingest(g, resp.Remote)
	if !resp.Committed {
		t.inner.Abort()
		p.addStat(func(st *Stats) { st.CertAborts++ })
		return ErrCertificationAbort
	}
	key := waitKey{g, resp.CommitVersion}
	mv, err := p.waitOwn(t, func() (uint64, bool, *ownWait) {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		if mv, ok := ps.doneIdx[key]; ok {
			delete(ps.doneIdx, key)
			return mv, true, nil
		}
		w := &ownWait{tx: t.inner, ws: ws, ch: make(chan ownDone, 1)}
		ps.waiters[key] = w
		// A registered waiter is a reason for the merger to advance
		// (it may be parked with nothing else to do).
		select {
		case ps.wake <- struct{}{}:
		default:
		}
		return 0, false, w
	})
	if err != nil {
		return err
	}
	t.commitVersion = mv
	p.addStat(func(st *Stats) { st.Commits++ })
	return nil
}

// commitCrossPartition runs the ordered two-phase protocol: prepare
// in every involved group in ascending partition order (the canonical
// lock order), then resolve-commit each; replicas apply the union of
// the parts atomically at the first commit marker's merged position.
func (p *Proxy) commitCrossPartition(ctx context.Context, t *Tx, ws *core.Writeset, parts []partition.Part) error {
	ps := p.part
	gid := uint64(p.cfg.ReplicaID)<<40 | (gidCounter.Add(1) & (1<<40 - 1))
	involved := make([]int, len(parts))
	for i, part := range parts {
		involved[i] = part.PID
	}

	// ctx is honored through phase 1 only: a cancellation while
	// preparing aborts the whole transaction (the abort decision is
	// delivered by the detached resolver, so no group's locks leak).
	// Once every prepare has acknowledged, the decision is commit and
	// the remaining work completes regardless of ctx.
	prepared := make([]int, 0, len(parts))
	for _, part := range parts {
		resp, err := ps.topo.Groups[part.PID].PrepareCtx(ctx, certifier.PrepareRequest{
			GID:          gid,
			Origin:       p.cfg.ReplicaID,
			StartVersion: t.startVec[part.PID],
			Involved:     involved,
			WSBytes:      part.WS.Encode(nil),
		})
		if err != nil || !resp.Prepared {
			// Abort the whole transaction. The failed group is included
			// in the resolve set: on a transport error its prepare may
			// have landed, and an abort marker for a never-prepared gid
			// is a harmless no-op.
			p.resolveDetached(gid, append(prepared, part.PID), false)
			t.inner.Abort()
			if err != nil {
				return fmt.Errorf("proxy: prepare in partition %d: %w", part.PID, certError(err))
			}
			p.addStat(func(st *Stats) { st.CertAborts++; st.CrossPartAborts++ })
			return ErrCertificationAbort
		}
		prepared = append(prepared, part.PID)
	}

	// Register the waiter before any marker can exist, then resolve.
	w := &ownWait{tx: t.inner, ws: ws, ch: make(chan ownDone, 1)}
	ps.mu.Lock()
	ps.gidWaiters[gid] = w
	ps.mu.Unlock()
	select {
	case ps.wake <- struct{}{}:
	default:
	}

	if !p.resolveAll(gid, prepared, true) {
		// Some group is unreachable; a detached resolver keeps
		// retrying (the prepares are durable — the decision must
		// reach every group or its locks stay held).
		p.resolveDetached(gid, prepared, true)
	}

	mv, err := p.waitOwn(t, func() (uint64, bool, *ownWait) {
		ps.mu.Lock()
		defer ps.mu.Unlock()
		if mv, ok := ps.doneGid[gid]; ok {
			delete(ps.doneGid, gid)
			delete(ps.gidWaiters, gid)
			return mv, true, nil
		}
		return 0, false, w
	})
	if err != nil {
		ps.mu.Lock()
		delete(ps.gidWaiters, gid)
		ps.mu.Unlock()
		return err
	}
	t.commitVersion = mv
	p.addStat(func(st *Stats) { st.Commits++; st.CrossPartCommits++ })
	return nil
}

// resolveAll sends the decision to each group in ascending order,
// reporting whether every group acknowledged it.
func (p *Proxy) resolveAll(gid uint64, pids []int, commit bool) bool {
	ok := true
	for _, pid := range pids {
		if _, err := p.part.topo.Groups[pid].Resolve(certifier.ResolveRequest{GID: gid, Commit: commit}); err != nil {
			ok = false
		}
	}
	return ok
}

// resolveDetached completes the decision protocol in the background:
// it retries until every group has the marker. It touches only
// certifier clients (never the store), so it is safe across a
// simulated replica crash; it stops when the decision landed
// everywhere or the proxy shuts down. On shutdown an unresolved
// decision leaves the prepared groups' locks held — later conflicting
// certifications abort until a restarted coordinator re-resolves,
// which is legal (aborts, never a safety violation).
func (p *Proxy) resolveDetached(gid uint64, pids []int, commit bool) {
	groups := p.part.topo.Groups
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		backoff := 5 * time.Millisecond
		pending := append([]int(nil), pids...)
		for len(pending) > 0 {
			var still []int
			for _, pid := range pending {
				if _, err := groups[pid].Resolve(certifier.ResolveRequest{GID: gid, Commit: commit}); err != nil {
					still = append(still, pid)
				}
			}
			pending = still
			if len(pending) == 0 {
				return
			}
			select {
			case <-p.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
		}
	}()
}

// pullOncePartitioned fetches every group's stream forward once.
func (p *Proxy) pullOncePartitioned() error {
	ps := p.part
	var firstErr error
	for g := range ps.topo.Groups {
		ps.mu.Lock()
		frontier := ps.asm.Frontier(g)
		ps.mu.Unlock()
		resp, err := ps.topo.Groups[g].Pull(certifier.PullRequest{
			Origin: p.cfg.ReplicaID, ReplicaVersion: frontier, IncludeOwn: true,
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		p.ingest(g, resp.Remote)
	}
	p.addStat(func(st *Stats) { st.StalenessPulls++ })
	return firstErr
}

// resyncPartitioned brings a recovered replica back: the merger
// replays every group's stream from index 1 (the store's labeled-
// commit gate turns already-covered versions into no-ops), so resync
// only has to pull the streams and wait until the merged cursor
// reaches the pre-crash base.
func (p *Proxy) resyncPartitioned() error {
	p.addStat(func(st *Stats) { st.Resyncs++ })
	if p.sched != nil {
		p.cfg.Store.CancelPendings() // see Resync
	}
	base := p.cfg.Store.AnnouncedVersion()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := p.pullOncePartitioned(); err != nil {
			return err
		}
		ps := p.part
		ps.mu.Lock()
		applied := ps.mergedApplied
		ps.mu.Unlock()
		if applied >= base {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("proxy: partitioned resync stuck at merged version %d of %d", applied, base)
		}
		select {
		case <-p.stopCh:
			return ErrProxyClosed
		case <-time.After(time.Millisecond):
		}
	}
}

// MergedApplied returns the merged-order cursor (partitioned mode).
func (p *Proxy) MergedApplied() uint64 {
	if p.part == nil {
		return 0
	}
	p.part.mu.Lock()
	defer p.part.mu.Unlock()
	return p.part.mergedApplied
}
