package proxy

// Dependency-tracked parallel applier. The serial apply discipline —
// one labeled commit at a time through the store's order semaphore —
// made the replica's apply path the freshness bottleneck once
// partitioned certification multiplied the commit rate. The scheduler
// converts it into a pipeline: labeled remote writesets are
// conflict-analyzed against the live window using stripe signatures
// (mvstore.StripeSig — key-set overlap summarized per store stripe),
// non-overlapping writesets are *installed* concurrently by a worker
// pool via CommitLabeledAsync, and the store publishes the installed
// versions strictly in global order. Readers never observe a torn or
// out-of-order snapshot: visibility is still gated by the announce
// semaphore; only the install work (locks, chain appends, WAL appends)
// runs in parallel.
//
// Dependency rule: entry B depends on entry A iff A was submitted
// before B and their stripe signatures intersect. B's install starts
// only after A *publishes* (not merely installs): update-installs
// merge the previous visible row columns and version chains must stay
// in sequence order, so a same-key successor must see its predecessor
// fully in the chain with its real sequence. Signature intersection
// over-approximates key overlap (hash collisions serialize harmlessly).
//
// Submissions must arrive in ascending version order — the response
// sequencer (classic mode) and the single merger goroutine
// (partitioned mode) both guarantee it — so "submitted before" and
// "earlier version" coincide and every dependency edge points
// backward in version order. Publication order is total regardless:
// the store's pending list publishes by from-version under the apply
// gate.

import (
	"errors"
	"sync"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/metrics"
	"tashkent/internal/mvstore"
)

// Entry lifecycle.
const (
	entryWaiting   = iota // in window, deps unresolved or no worker yet
	entryRunning          // a worker is installing it
	entryInstalled        // installed, awaiting its publication turn
	entryDone             // published / superseded / given up
)

// applyEntry is one labeled writeset in the scheduler's window,
// covering global versions (from, to].
type applyEntry struct {
	from, to uint64
	ws       *core.Writeset
	// waitFor delays the install until that version is announced
	// (artificial conflict, §5.2.1).
	waitFor uint64
	split   bool
	sig     mvstore.StripeSig
	deps    int // unpublished predecessors with intersecting signatures
	succs   []*applyEntry
	state   int
	start   time.Time
	// done, if set, runs after the entry resolves; applied reports
	// whether the replica state now covers the entry's range
	// (published or superseded). The partitioned merger uses it for
	// its vector/waiter bookkeeping.
	done func(applied bool)
}

// maxApplyWindow bounds the live window; submit blocks when full
// (backpressure toward the certifier stream rather than unbounded
// memory).
const maxApplyWindow = 4096

// applyScheduler owns the window and the worker pool.
type applyScheduler struct {
	p       *Proxy
	workers int

	mu        sync.Mutex
	cond      *sync.Cond
	window    []*applyEntry
	closed    bool
	storeDead bool

	running    int // workers mid-install
	submitted  int64
	windows    int64
	published  int64
	superseded int64
	gaveUp     int64

	parDist    metrics.Distribution // concurrent installers at each dispatch
	windowDist metrics.Distribution // entries per submitted window
	occupancy  metrics.Gauge        // live-window depth (peak vs maxApplyWindow)
	lag        *metrics.Latency     // submit → publish wall time

	wg sync.WaitGroup
}

func newApplyScheduler(p *Proxy, workers int) *applyScheduler {
	s := &applyScheduler{p: p, workers: workers, lag: metrics.NewLatency(0)}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// stop drains the worker pool. Entries still in the window are
// abandoned (the process is shutting down; durable state lives in the
// certifier log).
func (s *applyScheduler) stop() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// dead reports whether an install observed a crashed store.
func (s *applyScheduler) dead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeDead
}

// submit conflict-analyzes entries against the live window and queues
// them. Entries must be in ascending version order, and concurrent
// submitters must already be ordered against each other (sequencer /
// merger) — the analysis assumes every window entry precedes every new
// entry in version order.
func (s *applyScheduler) submit(entries []*applyEntry) {
	if len(entries) == 0 {
		return
	}
	store := s.p.cfg.Store
	s.mu.Lock()
	for _, e := range entries {
		for len(s.window) >= maxApplyWindow && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			if e.done != nil {
				e.done(false)
			}
			return
		}
		e.sig = store.Signature(e.ws)
		e.state = entryWaiting
		e.start = time.Now()
		if e.sig != 0 {
			for _, w := range s.window {
				if w.state != entryDone && w.sig.Intersects(e.sig) {
					w.succs = append(w.succs, e)
					e.deps++
				}
			}
		}
		s.window = append(s.window, e)
		s.occupancy.Inc()
		s.submitted++
	}
	s.windows++
	s.windowDist.Observe(int64(len(entries)))
	s.cond.Broadcast()
	s.mu.Unlock()
}

// worker picks the lowest-version ready entry (deps resolved) and
// installs it. The window is kept in submission = version order, so a
// front-to-back scan finds the oldest ready work first and publication
// chains drain oldest-first.
func (s *applyScheduler) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		var e *applyEntry
		for _, w := range s.window {
			if w.state == entryWaiting && w.deps == 0 {
				e = w
				break
			}
		}
		if e == nil {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		e.state = entryRunning
		s.running++
		s.parDist.Observe(int64(s.running))
		s.mu.Unlock()
		s.install(e)
		s.mu.Lock()
		s.running--
	}
}

// install runs one entry: honor its artificial-conflict wait, then
// install the writeset with the retry/kill discipline of the serial
// path (§8.1 soft recovery, §8.2 eager kills) — but commit through
// CommitLabeledAsync, so the entry's versions publish at their global
// turn while this worker moves on.
func (s *applyScheduler) install(e *applyEntry) {
	p := s.p
	if e.split {
		p.addStat(func(st *Stats) { st.ArtificialConflicts++ })
	}
	if e.waitFor > 0 {
		if err := p.cfg.Store.WaitAnnounced(e.waitFor, p.cfg.ChunkWaitTimeout); err != nil {
			// Predecessor never announced (crash/failover); give up —
			// resync re-applies from the certifier log.
			s.resolve(e, outcomeOf(err))
			return
		}
	}
	cb := func(oc mvstore.PendingOutcome) {
		if e.ws != nil && !e.ws.Empty() {
			p.markInFlight(e.ws, false)
		}
		s.resolve(e, oc)
	}
	if e.ws == nil || e.ws.Empty() {
		// Hollow range (certifier barrier / fill no-ops): nothing to
		// install, the announce chain just advances through it in turn.
		if err := p.cfg.Store.AnnounceAsync(e.from, e.to, cb); err != nil {
			s.resolve(e, mvstore.PendingCrashed)
		}
		return
	}
	p.markInFlight(e.ws, true)
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			p.addStat(func(st *Stats) { st.SoftRecoveries++ })
			// Let predecessors publish so conflicting locks drain.
			p.cfg.Store.WaitAnnounced(e.from, p.cfg.ChunkWaitTimeout)
		}
		p.killConflictingLocals(e.ws, 0)
		lastErr = s.installOnce(e, cb)
		if lastErr == nil {
			return // cb owns the rest (it may already have run)
		}
		if errors.Is(lastErr, mvstore.ErrCrashed) {
			break
		}
	}
	p.markInFlight(e.ws, false)
	s.resolve(e, outcomeOf(lastErr))
}

// installOnce is one install attempt. On success the commit is either
// pending publication or already resolved (superseded fast path) and
// cb has the rest; on error nothing was committed and the caller may
// retry.
func (s *applyScheduler) installOnce(e *applyEntry, cb func(mvstore.PendingOutcome)) error {
	p := s.p
	tx, err := p.cfg.Store.Begin()
	if err != nil {
		return err
	}
	p.markApplier(tx.ID(), true)
	defer p.markApplier(tx.ID(), false)
	if err := tx.ApplyWriteset(e.ws); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.CommitLabeledAsync(e.from, e.to, cb); err != nil {
		tx.Abort()
		return err
	}
	return nil
}

// outcomeOf maps an install failure to the terminal outcome recorded
// for the entry (0 = plain give-up).
func outcomeOf(err error) mvstore.PendingOutcome {
	if errors.Is(err, mvstore.ErrCrashed) {
		return mvstore.PendingCrashed
	}
	return 0
}

// resolve finishes an entry: record the outcome, release its
// successors (their installs may now start — the predecessor is
// published, superseded, or abandoned to resync), and drop it from the
// window. Runs from worker goroutines and from publication callbacks.
func (s *applyScheduler) resolve(e *applyEntry, oc mvstore.PendingOutcome) {
	applied := false
	s.mu.Lock()
	e.state = entryDone
	switch oc {
	case mvstore.PendingPublished:
		s.published++
		s.lag.Observe(time.Since(e.start))
		applied = true
	case mvstore.PendingSuperseded:
		// A catch-up applier carried the state past the range; it is
		// covered, just not by us.
		s.superseded++
		applied = true
	default:
		s.gaveUp++
		if oc == mvstore.PendingCrashed {
			s.storeDead = true
		}
	}
	for _, succ := range e.succs {
		succ.deps--
	}
	for i, w := range s.window {
		if w == e {
			s.window = append(s.window[:i], s.window[i+1:]...)
			s.occupancy.Dec()
			break
		}
	}
	done := e.done
	s.cond.Broadcast()
	s.mu.Unlock()
	if done != nil {
		done(applied)
	}
}

// submitChunks feeds buildChunks output into the scheduler.
func (s *applyScheduler) submitChunks(chunks []chunk) {
	entries := make([]*applyEntry, 0, len(chunks))
	for _, c := range chunks {
		entries = append(entries, &applyEntry{
			from: c.from, to: c.to, ws: c.ws, waitFor: c.waitFor, split: c.split,
		})
	}
	s.submit(entries)
}

// ApplyStats is a snapshot of the parallel applier, alongside the
// certifier's QueueStats in the observability surface.
type ApplyStats struct {
	// Workers is the configured pool size (0 = serial legacy path).
	Workers int
	// Entry outcomes.
	Submitted  int64
	Published  int64
	Superseded int64
	GaveUp     int64
	// Windows counts submit batches; WindowSize their entry counts.
	Windows    int64
	WindowSize metrics.DistSummary
	// Parallelism samples the number of concurrent installers at each
	// dispatch; its Max is the parallelism high-watermark achieved.
	Parallelism metrics.DistSummary
	// Pending is the store's installed-but-unpublished commit count
	// right now.
	Pending int
	// WindowHigh is the peak live-window depth observed — how close the
	// scheduler came to the maxApplyWindow backpressure bound.
	WindowHigh int64
	// Lag is the submit→publish wall time per entry; LagVersions the
	// current gap between the planning cursor and the announced
	// (visible) version.
	Lag         metrics.Summary
	LagVersions uint64
}

// ApplyStats returns the parallel-apply snapshot. With the scheduler
// disabled only the version lag is populated.
func (p *Proxy) ApplyStats() ApplyStats {
	var st ApplyStats
	ann := p.cfg.Store.AnnouncedVersion()
	p.mu.Lock()
	rv := p.rvPlanned
	p.mu.Unlock()
	if rv > ann {
		st.LagVersions = rv - ann
	}
	s := p.sched
	if s == nil {
		return st
	}
	s.mu.Lock()
	st.Workers = s.workers
	st.Submitted = s.submitted
	st.Published = s.published
	st.Superseded = s.superseded
	st.GaveUp = s.gaveUp
	st.Windows = s.windows
	s.mu.Unlock()
	st.WindowHigh = s.occupancy.High()
	st.WindowSize = s.windowDist.Summarize()
	st.Parallelism = s.parDist.Summarize()
	st.Lag = s.lag.Summarize()
	st.Pending = p.cfg.Store.PendingApplies()
	return st
}

// RemoteEntry is one labeled writeset fed directly into the apply
// path (harness experiments and tests).
type RemoteEntry struct {
	Version  uint64
	SafeBack uint64
	WS       *core.Writeset
}

// ApplyRemoteEntries applies labeled remote writesets (ascending
// versions) without a certification round trip; the applyscale
// experiment drives the apply path with it. With the parallel
// scheduler enabled the entries go through dependency analysis and
// the worker pool and the call returns once scheduled — wait on
// Store.WaitAnnounced for completion. Without it, each entry commits
// through the serial labeled path before the next starts (the
// serial-gate baseline).
func (p *Proxy) ApplyRemoteEntries(entries []RemoteEntry) error {
	if p.sched != nil {
		announced := p.cfg.Store.AnnouncedVersion()
		ents := make([]*applyEntry, 0, len(entries))
		var top uint64
		for _, e := range entries {
			ae := &applyEntry{from: e.Version - 1, to: e.Version, ws: e.WS}
			if e.SafeBack > announced {
				ae.waitFor = e.SafeBack
			}
			ents = append(ents, ae)
			if e.Version > top {
				top = e.Version
			}
		}
		p.sched.submit(ents)
		p.advanceRV(top)
		return nil
	}
	for _, e := range entries {
		if err := p.applyBatchWithRecovery(e.WS, e.Version-1, e.Version, false); err != nil {
			return err
		}
		p.advanceRV(e.Version)
	}
	return nil
}
