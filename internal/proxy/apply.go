package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/core"
	"tashkent/internal/mvstore"
)

// sequencer admits certifier responses in their per-replica sequence
// order: response seq k runs only after 1..k-1 have finished. The
// certifier assigns the numbers in its (serial) processing order, so
// this reconstructs the global order at the proxy even when transport
// reorders concurrent responses.
type sequencer struct {
	mu   sync.Mutex
	cond *sync.Cond
	// next is the sequence number admitted next; 0 means unanchored
	// (a freshly created, recovered, or epoch-reset proxy anchors to
	// the first response it sees).
	next uint64
	// gen counts epoch resets: a certifier leadership change restarts
	// the per-replica numbering, so waiters and cursor updates from the
	// old epoch must not touch the re-anchored cursor.
	gen uint64
	// epoch is the certifier leadership term whose counter numbers the
	// current sequence (0 until the first stamped response arrives).
	// It lives here, under mu, so epoch validation is atomic with
	// taking a sequence slot — an old-epoch response can never slip
	// past a check and queue itself into the new numbering.
	epoch uint64
	// active marks a holder between enter and exit. An epoch advance
	// must drain it before re-anchoring, or the new epoch's first
	// application would overlap the old epoch's in-flight one.
	active bool
}

func newSequencer() *sequencer {
	s := &sequencer{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// errStaleSeq reports a sequence number below the current cursor
// (possible only after a resync skipped it); the skipping resync
// already applied the state the response carried.
var errStaleSeq = errors.New("proxy: stale response sequence")

// errEpochReset reports a response numbered by a superseded leadership
// term. Unlike errStaleSeq nothing applied the remote writesets it
// carried, so the caller must resync before moving on.
var errEpochReset = errors.New("proxy: response from superseded sequence epoch")

// errSeqTimeout reports that a predecessor response never arrived.
var errSeqTimeout = errors.New("proxy: response sequence gap timeout")

// enter blocks until seq is the next to run within epoch's numbering,
// returning the generation token the caller must pass to exit/skipTo.
// A new leadership term restarts the certifier's per-replica counters,
// so an advancing epoch re-anchors the cursor and invalidates waiters
// from the old term; epoch 0 marks epoch-less responses (tests, legacy
// peers) that always join the current numbering. A timeout means a
// predecessor was lost (certifier failover); the caller resynchronizes.
func (s *sequencer) enter(epoch, seq uint64, timeout time.Duration) (uint64, error) {
	deadline := time.Now().Add(timeout)
	s.mu.Lock()
	defer s.mu.Unlock()
	for epoch != 0 && epoch != s.epoch {
		if epoch < s.epoch {
			return s.gen, errEpochReset
		}
		// Advancing epoch: drain the in-flight holder before
		// re-anchoring, so the old epoch's application finishes before
		// the new epoch's first one starts. Re-evaluate after every
		// wakeup — the epoch may have moved again while waiting.
		if s.active {
			if time.Now().After(deadline) {
				return s.gen, errSeqTimeout
			}
			go func() {
				time.Sleep(10 * time.Millisecond)
				s.cond.Broadcast()
			}()
			s.cond.Wait()
			continue
		}
		s.epoch = epoch
		s.gen++
		s.next = 0
		s.cond.Broadcast()
	}
	gen := s.gen
	if s.next == 0 {
		s.next = seq
	}
	for s.next != seq {
		if s.gen != gen {
			return gen, errEpochReset
		}
		if s.next > seq {
			return gen, errStaleSeq
		}
		if time.Now().After(deadline) {
			return gen, errSeqTimeout
		}
		// cond.Wait has no deadline; poke the condition periodically.
		go func() {
			time.Sleep(10 * time.Millisecond)
			s.cond.Broadcast()
		}()
		s.cond.Wait()
	}
	if s.gen != gen {
		return gen, errEpochReset
	}
	s.active = true
	return gen, nil
}

// exit releases the sequencer after seq's work is scheduled. gen must
// be the token enter returned; a stale generation only clears the
// holder flag without touching the re-anchored cursor.
func (s *sequencer) exit(gen, seq uint64) {
	s.mu.Lock()
	if s.gen == gen && s.next == seq {
		s.next = seq + 1
	}
	s.active = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// skipTo forces the cursor forward after a resync declared earlier
// sequence numbers lost. A stale generation is a no-op.
func (s *sequencer) skipTo(gen, seq uint64) {
	s.mu.Lock()
	if s.gen == gen && seq > s.next {
		s.next = seq
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// enterSeq validates the response's epoch and takes its slot in the
// per-replica sequence (atomically, inside the sequencer's lock).
func (p *Proxy) enterSeq(epoch, seq uint64) (uint64, error) {
	gen, err := p.seq.enter(epoch, seq, p.cfg.SeqTimeout)
	if ob := p.cfg.SeqObserver; ob != nil {
		outcome := "apply"
		switch {
		case errors.Is(err, errStaleSeq):
			outcome = "stale"
		case errors.Is(err, errEpochReset):
			outcome = "epoch-reset"
		case errors.Is(err, errSeqTimeout):
			outcome = "gap-timeout"
		}
		ob(epoch, seq, outcome)
	}
	return gen, err
}

// --- Serial strategy (Base and Tashkent-MW) ---

// commitSerial implements steps C4/C5 of §6.2 with the serial
// discipline: the grouped remote writesets commit first (one WAL
// flush in Base, an in-memory action in Tashkent-MW), then the local
// transaction commits (another flush in Base). Certification itself is
// concurrent across client sessions; only application is serialized,
// which is exactly what makes Base pay two unsharable fsyncs per
// update transaction.
func (p *Proxy) commitSerial(ctx context.Context, t *Tx, req certifier.Request) error {
	resp, err := p.certify(ctx, t, req)
	if err != nil {
		return err
	}
	gen, err := p.enterSeq(resp.SeqEpoch, resp.ReplicaSeq)
	if err != nil {
		p.handleSeqFailure(err, gen, resp.ReplicaSeq)
		// After a resync every remote writeset is applied; the local
		// transaction's fate follows the certifier decision below, but
		// its writes were certified against a version we have already
		// passed, so apply-by-writeset keeps state correct.
		if resp.Committed {
			p.applyLocalByWriteset(t, resp.CommitVersion)
			t.commitVersion = resp.CommitVersion
			return nil
		}
		t.inner.Abort()
		p.addStat(func(st *Stats) { st.CertAborts++ })
		return ErrCertificationAbort
	}
	defer p.seq.exit(gen, resp.ReplicaSeq)

	p.mu.Lock()
	basis := p.rvPlanned
	p.mu.Unlock()
	remotes, err := p.decodeRemotes(resp.Remote, basis)
	if err != nil {
		t.inner.Abort()
		return err
	}

	// Apply the grouped remote writesets in their own transaction.
	maxRemote := basis
	if len(remotes) > 0 {
		merged := &core.Writeset{}
		for _, r := range remotes {
			merged.Merge(r.ws)
			if r.version > maxRemote {
				maxRemote = r.version
			}
		}
		if err := p.applyBatchWithRecovery(merged, basis, maxRemote, false); err != nil {
			t.inner.Abort()
			return err
		}
		p.recordRemotes(remotes)
		p.addStat(func(st *Stats) {
			st.RemoteApplied += int64(len(remotes))
			st.RemoteChunks++
		})
	}

	if !resp.Committed {
		t.inner.Abort()
		p.advanceRV(maxRemote)
		p.addStat(func(st *Stats) { st.CertAborts++ })
		return ErrCertificationAbort
	}

	// Commit the local transaction at its global version.
	from := maxRemote
	if err := t.inner.CommitLabeled(from, resp.CommitVersion); err != nil {
		// Soft recovery (§8.1): the database refused the commit, but
		// the transaction is globally committed — re-apply its
		// writeset as a fresh transaction.
		p.addStat(func(st *Stats) { st.SoftRecoveries++ })
		if err := p.applyBatchWithRecovery(req.MustWriteset(), from, resp.CommitVersion, false); err != nil {
			return err
		}
	}
	p.advanceRV(resp.CommitVersion)
	t.commitVersion = resp.CommitVersion
	p.addStat(func(st *Stats) { st.Commits++ })
	return nil
}

// --- Ordered strategy (Tashkent-API) ---

// commitOrdered implements §5.2: remote writesets and the local commit
// are submitted to the database *concurrently*, each carrying its
// global version range; the database groups their commit records into
// shared fsyncs and the ordering semaphore announces them in global
// order. Artificial conflicts split the remote writesets into chunks
// that wait for the conflicting version to be announced first.
func (p *Proxy) commitOrdered(ctx context.Context, t *Tx, req certifier.Request) error {
	resp, err := p.certify(ctx, t, req)
	if err != nil {
		return err
	}
	gen, err := p.enterSeq(resp.SeqEpoch, resp.ReplicaSeq)
	if err != nil {
		p.handleSeqFailure(err, gen, resp.ReplicaSeq)
		if resp.Committed {
			p.applyLocalByWriteset(t, resp.CommitVersion)
			t.commitVersion = resp.CommitVersion
			return nil
		}
		t.inner.Abort()
		p.addStat(func(st *Stats) { st.CertAborts++ })
		return ErrCertificationAbort
	}

	p.mu.Lock()
	basis := p.rvPlanned
	p.mu.Unlock()
	remotes, err := p.decodeRemotes(resp.Remote, basis)
	if err != nil {
		p.seq.exit(gen, resp.ReplicaSeq)
		t.inner.Abort()
		return err
	}
	chunks := buildChunks(basis, p.cfg.Store.AnnouncedVersion(), remotes)

	// Advance the planning cursor and release the sequencer: the
	// actual disk work proceeds concurrently, ordered by the store's
	// announce semaphore.
	top := basis
	for _, c := range chunks {
		if c.to > top {
			top = c.to
		}
	}
	if resp.Committed && resp.CommitVersion > top {
		top = resp.CommitVersion
	}
	p.advanceRV(top)
	p.recordRemotes(remotes)
	if n := int64(len(remotes)); n > 0 {
		p.addStat(func(st *Stats) {
			st.RemoteApplied += n
			st.RemoteChunks += int64(len(chunks))
		})
	}
	if p.sched != nil {
		// Parallel applier: submit before releasing the sequencer, so
		// scheduler windows arrive in ascending version order (the
		// dependency analysis relies on it).
		p.sched.submitChunks(chunks)
		p.seq.exit(gen, resp.ReplicaSeq)
	} else {
		p.seq.exit(gen, resp.ReplicaSeq)
		// Launch chunk applications concurrently.
		for _, c := range chunks {
			c := c
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.applyChunk(c)
			}()
		}
	}

	if !resp.Committed {
		t.inner.Abort()
		p.addStat(func(st *Stats) { st.CertAborts++ })
		return ErrCertificationAbort
	}
	// The local commit: concurrent with the chunks, ordered by the
	// semaphore, groupable with everything in flight.
	if err := t.inner.CommitOrdered(resp.CommitVersion-1, resp.CommitVersion); err != nil {
		p.addStat(func(st *Stats) { st.SoftRecoveries++ })
		if err2 := p.applyBatchWithRecovery(req.MustWriteset(), resp.CommitVersion-1, resp.CommitVersion, true); err2 != nil {
			return fmt.Errorf("proxy: local commit failed (%v) and soft recovery failed: %w", err, err2)
		}
	}
	t.commitVersion = resp.CommitVersion
	p.addStat(func(st *Stats) { st.Commits++ })
	return nil
}

// chunk is one group of remote writesets applied as a single
// transaction covering global versions (From, To].
type chunk struct {
	from, to uint64
	ws       *core.Writeset
	// waitFor, when nonzero, is the version that must be announced
	// before this chunk may take its locks (artificial conflict,
	// §5.2.1).
	waitFor uint64
	split   bool // split caused by an artificial conflict (stats)
}

// buildChunks groups the remote writesets of one response. Writesets
// with consecutive versions and no unresolved conflicts share a chunk
// (one commit record, groupable); a version gap (caused by this
// replica's own in-flight commits) or an artificial conflict starts a
// new chunk. basis is the highest version already *scheduled* at this
// replica; announced is the highest version already *visible*. A
// writeset whose safe-back bound lies above announced must wait for
// the conflicting version to commit before taking locks (§5.2.1 —
// "the proxy delays submitting W45 until the conflicting transaction
// T43 commits").
func buildChunks(basis, announced uint64, remotes []appliedRemote) []chunk {
	var out []chunk
	var cur *chunk
	for i := range remotes {
		r := &remotes[i]
		conflict := r.safeBack > announced
		startNew := cur == nil || r.version != cur.to+1 || conflict
		if startNew {
			if cur != nil {
				out = append(out, *cur)
			}
			c := chunk{from: r.version - 1, to: r.version, ws: r.ws.Clone()}
			if conflict {
				c.waitFor = r.safeBack
				c.split = r.safeBack > basis // a true in-window artificial conflict
			}
			cur = &c
			continue
		}
		cur.ws.Merge(r.ws)
		cur.to = r.version
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}

// applyChunk applies one remote chunk with retries (soft recovery).
func (p *Proxy) applyChunk(c chunk) {
	if c.split {
		p.addStat(func(st *Stats) { st.ArtificialConflicts++ })
	}
	if c.waitFor > 0 {
		if err := p.cfg.Store.WaitAnnounced(c.waitFor, p.cfg.ChunkWaitTimeout); err != nil {
			// Predecessor never announced (crash path); give up — the
			// recovery machinery re-applies from the certifier log.
			return
		}
	}
	p.applyBatchWithRecovery(c.ws, c.from, c.to, true)
}

// applyBatchWithRecovery applies a merged writeset as one transaction,
// retrying transient failures (lock conflicts with doomed local
// transactions, database-side commit rejections) — the §8.1 soft
// recovery loop. ordered selects CommitOrdered vs CommitLabeled.
func (p *Proxy) applyBatchWithRecovery(ws *core.Writeset, from, to uint64, ordered bool) error {
	p.markInFlight(ws, true)
	defer p.markInFlight(ws, false)
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		if attempt > 0 {
			p.addStat(func(st *Stats) { st.SoftRecoveries++ })
			// Let predecessors finish so conflicting locks drain.
			p.cfg.Store.WaitAnnounced(from, p.cfg.ChunkWaitTimeout)
		}
		p.killConflictingLocals(ws, 0)
		lastErr = p.applyBatchOnce(ws, from, to, ordered)
		if lastErr == nil {
			return nil
		}
		if errors.Is(lastErr, mvstore.ErrCrashed) {
			return lastErr
		}
	}
	return fmt.Errorf("proxy: applying remote writesets (%d,%d]: %w", from, to, lastErr)
}

func (p *Proxy) applyBatchOnce(ws *core.Writeset, from, to uint64, ordered bool) error {
	if ws.Empty() {
		// A certifier barrier (no-op) version: nothing to install, but
		// the announce chain must still advance through it or every
		// later version would wait forever.
		if ordered {
			if err := p.cfg.Store.WaitAnnounced(from, p.cfg.ChunkWaitTimeout); err != nil {
				return err
			}
		}
		p.cfg.Store.SetAnnounced(to)
		return nil
	}
	tx, err := p.cfg.Store.Begin()
	if err != nil {
		return err
	}
	p.markApplier(tx.ID(), true)
	defer p.markApplier(tx.ID(), false)
	if err := tx.ApplyWriteset(ws); err != nil {
		tx.Abort()
		return err
	}
	if ordered {
		err = tx.CommitOrdered(from, to)
	} else {
		err = tx.CommitLabeled(from, to)
	}
	if err != nil {
		tx.Abort()
		return err
	}
	return nil
}

// applyLocalByWriteset commits a certified local transaction by
// re-applying its writeset (used on the degraded post-resync path
// where the original handle cannot follow the normal pipeline).
func (p *Proxy) applyLocalByWriteset(t *Tx, commitVersion uint64) {
	ws := t.inner.Writeset().Clone()
	t.inner.Abort()
	if p.applyOwnCommit(ws, commitVersion) {
		p.advanceRV(commitVersion)
		p.addStat(func(st *Stats) { st.Commits++ })
	}
}

// applyOwnCommit installs a certified local writeset on the degraded
// path (sequencer gap, stale slot, detached commit), reporting whether
// the replica's state now covers commitVersion. It first waits for the
// commit's predecessors to be applied: the labeled commit announces
// commitVersion, and announcing past versions this replica never
// installed would make every later resync skip them — a permanent
// hole. A missing predecessor is fetched by resync (which includes our
// own writesets); if the state already moved past commitVersion, the
// store's labeled-commit gate turns the apply into a no-op rather than
// regressing newer versions.
//
// On false the caller must NOT advance the planning cursor past
// commitVersion: leaving it behind is what makes the next staleness
// pull refetch the uncovered range and heal the gap.
func (p *Proxy) applyOwnCommit(ws *core.Writeset, commitVersion uint64) bool {
	for attempt := 0; attempt < 3; attempt++ {
		err := p.cfg.Store.WaitAnnounced(commitVersion-1, p.cfg.SeqTimeout)
		if err == nil {
			if p.applyBatchWithRecovery(ws, commitVersion-1, commitVersion, false) == nil {
				return true
			}
		} else if errors.Is(err, mvstore.ErrCrashed) {
			return false
		}
		// Predecessors lost with their responses (or the apply itself
		// failed): fetch the range from the certifier. The resync
		// includes our own writesets, so reaching commitVersion covers
		// this commit too.
		if p.Resync() == nil && p.cfg.Store.AnnouncedVersion() >= commitVersion {
			return true
		}
	}
	// Give up without applying: installing over missing predecessors
	// would announce past versions this replica does not hold, hiding
	// them from every future resync. The writeset is durable in the
	// certifier log, and with the planning cursor left below it the
	// background pulls refetch and heal the range.
	return false
}

// finishDetached resolves a certification response whose client
// abandoned the commit (context cancellation mid-round-trip): it takes
// the response's slot in the replica sequence, applies the grouped
// remote writesets, and — if the certifier committed the transaction —
// re-applies the local writeset from its encoded form, exactly like
// the soft-recovery path. Serial labeled application is used in every
// mode; this is the degraded path, correctness over pipelining.
func (p *Proxy) finishDetached(resp certifier.Response, ws *core.Writeset) {
	gen, err := p.enterSeq(resp.SeqEpoch, resp.ReplicaSeq)
	if err != nil {
		p.handleSeqFailure(err, gen, resp.ReplicaSeq)
		if resp.Committed {
			if p.applyOwnCommit(ws, resp.CommitVersion) {
				p.advanceRV(resp.CommitVersion)
				p.addStat(func(st *Stats) { st.Commits++ })
			}
		} else {
			p.addStat(func(st *Stats) { st.CertAborts++ })
		}
		return
	}
	defer p.seq.exit(gen, resp.ReplicaSeq)

	p.mu.Lock()
	basis := p.rvPlanned
	p.mu.Unlock()
	remotes, err := p.decodeRemotes(resp.Remote, basis)
	if err != nil {
		// Nobody observes a detached failure: resync (IncludeOwn) or
		// this replica permanently loses the response's writesets.
		p.Resync()
		return
	}
	maxRemote := basis
	if len(remotes) > 0 {
		merged := &core.Writeset{}
		for _, r := range remotes {
			merged.Merge(r.ws)
			if r.version > maxRemote {
				maxRemote = r.version
			}
		}
		if err := p.applyBatchWithRecovery(merged, basis, maxRemote, false); err != nil {
			p.Resync()
			return
		}
		p.recordRemotes(remotes)
		p.addStat(func(st *Stats) {
			st.RemoteApplied += int64(len(remotes))
			st.RemoteChunks++
		})
	}
	if !resp.Committed {
		p.advanceRV(maxRemote)
		p.addStat(func(st *Stats) { st.CertAborts++ })
		return
	}
	if err := p.applyBatchWithRecovery(ws, maxRemote, resp.CommitVersion, false); err != nil {
		p.Resync()
		return
	}
	p.advanceRV(resp.CommitVersion)
	p.addStat(func(st *Stats) { st.Commits++ })
}

// SetReplicaVersion initializes the planning cursor after recovery
// (the database state already covers versions up to v).
func (p *Proxy) SetReplicaVersion(v uint64) { p.advanceRV(v) }

// advanceRV raises the planning cursor.
func (p *Proxy) advanceRV(v uint64) {
	p.mu.Lock()
	if v > p.rvPlanned {
		p.rvPlanned = v
	}
	p.mu.Unlock()
}

func (p *Proxy) addStat(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// handleSeqFailure recovers from a broken response sequence (lost
// responses after certifier failover): declare the gap lost, pull
// everything from the certifier and apply it serially — always safe
// because writesets carry absolute values.
func (p *Proxy) handleSeqFailure(cause error, gen, seq uint64) {
	if errors.Is(cause, errStaleSeq) {
		return // slot skipped by a resync; that resync already applied the state
	}
	if errors.Is(cause, errEpochReset) {
		// The response's remote writesets belong to a superseded
		// numbering and nothing else will apply them: pull the gap from
		// the new leader before the caller applies its own writeset and
		// announces past the hole.
		p.Resync()
		return
	}
	p.seq.skipTo(gen, seq+1)
	p.Resync()
}

// Resync pulls all missing remote writesets and applies them serially,
// bringing the replica to the certifier's committed version. Used
// after crashes, failovers and sequence gaps.
//
// The catch-up basis is the store's *applied* watermark (the announce
// semaphore), not the planning cursor: after lost responses the
// planning cursor may sit above versions whose writesets never reached
// this replica — pulling from it would leave permanent holes. Entries
// the normal appliers did apply (or apply concurrently while this
// resync runs) are skipped by the store's labeled-commit gate, so
// overlapping with in-flight appliers is safe.
func (p *Proxy) Resync() error {
	if p.part != nil {
		return p.resyncPartitioned()
	}
	p.addStat(func(st *Stats) { st.Resyncs++ })
	if p.sched != nil {
		// Withdraw installed-but-unpublished commits first: stuck
		// pendings hold row locks without a timeout, and this serial
		// catch-up needs those rows. Their ranges lie above the
		// announce cursor, so the pull below re-fetches them.
		p.cfg.Store.CancelPendings()
	}
	basis := p.cfg.Store.AnnouncedVersion()
	resp, err := p.cfg.Cert.Pull(certifier.PullRequest{
		Origin:         p.cfg.ReplicaID,
		ReplicaVersion: basis,
		IncludeOwn:     true, // our own writesets were lost with the crash
	})
	if err != nil {
		return err
	}
	if resp.SystemVersion < basis {
		// A leader that knows less than we do — typically a freshly
		// restarted or just-elected node whose commit index has not
		// caught up with its log (it cannot finalize a previous term's
		// tail until an entry of its own term commits). Treating its
		// empty answer as success would declare the gap healed without
		// fetching anything; fail so the caller retries.
		return fmt.Errorf("proxy: resync answered by a certifier at version %d, behind our %d",
			resp.SystemVersion, basis)
	}
	remotes, err := p.decodeRemotes(resp.Remote, basis)
	if err != nil {
		return err
	}
	cur := basis
	for _, r := range remotes {
		if err := p.applyBatchWithRecovery(r.ws, cur, r.version, false); err != nil {
			return err
		}
		cur = r.version
		p.addStat(func(st *Stats) { st.RemoteApplied++ })
	}
	// The announce semaphore advanced with each applied entry; never
	// jump it past versions that were not applied here.
	p.advanceRV(cur)
	p.recordRemotes(remotes)
	return nil
}

// applyResponse is the sequenced application path shared by PullOnce.
func (p *Proxy) applyResponse(epoch, seq uint64, remote []certifier.RemoteWS) error {
	gen, err := p.enterSeq(epoch, seq)
	if err != nil {
		p.handleSeqFailure(err, gen, seq)
		return nil
	}
	defer p.seq.exit(gen, seq)
	p.mu.Lock()
	basis := p.rvPlanned
	p.mu.Unlock()
	remotes, err := p.decodeRemotes(remote, basis)
	if err != nil {
		return err
	}
	if len(remotes) == 0 {
		return nil
	}
	maxRemote := basis
	if p.cfg.Mode == TashkentAPI {
		chunks := buildChunks(basis, p.cfg.Store.AnnouncedVersion(), remotes)
		for _, c := range chunks {
			if c.to > maxRemote {
				maxRemote = c.to
			}
		}
		p.advanceRV(maxRemote)
		p.recordRemotes(remotes)
		if p.sched != nil {
			p.sched.submitChunks(chunks) // still inside the sequencer slot
			return nil
		}
		for _, c := range chunks {
			c := c
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.applyChunk(c)
			}()
		}
		return nil
	}
	merged := &core.Writeset{}
	for _, r := range remotes {
		merged.Merge(r.ws)
		if r.version > maxRemote {
			maxRemote = r.version
		}
	}
	if err := p.applyBatchWithRecovery(merged, basis, maxRemote, false); err != nil {
		return err
	}
	p.advanceRV(maxRemote)
	p.recordRemotes(remotes)
	p.addStat(func(st *Stats) { st.RemoteApplied += int64(len(remotes)); st.RemoteChunks++ })
	return nil
}
