// Package proxy implements the transparent middleware proxy that sits
// in front of each database replica (paper §6.2): it intercepts BEGIN
// and COMMIT, tracks the replica version, invokes certification, and
// applies remote writesets — in one of three commit strategies:
//
//   - Base: ordering in the middleware, durability in the database.
//     Remote-writeset batches and local commits are submitted
//     *serially*, each paying its own synchronous WAL flush — the
//     scalability bottleneck the paper identifies.
//   - Tashkent-MW: same serial submission, but the database runs with
//     synchronous writes disabled; durability lives in the certifier's
//     group-committed log. Replica commits are in-memory operations.
//   - Tashkent-API: the database keeps durability but the proxy uses
//     the extended COMMIT <seq> API, submitting remote batches and
//     local commits concurrently so the database groups their commit
//     records into shared fsyncs while announcing them in the exact
//     global order. Artificial conflicts between remote writesets
//     (§5.2.1) are detected via the certifier's safe-back annotations
//     and force partial serialization.
//
// The proxy also implements the paper's optimizations: local
// certification (§6.2), eager pre-certification for deadlock avoidance
// (§8.2), staleness bounding (§6.2), and soft recovery (§8.1).
package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/core"
	"tashkent/internal/mvstore"
	"tashkent/internal/partition"
)

// Mode selects the commit strategy.
type Mode int

// The three systems compared in the paper.
const (
	// Base separates ordering (middleware) from durability (database).
	Base Mode = iota + 1
	// TashkentMW unites them in the middleware (certifier log).
	TashkentMW
	// TashkentAPI unites them in the database (ordered commits).
	TashkentAPI
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case Base:
		return "base"
	case TashkentMW:
		return "tashMW"
	case TashkentAPI:
		return "tashAPI"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ErrCertificationAbort is returned to the client when certification
// (global or local) found a write-write conflict; the client may retry
// the whole transaction.
var ErrCertificationAbort = errors.New("proxy: transaction aborted by certification")

// ErrProxyClosed reports use of a closed proxy.
var ErrProxyClosed = errors.New("proxy: closed")

// ErrReadOnlyDegraded reports that the certifier tier is unreachable
// (its group breaker is open) and the replica has degraded to
// read-only service: snapshot reads keep being served at the last
// merged version, while update commits fail fast with this error
// instead of hanging for the certifier client's full retry budget.
// Errors carrying it also match certifier.ErrDegraded.
var ErrReadOnlyDegraded = errors.New("proxy: certifier unreachable, serving reads only at last merged version")

// certError wraps a certification failure, promoting a degraded
// certifier group into the typed read-only-degradation error.
func certError(err error) error {
	if errors.Is(err, certifier.ErrDegraded) {
		return fmt.Errorf("%w: %w", ErrReadOnlyDegraded, err)
	}
	return fmt.Errorf("proxy: certification: %w", err)
}

// deadlineNano converts ctx's deadline to the wire representation
// (UnixNano, 0 = none).
func deadlineNano(ctx context.Context) int64 {
	if d, ok := ctx.Deadline(); ok {
		return d.UnixNano()
	}
	return 0
}

// Stats is a snapshot of proxy activity.
type Stats struct {
	Commits             int64
	ReadOnlyCommits     int64
	CertAborts          int64 // certifier-decided aborts
	LocalCertAborts     int64 // aborts decided locally without a round trip
	RemoteApplied       int64 // remote writesets applied
	RemoteChunks        int64 // grouped remote transactions submitted
	ArtificialConflicts int64 // chunk splits forced by safe-back info
	EagerKills          int64 // local transactions killed to admit remote writesets
	SoftRecoveries      int64 // §8.1 soft-recovery rounds
	Resyncs             int64 // full pull-based resynchronizations
	StalenessPulls      int64
	CrossPartCommits    int64 // cross-partition transactions committed (partitioned mode)
	CrossPartAborts     int64 // cross-partition transactions aborted in prepare
}

// Config parameterizes a proxy.
type Config struct {
	Mode      Mode
	ReplicaID int
	Store     *mvstore.Store
	Cert      *certifier.Client
	// LocalCertification enables the proxy-side pre-check against
	// recently seen remote writesets.
	LocalCertification bool
	// EagerPreCert kills conflicting local transactions before
	// applying a remote writeset instead of relying on lock timeouts.
	EagerPreCert bool
	// StalenessBound, if nonzero, pulls remote writesets from the
	// certifier after this much idle time.
	StalenessBound time.Duration
	// SeqTimeout bounds how long a response waits for its turn in the
	// per-replica sequence before triggering a resync (0 = 5 s).
	SeqTimeout time.Duration
	// SeqObserver, if set, is told the outcome of every response-
	// sequence admission: "apply" (slot taken, state will be applied),
	// "stale" (already covered by a resync), "epoch-reset" (response
	// from a superseded leadership term) or "gap-timeout" (a
	// predecessor was lost; a resync follows). The chaos invariant
	// checker verifies per-origin sequencing from this stream.
	SeqObserver func(epoch, seq uint64, outcome string)
	// ChunkWaitTimeout bounds artificial-conflict waits (0 = 5 s).
	ChunkWaitTimeout time.Duration
	// ApplyWorkers, when > 1, enables the dependency-tracked parallel
	// applier (see schedule.go): labeled remote writesets are
	// conflict-analyzed per store stripe, installed concurrently by
	// this many workers, and published strictly in global order.
	// Effective in Tashkent-API and partitioned modes; Base and
	// Tashkent-MW keep the paper's serial apply discipline.
	ApplyWorkers int
	// Parts, when set, switches the proxy to partitioned certification
	// (see internal/partition): commits route by partition across the
	// topology's certifier groups, and Cert is ignored. Requires
	// EagerPreCert (the merger must be able to displace local
	// transactions holding locks it needs).
	Parts *partition.Topology
}

// Proxy is the per-replica replication middleware.
type Proxy struct {
	cfg Config

	mu         sync.Mutex
	rvPlanned  uint64 // highest global version scheduled for application
	lastRemote time.Time
	committing map[uint64]struct{} // store tx ids in their commit phase
	stats      Stats
	closed     bool

	seq *sequencer

	// proxyLog: recent remote writesets for local certification, plus
	// the items of remote writesets currently mid-application (for
	// eager pre-certification of local writes).
	logMu         sync.Mutex
	recent        []remoteRecord
	inFlightItems map[core.ItemID]int
	// applierTxs are the store transaction ids of in-flight remote/
	// catch-up appliers. Eager pre-certification must never pick one
	// as a kill victim: appliers install *committed* global state, and
	// two overlapping appliers (a pending chunk and a resync) killing
	// each other livelock until both exhaust their retries and drop
	// committed writesets. Appliers serialize on row locks and the
	// store's labeled-commit gate instead.
	applierTxs map[uint64]struct{}

	// part is the partitioned-certification state (nil in classic mode).
	part *partState

	// sched is the parallel applier (nil = serial legacy path).
	sched *applyScheduler

	stopCh chan struct{}
	wg     sync.WaitGroup
}

type remoteRecord struct {
	version uint64
	items   []core.ItemID
}

// maxRecent bounds the proxy log used for local certification.
const maxRecent = 4096

// New creates a proxy and starts its staleness-bounding loop.
func New(cfg Config) *Proxy {
	if cfg.SeqTimeout == 0 {
		cfg.SeqTimeout = 5 * time.Second
	}
	if cfg.ChunkWaitTimeout == 0 {
		cfg.ChunkWaitTimeout = 5 * time.Second
	}
	p := &Proxy{
		cfg:           cfg,
		seq:           newSequencer(),
		committing:    make(map[uint64]struct{}),
		inFlightItems: make(map[core.ItemID]int),
		applierTxs:    make(map[uint64]struct{}),
		lastRemote:    time.Now(),
		stopCh:        make(chan struct{}),
	}
	if cfg.ApplyWorkers > 1 && (cfg.Mode == TashkentAPI || cfg.Parts != nil) {
		p.sched = newApplyScheduler(p, cfg.ApplyWorkers)
	}
	if cfg.Parts != nil {
		p.part = newPartState(cfg.Parts)
		p.wg.Add(1)
		go p.mergerLoop()
	}
	if cfg.StalenessBound > 0 {
		p.wg.Add(1)
		go p.stalenessLoop()
	}
	return p
}

// Close stops background activity. The store is left to its owner.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stopCh)
	if p.sched != nil {
		p.sched.stop()
	}
	p.wg.Wait()
}

// Stats returns a snapshot of the proxy counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ReplicaVersion returns the highest global version scheduled at this
// replica.
func (p *Proxy) ReplicaVersion() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rvPlanned
}

// Tx is a client transaction handle mediated by the proxy.
type Tx struct {
	p     *Proxy
	inner *mvstore.Tx
	start uint64
	// observed is the announced version sampled *after* the snapshot
	// was taken: an upper bound on everything the snapshot can expose.
	// The conservative start label is what certification wants, but a
	// session's causal token must cover the snapshot's actual content —
	// a commit announced between the two samples is visible in the
	// snapshot yet above start.
	observed uint64
	done     bool
	// commitVersion is the transaction's position in the global commit
	// order, recorded on a successful commit. Read-only transactions
	// record their observed version: the causal token of a session that
	// only read must still cover everything the snapshot exposed.
	commitVersion uint64
	// startVec is the per-group start vector in partitioned mode: the
	// snapshot's conservative position in each group's version space.
	startVec []uint64
}

// SnapshotVersion returns the replica version the transaction's
// snapshot was labeled with at BEGIN.
func (t *Tx) SnapshotVersion() uint64 { return t.start }

// ObservedVersion returns the version ceiling of the transaction's
// snapshot — the announced version sampled just after the snapshot was
// taken. Sessions use it to advance their causal token on reads and
// aborts: it covers everything the snapshot exposed, at worst
// over-approximating (which only lengthens a later causal wait).
func (t *Tx) ObservedVersion() uint64 { return t.observed }

// CommitVersion returns the global version assigned to the
// transaction by certification (its snapshot version for read-only
// transactions); zero until Commit succeeds. Sessions use it as the
// causal token for read-your-writes routing.
func (t *Tx) CommitVersion() uint64 { return t.commitVersion }

// Begin intercepts BEGIN: the transaction receives the latest local
// snapshot, labeled with the replica version (sampled *before* the
// snapshot so the label is conservative, which is safe under GSI —
// paper §6.2 "Conservative assigning of versions").
func (p *Proxy) Begin() (*Tx, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrProxyClosed
	}
	p.mu.Unlock()
	var startVec []uint64
	if p.part != nil {
		// Sampled before the snapshot, like start: the vector advances
		// only after a merged version is announced, so each component is
		// a conservative label in its group's version space.
		startVec = p.startVecLocked()
	}
	start := p.cfg.Store.AnnouncedVersion()
	inner, err := p.cfg.Store.Begin()
	if err != nil {
		return nil, err
	}
	tx := &Tx{p: p, inner: inner, start: start, observed: p.cfg.Store.AnnouncedVersion(), startVec: startVec}
	if p.cfg.EagerPreCert {
		inner.SetWriteHook(p.preCertHook(inner))
	}
	return tx, nil
}

// preCertHook is the eager pre-certification write hook: each local
// write is checked against the remote writesets currently being
// applied; a conflict aborts the local write immediately (the remote
// writeset must win, §8.2).
func (p *Proxy) preCertHook(inner *mvstore.Tx) mvstore.WriteHook {
	return func(op core.WriteOp) error {
		if p.remoteInFlightConflicts(op.Item()) {
			return fmt.Errorf("%w: eager pre-certification against in-flight remote writeset", ErrCertificationAbort)
		}
		return nil
	}
}

// Read/write passthroughs.

// Read returns the row visible in the transaction snapshot. The map
// is a shared immutable row version (see mvstore.Tx.Read); callers
// must not modify it.
func (t *Tx) Read(table, key string) (map[string][]byte, bool, error) {
	return t.inner.Read(table, key)
}

// ReadCol returns one column.
func (t *Tx) ReadCol(table, key, col string) ([]byte, bool, error) {
	return t.inner.ReadCol(table, key, col)
}

// Insert writes a full row.
func (t *Tx) Insert(table, key string, cols map[string][]byte) error {
	return t.inner.Insert(table, key, cols)
}

// Update modifies columns.
func (t *Tx) Update(table, key string, cols map[string][]byte) error {
	return t.inner.Update(table, key, cols)
}

// Delete removes a row.
func (t *Tx) Delete(table, key string) error {
	return t.inner.Delete(table, key)
}

// Abort rolls back.
func (t *Tx) Abort() error {
	t.done = true
	return t.inner.Abort()
}

// Commit intercepts COMMIT with background context.
//
// Deprecated: use CommitCtx, which supports cancellation.
func (t *Tx) Commit() error { return t.CommitCtx(context.Background()) }

// CommitCtx intercepts COMMIT (paper §6.2 step C): read-only
// transactions commit immediately; update transactions go through
// certification and the mode's commit strategy.
//
// Cancellation semantics: ctx is honored before and during the
// certification round trip. If ctx expires while certification is in
// flight, CommitCtx aborts the local handle and returns ctx.Err(),
// but — as with any distributed commit — the certifier may still have
// committed the transaction; the proxy then finishes applying it in
// the background so the replica sequence stays intact, and the caller
// must treat the outcome as unknown. Once the certifier's decision has
// arrived the remaining local work completes regardless of ctx (it is
// bounded by the proxy's own timeouts).
func (t *Tx) CommitCtx(ctx context.Context) error {
	if t.done {
		return mvstore.ErrTxDone
	}
	t.done = true
	p := t.p
	if err := ctx.Err(); err != nil {
		t.inner.Abort()
		return err
	}
	ws := t.inner.Writeset()
	if ws.Empty() {
		if err := t.inner.Commit(); err != nil {
			return err
		}
		t.commitVersion = t.observed
		p.mu.Lock()
		p.stats.ReadOnlyCommits++
		p.mu.Unlock()
		return nil
	}

	if p.part != nil {
		// Partitioned mode: route by partition. Local certification and
		// the response sequencer do not apply — entries are addressed by
		// (group, index) and ordered by the deterministic merge.
		p.markCommitting(t.inner.ID(), true)
		defer p.markCommitting(t.inner.ID(), false)
		return p.commitPartitioned(ctx, t, ws)
	}

	// Local certification (§6.2): a conflict with an already-received
	// remote writeset aborts without bothering the certifier.
	if p.cfg.LocalCertification && p.localConflict(ws, t.start) {
		t.inner.Abort()
		p.mu.Lock()
		p.stats.LocalCertAborts++
		p.mu.Unlock()
		return fmt.Errorf("%w (local certification)", ErrCertificationAbort)
	}

	req := certifier.Request{
		Origin:         p.cfg.ReplicaID,
		StartVersion:   t.start,
		ReplicaVersion: p.ReplicaVersion(),
		WSBytes:        ws.Encode(nil),
		NeedSafeBack:   p.cfg.Mode == TashkentAPI,
		Deadline:       deadlineNano(ctx),
	}
	p.markCommitting(t.inner.ID(), true)
	defer p.markCommitting(t.inner.ID(), false)

	switch p.cfg.Mode {
	case Base, TashkentMW:
		return p.commitSerial(ctx, t, req)
	case TashkentAPI:
		return p.commitOrdered(ctx, t, req)
	default:
		t.inner.Abort()
		return fmt.Errorf("proxy: invalid mode %d", p.cfg.Mode)
	}
}

// certifyGrace is how far past the caller's deadline the detached
// certification RPC keeps trying to learn the real decision before
// giving up (the caller has already been answered with ctx.Err()).
const certifyGrace = 500 * time.Millisecond

// certify runs the certification round trip, honoring ctx. On
// cancellation the local handle is aborted and the eventual response —
// which may carry a commit decision — is resolved by a detached
// finisher so no sequence gap or lost writeset results.
func (p *Proxy) certify(ctx context.Context, t *Tx, req certifier.Request) (certifier.Response, error) {
	if ctx.Done() == nil {
		resp, err := p.cfg.Cert.Certify(req)
		if err != nil {
			t.inner.Abort()
			return resp, certError(err)
		}
		return resp, nil
	}
	// The RPC runs on a context of its own: an explicit caller cancel
	// must not kill the call mid-flight (the decision may exist and the
	// detached finisher needs it), but a caller deadline bounds it with
	// a small grace — the server drops the request at the deadline too,
	// so spinning out the client's full retry budget for a dead caller
	// would only occupy a failover slot.
	callCtx := context.Background()
	cancel := func() {}
	if d, ok := ctx.Deadline(); ok {
		callCtx, cancel = context.WithDeadline(context.Background(), d.Add(certifyGrace))
	}
	type outcome struct {
		resp certifier.Response
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer cancel()
		resp, err := p.cfg.Cert.CertifyCtx(callCtx, req)
		ch <- outcome{resp, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.inner.Abort()
			return o.resp, certError(o.err)
		}
		return o.resp, nil
	case <-ctx.Done():
		ws := req.MustWriteset()
		t.inner.Abort()
		// Register the finisher under p.mu so it cannot race Close's
		// wg.Wait (wg.Add concurrent with Wait is WaitGroup misuse).
		// After Close nobody may touch the store, so drop the decision.
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return certifier.Response{}, ctx.Err()
		}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			o := <-ch
			if o.err == nil {
				p.finishDetached(o.resp, ws)
			}
		}()
		return certifier.Response{}, ctx.Err()
	}
}

// markCommitting tracks transactions in their commit phase so eager
// pre-certification never kills a transaction that already certified.
func (p *Proxy) markCommitting(id uint64, on bool) {
	p.mu.Lock()
	if on {
		p.committing[id] = struct{}{}
	} else {
		delete(p.committing, id)
	}
	p.mu.Unlock()
}

// localConflict checks ws against remote writesets received with
// versions in (start, now]; finding one proves the certifier would
// abort.
func (p *Proxy) localConflict(ws *core.Writeset, start uint64) bool {
	items := make(map[core.ItemID]struct{}, len(ws.Ops))
	for i := range ws.Ops {
		items[ws.Ops[i].Item()] = struct{}{}
	}
	p.logMu.Lock()
	defer p.logMu.Unlock()
	for i := len(p.recent) - 1; i >= 0; i-- {
		rec := &p.recent[i]
		if rec.version <= start {
			break
		}
		for _, it := range rec.items {
			if _, hit := items[it]; hit {
				return true
			}
		}
	}
	return false
}

// recordRemotes adds applied remote writesets to the proxy log.
func (p *Proxy) recordRemotes(remotes []appliedRemote) {
	if len(remotes) == 0 {
		return
	}
	p.logMu.Lock()
	for _, r := range remotes {
		p.recent = append(p.recent, remoteRecord{version: r.version, items: r.ws.Items()})
	}
	if over := len(p.recent) - maxRecent; over > 0 {
		p.recent = append([]remoteRecord(nil), p.recent[over:]...)
	}
	p.logMu.Unlock()
	p.mu.Lock()
	p.lastRemote = time.Now()
	p.mu.Unlock()
}

type appliedRemote struct {
	version  uint64
	safeBack uint64
	ws       *core.Writeset
}

// decodeRemotes parses and filters the response's remote writesets to
// those above the replica's planned version.
func (p *Proxy) decodeRemotes(remote []certifier.RemoteWS, above uint64) ([]appliedRemote, error) {
	out := make([]appliedRemote, 0, len(remote))
	for _, r := range remote {
		if r.Version <= above {
			continue
		}
		ws, _, err := core.DecodeWriteset(r.WSBytes)
		if err != nil {
			return nil, fmt.Errorf("proxy: corrupt remote writeset v%d: %w", r.Version, err)
		}
		out = append(out, appliedRemote{version: r.Version, safeBack: r.SafeBack, ws: ws})
	}
	return out, nil
}

// remoteInFlightConflicts reports whether an item collides with a
// remote writeset currently being applied (set by the chunk/batch
// appliers).
func (p *Proxy) remoteInFlightConflicts(item core.ItemID) bool {
	p.logMu.Lock()
	defer p.logMu.Unlock()
	_, hit := p.inFlightItems[item]
	return hit
}

// markInFlight registers (or unregisters) the items of a remote
// writeset being applied.
func (p *Proxy) markInFlight(ws *core.Writeset, on bool) {
	items := ws.Items()
	p.logMu.Lock()
	for _, it := range items {
		if on {
			p.inFlightItems[it]++
		} else if n := p.inFlightItems[it]; n <= 1 {
			delete(p.inFlightItems, it)
		} else {
			p.inFlightItems[it] = n - 1
		}
	}
	p.logMu.Unlock()
}

// killConflictingLocals applies eager pre-certification from the
// remote side: local transactions holding locks that a remote writeset
// needs are killed so the remote writeset can proceed (§8.2 — "the
// proxy aborts the conflicting local update transaction, which allows
// the remote writeset to be executed"). A victim that turns out to be
// globally committed is re-applied from its writeset by the commit
// path's soft-recovery fallback, so killing is always safe.
func (p *Proxy) killConflictingLocals(ws *core.Writeset, applierTx uint64) {
	if !p.cfg.EagerPreCert {
		return
	}
	for _, id := range p.cfg.Store.ConflictingActiveTxns(ws, applierTx) {
		if p.isApplierTx(id) {
			continue // fellow appliers install committed state; never kill them
		}
		if p.cfg.Store.Kill(id) {
			p.addStat(func(st *Stats) { st.EagerKills++ })
		}
	}
}

// markApplier registers (or unregisters) an applier transaction id.
func (p *Proxy) markApplier(id uint64, on bool) {
	p.logMu.Lock()
	if on {
		p.applierTxs[id] = struct{}{}
	} else {
		delete(p.applierTxs, id)
	}
	p.logMu.Unlock()
}

// isApplierTx reports whether id belongs to an in-flight applier.
func (p *Proxy) isApplierTx(id uint64) bool {
	p.logMu.Lock()
	_, ok := p.applierTxs[id]
	p.logMu.Unlock()
	return ok
}

// stalenessLoop implements bounding staleness (§6.2): if the replica
// has not received remote writesets for the configured bound, pull
// them proactively.
func (p *Proxy) stalenessLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.cfg.StalenessBound)
	defer tick.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-tick.C:
		}
		p.mu.Lock()
		idle := time.Since(p.lastRemote)
		p.mu.Unlock()
		if idle < p.cfg.StalenessBound {
			continue
		}
		p.PullOnce()
	}
}

// PullOnce fetches and applies any missing writesets once. The pull
// includes this replica's own writesets: a pull covers versions above
// the replica's planned cursor — versions it provably does not have —
// and in that range "own" writesets exist only if their commit
// responses were lost (or the replica is rebuilding after a crash).
// Excluding them would let the merged apply announce past versions
// whose data never reached this replica, a permanent hole no later
// resync could see (the resync basis sits above it).
func (p *Proxy) PullOnce() error {
	if p.part != nil {
		return p.pullOncePartitioned()
	}
	resp, err := p.cfg.Cert.Pull(certifier.PullRequest{
		Origin:         p.cfg.ReplicaID,
		ReplicaVersion: p.ReplicaVersion(),
		NeedSafeBack:   p.cfg.Mode == TashkentAPI,
		IncludeOwn:     true,
	})
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.stats.StalenessPulls++
	p.mu.Unlock()
	return p.applyResponse(resp.SeqEpoch, resp.ReplicaSeq, resp.Remote)
}
