package proxy

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/mvstore"
	"tashkent/internal/simdisk"
	"tashkent/internal/wal"
)

// upEntry builds one single-key update RemoteEntry at version v.
func upEntry(v uint64, key string, cols ...core.ColUpdate) RemoteEntry {
	if len(cols) == 0 {
		cols = []core.ColUpdate{{Col: "v", Value: []byte(fmt.Sprintf("%d", v))}}
	}
	return RemoteEntry{Version: v, WS: &core.Writeset{Ops: []core.WriteOp{
		{Kind: core.OpUpdate, Table: "t", Key: key, Cols: cols},
	}}}
}

func TestParallelApplyDisjointParallelizes(t *testing.T) {
	// Disjoint-key writesets must install concurrently: with a slow
	// fsync the workers' WAL appends group into shared fsyncs, and the
	// parallelism high-watermark exceeds one. This is the mechanism
	// behind the applyscale speedup.
	logDisk := simdisk.New(simdisk.Profile{FsyncLatency: 2 * time.Millisecond}, 1)
	r := newRig(t, 1, TashkentAPI, func(i int, cfg *Config, scfg *mvstore.Config) {
		cfg.ApplyWorkers = 8
		scfg.LogDisk = logDisk
		scfg.WALMode = wal.SyncCommits
	})
	p := r.proxies[0]
	const n = 64
	entries := make([]RemoteEntry, 0, n)
	for v := uint64(1); v <= n; v++ {
		entries = append(entries, upEntry(v, fmt.Sprintf("k%03d", v)))
	}
	if err := p.ApplyRemoteEntries(entries); err != nil {
		t.Fatal(err)
	}
	if err := r.stores[0].WaitAnnounced(n, 10*time.Second); err != nil {
		t.Fatalf("WaitAnnounced(%d): %v", n, err)
	}
	for v := uint64(1); v <= n; v++ {
		if got, ok := readVal(t, p, "t", fmt.Sprintf("k%03d", v)); !ok || got != fmt.Sprintf("%d", v) {
			t.Fatalf("k%03d = %q, %v", v, got, ok)
		}
	}
	st := p.ApplyStats()
	if st.Published != n {
		t.Errorf("Published = %d, want %d (superseded %d, gaveUp %d)",
			st.Published, n, st.Superseded, st.GaveUp)
	}
	if st.Parallelism.Max < 2 {
		t.Errorf("Parallelism.Max = %d; disjoint installs never overlapped", st.Parallelism.Max)
	}
	if f := logDisk.Stats().Fsyncs; f >= n {
		t.Errorf("%d fsyncs for %d parallel installs; expected group commit", f, n)
	}
}

func TestParallelApplyOverlappingSerializes(t *testing.T) {
	// Same-key writesets form a dependency chain: each install must wait
	// for its predecessor's publication, because update-installs merge
	// the previously visible columns. Every version updates a different
	// column of one hot row; if the scheduler ever installed out of
	// order, the merge would drop a predecessor's column.
	r := newRig(t, 1, TashkentAPI, func(i int, cfg *Config, scfg *mvstore.Config) {
		cfg.ApplyWorkers = 8
	})
	p := r.proxies[0]
	const n = 16
	entries := make([]RemoteEntry, 0, n)
	for v := uint64(1); v <= n; v++ {
		entries = append(entries, upEntry(v, "hot",
			core.ColUpdate{Col: fmt.Sprintf("c%02d", v), Value: []byte(fmt.Sprintf("%d", v))}))
	}
	if err := p.ApplyRemoteEntries(entries); err != nil {
		t.Fatal(err)
	}
	if err := r.stores[0].WaitAnnounced(n, 10*time.Second); err != nil {
		t.Fatalf("WaitAnnounced(%d): %v", n, err)
	}
	tx, err := p.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	row, ok, err := tx.Read("t", "hot")
	if err != nil || !ok {
		t.Fatalf("Read(hot) = %v, %v", ok, err)
	}
	for v := uint64(1); v <= n; v++ {
		col := fmt.Sprintf("c%02d", v)
		if string(row[col]) != fmt.Sprintf("%d", v) {
			t.Errorf("column %s = %q; a same-key install ran before its predecessor published",
				col, row[col])
		}
	}
	if st := p.ApplyStats(); st.Published != n {
		t.Errorf("Published = %d, want %d", st.Published, n)
	}
}

func TestParallelApplyPublicationOrderTotal(t *testing.T) {
	// Under concurrent installs a reader must always see a version-
	// ordered prefix: if key v is visible, every key v' < v is too.
	// Mixed dependency structure (every third version hits a hot key)
	// exercises both parallel and chained publication paths.
	logDisk := simdisk.New(simdisk.Profile{FsyncLatency: 500 * time.Microsecond}, 1)
	r := newRig(t, 1, TashkentAPI, func(i int, cfg *Config, scfg *mvstore.Config) {
		cfg.ApplyWorkers = 8
		scfg.LogDisk = logDisk
		scfg.WALMode = wal.SyncCommits
	})
	p, store := r.proxies[0], r.stores[0]
	const n = 96
	entries := make([]RemoteEntry, 0, n)
	for v := uint64(1); v <= n; v++ {
		key := fmt.Sprintf("k%03d", v)
		e := upEntry(v, key)
		if v%3 == 0 {
			e.WS.Add(core.WriteOp{Kind: core.OpUpdate, Table: "t", Key: "hot",
				Cols: []core.ColUpdate{{Col: "v", Value: []byte(fmt.Sprintf("%d", v))}}})
		}
		entries = append(entries, e)
	}

	var stop atomic.Bool
	violation := make(chan string, 1)
	go func() {
		for !stop.Load() {
			tx, err := store.Begin()
			if err != nil {
				return
			}
			// Scan from the top: the highest visible version bounds what
			// the snapshot must contain below it.
			high := uint64(0)
			for v := uint64(n); v >= 1; v-- {
				if _, ok, _ := tx.ReadCol("t", fmt.Sprintf("k%03d", v), "v"); ok {
					high = v
					break
				}
			}
			for v := uint64(1); v < high; v++ {
				if _, ok, _ := tx.ReadCol("t", fmt.Sprintf("k%03d", v), "v"); !ok {
					select {
					case violation <- fmt.Sprintf("snapshot shows k%03d but not k%03d", high, v):
					default:
					}
					break
				}
			}
			tx.Abort()
		}
	}()

	if err := p.ApplyRemoteEntries(entries); err != nil {
		t.Fatal(err)
	}
	if err := store.WaitAnnounced(n, 10*time.Second); err != nil {
		t.Fatalf("WaitAnnounced(%d): %v", n, err)
	}
	stop.Store(true)
	select {
	case msg := <-violation:
		t.Fatal(msg)
	default:
	}
	if st := p.ApplyStats(); st.Published != n || st.GaveUp != 0 {
		t.Errorf("Published = %d GaveUp = %d, want %d/0", st.Published, st.GaveUp, n)
	}
}

func TestParallelApplyMatchesSerialState(t *testing.T) {
	// The parallel applier must reach exactly the serial path's final
	// state on a conflicted stream (same-key versions serialize through
	// dependency edges; disjoint ones commute via absolute values).
	r := newRig(t, 2, TashkentAPI, func(i int, cfg *Config, scfg *mvstore.Config) {
		if i == 0 {
			cfg.ApplyWorkers = 8
		}
	})
	const n = 150
	entries := make([]RemoteEntry, 0, n)
	for v := uint64(1); v <= n; v++ {
		entries = append(entries, upEntry(v, fmt.Sprintf("k%02d", (v*7)%30)))
	}
	for i, p := range r.proxies {
		if err := p.ApplyRemoteEntries(entries); err != nil {
			t.Fatalf("proxy %d: %v", i, err)
		}
		if err := r.stores[i].WaitAnnounced(n, 10*time.Second); err != nil {
			t.Fatalf("proxy %d WaitAnnounced: %v", i, err)
		}
	}
	if a, b := r.stores[0].Fingerprint(), r.stores[1].Fingerprint(); a != b {
		t.Fatalf("parallel fingerprint %08x != serial fingerprint %08x", a, b)
	}
}

func TestBuildChunksEdges(t *testing.T) {
	mk := func(v, safe uint64) appliedRemote {
		return appliedRemote{version: v, safeBack: safe,
			ws: &core.Writeset{Ops: []core.WriteOp{{Kind: core.OpUpdate, Table: "t", Key: fmt.Sprintf("k%d", v)}}}}
	}
	// Empty remotes: no chunks, nil or zero-length.
	if got := buildChunks(7, 7, []appliedRemote{}); len(got) != 0 {
		t.Errorf("empty remotes → %+v", got)
	}
	// basis == announced: a safe-back exactly at the shared cursor is
	// resolved (no wait); one past it both waits and counts as a split.
	chunks := buildChunks(5, 5, []appliedRemote{mk(6, 5)})
	if len(chunks) != 1 || chunks[0].waitFor != 0 || chunks[0].split {
		t.Errorf("safeBack==announced chunks = %+v", chunks)
	}
	chunks = buildChunks(5, 5, []appliedRemote{mk(6, 5), mk(7, 6)})
	if len(chunks) != 2 || chunks[1].waitFor != 6 || !chunks[1].split {
		t.Errorf("safeBack==announced+1 chunks = %+v", chunks)
	}
	// Gap-only stream: every version is isolated; each gets its own
	// single-version chunk with from = version-1.
	chunks = buildChunks(4, 4, []appliedRemote{mk(5, 0), mk(7, 0), mk(9, 0)})
	if len(chunks) != 3 {
		t.Fatalf("gap-only chunks = %+v", chunks)
	}
	for i, want := range []uint64{5, 7, 9} {
		if chunks[i].from != want-1 || chunks[i].to != want {
			t.Errorf("chunk %d = (%d,%d], want (%d,%d]", i, chunks[i].from, chunks[i].to, want-1, want)
		}
	}
	// Announced ahead of basis (catch-up overlap): a conflict above
	// basis but below announced is already resolved.
	chunks = buildChunks(4, 8, []appliedRemote{mk(9, 7)})
	if len(chunks) != 1 || chunks[0].waitFor != 0 || chunks[0].split {
		t.Errorf("announced-ahead chunks = %+v", chunks)
	}
}
