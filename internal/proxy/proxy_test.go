package proxy

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/core"
	"tashkent/internal/mvstore"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
	"tashkent/internal/wal"
)

// rig is a single-certifier test system with N replicas.
type rig struct {
	fabric  *transport.LocalFabric
	cert    *certifier.Server
	stores  []*mvstore.Store
	proxies []*Proxy
}

func newRig(t *testing.T, n int, mode Mode, mutate func(i int, cfg *Config, scfg *mvstore.Config)) *rig {
	t.Helper()
	r := &rig{fabric: transport.NewLocalFabric(0)}
	r.cert = certifier.New(certifier.Config{
		ID: 0, Peers: map[int]transport.Client{},
		ElectionTimeout: 20 * time.Millisecond, Seed: 1,
	})
	r.fabric.Serve("cert0", r.cert.Handle)
	r.cert.Start()
	t.Cleanup(r.cert.Stop)
	deadline := time.Now().Add(3 * time.Second)
	for !r.cert.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("no certifier leader")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < n; i++ {
		scfg := mvstore.Config{
			LockTimeout:  500 * time.Millisecond,
			OrderTimeout: 2 * time.Second,
		}
		if mode == TashkentMW {
			scfg.WALMode = wal.NoSync
		}
		pcfg := Config{
			Mode:               mode,
			ReplicaID:          i + 1,
			Cert:               certifier.NewClient([]transport.Client{r.fabric.Dial("cert0")}, 3*time.Second),
			LocalCertification: true,
			EagerPreCert:       true,
			SeqTimeout:         2 * time.Second,
			ChunkWaitTimeout:   2 * time.Second,
		}
		if mutate != nil {
			mutate(i, &pcfg, &scfg)
		}
		store := mvstore.Open(scfg)
		pcfg.Store = store
		p := New(pcfg)
		r.stores = append(r.stores, store)
		r.proxies = append(r.proxies, p)
		t.Cleanup(func() { p.Close(); store.Close() })
	}
	return r
}

func commitUpdate(t *testing.T, p *Proxy, table, key, val string) error {
	t.Helper()
	tx, err := p.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := tx.Update(table, key, map[string][]byte{"v": []byte(val)}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

func readVal(t *testing.T, p *Proxy, table, key string) (string, bool) {
	t.Helper()
	tx, err := p.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	defer tx.Abort()
	v, ok, err := tx.ReadCol(table, key, "v")
	if err != nil {
		t.Fatalf("ReadCol: %v", err)
	}
	return string(v), ok
}

func TestReadOnlyCommitStaysLocal(t *testing.T) {
	r := newRig(t, 1, Base, nil)
	p := r.proxies[0]
	tx, _ := p.Begin()
	tx.Read("t", "nothing")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().ReadOnlyCommits; got != 1 {
		t.Errorf("ReadOnlyCommits = %d", got)
	}
	if got := r.cert.Stats().Requests; got != 0 {
		t.Errorf("certifier saw %d requests for a read-only commit", got)
	}
}

func testCommitAndPropagate(t *testing.T, mode Mode) {
	r := newRig(t, 2, mode, nil)
	if err := commitUpdate(t, r.proxies[0], "t", "x", "hello"); err != nil {
		t.Fatalf("commit at replica 0: %v", err)
	}
	if v, ok := readVal(t, r.proxies[0], "t", "x"); !ok || v != "hello" {
		t.Errorf("local read = %q %v", v, ok)
	}
	// Replica 1 has not seen traffic; a pull brings it up to date.
	if err := r.proxies[1].PullOnce(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, r, 1)
	if v, ok := readVal(t, r.proxies[1], "t", "x"); !ok || v != "hello" {
		t.Errorf("propagated read = %q %v", v, ok)
	}
	if r.stores[0].Fingerprint() != r.stores[1].Fingerprint() {
		t.Error("replica states diverged")
	}
}

// waitConverged waits for every replica's announced version to reach v.
func waitConverged(t *testing.T, r *rig, v uint64) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, s := range r.stores {
			if s.AnnouncedVersion() < v {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("replicas failed to converge")
}

func TestCommitAndPropagateBase(t *testing.T) { testCommitAndPropagate(t, Base) }
func TestCommitAndPropagateMW(t *testing.T)   { testCommitAndPropagate(t, TashkentMW) }
func TestCommitAndPropagateAPI(t *testing.T)  { testCommitAndPropagate(t, TashkentAPI) }

func testConflictAborts(t *testing.T, mode Mode) {
	r := newRig(t, 2, mode, nil)
	// Seed the row.
	if err := commitUpdate(t, r.proxies[0], "t", "x", "0"); err != nil {
		t.Fatal(err)
	}
	r.proxies[1].PullOnce()
	waitConverged(t, r, 1)

	// Two concurrent snapshots writing the same key on different
	// replicas: exactly one commits.
	tx0, _ := r.proxies[0].Begin()
	tx1, _ := r.proxies[1].Begin()
	if err := tx0.Update("t", "x", map[string][]byte{"v": []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Update("t", "x", map[string][]byte{"v": []byte("b")}); err != nil {
		t.Fatal(err)
	}
	err0 := tx0.Commit()
	err1 := tx1.Commit()
	okCount := 0
	for _, err := range []error{err0, err1} {
		if err == nil {
			okCount++
		} else if !errors.Is(err, ErrCertificationAbort) {
			t.Errorf("unexpected commit error: %v", err)
		}
	}
	if okCount != 1 {
		t.Fatalf("%d commits succeeded, want exactly 1 (err0=%v err1=%v)", okCount, err0, err1)
	}
}

func TestConflictAbortsBase(t *testing.T) { testConflictAborts(t, Base) }
func TestConflictAbortsAPI(t *testing.T)  { testConflictAborts(t, TashkentAPI) }

func TestLocalCertificationAvoidsRoundTrip(t *testing.T) {
	r := newRig(t, 2, Base, nil)
	// Replica 1 starts a transaction against version 0.
	tx1, _ := r.proxies[1].Begin()
	if err := tx1.Update("t", "x", map[string][]byte{"v": []byte("stale")}); err != nil {
		t.Fatal(err)
	}
	// Replica 0 commits x; replica 1 pulls, so its proxy log now holds
	// the remote writeset for x.
	if err := commitUpdate(t, r.proxies[0], "t", "x", "fresh"); err != nil {
		t.Fatal(err)
	}
	if err := r.proxies[1].PullOnce(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, r, 1)
	reqsBefore := r.cert.Stats().Requests
	err := tx1.Commit()
	if !errors.Is(err, ErrCertificationAbort) {
		t.Fatalf("stale commit err = %v, want certification abort", err)
	}
	if r.cert.Stats().Requests != reqsBefore {
		t.Error("local certification still went to the certifier")
	}
	if r.proxies[1].Stats().LocalCertAborts != 1 {
		t.Errorf("LocalCertAborts = %d", r.proxies[1].Stats().LocalCertAborts)
	}
}

func TestEagerPreCertKillsConflictingLocal(t *testing.T) {
	r := newRig(t, 2, Base, nil)
	if err := commitUpdate(t, r.proxies[0], "t", "x", "0"); err != nil {
		t.Fatal(err)
	}
	r.proxies[1].PullOnce()
	waitConverged(t, r, 1)

	// A local transaction on replica 1 takes the write lock on x and
	// sits there (simulating a long transaction).
	blocker, _ := r.proxies[1].Begin()
	if err := blocker.Update("t", "x", map[string][]byte{"v": []byte("held")}); err != nil {
		t.Fatal(err)
	}
	// Replica 0 commits x again; replica 1 must apply the remote
	// writeset, which requires killing the blocker.
	if err := commitUpdate(t, r.proxies[0], "t", "x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := r.proxies[1].PullOnce(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, r, 2)
	if v, _ := readVal(t, r.proxies[1], "t", "x"); v != "1" {
		t.Errorf("replica 1 x = %q, want 1", v)
	}
	if r.proxies[1].Stats().EagerKills == 0 {
		t.Error("no eager kills recorded")
	}
	// The blocker is dead.
	if err := blocker.Commit(); err == nil {
		t.Error("killed blocker committed successfully")
	}
}

func TestMWNoReplicaFsyncs(t *testing.T) {
	var logDisks []*simdisk.Disk
	r := newRig(t, 1, TashkentMW, func(i int, _ *Config, scfg *mvstore.Config) {
		d := simdisk.New(simdisk.Profile{FsyncLatency: 5 * time.Millisecond}, 9)
		scfg.LogDisk = d
		logDisks = append(logDisks, d)
	})
	for i := 0; i < 5; i++ {
		if err := commitUpdate(t, r.proxies[0], "t", fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	if f := logDisks[0].Stats().Fsyncs; f != 0 {
		t.Errorf("Tashkent-MW replica issued %d fsyncs, want 0", f)
	}
}

func TestBasePaysSerialFsyncs(t *testing.T) {
	var logDisks []*simdisk.Disk
	r := newRig(t, 2, Base, func(i int, _ *Config, scfg *mvstore.Config) {
		d := simdisk.New(simdisk.Instant(), int64(i))
		scfg.LogDisk = d
		logDisks = append(logDisks, d)
	})
	// Prime replica 1 so it receives remote writesets with each commit.
	commitUpdate(t, r.proxies[0], "t", "seed", "0")
	r.proxies[1].PullOnce()
	waitConverged(t, r, 1)
	base := logDisks[1].Stats().Fsyncs
	const n = 4
	for i := 0; i < n; i++ {
		// Interleave: replica 0 commits (creating a remote writeset
		// for replica 1), then replica 1 commits (paying one fsync for
		// the remote batch + one for its own commit).
		if err := commitUpdate(t, r.proxies[0], "t", fmt.Sprintf("a%d", i), "v"); err != nil {
			t.Fatal(err)
		}
		if err := commitUpdate(t, r.proxies[1], "t", fmt.Sprintf("b%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	got := logDisks[1].Stats().Fsyncs - base
	if got < 2*n {
		t.Errorf("replica 1 paid %d fsyncs for %d commits, want >= %d (2 per local commit)", got, n, 2*n)
	}
}

func TestAPIGroupsCommitRecords(t *testing.T) {
	var logDisks []*simdisk.Disk
	r := newRig(t, 1, TashkentAPI, func(i int, _ *Config, scfg *mvstore.Config) {
		d := simdisk.New(simdisk.Profile{FsyncLatency: 4 * time.Millisecond}, 5)
		scfg.LogDisk = d
		logDisks = append(logDisks, d)
	})
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = commitUpdate(t, r.proxies[0], "t", fmt.Sprintf("k%d", i), "v")
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	s := logDisks[0].Stats()
	// A commit raced past by its own remote-applied copy supersedes and
	// skips its record (the covering catch-up chunk logged it instead,
	// possibly merged with neighbors), so discount those.
	sup := r.stores[0].Stats().SupersededCommits
	if s.RecordsSynced+sup < n {
		t.Errorf("RecordsSynced = %d (+%d superseded), want >= %d", s.RecordsSynced, sup, n)
	}
	if s.Fsyncs >= n {
		t.Errorf("%d fsyncs for %d concurrent ordered commits, want grouping", s.Fsyncs, n)
	}
}

func TestAPIArtificialConflictSerializes(t *testing.T) {
	r := newRig(t, 3, TashkentAPI, nil)
	// Replica 0 commits x twice in a row (second depends on first);
	// replica 2 receives both writesets in one response — an
	// artificial conflict forcing chunk serialization.
	if err := commitUpdate(t, r.proxies[0], "t", "x", "1"); err != nil {
		t.Fatal(err)
	}
	if err := commitUpdate(t, r.proxies[0], "t", "x", "2"); err != nil {
		t.Fatal(err)
	}
	if err := r.proxies[1].PullOnce(); err != nil {
		t.Fatal(err)
	}
	if err := r.proxies[2].PullOnce(); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, r, 2)
	if v, _ := readVal(t, r.proxies[2], "t", "x"); v != "2" {
		t.Errorf("replica 2 x = %q, want 2 (serialized in order)", v)
	}
	if r.stores[2].Fingerprint() != r.stores[0].Fingerprint() {
		t.Error("divergence after artificial conflict")
	}
}

func TestConcurrentLoadConverges(t *testing.T) {
	modes := []Mode{Base, TashkentMW, TashkentAPI}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig(t, 3, mode, nil)
			var wg sync.WaitGroup
			var commits, aborts int64
			var mu sync.Mutex
			for rep := 0; rep < 3; rep++ {
				for c := 0; c < 4; c++ {
					rep, c := rep, c
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < 15; i++ {
							// Mostly disjoint keys with occasional contention.
							key := fmt.Sprintf("r%dc%d-%d", rep, c, i)
							if i%5 == 0 {
								key = "hot"
							}
							err := commitUpdate(t, r.proxies[rep], "t", key, fmt.Sprintf("%d", i))
							mu.Lock()
							switch {
							case err == nil:
								commits++
							case errors.Is(err, ErrCertificationAbort),
								errors.Is(err, mvstore.ErrWriteConflict),
								errors.Is(err, mvstore.ErrTxKilled),
								errors.Is(err, mvstore.ErrDeadlock),
								errors.Is(err, mvstore.ErrLockTimeout):
								aborts++ // SI aborts: retryable by the client
							default:
								t.Errorf("commit error: %v", err)
							}
							mu.Unlock()
						}
					}()
				}
			}
			wg.Wait()
			if commits == 0 {
				t.Fatal("no commits succeeded")
			}
			// Bring all replicas fully up to date and compare state.
			final := uint64(commits)
			for _, p := range r.proxies {
				if err := p.PullOnce(); err != nil {
					t.Fatal(err)
				}
			}
			waitConverged(t, r, final)
			// Quiesce in-flight chunk goroutines.
			time.Sleep(50 * time.Millisecond)
			fp := r.stores[0].Fingerprint()
			for i, s := range r.stores[1:] {
				if s.Fingerprint() != fp {
					t.Errorf("replica %d diverged under %v load", i+1, mode)
				}
			}
			t.Logf("%v: commits=%d aborts=%d", mode, commits, aborts)
		})
	}
}

func TestStalenessBoundPullsAutomatically(t *testing.T) {
	r := newRig(t, 2, TashkentMW, func(i int, cfg *Config, _ *mvstore.Config) {
		if i == 1 {
			cfg.StalenessBound = 20 * time.Millisecond
		}
	})
	if err := commitUpdate(t, r.proxies[0], "t", "x", "fresh"); err != nil {
		t.Fatal(err)
	}
	// Replica 1 receives the update without any local traffic.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := readVal(t, r.proxies[1], "t", "x"); ok && v == "fresh" {
			if r.proxies[1].Stats().StalenessPulls == 0 {
				t.Error("no staleness pulls recorded")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("staleness bound never propagated the update")
}

func TestSoftRecoveryOnCommitRejection(t *testing.T) {
	r := newRig(t, 1, Base, nil)
	r.stores[0].FailNextCommit(1)
	if err := commitUpdate(t, r.proxies[0], "t", "x", "v1"); err != nil {
		t.Fatalf("commit with injected rejection should soft-recover: %v", err)
	}
	if v, ok := readVal(t, r.proxies[0], "t", "x"); !ok || v != "v1" {
		t.Errorf("after soft recovery x = %q %v", v, ok)
	}
	if r.proxies[0].Stats().SoftRecoveries == 0 {
		t.Error("soft recovery not recorded")
	}
}

func TestResyncAfterGap(t *testing.T) {
	r := newRig(t, 2, Base, nil)
	for i := 0; i < 3; i++ {
		if err := commitUpdate(t, r.proxies[0], "t", fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	// Resync replica 1 from scratch.
	if err := r.proxies[1].Resync(); err != nil {
		t.Fatal(err)
	}
	if r.stores[1].Fingerprint() != r.stores[0].Fingerprint() {
		t.Error("resync did not converge state")
	}
	if r.proxies[1].ReplicaVersion() != 3 {
		t.Errorf("replica version after resync = %d", r.proxies[1].ReplicaVersion())
	}
}

func TestBuildChunks(t *testing.T) {
	mk := func(v, safe uint64) appliedRemote {
		return appliedRemote{version: v, safeBack: safe,
			ws: &core.Writeset{Ops: []core.WriteOp{{Kind: core.OpUpdate, Table: "t", Key: fmt.Sprintf("k%d", v)}}}}
	}
	// Dense, no conflicts: one chunk.
	chunks := buildChunks(4, 4, []appliedRemote{mk(5, 0), mk(6, 2), mk(7, 4)})
	if len(chunks) != 1 || chunks[0].from != 4 || chunks[0].to != 7 || chunks[0].waitFor != 0 {
		t.Errorf("dense chunks = %+v", chunks)
	}
	// Gap at 7 splits.
	chunks = buildChunks(4, 4, []appliedRemote{mk(5, 0), mk(6, 0), mk(8, 0)})
	if len(chunks) != 2 || chunks[1].from != 7 || chunks[1].to != 8 {
		t.Errorf("gap chunks = %+v", chunks)
	}
	// Conflict at v7 (safeBack 6 > announced 4) splits with a wait.
	chunks = buildChunks(4, 4, []appliedRemote{mk(5, 0), mk(6, 0), mk(7, 6)})
	if len(chunks) != 2 || chunks[1].waitFor != 6 || !chunks[1].split {
		t.Errorf("conflict chunks = %+v", chunks)
	}
	// Conflict below announced needs no wait.
	chunks = buildChunks(6, 6, []appliedRemote{mk(7, 5), mk(8, 5)})
	if len(chunks) != 1 || chunks[0].waitFor != 0 {
		t.Errorf("resolved-conflict chunks = %+v", chunks)
	}
	if got := buildChunks(0, 0, nil); got != nil {
		t.Errorf("empty chunks = %v", got)
	}
}

func TestSequencerAnchorsToFirstResponse(t *testing.T) {
	s := newSequencer()
	// A fresh (or recovered) proxy anchors to whatever sequence number
	// it sees first — the certifier's numbering survives restarts.
	gen, err := s.enter(0, 41, time.Second)
	if err != nil {
		t.Fatalf("anchor enter: %v", err)
	}
	s.exit(gen, 41)
	gen, err = s.enter(0, 42, time.Second)
	if err != nil {
		t.Fatalf("post-anchor enter: %v", err)
	}
	s.exit(gen, 42)
}

func TestSequencerOrdersEntries(t *testing.T) {
	s := newSequencer()
	gen, err := s.enter(0, 1, time.Second) // anchor at 1
	if err != nil {
		t.Fatal(err)
	}
	s.exit(gen, 1)
	var mu sync.Mutex
	var order []uint64
	var wg sync.WaitGroup
	for _, seq := range []uint64{4, 2, 3} {
		seq := seq
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen, err := s.enter(0, seq, time.Second)
			if err != nil {
				t.Errorf("enter(%d): %v", seq, err)
				return
			}
			mu.Lock()
			order = append(order, seq)
			mu.Unlock()
			s.exit(gen, seq)
		}()
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Errorf("order = %v", order)
	}
}

func TestSequencerTimeoutAndStale(t *testing.T) {
	s := newSequencer()
	gen, err := s.enter(0, 1, time.Second) // anchor
	if err != nil {
		t.Fatal(err)
	}
	s.exit(gen, 1)
	if gen, err = s.enter(0, 5, 30*time.Millisecond); !errors.Is(err, errSeqTimeout) {
		t.Errorf("gap enter err = %v", err)
	}
	s.skipTo(gen, 6)
	if _, err := s.enter(0, 5, 30*time.Millisecond); !errors.Is(err, errStaleSeq) {
		t.Errorf("stale enter err = %v", err)
	}
	gen, err = s.enter(0, 6, time.Second)
	if err != nil {
		t.Errorf("enter(6): %v", err)
	}
	s.exit(gen, 6)
}

func TestSequencerEpochReset(t *testing.T) {
	s := newSequencer()
	gen, err := s.enter(1, 5, time.Second) // epoch 1 anchors at 5
	if err != nil {
		t.Fatal(err)
	}
	s.exit(gen, 5) // next=6

	// Park a waiter on the old epoch's numbering.
	done := make(chan error, 1)
	go func() {
		_, err := s.enter(1, 9, 5*time.Second)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)

	// A new leadership term re-anchors and invalidates the waiter.
	gen2, err := s.enter(2, 1, time.Second)
	if err != nil {
		t.Fatalf("new-epoch enter: %v", err)
	}
	s.exit(gen2, 1)
	if err := <-done; !errors.Is(err, errEpochReset) {
		t.Errorf("old-epoch waiter: want errEpochReset, got %v", err)
	}
	// A straggler stamped by the deposed leader is rejected outright —
	// even though its seq number would fit the new cursor.
	if _, err := s.enter(1, 2, time.Second); !errors.Is(err, errEpochReset) {
		t.Errorf("deposed-leader response: want errEpochReset, got %v", err)
	}
	// The new epoch keeps sequencing normally.
	gen2, err = s.enter(2, 2, time.Second)
	if err != nil {
		t.Fatalf("enter(epoch 2, seq 2): %v", err)
	}
	s.exit(gen2, 2)
}

func TestSequencerEpochResetDrainsActiveHolder(t *testing.T) {
	s := newSequencer()
	gen, err := s.enter(1, 5, time.Second) // holder mid-application
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	go func() {
		gen2, err := s.enter(2, 1, 5*time.Second)
		if err != nil {
			t.Errorf("new-epoch enter: %v", err)
		}
		close(entered)
		s.exit(gen2, 1)
	}()

	// The new epoch must not start applying while the old epoch's
	// holder is still inside its critical section.
	select {
	case <-entered:
		t.Fatal("new-epoch enter proceeded while old-epoch holder was active")
	case <-time.After(50 * time.Millisecond):
	}
	s.exit(gen, 5)
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("new-epoch enter did not proceed after the holder drained")
	}
}

func TestModeString(t *testing.T) {
	if Base.String() != "base" || TashkentMW.String() != "tashMW" || TashkentAPI.String() != "tashAPI" {
		t.Error("Mode.String mismatch")
	}
}
