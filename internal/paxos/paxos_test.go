package paxos

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
	"tashkent/internal/wal"
)

// group spins up n nodes on a local fabric.
type group struct {
	fabric  *LocalFabricAlias
	nodes   []*Node
	servers []transport.Server
	applyMu sync.Mutex
	applied map[int][]Entry
}

// LocalFabricAlias avoids an import cycle in the test helper name.
type LocalFabricAlias = transport.LocalFabric

func newGroup(t *testing.T, n int, mode wal.Mode) *group {
	t.Helper()
	g := &group{
		fabric:  transport.NewLocalFabric(0),
		applied: make(map[int][]Entry),
	}
	for i := 0; i < n; i++ {
		peers := make(map[int]transport.Client)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = g.fabric.Dial(fmt.Sprintf("cert%d", j))
			}
		}
		i := i
		node := NewNode(Config{
			ID:      i,
			Peers:   peers,
			Disk:    simdisk.New(simdisk.Instant(), int64(i)),
			WALMode: mode,
			Apply: func(e Entry) {
				g.applyMu.Lock()
				g.applied[i] = append(g.applied[i], e)
				g.applyMu.Unlock()
			},
			ElectionTimeout: 40 * time.Millisecond,
			Seed:            int64(i) + 1,
		})
		g.nodes = append(g.nodes, node)
		g.servers = append(g.servers, g.fabric.Serve(fmt.Sprintf("cert%d", i), node.HandleRPC))
	}
	for _, node := range g.nodes {
		node.Start()
	}
	t.Cleanup(func() {
		for _, node := range g.nodes {
			node.Stop()
		}
	})
	return g
}

// waitLeader blocks until some node is leader, returning its index.
func (g *group) waitLeader(t *testing.T) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for i, n := range g.nodes {
			if r, _ := n.Role(); r == Leader {
				return i
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no leader elected")
	return -1
}

func proposeAndWait(t *testing.T, n *Node, data string) uint64 {
	t.Helper()
	idx, term, err := n.Propose([]byte(data))
	if err != nil {
		t.Fatalf("Propose(%q): %v", data, err)
	}
	if err := n.WaitCommitted(idx, term); err != nil {
		t.Fatalf("WaitCommitted(%q): %v", data, err)
	}
	return idx
}

func TestSingleNodeCommits(t *testing.T) {
	g := newGroup(t, 1, wal.SyncCommits)
	ld := g.waitLeader(t)
	for i := 0; i < 5; i++ {
		idx := proposeAndWait(t, g.nodes[ld], fmt.Sprintf("e%d", i))
		if idx != uint64(i+1) {
			t.Fatalf("entry %d got index %d", i, idx)
		}
	}
	if g.nodes[ld].CommitIndex() != 5 {
		t.Errorf("CommitIndex = %d", g.nodes[ld].CommitIndex())
	}
}

func TestThreeNodeReplication(t *testing.T) {
	g := newGroup(t, 3, wal.SyncCommits)
	ld := g.waitLeader(t)
	for i := 0; i < 10; i++ {
		proposeAndWait(t, g.nodes[ld], fmt.Sprintf("e%d", i))
	}
	// All nodes converge on the committed log.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, n := range g.nodes {
			if n.CommitIndex() < 10 {
				ok = false
			}
		}
		if ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, n := range g.nodes {
		if n.CommitIndex() < 10 {
			t.Errorf("node %d commit = %d, want >= 10", i, n.CommitIndex())
		}
		if n.LogLength() < 10 {
			t.Errorf("node %d log = %d", i, n.LogLength())
		}
	}
	// Apply callbacks saw entries in order on every node. Delivery is
	// asynchronous (applyLoop runs behind the commit index), so wait
	// for it rather than sampling once.
	applyDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(applyDeadline) {
		g.applyMu.Lock()
		ok := true
		for i := range g.nodes {
			if len(g.applied[i]) < 10 {
				ok = false
			}
		}
		g.applyMu.Unlock()
		if ok {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	g.applyMu.Lock()
	defer g.applyMu.Unlock()
	for i := range g.nodes {
		got := g.applied[i]
		if len(got) < 10 {
			t.Errorf("node %d applied %d entries", i, len(got))
			continue
		}
		for j, e := range got[:10] {
			if e.Index != uint64(j+1) || string(e.Data) != fmt.Sprintf("e%d", j) {
				t.Errorf("node %d applied[%d] = %+v", i, j, e)
			}
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	g := newGroup(t, 3, wal.SyncCommits)
	ld := g.waitLeader(t)
	follower := (ld + 1) % 3
	if _, _, err := g.nodes[follower].Propose([]byte("x")); !errors.Is(err, ErrNotLeader) {
		t.Errorf("Propose on follower: %v, want ErrNotLeader", err)
	}
}

func TestProposeAtGuard(t *testing.T) {
	g := newGroup(t, 1, wal.SyncCommits)
	ld := g.waitLeader(t)
	n := g.nodes[ld]
	idx, term, err := n.ProposeAt(0, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.WaitCommitted(idx, term); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.ProposeAt(0, []byte("b")); !errors.Is(err, ErrLogChanged) {
		t.Errorf("stale ProposeAt: %v, want ErrLogChanged", err)
	}
	if _, _, err := n.ProposeAt(1, []byte("b")); err != nil {
		t.Errorf("fresh ProposeAt: %v", err)
	}
}

func TestLeaderFailover(t *testing.T) {
	g := newGroup(t, 3, wal.SyncCommits)
	ld := g.waitLeader(t)
	proposeAndWait(t, g.nodes[ld], "before")
	// Kill the leader (stop node + unregister its server).
	g.nodes[ld].Stop()
	g.servers[ld].Close()
	// A new leader emerges among the survivors.
	deadline := time.Now().Add(5 * time.Second)
	newLd := -1
	for time.Now().Before(deadline) && newLd == -1 {
		for i, n := range g.nodes {
			if i == ld {
				continue
			}
			if r, _ := n.Role(); r == Leader {
				newLd = i
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if newLd == -1 {
		t.Fatal("no new leader after failover")
	}
	// The committed entry survives and progress continues.
	idx := proposeAndWait(t, g.nodes[newLd], "after")
	if idx != 2 {
		t.Errorf("post-failover entry at index %d, want 2 (entry 'before' must survive)", idx)
	}
}

func TestRecoveryFromWALImage(t *testing.T) {
	g := newGroup(t, 3, wal.SyncCommits)
	ld := g.waitLeader(t)
	for i := 0; i < 5; i++ {
		proposeAndWait(t, g.nodes[ld], fmt.Sprintf("e%d", i))
	}
	// Crash a follower, recover a fresh node from its WAL image.
	// Commit only waits for a majority, so the victim may still lag the
	// last entry; wait until its *durable* image holds all 5 entries
	// (the in-memory log runs ahead of the stable WAL prefix).
	victim := (ld + 1) % 3
	waitDeadline := time.Now().Add(2 * time.Second)
	var img []byte
	for time.Now().Before(waitDeadline) {
		img = g.nodes[victim].WALImage()
		recs, err := wal.Scan(img)
		if err != nil {
			t.Fatal(err)
		}
		entries := 0
		for _, rec := range recs {
			if len(rec) > 0 && rec[0] == recEntry {
				entries++
			}
		}
		if entries >= 5 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	g.nodes[victim].Stop()
	g.servers[victim].Close()

	peers := make(map[int]transport.Client)
	for j := range g.nodes {
		if j != victim {
			peers[j] = g.fabric.Dial(fmt.Sprintf("cert%d", j))
		}
	}
	revived := NewNode(Config{
		ID: victim, Peers: peers,
		Disk:            simdisk.New(simdisk.Instant(), 99),
		ElectionTimeout: 40 * time.Millisecond,
		Seed:            99,
	})
	if err := revived.RestoreFromImage(img); err != nil {
		t.Fatal(err)
	}
	if revived.LogLength() < 5 {
		t.Errorf("restored log length %d, want >= 5", revived.LogLength())
	}
	g.fabric.Serve(fmt.Sprintf("cert%d", victim), revived.HandleRPC)
	revived.Start()
	defer revived.Stop()

	// It catches up and follows new commits.
	proposeAndWait(t, g.nodes[ld], "post-recovery")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && revived.CommitIndex() < 6 {
		time.Sleep(2 * time.Millisecond)
	}
	if revived.CommitIndex() < 6 {
		t.Errorf("revived commit = %d, want >= 6", revived.CommitIndex())
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	n := NewNode(Config{ID: 0})
	defer n.Stop()
	if err := n.RestoreFromImage([]byte{1, 2, 3}); err == nil {
		// A 3-byte image is a torn header: wal.Scan yields no records,
		// so this actually succeeds with an empty log. That is correct
		// crash semantics; only structurally bad records must error.
		if n.LogLength() != 0 {
			t.Error("garbage image produced log entries")
		}
	}
}

func TestStateTransferFetch(t *testing.T) {
	g := newGroup(t, 3, wal.SyncCommits)
	ld := g.waitLeader(t)
	for i := 0; i < 8; i++ {
		proposeAndWait(t, g.nodes[ld], fmt.Sprintf("e%d", i))
	}
	client := g.fabric.Dial(fmt.Sprintf("cert%d", ld))
	entries, commit, err := Fetch(client, 3)
	if err != nil {
		t.Fatal(err)
	}
	if commit < 8 {
		t.Errorf("fetch commit = %d", commit)
	}
	if len(entries) < 6 || entries[0].Index != 3 {
		t.Errorf("fetched %d entries starting at %d", len(entries), entries[0].Index)
	}
}

func TestMinorityCannotCommit(t *testing.T) {
	g := newGroup(t, 3, wal.SyncCommits)
	ld := g.waitLeader(t)
	// Stop both followers: leader alone must not commit new entries.
	for i := range g.nodes {
		if i != ld {
			g.nodes[i].Stop()
			g.servers[i].Close()
		}
	}
	idx, term, err := g.nodes[ld].Propose([]byte("orphan"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.nodes[ld].WaitCommitted(idx, term) }()
	select {
	case err := <-done:
		// Check-quorum: the isolated leader steps down and releases
		// the waiter with ErrDeposed instead of committing (or
		// blocking the caller forever).
		if err == nil {
			t.Fatal("minority leader committed")
		}
		if !errors.Is(err, ErrDeposed) {
			t.Fatalf("waiter released with %v; want ErrDeposed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("minority leader never stepped down; proposal still blocked")
	}
	if g.nodes[ld].CommitIndex() >= idx {
		t.Error("commit index advanced without majority")
	}
}

func TestGroupCommitAcrossProposals(t *testing.T) {
	// Concurrent proposals at the leader must share leader-disk fsyncs.
	disk := simdisk.New(simdisk.Profile{FsyncLatency: 3 * time.Millisecond}, 7)
	fabric := transport.NewLocalFabric(0)
	n := NewNode(Config{
		ID: 0, Peers: map[int]transport.Client{},
		Disk:            disk,
		ElectionTimeout: 30 * time.Millisecond,
		Seed:            1,
	})
	fabric.Serve("cert0", n.HandleRPC)
	n.Start()
	defer n.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if r, _ := n.Role(); r == Leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(2 * time.Millisecond)
	}
	const k = 32
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx, term, err := n.Propose([]byte{byte(i)})
			if err != nil {
				t.Errorf("propose %d: %v", i, err)
				return
			}
			if err := n.WaitCommitted(idx, term); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	// Allow a couple extra fsyncs for meta records.
	if f := disk.Stats().Fsyncs; f > k/2+4 {
		t.Errorf("%d fsyncs for %d concurrent proposals; want grouping", f, k)
	}
}

func TestProposeBatchAtReservesConsecutiveIndices(t *testing.T) {
	g := newGroup(t, 1, wal.SyncCommits)
	ld := g.waitLeader(t)
	n := g.nodes[ld]
	datas := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	first, term, err := n.ProposeBatchAt(0, datas)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first index = %d, want 1", first)
	}
	// One barrier on the last index covers the whole batch.
	if err := n.WaitCommitted(first+2, term); err != nil {
		t.Fatal(err)
	}
	if n.CommitIndex() != 3 || n.LogLength() != 3 {
		t.Errorf("commit=%d log=%d, want 3/3", n.CommitIndex(), n.LogLength())
	}
	_, _, entries := n.SnapshotLog()
	for i, e := range entries {
		if e.Index != uint64(i+1) || string(e.Data) != string(datas[i]) {
			t.Errorf("entry %d = %+v", i, e)
		}
	}
	// The optimistic guard still protects derived state.
	if _, _, err := n.ProposeBatchAt(0, datas); !errors.Is(err, ErrLogChanged) {
		t.Errorf("stale batch: %v, want ErrLogChanged", err)
	}
	if _, _, err := n.ProposeBatchAt(3, nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestProposeBatchSharesFsyncs(t *testing.T) {
	// A batched proposal must cost one entry fsync at the leader and
	// one per follower — not one per entry.
	fabric := transport.NewLocalFabric(0)
	var disks []*simdisk.Disk
	var nodes []*Node
	const nN = 3
	for i := 0; i < nN; i++ {
		peers := make(map[int]transport.Client)
		for j := 0; j < nN; j++ {
			if j != i {
				peers[j] = fabric.Dial(fmt.Sprintf("cert%d", j))
			}
		}
		d := simdisk.New(simdisk.Profile{FsyncLatency: 2 * time.Millisecond}, int64(i))
		disks = append(disks, d)
		n := NewNode(Config{
			ID: i, Peers: peers, Disk: d,
			ElectionTimeout: 40 * time.Millisecond,
			Seed:            int64(i) + 1,
		})
		nodes = append(nodes, n)
		fabric.Serve(fmt.Sprintf("cert%d", i), n.HandleRPC)
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	var leader *Node
	deadline := time.Now().Add(5 * time.Second)
	for leader == nil && time.Now().Before(deadline) {
		for _, n := range nodes {
			if r, _ := n.Role(); r == Leader {
				leader = n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader")
	}

	var before [nN]int64
	for i, d := range disks {
		before[i] = d.Stats().Fsyncs
	}
	const k = 24
	datas := make([][]byte, k)
	for i := range datas {
		datas[i] = []byte{byte(i)}
	}
	first, term, err := leader.ProposeBatchAt(0, datas)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.WaitCommitted(first+k-1, term); err != nil {
		t.Fatal(err)
	}
	// Let the slow follower finish persisting its round too.
	waitDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(waitDeadline) {
		all := true
		for _, n := range nodes {
			if n.LogLength() < k {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, d := range disks {
		// Heartbeat-era meta records are possible but rare; the k
		// entries themselves must share fsyncs rather than pay k.
		if delta := d.Stats().Fsyncs - before[i]; delta > 4 {
			t.Errorf("node %d: %d fsyncs for one %d-entry batch", i, delta, k)
		}
	}
}

func TestConcurrentProposalsKeepWALImageOrdered(t *testing.T) {
	// Each proposal persists from its own goroutine; the persist chain
	// must keep the WAL image in index order or the node cannot recover
	// from its own crash image.
	disk := simdisk.New(simdisk.Profile{FsyncLatency: 500 * time.Microsecond}, 11)
	fabric := transport.NewLocalFabric(0)
	n := NewNode(Config{
		ID: 0, Peers: map[int]transport.Client{},
		Disk:            disk,
		ElectionTimeout: 30 * time.Millisecond,
		Seed:            1,
	})
	fabric.Serve("cert0", n.HandleRPC)
	n.Start()
	defer n.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if r, _ := n.Role(); r == Leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(2 * time.Millisecond)
	}
	const k = 64
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			idx, term, err := n.Propose([]byte{byte(i)})
			if err != nil {
				t.Errorf("propose %d: %v", i, err)
				return
			}
			if err := n.WaitCommitted(idx, term); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	revived := NewNode(Config{ID: 1, Disk: simdisk.New(simdisk.Instant(), 12)})
	defer revived.Stop()
	if err := revived.RestoreFromImage(n.WALImage()); err != nil {
		t.Fatalf("crash image does not restore: %v", err)
	}
	if got := revived.LogLength(); got != k {
		t.Errorf("restored log length %d, want %d", got, k)
	}
}

func TestRoleString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Error("Role.String mismatch")
	}
	if Role(9).String() == "" {
		t.Error("unknown role should render")
	}
}

func TestStopIdempotent(t *testing.T) {
	n := NewNode(Config{ID: 0})
	n.Start()
	n.Stop()
	n.Stop()
	if _, _, err := n.Propose([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Errorf("Propose after stop: %v", err)
	}
}
