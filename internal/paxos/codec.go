package paxos

// Binary wire codecs for the replication hot path. Append rounds carry
// every certified writeset to every backup — gob's per-message type
// descriptor plus per-entry field names cost more than a small entry's
// payload — so appendArgs/appendReply and the recovery fetch pair get
// a fixed-layout binary form (transport.BinaryMessage). Vote traffic
// is a handful of messages per election and stays on the gob fallback,
// as do WAL records (a separate durable format, deliberately
// untouched).

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tashkent/internal/transport"
)

var (
	_ transport.BinaryMessage = (*appendArgs)(nil)
	_ transport.BinaryMessage = (*appendReply)(nil)
	_ transport.BinaryMessage = (*fetchArgs)(nil)
	_ transport.BinaryMessage = (*fetchReply)(nil)
)

var errShortMessage = errors.New("paxos: short binary message")

// appendEntries: u32 count | per entry u64 index | u64 term |
// u32 dataLen | data
func appendEntries(buf []byte, entries []Entry) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for i := range entries {
		buf = binary.BigEndian.AppendUint64(buf, entries[i].Index)
		buf = binary.BigEndian.AppendUint64(buf, entries[i].Term)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries[i].Data)))
		buf = append(buf, entries[i].Data...)
	}
	return buf
}

func takeEntries(data []byte) ([]Entry, []byte, error) {
	if len(data) < 4 {
		return nil, nil, errShortMessage
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if n == 0 {
		return nil, data, nil
	}
	if n > len(data)/20 { // each entry is at least 20 bytes
		return nil, nil, fmt.Errorf("paxos: entry count %d exceeds payload", n)
	}
	out := make([]Entry, n)
	for i := 0; i < n; i++ {
		if len(data) < 20 {
			return nil, nil, errShortMessage
		}
		out[i].Index = binary.BigEndian.Uint64(data)
		out[i].Term = binary.BigEndian.Uint64(data[8:])
		dlen := int(binary.BigEndian.Uint32(data[16:]))
		data = data[20:]
		if len(data) < dlen {
			return nil, nil, errShortMessage
		}
		// Copy: appended entries live in the node's log indefinitely and
		// must not pin whole transport frames.
		out[i].Data = append([]byte(nil), data[:dlen]...)
		data = data[dlen:]
	}
	return out, data, nil
}

// appendArgs: u64 term | u32 leaderID | u64 prevIndex | u64 prevTerm |
// u64 commit | entries
func (a *appendArgs) AppendBinary(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, a.Term)
	buf = binary.BigEndian.AppendUint32(buf, uint32(a.LeaderID))
	buf = binary.BigEndian.AppendUint64(buf, a.PrevIndex)
	buf = binary.BigEndian.AppendUint64(buf, a.PrevTerm)
	buf = binary.BigEndian.AppendUint64(buf, a.Commit)
	return appendEntries(buf, a.Entries)
}

func (a *appendArgs) DecodeBinary(data []byte) error {
	if len(data) < 36 {
		return errShortMessage
	}
	a.Term = binary.BigEndian.Uint64(data)
	a.LeaderID = int(binary.BigEndian.Uint32(data[8:]))
	a.PrevIndex = binary.BigEndian.Uint64(data[12:])
	a.PrevTerm = binary.BigEndian.Uint64(data[20:])
	a.Commit = binary.BigEndian.Uint64(data[28:])
	entries, rest, err := takeEntries(data[36:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("paxos: %d trailing bytes after appendArgs", len(rest))
	}
	a.Entries = entries
	return nil
}

// appendReply: u64 term | u8 ok | u64 match
func (r *appendReply) AppendBinary(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, r.Term)
	var ok byte
	if r.OK {
		ok = 1
	}
	buf = append(buf, ok)
	return binary.BigEndian.AppendUint64(buf, r.Match)
}

func (r *appendReply) DecodeBinary(data []byte) error {
	if len(data) != 17 {
		return errShortMessage
	}
	r.Term = binary.BigEndian.Uint64(data)
	r.OK = data[8]&1 != 0
	r.Match = binary.BigEndian.Uint64(data[9:])
	return nil
}

// fetchArgs: u64 from
func (a *fetchArgs) AppendBinary(buf []byte) []byte {
	return binary.BigEndian.AppendUint64(buf, a.From)
}

func (a *fetchArgs) DecodeBinary(data []byte) error {
	if len(data) != 8 {
		return errShortMessage
	}
	a.From = binary.BigEndian.Uint64(data)
	return nil
}

// fetchReply: u64 commit | entries
func (r *fetchReply) AppendBinary(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, r.Commit)
	return appendEntries(buf, r.Entries)
}

func (r *fetchReply) DecodeBinary(data []byte) error {
	if len(data) < 12 {
		return errShortMessage
	}
	r.Commit = binary.BigEndian.Uint64(data)
	entries, rest, err := takeEntries(data[8:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("paxos: %d trailing bytes after fetchReply", len(rest))
	}
	r.Entries = entries
	return nil
}
