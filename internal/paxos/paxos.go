// Package paxos implements the replicated log used to make the
// certifier highly available (paper §7.3): "The certifier state is
// replicated for availability across a small set of nodes using Paxos.
// The replication algorithm uses a leader elected from the set of
// certifiers. ... the leader sends the new state to all certifiers
// including itself. All certifiers write the new state to disk and
// reply to the leader. When a majority of certifiers reply, the leader
// declares those transactions as committed."
//
// The implementation is Multi-Paxos in its steady-state leader-based
// formulation (equivalently, the Raft refinement): a ballot-based
// election chooses a leader; the leader appends entries to all nodes;
// each node makes the entries durable via its group-committed WAL and
// acknowledges; the leader commits on majority. Log-index equals the
// certifier's global version, so entry i of the paxos log is exactly
// version i of the replication system's commit order.
//
// Crash-recovery is supported: a node rebuilds its log from its WAL
// image and catches up from the current leader via state transfer.
package paxos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
	"tashkent/internal/wal"
)

// nowFunc indirects time.Now for tests.
var nowFunc = time.Now

// Errors surfaced to proposers.
var (
	// ErrNotLeader reports a proposal on a non-leader node; the error
	// text carries the known leader hint.
	ErrNotLeader = errors.New("paxos: not leader")
	// ErrDeposed reports that leadership was lost while a proposal was
	// in flight; the entry may or may not survive.
	ErrDeposed = errors.New("paxos: leadership lost during proposal")
	// ErrStopped reports a stopped node.
	ErrStopped = errors.New("paxos: node stopped")
)

// Role is a node's current protocol role.
type Role uint8

// Roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

// String names the role.
func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Entry is one replicated log record.
type Entry struct {
	Index uint64 // 1-based; equals the certifier global version
	Term  uint64
	Data  []byte
}

// Config parameterizes a node.
type Config struct {
	// ID is this node's identity (unique small integer).
	ID int
	// Peers maps every *other* node id to a transport client for it.
	Peers map[int]transport.Client
	// Disk backs the node's persistent log.
	Disk *simdisk.Disk
	// WALMode is SyncCommits for durable certification (normal) or
	// NoSync for the paper's tashAPInoCERT ablation, where the
	// certifier performs certification but skips disk writes.
	WALMode wal.Mode
	// Apply is invoked with each committed entry exactly once, in
	// index order, from a single goroutine.
	Apply func(e Entry)
	// CallHook, if set, is consulted before every outgoing peer RPC
	// (votes, appends); returning a non-nil error suppresses the send,
	// which the protocol treats like an unreachable peer. The chaos
	// harness uses it to cut a node's replication links without
	// touching the transport fabric.
	CallHook func(peer int, method string) error
	// ElectionTimeout is the base follower timeout (jittered per
	// node); HeartbeatInterval the leader's idle append cadence.
	ElectionTimeout   time.Duration
	HeartbeatInterval time.Duration
	// Seed randomizes election jitter deterministically.
	Seed int64
}

// Node is one member of the replicated-log group.
type Node struct {
	cfg Config

	mu          sync.Mutex
	cond        *sync.Cond
	role        Role
	term        uint64
	votedFor    int
	leaderHint  int
	log         []Entry // log[i] has Index i+1
	commitIndex uint64
	applied     uint64
	stableIndex uint64 // highest index covered by our own WAL fsyncs
	matchIndex  map[int]uint64
	nextIndex   map[int]uint64
	inflight    map[int]bool
	lastHeard   time.Time
	lastAck     map[int]time.Time // leader: last append answer per peer (check-quorum)
	stopped     bool

	wal    *wal.WAL
	rng    *rand.Rand
	wg     sync.WaitGroup
	stopCh chan struct{}
}

// NewNode creates a node. Call Start to run its timers.
func NewNode(cfg Config) *Node {
	if cfg.Disk == nil {
		cfg.Disk = simdisk.New(simdisk.Instant(), int64(cfg.ID))
	}
	if cfg.WALMode == 0 {
		cfg.WALMode = wal.SyncCommits
	}
	if cfg.ElectionTimeout == 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = cfg.ElectionTimeout / 3
	}
	n := &Node{
		cfg:        cfg,
		votedFor:   -1,
		leaderHint: -1,
		matchIndex: make(map[int]uint64),
		wal:        wal.New(cfg.Disk, cfg.WALMode),
		rng:        rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID)<<16)),
		stopCh:     make(chan struct{}),
		lastHeard:  time.Now(),
	}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// RestoreFromImage rebuilds the node's log and term metadata from a
// crash-surviving WAL image. Must be called before Start.
func (n *Node) RestoreFromImage(image []byte) error {
	records, err := wal.Scan(image)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, rec := range records {
		kind, payload := rec[0], rec[1:]
		switch kind {
		case recEntry:
			var e Entry
			if err := gobDecode(payload, &e); err != nil {
				return fmt.Errorf("paxos: restore entry: %w", err)
			}
			if e.Index == 0 || e.Index > uint64(len(n.log))+1 {
				return fmt.Errorf("paxos: restore: entry index %d does not extend log of %d", e.Index, len(n.log))
			}
			// An entry at index i implicitly truncates everything above.
			n.log = append(n.log[:e.Index-1], e)
		case recMeta:
			var m metaRecord
			if err := gobDecode(payload, &m); err != nil {
				return fmt.Errorf("paxos: restore meta: %w", err)
			}
			n.term = m.Term
			n.votedFor = m.VotedFor
		default:
			return fmt.Errorf("paxos: restore: unknown record kind %d", kind)
		}
	}
	n.stableIndex = uint64(len(n.log))
	return nil
}

// Start launches the election timer. Apply callbacks begin flowing as
// entries commit.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.timerLoop()
	go n.applyLoop()
}

// Stop halts the node (simulating a crash when followed by discarding
// the instance; use WALImage to recover).
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	close(n.stopCh)
	n.cond.Broadcast()
	n.mu.Unlock()
	n.wg.Wait()
	n.wal.Close()
}

// WALImage returns the crash-surviving log image (stable prefix only).
func (n *Node) WALImage() []byte { return n.wal.CrashImage(0) }

// Stopped reports whether Stop has begun. Crash drills use it to
// sequence a blocked-fsync release after the node can no longer
// acknowledge the pending batch.
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// Role returns the node's current role and term.
func (n *Node) Role() (Role, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role, n.term
}

// LeaderHint returns the last known leader id (-1 if unknown).
func (n *Node) LeaderHint() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == Leader {
		return n.cfg.ID
	}
	return n.leaderHint
}

// CommitIndex returns the highest committed index.
func (n *Node) CommitIndex() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.commitIndex
}

// LogLength returns the local log length.
func (n *Node) LogLength() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return uint64(len(n.log))
}

// ErrLogChanged reports a ProposeAt whose expected log length no
// longer matches (the caller's view of the log is stale and must be
// rebuilt).
var ErrLogChanged = errors.New("paxos: log changed since snapshot")

// SnapshotLog returns the current term, role and a copy of the whole
// local log. A leader's log is the authoritative basis for
// certification state; the certifier rebuilds its engine from this
// snapshot when it gains leadership.
func (n *Node) SnapshotLog() (term uint64, role Role, entries []Entry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Entry, len(n.log))
	copy(out, n.log)
	return n.term, n.role, out
}

// ProposeAt is Propose with an optimistic-concurrency guard: it fails
// with ErrLogChanged unless the log still has exactly expectLen
// entries, guaranteeing the caller's derived state (certification
// engine) matches the index being assigned.
func (n *Node) ProposeAt(expectLen uint64, data []byte) (index, term uint64, err error) {
	return n.proposeBatch([][]byte{data}, true, expectLen)
}

// Propose appends data as the next log entry. It returns the reserved
// index and term immediately after the local (volatile) append; the
// caller completes the proposal with WaitCommitted. Only the leader
// may propose.
func (n *Node) Propose(data []byte) (index, term uint64, err error) {
	return n.proposeBatch([][]byte{data}, false, 0)
}

// ProposeBatchAt reserves len(datas) consecutive log indices under one
// lock acquisition and replicates them as a single round: the leader
// persists all of them through one batched WAL insertion (one fsync)
// and followers receive them in one append RPC, persisting via the
// same batched path. It returns the index of the first entry; the whole
// batch occupies [first, first+len(datas)-1] at the returned term, so
// one WaitCommitted on the last index is a durability barrier for the
// entire batch. Like ProposeAt it fails with ErrLogChanged unless the
// log still has exactly expectLen entries.
func (n *Node) ProposeBatchAt(expectLen uint64, datas [][]byte) (first, term uint64, err error) {
	if len(datas) == 0 {
		return 0, 0, errors.New("paxos: empty batch proposal")
	}
	return n.proposeBatch(datas, true, expectLen)
}

func (n *Node) proposeBatch(datas [][]byte, guarded bool, expectLen uint64) (uint64, uint64, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return 0, 0, ErrStopped
	}
	if n.role != Leader {
		hint := n.leaderHint
		n.mu.Unlock()
		return 0, 0, fmt.Errorf("%w (leader hint %d)", ErrNotLeader, hint)
	}
	if guarded && uint64(len(n.log)) != expectLen {
		n.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: have %d entries, expected %d", ErrLogChanged, len(n.log), expectLen)
	}
	first := uint64(len(n.log)) + 1
	term := n.term
	entries := make([]Entry, len(datas))
	payloads := make([][]byte, len(datas))
	for i, data := range datas {
		entries[i] = Entry{Index: first + uint64(i), Term: term, Data: data}
		p, err := gobEncode(entries[i])
		if err != nil {
			n.mu.Unlock()
			return 0, 0, err
		}
		payloads[i] = append([]byte{recEntry}, p...)
	}
	// The memory append and the WAL insertion happen in ONE critical
	// section — the same discipline handleAppend follows — so the WAL
	// image order always equals the memory log order, no matter how
	// proposals, depositions, and follower rounds interleave. Batches
	// are bounded by the certifier's MaxBatch, so the encode work held
	// under the lock stays small. The fsync wait happens in the
	// background; followers ack after their own fsync and our own fsync
	// advances stableIndex.
	n.log = append(n.log, entries...)
	wait, err := n.wal.AppendBatchAsync(payloads)
	n.mu.Unlock()
	if err != nil {
		// WAL closed. Unreachable while Stop orders stopped=true before
		// wal.Close (we checked stopped under this same lock hold), but
		// if that ever changes the entries were neither persisted nor
		// broadcast — report it, don't fake a reservation.
		return 0, 0, ErrStopped
	}
	go n.finishPersist(entries[len(entries)-1], wait)
	go n.broadcastAppend()
	return first, term, nil
}

// finishPersist waits for a proposal's WAL batch to become durable and
// advances stableIndex. The term check skips the advance if the batch
// was truncated away while its fsync was pending (deposition): the
// replacing round vouches for its own records.
func (n *Node) finishPersist(last Entry, wait func() error) {
	if err := wait(); err != nil {
		return
	}
	n.mu.Lock()
	if last.Index > n.stableIndex && uint64(len(n.log)) >= last.Index &&
		n.log[last.Index-1].Term == last.Term {
		n.stableIndex = last.Index
		n.maybeAdvanceCommitLocked()
	}
	n.mu.Unlock()
}

// WaitCommitted blocks until the entry proposed at (index, term) is
// committed, or returns ErrDeposed if leadership changed and the entry
// was (or may have been) replaced.
func (n *Node) WaitCommitted(index, term uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.stopped {
			return ErrStopped
		}
		if uint64(len(n.log)) < index || n.log[index-1].Term != term {
			return ErrDeposed
		}
		if n.commitIndex >= index {
			return nil
		}
		if n.role != Leader {
			return ErrDeposed
		}
		n.cond.Wait()
	}
}

// ErrWaitTimeout reports that WaitCommittedIndex's bound elapsed
// before the committed prefix reached the requested index.
var ErrWaitTimeout = errors.New("paxos: commit wait timed out")

// WaitCommittedIndex blocks until the committed prefix covers index,
// the timeout elapses (ErrWaitTimeout), or the node stops. Unlike
// WaitCommitted it does not pin a term: it serves idempotent retries
// whose entry is identified by content, not by (index, term), and so
// survives leadership changes. Commit advances broadcast n.cond, so
// this is a real wait, not a poll.
func (n *Node) WaitCommittedIndex(index uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	// sync.Cond has no timed wait: arm a broadcast to wake the loop at
	// the deadline so it can observe the timeout.
	timer := time.AfterFunc(timeout, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})
	defer timer.Stop()
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if n.stopped {
			return ErrStopped
		}
		if n.commitIndex >= index {
			return nil
		}
		if !time.Now().Before(deadline) {
			return ErrWaitTimeout
		}
		n.cond.Wait()
	}
}

// maybeAdvanceCommitLocked applies the majority-ack commit rule: the
// leader commits the highest index that (a) a majority of nodes —
// counting itself via stableIndex — hold durably, and (b) belongs to
// the current term (entries from earlier terms commit transitively
// once a current-term entry above them commits, the standard safety
// refinement).
func (n *Node) maybeAdvanceCommitLocked() {
	if n.role != Leader {
		return
	}
	best := n.commitIndex
	for idx := n.commitIndex + 1; idx <= uint64(len(n.log)); idx++ {
		votes := boolToInt(n.stableIndex >= idx)
		for _, m := range n.matchIndex {
			if m >= idx {
				votes++
			}
		}
		if votes < n.majority() {
			break
		}
		if n.log[idx-1].Term == n.term {
			best = idx
		}
	}
	if best > n.commitIndex {
		n.commitIndex = best
	}
	n.cond.Broadcast()
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// majority returns the quorum size for the group (peers + self).
func (n *Node) majority() int { return (len(n.cfg.Peers)+1)/2 + 1 }

// quorumLostLocked reports whether a majority of peers have stopped
// answering appends for several election timeouts. The window is wide
// enough that ordinary heartbeat cadence (ElectionTimeout/3) refreshes
// every live peer many times over, so it only fires on real loss.
// Single-node groups have no peers and never step down.
func (n *Node) quorumLostLocked() bool {
	if len(n.cfg.Peers) == 0 {
		return false
	}
	window := 3 * n.cfg.ElectionTimeout
	live := 1 // self
	for id := range n.cfg.Peers {
		if time.Since(n.lastAck[id]) <= window {
			live++
		}
	}
	return live < n.majority()
}

// applyLoop delivers committed entries to cfg.Apply in order.
func (n *Node) applyLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		for n.applied >= n.commitIndex && !n.stopped {
			n.cond.Wait()
		}
		if n.stopped {
			n.mu.Unlock()
			return
		}
		var batch []Entry
		for n.applied < n.commitIndex {
			n.applied++
			batch = append(batch, n.log[n.applied-1])
		}
		n.mu.Unlock()
		if n.cfg.Apply != nil {
			for _, e := range batch {
				n.cfg.Apply(e)
			}
		}
	}
}

// timerLoop drives elections (followers/candidates) and heartbeats
// (leaders).
func (n *Node) timerLoop() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		role := n.role
		timeout := n.cfg.ElectionTimeout + time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
		lastHeard := n.lastHeard
		n.mu.Unlock()

		var wait time.Duration
		if role == Leader {
			wait = n.cfg.HeartbeatInterval
		} else {
			wait = time.Until(lastHeard.Add(timeout))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
		}
		select {
		case <-n.stopCh:
			return
		case <-time.After(wait):
		}

		n.mu.Lock()
		switch n.role {
		case Leader:
			if n.quorumLostLocked() {
				// Check-quorum: a leader that cannot reach a majority
				// will never commit again; stepping down releases every
				// proposal blocked in WaitCommitted with ErrDeposed so
				// callers fail over (or degrade) instead of hanging.
				n.role = Follower
				n.leaderHint = -1
				n.cond.Broadcast()
				n.mu.Unlock()
				continue
			}
			n.mu.Unlock()
			n.broadcastAppend()
		case Follower, Candidate:
			if time.Since(n.lastHeard) >= timeout {
				n.startElectionLocked() // unlocks
			} else {
				n.mu.Unlock()
			}
		default:
			n.mu.Unlock()
		}
	}
}
