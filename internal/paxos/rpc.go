package paxos

import (
	"fmt"
	"sync"
	"time"

	"tashkent/internal/transport"
)

// WAL record kinds.
const (
	recEntry byte = 'E'
	recMeta  byte = 'M'
)

// metaRecord persists election state (term and vote) so a recovering
// node cannot double-vote.
type metaRecord struct {
	Term     uint64
	VotedFor int
}

// RPC argument/reply types (gob-encoded on the wire).

type voteArgs struct {
	Term      uint64
	Candidate int
	LastIndex uint64
	LastTerm  uint64
}

type voteReply struct {
	Term    uint64
	Granted bool
}

type appendArgs struct {
	Term      uint64
	LeaderID  int
	PrevIndex uint64
	PrevTerm  uint64
	Entries   []Entry
	Commit    uint64
}

type appendReply struct {
	Term  uint64
	OK    bool
	Match uint64 // on success: last replicated index; on failure: a backup hint
}

type fetchArgs struct {
	From uint64
}

type fetchReply struct {
	Entries []Entry
	Commit  uint64
}

// Method names on the transport.
const (
	MethodVote   = "paxos.vote"
	MethodAppend = "paxos.append"
	MethodFetch  = "paxos.fetch"
)

// HandleRPC dispatches a transport request to the protocol. The owner
// (the certifier server) routes all "paxos.*" methods here.
func (n *Node) HandleRPC(method string, req []byte) ([]byte, error) {
	// A stopped node simulates a crashed process: it must not answer.
	// Answering would let a quorum-less leader keep counting this peer
	// as live (check-quorum) or even ack entries the "crash" discarded.
	n.mu.Lock()
	stopped := n.stopped
	n.mu.Unlock()
	if stopped {
		return nil, ErrStopped
	}
	switch method {
	case MethodVote:
		var args voteArgs
		if err := msgDecode(req, &args); err != nil {
			return nil, err
		}
		reply := n.handleVote(args)
		return msgEncode(&reply)
	case MethodAppend:
		var args appendArgs
		if err := msgDecode(req, &args); err != nil {
			return nil, err
		}
		reply := n.handleAppend(args)
		return msgEncode(&reply)
	case MethodFetch:
		var args fetchArgs
		if err := msgDecode(req, &args); err != nil {
			return nil, err
		}
		reply := n.handleFetch(args)
		return msgEncode(&reply)
	default:
		return nil, fmt.Errorf("paxos: unknown method %q", method)
	}
}

// callPeer sends one RPC to a peer, consulting the pluggable call hook
// first: a hook error suppresses the send, which every caller already
// treats as an unreachable peer (chaos link cuts, targeted isolation).
func (n *Node) callPeer(peer int, client transport.Client, method string, req []byte) ([]byte, error) {
	if h := n.cfg.CallHook; h != nil {
		if err := h(peer, method); err != nil {
			return nil, err
		}
	}
	return client.Call(method, req)
}

// persistMetaLocked writes term/vote durably. Called with n.mu held;
// temporarily releases it around the disk write.
func (n *Node) persistMetaLocked() {
	m := metaRecord{Term: n.term, VotedFor: n.votedFor}
	n.mu.Unlock()
	n.appendWAL(recMeta, m)
	n.mu.Lock()
}

func (n *Node) appendWAL(kind byte, v interface{}) error {
	payload, err := gobEncode(v)
	if err != nil {
		return err
	}
	return n.wal.Append(append([]byte{kind}, payload...))
}

func (n *Node) handleVote(args voteArgs) voteReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	if args.Term < n.term {
		return voteReply{Term: n.term, Granted: false}
	}
	if args.Term > n.term {
		n.term = args.Term
		n.votedFor = -1
		n.role = Follower
		n.persistMetaLocked()
	}
	lastIdx := uint64(len(n.log))
	var lastTerm uint64
	if lastIdx > 0 {
		lastTerm = n.log[lastIdx-1].Term
	}
	upToDate := args.LastTerm > lastTerm ||
		(args.LastTerm == lastTerm && args.LastIndex >= lastIdx)
	if (n.votedFor == -1 || n.votedFor == args.Candidate) && upToDate {
		n.votedFor = args.Candidate
		n.lastHeard = nowFunc()
		n.persistMetaLocked()
		return voteReply{Term: n.term, Granted: true}
	}
	return voteReply{Term: n.term, Granted: false}
}

func (n *Node) handleAppend(args appendArgs) appendReply {
	// Pre-encode every entry before taking the lock: encoding is pure
	// CPU work, and a catch-up round can carry thousands of entries —
	// serializing that with elections and heartbeats under n.mu would
	// stall the whole node. Entries that turn out to be duplicates cost
	// a wasted encode, which only happens on rare overlap.
	encoded := make([][]byte, len(args.Entries))
	for i, e := range args.Entries {
		p, err := gobEncode(e)
		if err != nil {
			return appendReply{Term: args.Term, OK: false}
		}
		encoded[i] = append([]byte{recEntry}, p...)
	}

	n.mu.Lock()
	if args.Term < n.term {
		defer n.mu.Unlock()
		return appendReply{Term: n.term, OK: false, Match: 0}
	}
	if args.Term > n.term || n.role != Follower {
		n.term = args.Term
		n.votedFor = args.LeaderID
		n.role = Follower
		n.persistMetaLocked()
	}
	n.leaderHint = args.LeaderID
	n.lastHeard = nowFunc()

	// Consistency check at PrevIndex.
	if args.PrevIndex > uint64(len(n.log)) {
		hint := n.commitIndex
		n.mu.Unlock()
		return appendReply{Term: args.Term, OK: false, Match: hint}
	}
	if args.PrevIndex > 0 && n.log[args.PrevIndex-1].Term != args.PrevTerm {
		hint := n.commitIndex
		n.mu.Unlock()
		return appendReply{Term: args.Term, OK: false, Match: hint}
	}
	// Append entries, truncating any conflicting suffix.
	var payloads [][]byte
	for i, e := range args.Entries {
		idx := args.PrevIndex + uint64(i) + 1
		if idx <= uint64(len(n.log)) {
			if n.log[idx-1].Term == e.Term {
				continue // already have it
			}
			n.log = n.log[:idx-1]
			if n.stableIndex > idx-1 {
				n.stableIndex = idx - 1
			}
		}
		n.log = append(n.log, e)
		payloads = append(payloads, encoded[i])
	}
	match := args.PrevIndex + uint64(len(args.Entries))

	// Enqueue the round's WAL insertion while still holding n.mu so the
	// image order matches the memory log's truncate/append order — a
	// concurrent round (or a deposed leader's in-flight proposal) must
	// not slip its records in between. The fsync wait happens outside
	// the lock; the reply is sent only after our disk write, as the
	// paper requires ("All certifiers write the new state to disk and
	// reply").
	var waitDurable func() error
	var err error
	if len(payloads) > 0 {
		waitDurable, err = n.wal.AppendBatchAsync(payloads)
	} else if match > n.stableIndex {
		// Duplicate round or heartbeat covering entries we hold only in
		// memory: their WAL records were enqueued when they were first
		// appended (memory and WAL order are locked together), but the
		// fsync may still be in flight — and the reply below vouches
		// durability, so wait for the barrier rather than ack early.
		waitDurable, err = n.wal.Barrier()
	}
	if err != nil {
		n.mu.Unlock()
		return appendReply{Term: args.Term, OK: false}
	}
	n.mu.Unlock()

	if waitDurable != nil {
		if err := waitDurable(); err != nil {
			return appendReply{Term: args.Term, OK: false}
		}
	}

	n.mu.Lock()
	// Advance stableIndex only if the log still holds what this round
	// delivered: while we waited for the fsync, a newer leader's round
	// may have truncated and swapped in entries whose own flush is
	// still pending — vouching for those would ack durability we do
	// not have. Same-term entries at the same index are identical
	// (one leader per term), so the term check is sufficient.
	intact := match <= uint64(len(n.log))
	if intact && match > 0 {
		if len(args.Entries) > 0 {
			intact = n.log[match-1].Term == args.Entries[len(args.Entries)-1].Term
		} else {
			// Zero-entry round (heartbeat): the entry at match must
			// still be the one the consistency check saw, or a
			// truncation during the barrier wait swapped in records
			// whose own fsync is pending.
			intact = n.log[match-1].Term == args.PrevTerm
		}
	}
	if intact && match > n.stableIndex {
		n.stableIndex = match
	}
	if args.Commit > n.commitIndex {
		c := args.Commit
		if l := uint64(len(n.log)); c > l {
			c = l
		}
		n.commitIndex = c
	}
	n.cond.Broadcast()
	term := n.term
	n.mu.Unlock()
	return appendReply{Term: term, OK: true, Match: match}
}

func (n *Node) handleFetch(args fetchArgs) fetchReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	if args.From == 0 {
		args.From = 1
	}
	var out []Entry
	if args.From <= n.commitIndex {
		out = make([]Entry, n.commitIndex-args.From+1)
		copy(out, n.log[args.From-1:n.commitIndex])
	}
	return fetchReply{Entries: out, Commit: n.commitIndex}
}

// Fetch pulls committed entries [from, commit] from a peer — the
// recovering certifier's state transfer (paper §9.6: "essentially a
// file transfer").
func Fetch(peer interface {
	Call(method string, req []byte) ([]byte, error)
}, from uint64) ([]Entry, uint64, error) {
	req, err := msgEncode(&fetchArgs{From: from})
	if err != nil {
		return nil, 0, err
	}
	respB, err := peer.Call(MethodFetch, req)
	if err != nil {
		return nil, 0, err
	}
	var resp fetchReply
	if err := msgDecode(respB, &resp); err != nil {
		return nil, 0, err
	}
	return resp.Entries, resp.Commit, nil
}

// startElectionLocked transitions to candidate and solicits votes.
// Called with n.mu held; it unlocks.
func (n *Node) startElectionLocked() {
	n.role = Candidate
	n.term++
	n.votedFor = n.cfg.ID
	n.lastHeard = nowFunc()
	term := n.term
	lastIdx := uint64(len(n.log))
	var lastTerm uint64
	if lastIdx > 0 {
		lastTerm = n.log[lastIdx-1].Term
	}
	n.persistMetaLocked()
	peers := n.cfg.Peers
	n.mu.Unlock()

	args := voteArgs{Term: term, Candidate: n.cfg.ID, LastIndex: lastIdx, LastTerm: lastTerm}
	req, err := msgEncode(&args)
	if err != nil {
		return
	}
	var mu sync.Mutex
	votes := 1 // self
	decided := false
	var wg sync.WaitGroup
	for id, client := range peers {
		id, client := id, client
		wg.Add(1)
		go func() {
			defer wg.Done()
			respB, err := n.callPeer(id, client, MethodVote, req)
			if err != nil {
				return
			}
			var resp voteReply
			if err := msgDecode(respB, &resp); err != nil {
				return
			}
			n.mu.Lock()
			if resp.Term > n.term {
				n.term = resp.Term
				n.role = Follower
				n.votedFor = -1
				n.persistMetaLocked()
				n.mu.Unlock()
				return
			}
			n.mu.Unlock()
			if !resp.Granted {
				return
			}
			mu.Lock()
			votes++
			win := votes >= n.majority() && !decided
			if win {
				decided = true
			}
			mu.Unlock()
			_ = id
			if win {
				n.becomeLeader(term)
			}
		}()
	}
	// Single-node group: immediate win.
	if len(peers) == 0 {
		n.becomeLeader(term)
	}
	go wg.Wait()
}

// becomeLeader installs leader state if still a candidate for term.
func (n *Node) becomeLeader(term uint64) {
	n.mu.Lock()
	if n.stopped || n.role != Candidate || n.term != term {
		n.mu.Unlock()
		return
	}
	n.role = Leader
	n.leaderHint = n.cfg.ID
	n.matchIndex = make(map[int]uint64)
	if n.nextIndex == nil {
		n.nextIndex = make(map[int]uint64)
	}
	n.lastAck = make(map[int]time.Time)
	now := time.Now()
	for id := range n.cfg.Peers {
		n.nextIndex[id] = uint64(len(n.log)) + 1
		n.matchIndex[id] = 0
		n.lastAck[id] = now // fresh grant: give every peer a full check-quorum window
	}
	// Our whole local log is stable (it was recovered from / written
	// through the WAL) except volatile leader appends, which track via
	// finishPersist. Conservative: keep current stableIndex.
	n.mu.Unlock()
	n.broadcastAppend()
}

// broadcastAppend pushes outstanding entries (or a heartbeat) to every
// peer. Per-peer sends are serialized by an inflight flag so a slow
// follower gets one batched catch-up rather than a pile of overlapping
// RPCs.
func (n *Node) broadcastAppend() {
	n.mu.Lock()
	if n.role != Leader || n.stopped {
		n.mu.Unlock()
		return
	}
	peers := make([]int, 0, len(n.cfg.Peers))
	for id := range n.cfg.Peers {
		peers = append(peers, id)
	}
	n.mu.Unlock()
	for _, id := range peers {
		go n.replicateTo(id)
	}
}

// replicateTo sends one append round to a peer, retrying backwards on
// log mismatch until it lands or leadership is lost.
func (n *Node) replicateTo(peer int) {
	n.mu.Lock()
	if n.inflight == nil {
		n.inflight = make(map[int]bool)
	}
	if n.inflight[peer] || n.role != Leader || n.stopped {
		n.mu.Unlock()
		return
	}
	n.inflight[peer] = true
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.inflight[peer] = false
		more := n.role == Leader && !n.stopped && n.nextIndex[peer] <= uint64(len(n.log))
		n.mu.Unlock()
		if more {
			go n.replicateTo(peer)
		}
	}()

	for attempt := 0; attempt < 64; attempt++ {
		n.mu.Lock()
		if n.role != Leader || n.stopped {
			n.mu.Unlock()
			return
		}
		next := n.nextIndex[peer]
		if next == 0 {
			next = 1
		}
		prevIdx := next - 1
		var prevTerm uint64
		if prevIdx > 0 && prevIdx <= uint64(len(n.log)) {
			prevTerm = n.log[prevIdx-1].Term
		}
		entries := make([]Entry, uint64(len(n.log))-prevIdx)
		copy(entries, n.log[prevIdx:])
		args := appendArgs{
			Term: n.term, LeaderID: n.cfg.ID,
			PrevIndex: prevIdx, PrevTerm: prevTerm,
			Entries: entries, Commit: n.commitIndex,
		}
		client := n.cfg.Peers[peer]
		n.mu.Unlock()

		req, err := msgEncode(&args)
		if err != nil {
			return
		}
		respB, err := n.callPeer(peer, client, MethodAppend, req)
		if err != nil {
			return // peer down; heartbeat will retry
		}
		var resp appendReply
		if err := msgDecode(respB, &resp); err != nil {
			return
		}

		n.mu.Lock()
		if n.lastAck != nil {
			n.lastAck[peer] = time.Now() // any answer counts for check-quorum
		}
		if resp.Term > n.term {
			n.term = resp.Term
			n.role = Follower
			n.votedFor = -1
			n.persistMetaLocked()
			n.cond.Broadcast()
			n.mu.Unlock()
			return
		}
		if n.role != Leader || n.term != args.Term {
			n.mu.Unlock()
			return
		}
		if resp.OK {
			if resp.Match > n.matchIndex[peer] {
				n.matchIndex[peer] = resp.Match
			}
			n.nextIndex[peer] = resp.Match + 1
			n.maybeAdvanceCommitLocked()
			n.mu.Unlock()
			return
		}
		// Mismatch: back up using the follower's hint and retry.
		backup := resp.Match + 1
		if backup >= next && next > 1 {
			backup = next - 1
		}
		if backup < 1 {
			backup = 1
		}
		n.nextIndex[peer] = backup
		n.mu.Unlock()
	}
}

// gobEncode/gobDecode delegate to the transport's pooled codec. They
// remain the WAL record format (recEntry/recMeta payloads): durable
// bytes deliberately do not share the wire codec's tag scheme.
func gobEncode(v interface{}) ([]byte, error) { return transport.GobEncode(v) }

func gobDecode(b []byte, v interface{}) error { return transport.GobDecode(b, v) }

// msgEncode/msgDecode are the wire codec: binary fast path for the hot
// append/fetch types, tagged gob for the rest.
func msgEncode(v interface{}) ([]byte, error) { return transport.EncodeMessage(v) }

func msgDecode(b []byte, v interface{}) error { return transport.DecodeMessage(b, v) }
