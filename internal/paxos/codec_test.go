package paxos

import (
	"math/rand"
	"reflect"
	"testing"

	"tashkent/internal/transport"
)

func randEntries(rng *rand.Rand) []Entry {
	n := rng.Intn(6)
	if n == 0 {
		return nil
	}
	out := make([]Entry, n)
	for i := range out {
		data := make([]byte, rng.Intn(80))
		rng.Read(data)
		if len(data) == 0 {
			data = nil
		}
		out[i] = Entry{Index: rng.Uint64(), Term: rng.Uint64(), Data: data}
	}
	return out
}

func normEntries(e []Entry) []Entry {
	if len(e) == 0 {
		return nil
	}
	out := make([]Entry, len(e))
	for i := range e {
		out[i] = e[i]
		if len(out[i].Data) == 0 {
			out[i].Data = nil
		}
	}
	return out
}

// TestPaxosCodecRoundTripFuzz drives randomized append/fetch messages
// through the binary codec, checking exact equality and, for
// appendArgs, equivalence with a forced gob decode of the same value.
func TestPaxosCodecRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		args := &appendArgs{
			Term: rng.Uint64(), LeaderID: rng.Intn(64),
			PrevIndex: rng.Uint64(), PrevTerm: rng.Uint64(),
			Entries: randEntries(rng), Commit: rng.Uint64(),
		}
		b, err := transport.EncodeMessage(args)
		if err != nil {
			t.Fatal(err)
		}
		var got appendArgs
		if err := transport.DecodeMessage(b, &got); err != nil {
			t.Fatal(err)
		}
		args.Entries, got.Entries = normEntries(args.Entries), normEntries(got.Entries)
		if !reflect.DeepEqual(args, &got) {
			t.Fatalf("appendArgs round trip: %+v != %+v", &got, args)
		}
		// Gob-path equivalence: the fallback decode of the same value
		// must agree with the binary decode.
		gobRaw, err := transport.GobEncode(args)
		if err != nil {
			t.Fatal(err)
		}
		var fromGob appendArgs
		if err := transport.DecodeMessage(append([]byte{0x00}, gobRaw...), &fromGob); err != nil {
			t.Fatal(err)
		}
		fromGob.Entries = normEntries(fromGob.Entries)
		if !reflect.DeepEqual(&got, &fromGob) {
			t.Fatalf("binary and gob decode disagree:\nbin: %+v\ngob: %+v", &got, &fromGob)
		}

		reply := &appendReply{Term: rng.Uint64(), OK: rng.Intn(2) == 0, Match: rng.Uint64()}
		rb, err := transport.EncodeMessage(reply)
		if err != nil {
			t.Fatal(err)
		}
		var gotReply appendReply
		if err := transport.DecodeMessage(rb, &gotReply); err != nil {
			t.Fatal(err)
		}
		if *reply != gotReply {
			t.Fatalf("appendReply round trip: %+v != %+v", gotReply, *reply)
		}

		fr := &fetchReply{Entries: randEntries(rng), Commit: rng.Uint64()}
		fb, err := transport.EncodeMessage(fr)
		if err != nil {
			t.Fatal(err)
		}
		var gotFetch fetchReply
		if err := transport.DecodeMessage(fb, &gotFetch); err != nil {
			t.Fatal(err)
		}
		fr.Entries, gotFetch.Entries = normEntries(fr.Entries), normEntries(gotFetch.Entries)
		if !reflect.DeepEqual(fr, &gotFetch) {
			t.Fatalf("fetchReply round trip: %+v != %+v", &gotFetch, fr)
		}
	}
}

// TestPaxosCodecDecodeCopiesEntryData pins the aliasing contract:
// decoded entry data must not alias the incoming frame, because
// entries live in the node's log long after the transport buffer is
// gone.
func TestPaxosCodecDecodeCopiesEntryData(t *testing.T) {
	args := &appendArgs{Term: 1, Entries: []Entry{{Index: 1, Term: 1, Data: []byte{1, 2, 3}}}}
	b, err := transport.EncodeMessage(args)
	if err != nil {
		t.Fatal(err)
	}
	var got appendArgs
	if err := transport.DecodeMessage(b, &got); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = 0xFF // scribble over the frame
	}
	if !reflect.DeepEqual(got.Entries[0].Data, []byte{1, 2, 3}) {
		t.Fatalf("entry data aliased the transport frame: %v", got.Entries[0].Data)
	}
}

// TestPaxosCodecTruncation requires errors (not panics) on truncated
// payloads.
func TestPaxosCodecTruncation(t *testing.T) {
	full, err := transport.EncodeMessage(&appendArgs{
		Term: 5, Entries: []Entry{{Index: 1, Term: 5, Data: []byte("abc")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 41; cut++ { // header region: every cut must error
		var a appendArgs
		if err := transport.DecodeMessage(full[:cut], &a); err == nil {
			t.Fatalf("truncated appendArgs (%d bytes) decoded without error", cut)
		}
	}
}
