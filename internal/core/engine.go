package core

import (
	"errors"
	"fmt"
	"sort"
)

// EntryKind distinguishes the entry types a partitioned certifier
// group appends to its log. Single-group deployments only ever use
// KindData.
type EntryKind uint8

const (
	// KindData is a normally certified writeset (or a leader-barrier /
	// fill no-op when Origin == BarrierOrigin and the writeset is empty).
	KindData EntryKind = iota
	// KindPrepare is phase 1 of a cross-partition transaction: this
	// group's slice of the writeset, conflict-checked and locked but not
	// yet visible to certification of later transactions via writers.
	KindPrepare
	// KindCommitMarker is the commit decision for a prepared
	// cross-partition transaction: it releases the locks and publishes
	// the prepared items into the writer index at the marker's version.
	KindCommitMarker
	// KindAbortMarker is the abort decision: locks release, nothing is
	// published.
	KindAbortMarker
)

// String names the kind.
func (k EntryKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindPrepare:
		return "prepare"
	case KindCommitMarker:
		return "commit-marker"
	case KindAbortMarker:
		return "abort-marker"
	default:
		return fmt.Sprintf("EntryKind(%d)", uint8(k))
	}
}

// LogEntry is one committed update transaction in the certifier's
// global order: the writeset together with the version its commit
// created. CertifiedBack records how far back the writeset is known to
// be conflict-free; it is maintained for the Tashkent-API extended
// certification checks (paper §5.2.1) so repeated checks are avoided.
type LogEntry struct {
	Version Version
	WS      *Writeset
	// Origin identifies the replica whose transaction produced this
	// writeset. The certifier uses it to exclude a replica's own
	// writesets when shipping "remote" writesets back to it.
	Origin int
	// CertifiedBack is the oldest version v such that WS is known to
	// have no write-write conflict with any writeset committed in
	// (v, Version). At normal certification time it equals the
	// transaction's start version.
	CertifiedBack Version
	// Kind tells a partitioned certifier group how to interpret the
	// entry (data, 2PC prepare, or 2PC decision marker).
	Kind EntryKind
	// GID is the cluster-wide transaction id of a cross-partition
	// transaction; zero for KindData.
	GID uint64
	// Involved lists the partition ids participating in a
	// cross-partition transaction (prepare and marker entries), so
	// replicas know which groups' parts form the full writeset.
	Involved []int
}

// Decision is the outcome of a certification request.
type Decision uint8

const (
	// Commit means the writeset had no write-write conflict and was
	// appended to the global order.
	Commit Decision = iota + 1
	// Abort means a conflict was found (or the certifier injected an
	// abort, see the Fig 14 experiment).
	Abort
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case Commit:
		return "commit"
	case Abort:
		return "abort"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// ErrTruncated reports that a requested log range has been garbage
// collected below the engine's truncation horizon.
var ErrTruncated = errors.New("core: log range truncated")

// Engine is the pure certification engine: it maintains the global log
// of committed writesets, the per-item last-writer index used for fast
// intersection tests, and the global system version. It is not safe
// for concurrent use; the certifier server serializes access.
type Engine struct {
	// log[i] holds the entry for version trunc+1+i.
	log []LogEntry
	// trunc is the highest garbage-collected version: entries with
	// Version <= trunc are gone. Initially 0 (nothing collected; the
	// log conceptually starts at version 1).
	trunc Version
	// system is the global system version: the version of the most
	// recently committed update transaction.
	system Version
	// writers maps an item to the ascending list of versions that
	// wrote it. It serves both the normal certification test (is the
	// last writer newer than my snapshot?) and the extended
	// certify-back range queries.
	writers map[ItemID][]Version
	// locks maps an item to the gid of the cross-partition transaction
	// that holds it prepared-but-unresolved. Any certification or
	// prepare touching a locked item conflicts, whatever its snapshot:
	// the lock's outcome is undecided, so admitting the competitor
	// could miss a write-write conflict.
	locks map[ItemID]uint64
	// prepared tracks unresolved prepares: gid → the prepare entry's
	// version and its locked items.
	prepared map[uint64]preparedTx
	// resolved memoizes 2PC decisions: gid → the first decision
	// marker's version and outcome. It makes Resolve idempotent and
	// rejects a prepare retry that raced its own abort marker.
	resolved map[uint64]resolution
}

type preparedTx struct {
	version Version
	items   []ItemID
}

type resolution struct {
	version Version
	commit  bool
}

// NewEngine returns an empty engine at system version 0.
func NewEngine() *Engine {
	return &Engine{
		writers:  make(map[ItemID][]Version),
		locks:    make(map[ItemID]uint64),
		prepared: make(map[uint64]preparedTx),
		resolved: make(map[uint64]resolution),
	}
}

// SystemVersion returns the version of the latest committed update
// transaction.
func (e *Engine) SystemVersion() Version { return e.system }

// TruncatedBelow returns the highest garbage-collected version; log
// entries are retained for versions strictly greater than this.
func (e *Engine) TruncatedBelow() Version { return e.trunc }

// Len returns the number of retained log entries.
func (e *Engine) Len() int { return len(e.log) }

// Certify performs the paper's certification test for a transaction
// that started at version start with writeset ws: ws is intersected
// against every writeset committed at a version greater than start. On
// success the writeset is appended to the log at a fresh version and
// (newVersion, Commit) is returned; on conflict (0, Abort).
//
// An empty writeset always commits but consumes no version; callers
// short-circuit read-only transactions before reaching the certifier,
// so Certify treats it as a programming error.
func (e *Engine) Certify(start Version, ws *Writeset, origin int) (Version, Decision) {
	if ws.Empty() {
		panic("core: Certify called with empty writeset (read-only transactions commit locally)")
	}
	if e.conflicts(ws, start, e.system) || e.lockConflict(ws) {
		return 0, Abort
	}
	e.system++
	v := e.system
	e.append(LogEntry{Version: v, WS: ws, CertifiedBack: start, Origin: origin})
	return v, Commit
}

// Conflicts reports (without mutating the engine) whether ws
// intersects any writeset committed after start — the certification
// test alone. Callers that must interleave the test with an external
// commit point (the certifier proposes the entry to its replicated log
// between testing and appending) use Conflicts + Append instead of
// Certify.
func (e *Engine) Conflicts(start Version, ws *Writeset) bool {
	return e.conflicts(ws, start, e.system) || e.lockConflict(ws)
}

// lockConflict reports whether ws touches an item held by an
// unresolved cross-partition prepare.
func (e *Engine) lockConflict(ws *Writeset) bool {
	if len(e.locks) == 0 {
		return false
	}
	for i := range ws.Ops {
		if _, held := e.locks[ws.Ops[i].Item()]; held {
			return true
		}
	}
	return false
}

// PreparedAt returns the version of gid's unresolved prepare entry in
// this group, if one exists. The certifier uses it to make Prepare
// idempotent across leader retries.
func (e *Engine) PreparedAt(gid uint64) (Version, bool) {
	p, ok := e.prepared[gid]
	return p.version, ok
}

// Resolution returns the first decision marker recorded for gid: its
// version and whether it committed.
func (e *Engine) Resolution(gid uint64) (v Version, commit, ok bool) {
	r, found := e.resolved[gid]
	return r.version, r.commit, found
}

// OldestPrepared returns the lowest version among unresolved prepare
// entries, or 0 if none are pending. Truncation must not cross it:
// the prepare's writeset is the only record of what its decision
// marker will publish.
func (e *Engine) OldestPrepared() Version {
	var oldest Version
	for _, p := range e.prepared {
		if oldest == 0 || p.version < oldest {
			oldest = p.version
		}
	}
	return oldest
}

// BarrierOrigin is the origin id of leader-barrier no-op entries
// (certifier.Server.Barrier). Real replicas have positive origin ids.
const BarrierOrigin = 0

// Append installs an already-certified entry at the next version. The
// entry's version must be exactly SystemVersion()+1. An empty writeset
// is permitted only for barrier entries (Origin == BarrierOrigin) and
// 2PC decision markers: a leader barrier commits a no-op to finalize a
// previous term's tail, consuming a version that conflicts with
// nothing. For any real origin an empty data writeset still indicates
// corruption or a misencoded certification and is rejected loudly.
func (e *Engine) Append(entry LogEntry) error {
	if entry.Version != e.system+1 {
		return fmt.Errorf("core: append version %d, want %d", entry.Version, e.system+1)
	}
	switch entry.Kind {
	case KindData:
		if entry.WS.Empty() && entry.Origin != BarrierOrigin {
			return fmt.Errorf("core: append of empty writeset at version %d (origin %d)", entry.Version, entry.Origin)
		}
	case KindPrepare:
		if entry.WS.Empty() {
			return fmt.Errorf("core: prepare with empty writeset at version %d (gid %d)", entry.Version, entry.GID)
		}
		if _, dup := e.prepared[entry.GID]; dup {
			return fmt.Errorf("core: duplicate prepare for gid %d at version %d", entry.GID, entry.Version)
		}
	case KindCommitMarker, KindAbortMarker:
		// Always legal: a marker for an unknown gid (prepare refused
		// here, or a duplicate decision from a coordinator retry)
		// consumes a version and publishes nothing.
	default:
		return fmt.Errorf("core: append of unknown entry kind %d at version %d", entry.Kind, entry.Version)
	}
	e.system = entry.Version
	e.append(entry)
	return nil
}

// conflicts reports whether ws intersects any writeset committed in the
// half-open version interval (lo, hi].
func (e *Engine) conflicts(ws *Writeset, lo, hi Version) bool {
	if lo >= hi {
		return false
	}
	for i := range ws.Ops {
		vs := e.writers[ws.Ops[i].Item()]
		if len(vs) == 0 {
			continue
		}
		// Find the first writer version > lo; conflict if it is <= hi.
		idx := sort.Search(len(vs), func(k int) bool { return vs[k] > lo })
		if idx < len(vs) && vs[idx] <= hi {
			return true
		}
	}
	return false
}

func (e *Engine) append(entry LogEntry) {
	switch entry.Kind {
	case KindPrepare:
		// The part is logged but stays out of the writer index: it
		// conflicts with later transactions through the lock map until
		// its decision marker resolves it.
		items := entry.WS.Items()
		for _, id := range items {
			e.locks[id] = entry.GID
		}
		e.prepared[entry.GID] = preparedTx{version: entry.Version, items: items}
	case KindCommitMarker:
		if p, ok := e.prepared[entry.GID]; ok {
			// Publish the prepared items at the marker's own version:
			// a transaction whose snapshot predates the marker now
			// conflicts with the cross-partition commit, even though
			// its snapshot may postdate the prepare.
			prep, err := e.Entry(p.version)
			if err == nil {
				entry.WS = prep.WS
			}
			for _, id := range p.items {
				e.writers[id] = append(e.writers[id], entry.Version)
				if e.locks[id] == entry.GID {
					delete(e.locks, id)
				}
			}
			delete(e.prepared, entry.GID)
		} else if !entry.WS.Empty() {
			// Restore from a snapshot whose marker already carries the
			// synthesized writeset.
			for _, id := range entry.WS.Items() {
				e.writers[id] = append(e.writers[id], entry.Version)
			}
		}
		if _, seen := e.resolved[entry.GID]; !seen {
			e.resolved[entry.GID] = resolution{version: entry.Version, commit: true}
		}
		e.log = append(e.log, entry)
		return
	case KindAbortMarker:
		if p, ok := e.prepared[entry.GID]; ok {
			for _, id := range p.items {
				if e.locks[id] == entry.GID {
					delete(e.locks, id)
				}
			}
			delete(e.prepared, entry.GID)
		}
		if _, seen := e.resolved[entry.GID]; !seen {
			e.resolved[entry.GID] = resolution{version: entry.Version, commit: false}
		}
	default:
		for _, id := range entry.WS.Items() {
			e.writers[id] = append(e.writers[id], entry.Version)
		}
	}
	e.log = append(e.log, entry)
}

// entryIndex converts a version to an index into e.log, or -1 if the
// version is truncated or in the future.
func (e *Engine) entryIndex(v Version) int {
	if v <= e.trunc || v > e.system {
		return -1
	}
	return int(v - e.trunc - 1)
}

// Entry returns the log entry committed at version v.
func (e *Engine) Entry(v Version) (LogEntry, error) {
	i := e.entryIndex(v)
	if i < 0 {
		return LogEntry{}, fmt.Errorf("%w: version %d (horizon %d, system %d)", ErrTruncated, v, e.trunc, e.system)
	}
	return e.log[i], nil
}

// EntriesSince returns the log entries with versions in (after, upTo].
// These are exactly the "remote writesets the replica has not received
// yet" that the certifier ships back with a certification response.
func (e *Engine) EntriesSince(after, upTo Version) ([]LogEntry, error) {
	if upTo > e.system {
		upTo = e.system
	}
	if after >= upTo {
		return nil, nil
	}
	if after < e.trunc {
		return nil, fmt.Errorf("%w: need entries after %d but horizon is %d", ErrTruncated, after, e.trunc)
	}
	lo := int(after - e.trunc)
	hi := int(upTo - e.trunc)
	out := make([]LogEntry, hi-lo)
	copy(out, e.log[lo:hi])
	return out, nil
}

// CertifyBack extends the certification of the entry committed at
// version v so that it is known conflict-free back to version back
// (paper §5.2.1: the proxy asks "has this remote writeset been tested
// for conflicts back to my replica_version?"). It returns the version
// down to which the entry is now certified conflict-free: if that is
// <= back the caller may apply the writeset concurrently; if it is > back
// an artificial conflict exists and the caller must serialize behind
// the conflicting earlier writeset.
//
// Results are memoized in the entry's CertifiedBack field so repeated
// requests from different replicas do not repeat intersection work.
func (e *Engine) CertifyBack(v, back Version) (Version, error) {
	i := e.entryIndex(v)
	if i < 0 {
		return 0, fmt.Errorf("%w: certify-back for version %d (horizon %d, system %d)", ErrTruncated, v, e.trunc, e.system)
	}
	entry := &e.log[i]
	if entry.CertifiedBack <= back {
		return entry.CertifiedBack, nil
	}
	if back < e.trunc {
		back = e.trunc
	}
	// Scan writer versions of each touched item for a writer in
	// (back, entry.CertifiedBack]; the newest such writer bounds how
	// far back the entry can be certified.
	bound := back
	for _, id := range entry.WS.Items() {
		vs := e.writers[id]
		idx := sort.Search(len(vs), func(k int) bool { return vs[k] > back })
		for ; idx < len(vs) && vs[idx] <= entry.CertifiedBack; idx++ {
			if vs[idx] != v && vs[idx] > bound {
				bound = vs[idx]
			}
		}
	}
	entry.CertifiedBack = bound
	return bound, nil
}

// Truncate garbage-collects log entries with Version <= below. It is
// called once every replica has acknowledged receipt of those versions.
// Truncating beyond the system version is an error.
func (e *Engine) Truncate(below Version) error {
	if below > e.system {
		return fmt.Errorf("core: truncate(%d) beyond system version %d", below, e.system)
	}
	// Never collect an unresolved prepare: its writeset is the only
	// record of what the decision marker will publish.
	if oldest := e.OldestPrepared(); oldest != 0 && below >= oldest {
		below = oldest - 1
	}
	if below <= e.trunc {
		return nil
	}
	cut := int(below - e.trunc)
	dropped := e.log[:cut]
	e.log = append([]LogEntry(nil), e.log[cut:]...)
	e.trunc = below
	for _, entry := range dropped {
		for _, id := range entry.WS.Items() {
			vs := e.writers[id]
			idx := sort.Search(len(vs), func(k int) bool { return vs[k] > below })
			if idx == 0 {
				continue
			}
			if idx == len(vs) {
				delete(e.writers, id)
			} else {
				e.writers[id] = append([]Version(nil), vs[idx:]...)
			}
		}
	}
	return nil
}

// Restore rebuilds the engine from a log prefix, used during certifier
// recovery: entries must be dense starting at trunc+1.
func (e *Engine) Restore(trunc Version, entries []LogEntry) error {
	e.log = nil
	e.trunc = trunc
	e.system = trunc
	e.writers = make(map[ItemID][]Version)
	e.locks = make(map[ItemID]uint64)
	e.prepared = make(map[uint64]preparedTx)
	e.resolved = make(map[uint64]resolution)
	for i := range entries {
		want := trunc + Version(i) + 1
		if entries[i].Version != want {
			return fmt.Errorf("core: restore: entry %d has version %d, want %d", i, entries[i].Version, want)
		}
		e.append(entries[i])
		e.system = want
	}
	return nil
}

// Snapshot returns a copy of the retained log, for state transfer to a
// recovering certifier peer.
func (e *Engine) Snapshot() (trunc Version, entries []LogEntry) {
	out := make([]LogEntry, len(e.log))
	copy(out, e.log)
	return e.trunc, out
}
