package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func wsOf(items ...string) *Writeset {
	ws := &Writeset{}
	for _, it := range items {
		ws.Add(WriteOp{Kind: OpUpdate, Table: "t", Key: it,
			Cols: []ColUpdate{{Col: "v", Value: []byte(it)}}})
	}
	return ws
}

func TestWritesetEmpty(t *testing.T) {
	var nilWS *Writeset
	if !nilWS.Empty() {
		t.Error("nil writeset should be empty")
	}
	ws := &Writeset{}
	if !ws.Empty() {
		t.Error("zero writeset should be empty")
	}
	ws.Add(WriteOp{Kind: OpDelete, Table: "t", Key: "k"})
	if ws.Empty() {
		t.Error("writeset with an op should not be empty")
	}
}

func TestWritesetItemsDedup(t *testing.T) {
	ws := wsOf("a", "b", "a", "c", "b")
	items := ws.Items()
	want := []ItemID{{"t", "a"}, {"t", "b"}, {"t", "c"}}
	if !reflect.DeepEqual(items, want) {
		t.Errorf("Items() = %v, want %v", items, want)
	}
}

func TestIntersects(t *testing.T) {
	cases := []struct {
		name string
		a, b *Writeset
		want bool
	}{
		{"disjoint", wsOf("a", "b"), wsOf("c", "d"), false},
		{"overlap", wsOf("a", "b"), wsOf("b", "c"), true},
		{"identical", wsOf("x"), wsOf("x"), true},
		{"empty-left", &Writeset{}, wsOf("x"), false},
		{"empty-right", wsOf("x"), &Writeset{}, false},
		{"nil-left", nil, wsOf("x"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Intersects(tc.b); got != tc.want {
				t.Errorf("Intersects = %v, want %v", got, tc.want)
			}
			if got := tc.b.Intersects(tc.a); got != tc.want {
				t.Errorf("reverse Intersects = %v, want %v (must be symmetric)", got, tc.want)
			}
		})
	}
}

func TestIntersectsDifferentTablesSameKey(t *testing.T) {
	a := &Writeset{Ops: []WriteOp{{Kind: OpUpdate, Table: "t1", Key: "k"}}}
	b := &Writeset{Ops: []WriteOp{{Kind: OpUpdate, Table: "t2", Key: "k"}}}
	if a.Intersects(b) {
		t.Error("same key in different tables must not conflict")
	}
}

func TestMerge(t *testing.T) {
	a := wsOf("a")
	a.Merge(wsOf("b", "c"))
	a.Merge(nil)
	if len(a.Ops) != 3 {
		t.Fatalf("merged writeset has %d ops, want 3", len(a.Ops))
	}
	if got := a.Ops[2].Key; got != "c" {
		t.Errorf("op order not preserved: last key %q", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ws := &Writeset{Ops: []WriteOp{
		{Kind: OpInsert, Table: "accounts", Key: "42",
			Cols: []ColUpdate{{Col: "balance", Value: []byte{0, 1, 2, 3}}, {Col: "name", Value: []byte("alice")}}},
		{Kind: OpUpdate, Table: "tellers", Key: "7",
			Cols: []ColUpdate{{Col: "balance", Value: []byte{9}}}},
		{Kind: OpDelete, Table: "history", Key: "zz"},
	}}
	buf := ws.Encode(nil)
	got, n, err := DecodeWriteset(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Errorf("decode consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, ws) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, ws)
	}
}

func TestEncodeSizeMatchesSizeAccounting(t *testing.T) {
	ws := wsOf("a", "bb", "ccc")
	if got, want := len(ws.Encode(nil)), ws.Size(); got != want {
		t.Errorf("encoded length %d != Size() %d", got, want)
	}
	var empty *Writeset
	if got, want := len(empty.Encode(nil)), empty.Size(); got != want {
		t.Errorf("nil writeset encoded length %d != Size() %d", got, want)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	ws := wsOf("a", "b")
	buf := ws.Encode(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeWriteset(buf[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix (of %d) succeeded, want error", cut, len(buf))
		}
	}
	// Bad op kind.
	bad := append([]byte(nil), buf...)
	bad[4] = 0xFF
	if _, _, err := DecodeWriteset(bad); err == nil {
		t.Error("decode with invalid op kind succeeded, want error")
	}
	// Implausible count.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := DecodeWriteset(huge); err == nil {
		t.Error("decode with huge op count succeeded, want error")
	}
}

func TestDecodeTrailingBytesIgnored(t *testing.T) {
	ws := wsOf("k")
	buf := append(ws.Encode(nil), 0xAA, 0xBB)
	got, n, err := DecodeWriteset(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf)-2 {
		t.Errorf("consumed %d bytes, want %d", n, len(buf)-2)
	}
	if !got.Intersects(ws) {
		t.Error("decoded writeset lost its op")
	}
}

// randomWriteset builds an arbitrary writeset from a random source, for
// property tests.
func randomWriteset(r *rand.Rand, maxOps int) *Writeset {
	ws := &Writeset{}
	n := r.Intn(maxOps + 1)
	tables := []string{"accounts", "tellers", "branches", "history", "items"}
	for i := 0; i < n; i++ {
		op := WriteOp{
			Kind:  OpKind(1 + r.Intn(3)),
			Table: tables[r.Intn(len(tables))],
			Key:   strings.Repeat("k", 1+r.Intn(8)) + string(rune('0'+r.Intn(10))),
		}
		if op.Kind != OpDelete {
			nc := 1 + r.Intn(3)
			for c := 0; c < nc; c++ {
				val := make([]byte, r.Intn(32))
				r.Read(val)
				op.Cols = append(op.Cols, ColUpdate{Col: string(rune('a' + c)), Value: val})
			}
		}
		ws.Add(op)
	}
	return ws
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ws := randomWriteset(r, 16)
		buf := ws.Encode(nil)
		got, n, err := DecodeWriteset(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return bytes.Equal(got.Encode(nil), buf) && got.Checksum() == ws.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomWriteset(r, 8), randomWriteset(r, 8)
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsMatchesNaive(t *testing.T) {
	naive := func(a, b *Writeset) bool {
		for i := range a.Ops {
			for j := range b.Ops {
				if a.Ops[i].Item() == b.Ops[j].Item() {
					return true
				}
			}
		}
		return false
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomWriteset(r, 10), randomWriteset(r, 10)
		return a.Intersects(b) == naive(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	ws := &Writeset{Ops: []WriteOp{{Kind: OpUpdate, Table: "t", Key: "k",
		Cols: []ColUpdate{{Col: "c", Value: []byte{1, 2}}}}}}
	cp := ws.Clone()
	cp.Ops[0].Cols[0].Value[0] = 99
	cp.Ops[0].Key = "other"
	if ws.Ops[0].Cols[0].Value[0] != 1 || ws.Ops[0].Key != "k" {
		t.Error("Clone shares memory with original")
	}
	var nilWS *Writeset
	if nilWS.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestSortItems(t *testing.T) {
	items := []ItemID{{"b", "2"}, {"a", "9"}, {"b", "1"}, {"a", "1"}}
	SortItems(items)
	want := []ItemID{{"a", "1"}, {"a", "9"}, {"b", "1"}, {"b", "2"}}
	if !reflect.DeepEqual(items, want) {
		t.Errorf("SortItems = %v, want %v", items, want)
	}
}

func TestOpKindString(t *testing.T) {
	if OpInsert.String() != "INSERT" || OpUpdate.String() != "UPDATE" || OpDelete.String() != "DELETE" {
		t.Error("OpKind.String mismatch")
	}
	if !strings.Contains(OpKind(77).String(), "77") {
		t.Error("unknown OpKind should include numeric value")
	}
}

func TestWritesetString(t *testing.T) {
	if got := wsOf("a").String(); !strings.Contains(got, "t/a") {
		t.Errorf("String() = %q, want it to mention t/a", got)
	}
	var empty *Writeset
	if empty.String() != "{}" {
		t.Errorf("empty String() = %q", empty.String())
	}
}
