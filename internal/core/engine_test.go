package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCertifyCommitAssignsDenseVersions(t *testing.T) {
	e := NewEngine()
	for i := 1; i <= 10; i++ {
		v, d := e.Certify(e.SystemVersion(), wsOf(string(rune('a'+i))), 0)
		if d != Commit {
			t.Fatalf("tx %d: decision %v, want commit", i, d)
		}
		if v != Version(i) {
			t.Fatalf("tx %d: version %d, want %d", i, v, i)
		}
	}
	if e.SystemVersion() != 10 {
		t.Errorf("system version %d, want 10", e.SystemVersion())
	}
}

func TestCertifyDetectsConflict(t *testing.T) {
	e := NewEngine()
	// T1 commits x at version 1.
	if _, d := e.Certify(0, wsOf("x"), 0); d != Commit {
		t.Fatal("first writer should commit")
	}
	// T2 also started at version 0 and writes x: concurrent conflict.
	if _, d := e.Certify(0, wsOf("x", "y"), 0); d != Abort {
		t.Error("concurrent write-write conflict must abort")
	}
	// T3 starts at version 1 (after T1 committed): no conflict.
	if _, d := e.Certify(1, wsOf("x"), 0); d != Commit {
		t.Error("serial re-write of x must commit")
	}
}

func TestCertifyDisjointConcurrentCommit(t *testing.T) {
	e := NewEngine()
	if _, d := e.Certify(0, wsOf("a"), 0); d != Commit {
		t.Fatal("a")
	}
	if _, d := e.Certify(0, wsOf("b"), 0); d != Commit {
		t.Fatal("disjoint concurrent writesets must both commit")
	}
}

func TestCertifyEmptyWritesetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Certify with empty writeset should panic")
		}
	}()
	NewEngine().Certify(0, &Writeset{}, 0)
}

func TestEntriesSince(t *testing.T) {
	e := NewEngine()
	for _, k := range []string{"a", "b", "c", "d"} {
		e.Certify(e.SystemVersion(), wsOf(k), 0)
	}
	got, err := e.EntriesSince(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Version != 2 || got[1].Version != 3 {
		t.Errorf("EntriesSince(1,3) = %v", got)
	}
	// upTo beyond system clamps.
	got, err = e.EntriesSince(2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Version != 4 {
		t.Errorf("clamped EntriesSince = %v", got)
	}
	if got, _ := e.EntriesSince(4, 4); got != nil {
		t.Errorf("empty range should be nil, got %v", got)
	}
}

func TestTruncate(t *testing.T) {
	e := NewEngine()
	for _, k := range []string{"a", "b", "a", "c"} {
		e.Certify(e.SystemVersion(), wsOf(k), 0)
	}
	if err := e.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if e.TruncatedBelow() != 2 || e.Len() != 2 {
		t.Fatalf("after truncate: horizon %d len %d", e.TruncatedBelow(), e.Len())
	}
	if _, err := e.EntriesSince(1, 4); !errors.Is(err, ErrTruncated) {
		t.Errorf("EntriesSince below horizon: err=%v, want ErrTruncated", err)
	}
	if _, err := e.Entry(2); !errors.Is(err, ErrTruncated) {
		t.Errorf("Entry(2): err=%v, want ErrTruncated", err)
	}
	if ent, err := e.Entry(3); err != nil || ent.Version != 3 {
		t.Errorf("Entry(3) = %v, %v", ent, err)
	}
	// Conflict detection must still work across the horizon: "a" was
	// last written at version 3 which is retained.
	if _, d := e.Certify(2, wsOf("a"), 0); d != Abort {
		t.Error("conflict with retained post-truncation writer must abort")
	}
	if err := e.Truncate(99); err == nil {
		t.Error("truncate beyond system version should error")
	}
	if err := e.Truncate(1); err != nil {
		t.Errorf("idempotent truncate below horizon: %v", err)
	}
}

func TestCertifyBack(t *testing.T) {
	e := NewEngine()
	e.Certify(0, wsOf("x"), 0) // v1
	e.Certify(1, wsOf("y"), 0) // v2
	e.Certify(2, wsOf("z"), 0) // v3, started at 2
	// v3 writes z, nothing earlier wrote z: certifiable back to 0.
	back, err := e.CertifyBack(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back != 0 {
		t.Errorf("CertifyBack(3,0) = %d, want 0", back)
	}
	// v2 writes y; nothing else writes y.
	if back, _ := e.CertifyBack(2, 0); back != 0 {
		t.Errorf("CertifyBack(2,0) = %d, want 0", back)
	}
	// A later writer of x: v4 started at 3.
	e.Certify(3, wsOf("x"), 0) // v4
	// v4 conflicts with v1 (both write x), so certify-back stops at 1.
	if back, _ := e.CertifyBack(4, 0); back != 1 {
		t.Errorf("CertifyBack(4,0) = %d, want 1 (artificial conflict with v1)", back)
	}
	// Memoized result must be stable.
	if back, _ := e.CertifyBack(4, 0); back != 1 {
		t.Error("memoized CertifyBack changed")
	}
	// Asking for a shallower bound uses the memo.
	if back, _ := e.CertifyBack(4, 2); back != 1 {
		t.Errorf("CertifyBack(4,2) = %d, want memoized 1", back)
	}
	if _, err := e.CertifyBack(99, 0); err == nil {
		t.Error("CertifyBack of unknown version should error")
	}
}

func TestRestoreRebuildsEngine(t *testing.T) {
	e := NewEngine()
	e.Certify(0, wsOf("a"), 0)
	e.Certify(1, wsOf("b"), 0)
	e.Certify(2, wsOf("a"), 0)
	trunc, entries := e.Snapshot()

	r := NewEngine()
	if err := r.Restore(trunc, entries); err != nil {
		t.Fatal(err)
	}
	if r.SystemVersion() != e.SystemVersion() {
		t.Errorf("restored system version %d, want %d", r.SystemVersion(), e.SystemVersion())
	}
	// Conflict behaviour must be identical after restore.
	if _, d := r.Certify(2, wsOf("a"), 0); d != Abort {
		t.Error("restored engine lost conflict state")
	}
	if _, d := r.Certify(3, wsOf("c"), 0); d != Commit {
		t.Error("restored engine rejects clean writeset")
	}

	bad := []LogEntry{{Version: 5, WS: wsOf("q")}}
	if err := NewEngine().Restore(0, bad); err == nil {
		t.Error("restore with non-dense versions should error")
	}
}

func TestRestoreAfterTruncate(t *testing.T) {
	e := NewEngine()
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		e.Certify(e.SystemVersion(), wsOf(k), 0)
	}
	if err := e.Truncate(3); err != nil {
		t.Fatal(err)
	}
	trunc, entries := e.Snapshot()
	if trunc != 3 || len(entries) != 2 {
		t.Fatalf("snapshot trunc=%d len=%d", trunc, len(entries))
	}
	r := NewEngine()
	if err := r.Restore(trunc, entries); err != nil {
		t.Fatal(err)
	}
	if r.SystemVersion() != 5 {
		t.Errorf("system version %d, want 5", r.SystemVersion())
	}
}

// TestQuickGSISafety is the core safety property: for any interleaving,
// a committed writeset never intersects another writeset committed
// between its start version and its commit version.
func TestQuickGSISafety(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		type committed struct {
			start, commit Version
			ws            *Writeset
		}
		var history []committed
		keys := []string{"a", "b", "c", "d", "e", "f"}
		for i := 0; i < 60; i++ {
			// Random start version at or before current system version.
			start := Version(r.Intn(int(e.SystemVersion()) + 1))
			ws := &Writeset{}
			for _, k := range keys {
				if r.Intn(4) == 0 {
					ws.Add(WriteOp{Kind: OpUpdate, Table: "t", Key: k})
				}
			}
			if ws.Empty() {
				continue
			}
			v, d := e.Certify(start, ws, 0)
			if d == Commit {
				history = append(history, committed{start, v, ws})
			}
		}
		// Check pairwise: no committed tx intersects a tx committed in
		// its (start, commit) window.
		for i := range history {
			for j := range history {
				if i == j {
					continue
				}
				a, b := history[i], history[j]
				if b.commit > a.start && b.commit < a.commit && a.ws.Intersects(b.ws) {
					return false
				}
			}
		}
		// Versions dense and unique.
		for i := range history {
			if i > 0 && history[i].commit <= history[i-1].commit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickCertifyBackSound checks that whenever CertifyBack reports an
// entry conflict-free back to version b, no retained writeset in
// (b, entry.Version) actually intersects it.
func TestQuickCertifyBackSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		keys := []string{"a", "b", "c", "d"}
		for i := 0; i < 40; i++ {
			start := Version(r.Intn(int(e.SystemVersion()) + 1))
			ws := &Writeset{}
			for _, k := range keys {
				if r.Intn(3) == 0 {
					ws.Add(WriteOp{Kind: OpUpdate, Table: "t", Key: k})
				}
			}
			if ws.Empty() {
				continue
			}
			e.Certify(start, ws, 0)
		}
		sys := int(e.SystemVersion())
		if sys == 0 {
			return true
		}
		for probe := 0; probe < 10; probe++ {
			v := Version(1 + r.Intn(sys))
			back, err := e.CertifyBack(v, 0)
			if err != nil {
				return false
			}
			entry, err := e.Entry(v)
			if err != nil {
				return false
			}
			for u := back + 1; u < v; u++ {
				other, err := e.Entry(u)
				if err != nil {
					return false
				}
				if entry.WS.Intersects(other.WS) {
					return false // claimed conflict-free but intersects
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDecisionString(t *testing.T) {
	if Commit.String() != "commit" || Abort.String() != "abort" {
		t.Error("Decision.String mismatch")
	}
	if Decision(9).String() == "" {
		t.Error("unknown decision should still render")
	}
}

func BenchmarkCertifyNoConflict(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws := &Writeset{Ops: []WriteOp{{Kind: OpUpdate, Table: "t", Key: string(rune(i))}}}
		e.Certify(e.SystemVersion(), ws, 0)
		if i%4096 == 0 && e.SystemVersion() > 4096 {
			e.Truncate(e.SystemVersion() - 1024)
		}
	}
}
