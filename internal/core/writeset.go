// Package core implements the protocol heart of generalized snapshot
// isolation (GSI) replication as described in the Tashkent paper
// (Elnikety, Dropsho, Pedone — EuroSys 2006): database versions,
// writesets, writeset intersection, and the certification engine that
// assigns the global commit order.
//
// Everything in this package is pure data-structure code with no IO and
// no goroutines; the certifier server, proxy and storage engine are
// built on top of it.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
)

// Version counts database snapshots. The initial database state is
// version 0; committing the i-th update transaction in the global order
// produces version i.
type Version uint64

// OpKind identifies the kind of a row modification captured in a
// writeset, mirroring the INSERT/UPDATE/DELETE triggers the paper
// installs on replicated tables.
type OpKind uint8

const (
	// OpInsert captures a full new row.
	OpInsert OpKind = iota + 1
	// OpUpdate captures the primary key and the modified columns.
	OpUpdate
	// OpDelete captures only the primary key.
	OpDelete
)

// String returns the SQL-ish name of the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// ItemID identifies a database item (a row) for write-write conflict
// detection: the certifier compares table and key identifiers for
// matches, exactly as the paper's "writeset intersection" does.
type ItemID struct {
	Table string
	Key   string
}

// String renders the item as table/key.
func (id ItemID) String() string { return id.Table + "/" + id.Key }

// ColUpdate is one modified column: name plus the new value bytes.
type ColUpdate struct {
	Col   string
	Value []byte
}

// WriteOp is a single captured row modification.
type WriteOp struct {
	Kind  OpKind
	Table string
	Key   string
	// Cols carries the full row for INSERT and the modified columns
	// for UPDATE. It is empty for DELETE.
	Cols []ColUpdate
}

// Item returns the conflict-detection identity of the operation.
func (op *WriteOp) Item() ItemID { return ItemID{Table: op.Table, Key: op.Key} }

// encodedSize returns the number of bytes Encode will emit for op.
func (op *WriteOp) encodedSize() int {
	n := 1 + 2 + len(op.Table) + 2 + len(op.Key) + 2
	for i := range op.Cols {
		n += 2 + len(op.Cols[i].Col) + 4 + len(op.Cols[i].Value)
	}
	return n
}

// Writeset captures the minimal set of actions necessary to recreate a
// transaction's modifications. An empty writeset identifies a read-only
// transaction.
type Writeset struct {
	Ops []WriteOp
}

// Empty reports whether the writeset carries no modifications, i.e.
// whether the transaction was read-only.
func (ws *Writeset) Empty() bool { return ws == nil || len(ws.Ops) == 0 }

// Add appends a write operation.
func (ws *Writeset) Add(op WriteOp) { ws.Ops = append(ws.Ops, op) }

// Items returns the set of item identities touched, deduplicated, in
// first-touch order.
func (ws *Writeset) Items() []ItemID {
	if ws == nil {
		return nil
	}
	seen := make(map[ItemID]struct{}, len(ws.Ops))
	items := make([]ItemID, 0, len(ws.Ops))
	for i := range ws.Ops {
		id := ws.Ops[i].Item()
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		items = append(items, id)
	}
	return items
}

// Intersects reports whether the two writesets modify a common item
// (a write-write conflict under snapshot isolation).
func (ws *Writeset) Intersects(other *Writeset) bool {
	if ws.Empty() || other.Empty() {
		return false
	}
	a, b := ws, other
	if len(a.Ops) > len(b.Ops) {
		a, b = b, a
	}
	set := make(map[ItemID]struct{}, len(a.Ops))
	for i := range a.Ops {
		set[a.Ops[i].Item()] = struct{}{}
	}
	for i := range b.Ops {
		if _, hit := set[b.Ops[i].Item()]; hit {
			return true
		}
	}
	return false
}

// Merge appends all operations of other into ws, preserving order. It
// implements the paper's grouping of several remote writesets into one
// combined transaction (e.g. T1_2_3 with writeset {W1,W2,W3}).
func (ws *Writeset) Merge(other *Writeset) {
	if other == nil {
		return
	}
	ws.Ops = append(ws.Ops, other.Ops...)
}

// Size returns the encoded size of the writeset in bytes. The paper
// reports average writeset sizes of 54 B (AllUpdates), 158 B (TPC-B)
// and 275 B (TPC-W); workload generators target those sizes using this
// accounting.
func (ws *Writeset) Size() int {
	if ws == nil {
		return 4
	}
	n := 4
	for i := range ws.Ops {
		n += ws.Ops[i].encodedSize()
	}
	return n
}

// Clone returns a deep copy of the writeset.
func (ws *Writeset) Clone() *Writeset {
	if ws == nil {
		return nil
	}
	out := &Writeset{Ops: make([]WriteOp, len(ws.Ops))}
	copy(out.Ops, ws.Ops)
	for i := range out.Ops {
		if len(ws.Ops[i].Cols) > 0 {
			out.Ops[i].Cols = make([]ColUpdate, len(ws.Ops[i].Cols))
			copy(out.Ops[i].Cols, ws.Ops[i].Cols)
			for j := range out.Ops[i].Cols {
				v := make([]byte, len(ws.Ops[i].Cols[j].Value))
				copy(v, ws.Ops[i].Cols[j].Value)
				out.Ops[i].Cols[j].Value = v
			}
		}
	}
	return out
}

// String renders a compact human-readable form, used in logs and tests.
func (ws *Writeset) String() string {
	if ws.Empty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range ws.Ops {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s %s", ws.Ops[i].Kind, ws.Ops[i].Item())
	}
	b.WriteByte('}')
	return b.String()
}

// Encoding
//
// Writesets cross process boundaries (proxy→certifier, certifier→proxy,
// certifier persistent log, WAL) so they get a compact, stable binary
// framing: CRC-protected at the WAL layer, length-delimited here.
//
//	uint32 opCount
//	per op:
//	  uint8  kind
//	  uint16 len(table) | table bytes
//	  uint16 len(key)   | key bytes
//	  uint16 colCount
//	  per col: uint16 len(name) | name | uint32 len(value) | value

var (
	// ErrCorruptWriteset reports a malformed writeset encoding.
	ErrCorruptWriteset = errors.New("core: corrupt writeset encoding")
	// errShort is wrapped into ErrCorruptWriteset by decode helpers.
	errShort = errors.New("short buffer")
)

// Encode appends the binary encoding of ws to buf and returns the
// extended slice.
func (ws *Writeset) Encode(buf []byte) []byte {
	var n int
	if ws != nil {
		n = len(ws.Ops)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	if ws == nil {
		return buf
	}
	for i := range ws.Ops {
		op := &ws.Ops[i]
		buf = append(buf, byte(op.Kind))
		buf = appendStr16(buf, op.Table)
		buf = appendStr16(buf, op.Key)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(op.Cols)))
		for j := range op.Cols {
			buf = appendStr16(buf, op.Cols[j].Col)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(op.Cols[j].Value)))
			buf = append(buf, op.Cols[j].Value...)
		}
	}
	return buf
}

// DecodeWriteset parses a writeset from buf, returning the writeset and
// the number of bytes consumed.
func DecodeWriteset(buf []byte) (*Writeset, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("%w: header: %v", ErrCorruptWriteset, errShort)
	}
	n := int(binary.BigEndian.Uint32(buf))
	pos := 4
	if n > len(buf) { // cheap sanity bound: each op needs ≥1 byte
		return nil, 0, fmt.Errorf("%w: implausible op count %d", ErrCorruptWriteset, n)
	}
	ws := &Writeset{Ops: make([]WriteOp, 0, n)}
	for i := 0; i < n; i++ {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("%w: op %d kind: %v", ErrCorruptWriteset, i, errShort)
		}
		op := WriteOp{Kind: OpKind(buf[pos])}
		pos++
		if op.Kind < OpInsert || op.Kind > OpDelete {
			return nil, 0, fmt.Errorf("%w: op %d bad kind %d", ErrCorruptWriteset, i, op.Kind)
		}
		var err error
		if op.Table, pos, err = readStr16(buf, pos); err != nil {
			return nil, 0, fmt.Errorf("%w: op %d table: %v", ErrCorruptWriteset, i, err)
		}
		if op.Key, pos, err = readStr16(buf, pos); err != nil {
			return nil, 0, fmt.Errorf("%w: op %d key: %v", ErrCorruptWriteset, i, err)
		}
		if pos+2 > len(buf) {
			return nil, 0, fmt.Errorf("%w: op %d colcount: %v", ErrCorruptWriteset, i, errShort)
		}
		nc := int(binary.BigEndian.Uint16(buf[pos:]))
		pos += 2
		if nc > 0 {
			op.Cols = make([]ColUpdate, 0, nc)
		}
		for j := 0; j < nc; j++ {
			var col ColUpdate
			if col.Col, pos, err = readStr16(buf, pos); err != nil {
				return nil, 0, fmt.Errorf("%w: op %d col %d name: %v", ErrCorruptWriteset, i, j, err)
			}
			if pos+4 > len(buf) {
				return nil, 0, fmt.Errorf("%w: op %d col %d vlen: %v", ErrCorruptWriteset, i, j, errShort)
			}
			vl := int(binary.BigEndian.Uint32(buf[pos:]))
			pos += 4
			if pos+vl > len(buf) {
				return nil, 0, fmt.Errorf("%w: op %d col %d value: %v", ErrCorruptWriteset, i, j, errShort)
			}
			col.Value = append([]byte(nil), buf[pos:pos+vl]...)
			pos += vl
			op.Cols = append(op.Cols, col)
		}
		ws.Ops = append(ws.Ops, op)
	}
	return ws, pos, nil
}

// Checksum returns a CRC-32 over the canonical encoding, used by tests
// and the dump file format to validate writeset integrity end to end.
func (ws *Writeset) Checksum() uint32 {
	return crc32.ChecksumIEEE(ws.Encode(nil))
}

func appendStr16(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readStr16(buf []byte, pos int) (string, int, error) {
	if pos+2 > len(buf) {
		return "", pos, errShort
	}
	n := int(binary.BigEndian.Uint16(buf[pos:]))
	pos += 2
	if pos+n > len(buf) {
		return "", pos, errShort
	}
	return string(buf[pos : pos+n]), pos + n, nil
}

// SortItems sorts a slice of item identities, for deterministic output
// in diagnostics and tests.
func SortItems(items []ItemID) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Table != items[j].Table {
			return items[i].Table < items[j].Table
		}
		return items[i].Key < items[j].Key
	})
}
