// Package metrics provides the lightweight measurement primitives used
// by the experiment harness: latency histograms, throughput counters
// and time-windowed rates. All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Latency accumulates response-time samples and reports summary
// statistics. It keeps an exact reservoir up to a cap, then switches to
// uniform reservoir sampling so percentile estimates stay unbiased on
// long runs.
type Latency struct {
	mu       sync.Mutex
	count    int64
	sum      time.Duration
	min      time.Duration
	max      time.Duration
	samples  []time.Duration
	seen     int64 // samples offered to the reservoir
	capN     int
	rngState uint64
}

// NewLatency returns a recorder with the given reservoir capacity
// (<=0 selects a default of 8192 samples).
func NewLatency(capN int) *Latency {
	if capN <= 0 {
		capN = 8192
	}
	return &Latency{capN: capN, rngState: 0x9E3779B97F4A7C15}
}

// Observe records one sample.
func (l *Latency) Observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count++
	l.sum += d
	if l.count == 1 || d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.seen++
	if len(l.samples) < l.capN {
		l.samples = append(l.samples, d)
		return
	}
	// Vitter's algorithm R.
	if idx := l.nextRand() % uint64(l.seen); idx < uint64(l.capN) {
		l.samples[idx] = d
	}
}

// nextRand is a splitmix64 step; private PRNG avoids contending the
// global rand lock on hot paths.
func (l *Latency) nextRand() uint64 {
	l.rngState += 0x9E3779B97F4A7C15
	z := l.rngState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Reset clears the recorder for a fresh measurement interval, keeping
// the reservoir capacity.
func (l *Latency) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count, l.sum, l.min, l.max, l.seen = 0, 0, 0, 0, 0
	l.samples = l.samples[:0]
}

// Count returns the number of samples observed.
func (l *Latency) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Mean returns the exact mean of all observed samples.
func (l *Latency) Mean() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count == 0 {
		return 0
	}
	return l.sum / time.Duration(l.count)
}

// Min and Max return the exact extremes.
func (l *Latency) Min() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.min
}

// Max returns the largest observed sample.
func (l *Latency) Max() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.max
}

// Percentile returns the p-th percentile (0 < p <= 100) estimated from
// the reservoir.
func (l *Latency) Percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	if p <= 0 {
		p = 0.001
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]time.Duration, len(l.samples))
	copy(sorted, l.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Summary is a point-in-time digest of a Latency recorder.
type Summary struct {
	Count          int64
	Mean, Min, Max time.Duration
	P50, P95, P99  time.Duration
}

// Summarize returns the digest.
func (l *Latency) Summarize() Summary {
	return Summary{
		Count: l.Count(),
		Mean:  l.Mean(),
		Min:   l.Min(),
		Max:   l.Max(),
		P50:   l.Percentile(50),
		P95:   l.Percentile(95),
		P99:   l.Percentile(99),
	}
}

// String renders the summary compactly for harness output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, round(s.Mean), round(s.P50), round(s.P95), round(s.P99), round(s.Max))
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

// Distribution accumulates small positive integer samples — batch
// sizes, group sizes, queue depths — into power-of-two buckets plus
// exact count/sum/max, cheap enough for hot paths. The zero value is
// ready to use.
type Distribution struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	max     int64
	buckets [distBuckets]int64 // bucket i counts samples in (2^(i-1), 2^i]
}

// distBuckets covers samples up to 2^31; anything larger clamps into
// the last bucket.
const distBuckets = 32

// bucketFor returns the bucket index for sample v >= 1: bucket 0 holds
// 1, bucket 1 holds 2, bucket 2 holds 3-4, bucket 3 holds 5-8, ...
func bucketFor(v int64) int {
	b := 0
	for hi := int64(1); hi < v && b < distBuckets-1; hi <<= 1 {
		b++
	}
	return b
}

// Observe records one sample. Non-positive samples are ignored.
func (d *Distribution) Observe(v int64) {
	if v <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.count++
	d.sum += v
	if v > d.max {
		d.max = v
	}
	d.buckets[bucketFor(v)]++
}

// Reset zeroes the distribution.
func (d *Distribution) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.count, d.sum, d.max = 0, 0, 0
	d.buckets = [distBuckets]int64{}
}

// Count returns the number of samples observed.
func (d *Distribution) Count() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Sum returns the sum of all samples.
func (d *Distribution) Sum() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sum
}

// Max returns the largest sample observed.
func (d *Distribution) Max() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}

// Mean returns the exact mean of all samples (0 with no samples).
func (d *Distribution) Mean() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// Percentile returns an upper bound on the p-th percentile (0 < p <=
// 100), resolved to bucket granularity: the upper edge of the bucket
// containing that rank.
func (d *Distribution) Percentile(p float64) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.percentileLocked(p)
}

func (d *Distribution) percentileLocked(p float64) int64 {
	if d.count == 0 {
		return 0
	}
	if p <= 0 {
		p = 0.001
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(d.count)))
	var seen int64
	for i, c := range d.buckets {
		seen += c
		if seen >= rank {
			if i == 0 {
				return 1
			}
			hi := int64(1) << uint(i)
			if hi > d.max {
				hi = d.max
			}
			return hi
		}
	}
	return d.max
}

// DistSummary is a point-in-time digest of a Distribution.
type DistSummary struct {
	Count, Sum, Max int64
	Mean            float64
	P50, P99        int64
}

// Summarize returns the digest, snapshotted atomically with respect to
// concurrent Observe calls.
func (d *Distribution) Summarize() DistSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DistSummary{
		Count: d.count,
		Sum:   d.sum,
		Max:   d.max,
		P50:   d.percentileLocked(50),
		P99:   d.percentileLocked(99),
	}
	if d.count > 0 {
		s.Mean = float64(d.sum) / float64(d.count)
	}
	return s
}

// String renders the digest compactly.
func (s DistSummary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d max=%d",
		s.Count, s.Mean, s.P50, s.P99, s.Max)
}

// MergeDist combines per-group digests of one statistic — e.g. the
// certification pipeline batch sizes of a partitioned deployment's
// certifier groups — into a single roll-up. Count, Sum and Max merge
// exactly and Mean is recomputed from the merged totals; P50/P99 are
// conservative upper bounds (the largest per-group value at that
// rank), since a digest no longer carries bucket detail.
func MergeDist(parts ...DistSummary) DistSummary {
	var out DistSummary
	for _, p := range parts {
		out.Count += p.Count
		out.Sum += p.Sum
		if p.Max > out.Max {
			out.Max = p.Max
		}
		if p.P50 > out.P50 {
			out.P50 = p.P50
		}
		if p.P99 > out.P99 {
			out.P99 = p.P99
		}
	}
	if out.Count > 0 {
		out.Mean = float64(out.Sum) / float64(out.Count)
	}
	return out
}

// UtilSummary aggregates utilization fractions across parallel
// channels — e.g. the per-group certifier log disks of a partitioned
// deployment, where the mean shows how the load spread and the max
// which channel is closest to saturation.
type UtilSummary struct {
	Per       []float64
	Mean, Max float64
}

// SummarizeUtil rolls up per-channel utilizations.
func SummarizeUtil(per []float64) UtilSummary {
	s := UtilSummary{Per: per}
	if len(per) == 0 {
		return s
	}
	var sum float64
	for _, u := range per {
		sum += u
		if u > s.Max {
			s.Max = u
		}
	}
	s.Mean = sum / float64(len(per))
	return s
}

// String renders the roll-up compactly.
func (s UtilSummary) String() string {
	return fmt.Sprintf("mean=%.0f%% max=%.0f%%", s.Mean*100, s.Max*100)
}

// Gauge tracks an instantaneous level — e.g. apply workers currently
// installing — with a high-watermark. The zero value is ready to use.
type Gauge struct {
	mu  sync.Mutex
	cur int64
	max int64
}

// Inc raises the level by one and returns the new value.
func (g *Gauge) Inc() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cur++
	if g.cur > g.max {
		g.max = g.cur
	}
	return g.cur
}

// Dec lowers the level by one.
func (g *Gauge) Dec() {
	g.mu.Lock()
	g.cur--
	g.mu.Unlock()
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// High returns the high-watermark.
func (g *Gauge) High() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Reset zeroes the gauge and its high-watermark.
func (g *Gauge) Reset() {
	g.mu.Lock()
	g.cur, g.max = 0, 0
	g.mu.Unlock()
}

// Counter is a concurrent event counter.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Interval measures throughput over an explicit window: call Start,
// run the workload, call Stop, then read Rate.
type Interval struct {
	mu      sync.Mutex
	events  int64
	started time.Time
	stopped time.Time
	running bool
}

// Start begins (or restarts) the measurement window and zeroes the
// event count.
func (iv *Interval) Start() {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	iv.events = 0
	iv.started = time.Now()
	iv.running = true
}

// Record counts n completed events if the window is open.
func (iv *Interval) Record(n int64) {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if iv.running {
		iv.events += n
	}
}

// Stop closes the window.
func (iv *Interval) Stop() {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if iv.running {
		iv.stopped = time.Now()
		iv.running = false
	}
}

// Events returns the number of events recorded in the window.
func (iv *Interval) Events() int64 {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	return iv.events
}

// Elapsed returns the window length (to now if still open).
func (iv *Interval) Elapsed() time.Duration {
	iv.mu.Lock()
	defer iv.mu.Unlock()
	if iv.started.IsZero() {
		return 0
	}
	end := iv.stopped
	if iv.running {
		end = time.Now()
	}
	return end.Sub(iv.started)
}

// Rate returns events per second over the window.
func (iv *Interval) Rate() float64 {
	e := iv.Elapsed()
	if e <= 0 {
		return 0
	}
	return float64(iv.Events()) / e.Seconds()
}
