package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLatencyBasics(t *testing.T) {
	l := NewLatency(100)
	for i := 1; i <= 10; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 10 {
		t.Errorf("Count = %d, want 10", l.Count())
	}
	if got, want := l.Mean(), 5500*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if l.Min() != time.Millisecond {
		t.Errorf("Min = %v", l.Min())
	}
	if l.Max() != 10*time.Millisecond {
		t.Errorf("Max = %v", l.Max())
	}
	if got := l.Percentile(50); got != 5*time.Millisecond {
		t.Errorf("P50 = %v, want 5ms", got)
	}
	if got := l.Percentile(100); got != 10*time.Millisecond {
		t.Errorf("P100 = %v, want 10ms", got)
	}
}

func TestLatencyEmpty(t *testing.T) {
	l := NewLatency(0)
	if l.Mean() != 0 || l.Percentile(99) != 0 || l.Count() != 0 {
		t.Error("empty recorder should report zeros")
	}
}

func TestLatencyPercentileClamps(t *testing.T) {
	l := NewLatency(10)
	l.Observe(time.Millisecond)
	if l.Percentile(-5) != time.Millisecond || l.Percentile(500) != time.Millisecond {
		t.Error("out-of-range percentile should clamp")
	}
}

func TestLatencyReservoirOverflowKeepsMeanExact(t *testing.T) {
	l := NewLatency(16)
	var sum time.Duration
	const n = 10000
	for i := 0; i < n; i++ {
		d := time.Duration(i%100) * time.Microsecond
		sum += d
		l.Observe(d)
	}
	if l.Count() != n {
		t.Errorf("Count = %d", l.Count())
	}
	if got, want := l.Mean(), sum/time.Duration(n); got != want {
		t.Errorf("Mean = %v, want exact %v despite reservoir sampling", got, want)
	}
	// Percentiles must stay within the observed range.
	if p := l.Percentile(95); p < 0 || p > 99*time.Microsecond {
		t.Errorf("P95 = %v outside observed range", p)
	}
}

func TestLatencyConcurrent(t *testing.T) {
	l := NewLatency(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if l.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", l.Count())
	}
}

func TestSummaryString(t *testing.T) {
	l := NewLatency(10)
	l.Observe(3 * time.Millisecond)
	s := l.Summarize()
	if s.Count != 1 || s.Mean != 3*time.Millisecond {
		t.Errorf("Summary = %+v", s)
	}
	if str := s.String(); !strings.Contains(str, "n=1") {
		t.Errorf("Summary.String() = %q", str)
	}
}

func TestDistributionBasics(t *testing.T) {
	var d Distribution
	for _, v := range []int64{1, 2, 3, 4, 40} {
		d.Observe(v)
	}
	d.Observe(0)  // ignored
	d.Observe(-5) // ignored
	if d.Count() != 5 || d.Sum() != 50 || d.Max() != 40 {
		t.Errorf("count=%d sum=%d max=%d", d.Count(), d.Sum(), d.Max())
	}
	if m := d.Mean(); m != 10 {
		t.Errorf("mean = %v, want 10", m)
	}
	// Bucketed percentiles are upper bounds at power-of-two granularity.
	if p := d.Percentile(50); p < 3 || p > 4 {
		t.Errorf("p50 = %d, want in [3,4]", p)
	}
	if p := d.Percentile(100); p != 40 {
		t.Errorf("p100 = %d, want clamped to max 40", p)
	}
	s := d.Summarize()
	if s.Count != 5 || s.Max != 40 || s.Mean != 10 {
		t.Errorf("summary = %+v", s)
	}
	if str := s.String(); !strings.Contains(str, "n=5") || !strings.Contains(str, "max=40") {
		t.Errorf("summary string = %q", str)
	}
	d.Reset()
	if d.Count() != 0 || d.Sum() != 0 || d.Max() != 0 || d.Percentile(50) != 0 {
		t.Error("reset did not zero the distribution")
	}
}

func TestDistributionSingleSample(t *testing.T) {
	var d Distribution
	d.Observe(1)
	if d.Percentile(50) != 1 || d.Percentile(99) != 1 || d.Max() != 1 {
		t.Errorf("single-sample percentiles: p50=%d p99=%d max=%d", d.Percentile(50), d.Percentile(99), d.Max())
	}
}

func TestDistributionConcurrent(t *testing.T) {
	var d Distribution
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 100; i++ {
				d.Observe(i)
			}
		}()
	}
	wg.Wait()
	if d.Count() != 800 {
		t.Errorf("count = %d, want 800", d.Count())
	}
	if d.Max() != 100 {
		t.Errorf("max = %d", d.Max())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Errorf("Counter = %d, want 800", c.Value())
	}
}

func TestInterval(t *testing.T) {
	var iv Interval
	if iv.Rate() != 0 || iv.Elapsed() != 0 {
		t.Error("zero interval should report 0")
	}
	iv.Start()
	iv.Record(50)
	time.Sleep(20 * time.Millisecond)
	iv.Record(50)
	iv.Stop()
	iv.Record(1000) // ignored after Stop
	if iv.Events() != 100 {
		t.Errorf("Events = %d, want 100", iv.Events())
	}
	if iv.Elapsed() < 20*time.Millisecond {
		t.Errorf("Elapsed = %v, want >= 20ms", iv.Elapsed())
	}
	r := iv.Rate()
	if r <= 0 || r > 100/0.02 {
		t.Errorf("Rate = %v out of plausible range", r)
	}
	// Restart clears.
	iv.Start()
	if iv.Events() != 0 {
		t.Error("Start did not clear events")
	}
	iv.Stop()
}

func TestMergeDist(t *testing.T) {
	var a, b Distribution
	for i := int64(1); i <= 10; i++ {
		a.Observe(i)
	}
	for i := int64(20); i <= 24; i++ {
		b.Observe(i)
	}
	m := MergeDist(a.Summarize(), b.Summarize())
	if m.Count != 15 {
		t.Errorf("Count = %d, want 15", m.Count)
	}
	if want := a.Sum() + b.Sum(); m.Sum != want {
		t.Errorf("Sum = %d, want %d", m.Sum, want)
	}
	if m.Max != 24 {
		t.Errorf("Max = %d, want 24", m.Max)
	}
	if want := float64(m.Sum) / 15; m.Mean != want {
		t.Errorf("Mean = %v, want %v", m.Mean, want)
	}
	// Percentiles are conservative: at least the per-group values.
	if m.P99 < b.Summarize().P99 {
		t.Errorf("P99 = %d below a merged part's P99 %d", m.P99, b.Summarize().P99)
	}
	if empty := MergeDist(); empty.Count != 0 || empty.Mean != 0 {
		t.Errorf("MergeDist() = %+v, want zero", empty)
	}
}

func TestSummarizeUtil(t *testing.T) {
	s := SummarizeUtil([]float64{0.2, 0.4, 0.9})
	if s.Max != 0.9 {
		t.Errorf("Max = %v, want 0.9", s.Max)
	}
	if want := (0.2 + 0.4 + 0.9) / 3; s.Mean != want {
		t.Errorf("Mean = %v, want %v", s.Mean, want)
	}
	if len(s.Per) != 3 {
		t.Errorf("Per = %v, want 3 entries", s.Per)
	}
	if z := SummarizeUtil(nil); z.Mean != 0 || z.Max != 0 {
		t.Errorf("SummarizeUtil(nil) = %+v, want zero", z)
	}
}
