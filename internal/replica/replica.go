// Package replica assembles one database replica node: the storage
// engine, its middleware proxy, and the IO channels — plus the
// per-mode crash/recovery procedures of paper §7:
//
//   - Tashkent-MW (§7.1): the database runs without synchronous WAL
//     writes, so a crash may corrupt the data files (case 1). The
//     middleware periodically takes full database dumps, keeps the
//     last two, and recovers by restoring the newest intact dump and
//     re-applying the writesets committed since from the certifier.
//   - Base and Tashkent-API (§7.2): the database recovers from its own
//     WAL, then the proxy re-applies whatever the WAL did not cover —
//     always safe because writesets carry absolute values.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/mvstore"
	"tashkent/internal/partition"
	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
	"tashkent/internal/wal"
)

// IOConfig describes the replica's disk layout.
type IOConfig struct {
	// Profile is the physical disk latency profile.
	Profile simdisk.Profile
	// Dedicated puts the database files on ramdisk so the physical
	// channel serves only the log (the paper's "dedicated IO"
	// configuration); otherwise one shared channel serves both.
	Dedicated bool
	// Seed fixes the disks' jitter streams.
	Seed int64
}

// Config parameterizes a replica.
type Config struct {
	ID   int
	Mode proxy.Mode
	IO   IOConfig
	Cert *certifier.Client
	// Parts switches the replica to partitioned certification: commits
	// route across the topology's certifier groups and Cert is unused
	// (see internal/partition). Forces eager pre-certification.
	Parts *partition.Topology

	// Storage tuning (see mvstore.Config).
	PageMissEvery   int
	CheckpointEvery int
	LockTimeout     time.Duration
	OrderTimeout    time.Duration
	StoreStripes    int // data-shard / lock-stripe count (0 = engine default)

	// Middleware options.
	LocalCertification bool
	EagerPreCert       bool
	StalenessBound     time.Duration
	// SeqTimeout bounds how long the proxy waits for a lost response-
	// sequence predecessor before resyncing (0 = proxy default).
	SeqTimeout time.Duration
	// SeqObserver forwards proxy sequencer admissions to an invariant
	// checker (see proxy.Config.SeqObserver).
	SeqObserver func(epoch, seq uint64, outcome string)
	// ApplyWorkers enables the parallel dependency-tracked applier with
	// that many install workers (see proxy.Config.ApplyWorkers).
	ApplyWorkers int
}

// ErrCrashed reports operations on a crashed, unrecovered replica.
var ErrCrashed = errors.New("replica: crashed")

// Replica is one node of the replicated database.
type Replica struct {
	cfg      Config
	dataDisk *simdisk.Disk
	logDisk  *simdisk.Disk

	mu      sync.Mutex
	store   *mvstore.Store
	proxy   *proxy.Proxy
	dumps   [][]byte // newest last; at most two kept (paper §7.1)
	crashed bool
}

// disksFor builds the channel layout: shared (one disk for data+log)
// or dedicated (ram data + physical log).
func disksFor(io IOConfig) (data, log *simdisk.Disk) {
	if io.Dedicated {
		return simdisk.New(simdisk.Instant(), io.Seed), simdisk.New(io.Profile, io.Seed+1)
	}
	d := simdisk.New(io.Profile, io.Seed)
	return d, d
}

// storeConfig derives the engine configuration for the mode.
func (cfg *Config) storeConfig(data, log *simdisk.Disk) mvstore.Config {
	sc := mvstore.Config{
		DataDisk:        data,
		LogDisk:         log,
		PageMissEvery:   cfg.PageMissEvery,
		CheckpointEvery: cfg.CheckpointEvery,
		LockTimeout:     cfg.LockTimeout,
		OrderTimeout:    cfg.OrderTimeout,
		Stripes:         cfg.StoreStripes,
	}
	if cfg.Mode == proxy.TashkentMW {
		// Disable all synchronous WAL writes: durability moves to the
		// certifier, data integrity to the dump procedure.
		sc.WALMode = wal.NoSync
	} else {
		sc.WALMode = wal.SyncCommits
	}
	return sc
}

// Open creates a running replica.
func Open(cfg Config) *Replica {
	data, log := disksFor(cfg.IO)
	r := &Replica{cfg: cfg, dataDisk: data, logDisk: log}
	r.store = mvstore.Open(cfg.storeConfig(data, log))
	r.proxy = r.newProxy(r.store)
	return r
}

func (r *Replica) newProxy(store *mvstore.Store) *proxy.Proxy {
	eager := r.cfg.EagerPreCert
	if r.cfg.Parts != nil {
		// The merger goroutine must be able to displace local
		// transactions holding row locks it needs; without eager kills
		// an own commit waiting for its merge position can deadlock
		// against the merger until lock timeouts fire.
		eager = true
	}
	return proxy.New(proxy.Config{
		Mode:               r.cfg.Mode,
		ReplicaID:          r.cfg.ID,
		Store:              store,
		Cert:               r.cfg.Cert,
		LocalCertification: r.cfg.LocalCertification,
		EagerPreCert:       eager,
		StalenessBound:     r.cfg.StalenessBound,
		SeqTimeout:         r.cfg.SeqTimeout,
		SeqObserver:        r.cfg.SeqObserver,
		Parts:              r.cfg.Parts,
		ApplyWorkers:       r.cfg.ApplyWorkers,
	})
}

// Begin opens a client transaction via the proxy.
func (r *Replica) Begin() (*proxy.Tx, error) {
	r.mu.Lock()
	p, crashed := r.proxy, r.crashed
	r.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return p.Begin()
}

// Proxy returns the current middleware proxy.
func (r *Replica) Proxy() *proxy.Proxy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.proxy
}

// Store returns the current storage engine.
func (r *Replica) Store() *mvstore.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store
}

// DataDisk and LogDisk expose the IO channels for measurement.
func (r *Replica) DataDisk() *simdisk.Disk { return r.dataDisk }

// LogDisk returns the log IO channel.
func (r *Replica) LogDisk() *simdisk.Disk { return r.logDisk }

// DumpNow takes a database copy for Tashkent-MW recovery, labeled with
// the replica's current version, and retains the two most recent
// copies. The database keeps serving transactions while dumping.
func (r *Replica) DumpNow() (int, error) {
	r.mu.Lock()
	store, p, crashed := r.store, r.proxy, r.crashed
	r.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	covered := p.ReplicaVersion()
	dump, err := store.Dump(covered)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.dumps = append(r.dumps, dump)
	if len(r.dumps) > 2 {
		r.dumps = r.dumps[len(r.dumps)-2:]
	}
	r.mu.Unlock()
	return len(dump), nil
}

// Crash simulates a machine crash: the store dies, in-flight
// transactions are lost, and the volatile WAL suffix disappears.
func (r *Replica) Crash() {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return
	}
	r.crashed = true
	store, p := r.store, r.proxy
	r.mu.Unlock()
	p.Close()
	store.Crash()
}

// RecoveryReport describes a completed recovery.
type RecoveryReport struct {
	Mode             proxy.Mode
	UsedDump         bool
	DumpBytes        int
	WALRecords       int
	RecoveredVersion uint64 // version the database state covered before resync
	WritesetsApplied int64  // re-applied from the certifier during resync
	RestoreDuration  time.Duration
	ResyncDuration   time.Duration
}

// Recover brings a crashed replica back per the mode's procedure and
// reports what happened.
func (r *Replica) Recover() (RecoveryReport, error) {
	r.mu.Lock()
	if !r.crashed {
		r.mu.Unlock()
		return RecoveryReport{}, errors.New("replica: not crashed")
	}
	oldStore := r.store
	dumps := make([][]byte, len(r.dumps))
	copy(dumps, r.dumps)
	r.mu.Unlock()

	walImage, corrupt := oldStore.Crash() // idempotent accessor
	report := RecoveryReport{Mode: r.cfg.Mode}
	restoreStart := time.Now()

	var store *mvstore.Store
	var base uint64
	scfg := r.cfg.storeConfig(r.dataDisk, r.logDisk)
	switch r.cfg.Mode {
	case proxy.TashkentMW:
		// Case 1 (§7.1): data may be corrupt; restore the newest
		// intact dump (or start empty if none was ever taken).
		report.UsedDump = true
		restored := false
		for i := len(dumps) - 1; i >= 0; i-- {
			s, covered, err := mvstore.RestoreDump(scfg, dumps[i])
			if err != nil {
				continue // torn copy: fall back to the previous one
			}
			store, base = s, covered
			report.DumpBytes = len(dumps[i])
			restored = true
			break
		}
		if !restored {
			store = mvstore.Open(scfg)
		}
	default:
		// Base / Tashkent-API (§7.2): standard database recovery from
		// the WAL. corrupt cannot happen with synchronous commits.
		if corrupt {
			return report, fmt.Errorf("replica: unexpected data corruption in %v mode", r.cfg.Mode)
		}
		s, info, err := mvstore.RecoverFromWAL(scfg, walImage, 0)
		if err != nil {
			return report, err
		}
		store, base = s, info.CoveredTo
		report.WALRecords = info.Records
	}
	report.RecoveredVersion = base
	report.RestoreDuration = time.Since(restoreStart)

	store.SetAnnounced(base)
	p := r.newProxy(store)
	p.SetReplicaVersion(base)

	// Re-apply the writesets committed during the outage from the
	// certifier's log (all systems, §7.2/§9.6).
	resyncStart := time.Now()
	before := p.Stats().RemoteApplied
	if err := p.Resync(); err != nil {
		p.Close()
		store.Close()
		return report, fmt.Errorf("replica: resync: %w", err)
	}
	report.WritesetsApplied = p.Stats().RemoteApplied - before
	report.ResyncDuration = time.Since(resyncStart)

	r.mu.Lock()
	r.store = store
	r.proxy = p
	r.crashed = false
	r.mu.Unlock()
	return report, nil
}

// Close shuts the replica down cleanly.
func (r *Replica) Close() {
	r.mu.Lock()
	store, p := r.store, r.proxy
	crashed := r.crashed
	r.crashed = true
	r.mu.Unlock()
	if !crashed {
		p.Close()
		store.Close()
	}
}

// Standalone is a non-replicated database endpoint used for the
// paper's standalone-vs-1-replica comparison (§9.2): clients commit
// directly against one store, which group-commits concurrent sessions
// exactly like a production database.
type Standalone struct {
	store    *mvstore.Store
	logDisk  *simdisk.Disk
	dataDisk *simdisk.Disk
}

// OpenStandalone creates a standalone database with the given IO
// layout.
func OpenStandalone(io IOConfig, pageMissEvery, checkpointEvery int) *Standalone {
	data, log := disksFor(io)
	return &Standalone{
		store: mvstore.Open(mvstore.Config{
			DataDisk: data, LogDisk: log,
			WALMode:         wal.SyncCommits,
			PageMissEvery:   pageMissEvery,
			CheckpointEvery: checkpointEvery,
		}),
		logDisk:  log,
		dataDisk: data,
	}
}

// Begin opens a transaction.
func (s *Standalone) Begin() (*mvstore.Tx, error) { return s.store.Begin() }

// Store exposes the engine.
func (s *Standalone) Store() *mvstore.Store { return s.store }

// LogDisk exposes the log channel.
func (s *Standalone) LogDisk() *simdisk.Disk { return s.logDisk }

// Close shuts the database down.
func (s *Standalone) Close() { s.store.Close() }
