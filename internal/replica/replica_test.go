package replica

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/proxy"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
)

// newCertGroup starts a single-node certifier and returns a client.
func newCertGroup(t *testing.T) *certifier.Client {
	t.Helper()
	fabric := transport.NewLocalFabric(0)
	srv := certifier.New(certifier.Config{
		ID: 0, Peers: map[int]transport.Client{},
		ElectionTimeout: 20 * time.Millisecond, Seed: 1,
	})
	fabric.Serve("cert", srv.Handle)
	srv.Start()
	t.Cleanup(srv.Stop)
	deadline := time.Now().Add(3 * time.Second)
	for !srv.IsLeader() {
		if time.Now().After(deadline) {
			t.Fatal("no leader")
		}
		time.Sleep(time.Millisecond)
	}
	return certifier.NewClient([]transport.Client{fabric.Dial("cert")}, 3*time.Second)
}

func TestReplicaLifecycle(t *testing.T) {
	cert := newCertGroup(t)
	r := Open(Config{ID: 1, Mode: proxy.TashkentMW, Cert: cert,
		LocalCertification: true, EagerPreCert: true})
	defer r.Close()

	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("t", "k", map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := r.Proxy().ReplicaVersion(); got != 1 {
		t.Errorf("ReplicaVersion = %d", got)
	}
	if r.Store().RowCount("t") != 1 {
		t.Error("row not visible")
	}
}

func TestReplicaDumpKeepsTwoCopies(t *testing.T) {
	cert := newCertGroup(t)
	r := Open(Config{ID: 1, Mode: proxy.TashkentMW, Cert: cert})
	defer r.Close()
	for i := 0; i < 3; i++ {
		tx, _ := r.Begin()
		tx.Update("t", fmt.Sprintf("k%d", i), map[string][]byte{"v": []byte("x")})
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if n, err := r.DumpNow(); err != nil || n == 0 {
			t.Fatalf("dump %d: %d bytes, %v", i, n, err)
		}
	}
	r.mu.Lock()
	n := len(r.dumps)
	r.mu.Unlock()
	if n != 2 {
		t.Errorf("kept %d dumps, want 2 (paper keeps last two copies)", n)
	}
}

func TestReplicaCrashThenBeginFails(t *testing.T) {
	cert := newCertGroup(t)
	r := Open(Config{ID: 1, Mode: proxy.Base, Cert: cert})
	defer r.Close()
	r.Crash()
	r.Crash() // idempotent
	if _, err := r.Begin(); err == nil {
		t.Error("Begin on crashed replica succeeded")
	}
	if _, err := r.DumpNow(); err == nil {
		t.Error("DumpNow on crashed replica succeeded")
	}
	if _, err := r.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if _, err := r.Begin(); err != nil {
		t.Errorf("Begin after recovery: %v", err)
	}
	if _, err := r.Recover(); err == nil {
		t.Error("Recover on healthy replica should error")
	}
}

func TestSharedVsDedicatedDiskLayout(t *testing.T) {
	prof := simdisk.Profile{FsyncLatency: time.Millisecond, PageLatency: time.Millisecond}
	data, log := disksFor(IOConfig{Profile: prof})
	if data != log {
		t.Error("shared layout should use one channel for data and log")
	}
	data, log = disksFor(IOConfig{Profile: prof, Dedicated: true})
	if data == log {
		t.Error("dedicated layout should split channels")
	}
	if data.Profile().PageLatency != 0 {
		t.Error("dedicated data channel should be ramdisk (instant)")
	}
	if log.Profile().FsyncLatency != prof.FsyncLatency {
		t.Error("dedicated log channel should keep the physical profile")
	}
}

func TestStandaloneGroupCommits(t *testing.T) {
	sa := OpenStandalone(IOConfig{
		Profile:   simdisk.Profile{FsyncLatency: 3 * time.Millisecond},
		Dedicated: true,
		Seed:      1,
	}, 0, 0)
	defer sa.Close()
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx, err := sa.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Update("t", fmt.Sprintf("k%d", i), map[string][]byte{"v": {1}}); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	s := sa.LogDisk().Stats()
	if s.RecordsSynced != n {
		t.Errorf("RecordsSynced = %d", s.RecordsSynced)
	}
	if s.Fsyncs >= n {
		t.Errorf("standalone DB did not group commits: %d fsyncs for %d commits", s.Fsyncs, n)
	}
}
