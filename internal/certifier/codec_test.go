package certifier

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"tashkent/internal/transport"
)

func randBytes(rng *rand.Rand, max int) []byte {
	b := make([]byte, rng.Intn(max))
	rng.Read(b)
	return b
}

func randRemotes(rng *rand.Rand) []RemoteWS {
	n := rng.Intn(5)
	if n == 0 {
		return nil
	}
	out := make([]RemoteWS, n)
	for i := range out {
		out[i] = RemoteWS{
			Version:  rng.Uint64(),
			SafeBack: rng.Uint64(),
			WSBytes:  randBytes(rng, 64),
		}
	}
	return out
}

// roundTrip encodes v with the message codec and decodes into a fresh
// value of the same type, returning it for comparison.
func roundTrip(t *testing.T, v interface{}) interface{} {
	t.Helper()
	b, err := transport.EncodeMessage(v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v).Elem()).Interface()
	if err := transport.DecodeMessage(b, out); err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return out
}

// normRemote maps empty and nil slices together for comparison: gob
// and the binary codec legitimately differ on nil vs empty.
func normWS(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return b
}

func normRemotes(r []RemoteWS) []RemoteWS {
	if len(r) == 0 {
		return nil
	}
	out := make([]RemoteWS, len(r))
	for i := range r {
		out[i] = r[i]
		out[i].WSBytes = normWS(r[i].WSBytes)
	}
	return out
}

// TestCodecRoundTripFuzz drives randomized values of every hot message
// type through the binary fast path and checks exact equality, seeded
// for reproducibility.
func TestCodecRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		req := &Request{
			Origin:         rng.Intn(1 << 16),
			StartVersion:   rng.Uint64(),
			ReplicaVersion: rng.Uint64(),
			WSBytes:        randBytes(rng, 256),
			NeedSafeBack:   rng.Intn(2) == 0,
			Deadline:       rng.Int63() - rng.Int63(),
		}
		got := roundTrip(t, req).(*Request)
		req.WSBytes, got.WSBytes = normWS(req.WSBytes), normWS(got.WSBytes)
		if !reflect.DeepEqual(req, got) {
			t.Fatalf("Request round trip: %+v != %+v", got, req)
		}

		resp := &Response{
			Committed:     rng.Intn(2) == 0,
			CommitVersion: rng.Uint64(),
			SystemVersion: rng.Uint64(),
			ReplicaSeq:    rng.Uint64(),
			SeqEpoch:      rng.Uint64(),
			Remote:        randRemotes(rng),
		}
		gotR := roundTrip(t, resp).(*Response)
		resp.Remote, gotR.Remote = normRemotes(resp.Remote), normRemotes(gotR.Remote)
		if !reflect.DeepEqual(resp, gotR) {
			t.Fatalf("Response round trip: %+v != %+v", gotR, resp)
		}

		pr := &PullRequest{
			Origin:         rng.Intn(1 << 16),
			ReplicaVersion: rng.Uint64(),
			NeedSafeBack:   rng.Intn(2) == 0,
			IncludeOwn:     rng.Intn(2) == 0,
		}
		if got := roundTrip(t, pr).(*PullRequest); !reflect.DeepEqual(pr, got) {
			t.Fatalf("PullRequest round trip: %+v != %+v", got, pr)
		}

		presp := &PullResponse{
			Remote:        randRemotes(rng),
			SystemVersion: rng.Uint64(),
			Busy:          rng.Intn(2) == 0,
			ReplicaSeq:    rng.Uint64(),
			SeqEpoch:      rng.Uint64(),
		}
		gotP := roundTrip(t, presp).(*PullResponse)
		presp.Remote, gotP.Remote = normRemotes(presp.Remote), normRemotes(gotP.Remote)
		if !reflect.DeepEqual(presp, gotP) {
			t.Fatalf("PullResponse round trip: %+v != %+v", gotP, presp)
		}
	}
}

// TestCodecGobEquivalence checks that a gob-tagged payload of a hot
// type decodes identically to the binary fast path: the fallback and
// the fast path must be interchangeable on the wire.
func TestCodecGobEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		orig := Response{
			Committed:     rng.Intn(2) == 0,
			CommitVersion: rng.Uint64(),
			SystemVersion: rng.Uint64(),
			ReplicaSeq:    rng.Uint64(),
			SeqEpoch:      rng.Uint64(),
			Remote:        randRemotes(rng),
		}
		// Binary path.
		binB, err := transport.EncodeMessage(&orig)
		if err != nil {
			t.Fatal(err)
		}
		var fromBin Response
		if err := transport.DecodeMessage(binB, &fromBin); err != nil {
			t.Fatal(err)
		}
		// Forced gob path: tag byte 0x00 + raw gob of the same value.
		gobRaw, err := transport.GobEncode(&orig)
		if err != nil {
			t.Fatal(err)
		}
		var fromGob Response
		if err := transport.DecodeMessage(append([]byte{0x00}, gobRaw...), &fromGob); err != nil {
			t.Fatal(err)
		}
		fromBin.Remote = normRemotes(fromBin.Remote)
		fromGob.Remote = normRemotes(fromGob.Remote)
		if !reflect.DeepEqual(fromBin, fromGob) {
			t.Fatalf("binary and gob decode disagree:\nbin: %+v\ngob: %+v", fromBin, fromGob)
		}
	}
}

// TestCodecBinarySmallerThanGob pins the point of the fast path: a
// representative certify request and a pull response must encode
// smaller than their gob form.
func TestCodecBinarySmallerThanGob(t *testing.T) {
	ws := bytes.Repeat([]byte{0xAB}, 120) // typical small writeset
	req := &Request{Origin: 3, StartVersion: 1000, ReplicaVersion: 990, WSBytes: ws, NeedSafeBack: true}
	binB, err := transport.EncodeMessage(req)
	if err != nil {
		t.Fatal(err)
	}
	gobB, err := transport.GobEncode(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(binB) >= len(gobB) {
		t.Errorf("binary Request %dB not smaller than gob %dB", len(binB), len(gobB))
	}
	t.Logf("Request: binary %dB vs gob %dB", len(binB), len(gobB))

	resp := &PullResponse{SystemVersion: 1000, Remote: []RemoteWS{
		{Version: 998, WSBytes: ws, SafeBack: 990},
		{Version: 999, WSBytes: ws, SafeBack: 991},
	}}
	binB, err = transport.EncodeMessage(resp)
	if err != nil {
		t.Fatal(err)
	}
	gobB, err = transport.GobEncode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(binB) >= len(gobB) {
		t.Errorf("binary PullResponse %dB not smaller than gob %dB", len(binB), len(gobB))
	}
	t.Logf("PullResponse: binary %dB vs gob %dB", len(binB), len(gobB))
}

// TestCodecTruncation feeds truncated binary payloads to every decoder
// and requires an error, never a panic or silent success.
func TestCodecTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	full, err := transport.EncodeMessage(&Response{
		Committed: true, CommitVersion: 9, Remote: randRemotes(rng),
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		var r Response
		if err := transport.DecodeMessage(full[:cut], &r); err == nil && cut < len(full) {
			// Some prefixes of a message with empty tail sections can be
			// self-consistent; only flag clearly impossible successes.
			if cut < 34 {
				t.Fatalf("truncated Response (%d of %d bytes) decoded without error", cut, len(full))
			}
		}
	}
	var req Request
	if err := transport.DecodeMessage([]byte{0x01, 0x00}, &req); err == nil {
		t.Error("2-byte Request decoded without error")
	}
	if err := transport.DecodeMessage(nil, &req); err == nil {
		t.Error("empty payload decoded without error")
	}
	if err := transport.DecodeMessage([]byte{0x7F, 0x00}, &req); err == nil {
		t.Error("unknown codec tag decoded without error")
	}
}
