// Package certifier implements the certification service of the
// replicated system (paper §4.2 and §6.1): it receives writesets from
// replica proxies, performs writeset intersection against the recent
// global log, assigns the global commit order, records committed
// writesets in a persistent replicated log, and ships back the remote
// writesets each replica has not seen yet.
//
// The certifier state is replicated over internal/paxos (leader + N-1
// backups, paper §7.3); the paxos log index *is* the global version,
// and the leader's log disk is where Tashkent-MW's durability lives —
// its single writer groups every outstanding writeset into one fsync
// ("the certifier ... is very efficient at batching all outstanding
// writesets to disk via a single fsync call").
package certifier

import (
	"encoding/binary"
	"fmt"
	"strings"

	"tashkent/internal/core"
	"tashkent/internal/transport"
)

// Method names on the transport.
const (
	MethodCertify = "cert.certify"
	MethodPull    = "cert.pull"
)

// Request is one certification request: the writeset and start version
// of a committing update transaction (paper §6.1), plus the replica's
// current version so the certifier knows which remote writesets to
// ship back, and the Tashkent-API flag asking for conflict-free-back
// ("safe back") information on those remote writesets (§5.2.1).
type Request struct {
	Origin         int
	StartVersion   uint64
	ReplicaVersion uint64
	WSBytes        []byte
	NeedSafeBack   bool
}

// MustWriteset decodes the request's writeset. It panics on a decode
// failure, which is impossible for a request the caller encoded
// itself.
func (r *Request) MustWriteset() *core.Writeset {
	ws, _, err := core.DecodeWriteset(r.WSBytes)
	if err != nil {
		panic(fmt.Sprintf("certifier: undecodable own writeset: %v", err))
	}
	return ws
}

// RemoteWS is one remote writeset shipped to a replica.
type RemoteWS struct {
	Version uint64
	WSBytes []byte
	// SafeBack is the version down to which this writeset is known to
	// be conflict-free; if SafeBack <= the replica's version the proxy
	// may apply it concurrently with its predecessors, otherwise an
	// artificial conflict forces serialization (§5.2.1). Populated
	// only when the request set NeedSafeBack.
	SafeBack uint64
}

// Response carries the certification outputs of paper §6.1: the remote
// writesets, the decision, and the commit version.
type Response struct {
	Committed     bool
	CommitVersion uint64
	Remote        []RemoteWS
	SystemVersion uint64 // committed system version at response time
	// ReplicaSeq is a dense per-replica sequence number assigned in
	// certifier processing order. The proxy applies responses in
	// ReplicaSeq order, which guarantees it observes the global commit
	// order even when transport reorders concurrent responses.
	ReplicaSeq uint64
	// SeqEpoch identifies the leadership term whose counter assigned
	// ReplicaSeq. A new leader restarts the per-replica counters, so
	// the proxy re-anchors its sequencer whenever the epoch advances
	// and discards responses from deposed leaders.
	SeqEpoch uint64
}

// PullRequest proactively fetches remote writesets (the staleness
// bound of §6.2: an idle replica asks for updates).
type PullRequest struct {
	Origin         int
	ReplicaVersion uint64
	NeedSafeBack   bool
	// IncludeOwn disables the own-writeset filter. A recovering
	// replica needs its own transactions back too — it lost them in
	// the crash and the certifier log is their durable home (§7.2).
	IncludeOwn bool
}

// PullResponse returns the requested remote writesets.
type PullResponse struct {
	Remote        []RemoteWS
	SystemVersion uint64
	// ReplicaSeq orders pull responses into the same per-replica
	// application sequence as certification responses.
	ReplicaSeq uint64
	// SeqEpoch is the leadership term that assigned ReplicaSeq (see
	// Response.SeqEpoch).
	SeqEpoch uint64
}

// notLeaderPrefix marks redirect errors so clients fail over.
const notLeaderPrefix = "NOTLEADER"

// notLeaderError formats a redirect carrying the leader hint.
func notLeaderError(hint int) error {
	return fmt.Errorf("%s %d", notLeaderPrefix, hint)
}

// parseNotLeader extracts a leader hint from an error string, with ok
// reporting whether the error is a redirect at all.
func parseNotLeader(msg string) (hint int, ok bool) {
	if !strings.Contains(msg, notLeaderPrefix) {
		return -1, false
	}
	idx := strings.Index(msg, notLeaderPrefix)
	rest := strings.TrimSpace(msg[idx+len(notLeaderPrefix):])
	var h int
	if _, err := fmt.Sscanf(rest, "%d", &h); err != nil {
		return -1, true
	}
	return h, true
}

// Log-entry payload: the data stored in each paxos log entry.
//
//	uint32 origin | uint64 startVersion | writeset
//
// startVersion is retained so an engine rebuilt from the log keeps the
// certified-back memos.

func encodeEntryData(origin int, start uint64, ws *core.Writeset) []byte {
	buf := make([]byte, 0, 12+ws.Size())
	buf = binary.BigEndian.AppendUint32(buf, uint32(origin))
	buf = binary.BigEndian.AppendUint64(buf, start)
	return ws.Encode(buf)
}

// DecodeLogEntry decodes one paxos log entry's payload into its
// origin replica, start version and writeset. The chaos invariant
// checker uses it to turn the certifier's committed log into the
// ground truth every client-visible event is verified against.
func DecodeLogEntry(data []byte) (origin int, start uint64, ws *core.Writeset, err error) {
	return decodeEntryData(data)
}

func decodeEntryData(data []byte) (origin int, start uint64, ws *core.Writeset, err error) {
	if len(data) < 12 {
		return 0, 0, nil, fmt.Errorf("certifier: short log entry (%d bytes)", len(data))
	}
	origin = int(binary.BigEndian.Uint32(data[0:4]))
	start = binary.BigEndian.Uint64(data[4:12])
	ws, _, err = core.DecodeWriteset(data[12:])
	return origin, start, ws, err
}

// gobEncode/gobDecode delegate to the transport's pooled codec.
func gobEncode(v interface{}) ([]byte, error) { return transport.GobEncode(v) }

func gobDecode(b []byte, v interface{}) error { return transport.GobDecode(b, v) }
