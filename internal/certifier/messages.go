// Package certifier implements the certification service of the
// replicated system (paper §4.2 and §6.1): it receives writesets from
// replica proxies, performs writeset intersection against the recent
// global log, assigns the global commit order, records committed
// writesets in a persistent replicated log, and ships back the remote
// writesets each replica has not seen yet.
//
// The certifier state is replicated over internal/paxos (leader + N-1
// backups, paper §7.3); the paxos log index *is* the global version,
// and the leader's log disk is where Tashkent-MW's durability lives —
// its single writer groups every outstanding writeset into one fsync
// ("the certifier ... is very efficient at batching all outstanding
// writesets to disk via a single fsync call").
package certifier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/transport"
)

// Method names on the transport.
const (
	MethodCertify = "cert.certify"
	MethodPull    = "cert.pull"
	// Partitioned-certification methods (one certifier group per
	// keyspace partition; see internal/partition).
	MethodPrepare = "cert.prepare"
	MethodResolve = "cert.resolve"
	MethodFill    = "cert.fill"
)

// Request is one certification request: the writeset and start version
// of a committing update transaction (paper §6.1), plus the replica's
// current version so the certifier knows which remote writesets to
// ship back, and the Tashkent-API flag asking for conflict-free-back
// ("safe back") information on those remote writesets (§5.2.1).
type Request struct {
	Origin         int
	StartVersion   uint64
	ReplicaVersion uint64
	WSBytes        []byte
	NeedSafeBack   bool
	// Deadline is the caller's context deadline in UnixNano (0 = none).
	// The certifier drops the request before conflict-checking and
	// proposing if the deadline has passed — a dead client's work must
	// not occupy batch slots or paxos log entries.
	Deadline int64
}

// MustWriteset decodes the request's writeset. It panics on a decode
// failure, which is impossible for a request the caller encoded
// itself.
func (r *Request) MustWriteset() *core.Writeset {
	ws, _, err := core.DecodeWriteset(r.WSBytes)
	if err != nil {
		panic(fmt.Sprintf("certifier: undecodable own writeset: %v", err))
	}
	return ws
}

// RemoteWS is one remote writeset shipped to a replica.
type RemoteWS struct {
	Version uint64
	WSBytes []byte
	// SafeBack is the version down to which this writeset is known to
	// be conflict-free; if SafeBack <= the replica's version the proxy
	// may apply it concurrently with its predecessors, otherwise an
	// artificial conflict forces serialization (§5.2.1). Populated
	// only when the request set NeedSafeBack.
	SafeBack uint64
}

// Response carries the certification outputs of paper §6.1: the remote
// writesets, the decision, and the commit version.
type Response struct {
	Committed     bool
	CommitVersion uint64
	Remote        []RemoteWS
	SystemVersion uint64 // committed system version at response time
	// ReplicaSeq is a dense per-replica sequence number assigned in
	// certifier processing order. The proxy applies responses in
	// ReplicaSeq order, which guarantees it observes the global commit
	// order even when transport reorders concurrent responses.
	ReplicaSeq uint64
	// SeqEpoch identifies the leadership term whose counter assigned
	// ReplicaSeq. A new leader restarts the per-replica counters, so
	// the proxy re-anchors its sequencer whenever the epoch advances
	// and discards responses from deposed leaders.
	SeqEpoch uint64
}

// PullRequest proactively fetches remote writesets (the staleness
// bound of §6.2: an idle replica asks for updates).
type PullRequest struct {
	Origin         int
	ReplicaVersion uint64
	NeedSafeBack   bool
	// IncludeOwn disables the own-writeset filter. A recovering
	// replica needs its own transactions back too — it lost them in
	// the crash and the certifier log is their durable home (§7.2).
	IncludeOwn bool
}

// PullResponse returns the requested remote writesets.
type PullResponse struct {
	Remote        []RemoteWS
	SystemVersion uint64
	// Busy reports whether the group had admitted-but-unresolved
	// certifications (or prepares/resolves) when the pull was served:
	// more log entries are imminent. A partitioned replica's merger
	// uses it to fill only genuinely idle groups.
	Busy bool
	// ReplicaSeq orders pull responses into the same per-replica
	// application sequence as certification responses.
	ReplicaSeq uint64
	// SeqEpoch is the leadership term that assigned ReplicaSeq (see
	// Response.SeqEpoch).
	SeqEpoch uint64
}

// PrepareRequest is phase 1 of a cross-partition commit: certify and
// lock this group's slice of the writeset under a cluster-wide
// transaction id. The prepare is durable (its own paxos commit) before
// the response returns.
type PrepareRequest struct {
	GID            uint64
	Origin         int
	StartVersion   uint64 // the transaction's snapshot, in this group's version space
	Involved       []int  // partition ids participating in the transaction
	WSBytes        []byte // this group's slice of the writeset
	ReplicaVersion uint64 // coordinator's frontier in this group, for piggybacked entries
}

// PrepareResponse reports the phase-1 outcome.
type PrepareResponse struct {
	Prepared      bool
	Index         uint64 // the prepare entry's log index when Prepared
	SystemVersion uint64
}

// ResolveRequest is phase 2: append the commit or abort decision
// marker for a previously prepared transaction. Resolve is idempotent
// — a retry returns the first marker's index.
type ResolveRequest struct {
	GID    uint64
	Commit bool
}

// ResolveResponse reports the decision marker's log index.
type ResolveResponse struct {
	Index         uint64
	SystemVersion uint64
}

// FillRequest asks the group leader to pad its log with no-op fill
// entries up to Target entries, releasing replicas blocked on this
// group's stream in the deterministic merge (an idle partition would
// otherwise stall every cross-stream reader).
type FillRequest struct {
	Target uint64
}

// FillResponse reports the committed head after the fill.
type FillResponse struct {
	Head uint64
}

// notLeaderPrefix marks redirect errors so clients fail over.
const notLeaderPrefix = "NOTLEADER"

// notLeaderError formats a redirect carrying the leader hint.
func notLeaderError(hint int) error {
	return fmt.Errorf("%s %d", notLeaderPrefix, hint)
}

// parseNotLeader extracts a leader hint from an error string, with ok
// reporting whether the error is a redirect at all.
func parseNotLeader(msg string) (hint int, ok bool) {
	if !strings.Contains(msg, notLeaderPrefix) {
		return -1, false
	}
	idx := strings.Index(msg, notLeaderPrefix)
	rest := strings.TrimSpace(msg[idx+len(notLeaderPrefix):])
	var h int
	if _, err := fmt.Sscanf(rest, "%d", &h); err != nil {
		return -1, true
	}
	return h, true
}

// overloadedPrefix marks load-shed responses. Unlike NOTLEADER it is
// not a failover signal: only the leader certifies, so rotating on it
// would just trade an overload error for NOTLEADER churn. Clients
// surface it immediately with the retry-after hint.
const overloadedPrefix = "OVERLOADED"

// ErrOverloaded is the sentinel for admission-control load shedding:
// the certifier's queue wait exceeded its budget (or the queue is
// full) and the request was rejected before consuming a batch slot.
// Retryable — errors carrying it also carry a retry-after hint, see
// RetryAfter.
var ErrOverloaded = errors.New("certifier: overloaded")

// OverloadedError is the typed form of a shed response.
type OverloadedError struct {
	// RetryAfter is the server's backoff hint.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("certifier: overloaded (retry after %v)", e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// RetryAfter extracts the backoff hint from an overload error chain.
func RetryAfter(err error) (time.Duration, bool) {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}

// overloadedError formats the wire form of a shed response.
func overloadedError(retryAfter time.Duration) error {
	ms := retryAfter.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return fmt.Errorf("%s %d", overloadedPrefix, ms)
}

// parseOverloaded recognizes the wire form and recovers the hint.
func parseOverloaded(msg string) (retryAfter time.Duration, ok bool) {
	idx := strings.Index(msg, overloadedPrefix)
	if idx < 0 {
		return 0, false
	}
	rest := strings.TrimSpace(msg[idx+len(overloadedPrefix):])
	var ms int64
	if _, err := fmt.Sscanf(rest, "%d", &ms); err != nil || ms < 1 {
		ms = 1
	}
	return time.Duration(ms) * time.Millisecond, true
}

// Log-entry payload: the data stored in each paxos log entry.
//
//	uint8 kind | uint32 origin | uint64 startVersion
//	[ uint64 gid | uint16 nInvolved | uint16 pid ... ]   (2PC kinds only)
//	writeset
//
// startVersion is retained so an engine rebuilt from the log keeps the
// certified-back memos. Decision markers encode an empty writeset —
// the published items are recovered from the gid's prepare entry.

// Entry is one decoded paxos log entry payload.
type Entry struct {
	Kind     core.EntryKind
	Origin   int
	Start    uint64
	GID      uint64
	Involved []int
	WS       *core.Writeset
}

func encodeEntry(kind core.EntryKind, origin int, start, gid uint64, involved []int, ws *core.Writeset) []byte {
	buf := make([]byte, 0, 25+2*len(involved)+ws.Size())
	buf = append(buf, byte(kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(origin))
	buf = binary.BigEndian.AppendUint64(buf, start)
	if kind != core.KindData {
		buf = binary.BigEndian.AppendUint64(buf, gid)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(involved)))
		for _, pid := range involved {
			buf = binary.BigEndian.AppendUint16(buf, uint16(pid))
		}
	}
	return ws.Encode(buf)
}

func encodeEntryData(origin int, start uint64, ws *core.Writeset) []byte {
	return encodeEntry(core.KindData, origin, start, 0, nil, ws)
}

// EncodeEntry builds a raw log-entry payload — the exported
// counterpart of DecodeLogEntry, used by partition-merge tests and
// tools that synthesize per-group streams.
func EncodeEntry(e Entry) []byte {
	ws := e.WS
	if ws == nil {
		ws = &core.Writeset{}
	}
	return encodeEntry(e.Kind, e.Origin, e.Start, e.GID, e.Involved, ws)
}

// encodeEngineEntry re-encodes a retained engine log entry into the
// wire payload format, for shipping raw entries to partitioned
// replicas. Decision markers are encoded with an empty writeset even
// though the engine memoizes the published items on them.
func encodeEngineEntry(e core.LogEntry) []byte {
	ws := e.WS
	if e.Kind == core.KindCommitMarker || e.Kind == core.KindAbortMarker {
		ws = &core.Writeset{}
	}
	return encodeEntry(e.Kind, e.Origin, uint64(e.CertifiedBack), e.GID, e.Involved, ws)
}

// DecodeLogEntry decodes one paxos log entry's payload. The chaos
// invariant checker and the partitioned replicas use it to turn
// committed log entries back into typed records.
func DecodeLogEntry(data []byte) (Entry, error) {
	return decodeEntryData(data)
}

func decodeEntryData(data []byte) (Entry, error) {
	var e Entry
	if len(data) < 13 {
		return e, fmt.Errorf("certifier: short log entry (%d bytes)", len(data))
	}
	e.Kind = core.EntryKind(data[0])
	e.Origin = int(binary.BigEndian.Uint32(data[1:5]))
	e.Start = binary.BigEndian.Uint64(data[5:13])
	rest := data[13:]
	if e.Kind != core.KindData {
		if len(rest) < 10 {
			return e, fmt.Errorf("certifier: short 2pc log entry (%d bytes)", len(data))
		}
		e.GID = binary.BigEndian.Uint64(rest[0:8])
		n := int(binary.BigEndian.Uint16(rest[8:10]))
		rest = rest[10:]
		if len(rest) < 2*n {
			return e, fmt.Errorf("certifier: truncated involved list (%d of %d pids)", len(rest)/2, n)
		}
		e.Involved = make([]int, n)
		for i := 0; i < n; i++ {
			e.Involved[i] = int(binary.BigEndian.Uint16(rest[2*i:]))
		}
		rest = rest[2*n:]
	}
	ws, _, err := core.DecodeWriteset(rest)
	e.WS = ws
	return e, err
}

// encodeMsg/decodeMsg are the wire codec: binary fast path for the hot
// certify/pull messages (see codec.go), tagged gob for the rest.
func encodeMsg(v interface{}) ([]byte, error) { return transport.EncodeMessage(v) }

func decodeMsg(b []byte, v interface{}) error { return transport.DecodeMessage(b, v) }
