package certifier

import (
	"errors"
	"fmt"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/paxos"
)

// This file implements the staged certification pipeline, the heart of
// the paper's durability/ordering unification: instead of one paxos
// round and one fsync per transaction, RPC handlers enqueue onto an
// admission queue and a dedicated certification loop repeatedly
//
//  1. drains every waiting request (bounded by Config.MaxBatch),
//  2. conflict-checks them in admission order against the engine —
//     later requests in the batch see earlier survivors, exactly as if
//     they had been serialized,
//  3. proposes all surviving commits as ONE batched log append
//     (paxos.ProposeBatchAt: one replication round; followers persist
//     the round via wal.AppendBatch, one fsync),
//  4. takes ONE durability barrier (WaitCommitted on the batch's last
//     index) for the whole batch, and
//  5. fans responses — remote-writeset fills, replica sequence
//     numbers, commit versions — back to all waiters.
//
// Aborts and certification errors resolve at step 2; they never wait
// for the disk.

// certifyTask carries one admitted request through the pipeline.
type certifyTask struct {
	req      Request
	ws       *core.Writeset
	enqueued time.Time // when the task entered the admission queue
	deadline time.Time // caller's context deadline (zero = none)

	// Filled by the certification loop.
	resp    Response
	err     error
	commit  bool   // survived certification; part of the batch proposal
	version uint64 // assigned commit version (commit tasks only)

	done chan struct{} // closed when resp/err are final
}

// errDeadlineExpired resolves requests whose caller's context deadline
// passed before certification started; the caller has already given up,
// so the text is informational only.
var errDeadlineExpired = errors.New("certifier: caller deadline expired before certification")

// finish publishes the task's outcome to its waiting RPC handler.
func (t *certifyTask) finish() { close(t.done) }

// fail resolves a task with an error.
func (t *certifyTask) fail(err error) {
	t.resp = Response{}
	t.err = err
	t.finish()
}

// certify is the transport-facing entry point: decode, enqueue, wait.
// The error for a stopped server is paxos.ErrStopped so the failover
// client treats it like any other replication-layer outage and retries
// elsewhere.
func (s *Server) certify(req Request) (Response, error) {
	ws, _, err := core.DecodeWriteset(req.WSBytes)
	if err != nil {
		return Response{}, err
	}
	if ws.Empty() {
		return Response{}, errors.New("certifier: empty writeset (read-only transactions commit at the replica)")
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	t := &certifyTask{req: req, ws: ws, done: make(chan struct{})}
	if req.Deadline != 0 {
		t.deadline = time.Unix(0, req.Deadline)
		if time.Now().After(t.deadline) {
			s.expiredCount.Add(1)
			return Response{}, errDeadlineExpired
		}
	}
	// Admission control: take a slot token (one exists per queue slot,
	// released when the pipeline dequeues the task), waiting up to
	// AdmitTimeout before shedding with a retry-after hint. The token
	// — not a timed send on the queue channel itself — is what bounds
	// queueing, so t.enqueued can be stamped AFTER the door: the
	// stage-2 queue-wait budget then measures time spent in the queue,
	// and a request that waited at the door is not pre-doomed to
	// out-wait that budget. (A negative AdmitTimeout restores the old
	// unbounded blocking.)
	select {
	case <-s.slots:
	case <-s.stopCh:
		return Response{}, paxos.ErrStopped
	default:
		if s.cfg.AdmitTimeout < 0 {
			select {
			case <-s.slots:
			case <-s.stopCh:
				return Response{}, paxos.ErrStopped
			}
			break
		}
		// A dead client must not hold a door waiter longer than its
		// own deadline.
		wait := s.cfg.AdmitTimeout
		if !t.deadline.IsZero() {
			if until := time.Until(t.deadline); until < wait {
				wait = until
			}
		}
		timer := time.NewTimer(wait)
		select {
		case <-s.slots:
			timer.Stop()
		case <-timer.C:
			if !t.deadline.IsZero() && time.Now().After(t.deadline) {
				s.expiredCount.Add(1)
				return Response{}, errDeadlineExpired
			}
			s.shedCount.Add(1)
			return Response{}, overloadedError(s.retryAfterHint())
		case <-s.stopCh:
			timer.Stop()
			return Response{}, paxos.ErrStopped
		}
	}
	// Token in hand: queue occupancy is strictly below QueueDepth, so
	// this send cannot block behind anything but scheduling.
	t.enqueued = time.Now()
	select {
	case s.admitCh <- t:
	case <-s.stopCh:
		return Response{}, paxos.ErrStopped
	}
	s.queueDepth.Observe(int64(len(s.admitCh)))
	select {
	case <-t.done:
		return t.resp, t.err
	case <-s.stopCh:
		// The loop may have resolved the task concurrently with the
		// shutdown; prefer its answer if it exists.
		select {
		case <-t.done:
			return t.resp, t.err
		default:
			return Response{}, paxos.ErrStopped
		}
	}
}

// releaseSlot returns an admission token when a task leaves the queue.
// The default arm is defensive: the token count never exceeds the
// channel capacity because every release pairs with a dequeue.
func (s *Server) releaseSlot() {
	select {
	case s.slots <- struct{}{}:
	default:
	}
}

// certifyLoop is the dedicated certification stage: it blocks for the
// first admitted request, gathers a batch, and processes it.
func (s *Server) certifyLoop() {
	defer s.loopWG.Done()
	for {
		var first *certifyTask
		select {
		case first = <-s.admitCh:
			s.releaseSlot()
		case <-s.stopCh:
			s.drainAdmitted()
			return
		}
		batch := s.gatherBatch(first)
		if batch == nil { // stopping
			s.drainAdmitted()
			return
		}
		s.processBatch(batch)
	}
}

// gatherBatch collects up to MaxBatch tasks behind first. With MaxWait
// set it lingers for stragglers; otherwise it takes only what is
// already queued. Returns nil if the server stopped mid-gather (the
// collected tasks are failed).
func (s *Server) gatherBatch(first *certifyTask) []*certifyTask {
	batch := append(make([]*certifyTask, 0, 16), first)
	if s.cfg.MaxWait <= 0 {
		for len(batch) < s.cfg.MaxBatch {
			select {
			case t := <-s.admitCh:
				s.releaseSlot()
				batch = append(batch, t)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case t := <-s.admitCh:
			s.releaseSlot()
			batch = append(batch, t)
		case <-timer.C:
			return batch
		case <-s.stopCh:
			s.failTasks(batch, paxos.ErrStopped)
			return nil
		}
	}
	return batch
}

// drainAdmitted fails everything still sitting in the admission queue
// at shutdown.
func (s *Server) drainAdmitted() {
	for {
		select {
		case t := <-s.admitCh:
			s.releaseSlot()
			t.fail(paxos.ErrStopped)
		default:
			return
		}
	}
}

// failTasks resolves a slice of tasks with one error.
func (s *Server) failTasks(tasks []*certifyTask, err error) {
	for _, t := range tasks {
		t.fail(err)
	}
}

// processBatch runs stages 2-5 of the pipeline for one batch.
func (s *Server) processBatch(batch []*certifyTask) {
	s.mu.Lock()
	if err := s.ensureEngineLocked(); err != nil {
		s.mu.Unlock()
		s.failTasks(batch, err)
		return
	}

	// Stage 2: conflict-check in admission order. Survivors are
	// appended to the engine immediately so later requests in the batch
	// certify against them; if the batched propose then fails, the
	// engine basis is invalidated and rebuilt from the authoritative
	// log, exactly as the per-request path did.
	firstVersion := uint64(s.engine.SystemVersion()) + 1
	var commits []*certifyTask
	var datas [][]byte
	drainedAt := time.Now()
	for _, t := range batch {
		s.stats.Requests++
		wait := drainedAt.Sub(t.enqueued)
		s.queueWait.Observe(wait)
		// Deadline and queue-wait policing come before any certification
		// work: a dead client's request must not conflict-check, consume
		// a batch slot in the propose, or take a sequence number (it is
		// resolved with an error below, so per-origin sequences stay
		// dense).
		if !t.deadline.IsZero() && drainedAt.After(t.deadline) {
			s.expiredCount.Add(1)
			t.err = errDeadlineExpired
			continue
		}
		// Queue-wait backstop at twice the budget: the door bounds
		// routine queueing to about one AdmitTimeout (slot tokens), so
		// reaching 2x means the drain collapsed under this task —
		// certifying it now only adds latency behind the recovery. A
		// 1x cliff here would turn a transient stall (a GC pause, one
		// slow fsync) into a shed cascade of still-viable requests.
		if s.cfg.AdmitTimeout > 0 && wait > 2*s.cfg.AdmitTimeout {
			s.shedCount.Add(1)
			t.err = overloadedError(s.retryAfterHint())
			continue
		}
		// Full certification check first; injected aborts (Fig 14)
		// happen after the check so the certifier pays all its usual
		// costs.
		conflict := s.engine.Conflicts(core.Version(t.req.StartVersion), t.ws)
		injected := false
		if !conflict && s.cfg.AbortRate > 0 && s.rng.Float64() < s.cfg.AbortRate {
			injected = true
		}
		if conflict || injected {
			s.stats.Aborts++
			if injected {
				s.stats.InjectedAborts++
			}
			continue // response built once the propose outcome is known
		}
		version := uint64(s.engine.SystemVersion()) + 1
		if err := s.engine.Append(core.LogEntry{
			Version: core.Version(version), WS: t.ws, Origin: t.req.Origin,
			CertifiedBack: core.Version(t.req.StartVersion),
		}); err != nil {
			s.basisValid = false
			t.err = err
			continue
		}
		t.commit = true
		t.version = version
		datas = append(datas, encodeEntryData(t.req.Origin, t.req.StartVersion, t.ws))
		commits = append(commits, t)
	}

	// Stage 3: one replication round for every surviving commit,
	// guarded against engine/log skew while we still hold the lock.
	var firstIdx, term uint64
	var proposeErr error
	if len(datas) > 0 {
		firstIdx, term, proposeErr = s.node.ProposeBatchAt(firstVersion-1, datas)
		if proposeErr == nil && firstIdx != firstVersion {
			proposeErr = fmt.Errorf("certifier: proposed first index %d, engine expected %d", firstIdx, firstVersion)
		}
		if proposeErr != nil {
			// Log changed or leadership lost: force a rebuild next time.
			s.basisValid = false
		} else {
			// Commit and batch-size accounting only cover batches that
			// actually reached the replicated log (a failed propose
			// errors every task in it).
			s.stats.Commits += int64(len(commits))
			s.batchSizes.Observe(int64(len(datas)))
		}
	}

	// Responses are sequenced only now, in admission order: per-origin
	// ReplicaSeq numbers must be consumed exclusively by responses that
	// will actually be delivered, or a failed propose would leave
	// permanent gaps in the old epoch and stall the proxy sequencers
	// behind them. Commits doomed by a propose failure therefore take
	// no sequence number (they fail with an error below); their abort
	// siblings still respond with a dense sequence.
	for _, t := range batch {
		if t.err != nil {
			continue
		}
		if t.commit {
			if proposeErr != nil {
				continue
			}
			t.resp = Response{Committed: true, CommitVersion: t.version, ReplicaSeq: s.nextReplicaSeqLocked(t.req.Origin), SeqEpoch: s.basisTerm}
			// Writesets up to (excluding) the task's own version:
			// earlier commits of this same batch are included and will
			// be durable by the time the response leaves (the batch
			// barrier covers them). The fill includes the origin's own
			// earlier writesets too: in the window above the replica's
			// reported version, "own" entries exist only if their
			// responses were lost, and a response that makes the
			// replica announce past them must carry their data or the
			// replica is left with a permanent hole. Already-applied
			// own writesets sit at or below the replica's version and
			// are filtered by the proxy's basis cursor, so the healthy
			// path never re-applies them.
			s.fillRemotesLocked(&t.resp, t.req.Origin, true, t.req.ReplicaVersion, t.version-1, t.req.NeedSafeBack)
		} else {
			t.resp = Response{Committed: false, ReplicaSeq: s.nextReplicaSeqLocked(t.req.Origin), SeqEpoch: s.basisTerm}
			s.fillRemotesLocked(&t.resp, t.req.Origin, true, t.req.ReplicaVersion, s.committedCap(), t.req.NeedSafeBack)
		}
	}
	s.mu.Unlock()

	// Aborts and per-task errors resolve without touching the disk.
	for _, t := range batch {
		if !t.commit {
			t.finish()
		}
	}
	if len(commits) == 0 {
		return
	}
	if proposeErr != nil {
		s.failTasks(commits, fmt.Errorf("certifier: propose: %w", proposeErr))
		return
	}

	// Stage 4: one durability barrier for the whole batch.
	lastIdx := firstIdx + uint64(len(datas)) - 1
	if err := s.node.WaitCommitted(lastIdx, term); err != nil {
		s.failTasks(commits, fmt.Errorf("certifier: replication: %w", err))
		return
	}

	// Stage 5: fan out. Every commit version <= lastIdx is majority
	// durable now.
	sysv := s.node.CommitIndex()
	for _, t := range commits {
		t.resp.SystemVersion = sysv
		t.finish()
	}
}
