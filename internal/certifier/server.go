package certifier

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/metrics"
	"tashkent/internal/paxos"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
	"tashkent/internal/wal"
)

// Stats is a snapshot of certifier activity.
type Stats struct {
	Requests       int64
	Commits        int64
	Aborts         int64
	InjectedAborts int64
	Pulls          int64
	RemoteShipped  int64 // remote writesets shipped to replicas
	CertifyBackOps int64 // extended certification checks performed
}

// Config parameterizes one certifier node.
type Config struct {
	// ID is this certifier's identity within the group.
	ID int
	// Peers maps other certifier ids to clients (for paxos traffic).
	Peers map[int]transport.Client
	// Disk backs the persistent certification log. nil = instant.
	Disk *simdisk.Disk
	// DisableDurability runs certification without disk writes — the
	// paper's tashAPInoCERT ablation (§9.2: "the certifier performs
	// certification as usual, but it does not write information to
	// disk").
	DisableDurability bool
	// AbortRate injects random aborts at the given rate in [0,1),
	// applied *after* the full certification check so all certifier
	// work is still done — the Fig 14 methodology.
	AbortRate float64
	// MaxBatch caps how many admitted certification requests one
	// pipeline iteration drains into a single replication round and
	// durability barrier (<=0 selects the default of 256).
	MaxBatch int
	// MaxWait is how long the certification loop lingers after the
	// first admitted request to let stragglers join its batch. Zero
	// (the default) means no artificial delay: the loop takes whatever
	// is already queued — under load batches form naturally while the
	// previous barrier is on the disk.
	MaxWait time.Duration
	// PaxosCallHook, if set, filters this node's outgoing replication
	// RPCs (see paxos.Config.CallHook) — the chaos harness's handle for
	// isolating a certifier from its peers.
	PaxosCallHook func(peer int, method string) error
	// ElectionTimeout/Seed tune the underlying replication group.
	ElectionTimeout time.Duration
	Seed            int64
}

// defaultMaxBatch bounds one certification batch when Config.MaxBatch
// is unset.
const defaultMaxBatch = 256

// Server is one certifier node: a paxos group member plus the
// certification engine. Any node accepts RPCs; only the current leader
// certifies (followers redirect).
//
// Certification runs as a staged pipeline: RPC handlers enqueue onto
// the admission queue and wait; a dedicated certification loop drains
// all waiting requests, conflict-checks them in order, proposes every
// surviving commit as one batched log append, takes one durability
// barrier per batch, and fans the responses back (see pipeline.go).
type Server struct {
	cfg  Config
	node *paxos.Node
	disk *simdisk.Disk

	admitCh    chan *certifyTask // admission queue feeding the loop
	stopCh     chan struct{}
	stopOnce   sync.Once
	loopWG     sync.WaitGroup
	batchSizes metrics.Distribution // commits proposed per batch
	// barrierInFlight coalesces the automatic post-election barrier
	// (see ensureEngineLocked).
	barrierInFlight atomic.Bool

	mu         sync.Mutex // guards engine + basisTerm + rng + stats
	engine     *core.Engine
	basisTerm  uint64 // term the engine was last rebuilt for
	basisValid bool
	replicaSeq map[int]uint64 // per-origin response sequence numbers
	rng        *rand.Rand
	stats      Stats
}

// New creates a certifier node. Call Start to join the group.
func New(cfg Config) *Server {
	if cfg.Disk == nil {
		cfg.Disk = simdisk.New(simdisk.Instant(), int64(cfg.ID)+100)
	}
	mode := wal.SyncCommits
	if cfg.DisableDurability {
		mode = wal.NoSync
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	s := &Server{
		cfg:     cfg,
		disk:    cfg.Disk,
		engine:  core.NewEngine(),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5EED)),
		admitCh: make(chan *certifyTask, 4*cfg.MaxBatch),
		stopCh:  make(chan struct{}),
	}
	s.node = paxos.NewNode(paxos.Config{
		ID:              cfg.ID,
		Peers:           cfg.Peers,
		Disk:            cfg.Disk,
		WALMode:         mode,
		CallHook:        cfg.PaxosCallHook,
		ElectionTimeout: cfg.ElectionTimeout,
		Seed:            cfg.Seed,
	})
	return s
}

// RestoreFromImage rebuilds the node's replicated log from a WAL crash
// image before Start (certifier recovery, §7.3).
func (s *Server) RestoreFromImage(img []byte) error { return s.node.RestoreFromImage(img) }

// Start joins the replication group and launches the certification
// pipeline loop.
func (s *Server) Start() {
	s.node.Start()
	s.loopWG.Add(1)
	go s.certifyLoop()
}

// Stop halts the node and the certification loop. Requests still in
// the admission queue fail with paxos.ErrStopped.
func (s *Server) Stop() {
	// Stop the node first so a loop blocked in WaitCommitted (or a
	// propose in flight) unblocks with ErrStopped before we wait for it.
	s.node.Stop()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.loopWG.Wait()
}

// WALImage returns the crash-surviving persistent log image.
func (s *Server) WALImage() []byte { return s.node.WALImage() }

// Node exposes the underlying replication node (tests, recovery
// harness).
func (s *Server) Node() *paxos.Node { return s.node }

// IsLeader reports whether this node currently leads the group.
func (s *Server) IsLeader() bool {
	r, _ := s.node.Role()
	return r == paxos.Leader
}

// Stats returns a snapshot of activity counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Disk exposes the node's log IO channel (chaos drills arm fsync
// hooks on it to crash the node at exact durability boundaries).
func (s *Server) Disk() *simdisk.Disk { return s.disk }

// DiskStats exposes the log channel statistics — the source of the
// writesets-per-fsync figure the paper reports.
func (s *Server) DiskStats() simdisk.Stats { return s.disk.Stats() }

// DiskUtilization reports the log channel's busy fraction since the
// last stats reset.
func (s *Server) DiskUtilization() float64 { return s.disk.Utilization() }

// BatchStats summarizes the certification pipeline's batch sizes: how
// many commits shared one replication round and durability barrier.
func (s *Server) BatchStats() metrics.DistSummary { return s.batchSizes.Summarize() }

// ResetActivityStats zeroes the disk statistics and the batch-size
// distribution, typically after populate/warm-up so the reported
// writesets-per-fsync reflects steady state.
func (s *Server) ResetActivityStats() {
	s.disk.ResetStats()
	s.batchSizes.Reset()
}

// SetAbortRate changes the injected abort rate at runtime (Fig 14
// sweeps).
func (s *Server) SetAbortRate(r float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.AbortRate = r
}

// Handle is the transport handler for this node: it serves both the
// certification API and the group's replication traffic.
func (s *Server) Handle(method string, req []byte) ([]byte, error) {
	switch {
	case strings.HasPrefix(method, "paxos."):
		return s.node.HandleRPC(method, req)
	case method == MethodCertify:
		var r Request
		if err := gobDecode(req, &r); err != nil {
			return nil, err
		}
		resp, err := s.certify(r)
		if err != nil {
			return nil, err
		}
		return gobEncode(resp)
	case method == MethodPull:
		var r PullRequest
		if err := gobDecode(req, &r); err != nil {
			return nil, err
		}
		resp, err := s.pull(r)
		if err != nil {
			return nil, err
		}
		return gobEncode(resp)
	default:
		return nil, fmt.Errorf("certifier: unknown method %q", method)
	}
}

// ensureEngineLocked makes the engine reflect this node's current log
// snapshot, rebuilding after leadership changes. Returns an error if
// the node is not the leader.
func (s *Server) ensureEngineLocked() error {
	term, role, entries := s.node.SnapshotLog()
	if role != paxos.Leader {
		return notLeaderError(s.node.LeaderHint())
	}
	if s.basisValid && s.basisTerm == term {
		return nil
	}
	eng := core.NewEngine()
	for _, e := range entries {
		origin, start, ws, err := decodeEntryData(e.Data)
		if err != nil {
			return fmt.Errorf("certifier: rebuilding engine: %w", err)
		}
		if err := eng.Append(core.LogEntry{
			Version: core.Version(e.Index), WS: ws, Origin: origin,
			CertifiedBack: core.Version(start),
		}); err != nil {
			return fmt.Errorf("certifier: rebuilding engine: %w", err)
		}
	}
	s.engine = eng
	s.basisTerm = term
	s.basisValid = true
	// A leadership change starts a fresh response-sequencing epoch;
	// proxies detect the reset and resynchronize.
	s.replicaSeq = make(map[int]uint64)
	// A new leader cannot mark the previous term's tail committed
	// until an entry of its own term commits; until then pulls and
	// resyncs are capped below transactions that are already acked.
	// Self-barrier in the background so a quiet (or read-only) period
	// after a failover still finalizes the tail promptly.
	if s.node.CommitIndex() < uint64(len(entries)) && s.barrierInFlight.CompareAndSwap(false, true) {
		go func() {
			defer s.barrierInFlight.Store(false)
			s.Barrier()
		}()
	}
	return nil
}

// nextReplicaSeqLocked hands out the dense per-origin sequence number
// stamped on every response.
func (s *Server) nextReplicaSeqLocked(origin int) uint64 {
	if s.replicaSeq == nil {
		s.replicaSeq = make(map[int]uint64)
	}
	s.replicaSeq[origin]++
	return s.replicaSeq[origin]
}

// committedCap bounds what leaves the certifier to majority-durable
// versions: uncommitted in-flight entries must never reach a replica.
func (s *Server) committedCap() uint64 {
	return s.node.CommitIndex()
}

// Barrier commits a no-op log entry and waits for it, returning the
// resulting committed index. A freshly elected leader cannot mark a
// previous term's tail committed until an entry of its own term
// commits (the leader-completeness rule), so after a failover a quiet
// group would keep reporting a committed prefix that excludes already-
// acknowledged transactions; a barrier finalizes the tail on demand.
// The no-op consumes one global version; replicas advance their
// announce chain through it without installing anything.
func (s *Server) Barrier() (uint64, error) {
	// Claim the coalescing flag so ensureEngineLocked's automatic
	// post-election barrier does not spawn a second no-op alongside
	// this explicit one.
	if s.barrierInFlight.CompareAndSwap(false, true) {
		defer s.barrierInFlight.Store(false)
	}
	s.mu.Lock()
	if err := s.ensureEngineLocked(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	version := uint64(s.engine.SystemVersion()) + 1
	data := encodeEntryData(0, 0, &core.Writeset{})
	first, term, err := s.node.ProposeBatchAt(version-1, [][]byte{data})
	if err == nil && first != version {
		err = fmt.Errorf("certifier: barrier proposed at index %d, engine expected %d", first, version)
	}
	if err != nil {
		s.basisValid = false
		s.mu.Unlock()
		return 0, err
	}
	if aerr := s.engine.Append(core.LogEntry{
		Version: core.Version(version), WS: &core.Writeset{}, Origin: 0,
	}); aerr != nil {
		s.basisValid = false
	}
	s.mu.Unlock()
	if err := s.node.WaitCommitted(first, term); err != nil {
		return 0, err
	}
	return s.node.CommitIndex(), nil
}

// fillRemotesLocked collects the writesets in (after, upTo] that did
// not originate at the requesting replica — or every writeset in the
// range when includeOwn is set (replica recovery needs its own
// transactions back too) — optionally annotated with certify-back
// information.
func (s *Server) fillRemotesLocked(resp *Response, origin int, includeOwn bool, after, upTo uint64, needSafeBack bool) {
	entries, err := s.engine.EntriesSince(core.Version(after), core.Version(upTo))
	if err != nil {
		// Horizon truncated below the replica's version; the replica
		// must do a full resync. Ship nothing.
		return
	}
	for _, e := range entries {
		if e.Origin == origin && !includeOwn {
			continue
		}
		r := RemoteWS{Version: uint64(e.Version), WSBytes: e.WS.Encode(nil)}
		if needSafeBack {
			back, err := s.engine.CertifyBack(e.Version, core.Version(after))
			if err == nil {
				r.SafeBack = uint64(back)
			} else {
				r.SafeBack = uint64(e.Version) // force serialization on error
			}
			s.stats.CertifyBackOps++
		}
		resp.Remote = append(resp.Remote, r)
		s.stats.RemoteShipped++
	}
}

// pull serves the staleness-bounding fetch: all committed remote
// writesets the replica has not seen.
func (s *Server) pull(req PullRequest) (PullResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureEngineLocked(); err != nil {
		return PullResponse{}, err
	}
	s.stats.Pulls++
	var r Response
	upTo := s.committedCap()
	s.fillRemotesLocked(&r, req.Origin, req.IncludeOwn, req.ReplicaVersion, upTo, req.NeedSafeBack)
	return PullResponse{
		Remote: r.Remote, SystemVersion: upTo,
		ReplicaSeq: s.nextReplicaSeqLocked(req.Origin),
		SeqEpoch:   s.basisTerm,
	}, nil
}
