package certifier

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/metrics"
	"tashkent/internal/paxos"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
	"tashkent/internal/wal"
)

// Stats is a snapshot of certifier activity.
type Stats struct {
	Requests       int64
	Commits        int64
	Aborts         int64
	InjectedAborts int64
	Pulls          int64
	RemoteShipped  int64 // remote writesets shipped to replicas
	CertifyBackOps int64 // extended certification checks performed
}

// Config parameterizes one certifier node.
type Config struct {
	// ID is this certifier's identity within the group.
	ID int
	// Peers maps other certifier ids to clients (for paxos traffic).
	Peers map[int]transport.Client
	// Disk backs the persistent certification log. nil = instant.
	Disk *simdisk.Disk
	// DisableDurability runs certification without disk writes — the
	// paper's tashAPInoCERT ablation (§9.2: "the certifier performs
	// certification as usual, but it does not write information to
	// disk").
	DisableDurability bool
	// AbortRate injects random aborts at the given rate in [0,1),
	// applied *after* the full certification check so all certifier
	// work is still done — the Fig 14 methodology.
	AbortRate float64
	// MaxBatch caps how many admitted certification requests one
	// pipeline iteration drains into a single replication round and
	// durability barrier (<=0 selects the default of 256).
	MaxBatch int
	// MaxWait is how long the certification loop lingers after the
	// first admitted request to let stragglers join its batch. Zero
	// (the default) means no artificial delay: the loop takes whatever
	// is already queued — under load batches form naturally while the
	// previous barrier is on the disk.
	MaxWait time.Duration
	// AdmitTimeout is the admission-control budget: a request that
	// cannot get a queue slot within this budget is shed with an
	// OVERLOADED/retry-after response instead of queueing without
	// bound, and one that has already waited twice the budget in the
	// queue when a batch drains (drain collapse) is shed under the
	// same contract. Zero selects the default of 1s; negative disables
	// shedding (requests block as before).
	AdmitTimeout time.Duration
	// QueueDepth caps the admission queue (<=0 selects 4*MaxBatch).
	// Size it to roughly one AdmitTimeout of drain so an admitted
	// request's queue wait stays inside the budget.
	QueueDepth int
	// PaxosCallHook, if set, filters this node's outgoing replication
	// RPCs (see paxos.Config.CallHook) — the chaos harness's handle for
	// isolating a certifier from its peers.
	PaxosCallHook func(peer int, method string) error
	// ElectionTimeout/Seed tune the underlying replication group.
	ElectionTimeout time.Duration
	Seed            int64
	// Partitioned marks this certifier as one group of a partitioned
	// deployment: responses ship raw log-entry payloads (kind, 2PC
	// metadata and all) instead of bare writesets, because partitioned
	// replicas merge full per-group streams (see internal/partition).
	Partitioned bool
	// Group is the partition id this certifier serves (informational).
	Group int
}

// defaultMaxBatch bounds one certification batch when Config.MaxBatch
// is unset.
const defaultMaxBatch = 256

// Server is one certifier node: a paxos group member plus the
// certification engine. Any node accepts RPCs; only the current leader
// certifies (followers redirect).
//
// Certification runs as a staged pipeline: RPC handlers enqueue onto
// the admission queue and wait; a dedicated certification loop drains
// all waiting requests, conflict-checks them in order, proposes every
// surviving commit as one batched log append, takes one durability
// barrier per batch, and fans the responses back (see pipeline.go).
type Server struct {
	cfg  Config
	node *paxos.Node
	disk *simdisk.Disk

	admitCh    chan *certifyTask // admission queue feeding the loop
	slots      chan struct{}     // admission tokens: one per queue slot, released at dequeue
	stopCh     chan struct{}
	stopOnce   sync.Once
	loopWG     sync.WaitGroup
	batchSizes metrics.Distribution // commits proposed per batch

	// Admission-control observability: queue depth at admit time,
	// queue wait at drain time, and the shed/expired totals — the data
	// behind tashbench's goodput-vs-offered-load knee plot.
	queueDepth   metrics.Distribution
	queueWait    *metrics.Latency
	shedCount    atomic.Int64 // requests rejected with OVERLOADED
	expiredCount atomic.Int64 // requests dropped: caller deadline passed
	// barrierInFlight coalesces the automatic post-election barrier
	// (see ensureEngineLocked).
	barrierInFlight atomic.Bool
	// inFlight counts admitted-but-unresolved log-appending requests
	// (certifications, prepares, resolves). Pull responses report it so
	// a partitioned replica's merger can tell a group that is about to
	// commit more entries from one that is genuinely idle and needs a
	// fill to unblock the merge.
	inFlight atomic.Int64

	mu         sync.Mutex // guards engine + basisTerm + rng + stats
	engine     *core.Engine
	basisTerm  uint64 // term the engine was last rebuilt for
	basisValid bool
	replicaSeq map[int]uint64 // per-origin response sequence numbers
	rng        *rand.Rand
	stats      Stats
}

// New creates a certifier node. Call Start to join the group.
func New(cfg Config) *Server {
	if cfg.Disk == nil {
		cfg.Disk = simdisk.New(simdisk.Instant(), int64(cfg.ID)+100)
	}
	mode := wal.SyncCommits
	if cfg.DisableDurability {
		mode = wal.NoSync
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.AdmitTimeout == 0 {
		cfg.AdmitTimeout = time.Second
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.MaxBatch
	}
	s := &Server{
		cfg:       cfg,
		disk:      cfg.Disk,
		engine:    core.NewEngine(),
		rng:       rand.New(rand.NewSource(cfg.Seed ^ 0x5EED)),
		admitCh:   make(chan *certifyTask, cfg.QueueDepth),
		slots:     make(chan struct{}, cfg.QueueDepth),
		stopCh:    make(chan struct{}),
		queueWait: metrics.NewLatency(0),
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		s.slots <- struct{}{}
	}
	s.node = paxos.NewNode(paxos.Config{
		ID:              cfg.ID,
		Peers:           cfg.Peers,
		Disk:            cfg.Disk,
		WALMode:         mode,
		CallHook:        cfg.PaxosCallHook,
		ElectionTimeout: cfg.ElectionTimeout,
		Seed:            cfg.Seed,
	})
	return s
}

// RestoreFromImage rebuilds the node's replicated log from a WAL crash
// image before Start (certifier recovery, §7.3).
func (s *Server) RestoreFromImage(img []byte) error { return s.node.RestoreFromImage(img) }

// Start joins the replication group and launches the certification
// pipeline loop.
func (s *Server) Start() {
	s.node.Start()
	s.loopWG.Add(1)
	go s.certifyLoop()
}

// Stop halts the node and the certification loop. Requests still in
// the admission queue fail with paxos.ErrStopped.
func (s *Server) Stop() {
	// Stop the node first so a loop blocked in WaitCommitted (or a
	// propose in flight) unblocks with ErrStopped before we wait for it.
	s.node.Stop()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.loopWG.Wait()
}

// WALImage returns the crash-surviving persistent log image.
func (s *Server) WALImage() []byte { return s.node.WALImage() }

// Node exposes the underlying replication node (tests, recovery
// harness).
func (s *Server) Node() *paxos.Node { return s.node }

// IsLeader reports whether this node currently leads the group.
func (s *Server) IsLeader() bool {
	r, _ := s.node.Role()
	return r == paxos.Leader
}

// Stats returns a snapshot of activity counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Disk exposes the node's log IO channel (chaos drills arm fsync
// hooks on it to crash the node at exact durability boundaries).
func (s *Server) Disk() *simdisk.Disk { return s.disk }

// DiskStats exposes the log channel statistics — the source of the
// writesets-per-fsync figure the paper reports.
func (s *Server) DiskStats() simdisk.Stats { return s.disk.Stats() }

// DiskUtilization reports the log channel's busy fraction since the
// last stats reset.
func (s *Server) DiskUtilization() float64 { return s.disk.Utilization() }

// BatchStats summarizes the certification pipeline's batch sizes: how
// many commits shared one replication round and durability barrier.
func (s *Server) BatchStats() metrics.DistSummary { return s.batchSizes.Summarize() }

// QueueStats is a snapshot of admission-control activity.
type QueueStats struct {
	Depth   metrics.DistSummary // queue depth observed at admit time
	Wait    metrics.Summary     // admission-queue wait of drained requests
	Shed    int64               // requests rejected with OVERLOADED
	Expired int64               // requests dropped after their caller deadline passed
}

// QueueStats reports the admission queue's depth/wait distributions
// and the shed/expired totals.
func (s *Server) QueueStats() QueueStats {
	return QueueStats{
		Depth:   s.queueDepth.Summarize(),
		Wait:    s.queueWait.Summarize(),
		Shed:    s.shedCount.Load(),
		Expired: s.expiredCount.Load(),
	}
}

// retryAfterHint scales the shed response's backoff hint with queue
// occupancy: an idle-ish queue suggests one batch linger, a saturated
// one suggests proportionally more.
func (s *Server) retryAfterHint() time.Duration {
	base := s.cfg.MaxWait
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	return base * time.Duration(1+len(s.admitCh)/s.cfg.MaxBatch)
}

// ResetActivityStats zeroes the disk statistics and the batch-size
// distribution, typically after populate/warm-up so the reported
// writesets-per-fsync reflects steady state.
func (s *Server) ResetActivityStats() {
	s.disk.ResetStats()
	s.batchSizes.Reset()
	s.queueDepth.Reset()
	s.queueWait.Reset()
	s.shedCount.Store(0)
	s.expiredCount.Store(0)
}

// SetAbortRate changes the injected abort rate at runtime (Fig 14
// sweeps).
func (s *Server) SetAbortRate(r float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.AbortRate = r
}

// Handle is the transport handler for this node: it serves both the
// certification API and the group's replication traffic.
func (s *Server) Handle(method string, req []byte) ([]byte, error) {
	// A stopped server simulates a crashed process across the whole
	// API, not just the replication layer. Without this a deposed
	// zombie — whose paxos node refuses peer RPCs and so never learns
	// the new term — would keep serving Pull from its frozen state as
	// if it still led, feeding replicas empty answers instead of the
	// failover error that sends them to the live leader.
	select {
	case <-s.stopCh:
		return nil, paxos.ErrStopped
	default:
	}
	switch {
	case strings.HasPrefix(method, "paxos."):
		return s.node.HandleRPC(method, req)
	case method == MethodCertify:
		var r Request
		if err := decodeMsg(req, &r); err != nil {
			return nil, err
		}
		resp, err := s.certify(r)
		if err != nil {
			return nil, err
		}
		return encodeMsg(&resp)
	case method == MethodPull:
		var r PullRequest
		if err := decodeMsg(req, &r); err != nil {
			return nil, err
		}
		resp, err := s.pull(r)
		if err != nil {
			return nil, err
		}
		return encodeMsg(&resp)
	case method == MethodPrepare:
		var r PrepareRequest
		if err := decodeMsg(req, &r); err != nil {
			return nil, err
		}
		resp, err := s.Prepare(r)
		if err != nil {
			return nil, err
		}
		return encodeMsg(&resp)
	case method == MethodResolve:
		var r ResolveRequest
		if err := decodeMsg(req, &r); err != nil {
			return nil, err
		}
		resp, err := s.Resolve(r)
		if err != nil {
			return nil, err
		}
		return encodeMsg(&resp)
	case method == MethodFill:
		var r FillRequest
		if err := decodeMsg(req, &r); err != nil {
			return nil, err
		}
		head, err := s.FillTo(r.Target)
		if err != nil {
			return nil, err
		}
		return encodeMsg(&FillResponse{Head: head})
	default:
		return nil, fmt.Errorf("certifier: unknown method %q", method)
	}
}

// ensureEngineLocked makes the engine reflect this node's current log
// snapshot, rebuilding after leadership changes. Returns an error if
// the node is not the leader.
func (s *Server) ensureEngineLocked() error {
	term, role, entries := s.node.SnapshotLog()
	if role != paxos.Leader {
		return notLeaderError(s.node.LeaderHint())
	}
	if s.basisValid && s.basisTerm == term {
		return nil
	}
	eng := core.NewEngine()
	for _, e := range entries {
		dec, err := decodeEntryData(e.Data)
		if err != nil {
			return fmt.Errorf("certifier: rebuilding engine: %w", err)
		}
		if err := eng.Append(core.LogEntry{
			Version: core.Version(e.Index), WS: dec.WS, Origin: dec.Origin,
			CertifiedBack: core.Version(dec.Start),
			Kind:          dec.Kind, GID: dec.GID, Involved: dec.Involved,
		}); err != nil {
			return fmt.Errorf("certifier: rebuilding engine: %w", err)
		}
	}
	s.engine = eng
	s.basisTerm = term
	s.basisValid = true
	// A leadership change starts a fresh response-sequencing epoch;
	// proxies detect the reset and resynchronize.
	s.replicaSeq = make(map[int]uint64)
	// A new leader cannot mark the previous term's tail committed
	// until an entry of its own term commits; until then pulls and
	// resyncs are capped below transactions that are already acked.
	// Self-barrier in the background so a quiet (or read-only) period
	// after a failover still finalizes the tail promptly.
	if s.node.CommitIndex() < uint64(len(entries)) && s.barrierInFlight.CompareAndSwap(false, true) {
		go func() {
			defer s.barrierInFlight.Store(false)
			s.Barrier()
		}()
	}
	return nil
}

// nextReplicaSeqLocked hands out the dense per-origin sequence number
// stamped on every response.
func (s *Server) nextReplicaSeqLocked(origin int) uint64 {
	if s.replicaSeq == nil {
		s.replicaSeq = make(map[int]uint64)
	}
	s.replicaSeq[origin]++
	return s.replicaSeq[origin]
}

// committedCap bounds what leaves the certifier to majority-durable
// versions: uncommitted in-flight entries must never reach a replica.
func (s *Server) committedCap() uint64 {
	return s.node.CommitIndex()
}

// Barrier commits a no-op log entry and waits for it, returning the
// resulting committed index. A freshly elected leader cannot mark a
// previous term's tail committed until an entry of its own term
// commits (the leader-completeness rule), so after a failover a quiet
// group would keep reporting a committed prefix that excludes already-
// acknowledged transactions; a barrier finalizes the tail on demand.
// The no-op consumes one global version; replicas advance their
// announce chain through it without installing anything.
func (s *Server) Barrier() (uint64, error) {
	// Claim the coalescing flag so ensureEngineLocked's automatic
	// post-election barrier does not spawn a second no-op alongside
	// this explicit one.
	if s.barrierInFlight.CompareAndSwap(false, true) {
		defer s.barrierInFlight.Store(false)
	}
	s.mu.Lock()
	if err := s.ensureEngineLocked(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	version := uint64(s.engine.SystemVersion()) + 1
	data := encodeEntryData(0, 0, &core.Writeset{})
	first, term, err := s.node.ProposeBatchAt(version-1, [][]byte{data})
	if err == nil && first != version {
		err = fmt.Errorf("certifier: barrier proposed at index %d, engine expected %d", first, version)
	}
	if err != nil {
		s.basisValid = false
		s.mu.Unlock()
		return 0, err
	}
	if aerr := s.engine.Append(core.LogEntry{
		Version: core.Version(version), WS: &core.Writeset{}, Origin: 0,
	}); aerr != nil {
		s.basisValid = false
	}
	s.mu.Unlock()
	if err := s.node.WaitCommitted(first, term); err != nil {
		return 0, err
	}
	return s.node.CommitIndex(), nil
}

// fillRemotesLocked collects the writesets in (after, upTo] that did
// not originate at the requesting replica — or every writeset in the
// range when includeOwn is set (replica recovery needs its own
// transactions back too) — optionally annotated with certify-back
// information.
func (s *Server) fillRemotesLocked(resp *Response, origin int, includeOwn bool, after, upTo uint64, needSafeBack bool) {
	entries, err := s.engine.EntriesSince(core.Version(after), core.Version(upTo))
	if err != nil {
		// Horizon truncated below the replica's version; the replica
		// must do a full resync. Ship nothing.
		return
	}
	for _, e := range entries {
		if e.Origin == origin && !includeOwn {
			continue
		}
		r := RemoteWS{Version: uint64(e.Version), WSBytes: e.WS.Encode(nil)}
		if s.cfg.Partitioned {
			// Partitioned replicas merge full per-group streams: ship
			// the raw entry payload (kind and 2PC metadata included).
			r.WSBytes = encodeEngineEntry(e)
		}
		if needSafeBack {
			back, err := s.engine.CertifyBack(e.Version, core.Version(after))
			if err == nil {
				r.SafeBack = uint64(back)
			} else {
				r.SafeBack = uint64(e.Version) // force serialization on error
			}
			s.stats.CertifyBackOps++
		}
		resp.Remote = append(resp.Remote, r)
		s.stats.RemoteShipped++
	}
}

// waitIndexCommitted waits until the group's committed prefix covers
// index. Unlike paxos.WaitCommitted it does not pin a term: it is used
// for idempotent retries whose entry may have been proposed in an
// earlier term (the entry is identified by content, not by (index,
// term)).
func (s *Server) waitIndexCommitted(index uint64) error {
	// A condition wait on the node's commit broadcast — the previous
	// 200µs timer poll allocated a timer per iteration on the hot
	// certify path and put a scheduling-granularity floor under every
	// wait. Node.Stop (called first by Server.Stop) broadcasts too, so
	// shutdown wakes this without watching stopCh.
	err := s.node.WaitCommittedIndex(index, 5*time.Second)
	if errors.Is(err, paxos.ErrWaitTimeout) {
		return fmt.Errorf("certifier: index %d not committed in time", index)
	}
	return err
}

// Prepare serves phase 1 of a cross-partition commit: conflict-check
// this group's slice of the writeset, lock its items under the
// transaction's gid, and append a durable prepare entry. Idempotent:
// a retry of an already-prepared gid returns the existing entry.
func (s *Server) Prepare(req PrepareRequest) (PrepareResponse, error) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.mu.Lock()
	if err := s.ensureEngineLocked(); err != nil {
		s.mu.Unlock()
		return PrepareResponse{}, err
	}
	s.stats.Requests++
	if v, ok := s.engine.PreparedAt(req.GID); ok {
		s.mu.Unlock()
		if err := s.waitIndexCommitted(uint64(v)); err != nil {
			return PrepareResponse{}, err
		}
		return PrepareResponse{Prepared: true, Index: uint64(v), SystemVersion: s.committedCap()}, nil
	}
	if _, _, ok := s.engine.Resolution(req.GID); ok {
		// The decision marker is already in the log (a coordinator
		// retry raced its own abort): this gid can never prepare again.
		s.stats.Aborts++
		s.mu.Unlock()
		return PrepareResponse{SystemVersion: s.committedCap()}, nil
	}
	ws, _, err := core.DecodeWriteset(req.WSBytes)
	if err != nil {
		s.mu.Unlock()
		return PrepareResponse{}, fmt.Errorf("certifier: undecodable prepare writeset: %w", err)
	}
	if s.engine.Conflicts(core.Version(req.StartVersion), ws) {
		s.stats.Aborts++
		s.mu.Unlock()
		return PrepareResponse{SystemVersion: s.committedCap()}, nil
	}
	if s.cfg.AbortRate > 0 && s.rng.Float64() < s.cfg.AbortRate {
		s.stats.InjectedAborts++
		s.stats.Aborts++
		s.mu.Unlock()
		return PrepareResponse{SystemVersion: s.committedCap()}, nil
	}
	version := uint64(s.engine.SystemVersion()) + 1
	data := encodeEntry(core.KindPrepare, req.Origin, req.StartVersion, req.GID, req.Involved, ws)
	first, term, err := s.node.ProposeBatchAt(version-1, [][]byte{data})
	if err == nil && first != version {
		err = fmt.Errorf("certifier: prepare proposed at index %d, engine expected %d", first, version)
	}
	if err != nil {
		s.basisValid = false
		s.mu.Unlock()
		return PrepareResponse{}, err
	}
	if aerr := s.engine.Append(core.LogEntry{
		Version: core.Version(version), WS: ws, Origin: req.Origin,
		CertifiedBack: core.Version(req.StartVersion),
		Kind:          core.KindPrepare, GID: req.GID, Involved: req.Involved,
	}); aerr != nil {
		s.basisValid = false
	}
	s.stats.Commits++
	s.mu.Unlock()
	if err := s.node.WaitCommitted(first, term); err != nil {
		return PrepareResponse{}, err
	}
	return PrepareResponse{Prepared: true, Index: version, SystemVersion: s.committedCap()}, nil
}

// Resolve serves phase 2: append the commit or abort decision marker
// for a prepared gid. Idempotent — the first marker wins and retries
// return its index.
func (s *Server) Resolve(req ResolveRequest) (ResolveResponse, error) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.mu.Lock()
	if err := s.ensureEngineLocked(); err != nil {
		s.mu.Unlock()
		return ResolveResponse{}, err
	}
	if v, _, ok := s.engine.Resolution(req.GID); ok {
		s.mu.Unlock()
		if err := s.waitIndexCommitted(uint64(v)); err != nil {
			return ResolveResponse{}, err
		}
		return ResolveResponse{Index: uint64(v), SystemVersion: s.committedCap()}, nil
	}
	if _, ok := s.engine.PreparedAt(req.GID); !ok && req.Commit {
		// A commit decision for a gid this group never prepared: the
		// coordinator's phase-1 ack can only have come from a durable
		// prepare, so any leader must see it. Refuse loudly.
		s.mu.Unlock()
		return ResolveResponse{}, fmt.Errorf("certifier: resolve-commit for unknown gid %d", req.GID)
	}
	kind := core.KindAbortMarker
	if req.Commit {
		kind = core.KindCommitMarker
	}
	version := uint64(s.engine.SystemVersion()) + 1
	data := encodeEntry(kind, 0, 0, req.GID, nil, &core.Writeset{})
	first, term, err := s.node.ProposeBatchAt(version-1, [][]byte{data})
	if err == nil && first != version {
		err = fmt.Errorf("certifier: resolve proposed at index %d, engine expected %d", first, version)
	}
	if err != nil {
		s.basisValid = false
		s.mu.Unlock()
		return ResolveResponse{}, err
	}
	if aerr := s.engine.Append(core.LogEntry{
		Version: core.Version(version), WS: &core.Writeset{},
		Kind: kind, GID: req.GID,
	}); aerr != nil {
		s.basisValid = false
	}
	s.mu.Unlock()
	if err := s.node.WaitCommitted(first, term); err != nil {
		return ResolveResponse{}, err
	}
	return ResolveResponse{Index: version, SystemVersion: s.committedCap()}, nil
}

// maxFill bounds one fill request; a merge that is further behind asks
// again.
const maxFill = 4096

// FillTo pads the group's log with no-op fill entries until it holds
// at least target entries, then waits for them to commit. Replicas
// blocked on this group's position in the deterministic merge call it
// (through the proxy) when the group is idle. Returns the committed
// head.
func (s *Server) FillTo(target uint64) (uint64, error) {
	s.mu.Lock()
	if err := s.ensureEngineLocked(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	head := uint64(s.engine.SystemVersion())
	if head >= target {
		s.mu.Unlock()
		if err := s.waitIndexCommitted(target); err != nil {
			return 0, err
		}
		return s.committedCap(), nil
	}
	n := target - head
	if n > maxFill {
		n = maxFill
	}
	datas := make([][]byte, n)
	entries := make([]core.LogEntry, n)
	for i := range datas {
		datas[i] = encodeEntryData(core.BarrierOrigin, 0, &core.Writeset{})
		entries[i] = core.LogEntry{Version: core.Version(head + uint64(i) + 1), WS: &core.Writeset{}, Origin: core.BarrierOrigin}
	}
	first, term, err := s.node.ProposeBatchAt(head, datas)
	if err == nil && first != head+1 {
		err = fmt.Errorf("certifier: fill proposed at index %d, engine expected %d", first, head+1)
	}
	if err != nil {
		s.basisValid = false
		s.mu.Unlock()
		return 0, err
	}
	for _, e := range entries {
		if aerr := s.engine.Append(e); aerr != nil {
			s.basisValid = false
			break
		}
	}
	s.mu.Unlock()
	if err := s.node.WaitCommitted(first+n-1, term); err != nil {
		return 0, err
	}
	return s.committedCap(), nil
}

// pull serves the staleness-bounding fetch: all committed remote
// writesets the replica has not seen.
func (s *Server) pull(req PullRequest) (PullResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureEngineLocked(); err != nil {
		return PullResponse{}, err
	}
	s.stats.Pulls++
	var r Response
	upTo := s.committedCap()
	s.fillRemotesLocked(&r, req.Origin, req.IncludeOwn, req.ReplicaVersion, upTo, req.NeedSafeBack)
	return PullResponse{
		Remote: r.Remote, SystemVersion: upTo,
		Busy:       s.inFlight.Load() > 0,
		ReplicaSeq: s.nextReplicaSeqLocked(req.Origin),
		SeqEpoch:   s.basisTerm,
	}, nil
}
