package certifier

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/paxos"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
	"tashkent/internal/wal"
)

// Stats is a snapshot of certifier activity.
type Stats struct {
	Requests       int64
	Commits        int64
	Aborts         int64
	InjectedAborts int64
	Pulls          int64
	RemoteShipped  int64 // remote writesets shipped to replicas
	CertifyBackOps int64 // extended certification checks performed
}

// Config parameterizes one certifier node.
type Config struct {
	// ID is this certifier's identity within the group.
	ID int
	// Peers maps other certifier ids to clients (for paxos traffic).
	Peers map[int]transport.Client
	// Disk backs the persistent certification log. nil = instant.
	Disk *simdisk.Disk
	// DisableDurability runs certification without disk writes — the
	// paper's tashAPInoCERT ablation (§9.2: "the certifier performs
	// certification as usual, but it does not write information to
	// disk").
	DisableDurability bool
	// AbortRate injects random aborts at the given rate in [0,1),
	// applied *after* the full certification check so all certifier
	// work is still done — the Fig 14 methodology.
	AbortRate float64
	// ElectionTimeout/Seed tune the underlying replication group.
	ElectionTimeout time.Duration
	Seed            int64
}

// Server is one certifier node: a paxos group member plus the
// certification engine. Any node accepts RPCs; only the current leader
// certifies (followers redirect).
type Server struct {
	cfg  Config
	node *paxos.Node
	disk *simdisk.Disk

	mu         sync.Mutex // guards engine + basisTerm + rng + stats
	engine     *core.Engine
	basisTerm  uint64 // term the engine was last rebuilt for
	basisValid bool
	replicaSeq map[int]uint64 // per-origin response sequence numbers
	rng        *rand.Rand
	stats      Stats
}

// New creates a certifier node. Call Start to join the group.
func New(cfg Config) *Server {
	if cfg.Disk == nil {
		cfg.Disk = simdisk.New(simdisk.Instant(), int64(cfg.ID)+100)
	}
	mode := wal.SyncCommits
	if cfg.DisableDurability {
		mode = wal.NoSync
	}
	s := &Server{
		cfg:    cfg,
		disk:   cfg.Disk,
		engine: core.NewEngine(),
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x5EED)),
	}
	s.node = paxos.NewNode(paxos.Config{
		ID:              cfg.ID,
		Peers:           cfg.Peers,
		Disk:            cfg.Disk,
		WALMode:         mode,
		ElectionTimeout: cfg.ElectionTimeout,
		Seed:            cfg.Seed,
	})
	return s
}

// RestoreFromImage rebuilds the node's replicated log from a WAL crash
// image before Start (certifier recovery, §7.3).
func (s *Server) RestoreFromImage(img []byte) error { return s.node.RestoreFromImage(img) }

// Start joins the replication group.
func (s *Server) Start() { s.node.Start() }

// Stop halts the node.
func (s *Server) Stop() { s.node.Stop() }

// WALImage returns the crash-surviving persistent log image.
func (s *Server) WALImage() []byte { return s.node.WALImage() }

// Node exposes the underlying replication node (tests, recovery
// harness).
func (s *Server) Node() *paxos.Node { return s.node }

// IsLeader reports whether this node currently leads the group.
func (s *Server) IsLeader() bool {
	r, _ := s.node.Role()
	return r == paxos.Leader
}

// Stats returns a snapshot of activity counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// DiskStats exposes the log channel statistics — the source of the
// writesets-per-fsync figure the paper reports.
func (s *Server) DiskStats() simdisk.Stats { return s.disk.Stats() }

// SetAbortRate changes the injected abort rate at runtime (Fig 14
// sweeps).
func (s *Server) SetAbortRate(r float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.AbortRate = r
}

// Handle is the transport handler for this node: it serves both the
// certification API and the group's replication traffic.
func (s *Server) Handle(method string, req []byte) ([]byte, error) {
	switch {
	case strings.HasPrefix(method, "paxos."):
		return s.node.HandleRPC(method, req)
	case method == MethodCertify:
		var r Request
		if err := gobDecode(req, &r); err != nil {
			return nil, err
		}
		resp, err := s.certify(r)
		if err != nil {
			return nil, err
		}
		return gobEncode(resp)
	case method == MethodPull:
		var r PullRequest
		if err := gobDecode(req, &r); err != nil {
			return nil, err
		}
		resp, err := s.pull(r)
		if err != nil {
			return nil, err
		}
		return gobEncode(resp)
	default:
		return nil, fmt.Errorf("certifier: unknown method %q", method)
	}
}

// ensureEngineLocked makes the engine reflect this node's current log
// snapshot, rebuilding after leadership changes. Returns an error if
// the node is not the leader.
func (s *Server) ensureEngineLocked() error {
	term, role, entries := s.node.SnapshotLog()
	if role != paxos.Leader {
		return notLeaderError(s.node.LeaderHint())
	}
	if s.basisValid && s.basisTerm == term {
		return nil
	}
	eng := core.NewEngine()
	for _, e := range entries {
		origin, start, ws, err := decodeEntryData(e.Data)
		if err != nil {
			return fmt.Errorf("certifier: rebuilding engine: %w", err)
		}
		if err := eng.Append(core.LogEntry{
			Version: core.Version(e.Index), WS: ws, Origin: origin,
			CertifiedBack: core.Version(start),
		}); err != nil {
			return fmt.Errorf("certifier: rebuilding engine: %w", err)
		}
	}
	s.engine = eng
	s.basisTerm = term
	s.basisValid = true
	// A leadership change starts a fresh response-sequencing epoch;
	// proxies detect the reset and resynchronize.
	s.replicaSeq = make(map[int]uint64)
	return nil
}

// nextReplicaSeqLocked hands out the dense per-origin sequence number
// stamped on every response.
func (s *Server) nextReplicaSeqLocked(origin int) uint64 {
	if s.replicaSeq == nil {
		s.replicaSeq = make(map[int]uint64)
	}
	s.replicaSeq[origin]++
	return s.replicaSeq[origin]
}

// certify implements the §6.1 pseudocode plus replication: test for
// intersection, append to the replicated log, wait for majority
// durability, return decision + commit version + remote writesets.
func (s *Server) certify(req Request) (Response, error) {
	ws, _, err := core.DecodeWriteset(req.WSBytes)
	if err != nil {
		return Response{}, err
	}
	if ws.Empty() {
		return Response{}, errors.New("certifier: empty writeset (read-only transactions commit at the replica)")
	}

	s.mu.Lock()
	if err := s.ensureEngineLocked(); err != nil {
		s.mu.Unlock()
		return Response{}, err
	}
	s.stats.Requests++

	// Full certification check first; injected aborts (Fig 14) happen
	// after the check so the certifier pays all its usual costs.
	conflict := s.engine.Conflicts(core.Version(req.StartVersion), ws)
	injected := false
	if !conflict && s.cfg.AbortRate > 0 && s.rng.Float64() < s.cfg.AbortRate {
		injected = true
	}

	if conflict || injected {
		s.stats.Aborts++
		if injected {
			s.stats.InjectedAborts++
		}
		resp := Response{Committed: false, ReplicaSeq: s.nextReplicaSeqLocked(req.Origin), SeqEpoch: s.basisTerm}
		s.fillRemotesLocked(&resp, req.Origin, req.ReplicaVersion, s.committedCap(), req.NeedSafeBack)
		s.mu.Unlock()
		return resp, nil
	}

	// Commit path: reserve the next version by proposing to the
	// replicated log, guarded so the engine and the log cannot skew.
	version := uint64(s.engine.SystemVersion()) + 1
	data := encodeEntryData(req.Origin, req.StartVersion, ws)
	idx, term, err := s.node.ProposeAt(version-1, data)
	if err != nil {
		// Log changed or leadership lost: force a rebuild next time.
		s.basisValid = false
		s.mu.Unlock()
		return Response{}, fmt.Errorf("certifier: propose: %w", err)
	}
	if idx != version {
		s.basisValid = false
		s.mu.Unlock()
		return Response{}, fmt.Errorf("certifier: proposed index %d, engine expected %d", idx, version)
	}
	if err := s.engine.Append(core.LogEntry{
		Version: core.Version(version), WS: ws, Origin: req.Origin,
		CertifiedBack: core.Version(req.StartVersion),
	}); err != nil {
		s.basisValid = false
		s.mu.Unlock()
		return Response{}, err
	}
	s.stats.Commits++
	resp := Response{Committed: true, CommitVersion: version, ReplicaSeq: s.nextReplicaSeqLocked(req.Origin), SeqEpoch: s.basisTerm}
	s.fillRemotesLocked(&resp, req.Origin, req.ReplicaVersion, version, req.NeedSafeBack)
	s.mu.Unlock()

	// Wait for majority durability before declaring the commit — the
	// group-commit batching across concurrent requests happens inside
	// the log's writer thread.
	if err := s.node.WaitCommitted(idx, term); err != nil {
		return Response{}, fmt.Errorf("certifier: replication: %w", err)
	}
	resp.SystemVersion = s.node.CommitIndex()
	return resp, nil
}

// noOriginFilter disables own-writeset filtering in fillRemotesLocked.
const noOriginFilter = int(^uint32(0)>>1) - 7

// committedCap bounds what leaves the certifier to majority-durable
// versions: uncommitted in-flight entries must never reach a replica.
func (s *Server) committedCap() uint64 {
	return s.node.CommitIndex()
}

// fillRemotesLocked collects the writesets in (after, upTo] that did
// not originate at the requesting replica, optionally annotated with
// certify-back information.
func (s *Server) fillRemotesLocked(resp *Response, origin int, after, upTo uint64, needSafeBack bool) {
	entries, err := s.engine.EntriesSince(core.Version(after), core.Version(upTo))
	if err != nil {
		// Horizon truncated below the replica's version; the replica
		// must do a full resync. Ship nothing.
		return
	}
	for _, e := range entries {
		if e.Origin == origin {
			continue
		}
		r := RemoteWS{Version: uint64(e.Version), WSBytes: e.WS.Encode(nil)}
		if needSafeBack {
			back, err := s.engine.CertifyBack(e.Version, core.Version(after))
			if err == nil {
				r.SafeBack = uint64(back)
			} else {
				r.SafeBack = uint64(e.Version) // force serialization on error
			}
			s.stats.CertifyBackOps++
		}
		resp.Remote = append(resp.Remote, r)
		s.stats.RemoteShipped++
	}
}

// pull serves the staleness-bounding fetch: all committed remote
// writesets the replica has not seen.
func (s *Server) pull(req PullRequest) (PullResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureEngineLocked(); err != nil {
		return PullResponse{}, err
	}
	s.stats.Pulls++
	var r Response
	upTo := s.committedCap()
	origin := req.Origin
	if req.IncludeOwn {
		origin = noOriginFilter
	}
	s.fillRemotesLocked(&r, origin, req.ReplicaVersion, upTo, req.NeedSafeBack)
	return PullResponse{
		Remote: r.Remote, SystemVersion: upTo,
		ReplicaSeq: s.nextReplicaSeqLocked(req.Origin),
		SeqEpoch:   s.basisTerm,
	}, nil
}
