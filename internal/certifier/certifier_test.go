package certifier

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
)

// testGroup is a running certifier group on a local fabric.
type testGroup struct {
	fabric  *transport.LocalFabric
	servers []*Server
	client  *Client
}

func newTestGroup(t *testing.T, n int, mutate func(i int, cfg *Config)) *testGroup {
	t.Helper()
	g := &testGroup{fabric: transport.NewLocalFabric(0)}
	for i := 0; i < n; i++ {
		peers := make(map[int]transport.Client)
		for j := 0; j < n; j++ {
			if j != i {
				peers[j] = g.fabric.Dial(fmt.Sprintf("cert%d", j))
			}
		}
		cfg := Config{
			ID: i, Peers: peers,
			ElectionTimeout: 30 * time.Millisecond,
			Seed:            int64(i + 1),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := New(cfg)
		g.servers = append(g.servers, srv)
		g.fabric.Serve(fmt.Sprintf("cert%d", i), srv.Handle)
	}
	for _, srv := range g.servers {
		srv.Start()
	}
	t.Cleanup(func() {
		for _, srv := range g.servers {
			srv.Stop()
		}
	})
	var clients []transport.Client
	for i := 0; i < n; i++ {
		clients = append(clients, g.fabric.Dial(fmt.Sprintf("cert%d", i)))
	}
	g.client = NewClient(clients, 5*time.Second)
	g.waitLeader(t)
	return g
}

func (g *testGroup) waitLeader(t *testing.T) *Server {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, s := range g.servers {
			if s.IsLeader() {
				return s
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no certifier leader")
	return nil
}

func wsBytes(keys ...string) []byte {
	ws := &core.Writeset{}
	for _, k := range keys {
		ws.Add(core.WriteOp{Kind: core.OpUpdate, Table: "t", Key: k,
			Cols: []core.ColUpdate{{Col: "v", Value: []byte(k)}}})
	}
	return ws.Encode(nil)
}

func TestCertifyCommitAndVersions(t *testing.T) {
	g := newTestGroup(t, 3, nil)
	for i := 1; i <= 5; i++ {
		resp, err := g.client.Certify(Request{
			Origin: 1, StartVersion: uint64(i - 1), ReplicaVersion: uint64(i - 1),
			WSBytes: wsBytes(fmt.Sprintf("k%d", i)),
		})
		if err != nil {
			t.Fatalf("certify %d: %v", i, err)
		}
		if !resp.Committed || resp.CommitVersion != uint64(i) {
			t.Fatalf("certify %d: committed=%v version=%d", i, resp.Committed, resp.CommitVersion)
		}
	}
}

func TestCertifyConflictAborts(t *testing.T) {
	g := newTestGroup(t, 3, nil)
	r1, err := g.client.Certify(Request{Origin: 1, WSBytes: wsBytes("x")})
	if err != nil || !r1.Committed {
		t.Fatalf("first: %v %v", r1, err)
	}
	// Same start version, same key, different replica: conflict.
	r2, err := g.client.Certify(Request{Origin: 2, StartVersion: 0, WSBytes: wsBytes("x")})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Committed {
		t.Error("conflicting writeset committed")
	}
	// Starting after the conflict commits cleanly.
	r3, err := g.client.Certify(Request{Origin: 2, StartVersion: 1, ReplicaVersion: 1, WSBytes: wsBytes("x")})
	if err != nil || !r3.Committed {
		t.Fatalf("post-conflict: %v %v", r3, err)
	}
}

func TestRemoteWritesetsExcludeOwn(t *testing.T) {
	g := newTestGroup(t, 3, nil)
	// Replica 1 commits k1; replica 2 commits k2.
	if _, err := g.client.Certify(Request{Origin: 1, WSBytes: wsBytes("k1")}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.client.Certify(Request{Origin: 2, StartVersion: 1, WSBytes: wsBytes("k2")}); err != nil {
		t.Fatal(err)
	}
	// Replica 1 commits k3 from version 0 replica view: remotes must
	// include v2 (origin 2) but not v1 (its own).
	resp, err := g.client.Certify(Request{Origin: 1, StartVersion: 2, ReplicaVersion: 1, WSBytes: wsBytes("k3")})
	if err != nil || !resp.Committed {
		t.Fatalf("certify: %v %v", resp, err)
	}
	if len(resp.Remote) != 1 || resp.Remote[0].Version != 2 {
		t.Fatalf("remotes = %+v, want just version 2", resp.Remote)
	}
}

func TestPull(t *testing.T) {
	g := newTestGroup(t, 3, nil)
	for i := 1; i <= 4; i++ {
		origin := 1 + i%2
		if _, err := g.client.Certify(Request{
			Origin: origin, StartVersion: uint64(i - 1), WSBytes: wsBytes(fmt.Sprintf("k%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := g.client.Pull(PullRequest{Origin: 3, ReplicaVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Remote) != 3 {
		t.Fatalf("pull remotes = %d, want 3 (versions 2..4)", len(resp.Remote))
	}
	if resp.SystemVersion < 4 {
		t.Errorf("system version = %d", resp.SystemVersion)
	}
}

func TestSafeBackAnnotations(t *testing.T) {
	g := newTestGroup(t, 1, nil)
	// v1 writes a, v2 writes b, v3 writes a again (conflicts with v1).
	for i, k := range []string{"a", "b", "a"} {
		if _, err := g.client.Certify(Request{
			Origin: 9, StartVersion: uint64(i), WSBytes: wsBytes(k),
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := g.client.Pull(PullRequest{Origin: 5, ReplicaVersion: 0, NeedSafeBack: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Remote) != 3 {
		t.Fatalf("remotes = %d", len(resp.Remote))
	}
	// v3 (writes a) conflicts with v1: SafeBack must be 1, forcing the
	// proxy to serialize it after v1.
	if resp.Remote[2].SafeBack != 1 {
		t.Errorf("v3 SafeBack = %d, want 1", resp.Remote[2].SafeBack)
	}
	// v2 (writes b) is conflict-free all the way back.
	if resp.Remote[1].SafeBack != 0 {
		t.Errorf("v2 SafeBack = %d, want 0", resp.Remote[1].SafeBack)
	}
}

func TestAbortInjectionAfterFullCheck(t *testing.T) {
	g := newTestGroup(t, 1, func(i int, cfg *Config) { cfg.AbortRate = 1.0 })
	resp, err := g.client.Certify(Request{Origin: 1, WSBytes: wsBytes("x")})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Committed {
		t.Fatal("100% abort rate still committed")
	}
	ld := g.waitLeader(t)
	st := ld.Stats()
	if st.InjectedAborts != 1 || st.Aborts != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Rate change takes effect.
	ld.SetAbortRate(0)
	resp, err = g.client.Certify(Request{Origin: 1, WSBytes: wsBytes("x")})
	if err != nil || !resp.Committed {
		t.Fatalf("after rate reset: %v %v", resp, err)
	}
}

func TestGroupCommitBatchesWritesets(t *testing.T) {
	// Many concurrent certifications share leader-disk fsyncs: the
	// Tashkent-MW mechanism.
	var disks []*simdisk.Disk
	g := newTestGroup(t, 3, func(i int, cfg *Config) {
		d := simdisk.New(simdisk.Profile{FsyncLatency: 4 * time.Millisecond}, int64(i))
		cfg.Disk = d
		disks = append(disks, d)
	})
	ld := g.waitLeader(t)
	_ = ld
	const n = 40
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := g.client.Certify(Request{
				Origin: 1 + i%4, StartVersion: 0, WSBytes: wsBytes(fmt.Sprintf("k%d", i)),
			})
			if err != nil {
				t.Errorf("certify %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	var best float64
	for _, d := range disks {
		if r := d.Stats().GroupRatio(); r > best {
			best = r
		}
	}
	if best < 2 {
		t.Errorf("best group ratio %.1f, want >= 2 (batching across requests)", best)
	}
}

func TestPipelineBatchesConcurrentCertifications(t *testing.T) {
	// K concurrent certify requests must complete in far fewer fsyncs
	// than K: the pipeline drains the admission queue into one
	// replication round and one durability barrier per batch.
	var disk *simdisk.Disk
	g := newTestGroup(t, 1, func(i int, cfg *Config) {
		disk = simdisk.New(simdisk.Profile{FsyncLatency: 4 * time.Millisecond}, int64(i))
		cfg.Disk = disk
	})
	ld := g.waitLeader(t)
	const k = 40
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := g.client.Certify(Request{
				Origin: 1 + i%4, StartVersion: 0, WSBytes: wsBytes(fmt.Sprintf("k%d", i)),
			})
			if err != nil {
				t.Errorf("certify %d: %v", i, err)
			} else if !resp.Committed {
				t.Errorf("certify %d aborted (disjoint writesets cannot conflict)", i)
			}
		}()
	}
	wg.Wait()
	st := disk.Stats()
	if st.Fsyncs >= k/2 {
		t.Errorf("%d fsyncs for %d concurrent certifications; want far fewer (batching)", st.Fsyncs, k)
	}
	if r := st.GroupRatio(); r < 2 {
		t.Errorf("writesets per fsync = %.1f, want >= 2", r)
	}
	bs := ld.BatchStats()
	if bs.Max < 2 {
		t.Errorf("batch stats %v: pipeline never formed a multi-commit batch", bs)
	}
	if bs.Sum != k {
		t.Errorf("batch stats account for %d commits, want %d", bs.Sum, k)
	}
}

func TestLeadershipChangeReanchorsSequencing(t *testing.T) {
	g := newTestGroup(t, 3, nil)
	r1, err := g.client.Certify(Request{Origin: 1, WSBytes: wsBytes("a")})
	if err != nil || !r1.Committed {
		t.Fatalf("pre-failover: %+v %v", r1, err)
	}
	if r1.ReplicaSeq != 1 {
		t.Fatalf("first response seq = %d, want 1", r1.ReplicaSeq)
	}
	oldEpoch := r1.SeqEpoch
	g.waitLeader(t).Stop()

	// Certification resumes under a new leader after failover.
	var r2 Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err = g.client.Certify(Request{Origin: 1, StartVersion: 1, WSBytes: wsBytes("b")})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-failover certify never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The new leader starts a fresh sequencing epoch with restarted
	// per-origin counters, which is what lets proxies re-anchor.
	if r2.SeqEpoch <= oldEpoch {
		t.Errorf("post-failover epoch %d, want > %d", r2.SeqEpoch, oldEpoch)
	}
	if r2.ReplicaSeq != 1 {
		t.Errorf("post-failover seq = %d, want counter restart at 1", r2.ReplicaSeq)
	}

	// A pull served by the new leader ships only majority-durable
	// versions: everything it returns is <= its reported SystemVersion.
	pull, err := g.client.Pull(PullRequest{Origin: 9, ReplicaVersion: 0})
	if err != nil {
		t.Fatal(err)
	}
	if pull.SeqEpoch != r2.SeqEpoch {
		t.Errorf("pull epoch %d != certify epoch %d", pull.SeqEpoch, r2.SeqEpoch)
	}
	if len(pull.Remote) < 2 {
		t.Fatalf("pull remotes = %d, want both committed versions", len(pull.Remote))
	}
	for _, r := range pull.Remote {
		if r.Version > pull.SystemVersion {
			t.Errorf("pull shipped version %d beyond committed cap %d", r.Version, pull.SystemVersion)
		}
	}
}

func TestDisableDurabilitySkipsFsyncs(t *testing.T) {
	var disk *simdisk.Disk
	g := newTestGroup(t, 1, func(i int, cfg *Config) {
		disk = simdisk.New(simdisk.Profile{FsyncLatency: 5 * time.Millisecond}, 3)
		cfg.Disk = disk
		cfg.DisableDurability = true
	})
	for i := 0; i < 5; i++ {
		if _, err := g.client.Certify(Request{Origin: 1, StartVersion: uint64(i), WSBytes: wsBytes(fmt.Sprintf("k%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if f := disk.Stats().Fsyncs; f != 0 {
		t.Errorf("tashAPInoCERT mode issued %d fsyncs, want 0", f)
	}
}

func TestFollowerRedirects(t *testing.T) {
	g := newTestGroup(t, 3, nil)
	ld := g.waitLeader(t)
	// Call a follower directly: must get a NOTLEADER error.
	var follower int = -1
	for i, s := range g.servers {
		if s != ld {
			follower = i
			break
		}
	}
	c := g.fabric.Dial(fmt.Sprintf("cert%d", follower))
	req, _ := encodeMsg(&Request{Origin: 1, WSBytes: wsBytes("x")})
	_, err := c.Call(MethodCertify, req)
	var rerr *transport.RemoteError
	if !errors.As(err, &rerr) {
		t.Fatalf("err = %v", err)
	}
	if _, isRedirect := parseNotLeader(rerr.Msg); !isRedirect {
		t.Errorf("follower reply %q is not a redirect", rerr.Msg)
	}
	// The retrying client handles it transparently.
	resp, err := g.client.Certify(Request{Origin: 1, WSBytes: wsBytes("y")})
	if err != nil || !resp.Committed {
		t.Fatalf("client certify: %v %v", resp, err)
	}
}

func TestLeaderFailoverPreservesLog(t *testing.T) {
	g := newTestGroup(t, 3, nil)
	r1, err := g.client.Certify(Request{Origin: 1, WSBytes: wsBytes("a")})
	if err != nil || !r1.Committed {
		t.Fatalf("pre-failover: %v %v", r1, err)
	}
	ld := g.waitLeader(t)
	ld.Stop()
	// Client fails over; version numbering continues from 1.
	var r2 Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		r2, err = g.client.Certify(Request{Origin: 2, StartVersion: 1, WSBytes: wsBytes("b")})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-failover certify never succeeded: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !r2.Committed || r2.CommitVersion != 2 {
		t.Fatalf("post-failover: %+v", r2)
	}
	// The new leader still knows version 1's writeset: a conflicting
	// request from version 0 must abort.
	r3, err := g.client.Certify(Request{Origin: 2, StartVersion: 0, WSBytes: wsBytes("a")})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Committed {
		t.Error("new leader lost conflict state from before failover")
	}
}

func TestCertifierRecoveryStateTransfer(t *testing.T) {
	g := newTestGroup(t, 3, nil)
	for i := 0; i < 6; i++ {
		if _, err := g.client.Certify(Request{Origin: 1, StartVersion: uint64(i), WSBytes: wsBytes(fmt.Sprintf("k%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash a non-leader, recover from its WAL image, rejoin, catch up.
	ld := g.waitLeader(t)
	var victim int = -1
	for i, s := range g.servers {
		if s != ld {
			victim = i
			break
		}
	}
	img := g.servers[victim].WALImage()
	g.servers[victim].Stop()

	peers := make(map[int]transport.Client)
	for j := range g.servers {
		if j != victim {
			peers[j] = g.fabric.Dial(fmt.Sprintf("cert%d", j))
		}
	}
	revived := New(Config{ID: victim, Peers: peers, ElectionTimeout: 30 * time.Millisecond, Seed: 77})
	if err := revived.RestoreFromImage(img); err != nil {
		t.Fatal(err)
	}
	g.fabric.Serve(fmt.Sprintf("cert%d", victim), revived.Handle)
	revived.Start()
	defer revived.Stop()

	if _, err := g.client.Certify(Request{Origin: 1, StartVersion: 6, WSBytes: wsBytes("post")}); err != nil {
		t.Fatal(err)
	}
	// The leader replicates its log on traffic, so a quiet group can
	// leave the revived node one entry behind for the whole window;
	// nudge with fresh commits while waiting. The assertion stays
	// meaningful: a broken rejoin keeps the revived node's commit index
	// below 7 no matter how much traffic flows.
	deadline := time.Now().Add(15 * time.Second)
	lastNudge := time.Now()
	nudge := 7
	for time.Now().Before(deadline) && revived.Node().CommitIndex() < 7 {
		time.Sleep(2 * time.Millisecond)
		if time.Since(lastNudge) > 200*time.Millisecond {
			lastNudge = time.Now()
			g.client.Certify(Request{Origin: 1, StartVersion: uint64(nudge),
				WSBytes: wsBytes(fmt.Sprintf("nudge%d", nudge))})
			nudge++
		}
	}
	if got := revived.Node().CommitIndex(); got < 7 {
		t.Errorf("revived certifier commit index = %d, want >= 7", got)
	}
}

func TestEntryDataRoundTrip(t *testing.T) {
	ws := &core.Writeset{Ops: []core.WriteOp{{Kind: core.OpInsert, Table: "a", Key: "b",
		Cols: []core.ColUpdate{{Col: "c", Value: []byte("d")}}}}}
	data := encodeEntryData(7, 42, ws)
	e, err := decodeEntryData(data)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != core.KindData || e.Origin != 7 || e.Start != 42 || !e.WS.Intersects(ws) {
		t.Errorf("decoded kind=%v origin=%d start=%d ws=%v", e.Kind, e.Origin, e.Start, e.WS)
	}
	if _, err := decodeEntryData(data[:5]); err == nil {
		t.Error("short entry accepted")
	}

	pdata := encodeEntry(core.KindPrepare, 3, 9, 77, []int{0, 2}, ws)
	pe, err := decodeEntryData(pdata)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Kind != core.KindPrepare || pe.GID != 77 || len(pe.Involved) != 2 || pe.Involved[1] != 2 {
		t.Errorf("decoded prepare = %+v", pe)
	}
}

func TestParseNotLeader(t *testing.T) {
	if h, ok := parseNotLeader("transport: remote error: NOTLEADER 2"); !ok || h != 2 {
		t.Errorf("parse = %d %v", h, ok)
	}
	if _, ok := parseNotLeader("some other error"); ok {
		t.Error("non-redirect parsed as redirect")
	}
	if h, ok := parseNotLeader("NOTLEADER -1"); !ok || h != -1 {
		t.Errorf("unknown-hint parse = %d %v", h, ok)
	}
}

func TestCertifyEmptyWritesetRejected(t *testing.T) {
	g := newTestGroup(t, 1, nil)
	_, err := g.client.Certify(Request{Origin: 1, WSBytes: (&core.Writeset{}).Encode(nil)})
	if err == nil {
		t.Error("empty writeset certification accepted")
	}
}
