package certifier

// Binary wire codecs for the hot certification path. Request/Response
// and PullRequest/PullResponse dominate replica↔certifier traffic —
// every update commit and every staleness-bound pull — so they get a
// hand-written fixed-layout encoding (transport.BinaryMessage) instead
// of gob's per-message type descriptor. Rare control messages
// (prepare/resolve/fill) stay on the gob fallback.
//
// All integers are big-endian fixed width. Writesets ride as opaque
// length-prefixed byte strings: they are already core.Writeset's
// compact binary encoding.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"tashkent/internal/transport"
)

// Interface checks: these four must stay on the fast path.
var (
	_ transport.BinaryMessage = (*Request)(nil)
	_ transport.BinaryMessage = (*Response)(nil)
	_ transport.BinaryMessage = (*PullRequest)(nil)
	_ transport.BinaryMessage = (*PullResponse)(nil)
)

var errShortMessage = errors.New("certifier: short binary message")

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// takeBytes slices a length-prefixed byte string out of data without
// copying (the decoded message may retain it; transport frames are
// per-message allocations, so aliasing is safe).
func takeBytes(data []byte) ([]byte, []byte, error) {
	if len(data) < 4 {
		return nil, nil, errShortMessage
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if len(data) < n {
		return nil, nil, errShortMessage
	}
	return data[:n], data[n:], nil
}

// Request: u32 origin | u64 start | u64 replicaVersion | i64 deadline
// | u8 flags(needSafeBack) | u32 wsLen | ws
func (r *Request) AppendBinary(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Origin))
	buf = binary.BigEndian.AppendUint64(buf, r.StartVersion)
	buf = binary.BigEndian.AppendUint64(buf, r.ReplicaVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Deadline))
	var flags byte
	if r.NeedSafeBack {
		flags |= 1
	}
	buf = append(buf, flags)
	return appendBytes(buf, r.WSBytes)
}

func (r *Request) DecodeBinary(data []byte) error {
	if len(data) < 29 {
		return errShortMessage
	}
	r.Origin = int(binary.BigEndian.Uint32(data))
	r.StartVersion = binary.BigEndian.Uint64(data[4:])
	r.ReplicaVersion = binary.BigEndian.Uint64(data[12:])
	r.Deadline = int64(binary.BigEndian.Uint64(data[20:]))
	r.NeedSafeBack = data[28]&1 != 0
	ws, rest, err := takeBytes(data[29:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("certifier: %d trailing bytes after Request", len(rest))
	}
	r.WSBytes = ws
	return nil
}

// appendRemotes: u32 count | per entry u64 version | u64 safeBack |
// u32 wsLen | ws
func appendRemotes(buf []byte, remote []RemoteWS) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(remote)))
	for i := range remote {
		buf = binary.BigEndian.AppendUint64(buf, remote[i].Version)
		buf = binary.BigEndian.AppendUint64(buf, remote[i].SafeBack)
		buf = appendBytes(buf, remote[i].WSBytes)
	}
	return buf
}

func takeRemotes(data []byte) ([]RemoteWS, []byte, error) {
	if len(data) < 4 {
		return nil, nil, errShortMessage
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	if n == 0 {
		return nil, data, nil
	}
	if n > len(data)/16 { // each entry is at least 20 bytes; cheap sanity bound
		return nil, nil, fmt.Errorf("certifier: remote count %d exceeds payload", n)
	}
	out := make([]RemoteWS, n)
	for i := 0; i < n; i++ {
		if len(data) < 16 {
			return nil, nil, errShortMessage
		}
		out[i].Version = binary.BigEndian.Uint64(data)
		out[i].SafeBack = binary.BigEndian.Uint64(data[8:])
		var err error
		out[i].WSBytes, data, err = takeBytes(data[16:])
		if err != nil {
			return nil, nil, err
		}
	}
	return out, data, nil
}

// Response: u8 flags(committed) | u64 commitVersion | u64
// systemVersion | u64 replicaSeq | u64 seqEpoch | remotes
func (r *Response) AppendBinary(buf []byte) []byte {
	var flags byte
	if r.Committed {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, r.CommitVersion)
	buf = binary.BigEndian.AppendUint64(buf, r.SystemVersion)
	buf = binary.BigEndian.AppendUint64(buf, r.ReplicaSeq)
	buf = binary.BigEndian.AppendUint64(buf, r.SeqEpoch)
	return appendRemotes(buf, r.Remote)
}

func (r *Response) DecodeBinary(data []byte) error {
	if len(data) < 33 {
		return errShortMessage
	}
	r.Committed = data[0]&1 != 0
	r.CommitVersion = binary.BigEndian.Uint64(data[1:])
	r.SystemVersion = binary.BigEndian.Uint64(data[9:])
	r.ReplicaSeq = binary.BigEndian.Uint64(data[17:])
	r.SeqEpoch = binary.BigEndian.Uint64(data[25:])
	remote, rest, err := takeRemotes(data[33:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("certifier: %d trailing bytes after Response", len(rest))
	}
	r.Remote = remote
	return nil
}

// PullRequest: u32 origin | u64 replicaVersion | u8 flags
// (bit0 needSafeBack, bit1 includeOwn)
func (r *PullRequest) AppendBinary(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.Origin))
	buf = binary.BigEndian.AppendUint64(buf, r.ReplicaVersion)
	var flags byte
	if r.NeedSafeBack {
		flags |= 1
	}
	if r.IncludeOwn {
		flags |= 2
	}
	return append(buf, flags)
}

func (r *PullRequest) DecodeBinary(data []byte) error {
	if len(data) != 13 {
		return errShortMessage
	}
	r.Origin = int(binary.BigEndian.Uint32(data))
	r.ReplicaVersion = binary.BigEndian.Uint64(data[4:])
	r.NeedSafeBack = data[12]&1 != 0
	r.IncludeOwn = data[12]&2 != 0
	return nil
}

// PullResponse: u8 flags(busy) | u64 systemVersion | u64 replicaSeq |
// u64 seqEpoch | remotes
func (r *PullResponse) AppendBinary(buf []byte) []byte {
	var flags byte
	if r.Busy {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, r.SystemVersion)
	buf = binary.BigEndian.AppendUint64(buf, r.ReplicaSeq)
	buf = binary.BigEndian.AppendUint64(buf, r.SeqEpoch)
	return appendRemotes(buf, r.Remote)
}

func (r *PullResponse) DecodeBinary(data []byte) error {
	if len(data) < 25 {
		return errShortMessage
	}
	r.Busy = data[0]&1 != 0
	r.SystemVersion = binary.BigEndian.Uint64(data[1:])
	r.ReplicaSeq = binary.BigEndian.Uint64(data[9:])
	r.SeqEpoch = binary.BigEndian.Uint64(data[17:])
	remote, rest, err := takeRemotes(data[25:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("certifier: %d trailing bytes after PullResponse", len(rest))
	}
	r.Remote = remote
	return nil
}
