package certifier

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"tashkent/internal/transport"
)

// ErrNoCertifier reports that no certifier node accepted the request
// within the retry budget (a majority is down, §7: update transactions
// cannot be processed).
var ErrNoCertifier = errors.New("certifier: no certifier available")

// ErrDegraded reports that the client's group breaker is open: the
// whole certifier group has been unreachable long enough (consecutive
// full failover cycles exhausted) that further calls fail fast instead
// of hanging for the full retry budget. Replicas keep serving snapshot
// reads at their last merged version; writes surface this error
// immediately. A half-open probe re-tests the group periodically and
// any success closes the breaker.
var ErrDegraded = errors.New("certifier: group degraded (no quorum reachable)")

// Consecutive ErrNoCertifier outcomes that open the group breaker, and
// how often a half-open probe is let through while it is open.
const (
	degradeThreshold     = 2
	degradeProbeInterval = 200 * time.Millisecond
)

// Client is the proxy side of the certification protocol: it tracks
// the current leader across the certifier group and fails over on
// redirects and node crashes.
type Client struct {
	leader  atomic.Int64
	nodes   []transport.Client // indexed by certifier id
	timeout time.Duration

	// Group-degradation breaker state (see ErrDegraded).
	failStreak    atomic.Int32
	degradedUntil atomic.Int64 // unix-nano; 0 = closed
	probing       atomic.Bool
}

// NewClient builds a client over per-node transports (indexed by
// certifier id). timeout bounds how long one logical request keeps
// retrying before giving up (0 = 10 s).
func NewClient(nodes []transport.Client, timeout time.Duration) *Client {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return &Client{nodes: nodes, timeout: timeout}
}

// Certify runs one certification request against the group leader.
func (c *Client) Certify(req Request) (Response, error) {
	return c.CertifyCtx(context.Background(), req)
}

// CertifyCtx is Certify bounded by the caller's context: the failover
// loop stops at the earlier of ctx's deadline and the client timeout,
// and backoff sleeps wake on cancellation.
func (c *Client) CertifyCtx(ctx context.Context, req Request) (Response, error) {
	var resp Response
	err := c.call(ctx, MethodCertify, &req, &resp)
	return resp, err
}

// Pull fetches missing remote writesets (staleness bounding).
func (c *Client) Pull(req PullRequest) (PullResponse, error) {
	return c.PullCtx(context.Background(), req)
}

// PullCtx is Pull bounded by the caller's context.
func (c *Client) PullCtx(ctx context.Context, req PullRequest) (PullResponse, error) {
	var resp PullResponse
	err := c.call(ctx, MethodPull, &req, &resp)
	return resp, err
}

// Prepare runs phase 1 of a cross-partition commit against this
// group's leader. Safe to retry: the server is idempotent per gid.
func (c *Client) Prepare(req PrepareRequest) (PrepareResponse, error) {
	return c.PrepareCtx(context.Background(), req)
}

// PrepareCtx is Prepare bounded by the caller's context.
func (c *Client) PrepareCtx(ctx context.Context, req PrepareRequest) (PrepareResponse, error) {
	var resp PrepareResponse
	err := c.call(ctx, MethodPrepare, &req, &resp)
	return resp, err
}

// Resolve runs phase 2 (commit or abort decision) against this
// group's leader. Safe to retry: the first decision marker wins.
func (c *Client) Resolve(req ResolveRequest) (ResolveResponse, error) {
	var resp ResolveResponse
	err := c.call(context.Background(), MethodResolve, &req, &resp)
	return resp, err
}

// Fill asks the group leader to pad its log to at least target
// entries (deterministic-merge liveness; see Server.FillTo).
func (c *Client) Fill(target uint64) (FillResponse, error) {
	var resp FillResponse
	err := c.call(context.Background(), MethodFill, &FillRequest{Target: target}, &resp)
	return resp, err
}

// Degraded reports whether the group breaker is currently open.
func (c *Client) Degraded() bool {
	until := c.degradedUntil.Load()
	return until != 0 && time.Now().UnixNano() < until
}

// breakerAdmit gates a call on the group breaker. It returns an error
// when the call should fail fast, and a release func (nil when no
// probe token was taken).
func (c *Client) breakerAdmit() (func(), error) {
	until := c.degradedUntil.Load()
	if until == 0 {
		return nil, nil
	}
	if time.Now().UnixNano() < until {
		return nil, fmt.Errorf("%w: retrying in %v", ErrDegraded, time.Until(time.Unix(0, until)).Round(time.Millisecond))
	}
	// Cooldown elapsed: half-open. Admit a single probe; everyone else
	// keeps failing fast until the probe reports.
	if !c.probing.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("%w: probe in flight", ErrDegraded)
	}
	return func() { c.probing.Store(false) }, nil
}

// noteOutcome feeds the breaker: reachable leaders (success or an
// application-level error) close it, a fully exhausted failover cycle
// counts toward opening it.
func (c *Client) noteOutcome(reachable bool) {
	if reachable {
		c.failStreak.Store(0)
		c.degradedUntil.Store(0)
		return
	}
	if c.failStreak.Add(1) >= degradeThreshold {
		c.degradedUntil.Store(time.Now().Add(degradeProbeInterval).UnixNano())
	}
}

func (c *Client) call(ctx context.Context, method string, req, resp interface{}) error {
	payload, err := encodeMsg(req)
	if err != nil {
		return err
	}
	release, err := c.breakerAdmit()
	if err != nil {
		return err
	}
	if release != nil {
		defer release()
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	target := int(c.leader.Load())
	var lastErr error
	backoff := time.Millisecond
	// Reusable backoff timer: time.After in the retry select would leak
	// a live timer on every ctx wakeup (same fix mvstore got in PR 3).
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if target < 0 || target >= len(c.nodes) {
			target = 0
		}
		// Propagate the retry-loop deadline: a TCP transport ships it to
		// the server (which sheds stale requests) and stops waiting
		// locally when it passes.
		respB, err := transport.CallWithDeadline(c.nodes[target], method, payload, deadline)
		if err == nil {
			c.leader.Store(int64(target))
			c.noteOutcome(true)
			return decodeMsg(respB, resp)
		}
		lastErr = err
		var rerr *transport.RemoteError
		switch {
		case errors.As(err, &rerr):
			if hint, isRedirect := parseNotLeader(rerr.Msg); isRedirect {
				if hint >= 0 && hint < len(c.nodes) && hint != target {
					target = hint
				} else {
					target = (target + 1) % len(c.nodes)
				}
			} else if ra, shed := parseOverloaded(rerr.Msg); shed {
				// Load shed by the leader. Not a failover signal —
				// only the leader certifies — so surface it with the
				// retry-after hint and let the session back off.
				c.noteOutcome(true)
				return &OverloadedError{RetryAfter: ra}
			} else if strings.Contains(rerr.Msg, "paxos:") {
				// Transient replication failure (leadership churn
				// mid-proposal): retrying is safe — a duplicated
				// certification only produces an extra log entry with
				// the same absolute-valued writeset, which replicas
				// apply idempotently.
				target = (target + 1) % len(c.nodes)
			} else {
				// Application error from the leader: surface it. The
				// leader is reachable, so the group is not degraded.
				c.noteOutcome(true)
				return err
			}
		case errors.Is(err, transport.ErrUnavailable):
			target = (target + 1) % len(c.nodes)
		default:
			target = (target + 1) % len(c.nodes)
		}
		if timer == nil {
			timer = time.NewTimer(backoff)
		} else {
			// Safe to Reset without draining: the only path that loops is
			// the one that received from timer.C below.
			timer.Reset(backoff)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.noteOutcome(false)
	return fmt.Errorf("%w: %v", ErrNoCertifier, lastErr)
}
