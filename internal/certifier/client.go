package certifier

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"tashkent/internal/transport"
)

// ErrNoCertifier reports that no certifier node accepted the request
// within the retry budget (a majority is down, §7: update transactions
// cannot be processed).
var ErrNoCertifier = errors.New("certifier: no certifier available")

// Client is the proxy side of the certification protocol: it tracks
// the current leader across the certifier group and fails over on
// redirects and node crashes.
type Client struct {
	mu      sync.Mutex
	nodes   []transport.Client // indexed by certifier id
	leader  int
	timeout time.Duration
}

// NewClient builds a client over per-node transports (indexed by
// certifier id). timeout bounds how long one logical request keeps
// retrying before giving up (0 = 10 s).
func NewClient(nodes []transport.Client, timeout time.Duration) *Client {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return &Client{nodes: nodes, timeout: timeout}
}

// Certify runs one certification request against the group leader.
func (c *Client) Certify(req Request) (Response, error) {
	var resp Response
	err := c.call(MethodCertify, req, &resp)
	return resp, err
}

// Pull fetches missing remote writesets (staleness bounding).
func (c *Client) Pull(req PullRequest) (PullResponse, error) {
	var resp PullResponse
	err := c.call(MethodPull, req, &resp)
	return resp, err
}

// Prepare runs phase 1 of a cross-partition commit against this
// group's leader. Safe to retry: the server is idempotent per gid.
func (c *Client) Prepare(req PrepareRequest) (PrepareResponse, error) {
	var resp PrepareResponse
	err := c.call(MethodPrepare, req, &resp)
	return resp, err
}

// Resolve runs phase 2 (commit or abort decision) against this
// group's leader. Safe to retry: the first decision marker wins.
func (c *Client) Resolve(req ResolveRequest) (ResolveResponse, error) {
	var resp ResolveResponse
	err := c.call(MethodResolve, req, &resp)
	return resp, err
}

// Fill asks the group leader to pad its log to at least target
// entries (deterministic-merge liveness; see Server.FillTo).
func (c *Client) Fill(target uint64) (FillResponse, error) {
	var resp FillResponse
	err := c.call(MethodFill, FillRequest{Target: target}, &resp)
	return resp, err
}

func (c *Client) call(method string, req, resp interface{}) error {
	payload, err := gobEncode(req)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(c.timeout)
	c.mu.Lock()
	target := c.leader
	c.mu.Unlock()
	var lastErr error
	backoff := time.Millisecond
	for time.Now().Before(deadline) {
		if target < 0 || target >= len(c.nodes) {
			target = 0
		}
		respB, err := c.nodes[target].Call(method, payload)
		if err == nil {
			c.mu.Lock()
			c.leader = target
			c.mu.Unlock()
			return gobDecode(respB, resp)
		}
		lastErr = err
		var rerr *transport.RemoteError
		switch {
		case errors.As(err, &rerr):
			if hint, isRedirect := parseNotLeader(rerr.Msg); isRedirect {
				if hint >= 0 && hint < len(c.nodes) && hint != target {
					target = hint
				} else {
					target = (target + 1) % len(c.nodes)
				}
			} else if strings.Contains(rerr.Msg, "paxos:") {
				// Transient replication failure (leadership churn
				// mid-proposal): retrying is safe — a duplicated
				// certification only produces an extra log entry with
				// the same absolute-valued writeset, which replicas
				// apply idempotently.
				target = (target + 1) % len(c.nodes)
			} else {
				// Application error from the leader: surface it.
				return err
			}
		case errors.Is(err, transport.ErrUnavailable):
			target = (target + 1) % len(c.nodes)
		default:
			target = (target + 1) % len(c.nodes)
		}
		time.Sleep(backoff)
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
	return fmt.Errorf("%w: %v", ErrNoCertifier, lastErr)
}
