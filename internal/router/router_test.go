package router

import (
	"sync"
	"testing"
)

func TestRoundRobinDistribution(t *testing.T) {
	b := NewBalancer(4, NewRoundRobin())
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		idx, release := b.Acquire(false, nil)
		counts[idx]++
		release()
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("replica %d got %d picks, want 100", i, c)
		}
	}
}

func TestRoundRobinSkipsExcluded(t *testing.T) {
	b := NewBalancer(3, NewRoundRobin())
	excluded := []bool{false, true, false}
	for i := 0; i < 30; i++ {
		idx, release := b.Acquire(false, excluded)
		release()
		if idx == 1 {
			t.Fatal("picked an excluded replica")
		}
	}
}

func TestLeastInFlightUnderSkew(t *testing.T) {
	b := NewBalancer(3, NewLeastInFlight())

	// Pin load on replicas 0 and 1: they hold open transactions.
	var releases []func()
	for i := 0; i < 5; i++ {
		idx, release := b.Acquire(false, nil)
		releases = append(releases, release)
		_ = idx
	}
	// Counters after 5 acquires: each pick went to the then-least
	// loaded, so loads are near-balanced; now hold 10 more on whatever
	// is picked and verify new picks flow to the minimum.
	for i := 0; i < 10; i++ {
		_, release := b.Acquire(false, nil)
		releases = append(releases, release)
	}
	min := b.InFlight(0)
	for i := 1; i < 3; i++ {
		if l := b.InFlight(i); l < min {
			min = l
		}
	}
	idx, release := b.Acquire(false, nil)
	defer release()
	if got := b.InFlight(idx) - 1; got != min {
		t.Errorf("least-in-flight picked replica with load %d, min was %d", got, min)
	}
	for _, r := range releases {
		r()
	}
}

func TestLeastInFlightPrefersIdleReplica(t *testing.T) {
	b := NewBalancer(3, NewLeastInFlight())
	// Saturate replicas 0 and 1 artificially.
	b.counters.slots[0].inflight.Store(50)
	b.counters.slots[1].inflight.Store(50)
	for i := 0; i < 20; i++ {
		idx, release := b.Acquire(false, nil)
		if idx != 2 {
			t.Fatalf("pick %d went to loaded replica %d", i, idx)
		}
		release() // replica 2 returns to 0 in-flight: still the minimum
	}
}

func TestReadWriteSplit(t *testing.T) {
	b := NewBalancer(4, NewReadWriteSplit(2))
	readCounts := make([]int, 4)
	writeCounts := make([]int, 4)
	for i := 0; i < 400; i++ {
		idx, release := b.Acquire(true, nil)
		readCounts[idx]++
		release()
		idx, release = b.Acquire(false, nil)
		writeCounts[idx]++
		release()
	}
	for i, c := range readCounts {
		if c != 100 {
			t.Errorf("reads: replica %d got %d, want 100 (fan out over all)", i, c)
		}
	}
	for i, c := range writeCounts {
		want := 0
		if i < 2 {
			want = 200
		}
		if c != want {
			t.Errorf("writes: replica %d got %d, want %d (writer set = first 2)", i, c, want)
		}
	}
}

func TestReadWriteSplitClampsWriters(t *testing.T) {
	b := NewBalancer(2, NewReadWriteSplit(8))
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		idx, release := b.Acquire(false, nil)
		seen[idx] = true
		release()
	}
	if len(seen) != 2 {
		t.Errorf("writer set should clamp to cluster size 2, saw %v", seen)
	}
}

func TestReadWriteSplitFallsBackWhenWritersDown(t *testing.T) {
	b := NewBalancer(4, NewReadWriteSplit(2))
	// Writer set {0,1} entirely excluded: updates must degrade to the
	// healthy replicas instead of failing while the cluster lives.
	writersDown := []bool{true, true, false, false}
	seen := make(map[int]bool)
	for i := 0; i < 20; i++ {
		idx, release := b.Acquire(false, writersDown)
		release()
		if idx < 2 {
			t.Fatalf("write routed to excluded writer %d", idx)
		}
		seen[idx] = true
	}
	if len(seen) != 2 {
		t.Errorf("fallback should rotate over replicas 2,3; saw %v", seen)
	}
}

func TestSharedCountersAcrossBalancers(t *testing.T) {
	c := NewCounters(3)
	a := NewSharedBalancer(c, NewLeastInFlight())
	b := NewSharedBalancer(c, NewLeastInFlight())

	// Load replica 0 through balancer a only (exclude the others).
	onlyZero := []bool{false, true, true}
	for i := 0; i < 2; i++ {
		idx, _ := a.Acquire(false, onlyZero)
		if idx != 0 {
			t.Fatalf("forced acquire picked %d, want 0", idx)
		}
	}
	if got := b.InFlight(0); got != 2 {
		t.Fatalf("balancer b sees in-flight(0)=%d, want 2 (counters not shared)", got)
	}
	// A different session's least-in-flight policy must route around
	// the load it did not create itself.
	for i := 0; i < 4; i++ {
		idx, release := b.Acquire(false, nil)
		if idx == 0 {
			t.Fatalf("least-in-flight via shared counters picked loaded replica 0")
		}
		release()
	}
}

func TestBalancerConcurrentAcquire(t *testing.T) {
	b := NewBalancer(4, NewLeastInFlight())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, release := b.Acquire(i%3 == 0, nil)
				release()
			}
		}()
	}
	wg.Wait()
	for i := 0; i < b.N(); i++ {
		if l := b.InFlight(i); l != 0 {
			t.Errorf("replica %d in-flight = %d after all releases, want 0", i, l)
		}
	}
}

func TestParse(t *testing.T) {
	for _, name := range []string{"roundrobin", "leastinflight", "rwsplit"} {
		p, err := Parse(name, 2)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Parse(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := Parse("bogus", 1); err == nil {
		t.Error("Parse(bogus) should fail")
	}
}

// TestCountersResetOnCrash is the regression test for the crashed-
// replica counter leak: charges open at crash time used to stay on the
// counter forever (the crashed replica's transactions never release),
// biasing leastinflight against the replica after rejoin — and a
// naive reset would let the old releases drive the count negative,
// biasing the other way.
func TestCountersResetOnCrash(t *testing.T) {
	c := NewCounters(2)
	b := NewSharedBalancer(c, NewLeastInFlight())

	// Three transactions in flight on replica 0 when it crashes.
	onlyZero := []bool{false, true}
	var releases []func()
	for i := 0; i < 3; i++ {
		idx, release := b.Acquire(false, onlyZero)
		if idx != 0 {
			t.Fatalf("forced acquire picked %d, want 0", idx)
		}
		releases = append(releases, release)
	}

	// Crash: the replica's open transactions are gone; the counter
	// must read idle immediately, not after the stale releases drain.
	c.Reset(0)
	if got := c.Get(0); got != 0 {
		t.Fatalf("after Reset, in-flight(0) = %d, want 0", got)
	}

	// The rejoined replica must win leastinflight against a loaded
	// peer instead of carrying its pre-crash charges.
	c.slots[1].inflight.Store(1)
	idx, release := b.Acquire(false, nil)
	if idx != 0 {
		t.Fatalf("leastinflight picked %d after rejoin, want idle replica 0", idx)
	}
	release()

	// Stale pre-crash releases must be no-ops, never driving the
	// fresh count negative.
	for _, r := range releases {
		r()
	}
	if got := c.Get(0); got != 0 {
		t.Fatalf("stale releases moved in-flight(0) to %d, want 0", got)
	}

	// Post-reset accounting still balances.
	_, release = b.Acquire(false, nil)
	release()
	if got := c.Get(0) + c.Get(1); got != 1 { // replica 1's artificial charge remains
		t.Fatalf("post-reset accounting off: total in-flight %d, want 1", got)
	}
}
