// Package router implements client-side replica selection for the
// session API. The paper's system places a load balancer in front of
// the replicas (§3, Figure 2) — clients never address a replica
// directly — and this package is that component's in-process
// equivalent: a Balancer tracks per-replica in-flight transactions and
// delegates each BEGIN to a pluggable Policy.
//
// Three policies are provided:
//
//   - RoundRobin — uniform rotation, the paper's baseline balancer.
//   - LeastInFlight — picks the replica with the fewest open
//     transactions, absorbing skew from slow or overloaded replicas.
//   - ReadWriteSplit — read-only transactions fan out across all
//     replicas while updates stick to a smaller writer set, shrinking
//     the certification conflict window (updates from fewer replicas
//     means fewer concurrent writesets to certify against).
package router

import (
	"fmt"
	"sync/atomic"
)

// View is the cluster snapshot a Policy sees when picking a replica.
type View struct {
	// N is the number of replicas (indices 0..N-1).
	N int
	// ReadOnly classifies the transaction about to begin.
	ReadOnly bool
	// InFlight reports the current open-transaction count per replica.
	InFlight func(i int) int64
	// Excluded marks replicas the caller wants avoided (crashed or
	// recently failed); nil means none.
	Excluded []bool
}

// excluded reports whether replica i is to be avoided.
func (v *View) excluded(i int) bool {
	return v.Excluded != nil && i < len(v.Excluded) && v.Excluded[i]
}

// Policy picks the replica a transaction begins on.
type Policy interface {
	// Name identifies the policy (stable, flag-friendly).
	Name() string
	// Pick returns a replica index in [0, v.N). Implementations must
	// honor v.Excluded when at least one replica remains; with every
	// replica excluded any index may be returned.
	Pick(v View) int
}

// Counters is the per-replica open-transaction accounting. One
// instance belongs to the cluster — every session's balancer shares
// it — so a load-sensitive policy observes the replicas' global load,
// not just the transactions of its own session.
type Counters struct {
	slots []counterSlot
}

// counterSlot is one replica's accounting. gen guards against charges
// that straddle a Reset: a release acquired before a crash must not
// drive the rejoined replica's fresh count negative.
type counterSlot struct {
	inflight atomic.Int64
	gen      atomic.Uint64
}

// NewCounters builds a counter set over n replicas.
func NewCounters(n int) *Counters {
	if n < 1 {
		n = 1
	}
	return &Counters{slots: make([]counterSlot, n)}
}

// N returns the replica count.
func (c *Counters) N() int { return len(c.slots) }

// Get returns the current open-transaction count at replica i.
func (c *Counters) Get(i int) int64 { return c.slots[i].inflight.Load() }

// Reset zeroes replica i's in-flight count and invalidates every
// outstanding charge against it. Called when the replica crashes: its
// open transactions are gone, so leaving their charges in place would
// bias load-sensitive policies (leastinflight) against the replica
// after it rejoins — and letting their releases land after the reset
// would bias the other way, below zero.
func (c *Counters) Reset(i int) {
	if i < 0 || i >= len(c.slots) {
		return
	}
	c.slots[i].gen.Add(1)
	c.slots[i].inflight.Store(0)
}

// Balancer fronts a set of replicas for one session: it delegates
// selection to the policy and charges the shared per-replica in-flight
// counters. It is safe for concurrent use.
type Balancer struct {
	policy   Policy
	counters *Counters
}

// NewBalancer builds a balancer with its own private counter set —
// for single-session use and tests. A nil policy defaults to
// round-robin.
func NewBalancer(n int, p Policy) *Balancer {
	return NewSharedBalancer(NewCounters(n), p)
}

// NewSharedBalancer builds a balancer over an existing counter set so
// that many sessions' policies see the same per-replica load.
func NewSharedBalancer(c *Counters, p Policy) *Balancer {
	if p == nil {
		p = NewRoundRobin()
	}
	return &Balancer{policy: p, counters: c}
}

// N returns the replica count.
func (b *Balancer) N() int { return b.counters.N() }

// Policy returns the active policy.
func (b *Balancer) Policy() Policy { return b.policy }

// InFlight returns the current open-transaction count at replica i.
func (b *Balancer) InFlight(i int) int64 { return b.counters.Get(i) }

// Acquire picks a replica for one transaction and charges its
// in-flight counter. The returned release must be called exactly once
// when the transaction finishes (commit or abort); it is idempotence-
// guarded by the caller, not here. excluded, if non-nil, marks
// replicas to avoid.
func (b *Balancer) Acquire(readOnly bool, excluded []bool) (int, func()) {
	n := b.counters.N()
	i := b.policy.Pick(View{
		N:        n,
		ReadOnly: readOnly,
		InFlight: b.counters.Get,
		Excluded: excluded,
	})
	if i < 0 || i >= n {
		i = 0
	}
	slot := &b.counters.slots[i]
	gen := slot.gen.Load()
	slot.inflight.Add(1)
	return i, func() {
		if slot.gen.Load() != gen {
			return // replica crashed since; Reset already dropped this charge
		}
		if n := slot.inflight.Add(-1); n < 0 {
			// A release racing the reset itself; repair the undershoot.
			slot.inflight.CompareAndSwap(n, 0)
		}
	}
}

// --- RoundRobin ---

// roundRobin rotates uniformly over the replicas.
type roundRobin struct {
	next atomic.Uint64
}

// NewRoundRobin returns the uniform rotation policy.
func NewRoundRobin() Policy { return &roundRobin{} }

// Name implements Policy.
func (*roundRobin) Name() string { return "roundrobin" }

// Pick implements Policy.
func (p *roundRobin) Pick(v View) int {
	return pickRotating(&p.next, v.N, 0, &v)
}

// pickRotating rotates a shared cursor over replicas [base, base+n),
// skipping excluded ones.
func pickRotating(cursor *atomic.Uint64, n, base int, v *View) int {
	if n <= 0 {
		return 0
	}
	start := int(cursor.Add(1)-1) % n
	for k := 0; k < n; k++ {
		i := base + (start+k)%n
		if !v.excluded(i) {
			return i
		}
	}
	return base + start // everything excluded: let the caller fail fast
}

// --- LeastInFlight ---

// leastInFlight picks the replica with the fewest open transactions,
// breaking ties by rotation so equal replicas share load.
type leastInFlight struct {
	tie atomic.Uint64
}

// NewLeastInFlight returns the least-loaded policy.
func NewLeastInFlight() Policy { return &leastInFlight{} }

// Name implements Policy.
func (*leastInFlight) Name() string { return "leastinflight" }

// Pick implements Policy.
func (p *leastInFlight) Pick(v View) int {
	if v.N <= 0 {
		return 0
	}
	start := int(p.tie.Add(1)-1) % v.N
	best, bestLoad := -1, int64(0)
	for k := 0; k < v.N; k++ {
		i := (start + k) % v.N
		if v.excluded(i) {
			continue
		}
		load := v.InFlight(i)
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best < 0 {
		return start
	}
	return best
}

// --- ReadWriteSplit ---

// readWriteSplit sends read-only transactions to every replica but
// confines updates to the first Writers replicas. Concentrating the
// update load shrinks the set of replicas whose in-flight writesets
// can conflict, while reads — which never certify under GSI — exploit
// the full cluster.
type readWriteSplit struct {
	writers   int
	nextRead  atomic.Uint64
	nextWrite atomic.Uint64
}

// NewReadWriteSplit returns the read/write splitting policy; updates
// go to the first writers replicas (minimum 1; values above the
// cluster size are clamped at pick time).
func NewReadWriteSplit(writers int) Policy {
	if writers < 1 {
		writers = 1
	}
	return &readWriteSplit{writers: writers}
}

// Name implements Policy.
func (*readWriteSplit) Name() string { return "rwsplit" }

// Pick implements Policy.
func (p *readWriteSplit) Pick(v View) int {
	if v.ReadOnly {
		return pickRotating(&p.nextRead, v.N, 0, &v)
	}
	w := p.writers
	if w > v.N {
		w = v.N
	}
	i := pickRotating(&p.nextWrite, w, 0, &v)
	if v.excluded(i) {
		// The whole writer set is down. Any replica can execute
		// updates under GSI — the split is an optimization, not a
		// requirement — so degrade to the full cluster rather than
		// violate the contract of honoring Excluded while healthy
		// replicas remain.
		return pickRotating(&p.nextWrite, v.N, 0, &v)
	}
	return i
}

// Parse resolves a policy by flag name: "roundrobin", "leastinflight",
// or "rwsplit" (writers sizes the rwsplit writer set and is ignored by
// the others).
func Parse(name string, writers int) (Policy, error) {
	switch name {
	case "roundrobin", "rr", "":
		return NewRoundRobin(), nil
	case "leastinflight", "lif":
		return NewLeastInFlight(), nil
	case "rwsplit", "rw":
		return NewReadWriteSplit(writers), nil
	default:
		return nil, fmt.Errorf("router: unknown policy %q (want roundrobin|leastinflight|rwsplit)", name)
	}
}
