// Package router implements client-side replica selection for the
// session API. The paper's system places a load balancer in front of
// the replicas (§3, Figure 2) — clients never address a replica
// directly — and this package is that component's in-process
// equivalent: a Balancer tracks per-replica in-flight transactions and
// delegates each BEGIN to a pluggable Policy.
//
// Three policies are provided:
//
//   - RoundRobin — uniform rotation, the paper's baseline balancer.
//   - LeastInFlight — picks the replica with the fewest open
//     transactions, absorbing skew from slow or overloaded replicas.
//   - ReadWriteSplit — read-only transactions fan out across all
//     replicas while updates stick to a smaller writer set, shrinking
//     the certification conflict window (updates from fewer replicas
//     means fewer concurrent writesets to certify against).
package router

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// View is the cluster snapshot a Policy sees when picking a replica.
type View struct {
	// N is the number of replicas (indices 0..N-1).
	N int
	// ReadOnly classifies the transaction about to begin.
	ReadOnly bool
	// InFlight reports the current open-transaction count per replica.
	InFlight func(i int) int64
	// Excluded marks replicas the caller wants avoided (crashed or
	// recently failed); nil means none.
	Excluded []bool
}

// excluded reports whether replica i is to be avoided.
func (v *View) excluded(i int) bool {
	return v.Excluded != nil && i < len(v.Excluded) && v.Excluded[i]
}

// Policy picks the replica a transaction begins on.
type Policy interface {
	// Name identifies the policy (stable, flag-friendly).
	Name() string
	// Pick returns a replica index in [0, v.N). Implementations must
	// honor v.Excluded when at least one replica remains; with every
	// replica excluded any index may be returned.
	Pick(v View) int
}

// Counters is the per-replica open-transaction accounting. One
// instance belongs to the cluster — every session's balancer shares
// it — so a load-sensitive policy observes the replicas' global load,
// not just the transactions of its own session.
type Counters struct {
	slots []counterSlot
}

// counterSlot is one replica's accounting. gen guards against charges
// that straddle a Reset: a release acquired before a crash must not
// drive the rejoined replica's fresh count negative.
type counterSlot struct {
	inflight atomic.Int64
	gen      atomic.Uint64
	health   health
}

// Circuit-breaker tuning. A replica is ejected (breaker opens) when,
// with at least breakerMinSamples observations since it last closed,
// its error EWMA crosses breakerErrTrip or its latency EWMA exceeds
// breakerLatFactor times the best healthy peer's (and the absolute
// floor, which suppresses microsecond-scale noise). After
// breakerCooldown one half-open probe transaction is admitted; its
// outcome closes or re-opens the breaker. An unclaimed or lost probe
// token expires after breakerProbeExpiry so a policy that routed the
// probe elsewhere cannot wedge the replica open forever.
const (
	breakerAlpha       = 0.15
	breakerMinSamples  = 16
	breakerErrTrip     = 0.5
	breakerLatFactor   = 8.0
	breakerLatFloor    = float64(time.Millisecond) / float64(time.Second)
	breakerCooldown    = 100 * time.Millisecond
	breakerProbeExpiry = 4 * breakerCooldown
)

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// health is one replica's gray-failure score: EWMA latency and error
// rate plus the breaker state machine. Distinct from the Excluded
// mechanism, which handles crashed (clean-failure) replicas: a gray
// replica still answers, just badly, so only its trend betrays it.
type health struct {
	mu       sync.Mutex
	ewmaLat  float64 // seconds
	ewmaErr  float64 // failure rate in [0,1]
	samples  int64   // observations since the breaker last closed
	state    int
	openedAt time.Time
	probeOut bool
	probeAt  time.Time
}

// admit reports whether the replica may take new transactions, running
// the open → half-open transition and claiming the single probe token.
func (h *health) admit() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(h.openedAt) < breakerCooldown {
			return false
		}
		h.state = breakerHalfOpen
	}
	// Half-open: one probe at a time.
	if h.probeOut && time.Since(h.probeAt) < breakerProbeExpiry {
		return false
	}
	h.probeOut = true
	h.probeAt = time.Now()
	return true
}

// observe folds one transaction outcome in. peerLat is the best (lowest)
// latency EWMA among scoreable peers, 0 when there is none.
func (h *health) observe(lat time.Duration, failed bool, peerLat float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.probeOut {
		// Treat the first outcome after a probe was admitted as the
		// probe's verdict.
		h.probeOut = false
		if failed {
			h.state = breakerOpen
			h.openedAt = time.Now()
			return
		}
		h.state = breakerClosed
		h.samples = 0
		h.ewmaErr = 0
		h.ewmaLat = lat.Seconds()
		return
	}
	e := 0.0
	if failed {
		e = 1.0
	}
	if h.samples == 0 {
		h.ewmaLat = lat.Seconds()
		h.ewmaErr = e
	} else {
		h.ewmaLat += breakerAlpha * (lat.Seconds() - h.ewmaLat)
		h.ewmaErr += breakerAlpha * (e - h.ewmaErr)
	}
	h.samples++
	if h.state != breakerClosed || h.samples < breakerMinSamples {
		return
	}
	slow := peerLat > 0 && h.ewmaLat > breakerLatFactor*peerLat && h.ewmaLat > breakerLatFloor
	if h.ewmaErr > breakerErrTrip || slow {
		h.state = breakerOpen
		h.openedAt = time.Now()
	}
}

// score returns the latency EWMA when this replica is a valid latency
// baseline (closed, warmed up, mostly error-free).
func (h *health) score() (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != breakerClosed || h.samples < breakerMinSamples || h.ewmaErr > breakerErrTrip {
		return 0, false
	}
	return h.ewmaLat, true
}

// NewCounters builds a counter set over n replicas.
func NewCounters(n int) *Counters {
	if n < 1 {
		n = 1
	}
	return &Counters{slots: make([]counterSlot, n)}
}

// N returns the replica count.
func (c *Counters) N() int { return len(c.slots) }

// Get returns the current open-transaction count at replica i.
func (c *Counters) Get(i int) int64 { return c.slots[i].inflight.Load() }

// Reset zeroes replica i's in-flight count and invalidates every
// outstanding charge against it. Called when the replica crashes: its
// open transactions are gone, so leaving their charges in place would
// bias load-sensitive policies (leastinflight) against the replica
// after it rejoins — and letting their releases land after the reset
// would bias the other way, below zero.
func (c *Counters) Reset(i int) {
	if i < 0 || i >= len(c.slots) {
		return
	}
	c.slots[i].gen.Add(1)
	c.slots[i].inflight.Store(0)
	// The health history died with the process; the rejoined replica
	// starts with a clean score.
	h := &c.slots[i].health
	h.mu.Lock()
	h.ewmaLat, h.ewmaErr, h.samples = 0, 0, 0
	h.state = breakerClosed
	h.openedAt, h.probeAt = time.Time{}, time.Time{}
	h.probeOut = false
	h.mu.Unlock()
}

// Observe feeds replica i's health score with one finished
// transaction: its end-to-end latency and whether it failed for a
// replica-attributable reason (certification aborts, overload shedding
// and caller cancellations are not the replica's fault and must be
// reported with failed=false). Sessions call this on every commit and
// abort; it is what lets the breaker eject a gray replica that still
// answers, slowly.
func (c *Counters) Observe(i int, lat time.Duration, failed bool) {
	if i < 0 || i >= len(c.slots) {
		return
	}
	c.slots[i].health.observe(lat, failed, c.bestPeerLat(i))
}

// bestPeerLat returns the lowest latency EWMA among scoreable replicas
// other than i (0 when none qualifies) — the baseline a suspected gray
// replica is judged against.
func (c *Counters) bestPeerLat(i int) float64 {
	best := 0.0
	for j := range c.slots {
		if j == i {
			continue
		}
		if lat, ok := c.slots[j].health.score(); ok && (best == 0 || lat < best) {
			best = lat
		}
	}
	return best
}

// Health reports replica i's breaker state ("closed", "open" or
// "half-open"), latency EWMA and error-rate EWMA.
func (c *Counters) Health(i int) (state string, ewmaLat time.Duration, errRate float64) {
	if i < 0 || i >= len(c.slots) {
		return "closed", 0, 0
	}
	h := &c.slots[i].health
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case breakerOpen:
		state = "open"
	case breakerHalfOpen:
		state = "half-open"
	default:
		state = "closed"
	}
	return state, time.Duration(h.ewmaLat * float64(time.Second)), h.ewmaErr
}

// mergeUnhealthy folds open breakers into the caller's exclusion mask.
// It fails open: when every replica would be excluded the original mask
// is returned unchanged — a degraded replica beats none at all.
func (c *Counters) mergeUnhealthy(excluded []bool) []bool {
	n := len(c.slots)
	merged := make([]bool, n)
	candidates := 0
	ejected := false
	for i := 0; i < n; i++ {
		if excluded != nil && i < len(excluded) && excluded[i] {
			merged[i] = true
			continue
		}
		if c.slots[i].health.admit() {
			candidates++
		} else {
			merged[i] = true
			ejected = true
		}
	}
	if !ejected {
		return excluded
	}
	if candidates == 0 {
		return excluded
	}
	return merged
}

// Balancer fronts a set of replicas for one session: it delegates
// selection to the policy and charges the shared per-replica in-flight
// counters. It is safe for concurrent use.
type Balancer struct {
	policy   Policy
	counters *Counters
}

// NewBalancer builds a balancer with its own private counter set —
// for single-session use and tests. A nil policy defaults to
// round-robin.
func NewBalancer(n int, p Policy) *Balancer {
	return NewSharedBalancer(NewCounters(n), p)
}

// NewSharedBalancer builds a balancer over an existing counter set so
// that many sessions' policies see the same per-replica load.
func NewSharedBalancer(c *Counters, p Policy) *Balancer {
	if p == nil {
		p = NewRoundRobin()
	}
	return &Balancer{policy: p, counters: c}
}

// N returns the replica count.
func (b *Balancer) N() int { return b.counters.N() }

// Policy returns the active policy.
func (b *Balancer) Policy() Policy { return b.policy }

// InFlight returns the current open-transaction count at replica i.
func (b *Balancer) InFlight(i int) int64 { return b.counters.Get(i) }

// Acquire picks a replica for one transaction and charges its
// in-flight counter. The returned release must be called exactly once
// when the transaction finishes (commit or abort); it is idempotence-
// guarded by the caller, not here. excluded, if non-nil, marks
// replicas to avoid.
func (b *Balancer) Acquire(readOnly bool, excluded []bool) (int, func()) {
	n := b.counters.N()
	i := b.policy.Pick(View{
		N:        n,
		ReadOnly: readOnly,
		InFlight: b.counters.Get,
		Excluded: b.counters.mergeUnhealthy(excluded),
	})
	if i < 0 || i >= n {
		i = 0
	}
	slot := &b.counters.slots[i]
	gen := slot.gen.Load()
	slot.inflight.Add(1)
	return i, func() {
		if slot.gen.Load() != gen {
			return // replica crashed since; Reset already dropped this charge
		}
		if n := slot.inflight.Add(-1); n < 0 {
			// A release racing the reset itself; repair the undershoot.
			slot.inflight.CompareAndSwap(n, 0)
		}
	}
}

// --- RoundRobin ---

// roundRobin rotates uniformly over the replicas.
type roundRobin struct {
	next atomic.Uint64
}

// NewRoundRobin returns the uniform rotation policy.
func NewRoundRobin() Policy { return &roundRobin{} }

// Name implements Policy.
func (*roundRobin) Name() string { return "roundrobin" }

// Pick implements Policy.
func (p *roundRobin) Pick(v View) int {
	return pickRotating(&p.next, v.N, 0, &v)
}

// pickRotating rotates a shared cursor over replicas [base, base+n),
// skipping excluded ones.
func pickRotating(cursor *atomic.Uint64, n, base int, v *View) int {
	if n <= 0 {
		return 0
	}
	start := int(cursor.Add(1)-1) % n
	for k := 0; k < n; k++ {
		i := base + (start+k)%n
		if !v.excluded(i) {
			return i
		}
	}
	return base + start // everything excluded: let the caller fail fast
}

// --- LeastInFlight ---

// leastInFlight picks the replica with the fewest open transactions,
// breaking ties by rotation so equal replicas share load.
type leastInFlight struct {
	tie atomic.Uint64
}

// NewLeastInFlight returns the least-loaded policy.
func NewLeastInFlight() Policy { return &leastInFlight{} }

// Name implements Policy.
func (*leastInFlight) Name() string { return "leastinflight" }

// Pick implements Policy.
func (p *leastInFlight) Pick(v View) int {
	if v.N <= 0 {
		return 0
	}
	start := int(p.tie.Add(1)-1) % v.N
	best, bestLoad := -1, int64(0)
	for k := 0; k < v.N; k++ {
		i := (start + k) % v.N
		if v.excluded(i) {
			continue
		}
		load := v.InFlight(i)
		if best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	if best < 0 {
		return start
	}
	return best
}

// --- ReadWriteSplit ---

// readWriteSplit sends read-only transactions to every replica but
// confines updates to the first Writers replicas. Concentrating the
// update load shrinks the set of replicas whose in-flight writesets
// can conflict, while reads — which never certify under GSI — exploit
// the full cluster.
type readWriteSplit struct {
	writers   int
	nextRead  atomic.Uint64
	nextWrite atomic.Uint64
}

// NewReadWriteSplit returns the read/write splitting policy; updates
// go to the first writers replicas (minimum 1; values above the
// cluster size are clamped at pick time).
func NewReadWriteSplit(writers int) Policy {
	if writers < 1 {
		writers = 1
	}
	return &readWriteSplit{writers: writers}
}

// Name implements Policy.
func (*readWriteSplit) Name() string { return "rwsplit" }

// Pick implements Policy.
func (p *readWriteSplit) Pick(v View) int {
	if v.ReadOnly {
		return pickRotating(&p.nextRead, v.N, 0, &v)
	}
	w := p.writers
	if w > v.N {
		w = v.N
	}
	i := pickRotating(&p.nextWrite, w, 0, &v)
	if v.excluded(i) {
		// The whole writer set is down. Any replica can execute
		// updates under GSI — the split is an optimization, not a
		// requirement — so degrade to the full cluster rather than
		// violate the contract of honoring Excluded while healthy
		// replicas remain.
		return pickRotating(&p.nextWrite, v.N, 0, &v)
	}
	return i
}

// Parse resolves a policy by flag name: "roundrobin", "leastinflight",
// or "rwsplit" (writers sizes the rwsplit writer set and is ignored by
// the others).
func Parse(name string, writers int) (Policy, error) {
	switch name {
	case "roundrobin", "rr", "":
		return NewRoundRobin(), nil
	case "leastinflight", "lif":
		return NewLeastInFlight(), nil
	case "rwsplit", "rw":
		return NewReadWriteSplit(writers), nil
	default:
		return nil, fmt.Errorf("router: unknown policy %q (want roundrobin|leastinflight|rwsplit)", name)
	}
}
