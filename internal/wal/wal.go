// Package wal implements a write-ahead log with group commit on top of
// a simulated disk channel (internal/simdisk).
//
// The log is the meeting point of the two functions the Tashkent paper
// is about: *ordering* (records are appended in a single total order)
// and *durability* (a record is durable once an fsync covering it has
// completed). A single writer goroutine drains all pending appends
// into one fsync — the group-commit optimization. Whether that
// grouping can actually happen is decided by the callers: a proxy that
// submits commits serially (Base) never has more than one record
// pending, while the certifier (Tashkent-MW) and the ordered-commit
// database (Tashkent-API) keep many records in flight.
//
// Log contents are kept in memory as a realistic CRC-framed byte image
// so crash/recovery behaviour — including torn trailing records — can
// be exercised deterministically.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"tashkent/internal/simdisk"
)

// Mode selects the durability behaviour of Append.
type Mode uint8

const (
	// SyncCommits makes Append block until the record is covered by a
	// completed fsync (standalone-database behaviour; Base and
	// Tashkent-API replicas; the certifier log).
	SyncCommits Mode = iota + 1
	// NoSync makes Append return as soon as the record is buffered in
	// the (volatile) OS cache; nothing is fsynced unless SyncNow is
	// called. This is the "disable all WAL synchronous writes" option
	// Tashkent-MW uses on its replicas (paper §7.1 case 1).
	NoSync
)

// Frame layout: uint32 payload length, uint32 CRC-32(payload), payload.
const frameHeader = 8

// ErrClosed reports an append to a closed log.
var ErrClosed = errors.New("wal: closed")

// ErrCorrupt reports a framing violation in a log image (only possible
// via torn writes; recovery treats it as end-of-log).
var ErrCorrupt = errors.New("wal: corrupt frame")

type appendReq struct {
	payload []byte
	barrier bool // no payload; done closes once prior records are durable
	done    chan struct{}
}

// WAL is a single log file. It is safe for concurrent use.
type WAL struct {
	mu            sync.Mutex
	cond          *sync.Cond
	disk          *simdisk.Disk
	mode          Mode
	buf           []byte // full appended image, stable prefix + volatile suffix
	stable        int    // bytes known flushed to media
	records       int    // total records appended
	stableRecords int
	pending       []appendReq
	closed        bool
	writerDone    chan struct{}
}

// New creates a log on the given disk channel and starts its writer
// goroutine. Close must be called to stop it.
func New(disk *simdisk.Disk, mode Mode) *WAL {
	if mode != SyncCommits && mode != NoSync {
		panic(fmt.Sprintf("wal: invalid mode %d", mode))
	}
	w := &WAL{disk: disk, mode: mode, writerDone: make(chan struct{})}
	w.cond = sync.NewCond(&w.mu)
	go w.writerLoop()
	return w
}

// Append adds one record to the log. In SyncCommits mode it returns
// only after the record is durable; any records queued by concurrent
// callers in the meantime share the same fsync (group commit). In
// NoSync mode it returns immediately after buffering.
func (w *WAL) Append(payload []byte) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.mode == NoSync {
		w.appendFrameLocked(payload)
		w.mu.Unlock()
		return nil
	}
	req := appendReq{payload: payload, done: make(chan struct{})}
	w.pending = append(w.pending, req)
	w.cond.Signal()
	w.mu.Unlock()
	<-req.done
	return nil
}

// appendFrameLocked encodes payload into the volatile image.
func (w *WAL) appendFrameLocked(payload []byte) {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc(payload))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, payload...)
	w.records++
}

// writerLoop is the single log-writer thread: it drains every pending
// append into one fsync, exactly like the paper's certifier writer
// thread ("a single writer thread ... batching all outstanding
// writesets to disk via a single fsync call").
func (w *WAL) writerLoop() {
	defer close(w.writerDone)
	for {
		w.mu.Lock()
		for len(w.pending) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.pending) == 0 && w.closed {
			w.mu.Unlock()
			return
		}
		batch := w.pending
		w.pending = nil
		var bytes, recs int
		for i := range batch {
			if batch[i].barrier {
				continue
			}
			w.appendFrameLocked(batch[i].payload)
			bytes += frameHeader + len(batch[i].payload)
			recs++
		}
		target := len(w.buf)
		targetRecords := w.records
		needFsync := target > w.stable
		w.mu.Unlock()

		// The fsync happens outside the lock so new appends can queue
		// behind this group while the disk is busy. A batch of only
		// barriers on an already-stable log flushes nothing.
		if needFsync {
			w.disk.Fsync(recs, bytes)
		}

		w.mu.Lock()
		if target > w.stable {
			w.stable = target
			w.stableRecords = targetRecords
		}
		w.mu.Unlock()
		for i := range batch {
			close(batch[i].done)
		}
	}
}

// AppendBatch adds several records as one unit: in SyncCommits mode
// all of them are queued together so the writer covers the whole batch
// (plus any concurrent appends) with a single fsync; it returns when
// every record is durable. A paxos follower persisting the entries of
// one replication round uses this to pay one disk flush, not N.
func (w *WAL) AppendBatch(payloads [][]byte) error {
	wait, err := w.AppendBatchAsync(payloads)
	if err != nil {
		return err
	}
	return wait()
}

// AppendBatchAsync is AppendBatch split at its ordering point: it
// returns as soon as the records occupy their slots in the log order,
// and the returned wait function blocks until every one of them is
// durable. A caller that must keep consecutive batches in log order
// without serializing on fsync completion (a replication leader
// persisting back-to-back rounds) enqueues each batch in order and
// waits afterwards — batches still share fsyncs through the writer's
// group commit.
func (w *WAL) AppendBatchAsync(payloads [][]byte) (wait func() error, err error) {
	if len(payloads) == 0 {
		return func() error { return nil }, nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.mode == NoSync {
		for _, p := range payloads {
			w.appendFrameLocked(p)
		}
		w.mu.Unlock()
		return func() error { return nil }, nil
	}
	reqs := make([]appendReq, len(payloads))
	for i, p := range payloads {
		reqs[i] = appendReq{payload: p, done: make(chan struct{})}
		w.pending = append(w.pending, reqs[i])
	}
	w.cond.Signal()
	w.mu.Unlock()
	return func() error {
		for i := range reqs {
			<-reqs[i].done
		}
		return nil
	}, nil
}

// Barrier returns a function that blocks until every record appended
// before the call is durable — trivially immediate in NoSync mode or
// on a clean log. A replication follower acking a round it already
// holds in memory uses this to avoid vouching for records whose fsync
// is still in flight.
func (w *WAL) Barrier() (wait func() error, err error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if w.mode == NoSync || (w.stable == len(w.buf) && len(w.pending) == 0) {
		w.mu.Unlock()
		return func() error { return nil }, nil
	}
	req := appendReq{barrier: true, done: make(chan struct{})}
	w.pending = append(w.pending, req)
	w.cond.Signal()
	w.mu.Unlock()
	return func() error {
		<-req.done
		return nil
	}, nil
}

// SyncNow forces an fsync covering everything appended so far. It is
// how a NoSync log persists checkpoint markers (paper §7.1 case 2
// behaviour) and how tests pin down durability boundaries.
func (w *WAL) SyncNow() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	// The byte and record deltas must come from one critical section: a
	// concurrent writer-loop flush between two separate lock
	// acquisitions could otherwise make the record delta negative. (A
	// flush racing the Fsync below can still report the same records
	// twice — that mirrors the genuinely redundant device flush, and
	// never goes negative.)
	target := len(w.buf)
	targetRecords := w.records
	pendingBytes := target - w.stable
	pendingRecords := targetRecords - w.stableRecords
	w.mu.Unlock()
	if pendingBytes <= 0 {
		return nil
	}
	w.disk.Fsync(pendingRecords, pendingBytes)
	w.mu.Lock()
	if target > w.stable {
		w.stable = target
		w.stableRecords = targetRecords
	}
	w.mu.Unlock()
	return nil
}

// Close stops the writer goroutine after draining queued appends.
func (w *WAL) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	<-w.writerDone
}

// Records returns the total number of records appended (durable or
// not).
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// StableRecords returns the number of records covered by completed
// fsyncs.
func (w *WAL) StableRecords() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stableRecords
}

// Size returns the appended image size in bytes.
func (w *WAL) Size() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// CrashImage simulates a machine crash and returns the byte image that
// would survive on media: the stable prefix plus up to torn extra bytes
// of the volatile suffix (modelling a partially completed device
// write). torn < 0 keeps the entire volatile suffix, modelling a crash
// where the OS cache happened to reach the disk (recovery must cope
// either way).
func (w *WAL) CrashImage(torn int) []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	end := w.stable
	if torn < 0 {
		end = len(w.buf)
	} else {
		end += torn
		if end > len(w.buf) {
			end = len(w.buf)
		}
	}
	img := make([]byte, end)
	copy(img, w.buf[:end])
	return img
}

// Scan decodes a log image into its complete records. A torn or
// corrupt trailing frame terminates the scan without error — exactly
// what database recovery does with a partially written tail. Corruption
// *before* the last frame is impossible under the append-only
// discipline and is reported as ErrCorrupt.
func Scan(image []byte) ([][]byte, error) {
	var out [][]byte
	pos := 0
	for pos < len(image) {
		if pos+frameHeader > len(image) {
			return out, nil // torn header at tail
		}
		n := int(binary.BigEndian.Uint32(image[pos : pos+4]))
		sum := binary.BigEndian.Uint32(image[pos+4 : pos+8])
		if pos+frameHeader+n > len(image) {
			return out, nil // torn payload at tail
		}
		payload := image[pos+frameHeader : pos+frameHeader+n]
		if crc(payload) != sum {
			if pos+frameHeader+n == len(image) {
				return out, nil // corrupted tail record: drop it
			}
			return out, fmt.Errorf("%w: bad CRC at offset %d (not at tail)", ErrCorrupt, pos)
		}
		cp := make([]byte, n)
		copy(cp, payload)
		out = append(out, cp)
		pos += frameHeader + n
	}
	return out, nil
}

func crc(p []byte) uint32 {
	// IEEE CRC-32 via the stdlib table; small wrapper for call sites.
	return crc32IEEE(p)
}
