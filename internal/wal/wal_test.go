package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tashkent/internal/simdisk"
)

func instantDisk() *simdisk.Disk { return simdisk.New(simdisk.Instant(), 1) }

func TestAppendAndScanRoundTrip(t *testing.T) {
	w := New(instantDisk(), SyncCommits)
	defer w.Close()
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%02d", i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Scan(w.CrashImage(-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSyncModeRecordsAreStable(t *testing.T) {
	w := New(instantDisk(), SyncCommits)
	defer w.Close()
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.StableRecords() != 5 {
		t.Errorf("StableRecords = %d, want 5 in sync mode", w.StableRecords())
	}
	// Crash with zero torn bytes must preserve everything synced.
	got, err := Scan(w.CrashImage(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("recovered %d records, want 5", len(got))
	}
}

func TestNoSyncModeLosesUnsyncedRecords(t *testing.T) {
	w := New(instantDisk(), NoSync)
	defer w.Close()
	for i := 0; i < 7; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.StableRecords() != 0 {
		t.Errorf("StableRecords = %d, want 0 before SyncNow", w.StableRecords())
	}
	got, err := Scan(w.CrashImage(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("recovered %d records from unsynced log, want 0", len(got))
	}
	if err := w.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if w.StableRecords() != 7 {
		t.Errorf("StableRecords after SyncNow = %d, want 7", w.StableRecords())
	}
	got, _ = Scan(w.CrashImage(0))
	if len(got) != 7 {
		t.Errorf("recovered %d records after SyncNow, want 7", len(got))
	}
}

func TestSyncNowIdempotentWhenClean(t *testing.T) {
	d := instantDisk()
	w := New(d, NoSync)
	defer w.Close()
	w.Append([]byte("x"))
	w.SyncNow()
	before := d.Stats().Fsyncs
	w.SyncNow() // nothing new: must not fsync again
	if d.Stats().Fsyncs != before {
		t.Error("SyncNow with no volatile suffix should skip the fsync")
	}
}

func TestBarrierCoversPriorAppends(t *testing.T) {
	// A barrier's wait must not return before every record appended
	// ahead of it is durable.
	d := simdisk.New(simdisk.Profile{FsyncLatency: 2 * time.Millisecond}, 5)
	w := New(d, SyncCommits)
	defer w.Close()
	const k = 8
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
				t.Errorf("append: %v", err)
			}
		}()
	}
	// Give the appends a moment to enqueue, then barrier.
	time.Sleep(time.Millisecond)
	enqueued := w.Records()
	wait, err := w.Barrier()
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if got := w.StableRecords(); got < enqueued {
		t.Errorf("barrier returned with %d stable of %d enqueued", got, enqueued)
	}
	wg.Wait()

	// A clean log's barrier is immediate and flushes nothing.
	if err := w.SyncNow(); err != nil {
		t.Fatal(err)
	}
	before := d.Stats().Fsyncs
	wait, err = w.Barrier()
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if f := d.Stats().Fsyncs; f != before {
		t.Errorf("clean-log barrier issued %d extra fsyncs", f-before)
	}
}

func TestBarrierNoSyncImmediate(t *testing.T) {
	w := New(instantDisk(), NoSync)
	defer w.Close()
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	wait, err := w.Barrier()
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if w.StableRecords() != 0 {
		t.Error("NoSync barrier must not flush")
	}
}

func TestSyncNowAccountingUnderConcurrentFlushes(t *testing.T) {
	// SyncNow computes the record delta it reports to the disk in one
	// critical section; racing it against writer-loop flushes must
	// never produce a negative delta (simdisk panics on one) and the
	// records reported synced must cover everything marked stable.
	d := instantDisk()
	w := New(d, SyncCommits)
	defer w.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		if err := w.SyncNow(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := w.SyncNow(); err != nil {
		t.Fatal(err)
	}
	if got, want := d.Stats().RecordsSynced, int64(w.StableRecords()); got < want {
		t.Errorf("disk accounting covers %d records, but %d are stable", got, want)
	}
}

func TestGroupCommitBatchesConcurrentAppends(t *testing.T) {
	// With a slow fsync, concurrent appends must share fsyncs: far
	// fewer fsyncs than records.
	d := simdisk.New(simdisk.Profile{FsyncLatency: 3 * time.Millisecond}, 1)
	w := New(d, SyncCommits)
	defer w.Close()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w.Append([]byte{byte(i)})
		}(i)
	}
	wg.Wait()
	s := d.Stats()
	if s.RecordsSynced != n {
		t.Fatalf("RecordsSynced = %d, want %d", s.RecordsSynced, n)
	}
	if s.Fsyncs >= n/2 {
		t.Errorf("%d fsyncs for %d concurrent appends; group commit not batching", s.Fsyncs, n)
	}
	if s.MaxGroup < 2 {
		t.Errorf("MaxGroup = %d, want >= 2", s.MaxGroup)
	}
}

func TestSerialAppendsCannotGroup(t *testing.T) {
	// The Base phenomenon: a caller that waits for each append gets
	// one fsync per record.
	d := simdisk.New(simdisk.Profile{FsyncLatency: time.Millisecond}, 1)
	w := New(d, SyncCommits)
	defer w.Close()
	const n = 10
	for i := 0; i < n; i++ {
		w.Append([]byte{byte(i)})
	}
	if got := d.Stats().Fsyncs; got != n {
		t.Errorf("serial appends produced %d fsyncs, want %d (no grouping possible)", got, n)
	}
}

func TestTornTailDropped(t *testing.T) {
	w := New(instantDisk(), SyncCommits)
	w.Append([]byte("alpha"))
	w.Append([]byte("beta"))
	full := w.CrashImage(-1)
	w.Close()
	// Every truncation point must recover a clean prefix, never error,
	// never a partial record.
	for cut := 0; cut <= len(full); cut++ {
		got, err := Scan(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, r := range got {
			if string(r) != "alpha" && string(r) != "beta" {
				t.Fatalf("cut %d: recovered partial record %q", cut, r)
			}
		}
		if len(got) > 2 {
			t.Fatalf("cut %d: recovered %d records", cut, len(got))
		}
	}
}

func TestScanCorruptMiddle(t *testing.T) {
	w := New(instantDisk(), SyncCommits)
	w.Append([]byte("alpha"))
	w.Append([]byte("beta"))
	img := w.CrashImage(-1)
	w.Close()
	img[9] ^= 0xFF // flip a payload byte of the first record
	_, err := Scan(img)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-log corruption: err = %v, want ErrCorrupt", err)
	}
}

func TestScanCorruptTailRecordDropped(t *testing.T) {
	w := New(instantDisk(), SyncCommits)
	w.Append([]byte("alpha"))
	w.Append([]byte("beta"))
	img := w.CrashImage(-1)
	w.Close()
	img[len(img)-1] ^= 0xFF // corrupt last byte (tail record payload)
	got, err := Scan(img)
	if err != nil {
		t.Fatalf("tail corruption should not error: %v", err)
	}
	if len(got) != 1 || string(got[0]) != "alpha" {
		t.Errorf("recovered %v, want just alpha", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	w := New(instantDisk(), SyncCommits)
	w.Close()
	if err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close: err = %v, want ErrClosed", err)
	}
	if err := w.SyncNow(); !errors.Is(err, ErrClosed) {
		t.Errorf("SyncNow after Close: err = %v, want ErrClosed", err)
	}
	w.Close() // double close is a no-op
}

func TestCloseDrainsPending(t *testing.T) {
	d := simdisk.New(simdisk.Profile{FsyncLatency: 2 * time.Millisecond}, 1)
	w := New(d, SyncCommits)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Append([]byte("z"))
		}()
	}
	wg.Wait()
	w.Close()
	if w.StableRecords() != 16 {
		t.Errorf("StableRecords = %d after Close, want 16", w.StableRecords())
	}
}

func TestSizeAndRecords(t *testing.T) {
	w := New(instantDisk(), NoSync)
	defer w.Close()
	w.Append(make([]byte, 100))
	if w.Records() != 1 {
		t.Errorf("Records = %d", w.Records())
	}
	if w.Size() != 108 {
		t.Errorf("Size = %d, want 108 (8-byte frame header + 100)", w.Size())
	}
}

func TestInvalidModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid mode should panic")
		}
	}()
	New(instantDisk(), Mode(0))
}

// TestQuickCrashRecoveryPrefix is the durability property from
// DESIGN.md: after a crash at any torn boundary, recovery yields
// exactly a prefix of the appended records, and in sync mode at least
// the acknowledged ones.
func TestQuickCrashRecoveryPrefix(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := New(instantDisk(), SyncCommits)
		defer w.Close()
		n := 1 + r.Intn(10)
		var records [][]byte
		for i := 0; i < n; i++ {
			p := make([]byte, 1+r.Intn(40))
			r.Read(p)
			records = append(records, p)
			if err := w.Append(p); err != nil {
				return false
			}
		}
		torn := r.Intn(w.Size() + 2)
		got, err := Scan(w.CrashImage(torn))
		if err != nil {
			return false
		}
		// Sync mode: all acknowledged records must survive (torn adds
		// bytes beyond stable, never removes).
		if len(got) < n {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], records[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickNoSyncPrefixProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := New(instantDisk(), NoSync)
		defer w.Close()
		n := 1 + r.Intn(12)
		syncAt := r.Intn(n + 1)
		var records [][]byte
		for i := 0; i < n; i++ {
			p := []byte{byte(i), byte(i >> 8)}
			records = append(records, p)
			w.Append(p)
			if i+1 == syncAt {
				w.SyncNow()
			}
		}
		got, err := Scan(w.CrashImage(0))
		if err != nil {
			return false
		}
		if len(got) != syncAt {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], records[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGroupCommitThroughput(b *testing.B) {
	d := simdisk.New(simdisk.Profile{FsyncLatency: 100 * time.Microsecond}, 1)
	w := New(d, SyncCommits)
	defer w.Close()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		payload := make([]byte, 64)
		for pb.Next() {
			w.Append(payload)
		}
	})
	b.ReportMetric(d.Stats().GroupRatio(), "records/fsync")
}
