package wal

import "hash/crc32"

// crc32IEEE computes the IEEE CRC-32 of p. Isolated here so the frame
// checksum algorithm has a single definition shared by writer and
// scanner.
func crc32IEEE(p []byte) uint32 { return crc32.ChecksumIEEE(p) }
