package partition

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tashkent/internal/certifier"
	"tashkent/internal/core"
)

func item(key string) core.ItemID { return core.ItemID{Table: "t", Key: key} }

func ws(keys ...string) *core.Writeset {
	w := &core.Writeset{}
	for _, k := range keys {
		w.Add(core.WriteOp{Kind: core.OpUpdate, Table: "t", Key: k,
			Cols: []core.ColUpdate{{Col: "v", Value: []byte(k)}}})
	}
	return w
}

func TestMapDeterministicAndBalanced(t *testing.T) {
	m := Map{N: 4}
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		id := item(fmt.Sprintf("key-%d", i))
		p := m.Of(id)
		if p != m.Of(id) {
			t.Fatalf("unstable partition for %v", id)
		}
		if p < 0 || p >= 4 {
			t.Fatalf("partition %d out of range", p)
		}
		counts[p]++
	}
	for p, c := range counts {
		if c < 4096/8 {
			t.Errorf("partition %d badly underloaded: %d of 4096", p, c)
		}
	}
	if (Map{N: 1}).Of(item("x")) != 0 || (Map{}).Of(item("x")) != 0 {
		t.Error("single-partition map must send everything to 0")
	}
}

func TestSplitCoversAndOrders(t *testing.T) {
	m := Map{N: 4}
	w := ws("a", "b", "c", "d", "e", "f", "g", "h")
	parts := m.Split(w)
	total := 0
	last := -1
	for _, p := range parts {
		if p.PID <= last {
			t.Fatalf("parts not in ascending pid order: %v after %v", p.PID, last)
		}
		last = p.PID
		for i := range p.WS.Ops {
			if m.Of(p.WS.Ops[i].Item()) != p.PID {
				t.Fatalf("op for %v in wrong part %d", p.WS.Ops[i].Item(), p.PID)
			}
		}
		total += len(p.WS.Ops)
	}
	if total != len(w.Ops) {
		t.Fatalf("split covers %d of %d ops", total, len(w.Ops))
	}
}

// encode helpers over the certifier wire format: the assembler
// consumes raw entry payloads.
func rawData(origin int, w *core.Writeset) []byte {
	return certifier.EncodeEntry(certifier.Entry{Kind: core.KindData, Origin: origin, WS: w})
}

func rawPrepare(origin int, gid uint64, involved []int, w *core.Writeset) []byte {
	return certifier.EncodeEntry(certifier.Entry{Kind: core.KindPrepare, Origin: origin, GID: gid, Involved: involved, WS: w})
}

func rawMarker(commit bool, gid uint64) []byte {
	k := core.KindAbortMarker
	if commit {
		k = core.KindCommitMarker
	}
	return certifier.EncodeEntry(certifier.Entry{Kind: k, GID: gid})
}

func drain(a *Assembler) []Action {
	var out []Action
	for {
		act, ok := a.Next()
		if !ok {
			return out
		}
		out = append(out, act)
	}
}

func TestAssemblerMergesByIndexThenGroup(t *testing.T) {
	a := NewAssembler(2)
	// group 1's entries offered first must not emit before group 0's.
	if err := a.Offer(1, 1, rawData(2, ws("x"))); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Next(); ok {
		t.Fatal("emitted group 1 entry while group 0 index 1 is missing")
	}
	if g, idx := a.Blocking(); g != 0 || idx != 1 {
		t.Fatalf("blocking = (%d,%d), want (0,1)", g, idx)
	}
	if err := a.Offer(0, 1, rawData(1, ws("a"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(0, 2, rawData(1, ws("b"))); err != nil {
		t.Fatal(err)
	}
	acts := drain(a)
	want := [][2]uint64{{0, 1}, {1, 1}, {0, 2}} // (group, index) in merged order
	if len(acts) != len(want) {
		t.Fatalf("emitted %d actions, want %d", len(acts), len(want))
	}
	for i, act := range acts {
		if uint64(act.Group) != want[i][0] || act.Index != want[i][1] {
			t.Errorf("action %d = group %d index %d, want %v", i, act.Group, act.Index, want[i])
		}
		if act.MV != uint64(i+1) {
			t.Errorf("action %d merged version %d, want %d", i, act.MV, i+1)
		}
	}
}

func TestAssemblerDeterministicUnderReordering(t *testing.T) {
	type feed struct {
		g   int
		idx uint64
		raw []byte
	}
	var feeds []feed
	for g := 0; g < 3; g++ {
		for idx := uint64(1); idx <= 20; idx++ {
			feeds = append(feeds, feed{g, idx, rawData(g+1, ws(fmt.Sprintf("g%dk%d", g, idx)))})
		}
	}
	var reference []Action
	for trial := 0; trial < 8; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		shuffled := append([]feed(nil), feeds...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := NewAssembler(3)
		var got []Action
		for _, f := range shuffled {
			if err := a.Offer(f.g, f.idx, f.raw); err != nil {
				t.Fatal(err)
			}
			got = append(got, drain(a)...)
		}
		if trial == 0 {
			reference = got
			continue
		}
		if len(got) != len(reference) {
			t.Fatalf("trial %d emitted %d actions, reference %d", trial, len(got), len(reference))
		}
		for i := range got {
			if got[i].MV != reference[i].MV || got[i].Group != reference[i].Group || got[i].Index != reference[i].Index {
				t.Fatalf("trial %d action %d = %+v, reference %+v", trial, i, got[i], reference[i])
			}
		}
	}
	if len(reference) != 60 {
		t.Fatalf("reference emitted %d actions, want 60", len(reference))
	}
}

func TestAssemblerCrossPartitionUnion(t *testing.T) {
	a := NewAssembler(2)
	gid := uint64(900)
	// Prepares land in both groups, then markers. Group 0: prepare@1,
	// marker@2. Group 1: prepare@1, marker@2.
	if err := a.Offer(0, 1, rawPrepare(5, gid, []int{0, 1}, ws("a"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(1, 1, rawPrepare(5, gid, []int{0, 1}, ws("b"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(0, 2, rawMarker(true, gid)); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(1, 2, rawMarker(true, gid)); err != nil {
		t.Fatal(err)
	}
	acts := drain(a)
	if len(acts) != 4 {
		t.Fatalf("emitted %d actions, want 4", len(acts))
	}
	// prepares announce only.
	if acts[0].WS != nil || acts[1].WS != nil {
		t.Error("prepare actions must not carry a writeset")
	}
	// first marker (group 0 index 2) applies the union.
	u := acts[2]
	if u.GID != gid || u.WS == nil || len(u.WS.Items()) != 2 || u.Origin != 5 {
		t.Fatalf("union action = %+v", u)
	}
	items := u.WS.Items()
	if !reflect.DeepEqual(items[0], item("a")) || !reflect.DeepEqual(items[1], item("b")) {
		t.Fatalf("union items = %v (want part order by ascending pid)", items)
	}
	// second marker is a no-op.
	if acts[3].WS != nil || acts[3].GID != 0 {
		t.Fatalf("duplicate marker applied again: %+v", acts[3])
	}
}

func TestAssemblerMarkerWaitsForPartReceipt(t *testing.T) {
	a := NewAssembler(2)
	gid := uint64(901)
	// Group 0 is fast: prepare@1, marker@2 arrive. Group 1's prepare
	// exists in its log but has not been received yet; group 1's
	// stream is otherwise idle, so the merge wants (1,1) first. Feed a
	// fill no-op at (1,1) so the merge reaches group 0's marker with
	// the part still missing.
	if err := a.Offer(0, 1, rawPrepare(5, gid, []int{0, 1}, ws("a"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(0, 2, rawMarker(true, gid)); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(1, 1, rawData(0, &core.Writeset{})); err != nil {
		t.Fatal(err)
	}
	acts := drain(a) // prepare@0,1 then fill@1,1 emit; marker blocks
	if len(acts) != 2 {
		t.Fatalf("emitted %d actions before part receipt, want 2", len(acts))
	}
	if g, _ := a.Blocking(); g != 1 {
		t.Fatalf("blocked on group %d, want 1 (the missing part's group)", g)
	}
	// The part arrives (receipt is enough — its merge position is later).
	if err := a.Offer(1, 2, rawPrepare(5, gid, []int{0, 1}, ws("b"))); err != nil {
		t.Fatal(err)
	}
	acts = drain(a)
	if len(acts) != 2 { // marker@0,2 (union) + prepare@1,2 (no-op)
		t.Fatalf("emitted %d actions after part receipt, want 2", len(acts))
	}
	if acts[0].GID != gid || acts[0].WS == nil || len(acts[0].WS.Items()) != 2 {
		t.Fatalf("union action = %+v", acts[0])
	}
}

func TestAssemblerAbortDropsParts(t *testing.T) {
	a := NewAssembler(2)
	gid := uint64(902)
	if err := a.Offer(0, 1, rawPrepare(5, gid, []int{0, 1}, ws("a"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(1, 1, rawPrepare(5, gid, []int{0, 1}, ws("b"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(0, 2, rawMarker(false, gid)); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(1, 2, rawMarker(false, gid)); err != nil {
		t.Fatal(err)
	}
	for _, act := range drain(a) {
		if act.WS != nil {
			t.Fatalf("aborted transaction leaked a writeset: %+v", act)
		}
	}
	if len(a.gids) != 0 {
		t.Errorf("gid state not garbage-collected after abort: %d left", len(a.gids))
	}
}

func TestAssemblerVectorAndFrontier(t *testing.T) {
	a := NewAssembler(2)
	if err := a.Offer(0, 1, rawData(1, ws("a"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(0, 3, rawData(1, ws("c"))); err != nil { // gap at 2
		t.Fatal(err)
	}
	if got := a.Frontier(0); got != 1 {
		t.Errorf("frontier with gap = %d, want 1", got)
	}
	if err := a.Offer(0, 2, rawData(1, ws("b"))); err != nil {
		t.Fatal(err)
	}
	if got := a.Frontier(0); got != 3 {
		t.Errorf("frontier after gap fill = %d, want 3", got)
	}
	if err := a.Offer(1, 1, rawData(2, ws("x"))); err != nil {
		t.Fatal(err)
	}
	drain(a)
	if v := a.Vector(); v[0] != 2 || v[1] != 1 {
		// group 0 emits 1, then group 1 emits 1, then group 0 emits 2;
		// group 0 index 3 waits for group 1 index 2.
		t.Errorf("vector = %v, want [2 1]", v)
	}
	if a.MergedVersion() != 3 {
		t.Errorf("merged version = %d, want 3", a.MergedVersion())
	}
}
