// Package partition implements partitioned certification: the
// keyspace is sharded across N independent certifier groups by a
// consistent hash of the item id, so certification throughput scales
// with the number of groups instead of being bounded by one paxos
// log and one conflict-check loop.
//
// A transaction whose writeset falls entirely in one partition
// certifies against that group alone (the fast path — one round, one
// group fsync). A cross-partition transaction runs a two-phase
// protocol: phase 1 appends a durable *prepare* entry (this group's
// slice of the writeset, conflict-checked and locked) in each involved
// group in ascending partition order; phase 2 appends a *decision
// marker* (commit or abort) in each group. Replicas rebuild one total
// apply order by deterministically interleaving the per-group logs
// (see Assembler), so every replica announces the same merged version
// for the same entry without any cross-group coordination.
package partition

import (
	"hash/fnv"

	"tashkent/internal/core"
)

// Map assigns items to partitions by FNV-1a hash. The zero value (N
// <= 1) maps everything to partition 0.
type Map struct {
	// N is the partition (certifier group) count.
	N int
}

// Of returns the partition owning the item.
func (m Map) Of(id core.ItemID) int {
	if m.N <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(id.Table))
	h.Write([]byte{0})
	h.Write([]byte(id.Key))
	return int(h.Sum32() % uint32(m.N))
}

// Part is one partition's slice of a writeset.
type Part struct {
	PID int
	WS  *core.Writeset
}

// Split slices a writeset by partition, returned in ascending
// partition order — the canonical order in which cross-partition
// transactions prepare (a fixed lock order makes distributed deadlock
// impossible).
func (m Map) Split(ws *core.Writeset) []Part {
	if m.N <= 1 {
		return []Part{{PID: 0, WS: ws}}
	}
	byPID := make(map[int]*core.Writeset)
	for i := range ws.Ops {
		op := ws.Ops[i]
		pid := m.Of(op.Item())
		p := byPID[pid]
		if p == nil {
			p = &core.Writeset{}
			byPID[pid] = p
		}
		p.Ops = append(p.Ops, op)
	}
	parts := make([]Part, 0, len(byPID))
	for pid := 0; pid < m.N; pid++ {
		if p, ok := byPID[pid]; ok {
			parts = append(parts, Part{PID: pid, WS: p})
		}
	}
	return parts
}
