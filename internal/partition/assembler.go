package partition

import (
	"fmt"

	"tashkent/internal/certifier"
	"tashkent/internal/core"
)

// Topology is what a partitioned replica needs to reach the certifier
// tier: the partition map and one failover client per group.
type Topology struct {
	Map    Map
	Groups []*certifier.Client
}

// Action is one step of the merged apply order. MV is the merged
// version the step announces; exactly one Action exists per committed
// entry of every group, so merged versions are dense across the
// cluster and identical on every replica.
//
// WS is nil for steps that install nothing (fill/barrier no-ops,
// prepares, duplicate or abort markers): the replica just announces
// MV. For a data entry WS is its writeset; for the first commit
// marker of a cross-partition transaction WS is the union of all its
// prepared parts, applied atomically at the marker's merged version.
type Action struct {
	MV     uint64
	Group  int
	Index  uint64
	Origin int
	// GID is nonzero when this action commits a cross-partition
	// transaction (the union-applying first commit marker).
	GID uint64
	WS  *core.Writeset
}

// gidState accumulates a cross-partition transaction's parts until
// its first commit marker emits, then tombstones it until every
// involved group's marker has passed.
type gidState struct {
	parts    map[int]*core.Writeset
	origin   int
	involved []int
	done     bool // first decision marker emitted (applied or aborted)
	markers  int
}

// Assembler rebuilds the single merged apply order from N per-group
// committed streams. The merge rule is pure bookkeeping: the next
// entry is the one with the smallest (next index, group id) pair, so
// any two replicas that have the same per-group prefixes emit the
// same merged order. Not safe for concurrent use; callers serialize.
type Assembler struct {
	n        int
	next     []uint64                     // per-group next index to emit
	frontier []uint64                     // per-group highest contiguous index received
	buf      []map[uint64]certifier.Entry // received, unemitted entries
	gids     map[uint64]*gidState
	merged   uint64 // merged versions emitted so far

	blockGroup int // group Next is stalled on (-1 = none)
	blockIndex uint64
}

// NewAssembler returns an empty assembler over n groups.
func NewAssembler(n int) *Assembler {
	a := &Assembler{
		n:          n,
		next:       make([]uint64, n),
		frontier:   make([]uint64, n),
		buf:        make([]map[uint64]certifier.Entry, n),
		gids:       make(map[uint64]*gidState),
		blockGroup: -1,
	}
	for g := range a.next {
		a.next[g] = 1
		a.buf[g] = make(map[uint64]certifier.Entry)
	}
	return a
}

// Offer feeds one committed entry of group g at the given log index.
// Duplicates and already-emitted indexes are ignored. Prepare parts
// register immediately on receipt (not on emission): a commit marker
// in a fast group may reach its merge position long before the slow
// group's prepare entry does, and the union must not wait for the
// prepare's own — much later — merge position.
func (a *Assembler) Offer(g int, index uint64, raw []byte) error {
	if g < 0 || g >= a.n {
		return fmt.Errorf("partition: offer to group %d of %d", g, a.n)
	}
	if index < a.next[g] {
		return nil // already emitted
	}
	if _, dup := a.buf[g][index]; dup {
		return nil
	}
	e, err := certifier.DecodeLogEntry(raw)
	if err != nil {
		return fmt.Errorf("partition: group %d index %d: %w", g, index, err)
	}
	a.buf[g][index] = e
	for {
		if _, ok := a.buf[g][a.frontier[g]+1]; !ok {
			break
		}
		a.frontier[g]++
	}
	if e.Kind == core.KindPrepare {
		a.registerPart(g, e)
	}
	return nil
}

func (a *Assembler) registerPart(g int, e certifier.Entry) {
	st := a.gids[e.GID]
	if st == nil {
		st = &gidState{parts: make(map[int]*core.Writeset)}
		a.gids[e.GID] = st
	}
	if st.done {
		return // decision already emitted; late part is irrelevant
	}
	if st.parts[g] == nil {
		st.parts[g] = e.WS
	}
	st.origin = e.Origin
	if len(st.involved) == 0 {
		st.involved = e.Involved
	}
}

// Pending reports whether any received entry is still waiting to be
// emitted — i.e. whether running the merge forward could make
// progress that matters to this replica.
func (a *Assembler) Pending() bool {
	for g := range a.buf {
		if len(a.buf[g]) > 0 {
			return true
		}
	}
	return false
}

// Frontier returns the highest contiguous log index received from
// group g — the ReplicaVersion a pull for more of g's stream should
// carry.
func (a *Assembler) Frontier(g int) uint64 { return a.frontier[g] }

// MergedVersion returns how many merged versions have been emitted.
func (a *Assembler) MergedVersion() uint64 { return a.merged }

// Vector returns the per-group emitted counts (the replica's position
// in each group's version space). The returned slice is a copy.
func (a *Assembler) Vector() []uint64 {
	v := make([]uint64, a.n)
	for g := range v {
		v[g] = a.next[g] - 1
	}
	return v
}

// Blocking reports what the last failed Next is waiting for: a group
// and the log index the replica must receive from it. Valid only
// after Next returned ok == false.
func (a *Assembler) Blocking() (group int, index uint64) {
	return a.blockGroup, a.blockIndex
}

// Next emits the next action of the merged order, or ok == false if
// the required entry (or a required cross-partition part) has not
// been received yet — Blocking then says what to pull.
func (a *Assembler) Next() (Action, bool) {
	// The next entry globally is the smallest (next index, group id).
	g := 0
	for i := 1; i < a.n; i++ {
		if a.next[i] < a.next[g] {
			g = i
		}
	}
	idx := a.next[g]
	e, ok := a.buf[g][idx]
	if !ok {
		a.blockGroup, a.blockIndex = g, idx
		return Action{}, false
	}

	act := Action{MV: a.merged + 1, Group: g, Index: idx, Origin: e.Origin}
	switch e.Kind {
	case core.KindData:
		if !e.WS.Empty() {
			act.WS = e.WS
		}
	case core.KindPrepare:
		// Registered at Offer time; its merge position announces only.
	case core.KindCommitMarker:
		st := a.gids[e.GID]
		if st == nil {
			// A commit marker implies this group prepared the gid, and
			// the same-group prepare (lower index) has already been
			// offered and registered. Reaching here means the streams
			// are corrupt; fail safe by treating it as a no-op rather
			// than diverging.
			break
		}
		if !st.done {
			for _, pid := range st.involved {
				if st.parts[pid] == nil {
					// The union is not assembled yet: the missing part
					// is committed in group pid's log (phase 1 finished
					// before any marker was proposed), just not received
					// — pull that group forward.
					a.blockGroup, a.blockIndex = pid, a.frontier[pid]+1
					return Action{}, false
				}
			}
			union := &core.Writeset{}
			for _, pid := range st.involved {
				union.Merge(st.parts[pid])
			}
			act.WS = union
			act.GID = e.GID
			act.Origin = st.origin
			st.done = true
			st.parts = nil
		}
		st.markers++
		if st.markers >= len(st.involved) && len(st.involved) > 0 {
			delete(a.gids, e.GID)
		}
	case core.KindAbortMarker:
		if st := a.gids[e.GID]; st != nil {
			st.done = true
			st.parts = nil
			st.markers++
			if st.markers >= len(st.involved) && len(st.involved) > 0 {
				delete(a.gids, e.GID)
			}
		}
	}

	delete(a.buf[g], idx)
	a.next[g] = idx + 1
	a.merged++
	a.blockGroup, a.blockIndex = -1, 0
	return act, true
}
