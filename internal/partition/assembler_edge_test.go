package partition

import (
	"testing"
)

// TestAssemblerSingleGroup: with one group the merged order must be
// exactly the group's log order — merged versions equal log indexes —
// and the accessors track the trivial topology.
func TestAssemblerSingleGroup(t *testing.T) {
	a := NewAssembler(1)
	for i := uint64(1); i <= 5; i++ {
		if err := a.Offer(0, i, rawData(0, ws("k"))); err != nil {
			t.Fatal(err)
		}
	}
	acts := drain(a)
	if len(acts) != 5 {
		t.Fatalf("emitted %d of 5 actions", len(acts))
	}
	for i, act := range acts {
		want := uint64(i + 1)
		if act.MV != want || act.Index != want || act.Group != 0 {
			t.Fatalf("action %d = {MV %d, group %d, index %d}; want identity merge", i, act.MV, act.Group, act.Index)
		}
	}
	if a.MergedVersion() != 5 || a.Frontier(0) != 5 {
		t.Fatalf("merged %d frontier %d; want 5/5", a.MergedVersion(), a.Frontier(0))
	}
	if v := a.Vector(); len(v) != 1 || v[0] != 5 {
		t.Fatalf("vector %v; want [5]", v)
	}
	// The drain's failing Next must leave Blocking pointing at the
	// group's next unreceived index.
	if g, idx := a.Blocking(); g != 0 || idx != 6 {
		t.Fatalf("blocking on group %d index %d; want 0/6", g, idx)
	}
	if a.Pending() {
		t.Fatal("nothing buffered, but Pending reports work")
	}
}

// TestAssemblerEmptyGroupStallsMerge: a group that has never committed
// anything stalls the merge at its first index — the merge cannot skip
// a silent group without risking divergence — and Blocking names it so
// the replica knows which stream to pull.
func TestAssemblerEmptyGroupStallsMerge(t *testing.T) {
	a := NewAssembler(2)
	if err := a.Offer(0, 1, rawData(0, ws("a"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(0, 2, rawData(0, ws("b"))); err != nil {
		t.Fatal(err)
	}
	// Both groups are at next index 1, so the tie breaks to group 0
	// and its first entry emits; then group 1 (still at 1) is strictly
	// smallest and the silent group blocks everything after.
	acts := drain(a)
	if len(acts) != 1 || acts[0].Group != 0 || acts[0].Index != 1 {
		t.Fatalf("drain emitted %+v; want exactly group 0 index 1", acts)
	}
	if g, idx := a.Blocking(); g != 1 || idx != 1 {
		t.Fatalf("blocking on group %d index %d; want the empty group at 1/1", g, idx)
	}
	if !a.Pending() {
		t.Fatal("group 0 index 2 is buffered, but Pending reports none")
	}
	if a.Frontier(1) != 0 {
		t.Fatalf("empty group frontier %d; want 0", a.Frontier(1))
	}
	// Feeding the empty group releases the backlog in merge order:
	// (1,g1) then (2,g0).
	if err := a.Offer(1, 1, rawData(1, ws("c"))); err != nil {
		t.Fatal(err)
	}
	acts = drain(a)
	if len(acts) != 2 || acts[0].Group != 1 || acts[1].Group != 0 || acts[1].Index != 2 {
		t.Fatalf("post-fill drain %+v; want group 1 index 1 then group 0 index 2", acts)
	}
}

// TestAssemblerFarAheadFrontier: entries arriving far ahead of the
// contiguous prefix buffer without advancing the frontier or the
// merge; filling the gap snaps the frontier forward and emits the
// whole run in order.
func TestAssemblerFarAheadFrontier(t *testing.T) {
	a := NewAssembler(2)
	for i := uint64(2); i <= 5; i++ {
		if err := a.Offer(0, i, rawData(0, ws("x"))); err != nil {
			t.Fatal(err)
		}
	}
	if a.Frontier(0) != 0 {
		t.Fatalf("frontier %d with index 1 missing; want 0", a.Frontier(0))
	}
	if acts := drain(a); len(acts) != 0 {
		t.Fatalf("merge emitted %d actions across a gap", len(acts))
	}
	if g, idx := a.Blocking(); g != 0 || idx != 1 {
		t.Fatalf("blocking on group %d index %d; want the gap at 0/1", g, idx)
	}
	// Keep group 1 ahead of group 0 so the post-fill drain must
	// interleave by (index, group), not emit one group wholesale.
	if err := a.Offer(1, 1, rawData(1, ws("y"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(1, 2, rawData(1, ws("z"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(0, 1, rawData(0, ws("w"))); err != nil {
		t.Fatal(err)
	}
	if a.Frontier(0) != 5 {
		t.Fatalf("frontier %d after filling the gap; want 5", a.Frontier(0))
	}
	acts := drain(a)
	// The merge interleaves by (index, group) and must NOT run group
	// 0's far-ahead tail past group 1: after (0,3) the smallest next
	// pair is group 1 at 3, so indexes 4-5 stay buffered.
	wantOrder := []struct {
		g   int
		idx uint64
	}{{0, 1}, {1, 1}, {0, 2}, {1, 2}, {0, 3}}
	if len(acts) != len(wantOrder) {
		t.Fatalf("drained %d actions; want %d", len(acts), len(wantOrder))
	}
	for i, w := range wantOrder {
		if acts[i].Group != w.g || acts[i].Index != w.idx {
			t.Fatalf("action %d = group %d index %d; want group %d index %d",
				i, acts[i].Group, acts[i].Index, w.g, w.idx)
		}
		if acts[i].MV != uint64(i+1) {
			t.Fatalf("action %d announced MV %d; want dense %d", i, acts[i].MV, i+1)
		}
	}
	if g, idx := a.Blocking(); g != 1 || idx != 3 {
		t.Fatalf("blocking on group %d index %d; want 1/3", g, idx)
	}
	if !a.Pending() {
		t.Fatal("group 0's far-ahead tail is buffered, but Pending reports none")
	}
}

// TestAssemblerOfferEdges: duplicate and already-emitted offers are
// idempotent no-ops, and out-of-range groups are rejected.
func TestAssemblerOfferEdges(t *testing.T) {
	a := NewAssembler(2)
	if err := a.Offer(0, 1, rawData(0, ws("a"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(0, 1, rawData(0, ws("DIFFERENT"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Offer(1, 1, rawData(1, ws("b"))); err != nil {
		t.Fatal(err)
	}
	acts := drain(a)
	if len(acts) != 2 {
		t.Fatalf("drained %d actions; want 2 (duplicate must not double-emit)", len(acts))
	}
	if acts[0].WS == nil || len(acts[0].WS.Ops) != 1 || acts[0].WS.Ops[0].Key != "a" {
		t.Fatalf("duplicate offer replaced the first-received entry: %+v", acts[0].WS)
	}
	// Re-offering an emitted index is ignored, not re-buffered.
	if err := a.Offer(0, 1, rawData(0, ws("late"))); err != nil {
		t.Fatal(err)
	}
	if a.Pending() {
		t.Fatal("already-emitted re-offer was buffered")
	}
	if err := a.Offer(2, 1, rawData(0, ws("x"))); err == nil {
		t.Fatal("offer to out-of-range group succeeded")
	}
	if err := a.Offer(-1, 1, rawData(0, ws("x"))); err == nil {
		t.Fatal("offer to negative group succeeded")
	}
}
