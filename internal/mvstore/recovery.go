package mvstore

import (
	"fmt"
	"hash/crc32"
	"sort"

	"tashkent/internal/core"
	"tashkent/internal/wal"
)

// RecoveryInfo summarizes what a WAL replay found.
type RecoveryInfo struct {
	// Records is the number of complete commit records recovered.
	Records int
	// CoveredTo is the highest global version V such that the records
	// form an unbroken (from,to] chain from the recovery base up to V.
	// Commit records beyond a gap (possible under Tashkent-API, whose
	// concurrent commits may sync out of order) are applied too, but
	// the middleware re-applies everything after CoveredTo from the
	// certifier log, which is always safe because writesets carry
	// absolute values (paper §7.2).
	CoveredTo uint64
	// Gaps reports how many records lay beyond the contiguous chain.
	Gaps int
}

// RecoverFromWAL rebuilds a store from a crash-surviving WAL image,
// replaying commit records in log order on top of an empty database.
// base is the global version the empty state corresponds to (0 for a
// fresh database; the dump's covered version when replaying on top of
// a restored dump).
func RecoverFromWAL(cfg Config, image []byte, base uint64) (*Store, RecoveryInfo, error) {
	s := Open(cfg)
	info, err := s.replayWAL(image, base)
	if err != nil {
		s.Close()
		return nil, info, err
	}
	return s, info, nil
}

// replayWAL applies every commit record in the image and computes the
// contiguous coverage chain. The store is not serving clients yet, so
// replay is single-threaded.
func (s *Store) replayWAL(image []byte, base uint64) (RecoveryInfo, error) {
	payloads, err := wal.Scan(image)
	if err != nil {
		return RecoveryInfo{}, fmt.Errorf("mvstore: recovery scan: %w", err)
	}
	var recs []CommitRecord
	for i, p := range payloads {
		rec, err := DecodeCommitRecord(p)
		if err != nil {
			return RecoveryInfo{}, fmt.Errorf("mvstore: recovery record %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	// Apply in log order (conflicting records are always log-ordered
	// because write locks serialize conflicting commits).
	for _, rec := range recs {
		s.applyRecovered(rec)
	}
	info := RecoveryInfo{Records: len(recs)}
	// Coverage chain over labeled records, sorted by From.
	labeled := make([]CommitRecord, 0, len(recs))
	for _, rec := range recs {
		if rec.To > rec.From {
			labeled = append(labeled, rec)
		}
	}
	sort.Slice(labeled, func(i, j int) bool { return labeled[i].From < labeled[j].From })
	cur := base
	for _, rec := range labeled {
		switch {
		case rec.From <= cur && rec.To > cur:
			cur = rec.To
		case rec.From > cur:
			info.Gaps++
		}
	}
	info.CoveredTo = cur
	s.advanceAnnounced(cur)
	return info, nil
}

// applyRecovered installs a recovered writeset directly (no locks: the
// store is not serving clients during recovery). Chains are pruned to
// the new version as they go — there are no snapshots to preserve.
func (s *Store) applyRecovered(rec CommitRecord) {
	seq := s.seqAlloc.Add(1)
	for i := range rec.WS.Ops {
		op := &rec.WS.Ops[i]
		sh := s.dataShardOf(op.Table, op.Key)
		sh.mu.Lock()
		t := sh.tables[op.Table]
		if t == nil {
			t = make(map[string][]rowVersion)
			sh.tables[op.Table] = t
		}
		rv := rowVersion{seq: seq}
		switch op.Kind {
		case core.OpDelete:
			rv.deleted = true
		default:
			base := map[string][]byte{}
			if op.Kind == core.OpUpdate {
				if prev, ok := visibleVersion(t[op.Key], seq-1); ok {
					for c, v := range prev.cols {
						base[c] = v
					}
				}
			}
			for _, c := range op.Cols {
				base[c.Col] = append([]byte(nil), c.Value...)
			}
			rv.cols = base
		}
		t[op.Key] = append(t[op.Key], rv)
		pruneChain(t, op.Key, seq)
		sh.mu.Unlock()
	}
	s.published.Store(seq)
	s.stats.commits.Add(1)
}

// latestRows collects, per table, the live rows at snapshot snap from
// every shard. The cols maps are shared immutable versions.
func (s *Store) latestRows(snap uint64) map[string]map[string]map[string][]byte {
	out := make(map[string]map[string]map[string][]byte)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for tname, t := range sh.tables {
			for k, versions := range t {
				rv, ok := visibleVersion(versions, snap)
				if !ok {
					continue
				}
				rows := out[tname]
				if rows == nil {
					rows = make(map[string]map[string][]byte)
					out[tname] = rows
				}
				rows[k] = rv.cols
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// Fingerprint returns a CRC-32 over the latest committed state of
// every table, with deterministic iteration order. Two replicas that
// applied the same global prefix produce identical fingerprints; the
// property tests lean on this heavily.
func (s *Store) Fingerprint() uint32 {
	snap, unpin := s.pinSnapshot()
	tables := s.latestRows(snap)
	unpin()
	h := crc32.NewIEEE()
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var scratch []byte
	for _, n := range names {
		rows := tables[n]
		keys := make([]string, 0, len(rows))
		for k := range rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rowCols := rows[k]
			scratch = scratch[:0]
			scratch = append(scratch, n...)
			scratch = append(scratch, 0)
			scratch = append(scratch, k...)
			scratch = append(scratch, 0)
			cols := make([]string, 0, len(rowCols))
			for c := range rowCols {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			for _, c := range cols {
				scratch = append(scratch, c...)
				scratch = append(scratch, 1)
				scratch = append(scratch, rowCols[c]...)
				scratch = append(scratch, 2)
			}
			h.Write(scratch)
		}
	}
	return h.Sum32()
}

// RowCount returns the number of live rows in a table at the latest
// committed state.
func (s *Store) RowCount(tableName string) int {
	snap, unpin := s.pinSnapshot()
	defer unpin()
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, versions := range sh.tables[tableName] {
			if _, ok := visibleVersion(versions, snap); ok {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}
