package mvstore

import (
	"fmt"
	"hash/crc32"
	"sort"

	"tashkent/internal/core"
	"tashkent/internal/wal"
)

// RecoveryInfo summarizes what a WAL replay found.
type RecoveryInfo struct {
	// Records is the number of complete commit records recovered.
	Records int
	// CoveredTo is the highest global version V such that the records
	// form an unbroken (from,to] chain from the recovery base up to V.
	// Commit records beyond a gap (possible under Tashkent-API, whose
	// concurrent commits may sync out of order) are applied too, but
	// the middleware re-applies everything after CoveredTo from the
	// certifier log, which is always safe because writesets carry
	// absolute values (paper §7.2).
	CoveredTo uint64
	// Gaps reports how many records lay beyond the contiguous chain.
	Gaps int
}

// RecoverFromWAL rebuilds a store from a crash-surviving WAL image,
// replaying commit records in log order on top of an empty database.
// base is the global version the empty state corresponds to (0 for a
// fresh database; the dump's covered version when replaying on top of
// a restored dump).
func RecoverFromWAL(cfg Config, image []byte, base uint64) (*Store, RecoveryInfo, error) {
	s := Open(cfg)
	info, err := s.replayWAL(image, base)
	if err != nil {
		s.Close()
		return nil, info, err
	}
	return s, info, nil
}

// replayWAL applies every commit record in the image and computes the
// contiguous coverage chain.
func (s *Store) replayWAL(image []byte, base uint64) (RecoveryInfo, error) {
	payloads, err := wal.Scan(image)
	if err != nil {
		return RecoveryInfo{}, fmt.Errorf("mvstore: recovery scan: %w", err)
	}
	var recs []CommitRecord
	for i, p := range payloads {
		rec, err := DecodeCommitRecord(p)
		if err != nil {
			return RecoveryInfo{}, fmt.Errorf("mvstore: recovery record %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	// Apply in log order (conflicting records are always log-ordered
	// because write locks serialize conflicting commits).
	for _, rec := range recs {
		s.applyRecovered(rec)
	}
	info := RecoveryInfo{Records: len(recs)}
	// Coverage chain over labeled records, sorted by From.
	labeled := make([]CommitRecord, 0, len(recs))
	for _, rec := range recs {
		if rec.To > rec.From {
			labeled = append(labeled, rec)
		}
	}
	sort.Slice(labeled, func(i, j int) bool { return labeled[i].From < labeled[j].From })
	cur := base
	for _, rec := range labeled {
		switch {
		case rec.From <= cur && rec.To > cur:
			cur = rec.To
		case rec.From > cur:
			info.Gaps++
		}
	}
	info.CoveredTo = cur
	s.mu.Lock()
	if cur > s.announced {
		s.announced = cur
	}
	s.mu.Unlock()
	return info, nil
}

// applyRecovered installs a recovered writeset directly (no locks: the
// store is not serving clients during recovery).
func (s *Store) applyRecovered(rec CommitRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mvccSeq++
	seq := s.mvccSeq
	for i := range rec.WS.Ops {
		op := &rec.WS.Ops[i]
		t := s.tables[op.Table]
		if t == nil {
			t = &table{rows: make(map[string][]rowVersion)}
			s.tables[op.Table] = t
		}
		rv := rowVersion{seq: seq}
		switch op.Kind {
		case core.OpDelete:
			rv.deleted = true
		default:
			base := map[string][]byte{}
			if op.Kind == core.OpUpdate {
				if prev := t.visible(op.Key, seq-1); prev != nil {
					for c, v := range prev.cols {
						base[c] = v
					}
				}
			}
			for _, c := range op.Cols {
				base[c.Col] = append([]byte(nil), c.Value...)
			}
			rv.cols = base
		}
		t.rows[op.Key] = append(t.rows[op.Key], rv)
	}
	s.stats.Commits++
}

// Fingerprint returns a CRC-32 over the latest committed state of
// every table, with deterministic iteration order. Two replicas that
// applied the same global prefix produce identical fingerprints; the
// property tests lean on this heavily.
func (s *Store) Fingerprint() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := crc32.NewIEEE()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var scratch []byte
	for _, n := range names {
		t := s.tables[n]
		keys := make([]string, 0, len(t.rows))
		for k := range t.rows {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			rv := t.visible(k, s.mvccSeq)
			if rv == nil {
				continue
			}
			scratch = scratch[:0]
			scratch = append(scratch, n...)
			scratch = append(scratch, 0)
			scratch = append(scratch, k...)
			scratch = append(scratch, 0)
			cols := make([]string, 0, len(rv.cols))
			for c := range rv.cols {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			for _, c := range cols {
				scratch = append(scratch, c...)
				scratch = append(scratch, 1)
				scratch = append(scratch, rv.cols[c]...)
				scratch = append(scratch, 2)
			}
			h.Write(scratch)
		}
	}
	return h.Sum32()
}

// RowCount returns the number of live rows in a table at the latest
// committed state.
func (s *Store) RowCount(tableName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tables[tableName]
	if t == nil {
		return 0
	}
	n := 0
	for k := range t.rows {
		if t.visible(k, s.mvccSeq) != nil {
			n++
		}
	}
	return n
}
