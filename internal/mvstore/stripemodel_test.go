package mvstore

// Fuzz coverage for the lock-striped engine: a randomized interleaved
// workload runs against both the striped store and a single-lock
// reference model of snapshot isolation, comparing every read, every
// commit outcome and the final state; and a concurrent invariant test
// hammers cross-shard commits while readers check for torn commits and
// snapshot instability. The concurrent test is most valuable under
// `go test -race`, which CI runs.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tashkent/internal/core"
)

// --- single-lock reference model ---

// modelVersion mirrors rowVersion.
type modelVersion struct {
	seq     uint64
	deleted bool
	cols    map[string][]byte
}

// modelStore is a deliberately naive single-mutex snapshot-isolation
// engine: one lock, no striping, no publication protocol, no version
// GC. It defines the semantics the striped engine must reproduce.
type modelStore struct {
	mu     sync.Mutex
	seq    uint64
	tables map[string]map[string][]modelVersion
	locks  map[core.ItemID]uint64
	nextID uint64
}

type modelTx struct {
	m        *modelStore
	id       uint64
	snapshot uint64
	writes   map[core.ItemID]*pendingWrite
	held     []core.ItemID
}

func newModel() *modelStore {
	return &modelStore{
		tables: make(map[string]map[string][]modelVersion),
		locks:  make(map[core.ItemID]uint64),
	}
}

func (m *modelStore) begin() *modelTx {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return &modelTx{
		m:        m,
		id:       m.nextID,
		snapshot: m.seq,
		writes:   make(map[core.ItemID]*pendingWrite),
	}
}

func (m *modelStore) visible(table, key string, snapshot uint64) (map[string][]byte, bool) {
	versions := m.tables[table][key]
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].seq <= snapshot {
			if versions[i].deleted {
				return nil, false
			}
			return versions[i].cols, true
		}
	}
	return nil, false
}

func (t *modelTx) read(table, key string) (map[string][]byte, bool) {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	item := core.ItemID{Table: table, Key: key}
	if pw, ok := t.writes[item]; ok {
		if pw.deleted {
			return nil, false
		}
		out := map[string][]byte{}
		if pw.kind == core.OpUpdate {
			if cols, ok := t.m.visible(table, key, t.snapshot); ok {
				for c, v := range cols {
					out[c] = v
				}
			}
		}
		for c, v := range pw.cols {
			out[c] = v
		}
		return out, true
	}
	return t.m.visible(table, key, t.snapshot)
}

// lockedByOther reports whether another transaction holds the write
// lock (the interleaving driver never issues a blocking write).
func (t *modelTx) lockedByOther(table, key string) bool {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	holder, ok := t.m.locks[core.ItemID{Table: table, Key: key}]
	return ok && holder != t.id
}

func (t *modelTx) write(op core.WriteOp) {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	item := op.Item()
	if _, ok := t.m.locks[item]; !ok {
		t.m.locks[item] = t.id
		t.held = append(t.held, item)
	}
	pw := t.writes[item]
	if pw == nil {
		pw = &pendingWrite{cols: map[string][]byte{}}
		t.writes[item] = pw
	}
	switch op.Kind {
	case core.OpInsert:
		pw.kind = core.OpInsert
		pw.deleted = false
		pw.cols = map[string][]byte{}
	case core.OpUpdate:
		if pw.kind != core.OpInsert {
			pw.kind = core.OpUpdate
		}
		pw.deleted = false
	case core.OpDelete:
		pw.kind = core.OpDelete
		pw.deleted = true
		pw.cols = map[string][]byte{}
	}
	for _, c := range op.Cols {
		pw.cols[c.Col] = append([]byte(nil), c.Value...)
	}
}

func (t *modelTx) finish(commit bool) {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	if commit && len(t.writes) > 0 {
		t.m.seq++
		for item, pw := range t.writes {
			tab := t.m.tables[item.Table]
			if tab == nil {
				tab = make(map[string][]modelVersion)
				t.m.tables[item.Table] = tab
			}
			mv := modelVersion{seq: t.m.seq, deleted: pw.deleted}
			if !pw.deleted {
				base := map[string][]byte{}
				if pw.kind == core.OpUpdate {
					if prev, ok := t.m.visible(item.Table, item.Key, t.m.seq-1); ok {
						for c, v := range prev {
							base[c] = v
						}
					}
				}
				for c, v := range pw.cols {
					base[c] = v
				}
				mv.cols = base
			}
			tab[item.Key] = append(tab[item.Key], mv)
		}
	}
	for _, item := range t.held {
		if t.m.locks[item] == t.id {
			delete(t.m.locks, item)
		}
	}
	t.held = nil
}

// --- interleaved equivalence fuzz ---

func colsEqual(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for c, v := range a {
		if !bytes.Equal(v, b[c]) {
			return false
		}
	}
	return true
}

// TestStripedMatchesSingleLockModel drives a randomized interleaving
// of many open transactions through the striped engine and the
// single-lock model in lockstep, comparing every read result, every
// commit outcome, and the final visible state. Low stripe counts force
// heavy cross-transaction sharing of shards; the default count checks
// the production layout.
func TestStripedMatchesSingleLockModel(t *testing.T) {
	tables := []string{"alpha", "beta"}
	colNames := []string{"a", "b", "c"}
	for _, stripes := range []int{1, 2, 0} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("stripes=%d/seed=%d", stripes, seed), func(t *testing.T) {
				s := Open(Config{Stripes: stripes})
				defer s.Close()
				m := newModel()
				r := rand.New(rand.NewSource(seed))

				type pair struct {
					st *Tx
					mt *modelTx
				}
				var open []pair
				beginPair := func() pair {
					st, err := s.Begin()
					if err != nil {
						t.Fatalf("Begin: %v", err)
					}
					return pair{st: st, mt: m.begin()}
				}
				randKey := func() (string, string) {
					return tables[r.Intn(len(tables))], fmt.Sprintf("k%02d", r.Intn(60))
				}
				checkRead := func(p pair, table, key string) {
					got, gotOK, err := p.st.Read(table, key)
					if err != nil {
						t.Fatalf("Read(%s,%s): %v", table, key, err)
					}
					want, wantOK := p.mt.read(table, key)
					if gotOK != wantOK || (gotOK && !colsEqual(got, want)) {
						t.Fatalf("Read(%s,%s) diverged: striped (%v,%v) model (%v,%v)",
							table, key, got, gotOK, want, wantOK)
					}
				}

				const ops = 3000
				for i := 0; i < ops; i++ {
					if len(open) == 0 || (len(open) < 6 && r.Intn(10) == 0) {
						open = append(open, beginPair())
						continue
					}
					pi := r.Intn(len(open))
					p := open[pi]
					switch c := r.Intn(100); {
					case c < 45: // read
						table, key := randKey()
						checkRead(p, table, key)
					case c < 75: // write (never one that would block)
						table, key := randKey()
						if p.mt.lockedByOther(table, key) {
							continue
						}
						kind := []core.OpKind{core.OpInsert, core.OpUpdate, core.OpDelete}[r.Intn(3)]
						op := core.WriteOp{Kind: kind, Table: table, Key: key}
						if kind != core.OpDelete {
							op.Cols = []core.ColUpdate{{
								Col:   colNames[r.Intn(len(colNames))],
								Value: []byte(fmt.Sprintf("v%d", r.Intn(1000))),
							}}
						}
						if err := p.st.write(op); err != nil {
							t.Fatalf("write %v on (%s,%s): %v", kind, table, key, err)
						}
						p.mt.write(op)
					case c < 90: // commit
						if err := p.st.Commit(); err != nil {
							t.Fatalf("Commit: %v", err)
						}
						p.mt.finish(true)
						open = append(open[:pi], open[pi+1:]...)
					default: // abort
						if err := p.st.Abort(); err != nil {
							t.Fatalf("Abort: %v", err)
						}
						p.mt.finish(false)
						open = append(open[:pi], open[pi+1:]...)
					}
				}
				for _, p := range open {
					if err := p.st.Abort(); err != nil {
						t.Fatalf("final Abort: %v", err)
					}
					p.mt.finish(false)
				}
				// Final state: every key of the universe must agree.
				final := beginPair()
				for _, table := range tables {
					for k := 0; k < 60; k++ {
						checkRead(final, table, fmt.Sprintf("k%02d", k))
					}
				}
				final.st.Abort()
				final.mt.finish(false)
			})
		}
	}
}

// --- concurrent invariants ---

// TestStripedConcurrentInvariants runs cross-shard update transactions
// against concurrent snapshot readers and checks the two invariants
// the commit-publication protocol must provide: a reader never sees a
// torn commit (the two halves of a pair are updated atomically, in
// different shards), and repeated reads within one transaction are
// stable. Run under -race in CI.
func TestStripedConcurrentInvariants(t *testing.T) {
	s := Open(Config{Stripes: 4, LockTimeout: 5 * time.Second})
	defer s.Close()

	const pairs = 8
	left := func(p int) string { return fmt.Sprintf("L%02d", p) }
	right := func(p int) string { return fmt.Sprintf("R%02d", p) }

	setup, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < pairs; p++ {
		v := map[string][]byte{"v": []byte(fmt.Sprintf("%016d", 0))}
		if err := setup.Insert("pa", left(p), v); err != nil {
			t.Fatal(err)
		}
		if err := setup.Insert("pb", right(p), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	var (
		stamp     atomic.Int64
		logMu     sync.Mutex
		committed = make([]map[string]struct{}, pairs) // pair → set of committed values
		writerErr atomic.Value
		done      = make(chan struct{})
	)
	for p := range committed {
		committed[p] = map[string]struct{}{fmt.Sprintf("%016d", 0): {}}
	}
	fail := func(format string, args ...interface{}) {
		writerErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}

	const writers, commitsPerWriter = 4, 150
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			for n := 0; n < commitsPerWriter; {
				p := r.Intn(pairs)
				val := fmt.Sprintf("%016d", stamp.Add(1))
				cols := map[string][]byte{"v": []byte(val)}
				tx, err := s.Begin()
				if err != nil {
					fail("writer Begin: %v", err)
					return
				}
				err = tx.Update("pa", left(p), cols)
				if err == nil {
					err = tx.Update("pb", right(p), cols)
				}
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Abort()
				}
				switch {
				case err == nil:
					logMu.Lock()
					committed[p][val] = struct{}{}
					logMu.Unlock()
					n++
				case IsRetryable(err):
					// first-committer-wins abort; try again
				default:
					fail("writer commit: %v", err)
					return
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	readPair := func(tx *Tx, p int) (string, string) {
		lv, ok1, err1 := tx.ReadCol("pa", left(p), "v")
		rv, ok2, err2 := tx.ReadCol("pb", right(p), "v")
		if err1 != nil || err2 != nil || !ok1 || !ok2 {
			t.Errorf("reader pair %d: (%v,%v,%v,%v)", p, ok1, err1, ok2, err2)
			return "", ""
		}
		return string(lv), string(rv)
	}
	var rwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		rwg.Add(1)
		go func(g int) {
			defer rwg.Done()
			r := rand.New(rand.NewSource(int64(200 + g)))
			for {
				select {
				case <-done:
					return
				default:
				}
				tx, err := s.Begin()
				if err != nil {
					t.Errorf("reader Begin: %v", err)
					return
				}
				p := r.Intn(pairs)
				l1, r1 := readPair(tx, p)
				if l1 != r1 {
					t.Errorf("torn commit visible: pair %d read %q / %q", p, l1, r1)
				}
				// Snapshot stability: the same reads later in the same
				// transaction, with commits racing in between.
				l2, r2 := readPair(tx, p)
				if l1 != l2 || r1 != r2 {
					t.Errorf("snapshot moved: pair %d first (%q,%q) then (%q,%q)", p, l1, r1, l2, r2)
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("reader Commit: %v", err)
					return
				}
			}
		}(g)
	}
	<-done
	rwg.Wait()
	if msg := writerErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	// Final state: each pair's halves agree and hold a value some
	// writer actually committed.
	tx, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	for p := 0; p < pairs; p++ {
		lv, rv := readPair(tx, p)
		if lv != rv {
			t.Fatalf("final state torn: pair %d %q / %q", p, lv, rv)
		}
		logMu.Lock()
		_, ok := committed[p][lv]
		logMu.Unlock()
		if !ok {
			t.Fatalf("final value of pair %d (%q) was never committed", p, lv)
		}
	}
	if got, want := s.Stats().Commits, int64(1+writers*commitsPerWriter); got != want {
		t.Fatalf("commit count %d, want %d", got, want)
	}
	if s.Fingerprint() != s.Fingerprint() {
		t.Fatal("Fingerprint not deterministic")
	}
}

// IsRetryable reports the benign SI abort classes a closed-loop
// client retries (mirrors workload.IsAbort without the import cycle).
func IsRetryable(err error) bool {
	return errors.Is(err, ErrWriteConflict) || errors.Is(err, ErrDeadlock) || errors.Is(err, ErrLockTimeout)
}
