package mvstore

// Lock-striped layout. The single global store mutex of the original
// engine serialized every row read, Begin and lock operation; under a
// read-mostly TPC-W mix that made one replica unable to use even its
// own cores (and paid a mutex round trip plus a defensive column-map
// clone per row read). The engine now splits that one lock into
// independent fine-grained domains:
//
//   - dataShard: row version chains, hash-striped by (table, key),
//     each under its own RWMutex. Snapshot reads take only the shard
//     read lock.
//   - lockStripe: the write-lock manager, striped the same way. The
//     waits-for deadlock graph needs a global view, so it lives under
//     its own small mutex (Store.waitMu).
//   - activeStripe: the registry of in-flight transactions, striped by
//     transaction id, consulted by GC (min active snapshot), Kill,
//     ConflictingActiveTxns and Crash.
//
// Commit publication keeps snapshots consistent without a global lock:
// a committer allocates seq from the atomic Store.seqAlloc, installs
// every row version stamped seq (per-shard write locks), and only then
// publishes seq — strictly in order — by advancing Store.published.
// New snapshots read Store.published, so a reader can never observe a
// torn commit: versions above its snapshot are simply skipped during
// chain scans.

import (
	"sync"

	"tashkent/internal/core"
)

// defaultStripes is the shard/stripe count used when Config.Stripes is
// zero. Power of two so the hash can mask instead of mod.
const defaultStripes = 64

// rowVersion is one MVCC version of a row. seq is the store-internal
// commit sequence that created it. cols is immutable once the version
// is installed; readers hand it out without cloning.
type rowVersion struct {
	seq     uint64
	deleted bool
	cols    map[string][]byte
}

// dataShard holds the version chains of the rows hashed onto it:
// table name → key → versions, newest last.
type dataShard struct {
	mu     sync.RWMutex
	tables map[string]map[string][]rowVersion
}

// lockStripe is one stripe of the write-lock manager.
type lockStripe struct {
	mu    sync.Mutex
	locks map[core.ItemID]*lockState
}

// activeStripe is one stripe of the in-flight transaction registry.
type activeStripe struct {
	mu  sync.Mutex
	txs map[uint64]*Tx
}

// itemHash is FNV-1a over table, a separator, and key. It must be
// allocation-free: it runs once per row read.
func itemHash(table, key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(table); i++ {
		h = (h ^ uint32(table[i])) * 16777619
	}
	h *= 16777619 // separator octet 0x00
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h
}

func (s *Store) dataShardOf(table, key string) *dataShard {
	return &s.shards[itemHash(table, key)&s.stripeMask]
}

func (s *Store) lockStripeOf(item core.ItemID) *lockStripe {
	return &s.lockStripes[itemHash(item.Table, item.Key)&s.stripeMask]
}

func (s *Store) activeStripeOf(txID uint64) *activeStripe {
	return &s.activeStripes[uint32(txID)&s.stripeMask]
}

// StripeSig is a conservative key-set summary of a writeset: one bit
// per (folded) store stripe touched. Two writesets whose signatures do
// not intersect cannot share a row — they hash to disjoint stripes —
// so their installs commute. Intersecting signatures may still be
// disjoint key sets (hash collision); treating them as conflicting is
// safe, merely less parallel. The parallel applier uses signatures to
// build its dependency edges without materializing key sets.
type StripeSig uint64

// Intersects reports whether the two summaries share a stripe.
func (a StripeSig) Intersects(b StripeSig) bool { return a&b != 0 }

// Signature computes the stripe signature of a writeset using the same
// FNV-1a striping that places its rows into data shards. Stripe counts
// above 64 fold onto the 64 signature bits (still conservative).
func (s *Store) Signature(ws *core.Writeset) StripeSig {
	if ws == nil {
		return 0
	}
	var sig StripeSig
	for i := range ws.Ops {
		op := &ws.Ops[i]
		sig |= 1 << (itemHash(op.Table, op.Key) & s.stripeMask & 63)
	}
	return sig
}

// visibleVersion returns the newest version with seq <= snapshot. ok
// is false if no such version exists or it is a deletion tombstone.
func visibleVersion(versions []rowVersion, snapshot uint64) (rowVersion, bool) {
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].seq <= snapshot {
			if versions[i].deleted {
				return rowVersion{}, false
			}
			return versions[i], true
		}
	}
	return rowVersion{}, false
}

// readCommitted returns the committed columns of a row visible at
// snapshot, under the owning shard's read lock. The returned map is a
// shared immutable version; callers must not modify it.
func (s *Store) readCommitted(table, key string, snapshot uint64) (map[string][]byte, bool) {
	sh := s.dataShardOf(table, key)
	sh.mu.RLock()
	rv, ok := visibleVersion(sh.tables[table][key], snapshot)
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return rv.cols, true
}

// pruneChain drops row versions no active snapshot can see: everything
// older than the newest version with seq <= minSnap. A row whose only
// remaining version is an old tombstone is removed entirely. Caller
// holds the shard write lock.
func pruneChain(t map[string][]rowVersion, key string, minSnap uint64) {
	versions := t[key]
	if len(versions) <= 1 {
		if len(versions) == 1 && versions[0].deleted && versions[0].seq <= minSnap {
			delete(t, key)
		}
		return
	}
	idx := -1
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].seq <= minSnap {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return
	}
	kept := versions[idx:]
	if len(kept) == 1 && kept[0].deleted && kept[0].seq <= minSnap {
		delete(t, key)
		return
	}
	// Copy down in place so the backing array can shrink over time.
	// Readers are unaffected: they copy rowVersion values (and the
	// cols maps those reference are immutable), never slot pointers.
	copy(versions, kept)
	t[key] = versions[:len(kept)]
}

// installWrite appends one committed row version stamped seq and
// prunes the chain, under the owning shard's write lock. For updates
// the new version's columns are the previous visible version's columns
// merged with the modified ones (full-row versions keep reads O(1)).
func (s *Store) installWrite(item core.ItemID, pw *pendingWrite, seq, minSnap uint64) {
	sh := s.dataShardOf(item.Table, item.Key)
	sh.mu.Lock()
	t := sh.tables[item.Table]
	if t == nil {
		t = make(map[string][]rowVersion)
		sh.tables[item.Table] = t
	}
	rv := rowVersion{seq: seq, deleted: pw.deleted}
	if !pw.deleted {
		base := map[string][]byte{}
		if pw.kind == core.OpUpdate {
			// Same-key installs are serialized by the row write lock,
			// so every earlier version of this key is already present.
			if prev, ok := visibleVersion(t[item.Key], seq-1); ok {
				for c, v := range prev.cols {
					base[c] = v
				}
			}
		}
		for c, v := range pw.cols {
			base[c] = v
		}
		rv.cols = base
	}
	t[item.Key] = append(t[item.Key], rv)
	pruneChain(t, item.Key, minSnap)
	sh.mu.Unlock()
}
