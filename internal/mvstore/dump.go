package mvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Dump support — the "DUMP DATA" command of paper §8.1. Tashkent-MW
// disables all WAL synchronous writes, which voids physical data
// integrity; to recover, the middleware periodically asks the database
// for a complete consistent copy and, after a crash, restores the most
// recent copy and re-applies the writesets committed since (§7.1 case
// 1). A dump is a consistent MVCC snapshot, so the database keeps
// processing transactions while dumping — at a throughput cost (the
// paper measures 13 % degradation during the 230-second dump).
//
// Dump file layout (all integers big-endian):
//
//	magic "TDMP" | uint64 coveredVersion | uint32 tableCount
//	per table: str16 name | uint32 rowCount
//	  per row: str16 key | uint16 colCount | per col: str16 name, bytes32 value
//	uint32 CRC-32 of everything above
//
// A torn dump (crash while dumping) fails the CRC and the middleware
// falls back to the previous copy — which is why it always keeps two.

var (
	// ErrBadDump reports a dump that fails validation (torn, truncated
	// or corrupt).
	ErrBadDump = errors.New("mvstore: invalid dump file")

	dumpMagic = []byte("TDMP")
)

// dumpChunkRows controls how many rows are serialized per data-disk
// charge while dumping; with ~16 rows per page this paces the dump's
// IO the way a sequential table scan would.
const dumpChunkRows = 256

// Dump produces a consistent snapshot copy of the database labeled
// with coveredVersion (the replica's global version at the time the
// middleware requested the dump). The call charges page reads to the
// data disk in chunks; concurrent transactions only ever contend on
// brief per-shard read locks. The dump registers a read-only
// placeholder in the active-transaction registry so inline GC cannot
// prune the versions its snapshot still needs.
func (s *Store) Dump(coveredVersion uint64) ([]byte, error) {
	if s.crashed.Load() {
		return nil, ErrCrashed
	}
	// Pin the snapshot for the duration so inline GC cannot prune the
	// versions it still needs.
	snap, unpin := s.pinSnapshot()
	defer unpin()

	// One pass over the shards collects each live row's version map —
	// the maps are immutable and the pin keeps them alive, so they can
	// be serialized after the shard locks are dropped.
	type dumpRow struct {
		key  string
		cols map[string][]byte
	}
	rowsByTable := make(map[string][]dumpRow)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for tname, t := range sh.tables {
			for k, versions := range t {
				if rv, ok := visibleVersion(versions, snap); ok {
					rowsByTable[tname] = append(rowsByTable[tname], dumpRow{key: k, cols: rv.cols})
				}
			}
		}
		sh.mu.RUnlock()
	}
	names := make([]string, 0, len(rowsByTable))
	for n := range rowsByTable {
		names = append(names, n)
	}
	sort.Strings(names)

	buf := append([]byte(nil), dumpMagic...)
	buf = binary.BigEndian.AppendUint64(buf, coveredVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(names)))

	for _, name := range names {
		live := rowsByTable[name]
		sort.Slice(live, func(i, j int) bool { return live[i].key < live[j].key })
		buf = appendDumpStr16(buf, name)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(live)))

		for start := 0; start < len(live); start += dumpChunkRows {
			end := start + dumpChunkRows
			if end > len(live) {
				end = len(live)
			}
			for _, row := range live[start:end] {
				buf = appendDumpStr16(buf, row.key)
				cols := make([]string, 0, len(row.cols))
				for c := range row.cols {
					cols = append(cols, c)
				}
				sort.Strings(cols)
				buf = binary.BigEndian.AppendUint16(buf, uint16(len(cols)))
				for _, c := range cols {
					buf = appendDumpStr16(buf, c)
					buf = binary.BigEndian.AppendUint32(buf, uint32(len(row.cols[c])))
					buf = append(buf, row.cols[c]...)
				}
			}
			// Charge the sequential scan + dump write to the data disk.
			s.dataDisk.PageOps((end - start) / 16)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// ValidateDump checks a dump's framing and checksum without restoring
// it, returning the covered version. The middleware uses it to pick
// the newest intact copy after a crash.
func ValidateDump(dump []byte) (coveredVersion uint64, err error) {
	if len(dump) < len(dumpMagic)+12+4 {
		return 0, fmt.Errorf("%w: too short", ErrBadDump)
	}
	body, sum := dump[:len(dump)-4], binary.BigEndian.Uint32(dump[len(dump)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return 0, fmt.Errorf("%w: checksum mismatch", ErrBadDump)
	}
	for i := range dumpMagic {
		if dump[i] != dumpMagic[i] {
			return 0, fmt.Errorf("%w: bad magic", ErrBadDump)
		}
	}
	return binary.BigEndian.Uint64(dump[len(dumpMagic):]), nil
}

// RestoreDump builds a fresh store from a dump file and returns it
// with the dump's covered version. The new store starts its MVCC
// sequence at 1 (every restored row is version 1) and its announce
// semaphore at coveredVersion. The store is not shared until this
// returns, so rows are installed without shard locks.
func RestoreDump(cfg Config, dump []byte) (*Store, uint64, error) {
	covered, err := ValidateDump(dump)
	if err != nil {
		return nil, 0, err
	}
	s := Open(cfg)
	pos := len(dumpMagic) + 8
	body := dump[:len(dump)-4]
	tableCount := int(binary.BigEndian.Uint32(body[pos:]))
	pos += 4
	s.seqAlloc.Store(1)
	s.published.Store(1)
	for ti := 0; ti < tableCount; ti++ {
		var name string
		name, pos, err = readDumpStr16(body, pos)
		if err != nil {
			break
		}
		if pos+4 > len(body) {
			err = errShortDump
			break
		}
		rowCount := int(binary.BigEndian.Uint32(body[pos:]))
		pos += 4
		for ri := 0; ri < rowCount; ri++ {
			var key string
			key, pos, err = readDumpStr16(body, pos)
			if err != nil {
				break
			}
			if pos+2 > len(body) {
				err = errShortDump
				break
			}
			nc := int(binary.BigEndian.Uint16(body[pos:]))
			pos += 2
			cols := make(map[string][]byte, nc)
			for ci := 0; ci < nc; ci++ {
				var cname string
				cname, pos, err = readDumpStr16(body, pos)
				if err != nil {
					break
				}
				if pos+4 > len(body) {
					err = errShortDump
					break
				}
				vl := int(binary.BigEndian.Uint32(body[pos:]))
				pos += 4
				if pos+vl > len(body) {
					err = errShortDump
					break
				}
				cols[cname] = append([]byte(nil), body[pos:pos+vl]...)
				pos += vl
			}
			if err != nil {
				break
			}
			sh := s.dataShardOf(name, key)
			t := sh.tables[name]
			if t == nil {
				t = make(map[string][]rowVersion)
				sh.tables[name] = t
			}
			t[key] = []rowVersion{{seq: 1, cols: cols}}
		}
		if err != nil {
			break
		}
	}
	if err != nil {
		s.Close()
		return nil, 0, fmt.Errorf("%w: %v", ErrBadDump, err)
	}
	s.advanceAnnounced(covered)
	// Restoring reads the dump and writes the data files back:
	// charge sequential IO proportional to size.
	s.dataDisk.PageOps(len(dump) / 8192)
	return s, covered, nil
}

var errShortDump = errors.New("truncated body")

func appendDumpStr16(buf []byte, v string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(v)))
	return append(buf, v...)
}

func readDumpStr16(buf []byte, pos int) (string, int, error) {
	if pos+2 > len(buf) {
		return "", pos, errShortDump
	}
	n := int(binary.BigEndian.Uint16(buf[pos:]))
	pos += 2
	if pos+n > len(buf) {
		return "", pos, errShortDump
	}
	return string(buf[pos : pos+n]), pos + n, nil
}
