package mvstore

// Deferred-publication labeled commits. CommitLabeledAsync is the
// install side of the parallel-apply split: the transaction's row
// versions are installed into the chains immediately — concurrently
// with other installers — but stamped with a provisional sequence no
// snapshot can see. Publication (allocating the real commit sequence,
// flipping the versions visible, advancing the commit-order semaphore
// and releasing the write locks) is deferred until the semaphore
// reaches the commit's from version, and happens strictly in global
// version order under the store's apply gate. Readers therefore never
// observe a torn commit or an out-of-order snapshot: visibility is
// exactly the sync-path invariant, only the expensive install work has
// moved off the ordered critical section.
//
// The caller (the proxy's dependency scheduler) guarantees that two
// commits writing the same key are never installed concurrently or out
// of version order: the earlier one must be *published* before the
// later one installs, because update-installs merge the previous
// visible columns and the chains must stay in sequence order. For
// disjoint writesets, absolute row values make installs commute, so
// any install interleaving yields the same published state.

import (
	"fmt"
	"sort"
	"sync"

	"tashkent/internal/core"
)

// provisionalBit marks an installed-but-unpublished row version. Real
// commit sequences are small counters; any seq with this bit set
// compares greater than every snapshot and is invisible to readers.
const provisionalBit = uint64(1) << 63

// PendingOutcome reports how a deferred-publication commit resolved.
type PendingOutcome int

const (
	// PendingPublished: the commit's versions became visible at its
	// global-order turn.
	PendingPublished PendingOutcome = iota + 1
	// PendingSuperseded: a catch-up applier announced past the commit's
	// range while it was pending; its provisional versions were
	// discarded (the newer state already covers them).
	PendingSuperseded
	// PendingCrashed: the store crashed before the commit's turn.
	PendingCrashed
	// PendingCanceled: CancelPendings withdrew the commit (a resync is
	// taking over the apply stream); its provisional versions were
	// discarded and its locks released as aborted.
	PendingCanceled
)

// pendingCommit is one installed-but-unpublished labeled commit
// awaiting its publication turn.
type pendingCommit struct {
	txID     uint64
	from, to uint64
	token    uint64 // provisional seq its row versions carry
	items    []core.ItemID
	held     []core.ItemID
	rows     int
	cb       func(PendingOutcome)

	outcome PendingOutcome // set by the drain before callbacks run
}

// AnnounceAsync registers a hollow pending commit: nothing to install,
// but the announce chain must advance through (from, to] at its turn
// (certifier barriers, fill no-ops, version ranges whose writesets are
// empty). cb fires when the range is announced (or superseded — for a
// hollow commit the two are equivalent — or the store crashes).
func (s *Store) AnnounceAsync(from, to uint64, cb func(PendingOutcome)) error {
	if to <= from {
		return fmt.Errorf("mvstore: AnnounceAsync(%d, %d): empty version range", from, to)
	}
	if err := s.registerPending(&pendingCommit{from: from, to: to, cb: cb}); err != nil {
		return err
	}
	s.drainPending()
	return nil
}

// CommitLabeledAsync is CommitLabeled with publication deferred to the
// commit-order semaphore: the commit record is logged and the row
// versions installed now (group-committable and parallelizable with
// concurrent installers), but they become visible — and the semaphore
// advances to to — only when the store's announced version reaches
// from, in strict global order. The write locks stay held until
// publication, preserving first-committer-wins. cb reports the final
// outcome; it may run synchronously (a range already superseded
// resolves before return) or from whichever goroutine drives the
// publication cascade.
//
// Callers must ensure no concurrent installer holds an earlier version
// of any written key un-published (see the package comment above).
func (tx *Tx) CommitLabeledAsync(from, to uint64, cb func(PendingOutcome)) error {
	if err := tx.check(); err != nil {
		return err
	}
	if to <= from {
		return fmt.Errorf("mvstore: CommitLabeledAsync(%d, %d): empty version range", from, to)
	}
	if tx.ws.Empty() {
		return fmt.Errorf("mvstore: CommitLabeledAsync on read-only transaction (use AnnounceAsync)")
	}
	s := tx.store
	if s.announced.Load() >= to {
		// Superseded before the WAL write, exactly like the sync path:
		// skip the record so recovery never replays this stale range
		// after newer ones.
		if err := tx.finishSuperseded(); err != nil {
			return err
		}
		cb(PendingSuperseded)
		return nil
	}
	rec := encodeCommitRecord(from, to, &tx.ws)
	if err := s.log.Append(rec); err != nil {
		return ErrCrashed
	}
	if !tx.state.CompareAndSwap(txActive, txDone) {
		if tx.state.Load() == txKilled {
			return ErrTxKilled
		}
		return ErrTxDone
	}
	tx.mu.Lock()
	held := tx.held
	tx.held = nil
	tx.mu.Unlock()
	if s.consumeFailNextCommit() {
		s.stats.aborts.Add(1)
		s.releaseItems(tx.id, held, false)
		s.unregister(tx.id)
		return ErrCommitRejected
	}
	token := provisionalBit | s.pendTok.Add(1)
	pc := &pendingCommit{
		txID:  tx.id,
		from:  from,
		to:    to,
		token: token,
		items: make([]core.ItemID, 0, len(tx.writes)),
		held:  held,
		rows:  len(tx.writes),
		cb:    cb,
	}
	s.installProvisional(tx, pc)
	// Out of the registry now: the pending holds row locks, not a
	// snapshot, so it must not depress the GC floor for its whole
	// pendency.
	s.unregister(tx.id)
	if err := s.registerPending(pc); err != nil {
		// Store crashed between install and registration; the
		// provisional versions are unreachable garbage in a dead store.
		return err
	}
	s.drainPending()
	return nil
}

// asyncFanoutMin is the writeset size above which a provisional
// install fans out across shard groups.
const asyncFanoutMin = 64

// asyncFanoutWorkers bounds the helper goroutines of one fanned-out
// install.
const asyncFanoutWorkers = 4

// installProvisional installs every buffered write stamped with the
// pending's provisional token. Large writesets are split by data shard
// and installed by a few helpers in parallel — installs of different
// shards share no lock (stripe-level install parallelism).
func (s *Store) installProvisional(tx *Tx, pc *pendingCommit) {
	minSnap := s.minActiveSnapshot()
	for item := range tx.writes {
		pc.items = append(pc.items, item)
	}
	if len(pc.items) < asyncFanoutMin {
		for _, item := range pc.items {
			s.installWrite(item, tx.writes[item], pc.token, minSnap)
		}
		return
	}
	groups := make(map[uint32][]core.ItemID)
	for _, item := range pc.items {
		sh := itemHash(item.Table, item.Key) & s.stripeMask
		groups[sh] = append(groups[sh], item)
	}
	work := make(chan []core.ItemID, len(groups))
	for _, g := range groups {
		work <- g
	}
	close(work)
	var wg sync.WaitGroup
	n := asyncFanoutWorkers
	if n > len(groups) {
		n = len(groups)
	}
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for g := range work {
				for _, item := range g {
					s.installWrite(item, tx.writes[item], pc.token, minSnap)
				}
			}
		}()
	}
	wg.Wait()
}

// registerPending inserts pc into the pending list (sorted by from).
// A store that crashed refuses the registration — the crash sweep may
// already have run, and a pending registered after it would never
// resolve.
func (s *Store) registerPending(pc *pendingCommit) error {
	s.pendMu.Lock()
	if s.crashed.Load() {
		s.pendMu.Unlock()
		return ErrCrashed
	}
	i := sort.Search(len(s.pendList), func(i int) bool { return s.pendList[i].from > pc.from })
	s.pendList = append(s.pendList, nil)
	copy(s.pendList[i+1:], s.pendList[i:])
	s.pendList[i] = pc
	s.pendMu.Unlock()
	return nil
}

// takeReadyPending pops the first pending whose from the announce
// cursor has reached. Caller then publishes or discards it.
func (s *Store) takeReadyPending(cur uint64) *pendingCommit {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	if len(s.pendList) == 0 || s.pendList[0].from > cur {
		return nil
	}
	pc := s.pendList[0]
	copy(s.pendList, s.pendList[1:])
	s.pendList[len(s.pendList)-1] = nil
	s.pendList = s.pendList[:len(s.pendList)-1]
	return pc
}

// drainPending publishes every pending commit whose turn has come, in
// global version order, cascading through consecutive ranges. It is
// called after anything that advances the announce semaphore (a gated
// sync commit, SetAnnounced, a new registration against an
// already-reached from). One drain pass batches the whole ready run:
// the order-semaphore waiters are woken once, at the end, instead of
// once per published version (WaitAnnounced wakeup batching).
func (s *Store) drainPending() {
	s.applyGate.Lock()
	if s.crashed.Load() {
		s.applyGate.Unlock()
		s.sweepPending()
		return
	}
	cur := s.announced.Load()
	start := cur
	var done []*pendingCommit
	for {
		pc := s.takeReadyPending(cur)
		if pc == nil {
			break
		}
		if pc.to <= cur {
			// Superseded while pending: a catch-up applier carried the
			// state past this range; discard the invisible versions
			// instead of publishing stale values over newer ones.
			s.discardProvisional(pc)
			pc.outcome = PendingSuperseded
			if pc.token != 0 {
				s.stats.superseded.Add(1)
				s.stats.commits.Add(1)
			}
			done = append(done, pc)
			continue
		}
		if pc.token != 0 {
			seq := s.seqAlloc.Add(1)
			s.stampProvisional(pc, seq)
			s.pubMu.Lock()
			for s.published.Load() != seq-1 {
				s.pubCond.Wait()
			}
			s.published.Store(seq)
			s.pubCond.Broadcast()
			s.pubMu.Unlock()
			s.stats.commits.Add(1)
		}
		pc.outcome = PendingPublished
		cur = pc.to
		done = append(done, pc)
	}
	if cur > start {
		s.advanceAnnounced(cur)
	}
	s.applyGate.Unlock()
	for _, pc := range done {
		if pc.token != 0 {
			// Locks release as committed either way: a superseded
			// pending's effects are covered by the newer state, so
			// first-committer-wins competitors must still abort.
			s.releaseItems(pc.txID, pc.held, true)
			if pc.outcome == PendingPublished {
				s.chargeCheckpoint(pc.rows)
			}
		}
		if pc.cb != nil {
			pc.cb(pc.outcome)
		}
	}
}

// stampProvisional flips a pending commit's row versions visible:
// every version carrying the provisional token is re-stamped with the
// real commit sequence, under the owning shard locks, grouped so each
// shard is locked once. The versions stay invisible until seq is
// published (snapshots are taken from the published prefix), so the
// stamp itself races nothing.
func (s *Store) stampProvisional(pc *pendingCommit, seq uint64) {
	s.forEachProvisional(pc, func(versions []rowVersion, i int) []rowVersion {
		versions[i].seq = seq
		return versions
	})
}

// discardProvisional splices a superseded pending commit's provisional
// versions back out of their chains.
func (s *Store) discardProvisional(pc *pendingCommit) {
	s.forEachProvisional(pc, func(versions []rowVersion, i int) []rowVersion {
		return append(versions[:i], versions[i+1:]...)
	})
}

// forEachProvisional locates each of pc's provisional row versions and
// applies f to it, one shard lock per shard group. f returns the
// chain's new contents.
func (s *Store) forEachProvisional(pc *pendingCommit, f func(versions []rowVersion, i int) []rowVersion) {
	byShard := make(map[uint32][]core.ItemID)
	for _, item := range pc.items {
		sh := itemHash(item.Table, item.Key) & s.stripeMask
		byShard[sh] = append(byShard[sh], item)
	}
	for shIdx, items := range byShard {
		sh := &s.shards[shIdx]
		sh.mu.Lock()
		for _, item := range items {
			t := sh.tables[item.Table]
			if t == nil {
				continue
			}
			versions := t[item.Key]
			for i := len(versions) - 1; i >= 0; i-- {
				if versions[i].seq == pc.token {
					t[item.Key] = f(versions, i)
					break
				}
			}
		}
		sh.mu.Unlock()
	}
}

// CancelPendings withdraws every deferred-publication commit that is
// not yet eligible to publish: ready prefixes are published first
// (one last drain), then the remainder — commits stuck behind a
// version gap — are discarded and their locks released as aborted.
// A resync calls this before serially re-applying from the certifier
// log: stuck pendings hold row locks indefinitely (they have no
// timeout), and the resync needs those rows. The canceled ranges all
// lie above the announce cursor, so the resync's catch-up pull covers
// them. Returns the number of commits canceled.
func (s *Store) CancelPendings() int {
	s.drainPending()
	s.applyGate.Lock()
	s.pendMu.Lock()
	pend := s.pendList
	s.pendList = nil
	s.pendMu.Unlock()
	for _, pc := range pend {
		if pc.token != 0 {
			s.discardProvisional(pc)
		}
	}
	s.applyGate.Unlock()
	for _, pc := range pend {
		if pc.token != 0 {
			// Released as aborted: the effects were discarded, so lock
			// waiters (the resync's appliers among them) retry and
			// proceed.
			s.releaseItems(pc.txID, pc.held, false)
		}
		if pc.cb != nil {
			pc.cb(PendingCanceled)
		}
	}
	return len(pend)
}

// sweepPending fails every registered pending after a crash or close:
// the store is dead, nothing will ever publish them, and their owners
// (the proxy's apply scheduler) must unblock.
func (s *Store) sweepPending() {
	s.pendMu.Lock()
	pend := s.pendList
	s.pendList = nil
	s.pendMu.Unlock()
	for _, pc := range pend {
		if pc.cb != nil {
			pc.cb(PendingCrashed)
		}
	}
}

// PendingApplies returns the number of installed-but-unpublished
// labeled commits (observability).
func (s *Store) PendingApplies() int {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	return len(s.pendList)
}
