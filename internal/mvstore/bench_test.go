package mvstore

// BenchmarkParallelRead* isolate the storage engine's snapshot-read
// path from the replication stack: they are the microbenchmarks behind
// the readscale experiment (cmd/tashbench -exp readscale) and the
// BENCH_read.json baseline. Run with -cpu 1,2,4 to see lock-striping
// scalability; even at -cpu 1 the striped engine wins on the removed
// per-read clone and global-mutex round trip.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

// benchStore builds a store preloaded with rows rows of a TPC-W-like
// shape (one fat desc column, one small stock column).
func benchStore(b *testing.B, rows int) (*Store, []string) {
	b.Helper()
	s := Open(Config{})
	b.Cleanup(s.Close)
	desc := make([]byte, 160)
	keys := make([]string, rows)
	for lo := 0; lo < rows; lo += 200 {
		tx, err := s.Begin()
		if err != nil {
			b.Fatal(err)
		}
		hi := lo + 200
		if hi > rows {
			hi = rows
		}
		for i := lo; i < hi; i++ {
			keys[i] = fmt.Sprintf("i%06d", i)
			if err := tx.Insert("items", keys[i], map[string][]byte{
				"stock": []byte("00010000"),
				"desc":  desc,
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	return s, keys
}

// BenchmarkParallelRead measures raw snapshot reads: one long-lived
// read transaction per goroutine, random row reads.
func BenchmarkParallelRead(b *testing.B) {
	s, keys := benchStore(b, 1000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		tx, err := s.Begin()
		if err != nil {
			b.Error(err)
			return
		}
		defer tx.Abort()
		r := rand.New(rand.NewSource(1))
		for pb.Next() {
			if _, ok, err := tx.Read("items", keys[r.Intn(len(keys))]); err != nil || !ok {
				b.Errorf("read: %v %v", ok, err)
				return
			}
		}
	})
}

// BenchmarkParallelReadTxn measures the full read-only transaction
// cycle the TPC-W browse mix performs: Begin, six row reads, Commit.
func BenchmarkParallelReadTxn(b *testing.B) {
	s, keys := benchStore(b, 1000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(1))
		for pb.Next() {
			tx, err := s.Begin()
			if err != nil {
				b.Error(err)
				return
			}
			for i := 0; i < 6; i++ {
				if _, _, err := tx.Read("items", keys[r.Intn(len(keys))]); err != nil {
					b.Error(err)
					return
				}
			}
			if err := tx.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelMixed is the TPC-W shopping shape at the engine
// level: 80 % six-read browse transactions, 20 % update transactions
// over disjoint per-goroutine rows.
func BenchmarkParallelMixed(b *testing.B) {
	s, keys := benchStore(b, 1000)
	var gid atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		me := gid.Add(1)
		r := rand.New(rand.NewSource(me))
		stock := []byte("00009999")
		n := 0
		for pb.Next() {
			n++
			tx, err := s.Begin()
			if err != nil {
				b.Error(err)
				return
			}
			if n%5 == 0 {
				key := fmt.Sprintf("o%03d-%06d", me, n)
				if err := tx.Insert("orders", key, map[string][]byte{"detail": stock}); err != nil {
					b.Error(err)
					return
				}
			} else {
				for i := 0; i < 6; i++ {
					if _, _, err := tx.Read("items", keys[r.Intn(len(keys))]); err != nil {
						b.Error(err)
						return
					}
				}
			}
			if err := tx.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelBegin measures transaction open/close overhead,
// which every proxied BEGIN pays.
func BenchmarkParallelBegin(b *testing.B) {
	s, _ := benchStore(b, 10)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tx, err := s.Begin()
			if err != nil {
				b.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
