package mvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/simdisk"
	"tashkent/internal/wal"
)

func openInstant(t *testing.T) *Store {
	t.Helper()
	s := Open(Config{})
	t.Cleanup(s.Close)
	return s
}

func mustBegin(t *testing.T, s *Store) *Tx {
	t.Helper()
	tx, err := s.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	return tx
}

func set(t *testing.T, s *Store, table, key, col, val string) {
	t.Helper()
	tx := mustBegin(t, s)
	if err := tx.Update(table, key, map[string][]byte{col: []byte(val)}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func get(t *testing.T, s *Store, table, key, col string) (string, bool) {
	t.Helper()
	tx := mustBegin(t, s)
	defer tx.Abort()
	v, ok, err := tx.ReadCol(table, key, col)
	if err != nil {
		t.Fatalf("ReadCol: %v", err)
	}
	return string(v), ok
}

func TestBasicReadWriteCommit(t *testing.T) {
	s := openInstant(t)
	set(t, s, "kv", "a", "v", "1")
	if v, ok := get(t, s, "kv", "a", "v"); !ok || v != "1" {
		t.Fatalf("read back = %q, %v", v, ok)
	}
	if _, ok := get(t, s, "kv", "missing", "v"); ok {
		t.Error("missing row reported found")
	}
	if _, ok := get(t, s, "nope", "a", "v"); ok {
		t.Error("missing table reported found")
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	s := openInstant(t)
	tx := mustBegin(t, s)
	if err := tx.Insert("t", "k", map[string][]byte{"a": []byte("1"), "b": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx = mustBegin(t, s)
	if err := tx.Update("t", "k", map[string][]byte{"b": []byte("3")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Update preserves untouched columns.
	tx = mustBegin(t, s)
	cols, ok, _ := tx.Read("t", "k")
	if !ok || string(cols["a"]) != "1" || string(cols["b"]) != "3" {
		t.Fatalf("after update: %v %v", cols, ok)
	}
	tx.Abort()

	tx = mustBegin(t, s)
	if err := tx.Delete("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := get(t, s, "t", "k", "a"); ok {
		t.Error("row visible after delete")
	}
}

func TestSnapshotIsolationReadersUnaffected(t *testing.T) {
	s := openInstant(t)
	set(t, s, "t", "x", "v", "old")

	reader := mustBegin(t, s)
	set(t, s, "t", "x", "v", "new") // concurrent committed update
	v, ok, err := reader.ReadCol("t", "x", "v")
	if err != nil || !ok {
		t.Fatalf("read: %v %v", err, ok)
	}
	if string(v) != "old" {
		t.Errorf("snapshot read = %q, want old (SI: snapshot fixed at begin)", v)
	}
	reader.Commit()
	if v, _ := get(t, s, "t", "x", "v"); v != "new" {
		t.Errorf("fresh read = %q, want new", v)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	s := openInstant(t)
	set(t, s, "t", "x", "v", "base")
	tx := mustBegin(t, s)
	if err := tx.Update("t", "x", map[string][]byte{"v": []byte("mine")}); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tx.ReadCol("t", "x", "v")
	if !ok || string(v) != "mine" {
		t.Errorf("own write = %q %v", v, ok)
	}
	tx.Delete("t", "x")
	if _, ok, _ := tx.ReadCol("t", "x", "v"); ok {
		t.Error("own delete still visible")
	}
	tx.Abort()
	if v, _ := get(t, s, "t", "x", "v"); v != "base" {
		t.Errorf("after abort = %q, want base", v)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	s := openInstant(t)
	set(t, s, "t", "x", "v", "0")

	t1 := mustBegin(t, s)
	t2 := mustBegin(t, s)
	if err := t1.Update("t", "x", map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		// t2 blocks on the write lock until t1 commits, then must fail.
		errCh <- t2.Update("t", "x", map[string][]byte{"v": []byte("2")})
	}()
	time.Sleep(20 * time.Millisecond) // let t2 block
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("t2 write err = %v, want ErrWriteConflict", err)
	}
	t2.Abort()
	if v, _ := get(t, s, "t", "x", "v"); v != "1" {
		t.Errorf("final = %q, want 1", v)
	}
	if s.Stats().WriteConflicts == 0 {
		t.Error("write conflict not counted")
	}
}

func TestAbortReleasesLockToWaiter(t *testing.T) {
	s := openInstant(t)
	set(t, s, "t", "x", "v", "0")
	t1 := mustBegin(t, s)
	t2 := mustBegin(t, s)
	if err := t1.Update("t", "x", map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- t2.Update("t", "x", map[string][]byte{"v": []byte("2")})
	}()
	time.Sleep(20 * time.Millisecond)
	t1.Abort()
	if err := <-errCh; err != nil {
		t.Fatalf("t2 write after t1 abort: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := get(t, s, "t", "x", "v"); v != "2" {
		t.Errorf("final = %q, want 2", v)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := openInstant(t)
	set(t, s, "t", "x", "v", "0")
	set(t, s, "t", "y", "v", "0")
	t1 := mustBegin(t, s)
	t2 := mustBegin(t, s)
	if err := t1.Update("t", "x", map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update("t", "y", map[string][]byte{"v": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- t1.Update("t", "y", map[string][]byte{"v": []byte("1")})
	}()
	time.Sleep(20 * time.Millisecond)
	// t2 → x would close the cycle: must be detected immediately.
	err := t2.Update("t", "x", map[string][]byte{"v": []byte("2")})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("t2 err = %v, want ErrDeadlock", err)
	}
	t2.Abort()
	if err := <-errCh; err != nil {
		t.Fatalf("t1's blocked write should succeed after victim abort: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Deadlocks != 1 {
		t.Errorf("Deadlocks = %d, want 1", s.Stats().Deadlocks)
	}
}

func TestLockTimeout(t *testing.T) {
	s := Open(Config{LockTimeout: 30 * time.Millisecond})
	defer s.Close()
	tx, _ := s.Begin()
	if err := tx.Update("t", "x", map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	other, _ := s.Begin()
	start := time.Now()
	err := other.Update("t", "x", map[string][]byte{"v": []byte("2")})
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("timeout returned too early")
	}
	other.Abort()
	tx.Abort()
}

func TestKillReleasesLocksAndDoomsTx(t *testing.T) {
	s := openInstant(t)
	victim := mustBegin(t, s)
	if err := victim.Update("t", "x", map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if !s.Kill(victim.ID()) {
		t.Fatal("Kill returned false for active tx")
	}
	if s.Kill(victim.ID()) {
		t.Error("double Kill should return false")
	}
	if err := victim.Commit(); !errors.Is(err, ErrTxKilled) {
		t.Errorf("commit after kill = %v, want ErrTxKilled", err)
	}
	// Lock must be free for others.
	tx := mustBegin(t, s)
	if err := tx.Update("t", "x", map[string][]byte{"v": []byte("2")}); err != nil {
		t.Fatalf("lock not released by Kill: %v", err)
	}
	tx.Commit()
	if s.Stats().Kills != 1 {
		t.Errorf("Kills = %d", s.Stats().Kills)
	}
}

func TestConflictingActiveTxns(t *testing.T) {
	s := openInstant(t)
	t1 := mustBegin(t, s)
	t1.Update("t", "x", map[string][]byte{"v": []byte("1")})
	t2 := mustBegin(t, s)
	t2.Update("t", "y", map[string][]byte{"v": []byte("1")})

	ws := &core.Writeset{Ops: []core.WriteOp{{Kind: core.OpUpdate, Table: "t", Key: "x"}}}
	got := s.ConflictingActiveTxns(ws, 0)
	if len(got) != 1 || got[0] != t1.ID() {
		t.Errorf("ConflictingActiveTxns = %v, want [%d]", got, t1.ID())
	}
	if got := s.ConflictingActiveTxns(ws, t1.ID()); len(got) != 0 {
		t.Errorf("excluded tx still returned: %v", got)
	}
	if got := s.ConflictingActiveTxns(&core.Writeset{}, 0); got != nil {
		t.Errorf("empty writeset conflicts = %v", got)
	}
	t1.Abort()
	t2.Abort()
}

func TestWriteHookObservesAndAborts(t *testing.T) {
	s := openInstant(t)
	tx := mustBegin(t, s)
	var seen []string
	tx.SetWriteHook(func(op core.WriteOp) error {
		seen = append(seen, op.Key)
		if op.Key == "forbidden" {
			return fmt.Errorf("pre-certification conflict")
		}
		return nil
	})
	if err := tx.Update("t", "ok", map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("t", "forbidden", map[string][]byte{"v": []byte("1")}); err == nil {
		t.Fatal("hook error did not propagate")
	}
	if len(seen) != 2 {
		t.Errorf("hook saw %v", seen)
	}
	// Writeset contains only the successful write.
	if n := len(tx.Writeset().Ops); n != 1 {
		t.Errorf("writeset has %d ops, want 1", n)
	}
	tx.Abort()
}

func TestReadOnlyCommitNoWAL(t *testing.T) {
	s := openInstant(t)
	set(t, s, "t", "x", "v", "1")
	walBefore := s.log.Records()
	tx := mustBegin(t, s)
	tx.ReadCol("t", "x", "v")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.log.Records() != walBefore {
		t.Error("read-only commit wrote a WAL record")
	}
	if s.Stats().ReadOnlyCommits != 1 {
		t.Errorf("ReadOnlyCommits = %d", s.Stats().ReadOnlyCommits)
	}
}

func TestTxDoneErrors(t *testing.T) {
	s := openInstant(t)
	tx := mustBegin(t, s)
	tx.Commit()
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit = %v", err)
	}
	if err := tx.Update("t", "x", nil); !errors.Is(err, ErrTxDone) {
		t.Errorf("write after commit = %v", err)
	}
	if _, _, err := tx.Read("t", "x"); !errors.Is(err, ErrTxDone) {
		t.Errorf("read after commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("abort after commit = %v", err)
	}
}

func TestCommitOrderedAnnouncesInOrder(t *testing.T) {
	s := openInstant(t)
	// Submit commits for versions 3,2,1 concurrently in reverse order;
	// they must become visible as 1,2,3.
	var mu sync.Mutex
	var announceOrder []uint64
	var wg sync.WaitGroup
	for _, v := range []uint64{3, 2, 1} {
		v := v
		tx := mustBegin(t, s)
		key := fmt.Sprintf("k%d", v)
		if err := tx.Update("t", key, map[string][]byte{"v": []byte{byte(v)}}); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := tx.CommitOrdered(v-1, v); err != nil {
				t.Errorf("CommitOrdered(%d): %v", v, err)
				return
			}
			mu.Lock()
			announceOrder = append(announceOrder, v)
			mu.Unlock()
		}()
		time.Sleep(5 * time.Millisecond) // stagger submissions, later versions first
	}
	wg.Wait()
	if len(announceOrder) != 3 {
		t.Fatalf("announced %v", announceOrder)
	}
	for i, v := range announceOrder {
		if v != uint64(i+1) {
			t.Fatalf("announce order %v, want [1 2 3]", announceOrder)
		}
	}
	if s.AnnouncedVersion() != 3 {
		t.Errorf("AnnouncedVersion = %d, want 3", s.AnnouncedVersion())
	}
}

func TestCommitOrderedGroupsFsyncs(t *testing.T) {
	// Concurrent ordered commits must share fsyncs — the whole point
	// of Tashkent-API.
	logDisk := simdisk.New(simdisk.Profile{FsyncLatency: 5 * time.Millisecond}, 1)
	s := Open(Config{LogDisk: logDisk})
	defer s.Close()
	const n = 16
	txs := make([]*Tx, n)
	for i := 0; i < n; i++ {
		tx, _ := s.Begin()
		tx.Update("t", fmt.Sprintf("k%d", i), map[string][]byte{"v": []byte{1}})
		txs[i] = tx
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := txs[i].CommitOrdered(uint64(i), uint64(i+1)); err != nil {
				t.Errorf("CommitOrdered(%d): %v", i, err)
			}
		}()
	}
	wg.Wait()
	if f := logDisk.Stats().Fsyncs; f >= n/2 {
		t.Errorf("%d fsyncs for %d concurrent ordered commits; expected grouping", f, n)
	}
}

func TestCommitOrderedGapTimesOut(t *testing.T) {
	s := Open(Config{OrderTimeout: 40 * time.Millisecond})
	defer s.Close()
	tx, _ := s.Begin()
	tx.Update("t", "k", map[string][]byte{"v": []byte{1}})
	// COMMIT 9 without COMMIT 1-8: the documented misuse.
	err := tx.CommitOrdered(8, 9)
	if !errors.Is(err, ErrOrderTimeout) {
		t.Fatalf("err = %v, want ErrOrderTimeout", err)
	}
}

func TestCommitOrderedValidation(t *testing.T) {
	s := openInstant(t)
	tx := mustBegin(t, s)
	tx.Update("t", "k", map[string][]byte{"v": []byte{1}})
	if err := tx.CommitOrdered(5, 5); err == nil {
		t.Error("empty version range accepted")
	}
	tx.Abort()
	ro := mustBegin(t, s)
	if err := ro.CommitOrdered(0, 1); err == nil {
		t.Error("read-only ordered commit accepted")
	}
	ro.Abort()
}

func TestCommitOrderedBatchRange(t *testing.T) {
	s := openInstant(t)
	// A grouped remote batch covering versions (0,3], then a local
	// commit at (3,4].
	batch := mustBegin(t, s)
	batch.Update("t", "a", map[string][]byte{"v": []byte("batch")})
	done := make(chan error, 1)
	local := mustBegin(t, s)
	local.Update("t", "b", map[string][]byte{"v": []byte("local")})
	go func() { done <- local.CommitOrdered(3, 4) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("local commit finished before batch announced: %v", err)
	default:
	}
	if err := batch.CommitOrdered(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if s.AnnouncedVersion() != 4 {
		t.Errorf("AnnouncedVersion = %d, want 4", s.AnnouncedVersion())
	}
}

func TestSetAnnounced(t *testing.T) {
	s := openInstant(t)
	s.SetAnnounced(10)
	if s.AnnouncedVersion() != 10 {
		t.Errorf("AnnouncedVersion = %d", s.AnnouncedVersion())
	}
	s.SetAnnounced(5) // must not regress
	if s.AnnouncedVersion() != 10 {
		t.Error("SetAnnounced regressed")
	}
	tx := mustBegin(t, s)
	tx.Update("t", "k", map[string][]byte{"v": []byte{1}})
	if err := tx.CommitOrdered(10, 11); err != nil {
		t.Fatalf("ordered commit after SetAnnounced: %v", err)
	}
}

func TestFailNextCommitSoftRecoveryPath(t *testing.T) {
	s := openInstant(t)
	s.FailNextCommit(1)
	tx := mustBegin(t, s)
	tx.Update("t", "k", map[string][]byte{"v": []byte{1}})
	if err := tx.Commit(); !errors.Is(err, ErrCommitRejected) {
		t.Fatalf("err = %v, want ErrCommitRejected", err)
	}
	// Next commit succeeds.
	set(t, s, "t", "k", "v", "2")
	if v, _ := get(t, s, "t", "k", "v"); v != "2" {
		t.Errorf("after retry = %q", v)
	}
}

func TestCrashDoomsEverything(t *testing.T) {
	s := Open(Config{})
	set(t, s, "t", "k", "v", "1")
	tx, _ := s.Begin()
	tx.Update("t", "other", map[string][]byte{"v": []byte{1}})
	img, corrupt := s.Crash()
	if corrupt {
		t.Error("sync-WAL store should never corrupt")
	}
	if len(img) == 0 {
		t.Error("sync-WAL crash image empty")
	}
	if err := tx.Commit(); err == nil {
		t.Error("commit on crashed store succeeded")
	}
	if _, err := s.Begin(); !errors.Is(err, ErrCrashed) {
		t.Errorf("Begin after crash = %v", err)
	}
	// Crash is idempotent.
	img2, _ := s.Crash()
	if len(img2) != len(img) {
		t.Error("second Crash returned different image")
	}
}

func TestCrashCorruptionModes(t *testing.T) {
	// Case 1: NoSync without integrity — corrupt after commits.
	s := Open(Config{WALMode: wal.NoSync})
	set(t, s, "t", "k", "v", "1")
	if _, corrupt := s.Crash(); !corrupt {
		t.Error("NoSync crash with commits should corrupt data files")
	}
	// Case 2: NoSync with KeepIntegrity — consistent but lossy.
	s2 := Open(Config{WALMode: wal.NoSync, KeepIntegrity: true})
	set(t, s2, "t", "k", "v", "1")
	if _, corrupt := s2.Crash(); corrupt {
		t.Error("KeepIntegrity crash should not corrupt")
	}
	// No commits: nothing to corrupt.
	s3 := Open(Config{WALMode: wal.NoSync})
	if _, corrupt := s3.Crash(); corrupt {
		t.Error("crash with no commits should not corrupt")
	}
}

func TestRecoverFromWALRestoresState(t *testing.T) {
	s := Open(Config{})
	set(t, s, "t", "a", "v", "1")
	set(t, s, "t", "b", "v", "2")
	set(t, s, "t", "a", "v", "3")
	fp := s.Fingerprint()
	img, corrupt := s.Crash()
	if corrupt {
		t.Fatal("unexpected corruption")
	}
	r, info, err := RecoverFromWAL(Config{}, img, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info.Records != 3 {
		t.Errorf("recovered %d records, want 3", info.Records)
	}
	if r.Fingerprint() != fp {
		t.Error("recovered state fingerprint differs")
	}
	if v, ok := func() (string, bool) {
		tx, _ := r.Begin()
		defer tx.Abort()
		v, ok, _ := tx.ReadCol("t", "a", "v")
		return string(v), ok
	}(); !ok || v != "3" {
		t.Errorf("recovered a = %q %v", v, ok)
	}
}

func TestRecoverNoSyncLosesCommits(t *testing.T) {
	s := Open(Config{WALMode: wal.NoSync, KeepIntegrity: true})
	set(t, s, "t", "a", "v", "1")
	img, corrupt := s.Crash()
	if corrupt {
		t.Fatal("KeepIntegrity should not corrupt")
	}
	r, info, err := RecoverFromWAL(Config{}, img, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info.Records != 0 {
		t.Errorf("NoSync recovery found %d records, want 0 (durability was off)", info.Records)
	}
}

func TestRecoveryCoverageChain(t *testing.T) {
	s := Open(Config{})
	// Labeled records: (0,3], (3,4], then a gap (7,8].
	for _, r := range [][2]uint64{{0, 3}, {3, 4}, {7, 8}} {
		tx, _ := s.Begin()
		tx.Update("t", fmt.Sprintf("k%d", r[1]), map[string][]byte{"v": []byte{1}})
		if err := tx.CommitLabeled(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	img, _ := s.Crash()
	r, info, err := RecoverFromWAL(Config{}, img, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if info.CoveredTo != 4 {
		t.Errorf("CoveredTo = %d, want 4 (record (7,8] is beyond the gap)", info.CoveredTo)
	}
	if info.Gaps != 1 {
		t.Errorf("Gaps = %d, want 1", info.Gaps)
	}
	if r.AnnouncedVersion() != 4 {
		t.Errorf("recovered announce semaphore = %d, want 4", r.AnnouncedVersion())
	}
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	s := openInstant(t)
	for i := 0; i < 50; i++ {
		set(t, s, "t", fmt.Sprintf("k%03d", i), "v", fmt.Sprintf("val%d", i))
	}
	set(t, s, "u", "only", "c", "x")
	tx := mustBegin(t, s)
	tx.Delete("t", "k010")
	tx.Commit()

	fp := s.Fingerprint()
	dump, err := s.Dump(42)
	if err != nil {
		t.Fatal(err)
	}
	if cv, err := ValidateDump(dump); err != nil || cv != 42 {
		t.Fatalf("ValidateDump = %d, %v", cv, err)
	}
	r, covered, err := RestoreDump(Config{}, dump)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if covered != 42 {
		t.Errorf("covered = %d", covered)
	}
	if r.Fingerprint() != fp {
		t.Error("restored fingerprint differs")
	}
	if r.RowCount("t") != 49 {
		t.Errorf("restored t rows = %d, want 49", r.RowCount("t"))
	}
	if r.AnnouncedVersion() != 42 {
		t.Errorf("restored announce = %d, want 42", r.AnnouncedVersion())
	}
}

func TestDumpConsistentUnderConcurrentWrites(t *testing.T) {
	s := openInstant(t)
	for i := 0; i < 200; i++ {
		set(t, s, "t", fmt.Sprintf("k%03d", i), "v", "init")
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			set(t, s, "t", fmt.Sprintf("k%03d", i%200), "v", "dirty")
			i++
		}
	}()
	dump, err := s.Dump(1)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateDump(dump); err != nil {
		t.Fatalf("dump taken under load is invalid: %v", err)
	}
	if _, _, err := RestoreDump(Config{}, dump); err != nil {
		t.Fatalf("restore of under-load dump: %v", err)
	}
}

func TestValidateDumpRejectsCorruption(t *testing.T) {
	s := openInstant(t)
	set(t, s, "t", "k", "v", "1")
	dump, _ := s.Dump(1)
	for _, cut := range []int{0, 1, len(dump) / 2, len(dump) - 1} {
		if _, err := ValidateDump(dump[:cut]); !errors.Is(err, ErrBadDump) {
			t.Errorf("truncated dump (%d bytes) accepted: %v", cut, err)
		}
	}
	bad := append([]byte(nil), dump...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := ValidateDump(bad); !errors.Is(err, ErrBadDump) {
		t.Errorf("corrupt dump accepted: %v", err)
	}
	if _, _, err := RestoreDump(Config{}, bad); !errors.Is(err, ErrBadDump) {
		t.Errorf("RestoreDump of corrupt dump: %v", err)
	}
}

func TestCommitRecordRoundTrip(t *testing.T) {
	ws := &core.Writeset{Ops: []core.WriteOp{{Kind: core.OpUpdate, Table: "t", Key: "k",
		Cols: []core.ColUpdate{{Col: "v", Value: []byte("x")}}}}}
	rec := encodeCommitRecord(3, 7, ws)
	got, err := DecodeCommitRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != 3 || got.To != 7 || !got.WS.Intersects(ws) {
		t.Errorf("decoded = %+v", got)
	}
	if _, err := DecodeCommitRecord(rec[:10]); err == nil {
		t.Error("short record accepted")
	}
}

func TestApplyWritesetReplaysOps(t *testing.T) {
	s := openInstant(t)
	ws := &core.Writeset{Ops: []core.WriteOp{
		{Kind: core.OpInsert, Table: "t", Key: "a", Cols: []core.ColUpdate{{Col: "v", Value: []byte("1")}}},
		{Kind: core.OpUpdate, Table: "t", Key: "a", Cols: []core.ColUpdate{{Col: "v", Value: []byte("2")}}},
	}}
	tx := mustBegin(t, s)
	if err := tx.ApplyWriteset(ws); err != nil {
		t.Fatal(err)
	}
	if err := tx.ApplyWriteset(nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, _ := get(t, s, "t", "a", "v"); v != "2" {
		t.Errorf("applied value = %q", v)
	}
}

func TestConcurrentDisjointWritersScale(t *testing.T) {
	s := openInstant(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx, err := s.Begin()
				if err != nil {
					errs <- err
					return
				}
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := tx.Update("t", key, map[string][]byte{"v": []byte{byte(i)}}); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Stats().Commits; got != 400 {
		t.Errorf("Commits = %d, want 400", got)
	}
	if s.ActiveTxns() != 0 {
		t.Errorf("ActiveTxns = %d after all done", s.ActiveTxns())
	}
}

func TestPageMissChargesDataDisk(t *testing.T) {
	dd := simdisk.New(simdisk.Instant(), 1)
	s := Open(Config{DataDisk: dd, PageMissEvery: 2})
	defer s.Close()
	set(t, s, "t", "k", "v", "1")
	for i := 0; i < 10; i++ {
		get(t, s, "t", "k", "v")
	}
	if dd.Stats().PageOps < 4 {
		t.Errorf("PageOps = %d, want >= 4 with PageMissEvery=2", dd.Stats().PageOps)
	}
}

func TestCheckpointChargesDataDisk(t *testing.T) {
	dd := simdisk.New(simdisk.Instant(), 1)
	s := Open(Config{DataDisk: dd, CheckpointEvery: 1})
	defer s.Close()
	for i := 0; i < 10; i++ {
		set(t, s, "t", fmt.Sprintf("k%d", i), "v", "1")
	}
	deadline := time.After(time.Second)
	for dd.Stats().PageOps < 10 {
		select {
		case <-deadline:
			t.Fatalf("PageOps = %d, want >= 10 (checkpointer is async)", dd.Stats().PageOps)
		case <-time.After(time.Millisecond):
		}
	}
}
