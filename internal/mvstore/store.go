// Package mvstore is a multi-version storage engine providing snapshot
// isolation, written from scratch as the paper's "off-the-shelf
// database" substitute (the paper used PostgreSQL 8.0.3).
//
// It reproduces every database behaviour the Tashkent experiments
// depend on:
//
//   - MVCC snapshots: a transaction reads the database version that
//     existed when it began and is unaffected by concurrent commits.
//   - Eager write locks with first-committer-wins: the first writer of
//     a row proceeds; competitors block; if the holder commits the
//     competitors abort with ErrWriteConflict (PostgreSQL's "could not
//     serialize access due to concurrent update").
//   - Deadlock detection on the waits-for graph, plus lock-wait
//     timeouts for cross-layer deadlocks the graph cannot see (a local
//     lock holder blocked behind the commit-order semaphore, paper
//     §8.2).
//   - Trigger-style writeset capture with a per-write hook so the
//     middleware can observe partial writesets during execution (eager
//     pre-certification, paper §8.2) and forcibly kill a conflicting
//     local transaction.
//   - A write-ahead log with group commit; synchronous commits can be
//     enabled (Base, Tashkent-API) or disabled (Tashkent-MW).
//   - The extended commit API: CommitOrdered(from, to) writes the
//     commit record immediately (groupable with concurrent commits)
//     but announces the commit only when the database version reaches
//     `from` — the 20-line semaphore change of paper §8.3.
//   - DUMP/RESTORE for middleware-driven recovery, WAL replay
//     recovery, and crash simulation with or without physical data
//     integrity (paper §7.1 cases 1 and 2).
//
// Internally the engine is lock-striped: row version chains and the
// write-lock manager are hash-striped across shards with independent
// (RW)mutexes, snapshots are taken from an atomic published commit
// sequence, and the remaining global concerns — commit publication
// order, the commit-order semaphore, the waits-for deadlock graph —
// each live under their own small lock. Snapshot reads therefore never
// touch a global mutex. See shard.go for the layout and the
// commit-publication invariant.
package mvstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/simdisk"
	"tashkent/internal/wal"
)

// Errors returned by transaction operations.
var (
	// ErrWriteConflict is the SI first-committer-wins abort: another
	// transaction holding the write lock committed first.
	ErrWriteConflict = errors.New("mvstore: write-write conflict (concurrent update committed)")
	// ErrDeadlock reports a waits-for cycle; the requesting transaction
	// is chosen as the victim.
	ErrDeadlock = errors.New("mvstore: deadlock detected")
	// ErrLockTimeout reports a lock wait exceeding Config.LockTimeout,
	// the escape hatch for deadlocks spanning the commit-order
	// semaphore which the waits-for graph cannot observe.
	ErrLockTimeout = errors.New("mvstore: lock wait timeout")
	// ErrOrderTimeout reports a CommitOrdered wait that never became
	// eligible — the misuse case of the extended API (e.g. COMMIT 9
	// without COMMIT 1-8, paper §5.2).
	ErrOrderTimeout = errors.New("mvstore: commit-order wait timeout")
	// ErrTxDone reports use of a finished transaction handle.
	ErrTxDone = errors.New("mvstore: transaction already finished")
	// ErrTxKilled reports that the middleware forcibly aborted this
	// transaction (eager pre-certification victim).
	ErrTxKilled = errors.New("mvstore: transaction killed")
	// ErrCrashed reports an operation against a crashed store.
	ErrCrashed = errors.New("mvstore: database has crashed")
	// ErrCommitRejected models the database unilaterally aborting a
	// COMMIT (paper §8.1 "soft recovery": out of disk space, garbage
	// collection, backend crash). Injected by tests via FailNextCommit.
	ErrCommitRejected = errors.New("mvstore: commit rejected by database")
)

// Config parameterizes a store instance.
type Config struct {
	// DataDisk services buffer-pool misses, checkpoint write-back and
	// dump IO. nil means an instant (ram) channel.
	DataDisk *simdisk.Disk
	// LogDisk services WAL fsyncs. nil means an instant channel.
	LogDisk *simdisk.Disk
	// WALMode selects synchronous (SyncCommits) or asynchronous
	// (NoSync) commit records.
	WALMode wal.Mode
	// KeepIntegrity, meaningful with WALMode == NoSync, selects the
	// paper's §7.1 case 2: page writes still obey write-ahead rules so
	// a crash loses recent commits but never corrupts pages. Without
	// it (case 1), a crash with unsynced activity corrupts the data
	// files and recovery must come from a dump.
	KeepIntegrity bool
	// PageMissEvery makes every Nth row read cost one data-page IO,
	// modelling buffer-pool misses (0 disables; AllUpdates and TPC-B
	// run essentially from memory, TPC-W does not).
	PageMissEvery int
	// CheckpointEvery flushes one dirty-page write-back to the data
	// disk for every N committed row writes (0 disables). This is the
	// "writing back dirty database pages" stream that congests a
	// shared IO channel.
	CheckpointEvery int
	// LockTimeout bounds write-lock waits (0 = a generous default).
	LockTimeout time.Duration
	// OrderTimeout bounds CommitOrdered announce waits (0 = default).
	OrderTimeout time.Duration
	// Stripes sets the data-shard / lock-stripe count, rounded up to a
	// power of two (0 = 64). Lowering it is only useful in tests that
	// want to force cross-shard interleavings onto few stripes.
	Stripes int
}

const (
	defaultLockTimeout  = 10 * time.Second
	defaultOrderTimeout = 10 * time.Second
)

// lockWaiter is one transaction blocked on a write lock.
type lockWaiter struct {
	txID uint64
	ch   chan error // buffered(1): receives nil (retry) or a fatal error
}

// lockState is an acquired row write lock.
type lockState struct {
	holder  uint64
	waiters []lockWaiter
}

// orderWaiter is a CommitOrdered call blocked on the announce
// semaphore.
type orderWaiter struct {
	from uint64
	ch   chan struct{} // closed when announced >= from
}

// Stats is a snapshot of store activity counters.
type Stats struct {
	Commits         int64
	ReadOnlyCommits int64
	Aborts          int64
	Deadlocks       int64
	WriteConflicts  int64
	Kills           int64
	RowReads        int64
	RowWrites       int64
	// SupersededCommits counts labeled commits that skipped
	// installation because a catch-up applier (resync) had already
	// carried the state past their version range.
	SupersededCommits int64
}

// statsCounters are the live activity counters, all atomic so hot
// paths never serialize on a stats lock.
type statsCounters struct {
	commits         atomic.Int64
	readOnlyCommits atomic.Int64
	aborts          atomic.Int64
	deadlocks       atomic.Int64
	writeConflicts  atomic.Int64
	kills           atomic.Int64
	rowReads        atomic.Int64
	rowWrites       atomic.Int64
	superseded      atomic.Int64
}

// Store is one database instance. All methods are safe for concurrent
// use by many client sessions.
type Store struct {
	cfg        Config
	stripeMask uint32

	shards        []dataShard    // row version chains
	lockStripes   []lockStripe   // write-lock manager
	activeStripes []activeStripe // in-flight transaction registry

	// Commit sequencing: seqAlloc hands out install sequences,
	// published is the highest fully installed prefix (what new
	// snapshots read). published only ever advances by one, in seq
	// order, under pubMu (see Tx.applyCommit).
	seqAlloc  atomic.Uint64
	published atomic.Uint64
	pubMu     sync.Mutex
	pubCond   *sync.Cond

	// Commit-order semaphore (global version space).
	announced atomic.Uint64 // read lock-free; advanced under orderMu
	orderMu   sync.Mutex
	orderWait []orderWaiter

	// applyGate serializes the install+announce step of *labeled*
	// commits so globally-versioned writesets always reach the row
	// chains in announce order. In healthy operation the gate is
	// uncontended (the proxy sequencer / order semaphore already
	// serialize labeled applies); it exists for the degraded paths —
	// a resync racing in-flight remote appliers after lost responses
	// or a certifier failover — where two appliers can hold
	// overlapping version ranges. The loser of the gate finds its
	// range already announced and skips (supersededCommits), instead
	// of installing stale values over newer ones.
	applyGate sync.Mutex

	// Deferred-publication labeled commits (CommitLabeledAsync):
	// installed with a provisional sequence, awaiting their announce
	// turn. pendList is sorted by from; drainPending publishes ready
	// prefixes under applyGate. See async.go.
	pendMu   sync.Mutex
	pendList []*pendingCommit
	pendTok  atomic.Uint64

	// Waits-for deadlock graph: blocked tx → lock holder it waits on.
	// Edges are added and removed only by the waiting transaction.
	waitMu   sync.Mutex
	waitsFor map[uint64]uint64

	nextTxID atomic.Uint64

	crashMu sync.Mutex // serializes the crash/close transition
	crashed atomic.Bool
	crashCh chan struct{} // closed on crash, unblocks waiters

	stats          statsCounters
	readTick       atomic.Int64 // page-miss modelling counter
	dirtyTick      atomic.Int64 // checkpoint modelling counter
	failNextCommit atomic.Int32 // fault injection: reject next N commits

	log      *wal.WAL
	dataDisk *simdisk.Disk
	logDisk  *simdisk.Disk
}

// Open creates an empty store.
func Open(cfg Config) *Store {
	if cfg.DataDisk == nil {
		cfg.DataDisk = simdisk.New(simdisk.Instant(), 0)
	}
	if cfg.LogDisk == nil {
		cfg.LogDisk = simdisk.New(simdisk.Instant(), 0)
	}
	if cfg.WALMode == 0 {
		cfg.WALMode = wal.SyncCommits
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = defaultLockTimeout
	}
	if cfg.OrderTimeout == 0 {
		cfg.OrderTimeout = defaultOrderTimeout
	}
	stripes := cfg.Stripes
	if stripes <= 0 {
		stripes = defaultStripes
	}
	for stripes&(stripes-1) != 0 {
		stripes++
	}
	s := &Store{
		cfg:           cfg,
		stripeMask:    uint32(stripes - 1),
		shards:        make([]dataShard, stripes),
		lockStripes:   make([]lockStripe, stripes),
		activeStripes: make([]activeStripe, stripes),
		waitsFor:      make(map[uint64]uint64),
		crashCh:       make(chan struct{}),
		log:           wal.New(cfg.LogDisk, cfg.WALMode),
		dataDisk:      cfg.DataDisk,
		logDisk:       cfg.LogDisk,
	}
	s.pubCond = sync.NewCond(&s.pubMu)
	for i := range s.shards {
		s.shards[i].tables = make(map[string]map[string][]rowVersion)
	}
	for i := range s.lockStripes {
		s.lockStripes[i].locks = make(map[core.ItemID]*lockState)
	}
	for i := range s.activeStripes {
		s.activeStripes[i].txs = make(map[uint64]*Tx)
	}
	return s
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	return Stats{
		Commits:           s.stats.commits.Load(),
		ReadOnlyCommits:   s.stats.readOnlyCommits.Load(),
		Aborts:            s.stats.aborts.Load(),
		Deadlocks:         s.stats.deadlocks.Load(),
		WriteConflicts:    s.stats.writeConflicts.Load(),
		Kills:             s.stats.kills.Load(),
		RowReads:          s.stats.rowReads.Load(),
		RowWrites:         s.stats.rowWrites.Load(),
		SupersededCommits: s.stats.superseded.Load(),
	}
}

// AnnouncedVersion returns the current value of the commit-order
// semaphore (the highest globally ordered version announced by
// CommitOrdered, or whatever SetAnnounced established at recovery).
func (s *Store) AnnouncedVersion() uint64 {
	return s.announced.Load()
}

// SetAnnounced initializes the commit-order semaphore, used when a
// recovered replica rejoins at a nonzero global version. Advancing the
// semaphore may make deferred-publication commits eligible, so the
// pending drain runs after.
func (s *Store) SetAnnounced(v uint64) {
	s.advanceAnnounced(v)
	s.drainPending()
}

// advanceAnnounced raises the commit-order semaphore and releases
// waiters whose from version has been reached.
func (s *Store) advanceAnnounced(v uint64) {
	s.orderMu.Lock()
	if v > s.announced.Load() {
		s.announced.Store(v)
		kept := s.orderWait[:0]
		for _, w := range s.orderWait {
			if w.from <= v {
				close(w.ch)
			} else {
				kept = append(kept, w)
			}
		}
		s.orderWait = kept
	}
	s.orderMu.Unlock()
}

// InternalSeq returns the store's internal MVCC commit sequence (the
// published prefix — what a new snapshot would read).
func (s *Store) InternalSeq() uint64 {
	return s.published.Load()
}

// ActiveTxns returns the number of in-flight transactions.
func (s *Store) ActiveTxns() int {
	n := 0
	for i := range s.activeStripes {
		st := &s.activeStripes[i]
		st.mu.Lock()
		n += len(st.txs)
		st.mu.Unlock()
	}
	return n
}

// FailNextCommit arms fault injection: the next n update commits are
// rejected with ErrCommitRejected after their WAL append, exercising
// the middleware's soft-recovery path.
func (s *Store) FailNextCommit(n int) {
	s.failNextCommit.Store(int32(n))
}

// consumeFailNextCommit reports whether this commit should be rejected
// by the armed fault injection.
func (s *Store) consumeFailNextCommit() bool {
	for {
		v := s.failNextCommit.Load()
		if v <= 0 {
			return false
		}
		if s.failNextCommit.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// Begin starts a transaction against the latest committed snapshot.
func (s *Store) Begin() (*Tx, error) {
	if s.crashed.Load() {
		return nil, ErrCrashed
	}
	id := s.nextTxID.Add(1)
	tx := &Tx{store: s, id: id}
	st := s.activeStripeOf(id)
	st.mu.Lock()
	// Snapshot inside the registry lock: a committer computing the GC
	// floor scans this stripe under the same lock, so it either sees
	// this transaction or finishes its scan before the snapshot here is
	// taken (and the snapshot is then >= the floor it pruned with).
	tx.snapshot = s.published.Load()
	st.txs[id] = tx
	st.mu.Unlock()
	if s.crashed.Load() {
		// Crash raced with registration and its kill sweep may have
		// missed us; take ourselves back out.
		s.unregister(id)
		return nil, ErrCrashed
	}
	return tx, nil
}

// pinSnapshot registers a read-only placeholder in the active
// registry (same protocol as Begin, so the GC-floor ordering argument
// applies) and returns the pinned snapshot. Long multi-shard scans —
// Dump, Fingerprint, RowCount — use it so prune-on-commit cannot drop
// versions their snapshot still needs mid-scan. unpin releases it.
func (s *Store) pinSnapshot() (snap uint64, unpin func()) {
	pin := &Tx{store: s, id: s.nextTxID.Add(1)}
	st := s.activeStripeOf(pin.id)
	st.mu.Lock()
	pin.snapshot = s.published.Load()
	st.txs[pin.id] = pin
	st.mu.Unlock()
	return pin.snapshot, func() { s.unregister(pin.id) }
}

// unregister removes a finished transaction from the active registry.
func (s *Store) unregister(txID uint64) {
	st := s.activeStripeOf(txID)
	st.mu.Lock()
	delete(st.txs, txID)
	st.mu.Unlock()
}

// minActiveSnapshot returns the oldest snapshot any active transaction
// reads from; row versions at or below it, except the newest such
// version, are unreachable and can be garbage collected (PostgreSQL's
// vacuum, done inline at commit). The published floor is loaded before
// the registry scan — see Begin for why that ordering makes the prune
// safe against concurrently starting readers.
func (s *Store) minActiveSnapshot() uint64 {
	min := s.published.Load()
	for i := range s.activeStripes {
		st := &s.activeStripes[i]
		st.mu.Lock()
		for _, tx := range st.txs {
			if tx.snapshot < min {
				min = tx.snapshot
			}
		}
		st.mu.Unlock()
	}
	return min
}

// acquireLock obtains the write lock on item for tx, blocking behind a
// current holder. It returns ErrWriteConflict if the holder commits,
// ErrDeadlock on a waits-for cycle, ErrLockTimeout after
// Config.LockTimeout, and ErrTxKilled/ErrCrashed as appropriate.
func (s *Store) acquireLock(tx *Tx, item core.ItemID) error {
	st := s.lockStripeOf(item)
	deadline := time.Now().Add(s.cfg.LockTimeout)
	// One reusable timer for the whole wait (a retry loop of
	// time.After calls would leak a pending timer per iteration until
	// the deadline fires).
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if s.crashed.Load() {
			return ErrCrashed
		}
		if tx.state.Load() == txKilled {
			return ErrTxKilled
		}
		st.mu.Lock()
		ls := st.locks[item]
		if ls == nil {
			// Grant. The held-list append and the kill check are one
			// critical section, so Kill either sees this lock in
			// tx.held or prevents the grant.
			tx.mu.Lock()
			if tx.state.Load() == txKilled {
				tx.mu.Unlock()
				st.mu.Unlock()
				return ErrTxKilled
			}
			st.locks[item] = &lockState{holder: tx.id}
			tx.held = append(tx.held, item)
			tx.mu.Unlock()
			st.mu.Unlock()
			return nil
		}
		if ls.holder == tx.id {
			st.mu.Unlock()
			return nil
		}
		// Would block: register the edge and run the deadlock check
		// while still holding the stripe lock, so the graph cannot
		// miss a cycle formed by two concurrent blockers.
		s.waitMu.Lock()
		if s.wouldDeadlock(tx.id, ls.holder) {
			s.waitMu.Unlock()
			st.mu.Unlock()
			s.stats.deadlocks.Add(1)
			return ErrDeadlock
		}
		s.waitsFor[tx.id] = ls.holder
		s.waitMu.Unlock()
		w := lockWaiter{txID: tx.id, ch: make(chan error, 1)}
		ls.waiters = append(ls.waiters, w)
		st.mu.Unlock()

		if timer == nil {
			timer = time.NewTimer(time.Until(deadline))
		} else {
			timer.Reset(time.Until(deadline))
		}
		var err error
		var timedOut bool
		select {
		case err = <-w.ch:
		case <-timer.C:
			timedOut = true
		case <-s.crashCh:
			err = ErrCrashed
		}
		if !timedOut && !timer.Stop() {
			<-timer.C // drain so the next Reset starts clean
		}
		s.waitMu.Lock()
		delete(s.waitsFor, tx.id)
		s.waitMu.Unlock()
		if timedOut {
			st.mu.Lock()
			// Remove ourselves from the waiter queue unless a signal
			// raced in (then honor the signal instead).
			select {
			case err = <-w.ch:
			default:
				s.removeWaiterLocked(st, item, tx.id)
				st.mu.Unlock()
				return ErrLockTimeout
			}
			st.mu.Unlock()
		}
		if err != nil {
			return err
		}
		// Holder aborted; retry acquisition.
	}
}

// wouldDeadlock reports whether making waiter wait on holder closes a
// cycle in the waits-for graph. Caller holds s.waitMu.
func (s *Store) wouldDeadlock(waiter, holder uint64) bool {
	seen := 0
	cur := holder
	for {
		if cur == waiter {
			return true
		}
		next, ok := s.waitsFor[cur]
		if !ok {
			return false
		}
		cur = next
		if seen++; seen > len(s.waitsFor)+1 {
			return false // defensive: graph mutated under us
		}
	}
}

// removeWaiterLocked drops txID from item's waiter queue. Caller holds
// the stripe lock.
func (s *Store) removeWaiterLocked(st *lockStripe, item core.ItemID, txID uint64) {
	ls := st.locks[item]
	if ls == nil {
		return
	}
	for i := range ls.waiters {
		if ls.waiters[i].txID == txID {
			ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
			return
		}
	}
}

// releaseItems frees the given locks held by txID. If committed,
// waiters receive ErrWriteConflict (first-committer-wins); if aborted,
// they receive nil and retry.
func (s *Store) releaseItems(txID uint64, held []core.ItemID, committed bool) {
	for _, item := range held {
		st := s.lockStripeOf(item)
		st.mu.Lock()
		ls := st.locks[item]
		if ls == nil || ls.holder != txID {
			st.mu.Unlock()
			continue
		}
		for _, w := range ls.waiters {
			if committed {
				s.stats.writeConflicts.Add(1)
				w.ch <- ErrWriteConflict
			} else {
				w.ch <- nil
			}
		}
		delete(st.locks, item)
		st.mu.Unlock()
	}
}

// killTx forcibly finishes an active transaction: its state latches to
// killed (losing any race with a concurrent commit latch), its locks
// are released and waiters retried, and it leaves the registry.
// Returns false if the transaction already finished or was killed.
func (s *Store) killTx(tx *Tx) bool {
	if !tx.state.CompareAndSwap(txActive, txKilled) {
		return false
	}
	tx.mu.Lock()
	held := tx.held
	tx.held = nil
	tx.mu.Unlock()
	s.releaseItems(tx.id, held, false)
	s.unregister(tx.id)
	return true
}

// Kill forcibly aborts an active transaction by id: its locks are
// released, buffered writes discarded, and any subsequent operation on
// the handle returns ErrTxKilled. This is the mechanism the middleware
// uses to resolve local-vs-remote writeset conflicts eagerly
// (paper §8.2: "the proxy aborts the conflicting local update
// transaction, which allows the remote writeset to be executed").
func (s *Store) Kill(txID uint64) bool {
	st := s.activeStripeOf(txID)
	st.mu.Lock()
	tx := st.txs[txID]
	st.mu.Unlock()
	if tx == nil || !s.killTx(tx) {
		return false
	}
	s.stats.kills.Add(1)
	s.stats.aborts.Add(1)
	return true
}

// ConflictingActiveTxns returns the ids of active transactions whose
// partial writesets intersect ws, excluding excludeTx. This is the
// "trigger writes partial writesets to a memory-mapped file readable
// by the proxy" mechanism of paper §8.1.
func (s *Store) ConflictingActiveTxns(ws *core.Writeset, excludeTx uint64) []uint64 {
	if ws.Empty() {
		return nil
	}
	items := make(map[core.ItemID]struct{}, len(ws.Ops))
	for i := range ws.Ops {
		items[ws.Ops[i].Item()] = struct{}{}
	}
	var out []uint64
	var txs []*Tx
	for i := range s.activeStripes {
		st := &s.activeStripes[i]
		st.mu.Lock()
		for _, tx := range st.txs {
			txs = append(txs, tx)
		}
		st.mu.Unlock()
	}
	for _, tx := range txs {
		if tx.id == excludeTx || tx.state.Load() != txActive {
			continue
		}
		tx.mu.Lock()
		for _, held := range tx.held {
			if _, hit := items[held]; hit {
				out = append(out, tx.id)
				break
			}
		}
		tx.mu.Unlock()
	}
	return out
}

// WaitAnnounced blocks until the commit-order semaphore reaches at
// least v (or the timeout elapses, or the store crashes). The proxy
// uses it to delay an artificially conflicting remote writeset until
// the writeset it conflicts with has committed (paper §5.2.1).
func (s *Store) WaitAnnounced(v uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if s.crashed.Load() {
			return ErrCrashed
		}
		s.orderMu.Lock()
		if s.announced.Load() >= v {
			s.orderMu.Unlock()
			return nil
		}
		w := orderWaiter{from: v, ch: make(chan struct{})}
		s.orderWait = append(s.orderWait, w)
		s.orderMu.Unlock()
		if timer == nil {
			timer = time.NewTimer(time.Until(deadline))
		} else {
			timer.Reset(time.Until(deadline))
		}
		select {
		case <-w.ch:
			if !timer.Stop() {
				<-timer.C
			}
		case <-s.crashCh:
			// Crash may have swept the waiter list before we
			// registered; without this case we would sleep out the
			// full timeout on a dead store.
			s.orderMu.Lock()
			s.removeOrderWaiterLocked(w)
			s.orderMu.Unlock()
			return ErrCrashed
		case <-timer.C:
			s.orderMu.Lock()
			s.removeOrderWaiterLocked(w)
			cur := s.announced.Load()
			s.orderMu.Unlock()
			if cur >= v {
				return nil
			}
			return fmt.Errorf("%w: waiting for announced version %d, at %d", ErrOrderTimeout, v, cur)
		}
	}
}

// removeOrderWaiterLocked drops w from the order-wait list. Caller
// holds s.orderMu.
func (s *Store) removeOrderWaiterLocked(w orderWaiter) {
	for i := range s.orderWait {
		if s.orderWait[i].ch == w.ch {
			s.orderWait = append(s.orderWait[:i], s.orderWait[i+1:]...)
			return
		}
	}
}

// maybePageMiss charges a buffer-pool miss to the data channel for
// every Config.PageMissEvery-th read.
func (s *Store) maybePageMiss() {
	n := s.cfg.PageMissEvery
	if n <= 0 {
		return
	}
	if s.readTick.Add(1)%int64(n) == 0 {
		s.dataDisk.PageOps(1)
	}
}

// chargeCheckpoint models background dirty-page write-back: one page
// write per Config.CheckpointEvery committed row writes. The committing
// session does not wait for it; the page op occupies the shared channel
// asynchronously, congesting subsequent fsyncs exactly as the paper's
// shared-IO configuration does.
func (s *Store) chargeCheckpoint(rowWrites int) {
	n := s.cfg.CheckpointEvery
	if n <= 0 || rowWrites == 0 {
		return
	}
	t := s.dirtyTick.Add(int64(rowWrites))
	pages := int(t / int64(n))
	// On CAS failure a concurrent committer saw the same ticks; the
	// residue stays in the counter and is charged by a later commit.
	if pages > 0 && s.dirtyTick.CompareAndSwap(t, t-int64(pages)*int64(n)) {
		go s.dataDisk.PageOps(pages)
	}
}

// Crash simulates a machine/process crash: all in-flight transactions
// die, the volatile WAL suffix is lost, and — in NoSync mode without
// KeepIntegrity — the data files are marked corrupt (paper §7.1 case
// 1). It returns the surviving WAL image and the corruption flag. The
// store is unusable afterwards; recover with RecoverFromWAL or
// RestoreDump.
func (s *Store) Crash() (walImage []byte, corrupt bool) {
	s.crashMu.Lock()
	already := s.crashed.Load()
	if !already {
		s.crashed.Store(true)
		close(s.crashCh)
	}
	s.crashMu.Unlock()
	if already {
		return s.log.CrashImage(0), s.corrupt()
	}
	s.wakeAllOrderWaiters()
	for i := range s.activeStripes {
		st := &s.activeStripes[i]
		st.mu.Lock()
		txs := make([]*Tx, 0, len(st.txs))
		for _, tx := range st.txs {
			txs = append(txs, tx)
		}
		st.mu.Unlock()
		for _, tx := range txs {
			s.killTx(tx)
		}
	}
	s.sweepPending()
	corrupt = s.corrupt()
	s.log.Close()
	return s.log.CrashImage(0), corrupt
}

func (s *Store) wakeAllOrderWaiters() {
	s.orderMu.Lock()
	for _, w := range s.orderWait {
		close(w.ch)
	}
	s.orderWait = nil
	s.orderMu.Unlock()
}

func (s *Store) corrupt() bool {
	return s.cfg.WALMode == wal.NoSync && !s.cfg.KeepIntegrity && s.stats.commits.Load() > 0
}

// Close shuts the store down cleanly (no crash semantics).
func (s *Store) Close() {
	s.crashMu.Lock()
	if s.crashed.Load() {
		s.crashMu.Unlock()
		return
	}
	s.crashed.Store(true)
	close(s.crashCh)
	s.crashMu.Unlock()
	s.wakeAllOrderWaiters()
	s.sweepPending()
	s.log.Close()
}
