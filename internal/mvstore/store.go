// Package mvstore is a multi-version storage engine providing snapshot
// isolation, written from scratch as the paper's "off-the-shelf
// database" substitute (the paper used PostgreSQL 8.0.3).
//
// It reproduces every database behaviour the Tashkent experiments
// depend on:
//
//   - MVCC snapshots: a transaction reads the database version that
//     existed when it began and is unaffected by concurrent commits.
//   - Eager write locks with first-committer-wins: the first writer of
//     a row proceeds; competitors block; if the holder commits the
//     competitors abort with ErrWriteConflict (PostgreSQL's "could not
//     serialize access due to concurrent update").
//   - Deadlock detection on the waits-for graph, plus lock-wait
//     timeouts for cross-layer deadlocks the graph cannot see (a local
//     lock holder blocked behind the commit-order semaphore, paper
//     §8.2).
//   - Trigger-style writeset capture with a per-write hook so the
//     middleware can observe partial writesets during execution (eager
//     pre-certification, paper §8.2) and forcibly kill a conflicting
//     local transaction.
//   - A write-ahead log with group commit; synchronous commits can be
//     enabled (Base, Tashkent-API) or disabled (Tashkent-MW).
//   - The extended commit API: CommitOrdered(from, to) writes the
//     commit record immediately (groupable with concurrent commits)
//     but announces the commit only when the database version reaches
//     `from` — the 20-line semaphore change of paper §8.3.
//   - DUMP/RESTORE for middleware-driven recovery, WAL replay
//     recovery, and crash simulation with or without physical data
//     integrity (paper §7.1 cases 1 and 2).
package mvstore

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tashkent/internal/core"
	"tashkent/internal/simdisk"
	"tashkent/internal/wal"
)

// Errors returned by transaction operations.
var (
	// ErrWriteConflict is the SI first-committer-wins abort: another
	// transaction holding the write lock committed first.
	ErrWriteConflict = errors.New("mvstore: write-write conflict (concurrent update committed)")
	// ErrDeadlock reports a waits-for cycle; the requesting transaction
	// is chosen as the victim.
	ErrDeadlock = errors.New("mvstore: deadlock detected")
	// ErrLockTimeout reports a lock wait exceeding Config.LockTimeout,
	// the escape hatch for deadlocks spanning the commit-order
	// semaphore which the waits-for graph cannot observe.
	ErrLockTimeout = errors.New("mvstore: lock wait timeout")
	// ErrOrderTimeout reports a CommitOrdered wait that never became
	// eligible — the misuse case of the extended API (e.g. COMMIT 9
	// without COMMIT 1-8, paper §5.2).
	ErrOrderTimeout = errors.New("mvstore: commit-order wait timeout")
	// ErrTxDone reports use of a finished transaction handle.
	ErrTxDone = errors.New("mvstore: transaction already finished")
	// ErrTxKilled reports that the middleware forcibly aborted this
	// transaction (eager pre-certification victim).
	ErrTxKilled = errors.New("mvstore: transaction killed")
	// ErrCrashed reports an operation against a crashed store.
	ErrCrashed = errors.New("mvstore: database has crashed")
	// ErrCommitRejected models the database unilaterally aborting a
	// COMMIT (paper §8.1 "soft recovery": out of disk space, garbage
	// collection, backend crash). Injected by tests via FailNextCommit.
	ErrCommitRejected = errors.New("mvstore: commit rejected by database")
)

// Config parameterizes a store instance.
type Config struct {
	// DataDisk services buffer-pool misses, checkpoint write-back and
	// dump IO. nil means an instant (ram) channel.
	DataDisk *simdisk.Disk
	// LogDisk services WAL fsyncs. nil means an instant channel.
	LogDisk *simdisk.Disk
	// WALMode selects synchronous (SyncCommits) or asynchronous
	// (NoSync) commit records.
	WALMode wal.Mode
	// KeepIntegrity, meaningful with WALMode == NoSync, selects the
	// paper's §7.1 case 2: page writes still obey write-ahead rules so
	// a crash loses recent commits but never corrupts pages. Without
	// it (case 1), a crash with unsynced activity corrupts the data
	// files and recovery must come from a dump.
	KeepIntegrity bool
	// PageMissEvery makes every Nth row read cost one data-page IO,
	// modelling buffer-pool misses (0 disables; AllUpdates and TPC-B
	// run essentially from memory, TPC-W does not).
	PageMissEvery int
	// CheckpointEvery flushes one dirty-page write-back to the data
	// disk for every N committed row writes (0 disables). This is the
	// "writing back dirty database pages" stream that congests a
	// shared IO channel.
	CheckpointEvery int
	// LockTimeout bounds write-lock waits (0 = a generous default).
	LockTimeout time.Duration
	// OrderTimeout bounds CommitOrdered announce waits (0 = default).
	OrderTimeout time.Duration
}

const (
	defaultLockTimeout  = 10 * time.Second
	defaultOrderTimeout = 10 * time.Second
)

// rowVersion is one MVCC version of a row. seq is the store-internal
// commit sequence that created it.
type rowVersion struct {
	seq     uint64
	deleted bool
	cols    map[string][]byte
}

// table holds the version chains of its rows, newest last.
type table struct {
	rows map[string][]rowVersion
}

// lockWaiter is one transaction blocked on a write lock.
type lockWaiter struct {
	txID uint64
	ch   chan error // buffered(1): receives nil (retry) or a fatal error
}

// lockState is an acquired row write lock.
type lockState struct {
	holder  uint64
	waiters []lockWaiter
}

// orderWaiter is a CommitOrdered call blocked on the announce
// semaphore.
type orderWaiter struct {
	from uint64
	ch   chan struct{} // closed when announced >= from
}

// Stats is a snapshot of store activity counters.
type Stats struct {
	Commits         int64
	ReadOnlyCommits int64
	Aborts          int64
	Deadlocks       int64
	WriteConflicts  int64
	Kills           int64
	RowReads        int64
	RowWrites       int64
}

// Store is one database instance. All methods are safe for concurrent
// use by many client sessions.
type Store struct {
	cfg Config

	mu             sync.Mutex
	tables         map[string]*table
	mvccSeq        uint64 // internal commit sequence: stamps row versions & snapshots
	announced      uint64 // commit-order semaphore value (global version space)
	nextTxID       uint64
	active         map[uint64]*Tx
	locks          map[core.ItemID]*lockState
	waitsFor       map[uint64]uint64 // blocked tx → lock holder it waits on
	orderWait      []orderWaiter
	crashed        bool
	crashCh        chan struct{} // closed on crash, unblocks waiters
	stats          Stats
	readTick       int   // page-miss modelling counter
	dirtyTick      int64 // checkpoint modelling counter
	failNextCommit int32 // fault injection: reject next N commits

	log      *wal.WAL
	dataDisk *simdisk.Disk
	logDisk  *simdisk.Disk
}

// Open creates an empty store.
func Open(cfg Config) *Store {
	if cfg.DataDisk == nil {
		cfg.DataDisk = simdisk.New(simdisk.Instant(), 0)
	}
	if cfg.LogDisk == nil {
		cfg.LogDisk = simdisk.New(simdisk.Instant(), 0)
	}
	if cfg.WALMode == 0 {
		cfg.WALMode = wal.SyncCommits
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = defaultLockTimeout
	}
	if cfg.OrderTimeout == 0 {
		cfg.OrderTimeout = defaultOrderTimeout
	}
	return &Store{
		cfg:      cfg,
		tables:   make(map[string]*table),
		active:   make(map[uint64]*Tx),
		locks:    make(map[core.ItemID]*lockState),
		waitsFor: make(map[uint64]uint64),
		crashCh:  make(chan struct{}),
		log:      wal.New(cfg.LogDisk, cfg.WALMode),
		dataDisk: cfg.DataDisk,
		logDisk:  cfg.LogDisk,
	}
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// AnnouncedVersion returns the current value of the commit-order
// semaphore (the highest globally ordered version announced by
// CommitOrdered, or whatever SetAnnounced established at recovery).
func (s *Store) AnnouncedVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.announced
}

// SetAnnounced initializes the commit-order semaphore, used when a
// recovered replica rejoins at a nonzero global version.
func (s *Store) SetAnnounced(v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.announced {
		s.announced = v
		s.wakeOrderWaitersLocked()
	}
}

// InternalSeq returns the store's internal MVCC commit sequence.
func (s *Store) InternalSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mvccSeq
}

// ActiveTxns returns the number of in-flight transactions.
func (s *Store) ActiveTxns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// FailNextCommit arms fault injection: the next n update commits are
// rejected with ErrCommitRejected after their WAL append, exercising
// the middleware's soft-recovery path.
func (s *Store) FailNextCommit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNextCommit = int32(n)
}

// Begin starts a transaction against the latest committed snapshot.
func (s *Store) Begin() (*Tx, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	s.nextTxID++
	tx := &Tx{
		store:    s,
		id:       s.nextTxID,
		snapshot: s.mvccSeq,
		writes:   make(map[core.ItemID]*pendingWrite),
	}
	s.active[tx.id] = tx
	return tx, nil
}

// minActiveSnapshotLocked returns the oldest snapshot any active
// transaction reads from; row versions at or below it, except the
// newest such version, are unreachable and can be garbage collected
// (PostgreSQL's vacuum, done inline).
func (s *Store) minActiveSnapshotLocked() uint64 {
	min := s.mvccSeq
	for _, tx := range s.active {
		if tx.snapshot < min {
			min = tx.snapshot
		}
	}
	return min
}

// prune drops row versions no active snapshot can see: everything
// older than the newest version with seq <= minSnap. A row whose only
// remaining version is an old tombstone is removed entirely.
func (t *table) prune(key string, minSnap uint64) {
	versions := t.rows[key]
	if len(versions) <= 1 {
		if len(versions) == 1 && versions[0].deleted && versions[0].seq <= minSnap {
			delete(t.rows, key)
		}
		return
	}
	idx := -1
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].seq <= minSnap {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return
	}
	kept := versions[idx:]
	if len(kept) == 1 && kept[0].deleted && kept[0].seq <= minSnap {
		delete(t.rows, key)
		return
	}
	// Copy down in place so the backing array can shrink over time.
	copy(versions, kept)
	t.rows[key] = versions[:len(kept)]
}

// visibleLocked returns the newest row version with seq <= snapshot.
func (t *table) visible(key string, snapshot uint64) *rowVersion {
	versions := t.rows[key]
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].seq <= snapshot {
			if versions[i].deleted {
				return nil
			}
			return &versions[i]
		}
	}
	return nil
}

// acquireLock obtains the write lock on item for tx, blocking behind a
// current holder. It returns ErrWriteConflict if the holder commits,
// ErrDeadlock on a waits-for cycle, ErrLockTimeout after
// Config.LockTimeout, and ErrTxKilled/ErrCrashed as appropriate.
// Called without s.mu held.
func (s *Store) acquireLock(tx *Tx, item core.ItemID) error {
	deadline := time.Now().Add(s.cfg.LockTimeout)
	for {
		s.mu.Lock()
		if s.crashed {
			s.mu.Unlock()
			return ErrCrashed
		}
		if tx.killed {
			s.mu.Unlock()
			return ErrTxKilled
		}
		ls := s.locks[item]
		if ls == nil {
			s.locks[item] = &lockState{holder: tx.id}
			tx.held = append(tx.held, item)
			s.mu.Unlock()
			return nil
		}
		if ls.holder == tx.id {
			s.mu.Unlock()
			return nil
		}
		// Would block: deadlock check on the waits-for graph.
		if s.wouldDeadlockLocked(tx.id, ls.holder) {
			s.stats.Deadlocks++
			s.mu.Unlock()
			return ErrDeadlock
		}
		w := lockWaiter{txID: tx.id, ch: make(chan error, 1)}
		ls.waiters = append(ls.waiters, w)
		s.waitsFor[tx.id] = ls.holder
		crashCh := s.crashCh
		s.mu.Unlock()

		var err error
		var timedOut bool
		select {
		case err = <-w.ch:
		case <-time.After(time.Until(deadline)):
			timedOut = true
		case <-crashCh:
			err = ErrCrashed
		}

		s.mu.Lock()
		delete(s.waitsFor, tx.id)
		if timedOut {
			// Remove ourselves from the waiter queue unless a signal
			// raced in (then honor the signal instead).
			select {
			case err = <-w.ch:
			default:
				s.removeWaiterLocked(item, tx.id)
				s.mu.Unlock()
				return ErrLockTimeout
			}
		}
		s.mu.Unlock()
		if err != nil {
			if errors.Is(err, ErrWriteConflict) {
				// counted at signal time
			}
			return err
		}
		// Holder aborted; retry acquisition.
	}
}

// wouldDeadlockLocked reports whether making waiter wait on holder
// closes a cycle in the waits-for graph.
func (s *Store) wouldDeadlockLocked(waiter, holder uint64) bool {
	seen := 0
	cur := holder
	for {
		if cur == waiter {
			return true
		}
		next, ok := s.waitsFor[cur]
		if !ok {
			return false
		}
		cur = next
		if seen++; seen > len(s.waitsFor)+1 {
			return false // defensive: graph mutated under us
		}
	}
}

func (s *Store) removeWaiterLocked(item core.ItemID, txID uint64) {
	ls := s.locks[item]
	if ls == nil {
		return
	}
	for i := range ls.waiters {
		if ls.waiters[i].txID == txID {
			ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
			return
		}
	}
}

// releaseLocksLocked frees all locks held by tx. If committed, waiters
// receive ErrWriteConflict (first-committer-wins); if aborted, they
// receive nil and retry.
func (s *Store) releaseLocksLocked(tx *Tx, committed bool) {
	for _, item := range tx.held {
		ls := s.locks[item]
		if ls == nil || ls.holder != tx.id {
			continue
		}
		for _, w := range ls.waiters {
			if committed {
				s.stats.WriteConflicts++
				w.ch <- ErrWriteConflict
			} else {
				w.ch <- nil
			}
		}
		delete(s.locks, item)
	}
	tx.held = nil
}

// finishLocked removes tx from the active set.
func (s *Store) finishLocked(tx *Tx) {
	tx.done = true
	delete(s.active, tx.id)
	delete(s.waitsFor, tx.id)
}

// Kill forcibly aborts an active transaction by id: its locks are
// released, buffered writes discarded, and any subsequent operation on
// the handle returns ErrTxKilled. This is the mechanism the middleware
// uses to resolve local-vs-remote writeset conflicts eagerly
// (paper §8.2: "the proxy aborts the conflicting local update
// transaction, which allows the remote writeset to be executed").
func (s *Store) Kill(txID uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	tx, ok := s.active[txID]
	if !ok {
		return false
	}
	tx.killed = true
	s.stats.Kills++
	s.stats.Aborts++
	s.releaseLocksLocked(tx, false)
	s.finishLocked(tx)
	return true
}

// ConflictingActiveTxns returns the ids of active transactions whose
// partial writesets intersect ws, excluding excludeTx. This is the
// "trigger writes partial writesets to a memory-mapped file readable
// by the proxy" mechanism of paper §8.1.
func (s *Store) ConflictingActiveTxns(ws *core.Writeset, excludeTx uint64) []uint64 {
	if ws.Empty() {
		return nil
	}
	items := make(map[core.ItemID]struct{}, len(ws.Ops))
	for i := range ws.Ops {
		items[ws.Ops[i].Item()] = struct{}{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []uint64
	for id, tx := range s.active {
		if id == excludeTx || tx.killed {
			continue
		}
		for _, held := range tx.held {
			if _, hit := items[held]; hit {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// WaitAnnounced blocks until the commit-order semaphore reaches at
// least v (or the timeout elapses, or the store crashes). The proxy
// uses it to delay an artificially conflicting remote writeset until
// the writeset it conflicts with has committed (paper §5.2.1).
func (s *Store) WaitAnnounced(v uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		if s.crashed {
			s.mu.Unlock()
			return ErrCrashed
		}
		if s.announced >= v {
			s.mu.Unlock()
			return nil
		}
		w := orderWaiter{from: v, ch: make(chan struct{})}
		s.orderWait = append(s.orderWait, w)
		s.mu.Unlock()
		select {
		case <-w.ch:
		case <-time.After(time.Until(deadline)):
			s.mu.Lock()
			for i := range s.orderWait {
				if s.orderWait[i].ch == w.ch {
					s.orderWait = append(s.orderWait[:i], s.orderWait[i+1:]...)
					break
				}
			}
			cur := s.announced
			s.mu.Unlock()
			if cur >= v {
				return nil
			}
			return fmt.Errorf("%w: waiting for announced version %d, at %d", ErrOrderTimeout, v, cur)
		}
	}
}

// wakeOrderWaitersLocked releases CommitOrdered waiters whose from
// version has been reached.
func (s *Store) wakeOrderWaitersLocked() {
	kept := s.orderWait[:0]
	for _, w := range s.orderWait {
		if w.from <= s.announced {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	s.orderWait = kept
}

// maybePageMiss charges a buffer-pool miss to the data channel for
// every Config.PageMissEvery-th read. Called without s.mu.
func (s *Store) maybePageMiss() {
	n := s.cfg.PageMissEvery
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.readTick++
	miss := s.readTick%n == 0
	s.mu.Unlock()
	if miss {
		s.dataDisk.PageOps(1)
	}
}

// chargeCheckpoint models background dirty-page write-back: one page
// write per Config.CheckpointEvery committed row writes. The committing
// session does not wait for it; the page op occupies the shared channel
// asynchronously, congesting subsequent fsyncs exactly as the paper's
// shared-IO configuration does.
func (s *Store) chargeCheckpoint(rowWrites int) {
	n := s.cfg.CheckpointEvery
	if n <= 0 || rowWrites == 0 {
		return
	}
	s.mu.Lock()
	s.dirtyTick += int64(rowWrites)
	pages := int(s.dirtyTick / int64(n))
	s.dirtyTick -= int64(pages) * int64(n)
	s.mu.Unlock()
	if pages > 0 {
		go s.dataDisk.PageOps(pages)
	}
}

// Crash simulates a machine/process crash: all in-flight transactions
// die, the volatile WAL suffix is lost, and — in NoSync mode without
// KeepIntegrity — the data files are marked corrupt (paper §7.1 case
// 1). It returns the surviving WAL image and the corruption flag. The
// store is unusable afterwards; recover with RecoverFromWAL or
// RestoreDump.
func (s *Store) Crash() (walImage []byte, corrupt bool) {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return s.log.CrashImage(0), s.corruptLocked()
	}
	s.crashed = true
	close(s.crashCh)
	for _, w := range s.orderWait {
		close(w.ch)
	}
	s.orderWait = nil
	for id, tx := range s.active {
		tx.killed = true
		s.releaseLocksLocked(tx, false)
		delete(s.active, id)
	}
	corrupt = s.corruptLocked()
	s.mu.Unlock()
	s.log.Close()
	return s.log.CrashImage(0), corrupt
}

func (s *Store) corruptLocked() bool {
	return s.cfg.WALMode == wal.NoSync && !s.cfg.KeepIntegrity && s.stats.Commits > 0
}

// Close shuts the store down cleanly (no crash semantics).
func (s *Store) Close() {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return
	}
	s.crashed = true
	close(s.crashCh)
	for _, w := range s.orderWait {
		close(w.ch)
	}
	s.orderWait = nil
	s.mu.Unlock()
	s.log.Close()
}
