package mvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collectOutcomes builds a callback factory that records (tag, outcome)
// pairs in arrival order.
type outcomeLog struct {
	mu  sync.Mutex
	got []string
}

func (l *outcomeLog) cb(tag string) func(PendingOutcome) {
	return func(oc PendingOutcome) {
		l.mu.Lock()
		l.got = append(l.got, fmt.Sprintf("%s:%d", tag, oc))
		l.mu.Unlock()
	}
}

func (l *outcomeLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.got...)
}

func asyncUpdate(t *testing.T, s *Store, key string, from, to uint64, cb func(PendingOutcome)) {
	t.Helper()
	tx := mustBegin(t, s)
	if err := tx.Update("t", key, map[string][]byte{"v": []byte(fmt.Sprintf("%d", to))}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if err := tx.CommitLabeledAsync(from, to, cb); err != nil {
		t.Fatalf("CommitLabeledAsync(%d,%d): %v", from, to, err)
	}
}

func TestCommitLabeledAsyncDefersAndPublishesInOrder(t *testing.T) {
	s := openInstant(t)
	var log outcomeLog

	// Install versions 2 and 3 first: both stay pending (announce
	// cursor is 0) and invisible to every snapshot.
	asyncUpdate(t, s, "k2", 1, 2, log.cb("k2"))
	asyncUpdate(t, s, "k3", 2, 3, log.cb("k3"))
	if got := s.PendingApplies(); got != 2 {
		t.Fatalf("PendingApplies = %d, want 2", got)
	}
	if s.AnnouncedVersion() != 0 {
		t.Fatalf("AnnouncedVersion = %d before the cascade", s.AnnouncedVersion())
	}
	if _, ok := get(t, s, "t", "k2", "v"); ok {
		t.Fatal("installed-but-unpublished version is visible")
	}

	// Version 1 releases the cascade: all three publish, in order.
	asyncUpdate(t, s, "k1", 0, 1, log.cb("k1"))
	if err := s.WaitAnnounced(3, time.Second); err != nil {
		t.Fatalf("WaitAnnounced(3): %v", err)
	}
	want := []string{
		fmt.Sprintf("k1:%d", PendingPublished),
		fmt.Sprintf("k2:%d", PendingPublished),
		fmt.Sprintf("k3:%d", PendingPublished),
	}
	got := log.snapshot()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("outcomes = %v, want %v", got, want)
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		if v, ok := get(t, s, "t", k, "v"); !ok || v == "" {
			t.Errorf("%s not visible after publication (%q, %v)", k, v, ok)
		}
	}
	if got := s.PendingApplies(); got != 0 {
		t.Errorf("PendingApplies = %d after cascade", got)
	}
}

func TestCommitLabeledAsyncSuperseded(t *testing.T) {
	s := openInstant(t)
	var log outcomeLog
	s.SetAnnounced(5)

	// Pre-WAL supersede: the range is already covered at call time.
	asyncUpdate(t, s, "pre", 1, 2, log.cb("pre"))
	if got := log.snapshot(); len(got) != 1 || got[0] != fmt.Sprintf("pre:%d", PendingSuperseded) {
		t.Fatalf("pre-WAL outcomes = %v", got)
	}
	if _, ok := get(t, s, "t", "pre", "v"); ok {
		t.Fatal("superseded commit left visible state")
	}

	// In-pendency supersede: installed at (7,8], then a catch-up
	// announce jumps past it.
	asyncUpdate(t, s, "mid", 7, 8, log.cb("mid"))
	s.SetAnnounced(10)
	if got := log.snapshot(); len(got) != 2 || got[1] != fmt.Sprintf("mid:%d", PendingSuperseded) {
		t.Fatalf("in-pendency outcomes = %v", got)
	}
	if _, ok := get(t, s, "t", "mid", "v"); ok {
		t.Fatal("discarded provisional version is visible")
	}
	if got := s.PendingApplies(); got != 0 {
		t.Errorf("PendingApplies = %d", got)
	}
}

func TestCommitLabeledAsyncHoldsLocksUntilPublication(t *testing.T) {
	s := Open(Config{LockTimeout: 40 * time.Millisecond})
	t.Cleanup(s.Close)
	var log outcomeLog

	// Pending at (4,5]: its row lock must stay held while unpublished
	// (first-committer-wins against local transactions).
	asyncUpdate(t, s, "kl", 4, 5, log.cb("kl"))
	ltx := mustBegin(t, s)
	if err := ltx.Update("t", "kl", map[string][]byte{"v": []byte("local")}); err == nil {
		t.Fatal("local update acquired a lock held by a pending commit")
	}
	ltx.Abort()

	// Publication releases the lock.
	s.SetAnnounced(4)
	if err := s.WaitAnnounced(5, time.Second); err != nil {
		t.Fatalf("WaitAnnounced(5): %v", err)
	}
	if got := log.snapshot(); len(got) != 1 || got[0] != fmt.Sprintf("kl:%d", PendingPublished) {
		t.Fatalf("outcomes = %v", got)
	}
	if v, ok := get(t, s, "t", "kl", "v"); !ok || v != "5" {
		t.Fatalf("published value = %q, %v", v, ok)
	}
	set(t, s, "t", "kl", "v", "after") // lock is free again
}

func TestCancelPendings(t *testing.T) {
	s := Open(Config{LockTimeout: 40 * time.Millisecond})
	t.Cleanup(s.Close)
	var log outcomeLog

	// A gap-stranded pending: from 4 is unreachable without versions
	// 1-4, and its row lock has no timeout.
	asyncUpdate(t, s, "kc", 4, 5, log.cb("kc"))
	if n := s.CancelPendings(); n != 1 {
		t.Fatalf("CancelPendings = %d, want 1", n)
	}
	if got := log.snapshot(); len(got) != 1 || got[0] != fmt.Sprintf("kc:%d", PendingCanceled) {
		t.Fatalf("outcomes = %v", got)
	}
	if _, ok := get(t, s, "t", "kc", "v"); ok {
		t.Fatal("canceled provisional version is visible")
	}
	// The lock released as aborted: a resync-style re-apply proceeds.
	set(t, s, "t", "kc", "v", "resync")
	if s.AnnouncedVersion() != 0 {
		t.Errorf("cancel advanced the announce cursor to %d", s.AnnouncedVersion())
	}
}

func TestCancelPendingsPublishesReadyPrefix(t *testing.T) {
	s := openInstant(t)
	var log outcomeLog
	// (0,1] is ready; (5,6] is stuck behind the gap.
	asyncUpdate(t, s, "ready", 0, 1, log.cb("ready"))
	asyncUpdate(t, s, "stuck", 5, 6, log.cb("stuck"))
	if n := s.CancelPendings(); n != 1 {
		t.Fatalf("CancelPendings = %d, want 1 (the stuck one)", n)
	}
	got := log.snapshot()
	if len(got) != 2 || got[0] != fmt.Sprintf("ready:%d", PendingPublished) ||
		got[1] != fmt.Sprintf("stuck:%d", PendingCanceled) {
		t.Fatalf("outcomes = %v", got)
	}
	if v, ok := get(t, s, "t", "ready", "v"); !ok || v != "1" {
		t.Fatalf("ready prefix not published: %q, %v", v, ok)
	}
}

func TestAsyncCrashSweepsPendings(t *testing.T) {
	s := Open(Config{})
	var log outcomeLog
	asyncUpdate(t, s, "kx", 4, 5, log.cb("kx"))
	s.Crash()
	if got := log.snapshot(); len(got) != 1 || got[0] != fmt.Sprintf("kx:%d", PendingCrashed) {
		t.Fatalf("outcomes after crash = %v", got)
	}
	// New registrations against the dead store must refuse.
	if err := s.AnnounceAsync(9, 10, log.cb("dead")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("AnnounceAsync on crashed store: %v", err)
	}
}

func TestAnnounceAsync(t *testing.T) {
	s := openInstant(t)
	var log outcomeLog
	if err := s.AnnounceAsync(3, 3, nil); err == nil {
		t.Fatal("empty range accepted")
	}
	// Hollow (2,4] waits for the cursor to reach 2.
	if err := s.AnnounceAsync(2, 4, log.cb("hi")); err != nil {
		t.Fatal(err)
	}
	if s.AnnouncedVersion() != 0 {
		t.Fatalf("AnnouncedVersion = %d", s.AnnouncedVersion())
	}
	// Hollow (0,2] is ready and cascades into it.
	if err := s.AnnounceAsync(0, 2, log.cb("lo")); err != nil {
		t.Fatal(err)
	}
	if s.AnnouncedVersion() != 4 {
		t.Fatalf("AnnouncedVersion = %d, want 4", s.AnnouncedVersion())
	}
	got := log.snapshot()
	if len(got) != 2 || got[0] != fmt.Sprintf("lo:%d", PendingPublished) ||
		got[1] != fmt.Sprintf("hi:%d", PendingPublished) {
		t.Fatalf("outcomes = %v", got)
	}
}

func TestAsyncMixedWithSyncCommitOrdered(t *testing.T) {
	// Deferred-publication commits interleave with gated sync commits on
	// the same announce chain: a sync CommitOrdered advance must release
	// pendings queued behind it, and vice versa.
	s := openInstant(t)
	var log outcomeLog

	asyncUpdate(t, s, "a2", 1, 2, log.cb("a2")) // pending behind v1
	tx := mustBegin(t, s)
	if err := tx.Update("t", "s1", map[string][]byte{"v": []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitOrdered(0, 1); err != nil { // sync v1 releases a2
		t.Fatalf("CommitOrdered: %v", err)
	}
	if err := s.WaitAnnounced(2, time.Second); err != nil {
		t.Fatalf("WaitAnnounced(2): %v", err)
	}

	// And a sync commit queued behind a pending drains when it publishes.
	asyncUpdate(t, s, "a3", 2, 3, log.cb("a3"))
	if err := s.WaitAnnounced(3, time.Second); err != nil {
		t.Fatalf("WaitAnnounced(3): %v", err)
	}
	done := make(chan error, 1)
	tx2 := mustBegin(t, s)
	if err := tx2.Update("t", "s4", map[string][]byte{"v": []byte("4")}); err != nil {
		t.Fatal(err)
	}
	go func() { done <- tx2.CommitOrdered(3, 4) }()
	if err := <-done; err != nil {
		t.Fatalf("sync commit behind published pending: %v", err)
	}
	for _, k := range []string{"s1", "a2", "a3", "s4"} {
		if _, ok := get(t, s, "t", k, "v"); !ok {
			t.Errorf("%s missing after mixed chain", k)
		}
	}
}
