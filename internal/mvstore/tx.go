package mvstore

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tashkent/internal/core"
)

// pendingWrite is one buffered row modification of an active
// transaction.
type pendingWrite struct {
	kind    core.OpKind
	cols    map[string][]byte // full row (insert) or modified cols (update)
	deleted bool
}

// WriteHook observes each captured write operation as it happens —
// the paper's trigger-to-memory-mapped-file channel that exposes
// partial writesets to the proxy. Returning an error aborts the write
// (and the proxy then aborts the transaction).
type WriteHook func(op core.WriteOp) error

// Transaction lifecycle states. The state latches exactly once from
// txActive to txDone (commit/abort, owned by the session goroutine) or
// txKilled (Kill/Crash, any goroutine); the CAS winner owns lock
// release and registry removal, so a kill can never race a commit.
const (
	txActive int32 = iota
	txDone
	txKilled
)

// Tx is one transaction handle. A Tx is used by a single session
// goroutine; Kill and Crash may finish it from other goroutines, which
// the state latch and the held-list mutex make safe.
type Tx struct {
	store    *Store
	id       uint64
	snapshot uint64
	writes   map[core.ItemID]*pendingWrite // owner goroutine only; nil until first write
	ws       core.Writeset                 // capture order preserved
	hook     WriteHook

	state atomic.Int32
	mu    sync.Mutex // guards held against Kill/ConflictingActiveTxns
	held  []core.ItemID
}

// ID returns the transaction identifier (used with Store.Kill).
func (tx *Tx) ID() uint64 { return tx.id }

// Snapshot returns the internal MVCC sequence this transaction reads
// from.
func (tx *Tx) Snapshot() uint64 { return tx.snapshot }

// SetWriteHook installs the per-write observer. It must be set before
// the first write.
func (tx *Tx) SetWriteHook(h WriteHook) { tx.hook = h }

// Writeset returns the writeset captured so far. The returned value
// aliases internal state and must not be modified; Clone it to keep.
func (tx *Tx) Writeset() *core.Writeset { return &tx.ws }

func (tx *Tx) check() error {
	switch tx.state.Load() {
	case txKilled:
		return ErrTxKilled
	case txDone:
		return ErrTxDone
	}
	return nil
}

// Read returns the named columns of a row visible in the transaction's
// snapshot (its own uncommitted writes win). found is false if the row
// does not exist in the snapshot. The returned map is a shared
// immutable row version — callers must not modify it. Snapshot reads
// take only the owning data shard's read lock; no global mutex and no
// defensive copy.
func (tx *Tx) Read(tableName, key string) (cols map[string][]byte, found bool, err error) {
	if err := tx.check(); err != nil {
		return nil, false, err
	}
	s := tx.store
	s.maybePageMiss()
	s.stats.rowReads.Add(1)
	item := core.ItemID{Table: tableName, Key: key}
	if pw, ok := tx.writes[item]; ok {
		if pw.deleted {
			return nil, false, nil
		}
		// Own-writes overlay: tx-local, built fresh per read so the
		// caller never aliases the pending buffer.
		base := map[string][]byte{}
		if pw.kind == core.OpUpdate {
			if committed, ok := s.readCommitted(tableName, key, tx.snapshot); ok {
				for c, v := range committed {
					base[c] = v
				}
			}
		}
		for c, v := range pw.cols {
			base[c] = v
		}
		return base, true, nil
	}
	committed, ok := s.readCommitted(tableName, key, tx.snapshot)
	return committed, ok, nil
}

// ReadCol is a convenience single-column read.
func (tx *Tx) ReadCol(tableName, key, col string) ([]byte, bool, error) {
	cols, found, err := tx.Read(tableName, key)
	if err != nil || !found {
		return nil, found, err
	}
	v, ok := cols[col]
	return v, ok, nil
}

// write is the shared path of Insert/Update/Delete: run the hook
// (eager pre-certification), take the row write lock, buffer the
// modification, and capture the writeset entry.
func (tx *Tx) write(op core.WriteOp) error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.hook != nil {
		if err := tx.hook(op); err != nil {
			return err
		}
	}
	item := op.Item()
	if err := tx.store.acquireLock(tx, item); err != nil {
		return err
	}
	if tx.state.Load() == txKilled { // killed while acquiring
		return ErrTxKilled
	}
	tx.store.stats.rowWrites.Add(1)
	if tx.writes == nil {
		tx.writes = make(map[core.ItemID]*pendingWrite)
	}
	pw := tx.writes[item]
	if pw == nil {
		pw = &pendingWrite{cols: map[string][]byte{}}
		tx.writes[item] = pw
	}
	switch op.Kind {
	case core.OpInsert:
		pw.kind = core.OpInsert
		pw.deleted = false
		pw.cols = map[string][]byte{}
		for _, c := range op.Cols {
			pw.cols[c.Col] = append([]byte(nil), c.Value...)
		}
	case core.OpUpdate:
		if pw.kind != core.OpInsert {
			pw.kind = core.OpUpdate
		}
		pw.deleted = false
		for _, c := range op.Cols {
			pw.cols[c.Col] = append([]byte(nil), c.Value...)
		}
	case core.OpDelete:
		pw.kind = core.OpDelete
		pw.deleted = true
		pw.cols = map[string][]byte{}
	default:
		return fmt.Errorf("mvstore: invalid op kind %d", op.Kind)
	}
	tx.ws.Add(op)
	return nil
}

// Insert writes a full new row (or fully replaces an existing one,
// like the INSERT the writeset propagation replays).
func (tx *Tx) Insert(tableName, key string, cols map[string][]byte) error {
	op := core.WriteOp{Kind: core.OpInsert, Table: tableName, Key: key}
	for c, v := range cols {
		op.Cols = append(op.Cols, core.ColUpdate{Col: c, Value: append([]byte(nil), v...)})
	}
	return tx.write(op)
}

// Update modifies the given columns of a row.
func (tx *Tx) Update(tableName, key string, cols map[string][]byte) error {
	op := core.WriteOp{Kind: core.OpUpdate, Table: tableName, Key: key}
	for c, v := range cols {
		op.Cols = append(op.Cols, core.ColUpdate{Col: c, Value: append([]byte(nil), v...)})
	}
	return tx.write(op)
}

// Delete removes a row.
func (tx *Tx) Delete(tableName, key string) error {
	return tx.write(core.WriteOp{Kind: core.OpDelete, Table: tableName, Key: key})
}

// ApplyWriteset replays a propagated remote writeset through the
// normal write path (locks, triggers and all — remote writesets can
// conflict and even deadlock with local transactions exactly as in the
// paper).
func (tx *Tx) ApplyWriteset(ws *core.Writeset) error {
	if ws == nil {
		return nil
	}
	for i := range ws.Ops {
		if err := tx.write(ws.Ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// Abort rolls the transaction back.
func (tx *Tx) Abort() error {
	if !tx.state.CompareAndSwap(txActive, txDone) {
		if tx.state.Load() == txKilled {
			return nil // already dead and cleaned up
		}
		return ErrTxDone
	}
	s := tx.store
	s.stats.aborts.Add(1)
	tx.mu.Lock()
	held := tx.held
	tx.held = nil
	tx.mu.Unlock()
	s.releaseItems(tx.id, held, false)
	s.unregister(tx.id)
	return nil
}

// Commit finishes the transaction with standalone-database semantics:
// read-only transactions finish immediately; update transactions write
// a commit record (group-committed with concurrent committers) and are
// announced in whatever order they complete. Equivalent to
// CommitLabeled with zero labels.
func (tx *Tx) Commit() error { return tx.CommitLabeled(0, 0) }

// CommitLabeled is Commit with a recovery label attached to the commit
// record: the transaction covers global versions (from, to]. The
// middleware proxy uses labels so WAL recovery can report which global
// versions survived (paper §7.2). Announce order is arrival order —
// callers (Base/Tashkent-MW proxies) serialize externally. A labeled
// commit whose range the store has already announced past skips
// installation (see applyCommit): a catch-up resync carried the state
// beyond it, and installing now would regress newer row versions.
func (tx *Tx) CommitLabeled(from, to uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.ws.Empty() {
		if !tx.state.CompareAndSwap(txActive, txDone) {
			if tx.state.Load() == txKilled {
				return ErrTxKilled
			}
			return ErrTxDone
		}
		s := tx.store
		s.stats.readOnlyCommits.Add(1)
		s.unregister(tx.id)
		return nil
	}
	if to > 0 && tx.store.announced.Load() >= to {
		// Superseded before the WAL write: skip the record too, so a
		// recovery replay never sees this stale range after newer ones.
		return tx.finishSuperseded()
	}
	rec := encodeCommitRecord(from, to, &tx.ws)
	if err := tx.store.log.Append(rec); err != nil {
		return ErrCrashed
	}
	return tx.applyCommit(to)
}

// CommitOrdered finishes an update transaction under the extended API
// of paper §8.3: the commit covers global versions (from, to]. The
// commit record is written (and group-committed) immediately, then the
// commit waits on the order semaphore until the database has announced
// version from, and announcing it advances the semaphore to to.
// Concurrent CommitOrdered calls therefore share fsyncs while still
// becoming visible in the exact global order.
func (tx *Tx) CommitOrdered(from, to uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	if to <= from {
		return fmt.Errorf("mvstore: CommitOrdered(%d, %d): empty version range", from, to)
	}
	if tx.ws.Empty() {
		return fmt.Errorf("mvstore: CommitOrdered on read-only transaction")
	}
	if tx.store.announced.Load() >= to {
		// A catch-up resync already carried the state past this range.
		return tx.finishSuperseded()
	}
	rec := encodeCommitRecord(from, to, &tx.ws)
	if err := tx.store.log.Append(rec); err != nil {
		return ErrCrashed
	}

	s := tx.store
	deadline := time.Now().Add(s.cfg.OrderTimeout)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if s.crashed.Load() {
			return ErrCrashed
		}
		if tx.state.Load() == txKilled {
			return ErrTxKilled
		}
		s.orderMu.Lock()
		if s.announced.Load() >= from {
			s.orderMu.Unlock()
			break
		}
		w := orderWaiter{from: from, ch: make(chan struct{})}
		s.orderWait = append(s.orderWait, w)
		s.orderMu.Unlock()
		if timer == nil {
			timer = time.NewTimer(time.Until(deadline))
		} else {
			timer.Reset(time.Until(deadline))
		}
		select {
		case <-w.ch:
			if !timer.Stop() {
				<-timer.C
			}
		case <-s.crashCh:
			// Crash may have swept the waiter list before we
			// registered; without this case we would sleep out the
			// full timeout on a dead store.
			s.orderMu.Lock()
			s.removeOrderWaiterLocked(w)
			s.orderMu.Unlock()
			return ErrCrashed
		case <-timer.C:
			s.orderMu.Lock()
			s.removeOrderWaiterLocked(w)
			s.orderMu.Unlock()
			if s.crashed.Load() {
				return ErrCrashed
			}
			return fmt.Errorf("%w: waited for version %d, announced stuck at %d",
				ErrOrderTimeout, from, s.AnnouncedVersion())
		}
	}
	return tx.applyCommit(to)
}

// applyCommit is the shared tail of every update commit: latch the
// state against Kill, allocate the install sequence, install every row
// version stamped with it, publish the sequence in order (so readers
// never observe a torn commit), release write locks
// (first-committer-wins), and finally advance the commit-order
// semaphore to announceTo (0 = unlabeled commit, no-op).
//
// Labeled commits (announceTo > 0) additionally pass the store's apply
// gate: installation and the announce advance form one critical
// section, and a commit whose range was announced past while it waited
// (a catch-up resync overtook it) skips installation entirely instead
// of writing stale row versions over newer ones.
func (tx *Tx) applyCommit(announceTo uint64) error {
	s := tx.store
	if s.crashed.Load() {
		return ErrCrashed
	}
	if !tx.state.CompareAndSwap(txActive, txDone) {
		if tx.state.Load() == txKilled {
			return ErrTxKilled
		}
		return ErrTxDone
	}
	tx.mu.Lock()
	held := tx.held
	tx.held = nil
	tx.mu.Unlock()
	if s.consumeFailNextCommit() {
		s.stats.aborts.Add(1)
		s.releaseItems(tx.id, held, false)
		s.unregister(tx.id)
		return ErrCommitRejected
	}
	gated := announceTo > 0
	if gated {
		s.applyGate.Lock()
		if s.announced.Load() >= announceTo {
			s.applyGate.Unlock()
			return tx.finishSupersededLatched(held)
		}
	}
	// From here the commit must complete unconditionally: a stall
	// between sequence allocation and publication would wedge every
	// later committer's publication wait. Everything below is pure
	// memory work.
	minSnap := s.minActiveSnapshot()
	seq := s.seqAlloc.Add(1)
	for item, pw := range tx.writes {
		s.installWrite(item, pw, seq, minSnap)
	}
	// Publish strictly in sequence order: seq becomes visible to new
	// snapshots only after commits 1..seq-1 are fully installed and
	// published, so a snapshot at v sees every commit <= v completely
	// or not at all.
	s.pubMu.Lock()
	for s.published.Load() != seq-1 {
		s.pubCond.Wait()
	}
	s.published.Store(seq)
	s.pubCond.Broadcast()
	s.pubMu.Unlock()
	if gated {
		s.advanceAnnounced(announceTo)
		s.applyGate.Unlock()
	}
	s.stats.commits.Add(1)
	s.releaseItems(tx.id, held, true)
	s.unregister(tx.id)
	s.chargeCheckpoint(len(tx.writes))
	if gated {
		// The announce advance may have made deferred-publication
		// commits (CommitLabeledAsync) eligible; publish them now that
		// the gate is free.
		s.drainPending()
	}
	return nil
}

// finishSuperseded resolves a labeled commit whose version range a
// catch-up applier already carried into the state: the transaction's
// effects are (or are overwritten) in the database, so it finishes as
// a successful commit without installing anything. Locks release as
// committed — first-committer-wins competitors must still abort.
func (tx *Tx) finishSuperseded() error {
	if !tx.state.CompareAndSwap(txActive, txDone) {
		if tx.state.Load() == txKilled {
			return ErrTxKilled
		}
		return ErrTxDone
	}
	tx.mu.Lock()
	held := tx.held
	tx.held = nil
	tx.mu.Unlock()
	return tx.finishSupersededLatched(held)
}

// finishSupersededLatched is the tail of finishSuperseded for callers
// that already latched the state and collected the held locks.
func (tx *Tx) finishSupersededLatched(held []core.ItemID) error {
	s := tx.store
	s.stats.superseded.Add(1)
	s.stats.commits.Add(1)
	s.releaseItems(tx.id, held, true)
	s.unregister(tx.id)
	return nil
}

// Commit record encoding: uint64 from, uint64 to, writeset.

func encodeCommitRecord(from, to uint64, ws *core.Writeset) []byte {
	buf := make([]byte, 0, 16+ws.Size())
	buf = binary.BigEndian.AppendUint64(buf, from)
	buf = binary.BigEndian.AppendUint64(buf, to)
	return ws.Encode(buf)
}

// CommitRecord is one decoded WAL commit record.
type CommitRecord struct {
	From, To uint64
	WS       *core.Writeset
}

// DecodeCommitRecord parses a WAL record payload.
func DecodeCommitRecord(payload []byte) (CommitRecord, error) {
	if len(payload) < 16 {
		return CommitRecord{}, fmt.Errorf("mvstore: short commit record (%d bytes)", len(payload))
	}
	rec := CommitRecord{
		From: binary.BigEndian.Uint64(payload[0:8]),
		To:   binary.BigEndian.Uint64(payload[8:16]),
	}
	ws, _, err := core.DecodeWriteset(payload[16:])
	if err != nil {
		return CommitRecord{}, err
	}
	rec.WS = ws
	return rec, nil
}
