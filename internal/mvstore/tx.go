package mvstore

import (
	"encoding/binary"
	"fmt"
	"time"

	"tashkent/internal/core"
)

// pendingWrite is one buffered row modification of an active
// transaction.
type pendingWrite struct {
	kind    core.OpKind
	cols    map[string][]byte // full row (insert) or modified cols (update)
	deleted bool
}

// WriteHook observes each captured write operation as it happens —
// the paper's trigger-to-memory-mapped-file channel that exposes
// partial writesets to the proxy. Returning an error aborts the write
// (and the proxy then aborts the transaction).
type WriteHook func(op core.WriteOp) error

// Tx is one transaction handle. A Tx is used by a single session
// goroutine; the store serializes internally.
type Tx struct {
	store    *Store
	id       uint64
	snapshot uint64
	writes   map[core.ItemID]*pendingWrite
	ws       core.Writeset // capture order preserved
	held     []core.ItemID
	hook     WriteHook
	done     bool
	killed   bool
}

// ID returns the transaction identifier (used with Store.Kill).
func (tx *Tx) ID() uint64 { return tx.id }

// Snapshot returns the internal MVCC sequence this transaction reads
// from.
func (tx *Tx) Snapshot() uint64 { return tx.snapshot }

// SetWriteHook installs the per-write observer. It must be set before
// the first write.
func (tx *Tx) SetWriteHook(h WriteHook) { tx.hook = h }

// Writeset returns the writeset captured so far. The returned value
// aliases internal state and must not be modified; Clone it to keep.
func (tx *Tx) Writeset() *core.Writeset { return &tx.ws }

func (tx *Tx) check() error {
	if tx.killed {
		return ErrTxKilled
	}
	if tx.done {
		return ErrTxDone
	}
	return nil
}

// Read returns the named columns of a row visible in the transaction's
// snapshot (its own uncommitted writes win). found is false if the row
// does not exist in the snapshot.
func (tx *Tx) Read(tableName, key string) (cols map[string][]byte, found bool, err error) {
	if err := tx.check(); err != nil {
		return nil, false, err
	}
	tx.store.maybePageMiss()
	item := core.ItemID{Table: tableName, Key: key}

	s := tx.store
	s.mu.Lock()
	s.stats.RowReads++
	if pw, ok := tx.writes[item]; ok {
		defer s.mu.Unlock()
		if pw.deleted {
			return nil, false, nil
		}
		base := map[string][]byte{}
		if pw.kind == core.OpUpdate {
			if t := s.tables[tableName]; t != nil {
				if rv := t.visible(key, tx.snapshot); rv != nil {
					for c, v := range rv.cols {
						base[c] = v
					}
				}
			}
		}
		for c, v := range pw.cols {
			base[c] = v
		}
		return cloneCols(base), true, nil
	}
	t := s.tables[tableName]
	if t == nil {
		s.mu.Unlock()
		return nil, false, nil
	}
	rv := t.visible(key, tx.snapshot)
	if rv == nil {
		s.mu.Unlock()
		return nil, false, nil
	}
	out := cloneCols(rv.cols)
	s.mu.Unlock()
	return out, true, nil
}

// ReadCol is a convenience single-column read.
func (tx *Tx) ReadCol(tableName, key, col string) ([]byte, bool, error) {
	cols, found, err := tx.Read(tableName, key)
	if err != nil || !found {
		return nil, found, err
	}
	v, ok := cols[col]
	return v, ok, nil
}

func cloneCols(in map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(in))
	for c, v := range in {
		out[c] = append([]byte(nil), v...)
	}
	return out
}

// write is the shared path of Insert/Update/Delete: run the hook
// (eager pre-certification), take the row write lock, buffer the
// modification, and capture the writeset entry.
func (tx *Tx) write(op core.WriteOp) error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.hook != nil {
		if err := tx.hook(op); err != nil {
			return err
		}
	}
	item := op.Item()
	if err := tx.store.acquireLock(tx, item); err != nil {
		return err
	}
	s := tx.store
	s.mu.Lock()
	if tx.killed { // killed while acquiring
		s.mu.Unlock()
		return ErrTxKilled
	}
	s.stats.RowWrites++
	pw := tx.writes[item]
	if pw == nil {
		pw = &pendingWrite{cols: map[string][]byte{}}
		tx.writes[item] = pw
	}
	switch op.Kind {
	case core.OpInsert:
		pw.kind = core.OpInsert
		pw.deleted = false
		pw.cols = map[string][]byte{}
		for _, c := range op.Cols {
			pw.cols[c.Col] = append([]byte(nil), c.Value...)
		}
	case core.OpUpdate:
		if pw.kind != core.OpInsert {
			pw.kind = core.OpUpdate
		}
		pw.deleted = false
		for _, c := range op.Cols {
			pw.cols[c.Col] = append([]byte(nil), c.Value...)
		}
	case core.OpDelete:
		pw.kind = core.OpDelete
		pw.deleted = true
		pw.cols = map[string][]byte{}
	default:
		s.mu.Unlock()
		return fmt.Errorf("mvstore: invalid op kind %d", op.Kind)
	}
	tx.ws.Add(op)
	s.mu.Unlock()
	return nil
}

// Insert writes a full new row (or fully replaces an existing one,
// like the INSERT the writeset propagation replays).
func (tx *Tx) Insert(tableName, key string, cols map[string][]byte) error {
	op := core.WriteOp{Kind: core.OpInsert, Table: tableName, Key: key}
	for c, v := range cols {
		op.Cols = append(op.Cols, core.ColUpdate{Col: c, Value: append([]byte(nil), v...)})
	}
	return tx.write(op)
}

// Update modifies the given columns of a row.
func (tx *Tx) Update(tableName, key string, cols map[string][]byte) error {
	op := core.WriteOp{Kind: core.OpUpdate, Table: tableName, Key: key}
	for c, v := range cols {
		op.Cols = append(op.Cols, core.ColUpdate{Col: c, Value: append([]byte(nil), v...)})
	}
	return tx.write(op)
}

// Delete removes a row.
func (tx *Tx) Delete(tableName, key string) error {
	return tx.write(core.WriteOp{Kind: core.OpDelete, Table: tableName, Key: key})
}

// ApplyWriteset replays a propagated remote writeset through the
// normal write path (locks, triggers and all — remote writesets can
// conflict and even deadlock with local transactions exactly as in the
// paper).
func (tx *Tx) ApplyWriteset(ws *core.Writeset) error {
	if ws == nil {
		return nil
	}
	for i := range ws.Ops {
		if err := tx.write(ws.Ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// Abort rolls the transaction back.
func (tx *Tx) Abort() error {
	if tx.killed {
		return nil // already dead and cleaned up
	}
	if tx.done {
		return ErrTxDone
	}
	s := tx.store
	s.mu.Lock()
	s.stats.Aborts++
	s.releaseLocksLocked(tx, false)
	s.finishLocked(tx)
	s.mu.Unlock()
	return nil
}

// Commit finishes the transaction with standalone-database semantics:
// read-only transactions finish immediately; update transactions write
// a commit record (group-committed with concurrent committers) and are
// announced in whatever order they complete. Equivalent to
// CommitLabeled with zero labels.
func (tx *Tx) Commit() error { return tx.CommitLabeled(0, 0) }

// CommitLabeled is Commit with a recovery label attached to the commit
// record: the transaction covers global versions (from, to]. The
// middleware proxy uses labels so WAL recovery can report which global
// versions survived (paper §7.2). Announce order is arrival order —
// callers (Base/Tashkent-MW proxies) serialize externally.
func (tx *Tx) CommitLabeled(from, to uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	if tx.ws.Empty() {
		s := tx.store
		s.mu.Lock()
		s.stats.ReadOnlyCommits++
		s.finishLocked(tx)
		s.mu.Unlock()
		return nil
	}
	rec := encodeCommitRecord(from, to, &tx.ws)
	if err := tx.store.log.Append(rec); err != nil {
		return ErrCrashed
	}
	return tx.announce(func(s *Store) {
		if to > s.announced {
			s.announced = to
			s.wakeOrderWaitersLocked()
		}
	}, nil)
}

// CommitOrdered finishes an update transaction under the extended API
// of paper §8.3: the commit covers global versions (from, to]. The
// commit record is written (and group-committed) immediately, then the
// commit waits on the order semaphore until the database has announced
// version from, and announcing it advances the semaphore to to.
// Concurrent CommitOrdered calls therefore share fsyncs while still
// becoming visible in the exact global order.
func (tx *Tx) CommitOrdered(from, to uint64) error {
	if err := tx.check(); err != nil {
		return err
	}
	if to <= from {
		return fmt.Errorf("mvstore: CommitOrdered(%d, %d): empty version range", from, to)
	}
	if tx.ws.Empty() {
		return fmt.Errorf("mvstore: CommitOrdered on read-only transaction")
	}
	rec := encodeCommitRecord(from, to, &tx.ws)
	if err := tx.store.log.Append(rec); err != nil {
		return ErrCrashed
	}

	s := tx.store
	deadline := time.Now().Add(s.cfg.OrderTimeout)
	for {
		s.mu.Lock()
		if s.crashed {
			s.mu.Unlock()
			return ErrCrashed
		}
		if tx.killed {
			s.mu.Unlock()
			return ErrTxKilled
		}
		if s.announced >= from {
			break // announce below, still holding s.mu
		}
		w := orderWaiter{from: from, ch: make(chan struct{})}
		s.orderWait = append(s.orderWait, w)
		s.mu.Unlock()
		select {
		case <-w.ch:
		case <-time.After(time.Until(deadline)):
			s.mu.Lock()
			// Remove our waiter entry if still present.
			for i := range s.orderWait {
				if s.orderWait[i].ch == w.ch {
					s.orderWait = append(s.orderWait[:i], s.orderWait[i+1:]...)
					break
				}
			}
			crashed := s.crashed
			s.mu.Unlock()
			if crashed {
				return ErrCrashed
			}
			return fmt.Errorf("%w: waited for version %d, announced stuck at %d",
				ErrOrderTimeout, from, s.AnnouncedVersion())
		}
	}
	// s.mu held, announced >= from.
	return tx.announceLocked(func(s *Store) {
		if to > s.announced {
			s.announced = to
			s.wakeOrderWaitersLocked()
		}
	}, nil)
}

// announce applies the transaction's writes at the next internal MVCC
// sequence and finishes it. extra runs under the lock after
// application (semaphore bookkeeping).
func (tx *Tx) announce(extra func(*Store), _ interface{}) error {
	tx.store.mu.Lock()
	return tx.announceLocked(extra, nil)
}

// announceLocked completes the commit with s.mu held; it unlocks.
func (tx *Tx) announceLocked(extra func(*Store), _ interface{}) error {
	s := tx.store
	if s.crashed {
		s.mu.Unlock()
		return ErrCrashed
	}
	if tx.killed {
		s.mu.Unlock()
		return ErrTxKilled
	}
	if s.failNextCommit > 0 {
		s.failNextCommit--
		s.stats.Aborts++
		s.releaseLocksLocked(tx, false)
		s.finishLocked(tx)
		s.mu.Unlock()
		return ErrCommitRejected
	}
	s.mvccSeq++
	seq := s.mvccSeq
	minSnap := s.minActiveSnapshotLocked()
	rowWrites := 0
	for item, pw := range tx.writes {
		t := s.tables[item.Table]
		if t == nil {
			t = &table{rows: make(map[string][]rowVersion)}
			s.tables[item.Table] = t
		}
		rv := rowVersion{seq: seq, deleted: pw.deleted}
		if !pw.deleted {
			base := map[string][]byte{}
			if pw.kind == core.OpUpdate {
				if prev := t.visible(item.Key, seq-1); prev != nil {
					for c, v := range prev.cols {
						base[c] = v
					}
				}
			}
			for c, v := range pw.cols {
				base[c] = v
			}
			rv.cols = base
		}
		t.rows[item.Key] = append(t.rows[item.Key], rv)
		t.prune(item.Key, minSnap)
		rowWrites++
	}
	s.stats.Commits++
	s.releaseLocksLocked(tx, true)
	s.finishLocked(tx)
	if extra != nil {
		extra(s)
	}
	s.mu.Unlock()
	s.chargeCheckpoint(rowWrites)
	return nil
}

// Commit record encoding: uint64 from, uint64 to, writeset.

func encodeCommitRecord(from, to uint64, ws *core.Writeset) []byte {
	buf := make([]byte, 0, 16+ws.Size())
	buf = binary.BigEndian.AppendUint64(buf, from)
	buf = binary.BigEndian.AppendUint64(buf, to)
	return ws.Encode(buf)
}

// CommitRecord is one decoded WAL commit record.
type CommitRecord struct {
	From, To uint64
	WS       *core.Writeset
}

// DecodeCommitRecord parses a WAL record payload.
func DecodeCommitRecord(payload []byte) (CommitRecord, error) {
	if len(payload) < 16 {
		return CommitRecord{}, fmt.Errorf("mvstore: short commit record (%d bytes)", len(payload))
	}
	rec := CommitRecord{
		From: binary.BigEndian.Uint64(payload[0:8]),
		To:   binary.BigEndian.Uint64(payload[8:16]),
	}
	ws, _, err := core.DecodeWriteset(payload[16:])
	if err != nil {
		return CommitRecord{}, err
	}
	rec.WS = ws
	return rec, nil
}
