// Quickstart: start a 3-replica Tashkent-MW database in-process,
// commit an update on one replica and read it back from another.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tashkent"
)

func main() {
	db, err := tashkent.Start(tashkent.Config{
		Mode:     tashkent.ModeTashkentMW,
		Replicas: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// An update transaction on replica 0: executes locally, commits
	// through certification and the global order.
	tx, err := db.Begin(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.Update("accounts", "alice", map[string][]byte{"balance": []byte("100")}); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed alice=100 on replica 0")

	// Writesets propagate to the other replicas.
	if err := db.Converge(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < db.Replicas(); i++ {
		ro, err := db.Begin(i)
		if err != nil {
			log.Fatal(err)
		}
		v, ok, err := ro.ReadCol("accounts", "alice", "balance")
		if err != nil {
			log.Fatal(err)
		}
		ro.Abort()
		fmt.Printf("replica %d reads alice balance = %s (found=%v)\n", i, v, ok)
	}
}
