// Quickstart: start a 3-replica Tashkent-MW database in-process,
// commit an update through a session and read it back — the session's
// causal token guarantees the write is visible no matter which replica
// the next transaction lands on.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"tashkent"
)

func main() {
	db, err := tashkent.Start(tashkent.Config{
		Mode:     tashkent.ModeTashkentMW,
		Replicas: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ctx := context.Background()
	sess := db.Session() // round-robin routing, causal token

	// An update transaction: the session routes it to a replica, the
	// executor absorbs benign certification aborts, and the commit runs
	// through certification and the global order.
	err = sess.RunTx(ctx, func(tx *tashkent.Tx) error {
		fmt.Printf("updating alice on replica %d\n", tx.Replica())
		return tx.Update("accounts", "alice", map[string][]byte{"balance": []byte("100")})
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed alice=100; session token =", sess.Token())

	// Read it back once per replica: each Begin routes to the next
	// replica in rotation and waits until that replica has caught up to
	// the session's token — read-your-writes without Converge.
	for i := 0; i < db.Replicas(); i++ {
		ro, err := sess.Begin(ctx, tashkent.ReadOnly())
		if err != nil {
			log.Fatal(err)
		}
		v, ok, err := ro.ReadCol("accounts", "alice", "balance")
		if err != nil {
			log.Fatal(err)
		}
		ro.Abort()
		fmt.Printf("replica %d reads alice balance = %s (found=%v)\n", ro.Replica(), v, ok)
	}
}
