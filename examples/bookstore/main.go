// Bookstore: the TPC-W-flavoured scenario from the paper's
// motivation — an online store where browsing (read-only) traffic
// vastly outnumbers order placement. Read-only transactions run
// entirely on their local replica and never block or abort (the GSI
// property), while orders replicate through certification.
//
// Every simulated user owns a Session routed by the ReadWriteSplit
// policy: browsing fans out across all four replicas while orders
// stick to two writers. The example runs the same mixed load against
// Base and Tashkent-MW with the paper's disk model (scaled 10x) and
// prints the throughput difference.
//
//	go run ./examples/bookstore
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tashkent"
	"tashkent/internal/workload"
)

func main() {
	for _, mode := range []tashkent.Mode{tashkent.ModeBase, tashkent.ModeTashkentMW} {
		res, err := run(mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s throughput=%6.0f txn/s  read RT=%v  update RT=%v  aborts=%.1f%%\n",
			mode, res.Throughput,
			res.ReadRT.Mean.Round(100*time.Microsecond),
			res.UpdateRT.Mean.Round(100*time.Microsecond),
			res.AbortRate()*100)
	}
}

func run(mode tashkent.Mode) (workload.Result, error) {
	db, err := tashkent.Start(tashkent.Config{
		Mode:        mode,
		Replicas:    4,
		DiskProfile: tashkent.PaperDisks(10), // 0.8 ms fsyncs
	})
	if err != nil {
		return workload.Result{}, err
	}
	defer db.Close()

	ctx := context.Background()
	store := &workload.TPCW{Items: 500, UpdateFraction: 0.2}
	if err := store.Populate(ctx, db.Session().WorkloadBegin()); err != nil {
		return workload.Result{}, err
	}
	if err := db.Converge(10 * time.Second); err != nil {
		return workload.Result{}, err
	}

	// One session per client group; reads fan out over all replicas,
	// orders go to a 2-replica writer set.
	begins := make([]workload.BeginFunc, db.Replicas())
	for i := range begins {
		sess := db.Session(tashkent.WithPolicy(tashkent.ReadWriteSplit(2)))
		begins[i] = sess.WorkloadBegin()
	}
	return workload.Run(ctx, store, begins, workload.RunConfig{
		ClientsPerReplica: 6,
		Warmup:            200 * time.Millisecond,
		Measure:           time.Second,
		Seed:              1,
	}), nil
}
