// Failover: exercise the fault-tolerance story of paper §7 end to
// end — crash and recover a Tashkent-MW replica (dump + writeset
// replay) and crash the certifier leader mid-stream (the group elects
// a new leader and no committed transaction is lost). The session API
// rides through the replica crash transparently — Begin skips the
// crashed replica. Leader loss is different: mid-election commits fail
// with transport/not-leader errors, which are not benign certification
// aborts, so RunTx surfaces them and an explicit bounded retry loop
// rides the election out.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tashkent"
)

func main() {
	db, err := tashkent.Start(tashkent.Config{
		Mode:     tashkent.ModeTashkentMW,
		Replicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	sess := db.Session()

	put := func(ctx context.Context, key, val string) error {
		return sess.RunTx(ctx, func(tx *tashkent.Tx) error {
			return tx.Update("t", key, map[string][]byte{"v": []byte(val)})
		})
	}

	// Build up some state and take the periodic backup dump.
	for i := 0; i < 20; i++ {
		if err := put(ctx, fmt.Sprintf("k%02d", i), "before-dump"); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := db.Replica(0).DumpNow(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dump taken at version", db.Replica(0).Proxy().ReplicaVersion())

	// More commits after the dump — these exist only in the
	// certifier's durable log (replica WAL is disabled under MW).
	for i := 20; i < 30; i++ {
		if err := put(ctx, fmt.Sprintf("k%02d", i), "after-dump"); err != nil {
			log.Fatal(err)
		}
	}

	// Crash replica 0. The session's routing notices the dead replica
	// and keeps serving on replica 1 — no caller-side replica math.
	db.Cluster().CrashReplica(0)
	fmt.Println("replica 0 crashed; session keeps committing during the outage")
	if err := put(ctx, "during-outage", "yes"); err != nil {
		log.Fatal(err)
	}

	// Recover: restore the dump, replay writesets from the certifier.
	report, err := db.Cluster().RecoverReplica(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica 0 recovered: dump=%dB restored to v%d, %d writesets re-applied in %v\n",
		report.DumpBytes, report.RecoveredVersion, report.WritesetsApplied,
		(report.RestoreDuration + report.ResyncDuration).Round(time.Millisecond))

	// Now kill the certifier leader; a backup takes over.
	leader := db.Cluster().CertLeader()
	for i := 0; i < 3; i++ {
		if db.Cluster().Certifier(i) == leader {
			db.Cluster().CrashCertifier(i)
			fmt.Printf("certifier leader %d crashed\n", i)
			break
		}
	}
	// Mid-election commits fail with transport/not-leader errors. Those
	// are not the benign certification aborts RunTx absorbs, so the
	// executor surfaces them immediately — ride the election out with
	// an explicit retry loop bounded by the context deadline.
	electCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for {
		if err := put(electCtx, "post-failover", "yes"); err == nil {
			break
		}
		if electCtx.Err() != nil {
			log.Fatal("system did not recover from leader crash")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("new certifier leader elected; commits flowing again")

	// Verify: both replicas converge to identical state.
	if err := db.Converge(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fp0 := db.Replica(0).Store().Fingerprint()
	fp1 := db.Replica(1).Store().Fingerprint()
	fmt.Printf("state fingerprints: replica0=%08x replica1=%08x equal=%v\n", fp0, fp1, fp0 == fp1)
	if fp0 != fp1 {
		log.Fatal("replicas diverged")
	}
	fmt.Println("no committed transaction was lost")
}
