// Banking: a TPC-B-style money-transfer service on a replicated
// database, demonstrating snapshot-isolation conflicts and the
// auto-retry executor. Each concurrent client owns a Session (routed
// by least-in-flight load balancing) and runs transfers through
// RunTx, which transparently retries the write-write conflicts on hot
// accounts with capped exponential backoff.
//
//	go run ./examples/banking
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"tashkent"
)

const (
	accounts  = 20
	replicas  = 3
	clients   = 6
	transfers = 30 // per client
)

func main() {
	db, err := tashkent.Start(tashkent.Config{
		Mode:     tashkent.ModeTashkentAPI, // ordered concurrent commits
		Replicas: replicas,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// Seed the accounts with 1000 each.
	err = db.RunTx(ctx, func(tx *tashkent.Tx) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Insert("accounts", acct(i), map[string][]byte{"balance": []byte("1000")}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Client sessions start with a zero causal token — they have
	// observed nothing yet — so make the seed visible everywhere before
	// they begin, or a lagging replica would misread missing accounts
	// as empty ones.
	if err := db.Converge(5 * time.Second); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, dropped := 0, 0
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One session per client: its causal token makes the
			// client's own transfers visible to its next read no matter
			// which replica serves it.
			sess := db.Session(
				tashkent.WithPolicy(tashkent.LeastInFlight()),
				tashkent.WithMaxRetries(50), // hot accounts conflict a lot
			)
			r := rand.New(rand.NewSource(int64(c)))
			for t := 0; t < transfers; t++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				if from == to {
					continue
				}
				amount := 1 + r.Intn(50)
				ok, err := transfer(ctx, sess, from, to, amount)
				if err != nil {
					log.Fatalf("transfer failed: %v", err)
				}
				mu.Lock()
				if ok {
					committed++
				} else {
					dropped++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Invariant: total money is conserved, on every replica.
	if err := db.Converge(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	sess := db.Session()
	for i := 0; i < replicas; i++ {
		total := 0
		tx, err := sess.Begin(ctx, tashkent.ReadOnly())
		if err != nil {
			log.Fatal(err)
		}
		for a := 0; a < accounts; a++ {
			v, _, err := tx.ReadCol("accounts", acct(a), "balance")
			if err != nil {
				log.Fatal(err)
			}
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		rep := tx.Replica()
		tx.Abort()
		fmt.Printf("replica %d: total balance = %d (want %d)\n", rep, total, accounts*1000)
		if total != accounts*1000 {
			log.Fatal("MONEY NOT CONSERVED — snapshot isolation violated")
		}
	}
	fmt.Printf("%d transfers committed, %d dropped for insufficient funds\n", committed, dropped)
}

func acct(i int) string { return fmt.Sprintf("a%03d", i) }

// transfer moves amount between two accounts in one RunTx transaction;
// conflict aborts are retried by the executor. Returns false if the
// transfer was dropped for insufficient funds.
func transfer(ctx context.Context, sess *tashkent.Session, from, to, amount int) (bool, error) {
	moved := false
	err := sess.RunTx(ctx, func(tx *tashkent.Tx) error {
		moved = false
		fromBal, _, err := tx.ReadCol("accounts", acct(from), "balance")
		if err != nil {
			return err
		}
		toBal, _, err := tx.ReadCol("accounts", acct(to), "balance")
		if err != nil {
			return err
		}
		f, _ := strconv.Atoi(string(fromBal))
		t, _ := strconv.Atoi(string(toBal))
		if f < amount {
			return tx.Abort() // business-level give-up: RunTx won't retry
		}
		if err := tx.Update("accounts", acct(from), map[string][]byte{"balance": []byte(strconv.Itoa(f - amount))}); err != nil {
			return err
		}
		if err := tx.Update("accounts", acct(to), map[string][]byte{"balance": []byte(strconv.Itoa(t + amount))}); err != nil {
			return err
		}
		moved = true
		return nil
	})
	return moved, err
}
