// Banking: a TPC-B-style money-transfer service on a replicated
// database, demonstrating snapshot-isolation conflicts and retries.
// Concurrent clients on different replicas transfer between accounts;
// write-write conflicts on the same account surface as
// tashkent.ErrAborted and are retried against a fresh snapshot.
//
//	go run ./examples/banking
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"tashkent"
)

const (
	accounts  = 20
	replicas  = 3
	clients   = 6
	transfers = 30 // per client
)

func main() {
	db, err := tashkent.Start(tashkent.Config{
		Mode:     tashkent.ModeTashkentAPI, // ordered concurrent commits
		Replicas: replicas,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Seed the accounts with 1000 each.
	seed, err := db.Begin(0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < accounts; i++ {
		if err := seed.Insert("accounts", acct(i), map[string][]byte{"balance": []byte("1000")}); err != nil {
			log.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := db.Converge(5 * time.Second); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, retried := 0, 0
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(c)))
			for t := 0; t < transfers; t++ {
				from, to := r.Intn(accounts), r.Intn(accounts)
				if from == to {
					continue
				}
				amount := 1 + r.Intn(50)
				for {
					err := transfer(db, c%replicas, from, to, amount)
					if err == nil {
						mu.Lock()
						committed++
						mu.Unlock()
						break
					}
					if tashkent.IsAborted(err) {
						mu.Lock()
						retried++
						mu.Unlock()
						// Brief randomized backoff before retrying
						// against a fresh snapshot.
						time.Sleep(time.Duration(r.Intn(500)) * time.Microsecond)
						continue
					}
					log.Fatalf("transfer failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	// Invariant: total money is conserved, on every replica.
	if err := db.Converge(5 * time.Second); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < replicas; i++ {
		total := 0
		tx, err := db.Begin(i)
		if err != nil {
			log.Fatal(err)
		}
		for a := 0; a < accounts; a++ {
			v, _, err := tx.ReadCol("accounts", acct(a), "balance")
			if err != nil {
				log.Fatal(err)
			}
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		tx.Abort()
		fmt.Printf("replica %d: total balance = %d (want %d)\n", i, total, accounts*1000)
		if total != accounts*1000 {
			log.Fatal("MONEY NOT CONSERVED — snapshot isolation violated")
		}
	}
	fmt.Printf("%d transfers committed, %d conflict retries\n", committed, retried)
}

func acct(i int) string { return fmt.Sprintf("a%03d", i) }

// transfer moves amount between two accounts in one transaction.
func transfer(db *tashkent.DB, replica, from, to, amount int) error {
	tx, err := db.Begin(replica)
	if err != nil {
		return err
	}
	fromBal, _, err := tx.ReadCol("accounts", acct(from), "balance")
	if err != nil {
		tx.Abort()
		return err
	}
	toBal, _, err := tx.ReadCol("accounts", acct(to), "balance")
	if err != nil {
		tx.Abort()
		return err
	}
	f, _ := strconv.Atoi(string(fromBal))
	t, _ := strconv.Atoi(string(toBal))
	if f < amount {
		return tx.Abort() // insufficient funds: just drop the txn
	}
	if err := tx.Update("accounts", acct(from), map[string][]byte{"balance": []byte(strconv.Itoa(f - amount))}); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Update("accounts", acct(to), map[string][]byte{"balance": []byte(strconv.Itoa(t + amount))}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}
