// Command certd runs one certifier node as a TCP daemon. A group of
// three gives the paper's leader + two backups deployment (§7.3).
//
// Example 3-node group on one machine:
//
//	certd -id 0 -listen :7100 -peers 0=localhost:7100,1=localhost:7101,2=localhost:7102
//	certd -id 1 -listen :7101 -peers 0=localhost:7100,1=localhost:7101,2=localhost:7102
//	certd -id 2 -listen :7102 -peers 0=localhost:7100,1=localhost:7101,2=localhost:7102
//
// Replica daemons (cmd/tashd) point at the same peer list.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
)

func main() {
	var (
		id      = flag.Int("id", 0, "this node's id within the group")
		listen  = flag.String("listen", ":7100", "listen address")
		peers   = flag.String("peers", "", "comma-separated id=host:port list for the whole group")
		fsyncMS = flag.Int("fsync-us", 800, "simulated log fsync latency in microseconds (8000 = paper disk)")
		noDur   = flag.Bool("no-durability", false, "skip disk writes (tashAPInoCERT ablation)")
	)
	flag.Parse()

	peerClients, err := parsePeers(*peers, *id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv := certifier.New(certifier.Config{
		ID:    *id,
		Peers: peerClients,
		Disk: simdisk.New(simdisk.Profile{
			FsyncLatency: time.Duration(*fsyncMS) * time.Microsecond,
			FsyncJitter:  time.Duration(*fsyncMS/4) * time.Microsecond,
		}, int64(*id)),
		DisableDurability: *noDur,
		ElectionTimeout:   300 * time.Millisecond,
		Seed:              int64(*id) + 1,
	})
	ts, err := transport.ServeTCP(*listen, srv.Handle, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	srv.Start()
	fmt.Printf("certd %d listening on %s (%d peers)\n", *id, ts.Addr(), len(peerClients))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Stop()
	ts.Close()
}

func parsePeers(s string, self int) (map[int]transport.Client, error) {
	out := make(map[int]transport.Client)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer %q (want id=host:port)", part)
		}
		id, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q", kv[0])
		}
		if id == self {
			continue
		}
		out[id] = transport.DialTCP(kv[1])
	}
	return out, nil
}
