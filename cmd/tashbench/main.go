// Command tashbench regenerates the tables and figures of the
// Tashkent paper's evaluation (§9). Each experiment sweeps replica
// counts for the systems under comparison and prints throughput and
// response-time series.
//
// Usage:
//
//	tashbench -exp fig4            # AllUpdates throughput/RT, shared IO
//	tashbench -exp all -scale 5    # everything, at 1/5 of paper latencies
//	tashbench -exp fig14 -replicas 1,4,8,15
//	tashbench -exp policies -policy roundrobin,leastinflight,rwsplit
//	tashbench -exp batching -replicas 1,4,8,15 -maxbatch 256
//	tashbench -exp readscale -clientsweep 1,2,4,8,16,32
//	tashbench -exp partitions -partitions 1,2,4,8 -replicas 4 -clients 32
//	tashbench -exp chaos -seed 1 -seeds 20
//	tashbench -exp gray -seed 1 -seeds 10
//	tashbench -exp overload -measure 3s
//	tashbench -exp wire -wireout BENCH_wire.json
//	tashbench -exp smoke -daemons localhost:7200,localhost:7201,localhost:7202
//
// Experiments: fig4 (covers Fig 4+5), fig6 (6+7), fig8 (8+9),
// fig10 (10+11), fig12 (12+13), fig14, standalone (§9.2 text),
// recovery (§9.6), policies (session-API routing comparison),
// batching (update-heavy writesets-per-fsync / pipeline batch-size
// sweep — the paper's headline figure), readscale (single-replica
// TPC-W client sweep exercising the storage engine's snapshot-read
// path), partitions (certifier-group sweep: update-heavy
// certification throughput vs keyspace partition count at a fixed
// replica count — the first value of -replicas — with per-group
// batching and disk-utilization breakdown), applyscale (parallel
// dependency-tracked writeset apply: worker sweep over a pre-labeled
// disjoint stream vs the serial-gate baseline, a zipfian hot-key
// conflicted stream, and apply-lag profiling under a 4-group
// partitioned merged stream — the experiment behind BENCH_apply.json),
// wire (the same update-heavy and read-mostly sweeps over the
// in-memory fabric and over real localhost TCP sockets, plus binary
// vs gob codec sizes — the experiment behind BENCH_wire.json; -wireout
// writes the JSON), smoke (drives an externally launched tashd/certd
// cluster given by -daemons: commits across every daemon, pulls to
// convergence, asserts identical fingerprints), chaos (seeded
// deterministic fault injection — partitions,
// drops, duplicates, reorders, replica and certifier crash-restarts —
// with a machine-checked safety-invariant verdict per seed; -seed
// selects the first seed, -seeds how many consecutive seeds to run,
// and a failing run replays exactly from its printed seed), gray
// (seeded gray-failure drills: slow/lossy victim links and slow-disk
// episodes through the same invariant checker, plus the router
// ejection and read-only degradation drills), overload (open-loop
// goodput-vs-offered-load ladder past the saturation knee,
// exercising the certifier's admission control; -measure scales the
// windows), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tashkent/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig4|fig6|fig8|fig10|fig12|fig14|standalone|recovery|policies|batching|readscale|partitions|applyscale|wire|smoke|chaos|gray|overload|all")
		scale    = flag.Int("scale", 10, "divide paper disk latencies by this factor (1 = full 8ms fsyncs)")
		replicas = flag.String("replicas", "1,2,4,8,12,15", "comma-separated replica counts to sweep")
		clients  = flag.Int("clients", 10, "closed-loop clients per replica")
		measure  = flag.Duration("measure", 1500*time.Millisecond, "measurement window per point")
		warmup   = flag.Duration("warmup", 300*time.Millisecond, "warmup per point")
		seed     = flag.Int64("seed", 1, "random seed")
		maxBatch = flag.Int("maxbatch", 0, "certifier pipeline batch cap (0 = certifier default)")
		maxWait  = flag.Duration("maxwait", 0, "certifier pipeline batch linger (0 = drain-only)")
		policies = flag.String("policy", "roundrobin,leastinflight,rwsplit",
			"comma-separated routing policies for -exp policies: roundrobin|leastinflight|rwsplit")
		clientSweep = flag.String("clientsweep", "1,2,4,8,16,32",
			"comma-separated client counts for -exp readscale")
		chaosSeeds = flag.Int("seeds", 20, "number of consecutive seeds for -exp chaos/gray (starting at -seed)")
		partitions = flag.String("partitions", "1,2,4,8",
			"comma-separated certifier-group counts for -exp partitions")
		daemons = flag.String("daemons", "",
			"comma-separated tashd addresses for -exp smoke (externally launched cluster)")
		wireOut = flag.String("wireout", "",
			"write -exp wire results as JSON to this path (e.g. BENCH_wire.json)")
	)
	flag.Parse()

	counts, err := parseCounts(*replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sweep, err := parseCounts(*clientSweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	parts, err := parseCounts(*partitions)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := harness.Options{
		Scale:             *scale,
		ReplicaCounts:     counts,
		ClientsPerReplica: *clients,
		Warmup:            *warmup,
		Measure:           *measure,
		Seed:              *seed,
		CertMaxBatch:      *maxBatch,
		CertMaxWait:       *maxWait,
		Out:               os.Stdout,
	}

	runs := map[string]func() error{
		"fig4":  func() error { _, err := harness.Fig4and5(opt); return err },
		"fig6":  func() error { _, err := harness.Fig6and7(opt); return err },
		"fig8":  func() error { _, err := harness.Fig8and9(opt); return err },
		"fig10": func() error { _, err := harness.Fig10and11(opt); return err },
		"fig12": func() error { _, err := harness.Fig12and13(opt); return err },
		"fig14": func() error { _, err := harness.Fig14(opt); return err },
		"standalone": func() error {
			if _, err := harness.RunStandaloneComparison(false, opt); err != nil {
				return err
			}
			_, err := harness.RunStandaloneComparison(true, opt)
			return err
		},
		"recovery": func() error { _, err := harness.RunRecoveryExperiment(opt); return err },
		"policies": func() error {
			_, err := harness.RunPolicyComparison(splitPolicies(*policies), opt)
			return err
		},
		"batching":  func() error { _, err := harness.RunBatchingExperiment(opt); return err },
		"readscale": func() error { _, err := harness.RunReadScaleExperiment(sweep, opt); return err },
		"partitions": func() error {
			_, err := harness.RunPartitionsExperiment(parts, counts[0], opt)
			return err
		},
		"applyscale": func() error {
			res, err := harness.RunApplyScaleExperiment(opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stdout, "\napplyscale: disjoint speedup at 8 workers = %.2fx over the serial gate\n", res.Speedup8)
			return nil
		},
		"chaos": func() error {
			if *chaosSeeds < 1 {
				*chaosSeeds = 1
			}
			seeds := make([]int64, *chaosSeeds)
			for i := range seeds {
				seeds[i] = *seed + int64(i)
			}
			_, err := harness.RunChaosExperiment(seeds, opt)
			return err
		},
		"gray": func() error {
			if *chaosSeeds < 1 {
				*chaosSeeds = 1
			}
			seeds := make([]int64, *chaosSeeds)
			for i := range seeds {
				seeds[i] = *seed + int64(i)
			}
			if _, err := harness.RunGrayExperiment(seeds, opt); err != nil {
				return err
			}
			disk, err := harness.RunSlowDiskDrill(*seed, opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stdout, "\nslow-disk drill: ejected after %v, post-ejection p99 %v (slow share %.0f%%), recovered=%v\n",
				disk.EjectAfter, disk.PostP99, 100*disk.PostSlowShare, disk.Recovered)
			deg, err := harness.RunDegradedDrill(opt)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stdout, "degraded drill: %d slow fails before read-only, fail-fast %v, readsOK=%v, writes recovered=%v\n",
				deg.FailsBeforeDegraded, deg.DegradedFailFast, deg.ReadsOKDuring, deg.WriteRecovered)
			return nil
		},
		"overload": func() error { _, err := harness.RunOverloadExperiment(opt); return err },
		"wire": func() error {
			rep, err := harness.RunWireExperiment(opt)
			if err != nil {
				return err
			}
			if *wireOut != "" {
				cmd := fmt.Sprintf("go run ./cmd/tashbench -exp wire -scale %d -measure %v -warmup %v -seed %d", *scale, *measure, *warmup, *seed)
				if err := rep.WriteJSON(*wireOut, cmd); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *wireOut)
			}
			return nil
		},
		"smoke": func() error {
			addrs := splitPolicies(*daemons)
			if len(addrs) == 0 {
				return fmt.Errorf("-exp smoke needs -daemons host:port,host:port,...")
			}
			return harness.RunWireSmoke(addrs, opt)
		},
	}
	order := []string{"fig4", "fig6", "fig8", "fig10", "fig12", "fig14", "standalone", "recovery", "policies", "batching", "readscale", "partitions", "applyscale", "wire", "chaos", "gray", "overload"}

	if *exp == "all" {
		for _, name := range order {
			if err := runs[name](); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	run, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *exp, err)
		os.Exit(1)
	}
}

func splitPolicies(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad replica count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
