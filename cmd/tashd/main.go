// Command tashd runs one database replica as a TCP daemon against a
// certd group. It exposes a small key-value transaction API over the
// same framed transport the internal components use:
//
//	method "kv.get"    request: gob(GetReq)    response: gob(GetResp)
//	method "kv.put"    request: gob(PutReq)    response: gob(PutResp)
//	method "kv.txn"    request: gob(TxnReq)    response: gob(TxnResp)
//
// kv.txn executes a multi-operation read/update transaction atomically
// through the full replication protocol (certification, global
// ordering, writeset propagation).
//
// Two admin methods (empty request payload) support multi-process
// smoke tests and operations:
//
//	method "admin.stat"  response: gob(StatResp)   replication state
//	method "admin.pull"  response: gob(PullResp)   one pull round
//
// Like the embedded client's RunTx executor, write requests absorb the
// benign certification aborts of generalized snapshot isolation: the
// daemon re-executes and re-commits with capped exponential backoff,
// bounded by -txn-timeout, and reports Aborted only once the retry
// budget is spent. Commits run through the context-aware commit path,
// so a request that outlives its deadline aborts its local handle
// instead of blocking a handler goroutine.
//
// Example against a local certd group:
//
//	tashd -id 1 -listen :7200 -mode mw -certifiers localhost:7100,localhost:7101,localhost:7102
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tashkent"
	"tashkent/internal/certifier"
	"tashkent/internal/proxy"
	"tashkent/internal/replica"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
)

// GetReq reads one column.
type GetReq struct{ Table, Key, Col string }

// GetResp carries the value.
type GetResp struct {
	Value []byte
	Found bool
}

// PutReq updates one column in its own transaction.
type PutReq struct {
	Table, Key, Col string
	Value           []byte
}

// PutResp reports the outcome.
type PutResp struct{ Aborted bool }

// TxnOp is one operation inside a kv.txn request.
type TxnOp struct {
	// Kind: "read", "update", "insert", "delete".
	Kind  string
	Table string
	Key   string
	Cols  map[string][]byte
}

// TxnReq executes ops atomically.
type TxnReq struct{ Ops []TxnOp }

// TxnResp returns read results in op order (nil for writes).
type TxnResp struct {
	Reads   []map[string][]byte
	Aborted bool
}

// StatResp reports one replica's replication state. Fingerprints are
// comparable across replicas only at equal Version.
type StatResp struct {
	Replica     int
	Version     uint64 // announced (readable) global version
	Fingerprint uint32 // CRC-32 over latest committed state
}

// PullResp reports the announced version after one pull round.
type PullResp struct{ Version uint64 }

func main() {
	var (
		id         = flag.Int("id", 1, "replica id (unique across replicas)")
		listen     = flag.String("listen", ":7200", "listen address")
		modeFlag   = flag.String("mode", "mw", "commit strategy: base|mw|api")
		certifiers = flag.String("certifiers", "localhost:7100", "comma-separated certifier addresses (id order)")
		fsyncUS    = flag.Int("fsync-us", 800, "simulated fsync latency in microseconds")
		dedicated  = flag.Bool("dedicated-io", false, "database files on ramdisk; disk serves only the log")
		txnTimeout = flag.Duration("txn-timeout", 10*time.Second, "per-request deadline covering execution, commit and abort retries")
	)
	flag.Parse()

	var mode proxy.Mode
	switch *modeFlag {
	case "base":
		mode = proxy.Base
	case "mw":
		mode = proxy.TashkentMW
	case "api":
		mode = proxy.TashkentAPI
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	var clients []transport.Client
	for _, addr := range strings.Split(*certifiers, ",") {
		clients = append(clients, transport.DialTCP(strings.TrimSpace(addr)))
	}
	rep := replica.Open(replica.Config{
		ID:   *id,
		Mode: mode,
		IO: replica.IOConfig{
			Profile: simdisk.Profile{
				FsyncLatency: time.Duration(*fsyncUS) * time.Microsecond,
				FsyncJitter:  time.Duration(*fsyncUS/4) * time.Microsecond,
			},
			Dedicated: *dedicated,
			Seed:      int64(*id),
		},
		Cert:               certifier.NewClient(clients, 10*time.Second),
		LocalCertification: true,
		EagerPreCert:       true,
		StalenessBound:     time.Second,
	})

	srv, err := transport.ServeTCP(*listen, handler(rep, *id, *txnTimeout), 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("tashd replica %d (%s) listening on %s\n", *id, mode, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
	rep.Close()
}

func handler(rep *replica.Replica, id int, txnTimeout time.Duration) transport.Handler {
	return func(method string, req []byte) ([]byte, error) {
		ctx, cancel := context.WithTimeout(context.Background(), txnTimeout)
		defer cancel()
		switch method {
		case "admin.stat":
			st := rep.Store()
			return enc(StatResp{Replica: id, Version: st.AnnouncedVersion(), Fingerprint: st.Fingerprint()})
		case "admin.pull":
			if err := rep.Proxy().PullOnce(); err != nil {
				return nil, err
			}
			return enc(PullResp{Version: rep.Store().AnnouncedVersion()})
		case "kv.get":
			var r GetReq
			if err := dec(req, &r); err != nil {
				return nil, err
			}
			tx, err := rep.Begin()
			if err != nil {
				return nil, err
			}
			defer tx.Abort()
			v, ok, err := tx.ReadCol(r.Table, r.Key, r.Col)
			if err != nil {
				return nil, err
			}
			return enc(GetResp{Value: v, Found: ok})
		case "kv.put":
			var r PutReq
			if err := dec(req, &r); err != nil {
				return nil, err
			}
			aborted, err := commitRetried(ctx, rep, func(tx *proxy.Tx) error {
				return tx.Update(r.Table, r.Key, map[string][]byte{r.Col: r.Value})
			})
			if err != nil {
				return nil, err
			}
			return enc(PutResp{Aborted: aborted})
		case "kv.txn":
			var r TxnReq
			if err := dec(req, &r); err != nil {
				return nil, err
			}
			return runTxn(ctx, rep, r)
		default:
			return nil, fmt.Errorf("tashd: unknown method %q", method)
		}
	}
}

func runTxn(ctx context.Context, rep *replica.Replica, r TxnReq) ([]byte, error) {
	for _, op := range r.Ops {
		switch op.Kind {
		case "read", "update", "insert", "delete":
		default:
			return nil, fmt.Errorf("tashd: bad op kind %q", op.Kind)
		}
	}
	var resp TxnResp
	aborted, err := commitRetried(ctx, rep, func(tx *proxy.Tx) error {
		resp = TxnResp{Reads: make([]map[string][]byte, len(r.Ops))}
		for i, op := range r.Ops {
			var err error
			switch op.Kind {
			case "read":
				resp.Reads[i], _, err = tx.Read(op.Table, op.Key)
			case "update":
				err = tx.Update(op.Table, op.Key, op.Cols)
			case "insert":
				err = tx.Insert(op.Table, op.Key, op.Cols)
			case "delete":
				err = tx.Delete(op.Table, op.Key)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	resp.Aborted = aborted
	return enc(resp)
}

// commitRetried is the daemon-side analogue of the session executor's
// RunTx: it runs fn in a fresh transaction and commits through the
// context-aware path, retrying benign snapshot-isolation aborts with
// capped exponential backoff. It reports aborted=true once the retry
// budget or ctx is spent, and returns non-benign errors immediately.
func commitRetried(ctx context.Context, rep *replica.Replica, fn func(*proxy.Tx) error) (aborted bool, err error) {
	const maxRetries = 8
	backoff := time.Millisecond
	const backoffCap = 64 * time.Millisecond
	for attempt := 0; ; attempt++ {
		tx, err := rep.Begin()
		if err != nil {
			return false, err
		}
		if err = fn(tx); err == nil {
			err = tx.CommitCtx(ctx)
		} else {
			tx.Abort()
		}
		switch {
		case err == nil:
			return false, nil
		case !tashkent.IsAborted(err):
			return false, err
		case attempt == maxRetries:
			return true, nil
		}
		select {
		case <-ctx.Done():
			// A deadline expiry is not a certification conflict; report
			// it as an error so the client can tell the cases apart.
			return false, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffCap {
			backoff = backoffCap
		}
	}
}

func enc(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func dec(b []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
