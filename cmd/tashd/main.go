// Command tashd runs one database replica as a TCP daemon against a
// certd group. It exposes a small key-value transaction API over the
// same framed transport the internal components use:
//
//	method "kv.get"    request: gob(GetReq)    response: gob(GetResp)
//	method "kv.put"    request: gob(PutReq)    response: gob(PutResp)
//	method "kv.txn"    request: gob(TxnReq)    response: gob(TxnResp)
//
// kv.txn executes a multi-operation read/update transaction atomically
// through the full replication protocol (certification, global
// ordering, writeset propagation).
//
// Example against a local certd group:
//
//	tashd -id 1 -listen :7200 -mode mw -certifiers localhost:7100,localhost:7101,localhost:7102
package main

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tashkent/internal/certifier"
	"tashkent/internal/proxy"
	"tashkent/internal/replica"
	"tashkent/internal/simdisk"
	"tashkent/internal/transport"
)

// GetReq reads one column.
type GetReq struct{ Table, Key, Col string }

// GetResp carries the value.
type GetResp struct {
	Value []byte
	Found bool
}

// PutReq updates one column in its own transaction.
type PutReq struct {
	Table, Key, Col string
	Value           []byte
}

// PutResp reports the outcome.
type PutResp struct{ Aborted bool }

// TxnOp is one operation inside a kv.txn request.
type TxnOp struct {
	// Kind: "read", "update", "insert", "delete".
	Kind  string
	Table string
	Key   string
	Cols  map[string][]byte
}

// TxnReq executes ops atomically.
type TxnReq struct{ Ops []TxnOp }

// TxnResp returns read results in op order (nil for writes).
type TxnResp struct {
	Reads   []map[string][]byte
	Aborted bool
}

func main() {
	var (
		id         = flag.Int("id", 1, "replica id (unique across replicas)")
		listen     = flag.String("listen", ":7200", "listen address")
		modeFlag   = flag.String("mode", "mw", "commit strategy: base|mw|api")
		certifiers = flag.String("certifiers", "localhost:7100", "comma-separated certifier addresses (id order)")
		fsyncUS    = flag.Int("fsync-us", 800, "simulated fsync latency in microseconds")
		dedicated  = flag.Bool("dedicated-io", false, "database files on ramdisk; disk serves only the log")
	)
	flag.Parse()

	var mode proxy.Mode
	switch *modeFlag {
	case "base":
		mode = proxy.Base
	case "mw":
		mode = proxy.TashkentMW
	case "api":
		mode = proxy.TashkentAPI
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	var clients []transport.Client
	for _, addr := range strings.Split(*certifiers, ",") {
		clients = append(clients, transport.DialTCP(strings.TrimSpace(addr)))
	}
	rep := replica.Open(replica.Config{
		ID:   *id,
		Mode: mode,
		IO: replica.IOConfig{
			Profile: simdisk.Profile{
				FsyncLatency: time.Duration(*fsyncUS) * time.Microsecond,
				FsyncJitter:  time.Duration(*fsyncUS/4) * time.Microsecond,
			},
			Dedicated: *dedicated,
			Seed:      int64(*id),
		},
		Cert:               certifier.NewClient(clients, 10*time.Second),
		LocalCertification: true,
		EagerPreCert:       true,
		StalenessBound:     time.Second,
	})

	srv, err := transport.ServeTCP(*listen, handler(rep), 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("tashd replica %d (%s) listening on %s\n", *id, mode, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
	rep.Close()
}

func handler(rep *replica.Replica) transport.Handler {
	return func(method string, req []byte) ([]byte, error) {
		switch method {
		case "kv.get":
			var r GetReq
			if err := dec(req, &r); err != nil {
				return nil, err
			}
			tx, err := rep.Begin()
			if err != nil {
				return nil, err
			}
			defer tx.Abort()
			v, ok, err := tx.ReadCol(r.Table, r.Key, r.Col)
			if err != nil {
				return nil, err
			}
			return enc(GetResp{Value: v, Found: ok})
		case "kv.put":
			var r PutReq
			if err := dec(req, &r); err != nil {
				return nil, err
			}
			tx, err := rep.Begin()
			if err != nil {
				return nil, err
			}
			if err := tx.Update(r.Table, r.Key, map[string][]byte{r.Col: r.Value}); err != nil {
				tx.Abort()
				return enc(PutResp{Aborted: true})
			}
			if err := tx.Commit(); err != nil {
				return enc(PutResp{Aborted: true})
			}
			return enc(PutResp{})
		case "kv.txn":
			var r TxnReq
			if err := dec(req, &r); err != nil {
				return nil, err
			}
			return runTxn(rep, r)
		default:
			return nil, fmt.Errorf("tashd: unknown method %q", method)
		}
	}
}

func runTxn(rep *replica.Replica, r TxnReq) ([]byte, error) {
	tx, err := rep.Begin()
	if err != nil {
		return nil, err
	}
	resp := TxnResp{Reads: make([]map[string][]byte, len(r.Ops))}
	for i, op := range r.Ops {
		var err error
		switch op.Kind {
		case "read":
			resp.Reads[i], _, err = tx.Read(op.Table, op.Key)
		case "update":
			err = tx.Update(op.Table, op.Key, op.Cols)
		case "insert":
			err = tx.Insert(op.Table, op.Key, op.Cols)
		case "delete":
			err = tx.Delete(op.Table, op.Key)
		default:
			err = fmt.Errorf("bad op kind %q", op.Kind)
		}
		if err != nil {
			tx.Abort()
			resp.Aborted = true
			return enc(resp)
		}
	}
	if err := tx.Commit(); err != nil {
		resp.Aborted = true
	}
	return enc(resp)
}

func enc(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func dec(b []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}
