// Command tashkv is a minimal CLI client for a tashd daemon, speaking
// the kv.get / kv.put / kv.txn methods over the framed transport:
//
//	tashkv -addr localhost:7200 put accounts alice balance 100
//	tashkv -addr localhost:7200 get accounts alice balance
//	tashkv -addr localhost:7200 txn update:t:k1:v=1 read:t:k1 update:t:k2:v=2
//	tashkv -addr localhost:7200 stat   # replication state (version, fingerprint)
//	tashkv -addr localhost:7200 pull   # force one writeset pull round
package main

import (
	"bytes"
	"encoding/gob"
	"flag"
	"fmt"
	"os"
	"strings"

	"tashkent/internal/transport"
)

// Request/response shapes mirror cmd/tashd (gob matches by field).
type getReq struct{ Table, Key, Col string }
type getResp struct {
	Value []byte
	Found bool
}
type putReq struct {
	Table, Key, Col string
	Value           []byte
}
type putResp struct{ Aborted bool }
type txnOp struct {
	Kind  string
	Table string
	Key   string
	Cols  map[string][]byte
}
type txnReq struct{ Ops []txnOp }
type txnResp struct {
	Reads   []map[string][]byte
	Aborted bool
}
type statResp struct {
	Replica     int
	Version     uint64
	Fingerprint uint32
}
type pullResp struct{ Version uint64 }

func main() {
	addr := flag.String("addr", "localhost:7200", "tashd address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tashkv [-addr host:port] get|put|txn ...")
		os.Exit(2)
	}
	c := transport.DialTCP(*addr)
	defer c.Close()

	var err error
	switch args[0] {
	case "get":
		if len(args) != 4 {
			err = fmt.Errorf("usage: get <table> <key> <col>")
			break
		}
		var resp getResp
		if err = call(c, "kv.get", getReq{args[1], args[2], args[3]}, &resp); err == nil {
			fmt.Printf("found=%v value=%s\n", resp.Found, resp.Value)
		}
	case "put":
		if len(args) != 5 {
			err = fmt.Errorf("usage: put <table> <key> <col> <value>")
			break
		}
		var resp putResp
		if err = call(c, "kv.put", putReq{args[1], args[2], args[3], []byte(args[4])}, &resp); err == nil {
			fmt.Printf("aborted=%v\n", resp.Aborted)
		}
	case "txn":
		ops, perr := parseOps(args[1:])
		if perr != nil {
			err = perr
			break
		}
		var resp txnResp
		if err = call(c, "kv.txn", txnReq{Ops: ops}, &resp); err == nil {
			fmt.Printf("aborted=%v\n", resp.Aborted)
			for i, rd := range resp.Reads {
				if ops[i].Kind == "read" {
					fmt.Printf("read %s/%s: %v\n", ops[i].Table, ops[i].Key, render(rd))
				}
			}
		}
	case "stat":
		var resp statResp
		if err = adminCall(c, "admin.stat", &resp); err == nil {
			fmt.Printf("replica=%d version=%d fingerprint=%08x\n", resp.Replica, resp.Version, resp.Fingerprint)
		}
	case "pull":
		var resp pullResp
		if err = adminCall(c, "admin.pull", &resp); err == nil {
			fmt.Printf("version=%d\n", resp.Version)
		}
	default:
		err = fmt.Errorf("unknown command %q", args[0])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseOps turns kind:table:key[:col=val,...] words into txn ops.
func parseOps(words []string) ([]txnOp, error) {
	var ops []txnOp
	for _, w := range words {
		parts := strings.SplitN(w, ":", 4)
		if len(parts) < 3 {
			return nil, fmt.Errorf("bad op %q (want kind:table:key[:col=val,...])", w)
		}
		op := txnOp{Kind: parts[0], Table: parts[1], Key: parts[2]}
		if len(parts) == 4 && parts[3] != "" {
			op.Cols = map[string][]byte{}
			for _, kv := range strings.Split(parts[3], ",") {
				c, v, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("bad col %q in op %q", kv, w)
				}
				op.Cols[c] = []byte(v)
			}
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func render(row map[string][]byte) string {
	if row == nil {
		return "<missing>"
	}
	var parts []string
	for k, v := range row {
		parts = append(parts, fmt.Sprintf("%s=%s", k, v))
	}
	return strings.Join(parts, " ")
}

// adminCall invokes a request-less admin method.
func adminCall(c transport.Client, method string, resp interface{}) error {
	b, err := c.Call(method, nil)
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(resp)
}

func call(c transport.Client, method string, req, resp interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		return err
	}
	b, err := c.Call(method, buf.Bytes())
	if err != nil {
		return err
	}
	return gob.NewDecoder(bytes.NewReader(b)).Decode(resp)
}
