// Package tashkent is a from-scratch Go reproduction of the
// replicated database system from "Tashkent: Uniting Durability with
// Transaction Ordering for High-Performance Scalable Database
// Replication" (Elnikety, Dropsho, Pedone — EuroSys 2006).
//
// It provides a fully replicated snapshot-isolated database: every
// transaction, read-only or update, runs on a single replica; a
// replicated certifier decides the global commit order of update
// transactions via writeset certification (generalized snapshot
// isolation). Three commit strategies are available, matching the
// paper's three systems:
//
//   - ModeBase — ordering in the middleware, durability in the
//     database: commits serialize, one fsync each (the bottleneck the
//     paper identifies).
//   - ModeTashkentMW — durability moves into the certifier's
//     group-committed log; replica commits are in-memory.
//   - ModeTashkentAPI — the database's commit API takes the global
//     order (COMMIT <seq>), so commits submit concurrently and share
//     fsyncs while announcing in order.
//
// Quick start:
//
//	db, err := tashkent.Start(tashkent.Config{Mode: tashkent.ModeTashkentMW, Replicas: 3})
//	defer db.Close()
//	tx, _ := db.Begin(0)                       // open a txn on replica 0
//	tx.Update("accounts", "alice", map[string][]byte{"balance": []byte("100")})
//	err = tx.Commit()                          // certified + globally ordered
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-figure reproductions.
package tashkent

import (
	"time"

	"tashkent/internal/cluster"
	"tashkent/internal/proxy"
	"tashkent/internal/replica"
	"tashkent/internal/simdisk"
	"tashkent/internal/workload"
)

// Mode selects the commit strategy (the paper's three systems).
type Mode = proxy.Mode

// The available modes.
const (
	ModeBase        = proxy.Base
	ModeTashkentMW  = proxy.TashkentMW
	ModeTashkentAPI = proxy.TashkentAPI
)

// ErrAborted is returned from Tx.Commit when certification found a
// write-write conflict; retry the transaction against a fresh
// snapshot.
var ErrAborted = proxy.ErrCertificationAbort

// IsAborted reports whether an error from a transaction operation or
// commit is a benign snapshot-isolation abort — a certification
// conflict, a local first-committer-wins conflict, a deadlock victim,
// or a middleware kill in favour of a remote writeset. Such
// transactions can simply be retried against a fresh snapshot.
func IsAborted(err error) bool { return workload.IsAbort(err) }

// Tx is a client transaction handle. Reads and writes execute against
// the replica-local snapshot; Commit runs the replication protocol.
type Tx = proxy.Tx

// Config configures a database. The zero value of optional fields
// picks sensible defaults (3 certifiers, instant disks, optimizations
// on).
type Config struct {
	// Mode is the commit strategy (required).
	Mode Mode
	// Replicas is the number of database replicas (default 1).
	Replicas int
	// Certifiers sizes the certifier group (default 3).
	Certifiers int
	// DiskProfile models the disks; zero means instant (in-memory
	// speed). Use simdisk.Paper() (exposed as PaperDisks) to get the
	// paper's 8 ms-fsync disk.
	DiskProfile simdisk.Profile
	// DedicatedLogDisk puts database files on ramdisk so the disk
	// serves only the log.
	DedicatedLogDisk bool
	// StalenessBound makes idle replicas pull updates after this long
	// (default 1 s; 0 keeps the default, negative disables).
	StalenessBound time.Duration
	// Seed fixes all simulated randomness.
	Seed int64
}

// PaperDisks returns the disk latency profile of the paper's testbed
// (8 ms fsync), optionally scaled down by div to run sweeps quickly.
func PaperDisks(div int) simdisk.Profile {
	p := simdisk.Paper()
	if div > 1 {
		p = p.Scaled(div)
	}
	return p
}

// DB is a running replicated database.
type DB struct {
	c *cluster.Cluster
}

// Start builds and starts the replicated system.
func Start(cfg Config) (*DB, error) {
	sb := cfg.StalenessBound
	if sb == 0 {
		sb = time.Second
	} else if sb < 0 {
		sb = 0
	}
	c, err := cluster.New(cluster.Config{
		Mode:               cfg.Mode,
		Replicas:           cfg.Replicas,
		Certifiers:         cfg.Certifiers,
		IOProfile:          cfg.DiskProfile,
		DedicatedIO:        cfg.DedicatedLogDisk,
		LocalCertification: true,
		EagerPreCert:       true,
		StalenessBound:     sb,
		Seed:               cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &DB{c: c}, nil
}

// Begin opens a transaction on the given replica (0-based). Reads and
// writes run locally; Commit certifies updates globally.
func (db *DB) Begin(replica int) (*Tx, error) { return db.c.Begin(replica) }

// Replicas returns the replica count.
func (db *DB) Replicas() int { return db.c.Replicas() }

// Replica exposes a replica node (crash/recovery, stats, dumps).
func (db *DB) Replica(i int) *replica.Replica { return db.c.Replica(i) }

// Cluster exposes the underlying cluster for advanced orchestration
// (failure injection, certifier access, convergence helpers).
func (db *DB) Cluster() *cluster.Cluster { return db.c }

// Converge brings every replica up to the current global version —
// useful before consistency checks or snapshots.
func (db *DB) Converge(timeout time.Duration) error {
	return db.c.ConvergeAll(timeout)
}

// Close shuts the system down.
func (db *DB) Close() { db.c.Close() }
